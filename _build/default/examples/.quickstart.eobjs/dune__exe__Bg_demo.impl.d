examples/bg_demo.ml: Array Bg_simulation Executor Fault Fmt Lbsa List Listx Scheduler Sim_protocol Value
