examples/bivalency_explorer.ml: Bivalency Candidates Cgraph Config Consensus_protocols Dac_from_pac Fmt Lbsa List Valence Value
