examples/bivalency_explorer.mli:
