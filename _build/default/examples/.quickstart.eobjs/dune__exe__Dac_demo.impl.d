examples/dac_demo.ml: Array Config Dac Dac_from_pac Executor Fmt Lbsa List Listx Prng Scheduler Solvability Trace Value
