examples/dac_demo.mli:
