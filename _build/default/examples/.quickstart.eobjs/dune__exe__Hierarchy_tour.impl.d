examples/hierarchy_tour.ml: Consensus_protocols Fmt Lbsa Level List Machine O_prime Power Qadri Solvability
