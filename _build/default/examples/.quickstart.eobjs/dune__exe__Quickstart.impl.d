examples/quickstart.ml: Array Config Dac_from_pac Executor Fmt Lbsa Obj_spec Op Pac Scheduler Trace Value
