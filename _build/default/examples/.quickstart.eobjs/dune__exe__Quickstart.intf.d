examples/quickstart.mli:
