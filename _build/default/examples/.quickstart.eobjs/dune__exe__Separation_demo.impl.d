examples/separation_demo.ml: Fmt Lbsa Separation
