examples/universal_demo.ml: Array Chistory Classic Fmt Harness Lbsa Lin_checker List Op Pac Scheduler Universal Value
