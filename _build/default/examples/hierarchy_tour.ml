(* hierarchy_tour: a walk through the consensus hierarchy with the
   repository's object zoo.

   Build and run:  dune exec examples/hierarchy_tour.exe

   For each object we print its known consensus number and set agreement
   power (closed form or lower bound), then machine-verify the positive
   claims on small instances by exhaustive model checking. *)

open Lbsa

let pr_power name power =
  Fmt.pr "  %-18s power = (%a, ...)@." name
    Fmt.(list ~sep:(any ", ") Power.pp_bound)
    power

let verdict_str (v : Solvability.verdict) =
  if v.Solvability.ok then Fmt.str "verified (%d states)" v.Solvability.states
  else Fmt.str "FAILED: %a" Solvability.pp_verdict v

let () =
  Fmt.pr "== Set agreement power: closed forms and lower bounds ==@.";
  pr_power "register" [ Power.Finite 1; Power.Infinite; Power.Infinite ];
  pr_power "2-consensus" (Power.consensus_power ~m:2 ~max_k:4);
  pr_power "3-consensus" (Power.consensus_power ~m:3 ~max_k:4);
  pr_power "2-SA" (Power.sa2_power ~max_k:4);
  pr_power "O_2 (≥)" (Power.o_n_power_lower ~n:2 ~max_k:4);
  pr_power "O_3 (≥)" (Power.o_n_power_lower ~n:3 ~max_k:4);

  Fmt.pr "@.== Level evidence (positive half exhaustively verified) ==@.";
  List.iter
    (fun m ->
      let r = Level.consensus_obj_report ~m () in
      Fmt.pr "%a@." Level.pp_report r)
    [ 2; 3 ];
  let r = Level.pac_nm_report ~n:3 ~m:2 () in
  Fmt.pr "%a@." Level.pp_report r;
  let r = Level.o_n_report ~n:2 () in
  Fmt.pr "%a@." Level.pp_report r;

  Fmt.pr "@.== Power probes: the lower-bound rows, machine-checked ==@.";
  Fmt.pr "%-34s %-14s %s@." "claim" "processes" "result";
  let probes =
    [
      ( "2-consensus solves 1-set among 2",
        Power.probe_consensus_family ~m:2 ~k:1 () );
      ( "2-consensus solves 2-set among 4",
        Power.probe_consensus_family ~m:2 ~k:2 () );
      ( "3-consensus solves 1-set among 3",
        Power.probe_consensus_family ~m:3 ~k:1 () );
      ("2-SA solves 2-set among 4", Power.probe_sa2_family ~k:2 ~procs:4 ());
      ("2-SA solves 3-set among 5", Power.probe_sa2_family ~k:3 ~procs:5 ());
      ("(4,2)-SA solves 2-set among 4", Power.probe_nk_sa_family ~n:4 ~k:2 ());
      ("O_2 solves consensus among 2", Power.probe_o_n_consensus ~n:2 ());
      ( "O'_2 solves 2-set among 4",
        Power.probe_oprime_family
          ~power:(O_prime.default_power ~n:2 ~max_k:2)
          ~k:2 () );
    ]
  in
  List.iter
    (fun (claim, p) ->
      Fmt.pr "%-34s %-14d %s@." claim p.Power.procs
        (if p.Power.solvable then Fmt.str "solved (%d states)" p.Power.states
         else "FAILED"))
    probes;

  Fmt.pr "@.== Classic level-2 objects solve 2-consensus ==@.";
  let machine, specs = Consensus_protocols.from_test_and_set () in
  let v =
    Level.check_consensus_all_binary ~machine ~specs ~procs:2 ()
  in
  Fmt.pr "  test-and-set + registers, 2 processes: %s@." (verdict_str v);

  Fmt.pr "@.== And the ∞-level: a sticky register seats any number ==@.";
  List.iter
    (fun procs ->
      let machine, specs = Consensus_protocols.from_sticky () in
      let v = Level.check_consensus_all_binary ~machine ~specs ~procs () in
      Fmt.pr "  sticky, %d processes: %s@." procs (verdict_str v))
    [ 2; 3; 4 ];

  Fmt.pr "@.== The other level-2 residents, exhaustively ==@.";
  List.iter
    (fun (machine, specs) ->
      let v = Level.check_consensus_all_binary ~machine ~specs ~procs:2 () in
      Fmt.pr "  %-32s %s@." machine.Machine.name (verdict_str v))
    [
      Consensus_protocols.from_queue ();
      Consensus_protocols.from_fetch_and_add ();
      Consensus_protocols.from_swap ();
      Consensus_protocols.from_test_and_set ();
    ];

  Fmt.pr "@.== Theorem 7.1 (Qadri): a level-2 object beyond 3-consensus ==@.";
  let report = Qadri.analyze ~m:2 ~n:3 () in
  Fmt.pr "%a@." Qadri.pp_report report
