(* separation_demo: the paper's main theorem (Corollary 6.6) as a single
   executable story.

   Build and run:  dune exec examples/separation_demo.exe

   For n = 2 (and a lighter pass at n = 3) we assemble the separation
   artifacts: O_n and O'_n share their set agreement power prefix, yet
   O_n solves the (n+1)-DAC problem while O'_n reduces to n-consensus +
   2-SA objects (Lemma 6.4), a basis over which the natural (n+1)-DAC
   candidates all fail (Theorem 4.2's evidence) — so O'_n and registers
   cannot implement O_n. *)

open Lbsa

let () =
  Fmt.pr
    "Life Beyond Set Agreement — Corollary 6.6, executable edition@.@.\
     Two objects with the SAME set agreement power that are NOT\n\
     equivalent: O_n = (n+1,n)-PAC versus O'_n = bundle of (n_k,k)-SA.@.";

  let report = Separation.analyze ~max_k:3 ~n:2 () in
  Fmt.pr "@.%a@." Separation.pp_report report;
  Fmt.pr "Overall: %s@."
    (if Separation.all_ok report then
       "every artifact behaves exactly as the paper predicts"
     else "MISMATCH against the paper (see above)");

  Fmt.pr
    "@.The chain of reasoning the artifacts instantiate:@.\
    \  1. O_2 and O'_2 share power prefix (2, 4, 6)      [rows above]@.\
    \  2. O_2 solves 3-DAC via its 3-PAC facet           [Thm 4.1 + Obs 5.1b]@.\
    \  3. O'_2 = 2-consensus + 2-SA objects              [Lemma 6.4]@.\
    \  4. 3-DAC is unsolvable over that basis            [Thm 4.2;@.\
    \     candidate failures above are the executable evidence]@.\
    \  => O'_2 (and registers) cannot implement O_2      [Thm 6.5]@.";

  Fmt.pr "@.Lighter pass at n = 3 (power prefix only, k ≤ 2):@.";
  let report3 = Separation.analyze ~max_k:2 ~n:3 () in
  Fmt.pr "%a@." Separation.pp_report report3;
  Fmt.pr "Overall (n=3): %s@."
    (if Separation.all_ok report3 then "all artifacts as predicted"
     else "MISMATCH (see above)")
