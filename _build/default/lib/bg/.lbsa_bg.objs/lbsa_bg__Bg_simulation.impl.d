lib/bg/bg_simulation.ml: Array Classic Config Executor Fmt Lbsa_modelcheck Lbsa_objects Lbsa_runtime Lbsa_spec Lbsa_util List Machine Obj_spec Sim_protocol Value
