lib/bg/bg_simulation.mli: Executor Lbsa_runtime Lbsa_spec Machine Obj_spec Scheduler Sim_protocol Value
