lib/bg/sim_protocol.ml: Classic Config Fmt Lbsa_modelcheck Lbsa_objects Lbsa_runtime Lbsa_spec Lbsa_util List Machine Obj_spec Option Value
