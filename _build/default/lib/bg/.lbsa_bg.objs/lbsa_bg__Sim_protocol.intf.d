lib/bg/sim_protocol.mli: Lbsa_runtime Lbsa_spec Machine Obj_spec Value
