(** The BG simulation (Borowsky–Gafni): S simulators jointly execute a
    full-information snapshot protocol written for n_sim processes,
    agreeing on every simulated scan through inlined safe agreement.
    The engine behind the set-consensus hierarchy transfer results the
    paper cites ([2], [6]). *)

open Lbsa_spec
open Lbsa_runtime

val simmem_index : int
val sa_index : p:Sim_protocol.t -> j:int -> t:int -> int

val specs : p:Sim_protocol.t -> simulators:int -> Obj_spec.t array
(** One monotone simulated memory plus one safe-agreement snapshot per
    simulated step. *)

val machine : p:Sim_protocol.t -> sim_inputs:Value.t array -> Machine.t
(** The simulator machine; the simulated inputs are baked in and the
    simulators' own executor inputs are ignored. *)

val decode_agreed : Value.t -> (int * Value.t list) list
(** A simulator's table of agreed views, from its local state. *)

type run = {
  simulated_decisions : Value.t list option;
  per_simulator_progress : (int * int) list array;
  all_views : Value.t list;
  executor : Executor.result;
}

val run :
  ?max_steps:int ->
  p:Sim_protocol.t ->
  sim_inputs:Value.t array ->
  simulators:int ->
  scheduler:Scheduler.t ->
  unit ->
  run

type exhaustive_report = {
  states : int;
  terminals : int;
  bad_outcomes : int;
  all_genuine : bool;
}

val check_exhaustive :
  ?max_states:int ->
  p:Sim_protocol.t ->
  sim_inputs:Value.t array ->
  simulators:int ->
  unit ->
  exhaustive_report
(** Build the full configuration graph of the simulators (every
    interleaving) and check that every terminal decision vector is a
    genuine direct outcome.  Raises {!Lbsa_modelcheck.Graph.Truncated}
    if the bound is hit. *)

val view_le : Value.t -> Value.t -> bool
val views_comparable : Value.t list -> bool
(** The snapshot property: all agreed views are cell-wise comparable. *)

val simulators_agree : run -> bool
(** Every pair of simulators holds identical views for the simulated
    steps both know about. *)
