(** Full-information snapshot protocols — the normal form the BG
    simulation operates on — with a direct (reference) execution as an
    ordinary machine over one monotone snapshot. *)

open Lbsa_spec
open Lbsa_runtime

type t = {
  name : string;
  n_sim : int;  (** number of simulated processes *)
  steps : int;  (** write/scan rounds each process performs *)
  decide : pid:int -> input:Value.t -> views:Value.t list -> Value.t;
      (** deterministic decision from the full view sequence *)
}

val cell_content : t:int -> input:Value.t -> views:Value.t list -> Value.t
(** What process j writes at the start of its round [t]. *)

val simmem_index : int
val direct_machine : t -> Machine.t
val direct_specs : t -> Obj_spec.t array

val direct_outcomes :
  ?max_states:int -> t -> inputs:Value.t array -> Value.t list
(** All decision vectors reachable under any schedule (model-checked):
    the reference set for validating the BG simulation. *)

val inputs_of_view : Value.t -> Value.t list
val min_value : Value.t list -> Value.t

val min_seen : n_sim:int -> steps:int -> t
(** Decide the minimum input visible in the final view. *)

val participants : n_sim:int -> steps:int -> t
(** Decide the set of inputs visible in the final view. *)
