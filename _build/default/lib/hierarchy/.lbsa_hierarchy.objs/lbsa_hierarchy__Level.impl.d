lib/hierarchy/level.ml: Candidates Consensus_protocols Consensus_task Fmt Lbsa_modelcheck Lbsa_protocols Lbsa_runtime Machine Solvability
