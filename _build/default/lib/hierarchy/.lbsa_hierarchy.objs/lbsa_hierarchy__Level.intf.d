lib/hierarchy/level.mli: Format Lbsa_modelcheck Lbsa_runtime Lbsa_spec Machine Obj_spec Solvability
