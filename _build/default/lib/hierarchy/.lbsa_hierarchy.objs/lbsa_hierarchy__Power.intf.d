lib/hierarchy/power.mli: Format Lbsa_objects Lbsa_runtime Lbsa_spec Machine O_prime Obj_spec
