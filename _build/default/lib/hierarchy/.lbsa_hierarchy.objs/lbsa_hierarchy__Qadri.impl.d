lib/hierarchy/qadri.ml: Candidates Dac Dac_from_pac Fmt Lbsa_modelcheck Lbsa_objects Lbsa_protocols Level List Option Separation Solvability
