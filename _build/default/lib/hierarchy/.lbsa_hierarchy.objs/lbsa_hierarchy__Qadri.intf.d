lib/hierarchy/qadri.mli: Format Separation
