lib/hierarchy/separation.mli: Format Power
