(** Consensus-hierarchy level evidence: the exhaustively verified
    positive half (the object solves consensus among n processes) and
    the candidate-failure negative half (its natural (n+1)-consensus
    protocol fails), kept explicitly apart. *)

open Lbsa_runtime
open Lbsa_spec
open Lbsa_modelcheck

type half =
  | Verified of Solvability.verdict
  | Candidate_failed of string * Solvability.verdict
  | Not_checked of string

type report = {
  object_name : string;
  level : int;
  solves_at_level : half;
  fails_above : half;
}

val pp_half : Format.formatter -> half -> unit
val pp_report : Format.formatter -> report -> unit

val check_consensus_all_binary :
  ?max_states:int ->
  machine:Machine.t ->
  specs:Obj_spec.t array ->
  procs:int ->
  unit ->
  Solvability.verdict

val consensus_obj_report : ?max_states:int -> m:int -> unit -> report
val pac_nm_report : ?max_states:int -> n:int -> m:int -> unit -> report

val o_n_report : ?max_states:int -> n:int -> unit -> report
(** Observation 6.2: O_n = (n+1,n)-PAC has consensus number n. *)
