(** Set agreement power (Section 1): closed forms and empirical,
    exhaustively model-checked probes of the lower bounds. *)

open Lbsa_spec
open Lbsa_runtime
open Lbsa_objects

type bound =
  | Finite of int
  | Infinite

val pp_bound : Format.formatter -> bound -> unit

val consensus_power : m:int -> max_k:int -> bound list
(** n_k(m-consensus) = k·m. *)

val sa2_power : max_k:int -> bound list
(** n_1 = 1; n_k = ∞ for k ≥ 2 (Section 4). *)

val o_n_power_lower : n:int -> max_k:int -> bound list
(** The constructive lower bound n_k(O_n) ≥ k·n; the paper gives no
    closed form for the true sequence. *)

type probe = {
  k : int;
  procs : int;
  solvable : bool;
  states : int;
  detail : string option;
}

val pp_probe : Format.formatter -> probe -> unit

val probe :
  ?max_states:int ->
  ?also_binary:bool ->
  k:int ->
  procs:int ->
  protocol:Machine.t * Obj_spec.t array ->
  unit ->
  probe
(** Exhaustively verify that the protocol solves k-set agreement among
    [procs] processes (all schedules, all object nondeterminism). *)

val probe_random :
  ?trials:int ->
  ?seed:int ->
  k:int ->
  procs:int ->
  protocol:Machine.t * Obj_spec.t array ->
  unit ->
  probe
(** Randomized fallback for instances whose exhaustive state space is
    out of reach: random schedules and adversaries, safety checked on
    every run; [detail] records that the probe was randomized. *)

val probe_consensus_family :
  m:int -> k:int -> ?max_states:int -> unit -> probe

val probe_sa2_family :
  k:int -> procs:int -> ?max_states:int -> unit -> probe

val probe_nk_sa_family : n:int -> k:int -> ?max_states:int -> unit -> probe

val probe_oprime_family :
  power:O_prime.power -> k:int -> ?max_states:int -> unit -> probe

val probe_o_n_consensus : n:int -> ?max_states:int -> unit -> probe
(** Observation 6.2's positive half: O_n solves consensus among n
    processes (checked over all binary inputs). *)
