(** Theorem 7.1 (Qadri's question) as executable artifacts: the
    (n+1, m)-PAC object is at level m yet solves the (n+1)-DAC problem,
    which the natural candidates over n-consensus + registers cannot. *)

type report = {
  m : int;
  n : int;
  artifacts : Separation.verdictish list;
}

val analyze : ?max_states:int -> m:int -> n:int -> unit -> report
(** Raises [Invalid_argument] unless [m >= 2] and [n >= m+1]. *)

val all_ok : report -> bool
val pp_report : Format.formatter -> report -> unit
