(** Corollary 6.6 as executable artifacts: for n >= 2, O_n and O'_n share
    their set agreement power prefix, O_n solves the (n+1)-DAC problem,
    O'_n is implementable from n-consensus + 2-SA (Lemma 6.4), and the
    natural "implement O_n from that basis" candidates fail where
    Theorem 4.2 says they must. *)

type verdictish = {
  label : string;
  ok : bool;  (** did the artifact behave as the paper predicts? *)
  detail : string;
}

type report = {
  n : int;
  power_prefix : Power.bound list;
  artifacts : verdictish list;
}

val analyze : ?max_k:int -> ?max_states:int -> n:int -> unit -> report
(** Raises [Invalid_argument] when [n < 2].  [max_k] bounds the power
    prefix (default 3). *)

val all_ok : report -> bool
val pp_report : Format.formatter -> report -> unit
