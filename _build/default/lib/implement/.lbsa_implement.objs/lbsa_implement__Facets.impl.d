lib/implement/facets.ml: Consensus_obj Fmt Implementation Lbsa_objects Lbsa_spec Op Pac Pac_nm Value
