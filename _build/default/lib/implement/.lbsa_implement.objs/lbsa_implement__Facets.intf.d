lib/implement/facets.mli: Implementation
