lib/implement/harness.ml: Array Checker Chistory Fmt Implementation Lbsa_linearizability Lbsa_runtime Lbsa_spec Lbsa_util List Machine Obj_spec Op Scheduler Stdlib Value
