lib/implement/harness.mli: Checker Chistory Implementation Lbsa_linearizability Lbsa_runtime Lbsa_spec Lbsa_util Op Scheduler Value
