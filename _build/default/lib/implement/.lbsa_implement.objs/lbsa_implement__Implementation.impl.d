lib/implement/implementation.ml: Fmt Lbsa_runtime Lbsa_spec Machine Obj_spec Op Value
