lib/implement/implementation.mli: Lbsa_runtime Lbsa_spec Machine Obj_spec Op Value
