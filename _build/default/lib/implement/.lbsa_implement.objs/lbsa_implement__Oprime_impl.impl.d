lib/implement/oprime_impl.ml: Array Consensus_obj Fmt Implementation Lbsa_objects Lbsa_spec List O_prime Obj_spec Op Sa2 Value
