lib/implement/oprime_impl.mli: Implementation Lbsa_objects Lbsa_spec O_prime Obj_spec
