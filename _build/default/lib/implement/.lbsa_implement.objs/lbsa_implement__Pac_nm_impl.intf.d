lib/implement/pac_nm_impl.mli: Implementation
