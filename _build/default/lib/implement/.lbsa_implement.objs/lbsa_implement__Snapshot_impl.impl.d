lib/implement/snapshot_impl.ml: Array Classic Fmt Implementation Lbsa_objects Lbsa_runtime Lbsa_spec Lbsa_util List Machine Op Register Value
