lib/implement/snapshot_impl.mli: Implementation
