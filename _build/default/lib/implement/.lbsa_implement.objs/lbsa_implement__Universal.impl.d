lib/implement/universal.ml: Array Consensus_obj Fmt Implementation Lbsa_objects Lbsa_runtime Lbsa_spec List Machine Obj_spec Op Option Register Value
