lib/implement/universal.mli: Implementation Lbsa_spec Obj_spec Op Value
