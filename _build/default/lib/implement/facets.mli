(** Observations 5.1(b,c): the facets of an (n,m)-PAC object. *)

val pac_from_pac_nm : n:int -> m:int -> Implementation.t
(** An n-PAC object implemented from one (n,m)-PAC object. *)

val consensus_from_pac_nm : n:int -> m:int -> Implementation.t
(** An m-consensus object implemented from one (n,m)-PAC object. *)
