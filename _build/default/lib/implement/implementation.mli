(** Wait-free implementations of a target object from base objects — the
    paper's "A can be implemented from instances of B and registers". *)

open Lbsa_spec
open Lbsa_runtime

type op_program = {
  start : Value.t;
  delta : pid:int -> Value.t -> Machine.step;
      (** [Machine.Decide v] means the target operation returns [v]. *)
}

type t = {
  name : string;
  target : Obj_spec.t;
  base : Obj_spec.t array;
  program : pid:int -> Op.t -> op_program;
}

val make :
  name:string ->
  target:Obj_spec.t ->
  base:Obj_spec.t array ->
  program:(pid:int -> Op.t -> op_program) ->
  t

val identity : Obj_spec.t -> t
(** Each target operation is one step on a base instance of the target
    itself (harness sanity check). *)

val redirect :
  name:string ->
  target:Obj_spec.t ->
  base:Obj_spec.t array ->
  route:(Op.t -> int * Op.t) ->
  t
(** Each target operation maps to exactly one base operation. *)
