(** Lemma 6.4: the implementation of O'_n from one n-consensus object and
    one 2-SA object per level k >= 2.  Workloads must respect the port
    bounds n_k of the target (its interface contract). *)

open Lbsa_spec
open Lbsa_objects

val base : power:O_prime.power -> Obj_spec.t array
val implementation : power:O_prime.power -> Implementation.t
val for_n : n:int -> max_k:int -> Implementation.t
