(** Observation 5.1(a): the (n,m)-PAC object implemented from an n-PAC
    object and an m-consensus object by redirection. *)

val implementation : n:int -> m:int -> Implementation.t
