open Lbsa_spec
open Lbsa_objects
open Lbsa_runtime

(* The classic wait-free atomic snapshot from single-writer registers
   (Afek, Attiya, Dolev, Gafni, Merritt, Shavit 1993), the canonical
   "registers implement snapshots" substrate of Herlihy's model.

   n processes, n components; process pid updates component pid only.
   Register pid holds List [Int seq; value; view] where [view] is the
   result of the embedded scan performed by the update that wrote it.

   scan():
     collect the registers repeatedly;
     - two consecutive collects with equal sequence numbers: return the
       common values (a "clean double collect");
     - some component changed twice across our collects: its latest
       content embeds a view obtained by a scan that started after ours
       did; return that view.
   update(v):
     read own register (for the sequence number), perform an embedded
     scan, then write (seq+1, v, view).

   Also provided: [naive ~n], the broken single-collect scan, which the
   linearizability checker refutes (a negative fixture). *)

let reg_content ~seq ~value ~view = Value.List [ Value.Int seq; value; view ]

let initial_view n = Value.List (List.init n (fun _ -> Value.Nil))

let initial_reg n = reg_content ~seq:0 ~value:Value.Nil ~view:(initial_view n)

let seq_of = function
  | Value.List [ Value.Int seq; _; _ ] -> seq
  | v -> invalid_arg (Fmt.str "Snapshot_impl: bad register content %a" Value.pp v)

let value_of = function
  | Value.List [ _; value; _ ] -> value
  | v -> invalid_arg (Fmt.str "Snapshot_impl: bad register content %a" Value.pp v)

let view_of = function
  | Value.List [ _; _; view ] -> view
  | v -> invalid_arg (Fmt.str "Snapshot_impl: bad register content %a" Value.pp v)

(* --- the scan state machine ------------------------------------------

   Scan state: List [Sym "scanning"; prev; moved; partial]
   - prev: Nil, or the previous complete collect (List of reg contents);
   - moved: Assoc comp -> Int count of observed changes;
   - partial: the current collect so far, reversed.

   [scan_step] performs one register read; [wrap] embeds intermediate
   scan states into the caller's state space and [k] receives the final
   view. *)

let scanning = Value.Sym "scanning"

let scan_state ~prev ~moved ~partial =
  Value.List [ scanning; prev; moved; Value.List partial ]

let start_scan = scan_state ~prev:Value.Nil ~moved:Value.Assoc.empty ~partial:[]

let is_scan_state = function
  | Value.List [ tag; _; _; _ ] -> Value.equal tag scanning
  | _ -> false

(* A collect just completed: decide whether the scan is done. *)
let finish_or_continue ~n ~prev ~moved cur =
  let cur_list = Value.to_list_exn cur in
  match prev with
  | Value.Nil -> `Continue (scan_state ~prev:cur ~moved ~partial:[])
  | _ ->
    let prev_list = Value.to_list_exn prev in
    let changed =
      List.filter
        (fun j -> seq_of (List.nth prev_list j) <> seq_of (List.nth cur_list j))
        (Lbsa_util.Listx.range 0 (n - 1))
    in
    if changed = [] then `Done (Value.List (List.map value_of cur_list))
    else begin
      let moved, borrowed =
        List.fold_left
          (fun (moved, borrowed) j ->
            let key = Value.Int j in
            let count =
              match Value.Assoc.get moved key with
              | Some (Value.Int c) -> c
              | _ -> 0
            in
            let moved = Value.Assoc.set moved key (Value.Int (count + 1)) in
            let borrowed =
              if count + 1 >= 2 && borrowed = None then
                Some (view_of (List.nth cur_list j))
              else borrowed
            in
            (moved, borrowed))
          (moved, None) changed
      in
      match borrowed with
      | Some view -> `Done view
      | None -> `Continue (scan_state ~prev:cur ~moved ~partial:[])
    end

let scan_step ~n ~wrap ~k state : Machine.step =
  match state with
  | Value.List [ _tag; prev; moved; Value.List partial ] ->
    let idx = List.length partial in
    Machine.invoke idx Register.read (fun r ->
        let partial = r :: partial in
        if List.length partial < n then
          wrap (scan_state ~prev ~moved ~partial)
        else
          let cur = Value.List (List.rev partial) in
          match finish_or_continue ~n ~prev ~moved cur with
          | `Done view -> k view
          | `Continue state' -> wrap state')
  | s -> invalid_arg (Fmt.str "Snapshot_impl.scan_step: %a" Value.pp s)

(* --- the implementation ---------------------------------------------- *)

let implementation ~n : Implementation.t =
  let base = Array.init n (fun _ -> Register.spec ~init:(initial_reg n) ()) in
  let program ~pid (op : Op.t) : Implementation.op_program =
    match (op.name, op.args) with
    | "scan", [] ->
      {
        start = start_scan;
        delta =
          (fun ~pid state ->
            match state with
            | s when is_scan_state s ->
              scan_step ~n
                ~wrap:(fun s' -> s')
                ~k:(fun view -> Value.Pair (Value.Sym "return", view))
                s
            | Value.Pair (Value.Sym "return", view) -> Machine.Decide view
            | s -> Machine.bad_state ~machine:"snapshot-scan" ~pid s);
      }
    | "update", [ Value.Int i; v ] when i = pid ->
      (* States: Sym "read-own"
                 -> Pair (Int seq, <scan state>)      (embedded scan)
                 -> Pair (Int seq, Pair ("write", view))
                 -> Sym "done" *)
      {
        start = Value.Sym "read-own";
        delta =
          (fun ~pid state ->
            match state with
            | Value.Sym "read-own" ->
              Machine.invoke pid Register.read (fun r ->
                  Value.Pair (Value.Int (seq_of r), start_scan))
            | Value.Pair ((Value.Int seq as hdr), inner) -> (
              if is_scan_state inner then
                scan_step ~n
                  ~wrap:(fun s' -> Value.Pair (hdr, s'))
                  ~k:(fun view ->
                    Value.Pair (hdr, Value.Pair (Value.Sym "write", view)))
                  inner
              else
                match inner with
                | Value.Pair (Value.Sym "write", view) ->
                  Machine.invoke pid
                    (Register.write
                       (reg_content ~seq:(seq + 1) ~value:v ~view))
                    (fun _ -> Value.Sym "done")
                | s -> Machine.bad_state ~machine:"snapshot-update" ~pid s)
            | Value.Sym "done" -> Machine.Decide Value.Unit
            | s -> Machine.bad_state ~machine:"snapshot-update" ~pid s);
      }
    | "update", [ Value.Int i; _ ] ->
      invalid_arg
        (Fmt.str
           "Snapshot_impl: single-writer snapshot; process %d cannot update \
            component %d"
           pid i)
    | _ -> invalid_arg (Fmt.str "Snapshot_impl: unsupported %a" Op.pp op)
  in
  Implementation.make
    ~name:(Fmt.str "%d-snapshot-from-registers" n)
    ~target:(Classic.Snapshot.spec ~m:n ())
    ~base ~program

(* The broken single-collect scan: reads each register once and returns
   what it saw.  Not linearizable under concurrent updates. *)
let naive ~n : Implementation.t =
  let base = Array.init n (fun _ -> Register.spec ~init:(initial_reg n) ()) in
  let program ~pid (op : Op.t) : Implementation.op_program =
    match (op.name, op.args) with
    | "scan", [] ->
      {
        start = Value.List [];
        delta =
          (fun ~pid state ->
            match state with
            | Value.List partial when List.length partial < n ->
              Machine.invoke (List.length partial) Register.read (fun r ->
                  Value.List (partial @ [ value_of r ]))
            | Value.List partial -> Machine.Decide (Value.List partial)
            | s -> Machine.bad_state ~machine:"naive-scan" ~pid s);
      }
    | "update", [ Value.Int i; v ] when i = pid ->
      {
        start = Value.Sym "read-own";
        delta =
          (fun ~pid state ->
            match state with
            | Value.Sym "read-own" ->
              Machine.invoke pid Register.read (fun r ->
                  Value.Pair (Value.Sym "write", Value.Int (seq_of r)))
            | Value.Pair (Value.Sym "write", Value.Int seq) ->
              Machine.invoke pid
                (Register.write
                   (reg_content ~seq:(seq + 1) ~value:v ~view:(initial_view n)))
                (fun _ -> Value.Sym "done")
            | Value.Sym "done" -> Machine.Decide Value.Unit
            | s -> Machine.bad_state ~machine:"naive-update" ~pid s);
      }
    | _ -> invalid_arg (Fmt.str "Snapshot_impl.naive: unsupported %a" Op.pp op)
  in
  Implementation.make
    ~name:(Fmt.str "naive-%d-snapshot" n)
    ~target:(Classic.Snapshot.spec ~m:n ())
    ~base ~program
