(** The classic wait-free single-writer atomic snapshot from registers
    (Afek et al. 1993): process [pid] updates component [pid]; anyone may
    scan.  Clients issue [Classic.Snapshot.update pid v] and
    [Classic.Snapshot.scan]. *)

val implementation : n:int -> Implementation.t
(** The correct double-collect + borrowed-view construction. *)

val naive : n:int -> Implementation.t
(** The broken single-collect scan; not linearizable (negative fixture
    for the checker). *)
