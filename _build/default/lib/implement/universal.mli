(** Herlihy's universal construction (Herlihy 1991, the result the
    paper's Section 1 builds on): any deterministic object shared by n
    processes, implemented wait-free from n-consensus objects and
    registers, with round-robin helping through announce registers and a
    chain of consensus-decided log slots. *)

open Lbsa_spec

exception Out_of_slots of string
(** Raised when the workload outruns [max_slots]. *)

exception Port_budget_exceeded of string
(** Raised when a log slot answers ⊥: the consensus objects have fewer
    ports than there are clients (the Theorem 7.1 boundary, reachable by
    setting [consensus_m < n]). *)

val encode_op : Op.t -> Value.t
val decode_op : Value.t -> Op.t

val implementation :
  ?max_slots:int ->
  ?consensus_m:int ->
  n:int ->
  target:Obj_spec.t ->
  unit ->
  Implementation.t
(** [implementation ~n ~target ()] implements [target] (which must be
    deterministic) for [n] client processes.  [max_slots] (default 64)
    must cover the total operation count of the workload; [consensus_m]
    (default [n]) sizes the slot consensus objects — undersizing it
    makes the construction collapse, demonstrating why n-consensus
    objects cannot seat n+1 processes. *)
