lib/linearizability/checker.ml: Array Chistory Fmt Hashtbl Lbsa_spec List Obj_spec Set Value
