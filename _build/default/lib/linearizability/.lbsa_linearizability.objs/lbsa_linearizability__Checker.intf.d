lib/linearizability/checker.mli: Chistory Format Lbsa_spec Obj_spec
