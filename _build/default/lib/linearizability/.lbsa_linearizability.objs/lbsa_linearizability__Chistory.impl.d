lib/linearizability/chistory.ml: Fmt Hashtbl Lbsa_spec List Op Option Stdlib Value
