lib/linearizability/chistory.mli: Format Lbsa_spec Op Value
