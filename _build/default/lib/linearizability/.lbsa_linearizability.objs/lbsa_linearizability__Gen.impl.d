lib/linearizability/gen.ml: Array Chistory Lbsa_spec Lbsa_util List Obj_spec Op Value
