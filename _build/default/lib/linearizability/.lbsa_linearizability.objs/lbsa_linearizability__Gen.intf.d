lib/linearizability/gen.mli: Chistory Lbsa_spec Lbsa_util Obj_spec Op Value
