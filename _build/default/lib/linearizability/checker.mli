(** Wing–Gong linearizability checker, extended to nondeterministic
    sequential specifications. *)

open Lbsa_spec

type outcome =
  | Linearizable of Chistory.call list  (** a witness linearization *)
  | Not_linearizable

val is_linearizable : outcome -> bool

val check : ?memo:bool -> Obj_spec.t -> Chistory.t -> outcome
(** Decide linearizability of a complete, well-formed history (at most
    62 calls) against the specification.  Raises [Invalid_argument] on
    ill-formed or oversized histories.  [memo] (default true) enables
    memoization of visited (linearized-set, state-set) pairs; disabling
    it exists for the ablation benchmark only. *)

val pp_outcome : Format.formatter -> outcome -> unit
