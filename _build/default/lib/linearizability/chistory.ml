open Lbsa_spec

(* Concurrent histories of a single object (Herlihy & Wing): a set of
   completed calls, each with an invocation time and a response time.
   Call a precedes call b (a <_H b) iff a's response happened before b's
   invocation; linearizability asks for a total order extending <_H that
   is legal for the object's sequential specification. *)

type call = {
  pid : int;
  op : Op.t;
  response : Value.t;
  inv : int;  (* invocation timestamp *)
  res : int;  (* response timestamp; inv < res *)
}

type t = call list

let call ~pid ~op ~response ~inv ~res =
  if inv >= res then invalid_arg "Chistory.call: inv must precede res";
  { pid; op; response; inv; res }

let precedes a b = a.res < b.inv

let pp_call ppf c =
  Fmt.pf ppf "p%d [%d,%d] %a -> %a" c.pid c.inv c.res Op.pp c.op Value.pp
    c.response

let pp ppf h =
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:(any "@,") pp_call) h

(* Well-formedness: each process's calls are sequential (its intervals
   are disjoint and ordered). *)
let well_formed (h : t) =
  let by_pid = Hashtbl.create 8 in
  List.iter
    (fun c ->
      let cur = Option.value (Hashtbl.find_opt by_pid c.pid) ~default:[] in
      Hashtbl.replace by_pid c.pid (c :: cur))
    h;
  Hashtbl.fold
    (fun _ calls acc ->
      acc
      &&
      let sorted = List.sort (fun a b -> Stdlib.compare a.inv b.inv) calls in
      let rec ok = function
        | a :: (b :: _ as rest) -> a.res < b.inv && ok rest
        | _ -> true
      in
      ok sorted)
    by_pid true

(* A sequential history (one call at a time) from per-process op lists,
   for building known-linearizable test fixtures. *)
let of_sequential (events : (int * Op.t * Value.t) list) : t =
  List.mapi
    (fun i (pid, op, response) ->
      { pid; op; response; inv = (2 * i); res = (2 * i) + 1 })
    events
