(** Concurrent histories of a single object (Herlihy & Wing). *)

open Lbsa_spec

type call = {
  pid : int;
  op : Op.t;
  response : Value.t;
  inv : int;
  res : int;
}

type t = call list

val call :
  pid:int -> op:Op.t -> response:Value.t -> inv:int -> res:int -> call
(** Raises [Invalid_argument] unless [inv < res]. *)

val precedes : call -> call -> bool
(** Real-time precedence: [a] responded before [b] was invoked. *)

val well_formed : t -> bool
(** Per-process sequentiality of call intervals. *)

val of_sequential : (int * Op.t * Value.t) list -> t
(** A history where calls happen one after another, in list order. *)

val pp_call : Format.formatter -> call -> unit
val pp : Format.formatter -> t -> unit
