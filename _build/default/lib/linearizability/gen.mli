(** Random concurrent-history generation for linearizability testing. *)

open Lbsa_spec

val linearizable_history :
  prng:Lbsa_util.Prng.t ->
  spec:Obj_spec.t ->
  workloads:Op.t list array ->
  Chistory.t
(** Run the per-process operation lists against the specification under
    a random interleaving; the result is linearizable by construction. *)

val corrupt :
  prng:Lbsa_util.Prng.t -> ?substitute:Value.t -> Chistory.t -> Chistory.t
(** Replace one call's response, producing a candidate non-linearizable
    history (callers should discard cases that stay legal). *)
