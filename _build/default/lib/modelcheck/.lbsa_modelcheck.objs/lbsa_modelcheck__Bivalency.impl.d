lib/modelcheck/bivalency.ml: Array Config Fmt Graph Lbsa_runtime Lbsa_spec List Machine Obj_spec Op Option String Valence Value
