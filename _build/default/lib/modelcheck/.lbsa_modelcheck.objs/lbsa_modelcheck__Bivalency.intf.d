lib/modelcheck/bivalency.mli: Config Format Graph Lbsa_runtime Lbsa_spec Machine Obj_spec Op Valence Value
