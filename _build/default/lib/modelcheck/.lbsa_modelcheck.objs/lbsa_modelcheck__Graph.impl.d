lib/modelcheck/graph.ml: Array Config Hashtbl Lbsa_runtime Lbsa_spec List Machine Map Queue
