lib/modelcheck/graph.mli: Config Lbsa_runtime Lbsa_spec Machine
