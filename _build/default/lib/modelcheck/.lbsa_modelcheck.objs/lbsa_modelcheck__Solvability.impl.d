lib/modelcheck/solvability.ml: Array Config Fmt Graph Hashtbl Lbsa_protocols Lbsa_runtime Lbsa_spec List Map Option Value
