lib/modelcheck/solvability.mli: Config Format Graph Lbsa_runtime Lbsa_spec Machine Obj_spec Value
