lib/modelcheck/valence.ml: Array Config Fmt Graph Lbsa_runtime Lbsa_spec List Queue Set Value
