lib/modelcheck/valence.mli: Format Graph Lbsa_spec Set Value
