open Lbsa_runtime

(* The reachable configuration graph of a protocol: nodes are global
   configurations, edges are atomic steps (process id + event), with all
   scheduler choices and all object nondeterminism included.  This is the
   object the paper's proofs quantify over, built explicitly for small
   instances. *)

type edge = { pid : int; event : Config.event; target : int }

type t = {
  nodes : Config.t array;
  edges : edge list array;  (* out-edges per node *)
  initial : int;
  truncated : bool;  (* true if max_states was hit: results are partial *)
}

exception Truncated

module CMap = Map.Make (Config)

(* Breadth-first construction of the reachable graph. *)
let build ?(max_states = 200_000) ~(machine : Machine.t)
    ~(specs : Lbsa_spec.Obj_spec.t array) ~inputs () =
  let init = Config.initial ~machine ~specs ~inputs in
  let ids = ref (CMap.singleton init 0) in
  let nodes = ref [ init ] in
  let n_nodes = ref 1 in
  let edges : (int, edge list) Hashtbl.t = Hashtbl.create 1024 in
  let queue = Queue.create () in
  let truncated = ref false in
  Queue.add (init, 0) queue;
  let id_of config =
    match CMap.find_opt config !ids with
    | Some id -> Some id
    | None ->
      if !n_nodes >= max_states then (
        truncated := true;
        None)
      else begin
        let id = !n_nodes in
        ids := CMap.add config id !ids;
        nodes := config :: !nodes;
        incr n_nodes;
        Queue.add (config, id) queue;
        Some id
      end
  in
  while not (Queue.is_empty queue) do
    let config, id = Queue.pop queue in
    let out =
      List.concat_map
        (fun pid ->
          List.filter_map
            (fun (config', event) ->
              match id_of config' with
              | Some target -> Some { pid; event; target }
              | None -> None)
            (Config.step_branches ~machine ~specs config pid))
        (Config.running config)
    in
    Hashtbl.replace edges id out
  done;
  let nodes = Array.of_list (List.rev !nodes) in
  let out = Array.make (Array.length nodes) [] in
  Hashtbl.iter (fun id es -> out.(id) <- es) edges;
  { nodes; edges = out; initial = 0; truncated = !truncated }

let n_nodes t = Array.length t.nodes
let n_edges t = Array.fold_left (fun acc es -> acc + List.length es) 0 t.edges

let node t id = t.nodes.(id)
let out_edges t id = t.edges.(id)

let iter_nodes f t = Array.iteri (fun id config -> f id config) t.nodes

let require_complete t =
  if t.truncated then raise Truncated

(* Shortest path (in steps) from the initial node to [target], as the
   list of edges taken: the schedule that reproduces a violating
   configuration, replayable with Scheduler.fixed. *)
let shortest_path t ~target =
  if target = t.initial then Some []
  else begin
    let n = n_nodes t in
    let parent = Array.make n None in
    let queue = Queue.create () in
    Queue.add t.initial queue;
    let seen = Array.make n false in
    seen.(t.initial) <- true;
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      List.iter
        (fun e ->
          if (not seen.(e.target)) && not !found then begin
            seen.(e.target) <- true;
            parent.(e.target) <- Some (u, e);
            if e.target = target then found := true
            else Queue.add e.target queue
          end)
        (out_edges t u)
    done;
    if not !found then None
    else begin
      let rec walk node acc =
        match parent.(node) with
        | None -> acc
        | Some (u, e) -> walk u (e :: acc)
      in
      Some (walk target [])
    end
  end

let schedule_of_path edges = List.map (fun e -> e.pid) edges

(* Strongly connected components (iterative Kosaraju), used for the
   wait-freedom and livelock analyses.  Returns the component id of each
   node and the component count; ids are assigned in topological order of
   the condensation (sources first). *)
let scc t =
  let n = n_nodes t in
  (* Pass 1: forward DFS, record finish order. *)
  let visited = Array.make n false in
  let finish_order = ref [] in
  for start = 0 to n - 1 do
    if not visited.(start) then begin
      let stack = ref [ (start, ref (out_edges t start)) ] in
      visited.(start) <- true;
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | (u, iter) :: rest -> (
          match !iter with
          | [] ->
            finish_order := u :: !finish_order;
            stack := rest
          | e :: es ->
            iter := es;
            if not visited.(e.target) then begin
              visited.(e.target) <- true;
              stack := (e.target, ref (out_edges t e.target)) :: !stack
            end)
      done
    end
  done;
  (* Reverse adjacency. *)
  let rev = Array.make n [] in
  Array.iteri
    (fun u es -> List.iter (fun e -> rev.(e.target) <- u :: rev.(e.target)) es)
    t.edges;
  (* Pass 2: DFS on the reverse graph in finish order. *)
  let comp = Array.make n (-1) in
  let next_comp = ref 0 in
  List.iter
    (fun start ->
      if comp.(start) = -1 then begin
        let c = !next_comp in
        incr next_comp;
        let stack = ref [ start ] in
        comp.(start) <- c;
        while !stack <> [] do
          match !stack with
          | [] -> ()
          | u :: rest ->
            stack := rest;
            List.iter
              (fun v ->
                if comp.(v) = -1 then begin
                  comp.(v) <- c;
                  stack := v :: !stack
                end)
              rev.(u)
        done
      end)
    !finish_order;
  (comp, !next_comp)
