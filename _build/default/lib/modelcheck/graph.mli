(** The reachable configuration graph of a protocol: all configurations
    reachable from the initial one under every scheduler choice and every
    nondeterministic object response — the object the paper's proofs
    quantify over, built explicitly for small instances. *)

open Lbsa_runtime

type edge = { pid : int; event : Config.event; target : int }

type t = {
  nodes : Config.t array;
  edges : edge list array;
  initial : int;
  truncated : bool;
      (** true when [max_states] was hit; results are then partial *)
}

exception Truncated

val build :
  ?max_states:int ->
  machine:Machine.t ->
  specs:Lbsa_spec.Obj_spec.t array ->
  inputs:Lbsa_spec.Value.t array ->
  unit ->
  t
(** Breadth-first construction (default bound: 200_000 states). *)

val n_nodes : t -> int
val n_edges : t -> int
val node : t -> int -> Config.t
val out_edges : t -> int -> edge list
val iter_nodes : (int -> Config.t -> unit) -> t -> unit

val require_complete : t -> unit
(** Raises {!Truncated} if the graph was cut off at [max_states]. *)

val shortest_path : t -> target:int -> edge list option
(** Shortest edge path from the initial node to [target] — the schedule
    reproducing that configuration.  [None] only if [target] is not in
    the graph (cannot happen for ids produced by this graph). *)

val schedule_of_path : edge list -> int list
(** The process ids along a path, replayable with [Scheduler.fixed].
    Nondeterministic object branches along the path must be replayed
    with a matching adversary. *)

val scc : t -> int array * int
(** Strongly connected components (Kosaraju): per-node component id and
    component count, ids in topological order of the condensation. *)
