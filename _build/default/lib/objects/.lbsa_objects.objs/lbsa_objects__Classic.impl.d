lib/objects/classic.ml: Fmt Lbsa_spec List Obj_spec Op Value
