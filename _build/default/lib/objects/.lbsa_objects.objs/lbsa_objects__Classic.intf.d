lib/objects/classic.mli: Lbsa_spec Obj_spec Op Value
