lib/objects/consensus_obj.ml: Fmt Lbsa_spec Obj_spec Op Value
