lib/objects/consensus_obj.mli: Lbsa_spec
