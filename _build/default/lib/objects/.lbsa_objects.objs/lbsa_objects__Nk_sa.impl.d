lib/objects/nk_sa.ml: Fmt Lbsa_spec List Obj_spec Op Set_ Value
