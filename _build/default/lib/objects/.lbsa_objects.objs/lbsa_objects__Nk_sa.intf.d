lib/objects/nk_sa.mli: Lbsa_spec
