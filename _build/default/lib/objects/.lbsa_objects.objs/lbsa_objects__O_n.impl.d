lib/objects/o_n.ml: Fmt Lbsa_spec Obj_spec Pac_nm
