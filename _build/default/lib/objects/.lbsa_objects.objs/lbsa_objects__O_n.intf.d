lib/objects/o_n.mli: Lbsa_spec Obj_spec Op Value
