lib/objects/o_prime.ml: Fmt Lbsa_spec Lbsa_util List Nk_sa Obj_spec Op Option Value
