lib/objects/o_prime.mli: Lbsa_spec Obj_spec Op Value
