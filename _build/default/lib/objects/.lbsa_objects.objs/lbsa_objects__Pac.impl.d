lib/objects/pac.ml: Fmt Lbsa_spec Lbsa_util List Obj_spec Op Shistory Value
