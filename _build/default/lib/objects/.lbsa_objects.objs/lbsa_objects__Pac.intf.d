lib/objects/pac.mli: Lbsa_spec Obj_spec Op Shistory Value
