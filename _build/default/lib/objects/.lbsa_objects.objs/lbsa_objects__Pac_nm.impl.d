lib/objects/pac_nm.ml: Consensus_obj Fmt Lbsa_spec Obj_spec Op Pac Value
