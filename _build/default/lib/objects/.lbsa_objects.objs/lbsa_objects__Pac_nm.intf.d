lib/objects/pac_nm.mli: Lbsa_spec Obj_spec Op Value
