lib/objects/register.ml: Lbsa_spec Obj_spec Op Value
