lib/objects/register.mli: Lbsa_spec
