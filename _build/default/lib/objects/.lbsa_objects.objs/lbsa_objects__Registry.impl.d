lib/objects/registry.ml: Classic Consensus_obj Fmt Lbsa_spec Nk_sa O_n O_prime Obj_spec Pac Pac_nm Register Sa2 String Value
