lib/objects/registry.mli: Lbsa_spec
