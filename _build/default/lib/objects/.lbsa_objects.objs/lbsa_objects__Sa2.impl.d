lib/objects/sa2.ml: Lbsa_spec List Obj_spec Op Value
