lib/objects/sa2.mli: Lbsa_spec
