(** Classic deterministic shared objects used to situate the paper's
    objects in Herlihy's consensus hierarchy. *)

open Lbsa_spec

(** Consensus number 2. *)
module Test_and_set : sig
  val test_and_set : Op.t
  (** Returns the previous bit and sets it. *)

  val reset : Op.t
  val read : Op.t
  val spec : unit -> Obj_spec.t
end

(** Consensus number 2. *)
module Fetch_and_add : sig
  val fetch_and_add : int -> Op.t
  (** Returns the previous value and adds the delta. *)

  val read : Op.t
  val spec : ?init:int -> unit -> Obj_spec.t
end

(** Consensus number 2. *)
module Swap : sig
  val swap : Value.t -> Op.t
  (** Returns the previous value and installs the new one. *)

  val spec : ?init:Value.t -> unit -> Obj_spec.t
end

(** FIFO queue; consensus number 2. [dequeue] on empty returns [Nil].
    [init] pre-loads the queue (used by Herlihy's consensus-from-queue
    construction). *)
module Queue_obj : sig
  val enqueue : Value.t -> Op.t
  val dequeue : Op.t
  val spec : ?init:Value.t list -> unit -> Obj_spec.t
end

(** Consensus number ∞. *)
module Compare_and_swap : sig
  val compare_and_swap : expected:Value.t -> desired:Value.t -> Op.t
  (** Returns [Bool true] and installs [desired] iff the current value
      equals [expected]. *)

  val read : Op.t
  val spec : ?init:Value.t -> unit -> Obj_spec.t
end

(** Sticky register: the first write sticks, every write returns the
    stuck value. Consensus number ∞. *)
module Sticky : sig
  val write : Value.t -> Op.t
  val read : Op.t
  val spec : unit -> Obj_spec.t
end

(** m-component snapshot with forward-only cells: each cell holds
    [Pair (Int step, payload)] and updates with a non-increasing step
    counter are no-ops.  Used by the BG simulation; consensus
    number 1. *)
module Monotone_snapshot : sig
  val update : int -> step:int -> Value.t -> Op.t
  val scan : Op.t
  val initial : m:int -> Value.t
  val step_of : Value.t -> int
  (** Step counter of a cell ([-1] for [Nil]). *)

  val spec : m:int -> unit -> Obj_spec.t
end

(** m-component atomic snapshot as a primitive object; consensus
    number 1. *)
module Snapshot : sig
  val update : int -> Value.t -> Op.t
  val scan : Op.t
  val initial : m:int -> Value.t
  val spec : m:int -> unit -> Obj_spec.t
end
