(** The deterministic m-consensus object (Jayanti / Qadri formulation,
    footnote 6 of the paper): the first m [propose] operations return the
    first proposed value; all later ones return ⊥. *)

val propose : Lbsa_spec.Value.t -> Lbsa_spec.Op.t

val initial : Lbsa_spec.Value.t

val spec : m:int -> unit -> Lbsa_spec.Obj_spec.t
(** [spec ~m ()] is an m-consensus object. Raises [Invalid_argument] when
    [m < 1]. *)
