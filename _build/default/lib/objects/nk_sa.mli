(** The (n,k)-SA object: an arbitrary solution to the k-set agreement
    problem among n processes (Section 6 of the paper).

    Up to n [propose] operations each receive some value proposed so far,
    with at most k distinct responses overall; later operations receive
    ⊥.  Maximally nondeterministic subject to validity and k-agreement. *)

val propose : Lbsa_spec.Value.t -> Lbsa_spec.Op.t
val initial : Lbsa_spec.Value.t

val spec : n:int -> k:int -> unit -> Lbsa_spec.Obj_spec.t
(** Raises [Invalid_argument] when [n < 1] or [k < 1]. *)
