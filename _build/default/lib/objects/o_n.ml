open Lbsa_spec

(* O_n, the deterministic witness object of the main theorem
   (Definition 6.1): O_n is the (n+1, n)-PAC object.  By Observation 6.2
   it has consensus number n; by Observation 6.3 it cannot be implemented
   from n-consensus objects, registers and 2-SA objects. *)

let spec ~n () =
  if n < 2 then invalid_arg "O_n.spec: the paper defines O_n for n >= 2";
  let inner = Pac_nm.spec ~n:(n + 1) ~m:n () in
  { inner with Obj_spec.name = Fmt.str "O_%d" n }

let propose_c = Pac_nm.propose_c
let propose_p = Pac_nm.propose_p
let decide_p = Pac_nm.decide_p
let initial ~n = Pac_nm.initial ~n:(n + 1)
