(** O_n = the (n+1, n)-PAC object (Definition 6.1), the deterministic
    object witnessing that set agreement power does not determine
    computational power.  Defined for n >= 2. *)

open Lbsa_spec

val spec : n:int -> unit -> Obj_spec.t
(** Raises [Invalid_argument] when [n < 2]. *)

val propose_c : Value.t -> Op.t
val propose_p : Value.t -> int -> Op.t
val decide_p : int -> Op.t
val initial : n:int -> Value.t
