(** O'_n, the companion object of Section 6: a bundle of (n_k, k)-SA
    objects, one per component of the set agreement power of O_n.
    [propose v k] redirects to the (n_k, k)-SA member.

    The paper's power sequence is infinite with no closed form; the
    construction is uniform in the sequence, so this module is
    parameterized by a finite prefix. *)

open Lbsa_spec

type power = int list
(** [power] lists n_1, n_2, ..., n_K. *)

val default_power : n:int -> max_k:int -> power
(** The prefix used throughout the repository: n_1 = n (Observation 6.2)
    and n_k = k*n for k >= 2 (the lower bound from the n-consensus facet
    via the partition protocol). *)

val propose : Value.t -> int -> Op.t
(** [propose v k] — PROPOSE(v, k). *)

val members : power:power -> (int * Obj_spec.t) list
(** The (n_k, k)-SA member specifications, keyed by k. *)

val initial : power:power -> Value.t

val spec : ?name:string -> power:power -> unit -> Obj_spec.t

val spec_for : n:int -> max_k:int -> unit -> Obj_spec.t
(** [spec_for ~n ~max_k ()] = [spec ~power:(default_power ~n ~max_k) ()]. *)
