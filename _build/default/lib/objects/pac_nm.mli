(** The (n,m)-PAC object (Section 5): deterministic combination of an
    n-PAC object and an m-consensus object.

    Theorem 5.3: for m >= 2, this object sits at level m of the consensus
    hierarchy, regardless of n. *)

open Lbsa_spec

val propose_c : Value.t -> Op.t
(** PROPOSEC(v): redirected to the m-consensus facet. *)

val propose_p : Value.t -> int -> Op.t
(** PROPOSEP(v, i): redirected to the n-PAC facet. *)

val decide_p : int -> Op.t
(** DECIDEP(i): redirected to the n-PAC facet. *)

val initial : n:int -> Value.t

val pac_state : Value.t -> Value.t
(** The n-PAC component of a state (for introspection in tests). *)

val consensus_state : Value.t -> Value.t

val spec : n:int -> m:int -> unit -> Obj_spec.t
