(** Atomic read/write register.

    Operations: [read] returns the current contents; [write v] replaces
    them and returns [Unit].  Deterministic. *)

val read : Lbsa_spec.Op.t
val write : Lbsa_spec.Value.t -> Lbsa_spec.Op.t

val spec : ?init:Lbsa_spec.Value.t -> unit -> Lbsa_spec.Obj_spec.t
(** [spec ~init ()] is a register initially holding [init]
    (default [Nil]). *)
