(** Name-based object construction for the CLI and table-driven
    experiments. *)

val of_string : string -> Lbsa_spec.Obj_spec.t
(** Parse an object description such as ["pac:3"], ["cons:2"], ["2sa"],
    ["on:2"], ["oprime:2:4"].  Raises [Invalid_argument] on unknown
    syntax. *)

val known : (string * string) list
(** Supported descriptions with one-line help, for [--help] output. *)
