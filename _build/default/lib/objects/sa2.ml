open Lbsa_spec

(* The strong 2-set-agreement object (Algorithm 3 of the paper).

   State: a set STATE, initially empty.  PROPOSE(v) adds v to STATE when
   |STATE| < 2, then returns an *arbitrary* element of STATE.  The
   arbitrariness is genuine adversarial nondeterminism: [step] returns
   one branch per element, so the model checker explores every adversary
   and the simulator resolves with a pluggable choice.

   Consequently the object answers with at most the first two distinct
   proposed values: it solves the k-set agreement problem among any
   number of processes for every k >= 2. *)

let propose v = Op.make "propose" [ v ]

let initial = Value.Set_.empty

let spec () =
  let step state (op : Op.t) =
    match (op.name, op.args) with
    | "propose", [ v ] ->
      let state' =
        if Value.Set_.cardinal state < 2 then Value.Set_.add v state else state
      in
      List.map
        (fun r : Obj_spec.branch -> { next = state'; response = r })
        (Value.Set_.elements state')
    | _ -> Obj_spec.unknown "2-SA" op
  in
  Obj_spec.make ~name:"2-SA" ~initial ~step ()
