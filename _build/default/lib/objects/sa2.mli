(** The strong 2-set-agreement (2-SA) object, Algorithm 3 of the paper.

    [propose v] adds [v] to the internal STATE set while it has fewer
    than two elements, then returns an adversarially chosen element of
    STATE.  Nondeterministic: the specification exposes one branch per
    allowed response. *)

val propose : Lbsa_spec.Value.t -> Lbsa_spec.Op.t
val initial : Lbsa_spec.Value.t
val spec : unit -> Lbsa_spec.Obj_spec.t
