lib/protocols/candidates.ml: Consensus_obj Fmt Lbsa_objects Lbsa_runtime Lbsa_spec Machine Obj_spec Pac Pac_nm Register Sa2 Value
