lib/protocols/candidates.mli: Lbsa_runtime Lbsa_spec Machine Obj_spec
