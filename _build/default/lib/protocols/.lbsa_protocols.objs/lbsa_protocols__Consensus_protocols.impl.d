lib/protocols/consensus_protocols.ml: Classic Consensus_obj Fmt Lbsa_objects Lbsa_runtime Lbsa_spec Machine O_n O_prime Obj_spec Pac_nm Register Value
