lib/protocols/consensus_task.ml: Array Config Executor Fmt Lbsa_runtime Lbsa_spec List Value
