lib/protocols/consensus_task.mli: Config Executor Format Lbsa_runtime Lbsa_spec Value
