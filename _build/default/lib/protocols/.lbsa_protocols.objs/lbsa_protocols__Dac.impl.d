lib/protocols/dac.ml: Array Config Consensus_task Executor Fmt Lbsa_runtime Lbsa_spec Lbsa_util List Trace Value
