lib/protocols/dac.mli: Config Format Lbsa_runtime Lbsa_spec Machine Obj_spec Trace Value
