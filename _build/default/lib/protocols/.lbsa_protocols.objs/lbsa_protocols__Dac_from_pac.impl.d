lib/protocols/dac_from_pac.ml: Dac Fmt Lbsa_objects Lbsa_runtime Lbsa_spec Machine O_n Obj_spec Pac Pac_nm Value
