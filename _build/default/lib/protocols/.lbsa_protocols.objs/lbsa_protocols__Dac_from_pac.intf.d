lib/protocols/dac_from_pac.mli: Lbsa_runtime Lbsa_spec Machine Obj_spec Op Value
