lib/protocols/kset_protocols.ml: Array Consensus_obj Consensus_protocols Fmt Lbsa_objects Lbsa_runtime Lbsa_spec List Machine Nk_sa O_n O_prime Obj_spec Pac_nm Sa2 Value
