lib/protocols/kset_protocols.mli: Lbsa_objects Lbsa_runtime Lbsa_spec Machine O_prime Obj_spec
