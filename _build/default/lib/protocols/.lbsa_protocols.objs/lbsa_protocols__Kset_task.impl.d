lib/protocols/kset_task.ml: Array Config Executor Fmt Lbsa_runtime Lbsa_spec Lbsa_util List Value
