lib/protocols/kset_task.mli: Config Executor Format Lbsa_runtime Lbsa_spec Value
