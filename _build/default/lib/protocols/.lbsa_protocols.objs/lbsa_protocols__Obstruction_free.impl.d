lib/protocols/obstruction_free.ml: Array Fmt Lbsa_objects Lbsa_runtime Lbsa_spec List Machine Obj_spec Register Value
