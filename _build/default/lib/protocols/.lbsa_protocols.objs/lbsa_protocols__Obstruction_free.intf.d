lib/protocols/obstruction_free.mli: Lbsa_runtime Lbsa_spec Machine Obj_spec
