lib/protocols/safe_agreement.ml: Array Classic Config Fmt Lbsa_objects Lbsa_runtime Lbsa_spec List Machine Obj_spec Value
