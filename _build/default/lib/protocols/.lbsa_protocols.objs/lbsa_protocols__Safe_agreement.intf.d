lib/protocols/safe_agreement.mli: Config Lbsa_runtime Lbsa_spec Machine Obj_spec
