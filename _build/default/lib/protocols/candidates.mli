(** Natural-but-doomed candidate protocols for the paper's impossible
    tasks.  The model checker exhibits each one's failure (a violating
    schedule or non-terminating fair run); see EXPERIMENTS.md for the
    epistemic status of these experiments. *)

open Lbsa_spec
open Lbsa_runtime

val flp_write_read : Machine.t * Obj_spec.t array
(** 2-process register consensus attempt; fails agreement. *)

val flp_spin : Machine.t * Obj_spec.t array
(** 2-process register consensus attempt; safe but not wait-free. *)

val dac3_sa2_then_cons2 : Machine.t * Obj_spec.t array
(** 3-DAC from 2-SA + 2-consensus; fails agreement (Theorem 4.2). *)

val dac_cons_announce : m:int -> Machine.t * Obj_spec.t array
(** The announce candidate family: DAC from one m-consensus object plus
    a register; fails Termination (b) whenever more than m processes
    run it (Theorems 4.2 and 7.1 evidence). *)

val dac3_cons2_announce : Machine.t * Obj_spec.t array
(** [dac_cons_announce ~m:2] run by 3 processes; fails Termination (b). *)

val consensus_m1_from_pac_nm : n:int -> m:int -> Machine.t * Obj_spec.t array
(** (m+1)-consensus from one (n,m)-PAC via PROPOSEC + announce; fails
    wait-free termination (Theorem 5.2). *)

val consensus_from_pac_retry :
  n:int -> procs:int -> Machine.t * Obj_spec.t array
(** Consensus from one n-PAC with retry-on-⊥; safe but livelocks under
    fair alternation. *)
