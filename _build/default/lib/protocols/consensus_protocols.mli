(** Consensus protocols from the paper's object families — the positive
    directions of the hierarchy results.  Each function returns the
    protocol machine together with its object array. *)

open Lbsa_spec
open Lbsa_objects
open Lbsa_runtime

val obj_index : int

val one_shot :
  name:string ->
  mk_op:(Value.t -> Op.t) ->
  ?on_response:(input:Value.t -> Value.t -> Value.t) ->
  unit ->
  Machine.t
(** Generic "invoke once on object 0, decide the response" machine. *)

val from_consensus_obj : m:int -> Machine.t * Obj_spec.t array
(** m processes, one m-consensus object. *)

val from_pac_nm : n:int -> m:int -> Machine.t * Obj_spec.t array
(** m processes, one (n,m)-PAC object via PROPOSEC
    (Observation 5.1(c)). *)

val from_o_n : n:int -> Machine.t * Obj_spec.t array
(** n processes, one O_n object (Observation 6.2). *)

val from_oprime : power:O_prime.power -> Machine.t * Obj_spec.t array
(** n_1 processes, one O'_n object via its k = 1 member. *)

val from_sticky : unit -> Machine.t * Obj_spec.t array
(** Any number of processes, one sticky register. *)

val from_test_and_set : unit -> Machine.t * Obj_spec.t array
(** 2 processes, one test-and-set and two registers (Herlihy's level-2
    construction). *)

val two_process_race :
  name:string ->
  object_spec:Obj_spec.t ->
  race:Op.t ->
  won:(Value.t -> bool) ->
  Machine.t * Obj_spec.t array
(** The generic announce-then-race shape behind the level-2
    constructions. *)

val from_queue : unit -> Machine.t * Obj_spec.t array
(** 2 processes, one queue pre-loaded with a winner token. *)

val from_fetch_and_add : unit -> Machine.t * Obj_spec.t array
(** 2 processes, one fetch-and-add counter. *)

val from_swap : unit -> Machine.t * Obj_spec.t array
(** 2 processes, one swap register. *)

val from_compare_and_swap : unit -> Machine.t * Obj_spec.t array
(** Any number of processes, one compare-and-swap cell. *)
