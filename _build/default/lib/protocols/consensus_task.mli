(** The consensus task: per-execution property checkers (agreement,
    validity, termination).  Exhaustive quantification over schedules
    lives in {!Lbsa_modelcheck.Solvability}. *)

open Lbsa_spec
open Lbsa_runtime

type violation =
  | Disagreement of Value.t * Value.t
  | Invalid_decision of Value.t
  | Unexpected_abort of int
  | Nontermination

val pp_violation : Format.formatter -> violation -> unit

val check_agreement : Config.t -> (unit, violation) result
val check_validity : inputs:Value.t array -> Config.t -> (unit, violation) result
val check_no_abort : Config.t -> (unit, violation) result

val check_safety :
  inputs:Value.t array -> Config.t -> (unit, violation) result
(** Agreement, validity and no-abort on a (possibly partial)
    configuration. *)

val check_run :
  inputs:Value.t array -> Executor.result -> (unit, violation) result
(** [check_safety] plus wait-free termination of a completed run. *)

val binary_inputs : int -> Value.t array list
(** All 2^n binary input assignments for n processes. *)
