open Lbsa_spec
open Lbsa_runtime

(* The n-DAC problem (Section 4): n >= 2 processes with binary inputs
   must decide a common binary value; process 0 is the distinguished
   process p, which may abort instead of deciding.

   Properties of an execution (verbatim from the paper):
   - Agreement: all decided values are equal;
   - Validity: a decided value is the input of some process that did not
     abort;
   - Termination (a): if p takes infinitely many steps, p decides or
     aborts -- checked as: p cannot take [fuel] steps while remaining
     undecided;
   - Termination (b): every q != p running solo eventually decides;
   - Nontriviality: if p aborts, some q != p took at least one step
     before the abort. *)

let distinguished = 0

type violation =
  | Disagreement of Value.t * Value.t
  | Invalid_decision of Value.t
  | Abort_by_non_distinguished of int
  | Nontriviality_violated  (* p aborted although no q took a step *)
  | Termination_a_violated  (* p ran out of fuel undecided *)
  | Termination_b_violated of int  (* q ran solo out of fuel undecided *)

let pp_violation ppf = function
  | Disagreement (a, b) ->
    Fmt.pf ppf "disagreement: %a vs %a" Value.pp a Value.pp b
  | Invalid_decision v -> Fmt.pf ppf "invalid decision: %a" Value.pp v
  | Abort_by_non_distinguished pid ->
    Fmt.pf ppf "non-distinguished process %d aborted" pid
  | Nontriviality_violated ->
    Fmt.string ppf "p aborted with no steps by other processes"
  | Termination_a_violated ->
    Fmt.string ppf "p took many steps without deciding or aborting"
  | Termination_b_violated pid ->
    Fmt.pf ppf "process %d ran solo without deciding" pid

let check_agreement (config : Config.t) =
  match Config.decisions config with
  | [] | [ _ ] -> Ok ()
  | v :: rest -> (
    match List.find_opt (fun v' -> not (Value.equal v v')) rest with
    | None -> Ok ()
    | Some v' -> Error (Disagreement (v, v')))

(* Validity needs to know who aborted: a decided value must be the input
   of a process that did not abort. *)
let check_validity ~inputs (config : Config.t) =
  let n = Config.n_processes config in
  let eligible =
    List.filter_map
      (fun pid ->
        if config.status.(pid) = Config.Aborted then None
        else Some inputs.(pid))
      (Lbsa_util.Listx.range 0 (n - 1))
  in
  match
    List.find_opt
      (fun v -> not (List.exists (Value.equal v) eligible))
      (Config.decisions config)
  with
  | None -> Ok ()
  | Some v -> Error (Invalid_decision v)

let check_aborts (config : Config.t) =
  let n = Config.n_processes config in
  let rec go pid =
    if pid >= n then Ok ()
    else if config.status.(pid) = Config.Aborted && pid <> distinguished then
      Error (Abort_by_non_distinguished pid)
    else go (pid + 1)
  in
  go 0

(* Nontriviality over a trace: p's abort must be preceded by a step of
   some q != p. *)
let check_nontriviality (trace : Trace.t) =
  let rec go seen_other = function
    | [] -> Ok ()
    | (e : Trace.entry) :: rest -> (
      match e.event with
      | Config.Abort_event { pid } when pid = distinguished ->
        if seen_other then Ok () else Error Nontriviality_violated
      | ev ->
        let pid = Trace.pid_of_event ev in
        go (seen_other || pid <> distinguished) rest)
  in
  go false trace

let check_safety ~inputs ~trace config =
  let ( let* ) r f =
    match r with
    | Ok () -> f ()
    | Error _ as e -> e
  in
  let* () = check_agreement config in
  let* () = check_validity ~inputs config in
  let* () = check_aborts config in
  check_nontriviality trace

(* Termination (a): from any reachable configuration, running p solo for
   [fuel] steps must halt it. *)
let check_termination_a ?(fuel = 10_000) ~machine ~specs config =
  if not (Config.is_running config distinguished) then Ok ()
  else
    let r = Executor.run_solo ~max_steps:fuel ~machine ~specs config distinguished in
    match r.stop with
    | Executor.All_halted -> Ok ()
    | _ -> Error Termination_a_violated

(* Termination (b): from any reachable configuration, each q != p running
   solo for [fuel] steps must decide. *)
let check_termination_b ?(fuel = 10_000) ~machine ~specs config =
  let n = Config.n_processes config in
  let rec go pid =
    if pid >= n then Ok ()
    else if pid = distinguished || not (Config.is_running config pid) then
      go (pid + 1)
    else
      let r = Executor.run_solo ~max_steps:fuel ~machine ~specs config pid in
      match (r.stop, r.final.status.(pid)) with
      | Executor.All_halted, Config.Decided _ -> go (pid + 1)
      | _ -> Error (Termination_b_violated pid)
  in
  go 1

(* All 2^n binary input vectors; the distinguished process is index 0. *)
let binary_inputs = Consensus_task.binary_inputs
