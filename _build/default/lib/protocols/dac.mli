(** The n-DAC problem (Section 4 of the paper) and its per-execution
    property checkers.  Process 0 is the distinguished process p. *)

open Lbsa_spec
open Lbsa_runtime

val distinguished : int
(** Index of the distinguished process p (always 0). *)

type violation =
  | Disagreement of Value.t * Value.t
  | Invalid_decision of Value.t
  | Abort_by_non_distinguished of int
  | Nontriviality_violated
  | Termination_a_violated
  | Termination_b_violated of int

val pp_violation : Format.formatter -> violation -> unit

val check_agreement : Config.t -> (unit, violation) result

val check_validity :
  inputs:Value.t array -> Config.t -> (unit, violation) result
(** A decided value must be the input of some process that did not
    abort. *)

val check_aborts : Config.t -> (unit, violation) result
(** Only the distinguished process may abort. *)

val check_nontriviality : Trace.t -> (unit, violation) result
(** If p aborts, some other process took a step before the abort. *)

val check_safety :
  inputs:Value.t array ->
  trace:Trace.t ->
  Config.t ->
  (unit, violation) result

val check_termination_a :
  ?fuel:int ->
  machine:Machine.t ->
  specs:Obj_spec.t array ->
  Config.t ->
  (unit, violation) result
(** From this configuration, p running solo must decide or abort. *)

val check_termination_b :
  ?fuel:int ->
  machine:Machine.t ->
  specs:Obj_spec.t array ->
  Config.t ->
  (unit, violation) result
(** From this configuration, every running q != p must decide when run
    solo. *)

val binary_inputs : int -> Value.t array list
