(** Algorithm 2 of the paper: solving the n-DAC problem with a single
    n-PAC object (Theorem 4.1).  Process [Dac.distinguished] plays p;
    process [pid] uses PAC label [pid + 1]. *)

open Lbsa_spec
open Lbsa_runtime

val pac_index : int
(** Index of the n-PAC object in {!specs} (0). *)

val label_of_pid : int -> int

val machine_via :
  name:string ->
  propose:(Value.t -> int -> Op.t) ->
  decide:(int -> Op.t) ->
  Machine.t
(** Algorithm 2 parameterized by the PAC propose/decide operations. *)

val machine : n:int -> Machine.t
(** Raises [Invalid_argument] when [n < 2]. *)

val specs : n:int -> Obj_spec.t array
(** The single n-PAC object. *)

val machine_via_o_n : n:int -> Machine.t
(** (n+1)-DAC among n+1 processes through the (n+1)-PAC facet of O_n
    (Observation 5.1(b) + Theorem 4.1). *)

val specs_via_o_n : n:int -> Obj_spec.t array
(** The single O_n object. *)
