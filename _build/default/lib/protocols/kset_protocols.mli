(** k-set agreement protocols — the positive directions of the set
    agreement power computations.  Each function returns the protocol
    machine and its object array. *)

open Lbsa_spec
open Lbsa_objects
open Lbsa_runtime

val partition : m:int -> k:int -> Machine.t * Obj_spec.t array
(** k*m processes, k m-consensus objects: process [pid] proposes to
    object [pid/m].  The protocol behind n_k(m-consensus) = k*m. *)

val from_sa2 : k:int -> Machine.t * Obj_spec.t array
(** Any number of processes, one strong 2-SA object; requires k >= 2. *)

val from_nk_sa : n:int -> k:int -> Machine.t * Obj_spec.t array
(** n processes, one (n,k)-SA object. *)

val from_oprime : power:O_prime.power -> k:int -> Machine.t * Obj_spec.t array
(** n_k processes, one O'_n object through its k-th member. *)

val partition_from_o_n : n:int -> k:int -> Machine.t * Obj_spec.t array
(** k*n processes, k O_n objects via their n-consensus facets: the
    constructive lower bound n_k(O_n) >= k*n. *)
