(** The k-set agreement task: every process decides a proposed value and
    at most k distinct values are decided. *)

open Lbsa_spec
open Lbsa_runtime

type violation =
  | Too_many_values of Value.t list
  | Invalid_decision of Value.t
  | Nontermination

val pp_violation : Format.formatter -> violation -> unit

val distinct_decisions : Config.t -> Value.t list
val check_k_agreement : k:int -> Config.t -> (unit, violation) result
val check_validity : inputs:Value.t array -> Config.t -> (unit, violation) result
val check_safety :
  k:int -> inputs:Value.t array -> Config.t -> (unit, violation) result
val check_run :
  k:int -> inputs:Value.t array -> Executor.result -> (unit, violation) result

val distinct_inputs : int -> Value.t array
(** All-distinct inputs, the hardest case for k-agreement. *)

val all_inputs : d:int -> int -> Value.t array list
(** All input vectors over the value domain [{0..d-1}]. *)
