(** Obstruction-free consensus from registers (iterated commit-adopt):
    unconditionally safe, decides whenever a process runs a whole round
    alone, livelocks under perfect lockstep — the classic counterpoint
    to the wait-free impossibilities the paper's proofs rely on. *)

open Lbsa_spec
open Lbsa_runtime

exception Out_of_rounds of string
(** The bounded register banks ran out ([max_rounds] exceeded). *)

val machine : n:int -> max_rounds:int -> Machine.t
val specs : n:int -> max_rounds:int -> Obj_spec.t array
