open Lbsa_spec
open Lbsa_objects
open Lbsa_runtime

(* Safe agreement (Borowsky-Gafni 1993) — the building block of the BG
   simulation behind the set-consensus hierarchy results the paper cites
   ([2], [6]).  It is consensus with conditional termination: agreement
   and validity always hold, and every process decides provided no
   process stops inside its (two-step) unsafe zone.

   Implementation from one n-component atomic snapshot whose component i
   holds Pair(value_i, level_i), level ∈ {NIL, 0, 1, 2}:

     propose(v):                       (unsafe zone: steps 1-3)
       1. update(i, (v, 1))
       2. s <- scan
       3. if some level in s is 2 then update(i, (v, 0))
          else update(i, (v, 2))
       4. repeat s <- scan until no level in s is 1
       5. decide value of the smallest-id component at level 2

   Agreement: consider the first clean scan (no level 1).  The set W of
   level-2 components is non-empty then (the first process to finish
   step 3 either saw a 2 or installed one), and it can never grow: any
   later proposer's step-2 scan sees a member of W and backs off to 0.
   All deciders therefore read the same W and decide the same minimum.

   This object shows the *conditional* side of the hierarchy: it is
   built solely from level-1 objects (a snapshot), solves consensus
   among any n processes in crash-free fair runs, and escapes FLP only
   because termination is conditional — a crash in the unsafe zone
   blocks everyone else forever. *)

let snapshot_index = 0

let level_nil = Value.Nil

let comp ~v ~level = Value.Pair (v, level)

let level_of = function
  | Value.Pair (_, l) -> l
  | Value.Nil -> level_nil
  | c -> invalid_arg (Fmt.str "Safe_agreement: bad component %a" Value.pp c)

let value_of = function
  | Value.Pair (v, _) -> v
  | c -> invalid_arg (Fmt.str "Safe_agreement: bad component %a" Value.pp c)

let levels scan = List.map level_of (Value.to_list_exn scan)

let some_level_2 scan =
  List.exists (Value.equal (Value.Int 2)) (levels scan)

let some_level_1 scan =
  List.exists (Value.equal (Value.Int 1)) (levels scan)

let decision_of scan =
  (* Value of the smallest-id component at level 2. *)
  let rec go i = function
    | [] -> invalid_arg "Safe_agreement.decision_of: no level-2 component"
    | c :: rest ->
      if Value.equal (level_of c) (Value.Int 2) then value_of c
      else go (i + 1) rest
  in
  go 0 (Value.to_list_exn scan)

let machine ~n : Machine.t =
  let name = Fmt.str "safe-agreement-%d" n in
  ignore n;
  let init ~pid:_ ~input = Value.(Pair (Sym "enter", input)) in
  let delta ~pid state =
    match state with
    | Value.Pair (Value.Sym "enter", v) ->
      Machine.invoke snapshot_index
        (Classic.Snapshot.update pid (comp ~v ~level:(Value.Int 1)))
        (fun _ -> Value.(Pair (Sym "look", v)))
    | Value.Pair (Value.Sym "look", v) ->
      Machine.invoke snapshot_index Classic.Snapshot.scan (fun s ->
          let level = if some_level_2 s then Value.Int 0 else Value.Int 2 in
          Value.(Pair (Sym "commit", Pair (v, level))))
    | Value.Pair (Value.Sym "commit", Value.Pair (v, level)) ->
      Machine.invoke snapshot_index
        (Classic.Snapshot.update pid (comp ~v ~level))
        (fun _ -> Value.Sym "wait")
    | Value.Sym "wait" ->
      Machine.invoke snapshot_index Classic.Snapshot.scan (fun s ->
          if some_level_1 s then Value.Sym "wait"
          else Value.Pair (Value.Sym "halt", decision_of s))
    | Value.Pair (Value.Sym "halt", v) -> Machine.Decide v
    | s -> Machine.bad_state ~machine:name ~pid s
  in
  Machine.make ~name ~init ~delta

let specs ~n : Obj_spec.t array = [| Classic.Snapshot.spec ~m:n () |]

(* A process is in its unsafe zone while its own component is at
   level 1 (it has entered but not yet committed or backed off). *)
let in_unsafe_zone (config : Config.t) pid =
  match config.Config.objects.(snapshot_index) with
  | Value.List comps ->
    Value.equal (level_of (List.nth comps pid)) (Value.Int 1)
  | _ -> false
