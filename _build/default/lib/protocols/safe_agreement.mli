(** Safe agreement (Borowsky–Gafni): consensus with conditional
    termination, built from one atomic snapshot.  Agreement and validity
    are unconditional; termination holds provided no process stops
    inside its two-step unsafe zone. *)

open Lbsa_spec
open Lbsa_runtime

val machine : n:int -> Machine.t
val specs : n:int -> Obj_spec.t array

val in_unsafe_zone : Config.t -> int -> bool
(** Is the process between its level-1 entry and its level-2/0 commit? *)
