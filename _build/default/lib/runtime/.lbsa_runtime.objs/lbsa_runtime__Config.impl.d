lib/runtime/config.ml: Array Fmt Hashtbl Lbsa_spec Lbsa_util List Machine Obj_spec Op Stdlib Value
