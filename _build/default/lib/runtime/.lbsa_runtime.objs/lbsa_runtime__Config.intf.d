lib/runtime/config.mli: Format Lbsa_spec Machine Obj_spec Op Value
