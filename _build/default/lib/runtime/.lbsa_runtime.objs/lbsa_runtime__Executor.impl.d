lib/runtime/executor.ml: Config Fmt Lbsa_spec Lbsa_util List Machine Obj_spec Scheduler Trace
