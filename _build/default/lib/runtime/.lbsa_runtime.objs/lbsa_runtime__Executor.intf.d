lib/runtime/executor.mli: Config Lbsa_spec Lbsa_util Machine Obj_spec Scheduler Trace Value
