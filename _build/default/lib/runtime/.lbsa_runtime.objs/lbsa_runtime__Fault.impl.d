lib/runtime/fault.ml: Fmt Hashtbl Lbsa_util List Option Scheduler
