lib/runtime/fault.mli: Format Lbsa_util Scheduler
