lib/runtime/machine.ml: Fmt Lbsa_spec Op Value
