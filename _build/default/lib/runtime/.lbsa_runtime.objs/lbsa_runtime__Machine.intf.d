lib/runtime/machine.mli: Lbsa_spec Op Value
