lib/runtime/scheduler.ml: Array Fmt Lbsa_util List
