lib/runtime/scheduler.mli:
