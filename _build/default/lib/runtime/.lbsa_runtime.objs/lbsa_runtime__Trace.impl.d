lib/runtime/trace.ml: Config Fmt Lbsa_spec List Op String Value
