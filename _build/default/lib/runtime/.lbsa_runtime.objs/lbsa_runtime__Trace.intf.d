lib/runtime/trace.mli: Config Format
