open Lbsa_spec

(* The executor: runs a protocol machine over shared objects under a
   scheduler, resolving object nondeterminism with a pluggable adversary,
   and returns the final configuration plus the full trace. *)

type nondet =
  | First  (* always the first branch: a fixed benign adversary *)
  | Random of Lbsa_util.Prng.t  (* seeded random adversary *)
  | Strategy of (Config.t list -> int)  (* custom adversary *)

let choice_of_nondet = function
  | First -> fun _ -> 0
  | Random prng -> fun bs -> Lbsa_util.Prng.int prng (List.length bs)
  | Strategy f -> f

type stop_reason =
  | All_halted  (* every process decided, aborted or crashed *)
  | Scheduler_stopped  (* the scheduler returned None *)
  | Step_limit  (* the max_steps fuel ran out *)

type result = {
  final : Config.t;
  trace : Trace.t;
  steps : int;
  stop : stop_reason;
}

let run ?(nondet = First) ?(max_steps = 100_000) ~(machine : Machine.t)
    ~(specs : Obj_spec.t array) ~inputs ~(scheduler : Scheduler.t) () =
  let choice = choice_of_nondet nondet in
  let builder = Trace.builder () in
  let rec go config step =
    if step >= max_steps then { final = config; trace = Trace.build builder; steps = step; stop = Step_limit }
    else
      match Config.running config with
      | [] ->
        { final = config; trace = Trace.build builder; steps = step; stop = All_halted }
      | runnable -> (
        match scheduler.next ~step ~runnable with
        | None ->
          {
            final = config;
            trace = Trace.build builder;
            steps = step;
            stop = Scheduler_stopped;
          }
        | Some pid ->
          if not (Config.is_running config pid) then
            invalid_arg
              (Fmt.str "Executor.run: scheduler %s picked halted process %d"
                 scheduler.name pid);
          let config', event = Config.step ~machine ~specs ~choice config pid in
          Trace.add builder event;
          go config' (step + 1))
  in
  go (Config.initial ~machine ~specs ~inputs) 0

(* Run a single process solo from a given configuration until it halts or
   the fuel runs out -- the "q-solo history" device the paper's proofs
   use over and over. *)
let run_solo ?(nondet = First) ?(max_steps = 100_000) ~machine ~specs config
    pid =
  let choice = choice_of_nondet nondet in
  let builder = Trace.builder () in
  let rec go config step =
    if step >= max_steps then
      { final = config; trace = Trace.build builder; steps = step; stop = Step_limit }
    else if not (Config.is_running config pid) then
      { final = config; trace = Trace.build builder; steps = step; stop = All_halted }
    else
      let config', event = Config.step ~machine ~specs ~choice config pid in
      Trace.add builder event;
      go config' (step + 1)
  in
  go config 0
