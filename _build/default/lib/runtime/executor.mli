(** The executor: runs a protocol machine over shared objects under a
    scheduler, resolving object nondeterminism with a pluggable
    adversary. *)

open Lbsa_spec

(** How object nondeterminism (2-SA, (n,k)-SA) is resolved. *)
type nondet =
  | First  (** always the first branch (fixed benign adversary) *)
  | Random of Lbsa_util.Prng.t  (** seeded random adversary *)
  | Strategy of (Config.t list -> int)  (** custom adversary *)

type stop_reason =
  | All_halted
  | Scheduler_stopped
  | Step_limit

type result = {
  final : Config.t;
  trace : Trace.t;
  steps : int;
  stop : stop_reason;
}

val run :
  ?nondet:nondet ->
  ?max_steps:int ->
  machine:Machine.t ->
  specs:Obj_spec.t array ->
  inputs:Value.t array ->
  scheduler:Scheduler.t ->
  unit ->
  result

val run_solo :
  ?nondet:nondet ->
  ?max_steps:int ->
  machine:Machine.t ->
  specs:Obj_spec.t array ->
  Config.t ->
  int ->
  result
(** Continue a configuration with one process running solo until it
    halts — the paper's "q-solo history" device. *)
