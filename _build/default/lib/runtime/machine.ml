open Lbsa_spec

(* Protocols as step machines over comparable local states.

   A process's local state is a [Value.t]; [delta] inspects it and says
   what the process does next:

   - [Invoke { obj; op; resume }]: one atomic step on shared object
     [obj]; [resume] maps the object's response to the next local state;
   - [Decide v]: the process decides v and halts;
   - [Abort]: the process aborts and halts (only the distinguished
     process of an n-DAC execution ever does this).

   Keeping local states comparable (rather than using closures as
   continuations) is what makes global configurations comparable, so the
   model checker can memoize; [resume] is re-derived from the local state
   on every visit and never stored. *)

type step =
  | Invoke of { obj : int; op : Op.t; resume : Value.t -> Value.t }
  | Decide of Value.t
  | Abort

type t = {
  name : string;
  init : pid:int -> input:Value.t -> Value.t;
  delta : pid:int -> Value.t -> step;
}

let make ~name ~init ~delta = { name; init; delta }

let invoke obj op resume = Invoke { obj; op; resume }

let bad_state ~machine ~pid state =
  invalid_arg
    (Fmt.str "machine %s: process %d has no transition from local state %a"
       machine pid Value.pp state)

(* A machine whose every process decides its input immediately; useful in
   tests and as a trivial baseline. *)
let trivial_decide_input =
  {
    name = "decide-input";
    init = (fun ~pid:_ ~input -> input);
    delta = (fun ~pid:_ v -> Decide v);
  }
