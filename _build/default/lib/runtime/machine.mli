(** Protocols as step machines over comparable local states.

    A process's local state is a {!Lbsa_spec.Value.t}.  [delta ~pid state]
    says what the process does next; an [Invoke] is a single atomic step
    on a shared object, exactly the step granularity of the paper's
    model.  Local states being comparable is what makes whole
    configurations comparable and hence model-checkable. *)

open Lbsa_spec

type step =
  | Invoke of { obj : int; op : Op.t; resume : Value.t -> Value.t }
      (** One atomic operation on shared object [obj]; [resume] maps the
          response to the next local state. *)
  | Decide of Value.t  (** Decide and halt. *)
  | Abort  (** Abort and halt (n-DAC distinguished process only). *)

type t = {
  name : string;
  init : pid:int -> input:Value.t -> Value.t;
  delta : pid:int -> Value.t -> step;
}

val make :
  name:string ->
  init:(pid:int -> input:Value.t -> Value.t) ->
  delta:(pid:int -> Value.t -> step) ->
  t

val invoke : int -> Op.t -> (Value.t -> Value.t) -> step

val bad_state : machine:string -> pid:int -> Value.t -> 'a
(** Raise a descriptive [Invalid_argument] for an unreachable local
    state; protocols use it as their catch-all [delta] clause. *)

val trivial_decide_input : t
(** Every process immediately decides its input. *)
