lib/spec/obj_spec.ml: Fmt Format List Op Option Value
