lib/spec/obj_spec.mli: Format Op Value
