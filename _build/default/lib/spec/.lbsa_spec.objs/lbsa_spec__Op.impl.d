lib/spec/op.ml: Fmt List String Value
