lib/spec/op.mli: Format Value
