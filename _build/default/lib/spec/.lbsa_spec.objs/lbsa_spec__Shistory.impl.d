lib/spec/shistory.ml: Fmt List Obj_spec Op Set Value
