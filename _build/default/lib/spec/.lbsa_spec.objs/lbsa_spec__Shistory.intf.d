lib/spec/shistory.mli: Format Obj_spec Op Value
