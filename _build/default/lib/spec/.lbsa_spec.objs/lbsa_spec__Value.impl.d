lib/spec/value.ml: Fmt Hashtbl List Stdlib String
