(* Sequential specifications of linearizable shared objects.

   A specification is a (possibly nondeterministic) transition function on
   comparable states.  [step state op] returns the non-empty list of all
   possible (next state, response) branches:

   - deterministic objects (registers, consensus objects, PAC objects)
     always return a singleton;
   - nondeterministic objects (the strong 2-SA object, (n,k)-SA objects)
     return one branch per allowed response, exactly mirroring the
     adversarial choice in the paper.

   Simulation resolves branches with a pluggable [choice]; the model
   checker explores all of them. *)

type state = Value.t

type branch = { next : state; response : Value.t }

type t = {
  name : string;
  initial : state;
  step : state -> Op.t -> branch list;
  pp_state : Format.formatter -> state -> unit;
}

exception Unknown_operation of string * Op.t

let unknown t op = raise (Unknown_operation (t, op))

let make ?pp_state ~name ~initial ~step () =
  let pp_state = Option.value pp_state ~default:Value.pp in
  { name; initial; step; pp_state }

let branches t state op =
  match t.step state op with
  | [] ->
    invalid_arg
      (Fmt.str "Obj_spec %s: no branch for %a in state %a" t.name Op.pp op
         t.pp_state state)
  | bs -> bs

let is_deterministic_at t state op =
  match t.step state op with
  | [ _ ] -> true
  | _ -> false

(* Apply assuming determinism; raises if the object actually branches. *)
let apply_det t state op =
  match branches t state op with
  | [ b ] -> (b.next, b.response)
  | bs ->
    invalid_arg
      (Fmt.str "Obj_spec %s: %a is nondeterministic here (%d branches)"
         t.name Op.pp op (List.length bs))

(* Apply resolving nondeterminism with [choice], which picks an index
   into the branch list.  [choice] sees the full branch list so an
   adversary can pick by inspecting responses. *)
let apply ~choice t state op =
  let bs = branches t state op in
  match bs with
  | [ b ] -> (b.next, b.response)
  | _ ->
    let i = choice bs in
    if i < 0 || i >= List.length bs then
      invalid_arg "Obj_spec.apply: choice out of range";
    let b = List.nth bs i in
    (b.next, b.response)

let pp ppf t = Fmt.pf ppf "<%s>" t.name
