(** Sequential specifications of linearizable shared objects.

    A specification is a (possibly nondeterministic) transition function
    on comparable states: [step state op] returns every allowed
    (next-state, response) branch.  Deterministic objects return
    singletons; the strong 2-SA object of the paper returns one branch per
    value the adversary may hand back. *)

type state = Value.t

type branch = { next : state; response : Value.t }

type t = {
  name : string;
  initial : state;
  step : state -> Op.t -> branch list;
  pp_state : Format.formatter -> state -> unit;
}

exception Unknown_operation of string * Op.t
(** Raised by specifications when handed an operation they do not
    support. *)

val unknown : string -> Op.t -> 'a
(** [unknown name op] raises {!Unknown_operation}. *)

val make :
  ?pp_state:(Format.formatter -> state -> unit) ->
  name:string ->
  initial:state ->
  step:(state -> Op.t -> branch list) ->
  unit ->
  t

val branches : t -> state -> Op.t -> branch list
(** All branches; guaranteed non-empty (raises [Invalid_argument] on a
    specification bug). *)

val is_deterministic_at : t -> state -> Op.t -> bool

val apply_det : t -> state -> Op.t -> state * Value.t
(** Apply an operation that must be deterministic at this state. *)

val apply :
  choice:(branch list -> int) -> t -> state -> Op.t -> state * Value.t
(** Apply an operation, resolving nondeterminism with [choice] (an index
    into the branch list). *)

val pp : Format.formatter -> t -> unit
