(** Operation invocations: a name plus argument values. *)

type t = { name : string; args : Value.t list }

val make : string -> Value.t list -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
