(* Sequential histories: sequences of (operation, response) events applied
   to a single object, in the sense of Section 3 of the paper.  Replaying
   a history against a specification checks that every recorded response
   is one the specification allows, and returns the reachable final
   states (a set, because of nondeterministic objects). *)

type event = { op : Op.t; response : Value.t }

type t = event list

let event op response = { op; response }

let pp_event ppf { op; response } =
  Fmt.pf ppf "%a -> %a" Op.pp op Value.pp response

let pp ppf h = Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:(any "@,") pp_event) h

(* All specification states reachable by replaying [h] from [state],
   keeping only branches whose response matches the recorded one. *)
let replay_from (spec : Obj_spec.t) state (h : t) : Obj_spec.state list =
  let module VS = Set.Make (Value) in
  let step states { op; response } =
    VS.fold
      (fun s acc ->
        List.fold_left
          (fun acc (b : Obj_spec.branch) ->
            if Value.equal b.response response then VS.add b.next acc else acc)
          acc
          (Obj_spec.branches spec s op))
      states VS.empty
  in
  let final = List.fold_left step (VS.singleton state) h in
  VS.elements final

let replay spec h = replay_from spec spec.Obj_spec.initial h

(* A history is admissible if some resolution of the object's
   nondeterminism produces exactly the recorded responses. *)
let admissible spec h = replay spec h <> []

(* Generate a history by applying the given operations in order,
   resolving nondeterminism with [choice]. *)
let run ?(choice = fun _ -> 0) (spec : Obj_spec.t) ops : t * Obj_spec.state =
  let state = ref spec.initial in
  let events =
    List.map
      (fun op ->
        let next, response = Obj_spec.apply ~choice spec !state op in
        state := next;
        { op; response })
      ops
  in
  (events, !state)

let responses h = List.map (fun e -> e.response) h
let ops h = List.map (fun e -> e.op) h
