(** Sequential histories of a single object: sequences of
    (operation, response) events, as in Section 3 of the paper. *)

type event = { op : Op.t; response : Value.t }
type t = event list

val event : Op.t -> Value.t -> event
val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit

val replay_from : Obj_spec.t -> Obj_spec.state -> t -> Obj_spec.state list
(** All states reachable by replaying the history from the given state,
    keeping only nondeterministic branches that match the recorded
    responses. *)

val replay : Obj_spec.t -> t -> Obj_spec.state list
(** [replay spec h] = [replay_from spec spec.initial h]. *)

val admissible : Obj_spec.t -> t -> bool
(** Does some resolution of the object's nondeterminism produce exactly
    the recorded responses? *)

val run :
  ?choice:(Obj_spec.branch list -> int) ->
  Obj_spec.t ->
  Op.t list ->
  t * Obj_spec.state
(** Apply the operations in order (resolving nondeterminism with
    [choice], default: first branch); returns the history and final
    state. *)

val responses : t -> Value.t list
val ops : t -> Op.t list
