lib/util/listx.mli:
