lib/util/prng.mli:
