(* Small list utilities shared across the library. *)

let rec range lo hi = if lo > hi then [] else lo :: range (lo + 1) hi

let init n f = List.init n f

let dedup_sorted compare xs =
  let rec go = function
    | a :: (b :: _ as rest) -> if compare a b = 0 then go rest else a :: go rest
    | xs -> xs
  in
  go xs

let sort_uniq compare xs = dedup_sorted compare (List.sort compare xs)

let cartesian xs ys =
  List.concat_map (fun x -> List.map (fun y -> (x, y)) ys) xs

(* All ways to interleave the elements of the given sequences while
   preserving each sequence's internal order.  Used by the
   linearizability test generators; exponential, intended for tiny
   inputs only. *)
let interleavings seqs =
  let rec go seqs =
    let nonempty = List.filter (fun s -> s <> []) seqs in
    if nonempty = [] then [ [] ]
    else
      List.concat_map
        (fun i ->
          match List.nth seqs i with
          | [] -> []
          | x :: rest ->
            let seqs' = List.mapi (fun j s -> if j = i then rest else s) seqs in
            List.map (fun tail -> x :: tail) (go seqs'))
        (range 0 (List.length seqs - 1))
  in
  go seqs

let count p xs = List.fold_left (fun acc x -> if p x then acc + 1 else acc) 0 xs

let max_by cmp = function
  | [] -> invalid_arg "Listx.max_by: empty list"
  | x :: xs -> List.fold_left (fun best y -> if cmp y best > 0 then y else best) x xs

let take n xs =
  let rec go n = function
    | [] -> []
    | _ when n <= 0 -> []
    | x :: rest -> x :: go (n - 1) rest
  in
  go n xs
