(** Small list utilities shared across the library. *)

val range : int -> int -> int list
(** [range lo hi] is [lo; lo+1; ...; hi] (empty when [lo > hi]). *)

val init : int -> (int -> 'a) -> 'a list

val dedup_sorted : ('a -> 'a -> int) -> 'a list -> 'a list
(** Remove adjacent duplicates of a sorted list. *)

val sort_uniq : ('a -> 'a -> int) -> 'a list -> 'a list

val cartesian : 'a list -> 'b list -> ('a * 'b) list

val interleavings : 'a list list -> 'a list list
(** All ways to interleave the given sequences preserving each one's
    internal order; exponential, intended for tiny inputs only. *)

val count : ('a -> bool) -> 'a list -> int

val max_by : ('a -> 'a -> int) -> 'a list -> 'a
(** Raises [Invalid_argument] on the empty list. *)

val take : int -> 'a list -> 'a list
