test/test_bg.ml: Alcotest Array Bg_simulation Fault Fmt Lbsa List Listx Scheduler Sim_protocol Value
