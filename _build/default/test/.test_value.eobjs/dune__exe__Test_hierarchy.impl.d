test/test_hierarchy.ml: Alcotest Consensus_protocols Fmt Lbsa Level List Power Qadri Separation Solvability
