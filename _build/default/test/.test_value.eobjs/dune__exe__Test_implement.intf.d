test/test_implement.mli:
