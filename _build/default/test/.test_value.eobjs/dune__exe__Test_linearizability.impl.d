test/test_linearizability.ml: Alcotest Array Chistory Classic Lbsa Lin_checker Lin_gen List Listx Pac Prng Register Sa2 Shistory Value
