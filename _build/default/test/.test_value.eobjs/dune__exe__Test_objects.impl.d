test/test_objects.ml: Alcotest Classic Consensus_obj Lbsa List Listx Nk_sa O_n O_prime Obj_spec Op Pac_nm Prng Register Registry Sa2 Shistory Value
