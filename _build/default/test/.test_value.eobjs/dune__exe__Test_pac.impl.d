test/test_pac.ml: Alcotest Fmt Lbsa List Listx Obj_spec Op Pac Prng Shistory Value
