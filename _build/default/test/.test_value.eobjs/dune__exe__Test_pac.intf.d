test/test_pac.mli:
