test/test_runtime.ml: Alcotest Config Consensus_protocols Dac Dac_from_pac Executor Fault Fmt Lbsa List Machine Obj_spec Prng Register Sa2 Scheduler String Trace Value
