test/test_value.ml: Alcotest Array Lbsa List Listx Op Option Prng Register Sa2 Shistory Value
