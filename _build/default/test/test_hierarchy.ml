(* The hierarchy toolkit: set agreement power, level reports, and the
   Section 6 separation artifacts. *)

open Lbsa

let bound = Alcotest.testable Power.pp_bound (fun a b -> a = b)

let test_closed_forms () =
  Alcotest.(check (list bound)) "m-consensus power"
    [ Power.Finite 2; Power.Finite 4; Power.Finite 6 ]
    (Power.consensus_power ~m:2 ~max_k:3);
  Alcotest.(check (list bound)) "2-SA power"
    [ Power.Finite 1; Power.Infinite; Power.Infinite ]
    (Power.sa2_power ~max_k:3);
  Alcotest.(check (list bound)) "O_n power lower bound"
    [ Power.Finite 3; Power.Finite 6; Power.Finite 9 ]
    (Power.o_n_power_lower ~n:3 ~max_k:3)

let test_probe_consensus_family () =
  (* k=1, m=2: consensus among 2 from one 2-consensus object. *)
  let p = Power.probe_consensus_family ~m:2 ~k:1 () in
  Alcotest.(check bool) "m=2 k=1 solvable" true p.Power.solvable;
  (* k=2, m=2: 2-set agreement among 4 from two 2-consensus objects. *)
  let p = Power.probe_consensus_family ~m:2 ~k:2 () in
  Alcotest.(check bool) "m=2 k=2 solvable" true p.Power.solvable;
  Alcotest.(check int) "procs = k*m" 4 p.Power.procs

let test_probe_sa2_family () =
  let p = Power.probe_sa2_family ~k:2 ~procs:4 () in
  Alcotest.(check bool) "2-SA solves 2-set among 4" true p.Power.solvable;
  let p = Power.probe_sa2_family ~k:3 ~procs:5 () in
  Alcotest.(check bool) "2-SA solves 3-set among 5" true p.Power.solvable

let test_probe_beyond_power_fails () =
  (* One 2-consensus object cannot serve 3 processes in the one-shot
     protocol: the third propose returns ⊥ and the protocol's decision
     is invalid.  (This is a probe of the protocol, not an impossibility
     proof — but it is the right shape: k=1, procs > m fails.) *)
  let machine, specs = Consensus_protocols.from_consensus_obj ~m:2 in
  let p =
    Power.probe ~k:1 ~procs:3 ~protocol:(machine, specs) ()
  in
  Alcotest.(check bool) "m=2 cannot seat 3 (one-shot)" false p.Power.solvable

let test_probe_nk_sa () =
  let p = Power.probe_nk_sa_family ~n:4 ~k:2 () in
  Alcotest.(check bool) "(4,2)-SA solves among 4" true p.Power.solvable

let test_o_n_consensus_probe () =
  let p = Power.probe_o_n_consensus ~n:2 () in
  Alcotest.(check bool) "O_2 solves consensus among 2" true p.Power.solvable

let test_level_reports () =
  let r = Level.consensus_obj_report ~m:2 () in
  Alcotest.(check int) "level" 2 r.Level.level;
  (match r.Level.solves_at_level with
  | Level.Verified _ -> ()
  | _ -> Alcotest.fail "positive half should verify");
  (match r.Level.fails_above with
  | Level.Candidate_failed (_, v) ->
    Alcotest.(check bool) "candidate failed" false v.Solvability.ok
  | _ -> Alcotest.fail "negative half should be a candidate failure");
  let r = Level.pac_nm_report ~n:3 ~m:2 () in
  (match r.Level.solves_at_level with
  | Level.Verified _ -> ()
  | _ -> Alcotest.fail "(3,2)-PAC positive half should verify");
  let r = Level.o_n_report ~n:2 () in
  Alcotest.(check string) "O_2 name" "O_2" r.Level.object_name;
  match r.Level.solves_at_level with
  | Level.Verified _ -> ()
  | _ -> Alcotest.fail "O_2 positive half should verify"

let test_separation_n2 () =
  let report = Separation.analyze ~max_k:2 ~n:2 () in
  Alcotest.(check bool)
    (Fmt.str "all artifacts behave as the paper predicts:@.%a"
       Separation.pp_report report)
    true
    (Separation.all_ok report);
  Alcotest.(check (list bound)) "shared power prefix"
    [ Power.Finite 2; Power.Finite 4 ]
    report.Separation.power_prefix

let test_qadri_theorem_7_1 () =
  let report = Qadri.analyze ~m:2 ~n:3 () in
  Alcotest.(check bool)
    (Fmt.str "Theorem 7.1 artifacts behave as predicted:@.%a" Qadri.pp_report
       report)
    true (Qadri.all_ok report);
  Alcotest.(check int) "four artifacts" 4 (List.length report.Qadri.artifacts)

let test_qadri_rejects_bad_params () =
  (match Qadri.analyze ~m:1 ~n:3 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "m=1 must be rejected");
  match Qadri.analyze ~m:2 ~n:2 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "n=m must be rejected"

let test_separation_n4 () =
  let report = Separation.analyze ~max_k:2 ~n:4 () in
  Alcotest.(check bool)
    (Fmt.str "n=4 artifacts:@.%a" Separation.pp_report report)
    true
    (Separation.all_ok report)

let test_separation_rejects_n1 () =
  match Separation.analyze ~n:1 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "n=1 must be rejected"

let () =
  Alcotest.run "hierarchy"
    [
      ( "power",
        [
          Alcotest.test_case "closed forms" `Quick test_closed_forms;
          Alcotest.test_case "consensus family probes" `Quick
            test_probe_consensus_family;
          Alcotest.test_case "2-SA family probes" `Quick test_probe_sa2_family;
          Alcotest.test_case "beyond power fails" `Quick
            test_probe_beyond_power_fails;
          Alcotest.test_case "(n,k)-SA probe" `Quick test_probe_nk_sa;
          Alcotest.test_case "O_n consensus probe" `Quick
            test_o_n_consensus_probe;
        ] );
      ("level", [ Alcotest.test_case "reports" `Quick test_level_reports ]);
      ( "separation",
        [
          Alcotest.test_case "n=2 artifacts" `Slow test_separation_n2;
          Alcotest.test_case "n=4 artifacts" `Slow test_separation_n4;
          Alcotest.test_case "n=1 rejected" `Quick test_separation_rejects_n1;
        ] );
      ( "qadri",
        [
          Alcotest.test_case "Theorem 7.1 (m=2, n=3)" `Slow
            test_qadri_theorem_7_1;
          Alcotest.test_case "parameter validation" `Quick
            test_qadri_rejects_bad_params;
        ] );
    ]
