(* The benchmark and experiment-table harness.

   The paper has no empirical tables or figures (it is a pure theory
   paper); DESIGN.md defines verification experiments T1-T10 in their
   place, and this executable regenerates every one of them, followed by
   bechamel micro-benchmarks (B1-B6) of the substrate itself.

   Run:  dune exec bench/main.exe          (tables + micro-benchmarks)
         dune exec bench/main.exe tables   (tables only)
         dune exec bench/main.exe micro    (micro-benchmarks only)      *)

open Lbsa

let hr title = Fmt.pr "@.%s@.%s@." title (String.make (String.length title) '-')

let cell = Fmt.pr "| %-52s | %-36s |@."

let verdict_cell (v : Solvability.verdict) ~expect_ok =
  let status =
    if v.Solvability.ok = expect_ok then "as predicted" else "MISMATCH"
  in
  Fmt.str "%s: %s (%d states)" status
    (if v.Solvability.ok then "solved" else "failed")
    v.Solvability.states

(* ---------------------------------------------------------------------- *)
(* T1: n-PAC semantics (Lemmas 3.2-3.4, Theorem 3.5).                     *)

let table_t1 () =
  hr "T1  n-PAC object semantics (Algorithm 1; Lemmas 3.2-3.4, Thm 3.5)";
  (* Exhaustive: all op sequences of depth <= 6 over 2 labels. *)
  let n = 2 in
  let pac = Pac.spec ~n () in
  let alphabet =
    [ Pac.propose (Value.int 1) 1; Pac.propose (Value.int 2) 2;
      Pac.decide 1; Pac.decide 2 ]
  in
  let histories = ref 0 and consistent = ref 0 in
  let rec go state history depth =
    incr histories;
    let h = List.rev history in
    if Pac.is_upset state = not (Pac.history_legal ~n h) then incr consistent;
    if depth > 0 then
      List.iter
        (fun op ->
          let state', response = Obj_spec.apply_det pac state op in
          go state' (Shistory.event op response :: history) (depth - 1))
        alphabet
  in
  go pac.Obj_spec.initial [] 6;
  cell "histories enumerated (depth ≤ 6, n = 2)" (string_of_int !histories);
  cell "upset ⇔ illegal (Lemma 3.2) holds in"
    (Fmt.str "%d / %d" !consistent !histories);
  (* Random sweep for larger n, also checking Theorem 3.5(a). *)
  let prng = Prng.create 4242 in
  let trials = 20_000 and violations = ref 0 in
  for _ = 1 to trials do
    let n = 2 + Prng.int prng 4 in
    let pac = Pac.spec ~n () in
    let len = Prng.int prng 20 in
    let ops =
      List.init len (fun _ ->
          let i = 1 + Prng.int prng n in
          if Prng.bool prng then Pac.propose (Value.int (Prng.int prng 3)) i
          else Pac.decide i)
    in
    let h, st = Shistory.run pac ops in
    let decided =
      List.filter_map
        (fun (e : Shistory.event) ->
          if e.op.Op.name = "decide" && not (Value.is_bot e.response) then
            Some e.response
          else None)
        h
    in
    if
      Pac.is_upset st <> not (Pac.history_legal ~n h)
      || List.length (Listx.sort_uniq Value.compare decided) > 1
    then incr violations
  done;
  cell
    (Fmt.str "random histories (n ≤ 5, %d trials): violations" trials)
    (string_of_int !violations)

(* ---------------------------------------------------------------------- *)
(* T2: Theorem 4.1 — Algorithm 2 solves n-DAC.                            *)

let table_t2 () =
  hr "T2  Theorem 4.1: Algorithm 2 solves the n-DAC problem";
  List.iter
    (fun n ->
      let machine = Dac_from_pac.machine ~n in
      let specs = Dac_from_pac.specs ~n in
      let states = ref 0 in
      let v =
        Solvability.for_all_inputs
          (fun inputs ->
            let v = Solvability.check_dac ~machine ~specs ~inputs () in
            states := max !states v.Solvability.states;
            v)
          (Dac.binary_inputs n)
      in
      cell
        (Fmt.str "n = %d: exhaustive (all schedules, %d input vectors)" n
           (1 lsl n))
        (Fmt.str "%s, ≤ %d states"
           (if v.Solvability.ok then "solves n-DAC" else "FAILED")
           !states))
    [ 2; 3; 4; 5 ];
  (* Randomized sweep for larger n. *)
  List.iter
    (fun n ->
      let machine = Dac_from_pac.machine ~n in
      let specs = Dac_from_pac.specs ~n in
      let prng = Prng.create (n * 99) in
      let trials = 1000 and bad = ref 0 in
      for seed = 1 to trials do
        let inputs = Array.init n (fun _ -> Value.int (Prng.int prng 2)) in
        let r =
          Executor.run ~machine ~specs ~inputs
            ~scheduler:(Scheduler.random ~seed) ()
        in
        match
          Dac.check_safety ~inputs ~trace:r.Executor.trace r.Executor.final
        with
        | Ok () -> ()
        | Error _ -> incr bad
      done;
      cell
        (Fmt.str "n = %d: %d random schedules" n trials)
        (Fmt.str "%d violations" !bad))
    [ 6; 8 ]

(* ---------------------------------------------------------------------- *)
(* T3: Theorem 4.2 evidence — 3-DAC candidates over {2-cons, reg, 2-SA}. *)

let table_t3 () =
  hr
    "T3  Theorem 4.2 evidence: natural 3-DAC candidates over 2-consensus + \
     registers + 2-SA all fail";
  List.iter
    (fun (label, (machine, specs)) ->
      let v =
        Solvability.for_all_inputs
          (fun inputs -> Solvability.check_dac ~machine ~specs ~inputs ())
          (Dac.binary_inputs 3)
      in
      cell label (verdict_cell v ~expect_ok:false);
      match v.Solvability.failure with
      | Some f -> Fmt.pr "|   counterexample: %-72s|@." f
      | None -> ())
    [
      ("2-SA funnel then 2-consensus", Candidates.dac3_sa2_then_cons2);
      ("2-consensus race + announce register", Candidates.dac3_cons2_announce);
    ];
  (* The positive contrast: a 3-PAC object does solve it (Thm 4.1). *)
  let machine = Dac_from_pac.machine ~n:3 in
  let specs = Dac_from_pac.specs ~n:3 in
  let v =
    Solvability.for_all_inputs
      (fun inputs -> Solvability.check_dac ~machine ~specs ~inputs ())
      (Dac.binary_inputs 3)
  in
  cell "contrast: one 3-PAC object (Theorem 4.1)" (verdict_cell v ~expect_ok:true)

(* ---------------------------------------------------------------------- *)
(* T4: Theorem 5.3 — (n,m)-PAC is at level m.                             *)

let table_t4 () =
  hr "T4  Theorem 5.3: (n,m)-PAC objects sit at level m of the hierarchy";
  List.iter
    (fun (n, m) ->
      let r = Level.pac_nm_report ~n ~m () in
      let pos =
        match r.Level.solves_at_level with
        | Level.Verified v -> verdict_cell v ~expect_ok:true
        | _ -> "POSITIVE HALF FAILED"
      in
      cell (Fmt.str "(%d,%d)-PAC solves %d-consensus" n m m) pos;
      let neg =
        match r.Level.fails_above with
        | Level.Candidate_failed (_, v) -> verdict_cell v ~expect_ok:false
        | _ -> "?"
      in
      cell (Fmt.str "(%d,%d)-PAC: (m+1)-consensus candidate" n m) neg)
    [ (2, 2); (3, 2); (4, 3) ];
  (* Criticality structure (Claims 5.2.2/5.2.3) on the 2-consensus
     protocol. *)
  let machine, specs = Consensus_protocols.from_consensus_obj ~m:2 in
  let graph =
    Cgraph.build ~machine ~specs ~inputs:[| Value.int 0; Value.int 1 |] ()
  in
  let a = Valence.analyze graph in
  let criticals = Bivalency.report_critical ~machine ~specs graph a in
  let all_common =
    List.for_all
      (fun (r : Bivalency.critical_report) -> r.Bivalency.common_object <> None)
      criticals
  in
  cell "critical configs, all poised on one object (Claim 5.2.3)"
    (Fmt.str "%d critical, common object: %b" (List.length criticals) all_common)

(* ---------------------------------------------------------------------- *)
(* T5: implementations (Obs 5.1, Lemma 6.4, snapshot substrate).          *)

let table_t5 () =
  hr "T5  Implementations are linearizable (Obs 5.1, Lemma 6.4, snapshots)";
  (let impl = Pac_nm_impl.implementation ~n:2 ~m:2 in
   let workloads =
     [|
       [ Pac_nm.propose_p (Value.int 1) 1; Pac_nm.decide_p 1 ];
       [ Pac_nm.propose_c (Value.int 9) ];
       [ Pac_nm.propose_c (Value.int 8) ];
     |]
   in
   match Harness.exhaustive ~impl ~workloads () with
   | Ok c ->
     cell "(2,2)-PAC from 2-PAC + 2-consensus (Obs 5.1a)"
       (Fmt.str "linearizable in all %d interleavings" c)
   | Error _ -> cell "(2,2)-PAC from 2-PAC + 2-consensus (Obs 5.1a)" "VIOLATED");
  (let power = O_prime.default_power ~n:2 ~max_k:2 in
   let impl = Oprime_impl.implementation ~power in
   let workloads =
     [|
       [ O_prime.propose (Value.int 1) 1; O_prime.propose (Value.int 10) 2 ];
       [ O_prime.propose (Value.int 2) 1; O_prime.propose (Value.int 20) 2 ];
     |]
   in
   match Harness.exhaustive ~impl ~workloads () with
   | Ok c ->
     cell "O'_2 from 2-consensus + 2-SA (Lemma 6.4)"
       (Fmt.str "linearizable in all %d interleavings" c)
   | Error _ -> cell "O'_2 from 2-consensus + 2-SA (Lemma 6.4)" "VIOLATED");
  (let impl = Oprime_impl.for_n ~n:2 ~max_k:4 in
   let workloads =
     [|
       [ O_prime.propose (Value.int 1) 1; O_prime.propose (Value.int 11) 2;
         O_prime.propose (Value.int 12) 3 ];
       [ O_prime.propose (Value.int 2) 1; O_prime.propose (Value.int 21) 3;
         O_prime.propose (Value.int 22) 4 ];
       [ O_prime.propose (Value.int 31) 2; O_prime.propose (Value.int 32) 4 ];
     |]
   in
   match Harness.campaign ~seed:5 ~trials:500 ~impl ~workloads () with
   | Ok t ->
     cell "O'_2 (K = 4), randomized campaign" (Fmt.str "%d/%d trials ok" t t)
   | Error (i, _) ->
     cell "O'_2 (K = 4), randomized campaign" (Fmt.str "trial %d FAILED" i));
  (let impl = Snapshot_impl.implementation ~n:3 in
   let workloads =
     Array.init 3 (fun pid ->
         [ Classic.Snapshot.update pid (Value.int (pid + 1));
           Classic.Snapshot.scan ])
   in
   match Harness.campaign ~seed:7 ~trials:300 ~impl ~workloads () with
   | Ok t ->
     cell "3-snapshot from registers (Afek et al.)"
       (Fmt.str "%d/%d trials ok" t t)
   | Error (i, _) ->
     cell "3-snapshot from registers (Afek et al.)"
       (Fmt.str "trial %d FAILED" i));
  let impl = Snapshot_impl.naive ~n:3 in
  let workloads =
    [|
      [ Classic.Snapshot.scan ];
      [ Classic.Snapshot.update 1 (Value.int 7) ];
      [ Classic.Snapshot.update 2 (Value.int 8) ];
    |]
  in
  match Harness.exhaustive ~max_steps:60 ~impl ~workloads () with
  | Ok _ -> cell "negative control: naive single-collect scan" "NOT refuted (!)"
  | Error _ ->
    cell "negative control: naive single-collect scan"
      "refuted by the checker (as predicted)"

(* ---------------------------------------------------------------------- *)
(* T6: set agreement power matrix + the separation.                       *)

let table_t6 () =
  hr
    "T6  Set agreement power (lower-bound rows machine-checked) and the \
     Corollary 6.6 separation";
  Fmt.pr "| %-14s | %-26s | %-36s |@." "object" "closed form / lower bound"
    "checked rows (k: procs, result)";
  let row name form probes =
    Fmt.pr "| %-14s | %-26s | %-36s |@." name form
      (String.concat "; "
         (List.map
            (fun (p : Power.probe) ->
              Fmt.str "k=%d: %d procs %s" p.Power.k p.Power.procs
                (if p.Power.solvable then "ok" else "FAIL"))
            probes))
  in
  row "2-consensus" "(2, 4, 6, ...)"
    [ Power.probe_consensus_family ~m:2 ~k:1 ();
      Power.probe_consensus_family ~m:2 ~k:2 () ];
  row "3-consensus" "(3, 6, 9, ...)"
    [ Power.probe_consensus_family ~m:3 ~k:1 () ];
  row "2-SA" "(1, ∞, ∞, ...)"
    [ Power.probe_sa2_family ~k:2 ~procs:4 ();
      Power.probe_sa2_family ~k:3 ~procs:5 () ];
  row "O_2" "(2, ≥4, ≥6, ...)" [ Power.probe_o_n_consensus ~n:2 () ];
  row "O'_2" "(2, 4, 6) by constr."
    [
      Power.probe_oprime_family
        ~power:(O_prime.default_power ~n:2 ~max_k:2)
        ~k:1 ();
      Power.probe_oprime_family
        ~power:(O_prime.default_power ~n:2 ~max_k:2)
        ~k:2 ();
    ];
  Fmt.pr "@.Separation artifacts (Corollary 6.6):@.";
  List.iter
    (fun (n, max_k) ->
      let report = Separation.analyze ~max_k ~n () in
      cell
        (Fmt.str "n = %d (power prefix length %d): artifacts" n max_k)
        (Fmt.str "%d checks, all as predicted: %b"
           (List.length report.Separation.artifacts)
           (Separation.all_ok report)))
    [ (2, 3); (3, 2); (4, 2) ]

(* ---------------------------------------------------------------------- *)
(* T7: the FLP baseline.                                                  *)

let table_t7 () =
  hr
    "T7  FLP baseline: register-only candidates, and the adversary over a \
     bare PAC";
  (let machine, specs = Candidates.flp_write_read in
   let v =
     Solvability.check_consensus ~machine ~specs
       ~inputs:[| Value.int 0; Value.int 1 |] ()
   in
   cell "write-read candidate (terminating)" (verdict_cell v ~expect_ok:false));
  (let machine, specs = Candidates.flp_spin in
   let v =
     Solvability.check_consensus ~machine ~specs
       ~inputs:[| Value.int 0; Value.int 1 |] ()
   in
   cell "spin candidate (safe, not wait-free)" (verdict_cell v ~expect_ok:false));
  let machine, specs = Candidates.consensus_from_pac_retry ~n:2 ~procs:2 in
  let graph =
    Cgraph.build ~machine ~specs ~inputs:[| Value.int 0; Value.int 1 |] ()
  in
  let a = Valence.analyze graph in
  let maintainable =
    match Bivalency.bivalence_maintainable a graph with
    | Ok () -> true
    | Error _ -> false
  in
  cell "bare 2-PAC: initial bivalent, bivalence maintainable"
    (Fmt.str "%b, %b (adversary wins forever)"
       (Valence.is_bivalent a graph.Cgraph.initial)
       maintainable);
  (* The classic escape: obstruction-free consensus from registers. *)
  (let n = 2 in
   let machine = Obstruction_free.machine ~n ~max_rounds:50 in
   let specs = Obstruction_free.specs ~n ~max_rounds:50 in
   let inputs = [| Value.int 0; Value.int 1 |] in
   let graph = Cgraph.build ~max_states:20_000 ~machine ~specs ~inputs () in
   let first_bad =
     Cgraph.find_node graph (fun _ config ->
         Result.is_error (Consensus_task.check_safety ~inputs config))
   in
   let lockstep_livelocks =
     match
       Executor.run ~max_steps:10_000
         ~machine:(Obstruction_free.machine ~n ~max_rounds:6)
         ~specs:(Obstruction_free.specs ~n ~max_rounds:6)
         ~inputs ~scheduler:(Scheduler.round_robin ~n) ()
     with
     | exception Obstruction_free.Out_of_rounds _ -> true
     | _ -> false
   in
   cell "obstruction-free consensus (registers, commit-adopt)"
     (Fmt.str "safe at %d states (first violation: %s); lockstep livelocks: %b"
        (Cgraph.n_nodes graph)
        (match first_bad with None -> "none" | Some id -> string_of_int id)
        lockstep_livelocks))

(* ---------------------------------------------------------------------- *)
(* T8: the surrounding classics — Herlihy's universal construction and
   Borowsky-Gafni safe agreement.                                         *)

let table_t8 () =
  hr
    "T8  Surrounding classics: Herlihy's universal construction and \
     Borowsky-Gafni safe agreement";
  (* Universal construction hosts three very different targets. *)
  List.iter
    (fun (label, target, workloads) ->
      let n = Array.length workloads in
      let impl = Universal.implementation ~n ~target () in
      match Harness.campaign ~seed:1 ~trials:300 ~impl ~workloads () with
      | Ok t ->
        cell
          (Fmt.str "universal: %s among %d, from %d-consensus + regs" label n n)
          (Fmt.str "%d/%d trials linearizable" t t)
      | Error (i, _) ->
        cell (Fmt.str "universal: %s" label) (Fmt.str "trial %d FAILED" i))
    [
      ( "queue",
        Classic.Queue_obj.spec (),
        [|
          [ Classic.Queue_obj.enqueue (Value.int 1); Classic.Queue_obj.dequeue ];
          [ Classic.Queue_obj.enqueue (Value.int 2) ];
          [ Classic.Queue_obj.dequeue ];
        |] );
      ( "fetch-and-add",
        Classic.Fetch_and_add.spec (),
        Array.init 3 (fun _ ->
            List.init 2 (fun _ -> Classic.Fetch_and_add.fetch_and_add 1)) );
      ( "3-PAC",
        Pac.spec ~n:3 (),
        Array.init 3 (fun pid ->
            [ Pac.propose (Value.int pid) (pid + 1); Pac.decide (pid + 1) ]) );
    ];
  (let impl =
     Universal.implementation ~n:2 ~target:(Classic.Fetch_and_add.spec ()) ()
   in
   let workloads =
     [| [ Classic.Fetch_and_add.fetch_and_add 1 ];
        [ Classic.Fetch_and_add.fetch_and_add 10 ] |]
   in
   match Harness.exhaustive ~max_steps:100 ~impl ~workloads () with
   | Ok c ->
     cell "universal: FAA among 2, exhaustive"
       (Fmt.str "all %d interleavings linearizable" c)
   | Error _ -> cell "universal: FAA among 2, exhaustive" "VIOLATED");
  (* Classic level-2 / level-∞ constructions, exhaustively. *)
  List.iter
    (fun (procs, (machine, specs)) ->
      let v =
        Solvability.for_all_inputs
          (fun inputs ->
            Solvability.check_consensus ~machine ~specs ~inputs ())
          (Consensus_task.binary_inputs procs)
      in
      cell
        (Fmt.str "%s among %d" machine.Machine.name procs)
        (verdict_cell v ~expect_ok:true))
    [
      (2, Consensus_protocols.from_queue ());
      (2, Consensus_protocols.from_fetch_and_add ());
      (2, Consensus_protocols.from_swap ());
      (3, Consensus_protocols.from_compare_and_swap ());
    ];
  (* Safe agreement. *)
  List.iter
    (fun n ->
      let machine = Safe_agreement.machine ~n in
      let specs = Safe_agreement.specs ~n in
      let inputs = Kset_task.distinct_inputs n in
      let graph = Cgraph.build ~machine ~specs ~inputs () in
      let first_bad =
        Cgraph.find_node graph (fun _ config ->
            Result.is_error (Consensus_task.check_safety ~inputs config))
      in
      cell
        (Fmt.str "safe agreement n=%d: safety at every configuration" n)
        (Fmt.str "first violation: %s in %d states"
           (match first_bad with None -> "none" | Some id -> string_of_int id)
           (Cgraph.n_nodes graph)))
    [ 2; 3 ];
  (let n = 2 in
   let machine = Safe_agreement.machine ~n in
   let specs = Safe_agreement.specs ~n in
   let inputs = Kset_task.distinct_inputs n in
   let r =
     Executor.run ~machine ~specs ~inputs ~scheduler:(Scheduler.fixed [ 0 ]) ()
   in
   let r2 = Executor.run_solo ~max_steps:500 ~machine ~specs r.Executor.final 1 in
   cell "safe agreement: crash in unsafe zone blocks the rival"
     (Fmt.str "rival spins (%s)"
        (match r2.Executor.stop with
        | Executor.Step_limit -> "as predicted"
        | _ -> "MISMATCH")))

(* ---------------------------------------------------------------------- *)
(* T9: Theorem 7.1 (Qadri's question).                                     *)

let table_t9 () =
  hr
    "T9  Theorem 7.1: (n+1,m)-PAC is at level m but out of reach of \
     n-consensus + registers";
  List.iter
    (fun (m, n) ->
      let report = Qadri.analyze ~m ~n () in
      List.iter
        (fun (a : Separation.verdictish) ->
          cell
            (Fmt.str "m=%d n=%d: %s" m n a.Separation.label)
            (Fmt.str "[%s] %s"
               (if a.Separation.ok then "ok" else "FAIL")
               a.Separation.detail))
        report.Qadri.artifacts)
    [ (2, 3) ]

(* ---------------------------------------------------------------------- *)
(* T10: the BG simulation.                                                 *)

let table_t10 () =
  hr
    "T10 BG simulation: fewer simulators faithfully run a larger \
     full-information snapshot protocol";
  let p = Sim_protocol.min_seen ~n_sim:3 ~steps:1 in
  let inputs = [| Value.int 10; Value.int 11; Value.int 12 |] in
  let outcomes = Sim_protocol.direct_outcomes p ~inputs in
  cell "direct 3-process outcome vectors (model-checked)"
    (string_of_int (List.length outcomes));
  let trials = 500 in
  let ok = ref 0 and agree = ref 0 and comparable = ref 0 in
  for seed = 1 to trials do
    let r =
      Bg_simulation.run ~p ~sim_inputs:inputs ~simulators:2
        ~scheduler:(Scheduler.random ~seed) ()
    in
    (match r.Bg_simulation.simulated_decisions with
    | Some ds when List.exists (Value.equal (Value.list ds)) outcomes ->
      incr ok
    | _ -> ());
    if Bg_simulation.simulators_agree r then incr agree;
    if Bg_simulation.views_comparable r.Bg_simulation.all_views then
      incr comparable
  done;
  cell
    (Fmt.str "2 simulators, %d random schedules: genuine outcomes" trials)
    (Fmt.str "%d/%d" !ok trials);
  cell "simulators agree on all views" (Fmt.str "%d/%d" !agree trials);
  cell "agreed views cell-wise comparable" (Fmt.str "%d/%d" !comparable trials);
  (* Exhaustive upgrade for the tiniest instances: EVERY simulator
     interleaving. *)
  List.iter
    (fun (n_sim, simulators) ->
      let p = Sim_protocol.min_seen ~n_sim ~steps:1 in
      let sim_inputs = Array.init n_sim (fun j -> Value.int (10 + j)) in
      let r = Bg_simulation.check_exhaustive ~p ~sim_inputs ~simulators () in
      cell
        (Fmt.str "exhaustive: %d sims / %d procs, all interleavings" simulators
           n_sim)
        (Fmt.str "%d states, %d terminals, %d bad" r.Bg_simulation.states
           r.Bg_simulation.terminals r.Bg_simulation.bad_outcomes))
    [ (2, 2); (3, 2) ];
  (* Crash sweep: at most one simulated process blocked, ever. *)
  let worst = ref 0 and runs = ref 0 in
  List.iter
    (fun budget ->
      incr runs;
      let scheduler =
        Lbsa_runtime.Fault.apply [ (0, budget) ] (Scheduler.round_robin ~n:2)
      in
      let r =
        Bg_simulation.run ~max_steps:5_000 ~p ~sim_inputs:inputs ~simulators:2
          ~scheduler ()
      in
      match r.Bg_simulation.simulated_decisions with
      | Some _ -> ()
      | None ->
        let progress = r.Bg_simulation.per_simulator_progress.(1) in
        let blocked =
          Listx.count
            (fun j ->
              match List.assoc_opt j progress with
              | Some c -> c < p.Sim_protocol.steps
              | None -> true)
            (Listx.range 0 2)
        in
        if blocked > !worst then worst := blocked)
    (Listx.range 0 20);
  cell
    (Fmt.str "crash sweep (%d budgets): max simulated processes blocked" !runs)
    (Fmt.str "%d (theorem: ≤ 1)" !worst)

let all_tables () =
  Fmt.pr
    "Life Beyond Set Agreement — experiment tables (T1-T10 of DESIGN.md).@.\
     The paper is pure theory with no empirical tables; these are the@.\
     mechanized-verification tables defined in its place.@.";
  table_t1 ();
  table_t2 ();
  table_t3 ();
  table_t4 ();
  table_t5 ();
  table_t6 ();
  table_t7 ();
  table_t8 ();
  table_t9 ();
  table_t10 ()

(* ---------------------------------------------------------------------- *)
(* Micro-benchmarks (bechamel).                                           *)

open Bechamel
open Toolkit

let micro_tests () =
  let pac3 = Pac.spec ~n:3 () in
  let cons8 = Consensus_obj.spec ~m:8 () in
  let sa2 = Sa2.spec () in
  let reg = Register.spec () in
  let prng = Prng.create 1 in
  let b1 =
    [
      Test.make ~name:"pac3 propose+decide pair"
        (Staged.stage (fun () ->
             let st, _ =
               Obj_spec.apply_det pac3 pac3.Obj_spec.initial
                 (Pac.propose (Value.int 1) 1)
             in
             ignore (Obj_spec.apply_det pac3 st (Pac.decide 1))));
      Test.make ~name:"8-consensus propose"
        (Staged.stage (fun () ->
             ignore
               (Obj_spec.apply_det cons8 cons8.Obj_spec.initial
                  (Consensus_obj.propose (Value.int 1)))));
      Test.make ~name:"2-SA propose (random adversary)"
        (Staged.stage (fun () ->
             ignore
               (Obj_spec.apply
                  ~choice:(fun bs -> Prng.int prng (List.length bs))
                  sa2 sa2.Obj_spec.initial
                  (Sa2.propose (Value.int 1)))));
      Test.make ~name:"register write+read"
        (Staged.stage (fun () ->
             let st, _ =
               Obj_spec.apply_det reg reg.Obj_spec.initial
                 (Register.write (Value.int 1))
             in
             ignore (Obj_spec.apply_det reg st Register.read)));
    ]
  in
  let b2 =
    List.map
      (fun n ->
        let machine = Dac_from_pac.machine ~n in
        let specs = Dac_from_pac.specs ~n in
        let counter = ref 0 in
        Test.make ~name:(Fmt.str "algorithm-2 end-to-end n=%d" n)
          (Staged.stage (fun () ->
               incr counter;
               let inputs = Array.init n (fun i -> Value.int (i land 1)) in
               ignore
                 (Executor.run ~machine ~specs ~inputs
                    ~scheduler:(Scheduler.random ~seed:!counter)
                    ()))))
      [ 2; 4; 8 ]
  in
  let b3 =
    let machine = Dac_from_pac.machine ~n:3 in
    let specs = Dac_from_pac.specs ~n:3 in
    let inputs = [| Value.int 1; Value.int 0; Value.int 0 |] in
    [
      Test.make ~name:"graph build (3-DAC)"
        (Staged.stage (fun () ->
             ignore (Cgraph.build ~machine ~specs ~inputs ())));
      (let graph = Cgraph.build ~machine ~specs ~inputs () in
       Test.make ~name:"valence analysis (3-DAC graph)"
         (Staged.stage (fun () -> ignore (Valence.analyze graph))));
      (let graph = Cgraph.build ~machine ~specs ~inputs () in
       Test.make ~name:"valence fixpoint oracle (3-DAC graph)"
         (Staged.stage (fun () -> ignore (Valence.analyze_fixpoint graph))));
    ]
  in
  let b4 =
    let machine, specs = Consensus_protocols.from_consensus_obj ~m:2 in
    [
      Test.make ~name:"solvability: consensus m=2 exhaustive"
        (Staged.stage (fun () ->
             ignore
               (Solvability.check_consensus ~machine ~specs
                  ~inputs:[| Value.int 0; Value.int 1 |] ())));
    ]
  in
  let b5 =
    let spec = Classic.Fetch_and_add.spec () in
    let gen_prng = Prng.create 99 in
    let workloads =
      Array.init 3 (fun _ ->
          List.init 3 (fun _ -> Classic.Fetch_and_add.fetch_and_add 1))
    in
    let history =
      Lin_gen.linearizable_history ~prng:gen_prng ~spec ~workloads
    in
    [
      Test.make ~name:"linearizability check (9 calls, 3 procs)"
        (Staged.stage (fun () -> ignore (Lin_checker.check spec history)));
      (let session = Lin_checker.session spec in
       Test.make ~name:"lin check, reused session (9 calls, 3 procs)"
         (Staged.stage (fun () ->
              ignore (Lin_checker.check_with session history))));
      Test.make ~name:"ablation: lin check without memoization"
        (Staged.stage (fun () ->
             ignore (Lin_checker.check ~memo:false spec history)));
    ]
  in
  let b6 =
    [
      (let target = Classic.Fetch_and_add.spec () in
       let impl = Universal.implementation ~n:2 ~target () in
       let workloads =
         Array.init 2 (fun _ ->
             List.init 2 (fun _ -> Classic.Fetch_and_add.fetch_and_add 1))
       in
       let counter = ref 0 in
       Test.make ~name:"universal FAA op (2 procs, end-to-end run)"
         (Staged.stage (fun () ->
              incr counter;
              ignore
                (Harness.run_clients ~impl ~workloads
                   ~scheduler:(Scheduler.random ~seed:!counter)
                   ()))));
      Test.make ~name:"power probe: O'_2 k=1"
        (Staged.stage (fun () ->
             ignore
               (Power.probe_oprime_family
                  ~power:(O_prime.default_power ~n:2 ~max_k:1)
                  ~k:1 ())));
    ]
  in
  Test.make_grouped ~name:"lbsa" (b1 @ b2 @ b3 @ b4 @ b5 @ b6)

let run_micro () =
  hr "Micro-benchmarks (bechamel; OLS estimate of time per run)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg instances (micro_tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) rows in
  Fmt.pr "%-48s %16s %10s@." "benchmark" "time/op" "r²";
  List.iter
    (fun (name, ols) ->
      let est =
        match Analyze.OLS.estimates ols with
        | Some (e :: _) -> e
        | _ -> nan
      in
      let r2 = Option.value (Analyze.OLS.r_square ols) ~default:nan in
      let time =
        if est > 1e9 then Fmt.str "%.3f s" (est /. 1e9)
        else if est > 1e6 then Fmt.str "%.3f ms" (est /. 1e6)
        else if est > 1e3 then Fmt.str "%.3f us" (est /. 1e3)
        else Fmt.str "%.1f ns" est
      in
      Fmt.pr "%-48s %16s %10.4f@." name time r2)
    rows

(* ---------------------------------------------------------------------- *)
(* Exploration micro-benchmark: the seed Map.Make(Config) explorer
   (Cgraph.build_cmap) against the hash-set/CSR engine (Cgraph.build),
   sequentially and with the default domain count.  Both must produce
   the identical graph; states/sec comes from each graph's own stats. *)

let run_explore () =
  hr "Exploration engines (states/sec; same graph from every engine)";
  let cases =
    [
      ( "3-process consensus (m=3)",
        (fun () -> Consensus_protocols.from_consensus_obj ~m:3),
        [| Value.int 0; Value.int 1; Value.int 0 |],
        3000 );
      ( "5-process DAC (Algorithm 2)",
        (fun () -> (Dac_from_pac.machine ~n:5, Dac_from_pac.specs ~n:5)),
        [| Value.int 1; Value.int 0; Value.int 0; Value.int 0; Value.int 0 |],
        10 );
      ( "6-process DAC (Algorithm 2)",
        (fun () -> (Dac_from_pac.machine ~n:6, Dac_from_pac.specs ~n:6)),
        Array.init 6 (fun pid -> Value.int (if pid = 0 then 1 else 0)),
        3 );
    ]
  in
  Fmt.pr "%-30s %8s %14s %14s %14s %9s@." "graph" "states" "cmap st/s"
    "hash st/s" "hash-par st/s" "speedup";
  List.iter
    (fun (label, mk, inputs, reps) ->
      let machine, specs = mk () in
      let time build =
        (* Fresh compacted heap per engine (a retained graph from one
           engine would tax the next engine's GC), warm once, then sum
           the explorer's own wall clock over reps. *)
        Gc.compact ();
        let g = build () in
        let shape = (Cgraph.n_nodes g, Cgraph.n_edges g) in
        let wall = ref 0. in
        for _ = 1 to reps do
          let g = build () in
          wall := !wall +. (Cgraph.stats g).Cgraph.wall_s
        done;
        (shape, float (fst shape) *. float reps /. !wall)
      in
      let s0, cmap_rate =
        time (fun () -> Cgraph.build_cmap ~machine ~specs ~inputs ())
      in
      let s1, seq_rate =
        time (fun () -> Cgraph.build ~domains:1 ~machine ~specs ~inputs ())
      in
      let s2, par_rate = time (fun () -> Cgraph.build ~machine ~specs ~inputs ()) in
      assert (s0 = s1);
      assert (s0 = s2);
      Fmt.pr "%-30s %8d %14.0f %14.0f %14.0f %8.1fx@." label (fst s0) cmap_rate
        seq_rate par_rate
        (Float.max seq_rate par_rate /. cmap_rate))
    cases

(* ---------------------------------------------------------------------- *)
(* BENCH_verify.json: fixed-workload verification-pipeline measurements,
   written as machine-readable JSON so the perf trajectory has data
   points (schema documented in DESIGN.md).  Fixed seeds and short
   budgets — usable as a CI smoke. *)

(* The seed's checker, kept verbatim as the baseline for the checker
   measurement: per-check Hashtbl-and-sort well-formedness test,
   functional Value sets threaded through the DFS, and a structural
   (int * Value.t list) memo key. *)
module Seed_shape_checker = struct
  module VSet = Set.Make (Value)

  let well_formed (h : Chistory.t) =
    let by_pid = Hashtbl.create 8 in
    List.iter
      (fun (c : Chistory.call) ->
        let cur = Option.value (Hashtbl.find_opt by_pid c.pid) ~default:[] in
        Hashtbl.replace by_pid c.pid (c :: cur))
      h;
    Hashtbl.fold
      (fun _ calls acc ->
        acc
        &&
        let sorted =
          List.sort
            (fun (a : Chistory.call) (b : Chistory.call) ->
              Stdlib.compare a.inv b.inv)
            calls
        in
        let rec ok = function
          | (a : Chistory.call) :: (b :: _ as rest) ->
            a.res < b.inv && ok rest
          | _ -> true
        in
        ok sorted)
      by_pid true

  let check (spec : Obj_spec.t) (h : Chistory.t) =
    if not (well_formed h) then
      invalid_arg "Checker.check: history is not well-formed";
    let calls = Array.of_list h in
    let nc = Array.length calls in
    let pred_mask =
      Array.init nc (fun i ->
          let m = ref 0 in
          for j = 0 to nc - 1 do
            if j <> i && Chistory.precedes calls.(j) calls.(i) then
              m := !m lor (1 lsl j)
          done;
          !m)
    in
    let full = (1 lsl nc) - 1 in
    let visited : (int * Value.t list, unit) Hashtbl.t = Hashtbl.create 256 in
    let exception Found of Chistory.call list in
    let apply_call states (c : Chistory.call) =
      VSet.fold
        (fun s acc ->
          List.fold_left
            (fun acc (b : Obj_spec.branch) ->
              if Value.equal b.response c.response then VSet.add b.next acc
              else acc)
            acc
            (Obj_spec.branches spec s c.op))
        states VSet.empty
    in
    let rec go done_mask states acc =
      if done_mask = full then raise (Found (List.rev acc))
      else
        let key = (done_mask, VSet.elements states) in
        if Hashtbl.mem visited key then ()
        else begin
          for i = 0 to nc - 1 do
            let bit = 1 lsl i in
            if done_mask land bit = 0 && pred_mask.(i) land lnot done_mask = 0
            then begin
              let states' = apply_call states calls.(i) in
              if not (VSet.is_empty states') then
                go (done_mask lor bit) states' (calls.(i) :: acc)
            end
          done;
          Hashtbl.replace visited key ()
        end
    in
    match go 0 (VSet.singleton spec.Obj_spec.initial) [] with
    | () -> None
    | exception Found order -> Some order
end

(* Mean seconds per call: warm once, then batches of 50 until >= 0.1 s
   of measurement; report the fastest of [k] such measurements (the
   steady-state figure, robust against frequency scaling and GC noise). *)
let time_per ?(k = 5) f =
  f ();
  let one () =
    let t0 = Unix.gettimeofday () in
    let reps = ref 0 in
    let elapsed = ref 0. in
    while !elapsed < 0.1 do
      for _ = 1 to 50 do
        f ()
      done;
      reps := !reps + 50;
      elapsed := Unix.gettimeofday () -. t0
    done;
    !elapsed /. float !reps
  in
  let best = ref (one ()) in
  for _ = 2 to k do
    let t = one () in
    if t < !best then best := t
  done;
  !best

(* Paired variant for A/B overhead comparisons: alternate short batches
   of the two functions so frequency scaling, cache state, and GC noise
   hit both sides equally, then report best-of-[k] for each.  Two
   independent [time_per] calls minutes apart can disagree by 30%+ on
   a shared box, which is fatal when the question is "is A within 5%
   of B". *)
let time_pair ?(k = 9) f g =
  f ();
  g ();
  let one h =
    let t0 = Unix.gettimeofday () in
    let reps = ref 0 in
    let elapsed = ref 0. in
    while !elapsed < 0.02 do
      for _ = 1 to 500 do
        h ()
      done;
      reps := !reps + 500;
      elapsed := Unix.gettimeofday () -. t0
    done;
    !elapsed /. float !reps
  in
  let bf = ref infinity and bg = ref infinity in
  for _ = 1 to k do
    let tf = one f in
    let tg = one g in
    if tf < !bf then bf := tf;
    if tg < !bg then bg := tg
  done;
  (!bf, !bg)

(* Out-of-core cases run through `lbsa explore` in a fresh subprocess,
   so the reported peak RSS (VmHWM) is honestly per-run — this process
   never inherits a child's high-water mark — and the key=value stdout
   parses with a string split. *)
let cli_exe =
  Filename.concat
    (Filename.dirname Sys.executable_name)
    (Filename.concat ".." (Filename.concat "bin" "lbsa_cli.exe"))

let explore_sub args =
  let cmd =
    String.concat " " (List.map Filename.quote (cli_exe :: "explore" :: args))
  in
  let ic = Unix.open_process_in cmd in
  let kv = Hashtbl.create 32 in
  (try
     while true do
       let line = input_line ic in
       match String.index_opt line '=' with
       | Some i ->
         Hashtbl.replace kv (String.sub line 0 i)
           (String.sub line (i + 1) (String.length line - i - 1))
       | None -> ()
     done
   with End_of_file -> ());
  (* 0 = complete graph, 2 = partial (quota/deadline) — both carry
     telemetry worth recording; anything else is a harness bug. *)
  (match Unix.close_process_in ic with
  | Unix.WEXITED (0 | 2) -> ()
  | _ -> failwith ("bench: explore subprocess failed: " ^ cmd));
  kv

let kv_s kv k =
  match Hashtbl.find_opt kv k with
  | Some v -> v
  | None -> failwith ("bench: explore output missing key " ^ k)

let kv_i kv k = int_of_string (kv_s kv k)
let kv_f kv k = float_of_string (kv_s kv k)

let run_json () =
  hr "Verification pipeline measurements -> BENCH_verify.json";
  let machine = Dac_from_pac.machine ~n:3 in
  let specs = Dac_from_pac.specs ~n:3 in
  let inputs = [| Value.int 1; Value.int 0; Value.int 0 |] in
  let graph = Cgraph.build ~machine ~specs ~inputs () in
  let gstats = Cgraph.stats graph in
  let nodes = Cgraph.n_nodes graph in
  (* Before/after for the explorer: the seed CMap explorer rebuilds the
     same graph through structural [Config.compare]; the current one
     dedups through cached hashes and pointer-equality [Value.equal]. *)
  let t_build =
    time_per ~k:3 (fun () ->
        ignore (Cgraph.build ~domains:1 ~machine ~specs ~inputs ()))
  in
  let t_cmap =
    time_per ~k:3 (fun () ->
        ignore (Cgraph.build_cmap ~machine ~specs ~inputs ()))
  in
  let t_val = time_per (fun () -> ignore (Valence.analyze graph)) in
  let t_fix = time_per (fun () -> ignore (Valence.analyze_fixpoint graph)) in
  let spec = Classic.Fetch_and_add.spec () in
  let workloads =
    Array.init 3 (fun _ ->
        List.init 3 (fun _ -> Classic.Fetch_and_add.fetch_and_add 1))
  in
  let history =
    Lin_gen.linearizable_history ~prng:(Prng.create 99) ~spec ~workloads
  in
  let session = Lin_checker.session spec in
  let t_sess =
    time_per (fun () -> ignore (Lin_checker.check_with session history))
  in
  let t_fresh = time_per (fun () -> ignore (Lin_checker.check spec history)) in
  let t_seed =
    time_per (fun () -> ignore (Seed_shape_checker.check spec history))
  in
  let sweep d =
    let _, fs =
      Solvability.for_all_inputs_timed ~domains:d
        (fun inputs ->
          Solvability.check_dac ~domains:1 ~machine ~specs ~inputs ())
        (Dac.binary_inputs 3)
    in
    fs
  in
  (* Warm once so the first sweep doesn't pay one-time setup. *)
  ignore (sweep 1);
  let fs1 = sweep 1 and fs2 = sweep 2 and fs4 = sweep 4 in
  (* State-space reduction on the same instance: states and wall per
     mode, the verdict cross-checked against the unreduced run, and the
     reduced graph cross-checked against the CMap oracle. *)
  let canon = Canon.dac ~n:3 in
  let dac_frozen obj st = obj = 0 && Pac.is_upset st in
  let reductions =
    [
      ("none", Cgraph.no_reduction);
      ("sym", { Cgraph.rname = "sym"; canon; sleep = false; frozen = None });
      ( "sym+sleep",
        {
          Cgraph.rname = "sym+sleep";
          canon;
          sleep = true;
          frozen = Some dac_frozen;
        } );
    ]
  in
  let red =
    List.map
      (fun (mode, reduce) ->
        let g = Cgraph.build ~domains:1 ~reduce ~machine ~specs ~inputs () in
        let oracle = Cgraph.build_cmap ~reduce ~machine ~specs ~inputs () in
        let oracle_agrees =
          Cgraph.n_nodes g = Cgraph.n_nodes oracle
          && Cgraph.n_edges g = Cgraph.n_edges oracle
        in
        let v =
          Solvability.check_dac ~domains:1 ~reduce ~machine ~specs ~inputs ()
        in
        let t =
          time_per ~k:3 (fun () ->
              ignore (Cgraph.build ~domains:1 ~reduce ~machine ~specs ~inputs ()))
        in
        (mode, Cgraph.n_nodes g, t, v.Solvability.ok, oracle_agrees))
      reductions
  in
  let red_states mode =
    let _, s, _, _, _ = List.find (fun (m, _, _, _, _) -> m = mode) red in
    s
  in
  let red_ratio =
    float (red_states "none") /. float (max 1 (red_states "sym+sleep"))
  in
  let red_verdicts_agree =
    match red with
    | (_, _, _, ok0, _) :: _ ->
      List.for_all (fun (_, _, _, ok, agrees) -> ok = ok0 && agrees) red
    | [] -> false
  in
  (* Verification service: client-observed cold vs hot latency for the
     dac:3 solvability query under every reduction mode, plus the
     daemon's own counters.  One in-process daemon on a throwaway socket
     and store — the same path [lbsa serve] exercises. *)
  let serve_dir =
    let d = Filename.temp_file "lbsa-bench-serve" "" in
    Sys.remove d;
    Unix.mkdir d 0o700;
    d
  in
  let serve_cfg =
    {
      Serve_daemon.socket = Filename.concat serve_dir "sock";
      store_dir = Filename.concat serve_dir "store";
      workers = 1;
      default_deadline_s = None;
      store_probe_s = 5.;
      log = false;
    }
  in
  let daemon = Domain.spawn (fun () -> Serve_daemon.run serve_cfg) in
  let client =
    match Serve_client.connect ~wait_s:10. ~socket:serve_cfg.socket () with
    | Ok c -> c
    | Error e -> failwith ("bench: cannot reach serve daemon: " ^ e)
  in
  let serve_query reduce =
    Serve_api.Verify
      {
        task = Serve_api.Dac { n = 3 };
        question = Serve_api.Solve;
        inputs = [ 1; 0; 0 ];
        max_states = Cgraph.default_max_states;
        reduce;
        substrate = "shm";
      }
  in
  let client_wall f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, (Unix.gettimeofday () -. t0) *. 1e3)
  in
  let serve_modes =
    List.map
      (fun reduce ->
        let q = serve_query reduce in
        let ask () =
          match Serve_client.query client q with
          | Ok (r, cached, _) -> (Serve_api.render r, cached)
          | Error e -> failwith ("bench: serve query failed: " ^ e)
        in
        let (cold_render, _), cold_ms = client_wall ask in
        let hot_ms = ref infinity and hot_equal = ref true in
        for _ = 1 to 10 do
          let (r, cached), ms = client_wall ask in
          if not cached then failwith "bench: warm serve query missed cache";
          if ms < !hot_ms then hot_ms := ms;
          hot_equal := !hot_equal && String.equal r cold_render
        done;
        (Serve_api.reduce_name reduce, cold_ms, !hot_ms, !hot_equal))
      [ `None; `Sym; `Sym_sleep ]
  in
  let serve_stats =
    match Serve_client.stats client with
    | Ok s -> s
    | Error e -> failwith ("bench: serve stats failed: " ^ e)
  in
  (match Serve_client.shutdown client with
  | Ok _ -> ()
  | Error e -> failwith ("bench: serve shutdown failed: " ^ e));
  Serve_client.close client;
  let (_ : Serve_wire.stats) = Domain.join daemon in
  let rec rm_rf path =
    if Sys.is_directory path then (
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path)
    else Sys.remove path
  in
  (try rm_rf serve_dir with Sys_error _ | Unix.Unix_error _ -> ());
  (* Out-of-core explorer.  Shard sweep and spilled run on a mid-size
     obstruction-free case (of:3:2, ~105k states): every run must end
     Done with the same structural fingerprint, the spilled run must
     actually write segments, and `explore` must remove its own spill
     directory once the graph completes.  The >= 1e7-state big case
     takes minutes of wall and gigabytes of spill, so it only runs when
     LBSA_BENCH_BIG=1; CI and quick local regens get "skipped": true. *)
  let ooc_dir =
    let d = Filename.temp_file "lbsa-bench-ooc" "" in
    Sys.remove d;
    Unix.mkdir d 0o700;
    d
  in
  let ooc_case = "of:3:2" in
  let ooc_sweep =
    List.map
      (fun s ->
        ( s,
          explore_sub [ ooc_case; "--shards"; string_of_int s; "--fingerprint" ]
        ))
      [ 1; 4; 16; 64 ]
  in
  let ooc_spilled =
    explore_sub
      [
        ooc_case;
        "--shards";
        "4";
        "--spill-dir";
        Filename.concat ooc_dir "spill";
        "--spill-threshold";
        "20000";
        "--fingerprint";
      ]
  in
  let ooc_fp = kv_s (List.assoc 1 ooc_sweep) "fingerprint" in
  let ooc_fingerprints_equal =
    List.for_all
      (fun (_, kv) -> String.equal (kv_s kv "fingerprint") ooc_fp)
      ooc_sweep
    && String.equal (kv_s ooc_spilled "fingerprint") ooc_fp
  in
  let ooc_outcomes_done =
    List.for_all (fun (_, kv) -> kv_s kv "outcome" = "done") ooc_sweep
    && kv_s ooc_spilled "outcome" = "done"
  in
  let ooc_spill_engaged = kv_i ooc_spilled "spill_segments" > 0 in
  let ooc_spill_cleaned =
    not (Sys.file_exists (Filename.concat ooc_dir "spill"))
  in
  (* The sharded+spilled explorer must agree with the seed CMap oracle
     node-for-node on dac:3, and its solvability verdict with the
     resident run from the reduction section above. *)
  let ooc_verdict =
    Solvability.check_dac ~domains:1 ~shards:4
      ~spill:
        {
          Cgraph.spill_dir = Filename.concat ooc_dir "oracle-spill";
          spill_threshold = 40;
        }
      ~machine ~specs ~inputs ()
  in
  let ooc_verdict_ok =
    let _, _, _, ok_none, _ = List.find (fun (m, _, _, _, _) -> m = "none") red in
    ooc_verdict.Solvability.ok = ok_none
  in
  let ooc_oracle_agrees =
    let g =
      Cgraph.build ~domains:1 ~shards:4
        ~spill:
          {
            Cgraph.spill_dir = Filename.concat ooc_dir "oracle-spill2";
            spill_threshold = 40;
          }
        ~machine ~specs ~inputs ()
    in
    let oracle = Cgraph.build_cmap ~machine ~specs ~inputs () in
    Cgraph.n_nodes g = Cgraph.n_nodes oracle
    && Cgraph.n_edges g = Cgraph.n_edges oracle
  in
  let ooc_big =
    match Sys.getenv_opt "LBSA_BENCH_BIG" with
    | Some "1" ->
      Some
        (explore_sub
           [
             "of:4:2";
             "--max-states";
             "40000000";
             "--shards";
             "64";
             "--spill-dir";
             Filename.concat ooc_dir "big-spill";
             "--spill-threshold";
             "2000000";
           ])
    | _ -> None
  in
  (try rm_rf ooc_dir with Sys_error _ | Unix.Unix_error _ -> ());
  let serve_speedup_min =
    List.fold_left
      (fun acc (_, cold, hot, _) -> Float.min acc (cold /. hot))
      infinity serve_modes
  in
  let serve_verdicts_equal =
    List.for_all (fun (_, _, _, eq) -> eq) serve_modes
  in
  (* Fairness-aware liveness on the message-passing substrate: safety
     (consensus solvability) vs liveness (fair-cycle search) on the SAME
     vc:2 task and graph, the live bcast:2 control, and the shrunk-lasso
     size.  Single-domain build + greedy shrink, so every number here is
     deterministic and CI can byte-compare the witness elsewhere. *)
  let mp = Substrate.mp () in
  let vc_machine = View_change.machine ~n:2 in
  let vc_specs = View_change.specs ~n:2 () in
  let vc_inputs = View_change.inputs ~n:2 in
  let vc_graph =
    Cgraph.build ~domains:1 ~substrate:mp ~machine:vc_machine ~specs:vc_specs
      ~inputs:vc_inputs ()
  in
  let t_vc_safety =
    time_per ~k:3 (fun () ->
        ignore
          (Solvability.check_consensus ~domains:1 ~substrate:mp
             ~machine:vc_machine ~specs:vc_specs ~inputs:vc_inputs ()))
  in
  let t_vc_live =
    time_per ~k:3 (fun () ->
        ignore
          (Liveness.analyze ~machine:vc_machine ~specs:vc_specs ~substrate:mp
             vc_graph))
  in
  let vc_report =
    Liveness.analyze ~machine:vc_machine ~specs:vc_specs ~substrate:mp vc_graph
  in
  let vc_livelock, lasso_prefix, lasso_cycle, lasso_valid =
    match vc_report.Liveness.verdict with
    | Liveness.Livelock w ->
      let w, _ =
        Lasso.shrink ~machine:vc_machine ~specs:vc_specs ~substrate:mp
          ~graph:vc_graph w
      in
      ( true,
        List.length w.Liveness.w_prefix,
        List.length w.Liveness.w_cycle,
        Liveness.validate ~machine:vc_machine ~specs:vc_specs ~substrate:mp
          vc_graph w )
    | Liveness.Live -> (false, 0, 0, false)
  in
  let bcast_live =
    let machine = View_change.bcast_machine ~n:2 in
    let specs = View_change.bcast_specs ~n:2 () in
    let inputs = View_change.inputs ~n:2 in
    let g =
      Cgraph.build ~domains:1 ~substrate:mp ~machine ~specs ~inputs ()
    in
    (Liveness.analyze ~machine ~specs ~substrate:mp g).Liveness.verdict
    = Liveness.Live
  in
  (* Parallel speedup is bounded by the cores actually available: on a
     single-core box the d > 1 sweeps only measure spawn overhead. *)
  let cores = Domain.recommended_domain_count () in
  let istats = Value.intern_stats () in
  let probe = gstats.Cgraph.probe in
  Fmt.pr "explore:  %d states at %.0f states/s (%d domains)@." nodes
    gstats.Cgraph.states_per_sec gstats.Cgraph.domains;
  Fmt.pr "explore:  %.2f ms/build vs %.2f ms seed CMap (%.2fx)@."
    (t_build *. 1e3) (t_cmap *. 1e3) (t_cmap /. t_build);
  Fmt.pr
    "hashcons: %d hits / %d misses (%d live values, %d stripes); dedup \
     probes %d, %d compares avoided on hash, %d equal-confirms@."
    istats.Value.hits istats.Value.misses istats.Value.size
    istats.Value.stripes probe.Ctbl.probes probe.Ctbl.hash_skips
    probe.Ctbl.equal_confirms;
  Fmt.pr "valence:  %.1f ns/node (fixpoint oracle %.1f ns/node, %.2fx)@."
    (t_val *. 1e9 /. float nodes)
    (t_fix *. 1e9 /. float nodes)
    (t_fix /. t_val);
  Fmt.pr
    "checker:  %.0f checks/s fresh, %.0f reused session (seed shape %.0f; \
     %.2fx / %.2fx)@."
    (1. /. t_fresh) (1. /. t_sess) (1. /. t_seed) (t_seed /. t_fresh)
    (t_seed /. t_sess);
  Fmt.pr
    "for_all_inputs (8 x dac:3): %.3fs @@1, %.3fs @@2, %.3fs @@4 domains (%d \
     core%s available)@."
    fs1.Solvability.wall_s fs2.Solvability.wall_s fs4.Solvability.wall_s cores
    (if cores = 1 then "" else "s");
  List.iter
    (fun (mode, states, t, ok, agrees) ->
      Fmt.pr
        "reduce %-9s %4d states, %.2f ms/build, verdict %s, oracle %s@." mode
        states (t *. 1e3)
        (if ok then "ok" else "FAIL")
        (if agrees then "agrees" else "DISAGREES"))
    red;
  Fmt.pr "reduce ratio: %.2fx fewer states under sym+sleep@." red_ratio;
  List.iter
    (fun (mode, cold, hot, eq) ->
      Fmt.pr "serve %-9s cold %.2f ms, hot %.3f ms (%.0fx), verdict %s@." mode
        cold hot (cold /. hot)
        (if eq then "equal" else "DIFFERS"))
    serve_modes;
  Fmt.pr
    "serve counters: %d queries, %d mem hits, %d store hits, %d computed, \
     queue peak %d@."
    serve_stats.Serve_wire.st_queries serve_stats.Serve_wire.st_hits_mem
    serve_stats.Serve_wire.st_hits_store serve_stats.Serve_wire.st_computed
    serve_stats.Serve_wire.st_queue_peak;
  List.iter
    (fun (s, kv) ->
      Fmt.pr
        "ooc %s shards=%-2d  %.0f states/s, wall %.2f s, peak RSS %d kB, %d \
         steals@."
        ooc_case s (kv_f kv "states_per_sec") (kv_f kv "wall_s")
        (kv_i kv "peak_rss_kb") (kv_i kv "steals"))
    ooc_sweep;
  Fmt.pr
    "ooc %s spilled: %d segments / %d bytes on disk, %d faults, peak RSS %d \
     kB; fingerprints %s, oracle %s@."
    ooc_case
    (kv_i ooc_spilled "spill_segments")
    (kv_i ooc_spilled "spill_bytes")
    (kv_i ooc_spilled "seg_faults")
    (kv_i ooc_spilled "peak_rss_kb")
    (if ooc_fingerprints_equal then "equal" else "DIFFER")
    (if ooc_oracle_agrees then "agrees" else "DISAGREES");
  (match ooc_big with
  | Some kv ->
    Fmt.pr
      "ooc big of:4:2: %d states, %.0f states/s, wall %.1f s, peak RSS %d \
       kB, %d spill bytes, outcome %s@."
      (kv_i kv "states") (kv_f kv "states_per_sec") (kv_f kv "wall_s")
      (kv_i kv "peak_rss_kb") (kv_i kv "spill_bytes") (kv_s kv "outcome")
  | None -> Fmt.pr "ooc big case skipped (set LBSA_BENCH_BIG=1 to run)@.");
  Fmt.pr
    "liveness vc:2 (mp): %d states, safety %.2f ms vs liveness %.2f ms; %d/%d \
     SCCs fair, %s, lasso %d+%d (%s), bcast:2 %s@."
    (Cgraph.n_nodes vc_graph) (t_vc_safety *. 1e3) (t_vc_live *. 1e3)
    vc_report.Liveness.fair_sccs vc_report.Liveness.sccs
    (if vc_livelock then "LIVELOCK" else "live")
    lasso_prefix lasso_cycle
    (if lasso_valid then "oracle agrees" else "ORACLE REJECTS")
    (if bcast_live then "live" else "LIVELOCK");
  (* Robustness (PR 10): crash-recovery latency of a real SIGKILLed
     child (killed after the rename crash point, so a complete
     checkpoint exists to resume), the rio shim's hot-path overhead
     over a bare write syscall, and a seeded fault sweep's
     injection/survival counters. *)
  let crash_dir =
    let d = Filename.temp_file "lbsa-bench-crash" "" in
    Sys.remove d;
    Unix.mkdir d 0o700;
    d
  in
  let solve_args = [ "solve"; "dac"; "-n"; "3" ] in
  let crash_ck = Filename.concat crash_dir "crash.ckpt" in
  let crash_baseline = Crashdrive.run ~exe:cli_exe ~args:solve_args () in
  let crashed =
    Crashdrive.run
      ~env:[ ("LBSA_IO_CRASH", "checkpoint.save:4") ]
      ~exe:cli_exe
      ~args:(solve_args @ [ "--deadline"; "0"; "--checkpoint"; crash_ck ])
      ()
  in
  let crash_killed = Crashdrive.killed_by crashed Sys.sigkill in
  let t0_recover = Unix.gettimeofday () in
  let resumed =
    Crashdrive.run ~exe:cli_exe ~args:(solve_args @ [ "--resume"; crash_ck ]) ()
  in
  let recovery_ms = (Unix.gettimeofday () -. t0_recover) *. 1e3 in
  let crash_recovered =
    crash_killed
    && Crashdrive.exited resumed = Some 0
    && String.equal resumed.Crashdrive.out crash_baseline.Crashdrive.out
  in
  (try rm_rf crash_dir with Sys_error _ | Unix.Unix_error _ -> ());
  let rio_buf = Bytes.make 4096 'x' in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let t_rio_write, t_raw_write =
    time_pair
      (fun () -> Rio.really_write ~site:"bench.rio" devnull rio_buf 0 4096)
      (fun () -> ignore (Unix.write devnull rio_buf 0 4096))
  in
  Unix.close devnull;
  let rio_overhead_pct = (t_rio_write -. t_raw_write) /. t_raw_write *. 100. in
  let sweep_survived = ref 0
  and sweep_refused = ref 0
  and sweep_wrong = ref 0 in
  Rio.reset_counters ();
  Rio.arm ~seed:7 ~rate_percent:20 ();
  let sweep_dir =
    let d = Filename.temp_file "lbsa-bench-sweep" "" in
    Sys.remove d;
    Unix.mkdir d 0o700;
    d
  in
  let sweep_store = Serve_store.open_ ~dir:sweep_dir in
  for i = 0 to 199 do
    let key = Fmt.str "bench%04d00000000" i in
    let canonical = Fmt.str "bench question %d" i in
    let data = Fmt.str "bench answer %d" i in
    (match Serve_store.put sweep_store ~key ~canonical ~data with
    | Ok () -> ()
    | Error _ -> incr sweep_refused);
    match Serve_store.get sweep_store ~key ~canonical with
    | None -> ()
    | Some got ->
      if String.equal got data then incr sweep_survived else incr sweep_wrong
  done;
  Rio.disarm ();
  let rio_ctr = Rio.counters () in
  (try rm_rf sweep_dir with Sys_error _ | Unix.Unix_error _ -> ());
  Fmt.pr
    "robustness: crash recovery %s in %.1f ms; rio write %.0f ns vs raw %.0f \
     ns (%+.1f%%)@."
    (if crash_recovered then "byte-identical" else "FAILED")
    recovery_ms (t_rio_write *. 1e9) (t_raw_write *. 1e9) rio_overhead_pct;
  Fmt.pr
    "robustness sweep: %d served, %d refused, %d wrong; injected eintr=%d \
     short=%d enospc=%d eio=%d, %d retries absorbed@."
    !sweep_survived !sweep_refused !sweep_wrong rio_ctr.Rio.c_eintr
    (rio_ctr.Rio.c_short_read + rio_ctr.Rio.c_short_write)
    rio_ctr.Rio.c_enospc rio_ctr.Rio.c_eio rio_ctr.Rio.c_retries;
  let oc = open_out "BENCH_verify.json" in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"schema\": \"lbsa-bench-verify/7\",\n";
  p
    "  \"explore\": { \"case\": \"dac:3\", \"states\": %d, \
     \"states_per_sec\": %.0f, \"domains\": %d, \"build_ms\": %.3f, \
     \"cmap_build_ms\": %.3f, \"speedup_vs_cmap\": %.2f },\n"
    nodes gstats.Cgraph.states_per_sec gstats.Cgraph.domains (t_build *. 1e3)
    (t_cmap *. 1e3) (t_cmap /. t_build);
  p
    "  \"hashcons\": { \"intern_hits\": %d, \"intern_misses\": %d, \
     \"table_size\": %d, \"stripes\": %d, \"dedup_probes\": %d, \
     \"probe_compares_avoided\": %d, \"probe_equal_confirms\": %d },\n"
    istats.Value.hits istats.Value.misses istats.Value.size
    istats.Value.stripes probe.Ctbl.probes probe.Ctbl.hash_skips
    probe.Ctbl.equal_confirms;
  p
    "  \"valence\": { \"graph\": \"dac:3\", \"nodes\": %d, \
     \"analyze_ns_per_node\": %.1f, \"fixpoint_ns_per_node\": %.1f, \
     \"speedup\": %.2f },\n"
    nodes
    (t_val *. 1e9 /. float nodes)
    (t_fix *. 1e9 /. float nodes)
    (t_fix /. t_val);
  p
    "  \"checker\": { \"case\": \"faa 9 calls 3 procs\", \
     \"fresh_checks_per_sec\": %.0f, \"session_checks_per_sec\": %.0f, \
     \"seed_shape_checks_per_sec\": %.0f, \"speedup_fresh_vs_seed\": %.2f, \
     \"speedup_session_vs_seed\": %.2f },\n"
    (1. /. t_fresh) (1. /. t_sess) (1. /. t_seed) (t_seed /. t_fresh)
    (t_seed /. t_sess);
  p "  \"reduction\": { \"case\": \"dac:3\", \"modes\": {\n";
  List.iteri
    (fun i (mode, states, t, ok, agrees) ->
      p
        "    %S: { \"states\": %d, \"build_ms\": %.3f, \"verdict_ok\": %b, \
         \"oracle_agrees\": %b }%s\n"
        mode states (t *. 1e3) ok agrees
        (if i = List.length red - 1 then "" else ","))
    red;
  p "  }, \"ratio_none_vs_sym_sleep\": %.2f, \"verdicts_agree\": %b },\n"
    red_ratio red_verdicts_agree;
  p
    "  \"for_all_inputs\": { \"family\": \"dac:3 binary inputs\", \
     \"vectors\": %d, \"cores_available\": %d, \"wall_s\": { \"1\": %.4f, \
     \"2\": %.4f, \"4\": %.4f }, \"speedup_4_domains\": %.2f },\n"
    fs1.Solvability.vectors cores fs1.Solvability.wall_s
    fs2.Solvability.wall_s fs4.Solvability.wall_s
    (fs1.Solvability.wall_s /. fs4.Solvability.wall_s);
  p "  \"serve\": { \"case\": \"dac:3 solve\", \"modes\": {\n";
  List.iteri
    (fun i (mode, cold, hot, eq) ->
      p
        "    %S: { \"cold_ms\": %.3f, \"hot_ms\": %.4f, \"speedup\": %.1f, \
         \"verdict_equal\": %b }%s\n"
        mode cold hot (cold /. hot) eq
        (if i = List.length serve_modes - 1 then "" else ","))
    serve_modes;
  p
    "  }, \"speedup_min\": %.1f, \"verdicts_equal\": %b, \"queries\": %d, \
     \"hits_mem\": %d, \"hits_store\": %d, \"misses\": %d, \"computed\": %d, \
     \"joined\": %d, \"queue_peak\": %d, \"corrupt\": %d, \
     \"hot_us_mean\": %.1f, \"cold_us_mean\": %.1f },\n"
    serve_speedup_min serve_verdicts_equal serve_stats.Serve_wire.st_queries
    serve_stats.Serve_wire.st_hits_mem serve_stats.Serve_wire.st_hits_store
    serve_stats.Serve_wire.st_misses serve_stats.Serve_wire.st_computed
    serve_stats.Serve_wire.st_joined serve_stats.Serve_wire.st_queue_peak
    serve_stats.Serve_wire.st_corrupt
    (serve_stats.Serve_wire.st_hot_us_total
    /. float (max 1 serve_stats.Serve_wire.st_hot_count))
    (serve_stats.Serve_wire.st_cold_us_total
    /. float (max 1 serve_stats.Serve_wire.st_cold_count));
  p
    "  \"liveness\": { \"case\": \"vc:2\", \"substrate\": \"mp\", \
     \"states\": %d, \"safety_ms\": %.3f, \"liveness_ms\": %.3f, \
     \"sccs\": %d, \"cyclic_sccs\": %d, \"fair_sccs\": %d, \
     \"livelock\": %b, \"lasso_prefix\": %d, \"lasso_cycle\": %d, \
     \"witness_oracle_agrees\": %b, \"bcast_control_live\": %b },\n"
    (Cgraph.n_nodes vc_graph)
    (t_vc_safety *. 1e3) (t_vc_live *. 1e3) vc_report.Liveness.sccs
    vc_report.Liveness.cyclic_sccs vc_report.Liveness.fair_sccs vc_livelock
    lasso_prefix lasso_cycle lasso_valid bcast_live;
  p "  \"out_of_core\": { \"sweep_case\": %S, \"cores_available\": %d,\n"
    ooc_case cores;
  p "    \"shard_sweep\": {\n";
  List.iteri
    (fun i (s, kv) ->
      p
        "      \"%d\": { \"states\": %d, \"states_per_sec\": %.1f, \
         \"wall_s\": %.3f, \"peak_rss_kb\": %d, \"steals\": %d }%s\n"
        s (kv_i kv "states") (kv_f kv "states_per_sec") (kv_f kv "wall_s")
        (kv_i kv "peak_rss_kb") (kv_i kv "steals")
        (if i = List.length ooc_sweep - 1 then "" else ","))
    ooc_sweep;
  p
    "    }, \"spilled\": { \"shards\": 4, \"spill_threshold\": 20000, \
     \"states\": %d, \"states_per_sec\": %.1f, \"spill_segments\": %d, \
     \"spill_bytes\": %d, \"seg_faults\": %d, \"frozen_keys\": %d, \
     \"peak_rss_kb\": %d },\n"
    (kv_i ooc_spilled "states")
    (kv_f ooc_spilled "states_per_sec")
    (kv_i ooc_spilled "spill_segments")
    (kv_i ooc_spilled "spill_bytes")
    (kv_i ooc_spilled "seg_faults")
    (kv_i ooc_spilled "frozen_keys")
    (kv_i ooc_spilled "peak_rss_kb");
  p
    "    \"fingerprints_equal\": %b, \"outcomes_done\": %b, \
     \"spill_engaged\": %b, \"spill_dir_cleaned_on_done\": %b, \
     \"verdict_ok\": %b, \"oracle_agrees\": %b,\n"
    ooc_fingerprints_equal ooc_outcomes_done ooc_spill_engaged
    ooc_spill_cleaned ooc_verdict_ok ooc_oracle_agrees;
  (match ooc_big with
  | Some kv ->
    p
      "    \"big\": { \"case\": \"of:4:2\", \"skipped\": false, \"shards\": \
       64, \"spill_threshold\": 2000000, \"states\": %d, \
       \"states_per_sec\": %.1f, \"wall_s\": %.1f, \"peak_rss_kb\": %d, \
       \"spill_segments\": %d, \"spill_bytes\": %d, \"outcome\": %S, \
       \"min_states_target\": 10000000, \"reached_target\": %b } }\n"
      (kv_i kv "states") (kv_f kv "states_per_sec") (kv_f kv "wall_s")
      (kv_i kv "peak_rss_kb")
      (kv_i kv "spill_segments")
      (kv_i kv "spill_bytes") (kv_s kv "outcome")
      (kv_i kv "states" >= 10_000_000)
  | None ->
    p
      "    \"big\": { \"case\": \"of:4:2\", \"skipped\": true, \"hint\": \
       \"set LBSA_BENCH_BIG=1 to run the >= 1e7-state case\" } }\n");
  p ",\n";
  p
    "  \"robustness\": { \"crash_recovery\": { \"case\": \"dac:3 SIGKILL at \
     checkpoint.save:4\", \"killed\": %b, \"recovered_byte_identical\": %b, \
     \"recovery_ms\": %.1f },\n"
    crash_killed crash_recovered recovery_ms;
  p
    "    \"rio_shim\": { \"write_4k_ns\": %.0f, \"raw_write_4k_ns\": %.0f, \
     \"overhead_pct\": %.1f, \"overhead_class\": %S },\n"
    (t_rio_write *. 1e9) (t_raw_write *. 1e9) rio_overhead_pct
    (if rio_overhead_pct < 5. then "noise" else "regression");
  p
    "    \"fault_sweep\": { \"seed\": 7, \"rate_percent\": 20, \"ops\": 200, \
     \"served\": %d, \"refused\": %d, \"wrong\": %d, \"injected\": { \
     \"eintr\": %d, \"short_read\": %d, \"short_write\": %d, \"enospc\": %d, \
     \"eio\": %d }, \"retries_absorbed\": %d, \"backoffs\": %d } }\n"
    !sweep_survived !sweep_refused !sweep_wrong rio_ctr.Rio.c_eintr
    rio_ctr.Rio.c_short_read rio_ctr.Rio.c_short_write rio_ctr.Rio.c_enospc
    rio_ctr.Rio.c_eio rio_ctr.Rio.c_retries rio_ctr.Rio.c_backoffs;
  p "}\n";
  close_out oc;
  Fmt.pr "wrote BENCH_verify.json@."

let () =
  let mode = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  if mode = "tables" || mode = "all" then all_tables ();
  if mode = "explore" || mode = "all" then run_explore ();
  if mode = "micro" || mode = "all" then run_micro ();
  if mode = "--json" || mode = "json" then run_json ();
  Fmt.pr "@.done.@."
