(* The lbsa command-line interface.

     lbsa run-dac -n 4 --scheduler random --seed 7
     lbsa check dac -n 3
     lbsa check consensus -m 2
     lbsa check kset -m 2 -k 2
     lbsa check candidate --name flp-write-read
     lbsa solve dac -n 3 --deadline 60 --checkpoint dac3.ckpt
     lbsa solve dac -n 3 --resume dac3.ckpt
     lbsa valence --protocol cons:2
     lbsa power -n 2 --max-k 3
     lbsa separation -n 2 --max-k 3
     lbsa lin-check --impl snapshot:3 --trials 200
     lbsa fuzz --impl snapshot:3 --trials 1000 --faults 2 --seed 42
     lbsa objects

   Exit codes, uniformly: 0 = clean pass; 1 = definitive failure
   (unsolvable task, counterexample, violation); 2 = partial outcome
   (state quota, deadline, cancellation, worker failure — rerun bigger,
   longer, or --resume from the checkpoint; also a --resume whose
   parameters mismatch the checkpoint's, which stays resumable under its
   original parameters); 3 = usage error. *)

open Lbsa
open Cmdliner

(* --- shared argument parsing ------------------------------------------ *)

let scheduler_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ "rr" ] -> Ok `Rr
    | [ "random" ] -> Ok `Random
    | [ "solo"; pid ] -> (
      match int_of_string_opt pid with
      | Some pid -> Ok (`Solo pid)
      | None -> Error (`Msg "solo:<pid> expects an integer"))
    | _ -> Error (`Msg "scheduler is rr | random | solo:<pid>")
  in
  let print ppf = function
    | `Rr -> Fmt.string ppf "rr"
    | `Random -> Fmt.string ppf "random"
    | `Solo pid -> Fmt.pf ppf "solo:%d" pid
  in
  Arg.conv (parse, print)

let mk_scheduler ~n ~seed = function
  | `Rr -> Scheduler.round_robin ~n
  | `Random -> Scheduler.random ~seed
  | `Solo pid -> Scheduler.solo pid

let n_arg =
  Arg.(value & opt int 3 & info [ "n" ] ~docv:"N" ~doc:"Instance size n.")

let m_arg =
  Arg.(value & opt int 2 & info [ "m" ] ~docv:"M" ~doc:"Consensus level m.")

let k_arg =
  Arg.(value & opt int 2 & info [ "k" ] ~docv:"K" ~doc:"Set agreement level k.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let max_k_arg =
  Arg.(
    value
    & opt int 3
    & info [ "max-k" ] ~docv:"K" ~doc:"Length of the power prefix.")

let max_states_arg =
  Arg.(
    value
    & opt int Lbsa_modelcheck.Graph.default_max_states
    & info [ "max-states" ] ~docv:"S"
        ~doc:"State bound for exhaustive exploration.")

let stats_arg =
  Arg.(
    value
    & flag
    & info [ "stats" ]
        ~doc:
          "Print exploration statistics (states/sec, frontier profile, dedup \
           rate, domains) after the verdict.")

let check_domains_arg =
  Arg.(
    value
    & opt int 0
    & info [ "domains" ] ~docv:"D"
        ~doc:
          "Parallelism for input-family sweeps: fan the input vectors across \
           D domains, exploring each vector's graph on a single domain.  0 \
           (default) keeps the sequential sweep with an auto-parallel \
           explorer; 1 is fully sequential.  The verdict — including which \
           failing vector is reported — never depends on this.")

(* With a fanned sweep (D > 1) each vector's exploration is pinned to one
   domain to avoid oversubscription; with D unset the explorer keeps its
   auto parallelism. *)
let sweep_plan d =
  if d <= 0 then (1, None) else (d, Some 1)

(* --- out-of-core exploration ------------------------------------------ *)

let shards_arg =
  Arg.(
    value
    & opt int 1
    & info [ "shards" ] ~docv:"P"
        ~doc:
          "Dedup-table shards (a power of two up to 4096), routed by the \
           high bits of the configuration hash so each shard grows \
           independently.  The explored graph — node ids, edges, verdict — \
           is identical for every value.")

let spill_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "spill-dir" ] ~docv:"DIR"
        ~doc:
          "Bound resident memory: once more than --spill-threshold expanded \
           states are resident, the oldest ones move to checksummed segment \
           files under DIR and fault back in on demand.  The explored graph \
           is identical with or without spilling.  Segments are scratch: \
           stale ones are wiped on start and DIR is cleaned when the run \
           completes.")

let spill_threshold_arg =
  Arg.(
    value
    & opt int Lbsa_modelcheck.Graph.default_spill_threshold
    & info [ "spill-threshold" ] ~docv:"S"
        ~doc:
          "Resident expanded states beyond which the oldest spill to \
           --spill-dir (ignored without it).")

let mk_spill dir threshold =
  Option.map
    (fun spill_dir -> { Cgraph.spill_dir; spill_threshold = threshold })
    dir

(* Spilled segments are scratch (Segstore wipes stale ones on start);
   once a run completes cleanly nothing will ever read them again, so
   the CLI removes them — a partial run's are left for inspection and
   are re-spilled from scratch on resume anyway. *)
let clean_spill_on_done spill ~done_ =
  match spill with
  | Some s when done_ -> Lbsa_modelcheck.Segstore.clean_dir ~dir:s.Cgraph.spill_dir
  | _ -> ()

(* --- state-space reduction -------------------------------------------- *)

let reduce_arg =
  Arg.(
    value
    & opt
        (enum [ ("none", `None); ("sym", `Sym); ("sym+sleep", `Sym_sleep) ])
        `None
    & info [ "reduce" ] ~docv:"MODE"
        ~doc:
          "State-space reduction: none (the exact graph), sym \
           (process-symmetry quotient), or sym+sleep (quotient plus \
           commit-step pruning).  Verdicts are identical across modes; \
           state counts, node ids and failure details are not.  See \
           DESIGN.md, 'State-space reduction'.")

let reduce_mode_name = function
  | `None -> "none"
  | `Sym -> "sym"
  | `Sym_sleep -> "sym+sleep"

(* The Graph.reduction for a requested mode.  [canon] is the certified
   symmetry group of the protocol being checked — identity when none is
   certified, in which case the mode still applies the sleep layer and
   keeps its requested name so labels and checkpoints stay consistent. *)
let mk_reduce ?frozen ~canon mode =
  match mode with
  | `None -> Cgraph.no_reduction
  | `Sym -> { Cgraph.rname = "sym"; canon; sleep = false; frozen = None }
  | `Sym_sleep -> { Cgraph.rname = "sym+sleep"; canon; sleep = true; frozen }

(* dac's PAC object (index 0) is permanently inert once upset: its state
   never changes again and every propose gets the same abort response —
   exactly the certification the sleep layer's [frozen] hook wants. *)
let dac_frozen obj st = obj = 0 && Pac.is_upset st

(* --- execution substrate ----------------------------------------------- *)

let substrate_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "substrate" ] ~docv:"SUB"
        ~doc:
          "Execution substrate: shm (crash-fault shared memory), mp \
           (message passing: adversary-controlled delivery with timeouts), \
           or mp+byz:<f> (mp plus up to <f> Byzantine message injections).  \
           Message-passing tasks (vc, bcast) default to mp, all others to \
           shm, and a task cannot run under the other family's substrate.  \
           The substrate changes the explored graph and the fairness \
           constraints, so it is part of every cache key and checkpoint.")

let live_arg =
  Arg.(
    value
    & flag
    & info [ "live" ]
        ~doc:
          "Ask the liveness question instead of solvability: search the \
           configuration graph for a fair cycle — an admissible livelock \
           under the substrate's fairness constraints — and print a shrunk \
           lasso witness (prefix + cycle, as execution traces) when one \
           exists.  Exit 0 = live, 1 = livelock, 2 = partial (truncated \
           graph, so a Live answer is not definitive).")

(* Liveness questions and message-passing tasks are answered locally
   through the serve compute path: one code path for `check --live`, the
   vc/bcast tasks and the daemon, so CLI answers and cached daemon
   answers can never diverge. *)
let local_verify ~err_tag ~budget ~task ~question ~max_states ~rmode
    ~substrate =
  let substrate =
    match substrate with
    | Some s -> s
    | None -> Serve_api.default_substrate task
  in
  let q =
    Serve_api.Verify
      {
        task;
        question;
        inputs = Serve_api.default_inputs task;
        max_states;
        reduce = rmode;
        substrate;
      }
  in
  match Serve_api.compute ~budget q with
  | { Serve_api.res; _ } ->
    Fmt.pr "%s@." (Serve_api.render res);
    (match res with
    | Serve_api.Liveness_report { Serve_api.lv_witness = Some w; _ } ->
      Fmt.pr "%s@." w
    | _ -> ());
    Serve_api.exit_code res
  | exception Invalid_argument msg ->
    Fmt.epr "%s: %s@." err_tag msg;
    3

(* --- supervision plumbing --------------------------------------------- *)

let deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline" ] ~docv:"SEC"
        ~doc:
          "Wall-clock budget in seconds.  On expiry the run stops at its \
           next safe point and reports a partial outcome (exit 2); 0 stops \
           at the first safe point (useful to force a checkpoint).")

let chaos_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "chaos-seed" ] ~docv:"SEED"
        ~doc:
          "Supervisor self-test: deterministically inject artificial worker \
           failures (first attempt of a shard fails per a pure \
           (seed, worker) plan; the supervised retry succeeds).  Verdicts \
           must be identical with or without this flag.")

let arm_chaos = function
  | None -> ()
  | Some seed -> Supervisor.Chaos.arm ~seed ()

let io_chaos_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "io-chaos-seed" ] ~docv:"SEED"
        ~doc:
          "I/O self-test: deterministically inject syscall faults (EINTR, \
           short reads/writes, ENOSPC, EIO) into the persistence and wire \
           layers per a pure (seed, call-site, call-index) plan.  Transient \
           faults are absorbed by the resilient-I/O retry loops; hard \
           faults surface as the same clean refusals a real device error \
           would.  Answers must never change.  Injection counters are \
           reported on stderr at exit.")

let arm_io_chaos = function
  | None -> ()
  | Some seed ->
    Lbsa.Rio.arm ~seed ();
    at_exit (fun () ->
        Fmt.epr "io-chaos: %a@." Lbsa.Rio.pp_counters (Lbsa.Rio.counters ()))

(* Every supervised command: arm chaos if asked, route SIGINT to a
   cancellation token (first ^C = graceful stop + checkpoint, second =
   exit 130), fold the deadline in. *)
let mk_budget ?deadline ~chaos () =
  arm_chaos chaos;
  let token = Supervisor.token () in
  Supervisor.install_sigint token;
  Supervisor.Budget.make ?deadline_s:deadline ~token ()

let checkpoint_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ] ~docv:"FILE"
        ~doc:
          "On a partial outcome (deadline, ^C, state quota) write a \
           resumable checkpoint to FILE.  Nothing is written on a \
           definitive verdict.")

let resume_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "resume" ] ~docv:"FILE"
        ~doc:
          "Resume from a checkpoint written by --checkpoint.  The run \
           parameters must match the ones recorded in the checkpoint; the \
           combined verdict is identical to an uninterrupted run's.")

(* --- run-dac ----------------------------------------------------------- *)

let run_dac n seed sched_kind =
  let machine = Dac_from_pac.machine ~n in
  let specs = Dac_from_pac.specs ~n in
  let prng = Prng.create seed in
  let inputs = Array.init n (fun _ -> Value.int (Prng.int prng 2)) in
  let scheduler = mk_scheduler ~n ~seed sched_kind in
  let r = Executor.run ~machine ~specs ~inputs ~scheduler () in
  Fmt.pr "inputs: %a@." Fmt.(array ~sep:(any " ") Value.pp) inputs;
  Fmt.pr "%a@." Trace.pp r.Executor.trace;
  Array.iteri
    (fun pid st -> Fmt.pr "p%d: %a@." pid Config.pp_status st)
    r.Executor.final.Config.status;
  match Dac.check_safety ~inputs ~trace:r.Executor.trace r.Executor.final with
  | Ok () ->
    Fmt.pr "safety: ok@.";
    0
  | Error viol ->
    Fmt.pr "safety VIOLATION: %a@." Dac.pp_violation viol;
    1

let run_dac_cmd =
  let sched =
    Arg.(
      value
      & opt scheduler_conv `Random
      & info [ "scheduler" ] ~docv:"SCHED" ~doc:"rr | random | solo:<pid>.")
  in
  Cmd.v
    (Cmd.info "run-dac"
       ~doc:"Run Algorithm 2 (n-DAC from one n-PAC) under a schedule.")
    Term.(const run_dac $ n_arg $ seed_arg $ sched)

(* --- check ------------------------------------------------------------- *)

let report ?(stats = false) ?family verdict =
  Fmt.pr "%a@." Solvability.pp_verdict verdict;
  (if stats then begin
     (match verdict.Solvability.stats with
     | Some s -> Fmt.pr "%a@." Cgraph.pp_stats s
     | None -> Fmt.pr "(no exploration statistics recorded)@.");
     match family with
     | Some fs -> Fmt.pr "%a@." Solvability.pp_family_stats fs
     | None -> ()
   end);
  Supervisor.exit_code ~ok:verdict.Solvability.ok verdict.Solvability.outcome

let check_dac n max_states stats d rmode shards ~budget =
  let machine = Dac_from_pac.machine ~n in
  let specs = Dac_from_pac.specs ~n in
  let reduce = mk_reduce ~frozen:dac_frozen ~canon:(Canon.dac ~n) rmode in
  let sweep, inner = sweep_plan d in
  let verdict, family =
    Solvability.for_all_inputs_timed ~domains:sweep ~budget
      (fun inputs ->
        Solvability.check_dac ~max_states ?domains:inner ~budget ~reduce
          ~shards ~machine ~specs ~inputs ())
      (Dac.binary_inputs n)
  in
  report ~stats ~family verdict

let check_consensus m max_states stats d rmode shards ~budget =
  let machine, specs = Consensus_protocols.from_consensus_obj ~m in
  let reduce = mk_reduce ~canon:(Canon.exchangeable ~n:m ()) rmode in
  let sweep, inner = sweep_plan d in
  let verdict, family =
    Solvability.for_all_inputs_timed ~domains:sweep ~budget
      (fun inputs ->
        Solvability.check_consensus ~max_states ?domains:inner ~budget ~reduce
          ~shards ~machine ~specs ~inputs ())
      (Consensus_task.binary_inputs m)
  in
  report ~stats ~family verdict

let check_kset m k max_states stats d rmode shards ~budget =
  let machine, specs = Kset_protocols.partition ~m ~k in
  let reduce = mk_reduce ~canon:(Canon.kset_partition ~m ~k) rmode in
  (* A single input vector: [--domains] drives the explorer itself. *)
  let domains = if d <= 0 then None else Some d in
  report ~stats
    (Solvability.check_kset ~max_states ?domains ~budget ~reduce ~shards
       ~machine ~specs ~k
       ~inputs:(Kset_task.distinct_inputs (m * k))
       ())

let candidates =
  [
    ("flp-write-read", `Consensus (Candidates.flp_write_read, 2));
    ("flp-spin", `Consensus (Candidates.flp_spin, 2));
    ("3dac-sa2-then-cons2", `Dac (Candidates.dac3_sa2_then_cons2, 3));
    ("3dac-cons2-announce", `Dac (Candidates.dac3_cons2_announce, 3));
    ( "3cons-from-22pac",
      `Consensus (Candidates.consensus_m1_from_pac_nm ~n:2 ~m:2, 3) );
    ( "pac-retry",
      `Consensus (Candidates.consensus_from_pac_retry ~n:2 ~procs:2, 2) );
  ]

(* A witness search answers one of three things; only an exhaustive miss
   may be printed as a liveness-only failure — a truncated search saying
   "no witness" was the false negative this message replaces. *)
let report_witness = function
  | Solvability.Witness w -> Fmt.pr "witness:@.%a@." Solvability.pp_witness w
  | Solvability.No_witness ->
    Fmt.pr "(liveness failure: no safety witness configuration)@."
  | Solvability.Search_truncated o ->
    Fmt.pr
      "(witness search stopped early (%a): no safety violation in the \
       explored prefix; raise --max-states for a definitive witness)@."
      Supervisor.pp_outcome o

let check_candidate name max_states d rmode =
  let sweep, inner = sweep_plan d in
  (* No certified symmetry group for free-form candidates: [sym] is the
     identity quotient here, but [sym+sleep] still prunes commit steps. *)
  let reduce = mk_reduce ~canon:Canon.identity rmode in
  match List.assoc_opt name candidates with
  | None ->
    Fmt.epr "unknown candidate %S; known: %s@." name
      (String.concat ", " (List.map fst candidates));
    3
  | Some (`Consensus ((machine, specs), procs)) ->
    Fmt.pr "candidate %s (consensus among %d) — expected to FAIL:@." name procs;
    let v =
      Solvability.for_all_inputs ~domains:sweep
        (fun inputs ->
          Solvability.check_consensus ~max_states ?domains:inner ~reduce
            ~machine ~specs ~inputs ())
        (Consensus_task.binary_inputs procs)
    in
    Fmt.pr "%a@." Solvability.pp_verdict v;
    (if not v.Solvability.ok then
       report_witness
         (Solvability.consensus_witness ~max_states ~machine ~specs
            ~inputs:v.Solvability.inputs ()));
    if v.Solvability.ok then 1 else 0
  | Some (`Dac ((machine, specs), procs)) ->
    Fmt.pr "candidate %s (%d-DAC) — expected to FAIL:@." name procs;
    let v =
      Solvability.for_all_inputs ~domains:sweep
        (fun inputs ->
          Solvability.check_dac ~max_states ?domains:inner ~reduce ~machine
            ~specs ~inputs ())
        (Dac.binary_inputs procs)
    in
    Fmt.pr "%a@." Solvability.pp_verdict v;
    (if not v.Solvability.ok then
       report_witness
         (Solvability.dac_witness ~max_states ~machine ~specs
            ~inputs:v.Solvability.inputs ()));
    if v.Solvability.ok then 1 else 0

let check_cmd =
  let task =
    Arg.(
      required
      & pos 0 (some (enum
                       [ ("dac", `Dac); ("consensus", `Consensus);
                         ("kset", `Kset); ("candidate", `Candidate);
                         ("vc", `Vc); ("bcast", `Bcast) ])) None
      & info [] ~docv:"TASK"
          ~doc:
            "dac | consensus | kset | candidate | vc | bcast.  vc and \
             bcast are message-passing protocols (substrate mp): vc is a \
             view change with a split-vote livelock, bcast its live \
             control.")
  in
  let cand_name =
    Arg.(
      value
      & opt string "flp-write-read"
      & info [ "name" ] ~docv:"NAME" ~doc:"Candidate name (for candidate).")
  in
  let run task n m k name max_states stats domains rmode shards deadline chaos
      substrate live =
    let budget = mk_budget ?deadline ~chaos () in
    let api_task =
      match task with
      | `Dac -> Serve_api.Dac { n }
      | `Consensus -> Serve_api.Consensus { m }
      | `Kset -> Serve_api.Kset { m; k }
      | `Candidate -> Serve_api.Candidate { name }
      | `Vc -> Serve_api.Vc { n }
      | `Bcast -> Serve_api.Bcast { n }
    in
    let mp = match task with `Vc | `Bcast -> true | _ -> false in
    if live || mp then
      (* mp tasks without --live get the solvability question on the mp
         substrate (agreement/validity/wait-freedom); --live asks for a
         fair cycle instead, on any task. *)
      local_verify ~err_tag:"lbsa check" ~budget ~task:api_task
        ~question:(if live then Serve_api.Live else Serve_api.Solve)
        ~max_states ~rmode ~substrate
    else
      match substrate with
      | Some s when s <> "shm" ->
        Fmt.epr
          "lbsa check: task %s is shared-memory; --substrate %s needs a \
           message-passing task (vc, bcast)@."
          (Serve_api.task_label api_task) s;
        3
      | _ -> (
        match task with
        | `Dac -> check_dac n max_states stats domains rmode shards ~budget
        | `Consensus ->
          check_consensus m max_states stats domains rmode shards ~budget
        | `Kset -> check_kset m k max_states stats domains rmode shards ~budget
        | `Candidate -> check_candidate name max_states domains rmode
        | `Vc | `Bcast -> assert false)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Exhaustively model-check a task (all schedules, all object \
          nondeterminism); with --live, check liveness (fair-cycle \
          search) instead.")
    Term.(
      const run $ task $ n_arg $ m_arg $ k_arg $ cand_name $ max_states_arg
      $ stats_arg $ check_domains_arg $ reduce_arg $ shards_arg $ deadline_arg
      $ chaos_arg $ substrate_arg $ live_arg)

(* --- solve -------------------------------------------------------------- *)

(* Single-vector solvability check with the full supervision surface:
   --deadline and ^C stop exploration at a level boundary, --checkpoint
   persists the frozen frontier, --resume thaws and continues it.
   stdout carries only the verdict (checkpoint notes go to stderr), so
   an interrupted-then-resumed run prints byte-for-byte what the
   uninterrupted run prints. *)
let solve task n m k max_states stats rmode d shards spill_dir spill_threshold
    deadline chaos io_chaos ckpt_file resume_file inputs_csv =
  arm_io_chaos io_chaos;
  let budget = mk_budget ?deadline ~chaos () in
  let domains = if d <= 0 then None else Some d in
  let spill = mk_spill spill_dir spill_threshold in
  let custom =
    match inputs_csv with
    | None -> Ok None
    | Some s -> (
      match
        List.map
          (fun x -> Value.int (int_of_string (String.trim x)))
          (String.split_on_char ',' s)
      with
      | vs -> Ok (Some (Array.of_list vs))
      | exception Failure _ ->
        Error (Fmt.str "--inputs %S is not a comma-separated integer list" s))
  in
  match custom with
  | Error msg ->
    Fmt.epr "%s@." msg;
    3
  | Ok custom ->
    let name, inputs, check =
      match task with
      | `Consensus ->
        let machine, specs = Consensus_protocols.from_consensus_obj ~m in
        let reduce = mk_reduce ~canon:(Canon.exchangeable ~n:m ()) rmode in
        let inputs =
          match custom with
          | Some v -> v
          | None -> Array.init m (fun pid -> Value.int (pid mod 2))
        in
        ( Fmt.str "consensus m=%d" m,
          inputs,
          fun resume ->
            Solvability.check_consensus ~max_states ?domains ~budget ~reduce
              ?resume ~shards ?spill ~machine ~specs ~inputs () )
      | `Kset ->
        let machine, specs = Kset_protocols.partition ~m ~k in
        let reduce = mk_reduce ~canon:(Canon.kset_partition ~m ~k) rmode in
        let inputs =
          match custom with
          | Some v -> v
          | None -> Kset_task.distinct_inputs (m * k)
        in
        ( Fmt.str "kset m=%d k=%d" m k,
          inputs,
          fun resume ->
            Solvability.check_kset ~max_states ?domains ~budget ~reduce
              ?resume ~shards ?spill ~machine ~specs ~k ~inputs () )
      | `Dac ->
        let machine = Dac_from_pac.machine ~n in
        let specs = Dac_from_pac.specs ~n in
        let reduce =
          mk_reduce ~frozen:dac_frozen ~canon:(Canon.dac ~n) rmode
        in
        let inputs =
          match custom with
          | Some v -> v
          | None ->
            Array.init n (fun pid -> Value.int (if pid = 0 then 1 else 0))
        in
        ( Fmt.str "dac n=%d" n,
          inputs,
          fun resume ->
            Solvability.check_dac ~max_states ?domains ~budget ~reduce
              ?resume ~shards ?spill ~machine ~specs ~inputs () )
    in
    (* The label pins exactly what defines the graph — task, sizes,
       inputs, reduction mode.  Budget-side knobs (max_states, deadline,
       domains) stay out: a frozen prefix is valid under any of them, and
       resuming a quota-hit run with a larger quota is the point.  A
       mismatch is a graph-shape divergence, not a usage typo, so it
       rejects with the partial-outcome exit code 2: the checkpointed
       work is intact and resumable under the original parameters. *)
    let label =
      Fmt.str "solve %s inputs=%a reduce=%s" name
        Fmt.(array ~sep:(any ",") Value.pp)
        inputs (reduce_mode_name rmode)
    in
    (match Option.map (fun file -> Checkpoint.load ~file) resume_file with
    | exception Checkpoint.Version_mismatch msg ->
      (* Old-version checkpoints exit like a parameter mismatch (2): the
         file is coherent, this build just refuses to read it. *)
      Fmt.epr "cannot resume: %s@." msg;
      2
    | exception Checkpoint.Corrupt msg ->
      (* The file is a current-version checkpoint with a damaged body (a
         torn write this format is designed to make impossible, bit rot,
         or an injected fault).  Refuse like a partial outcome: the
         exploration is resumable only by re-running it. *)
      Fmt.epr "cannot resume: corrupt checkpoint: %s@." msg;
      2
    | exception Failure msg ->
      Fmt.epr "cannot resume: %s@." msg;
      3
    | Some c when Checkpoint.substrate c <> "shm" ->
      (* solve runs shared-memory tasks only; a checkpoint frozen under
         another substrate is a different graph.  Refused like any other
         graph-shape divergence: exit 2, the file stays resumable under
         its original parameters. *)
      Fmt.epr
        "cannot resume: checkpoint was explored under substrate %S, this \
         command explores under \"shm\"@."
        (Checkpoint.substrate c);
      2
    | Some c when Checkpoint.label c <> label ->
      Fmt.epr
        "cannot resume: checkpoint is for %S, this invocation is %S; rerun \
         with the original parameters (or drop --resume)@."
        (Checkpoint.label c) label;
      2
    | resume ->
      let v = check (Option.map Checkpoint.thaw resume) in
      (match (ckpt_file, v.Solvability.suspended) with
      | Some file, Some s when Supervisor.is_partial v.Solvability.outcome ->
        Checkpoint.save ~file (Checkpoint.freeze ~label s);
        Fmt.epr "checkpoint written to %s (resume with --resume %s)@." file
          file
      | _ -> ());
      clean_spill_on_done spill
        ~done_:(v.Solvability.outcome = Supervisor.Done);
      report ~stats v)

let solve_cmd =
  let task =
    Arg.(
      required
      & pos 0
          (some
             (enum
                [ ("dac", `Dac); ("consensus", `Consensus); ("kset", `Kset) ]))
          None
      & info [] ~docv:"TASK" ~doc:"dac | consensus | kset.")
  in
  let domains =
    Arg.(
      value
      & opt int 0
      & info [ "domains" ] ~docv:"D"
          ~doc:
            "Explorer worker domains (0 = auto).  The verdict never depends \
             on this.")
  in
  let inputs =
    Arg.(
      value
      & opt (some string) None
      & info [ "inputs" ] ~docv:"CSV"
          ~doc:
            "Comma-separated integer input vector (default: a canonical \
             vector per task).")
  in
  Cmd.v
    (Cmd.info "solve"
       ~doc:
         "Model-check a single input vector under a supervision budget: \
          --deadline and ^C stop at a safe point with a partial verdict \
          (exit 2), --checkpoint persists the frozen exploration, --resume \
          continues it to the same verdict an uninterrupted run prints.")
    Term.(
      const solve $ task $ n_arg $ m_arg $ k_arg $ max_states_arg $ stats_arg
      $ reduce_arg $ domains $ shards_arg $ spill_dir_arg
      $ spill_threshold_arg $ deadline_arg $ chaos_arg $ io_chaos_arg
      $ checkpoint_arg $ resume_arg $ inputs)

(* --- valence ------------------------------------------------------------ *)

let protocols_by_name ~n ~m =
  [
    ("cons", Consensus_protocols.from_consensus_obj ~m);
    ("flp-write-read", Candidates.flp_write_read);
    ("flp-spin", Candidates.flp_spin);
    ("pac-retry", Candidates.consensus_from_pac_retry ~n ~procs:2);
    ( "dac",
      (Dac_from_pac.machine ~n, Dac_from_pac.specs ~n) );
  ]

let valence name n m max_states stats rmode shards spill_dir spill_threshold =
  let spill = mk_spill spill_dir spill_threshold in
  match List.assoc_opt name (protocols_by_name ~n ~m) with
  | None ->
    Fmt.epr "unknown protocol %S; known: %s@." name
      (String.concat ", " (List.map fst (protocols_by_name ~n ~m)));
    3
  | Some (machine, specs) ->
    let procs =
      match name with
      | "cons" -> m
      | "dac" -> n
      | _ -> 2
    in
    let inputs =
      if name = "dac" then
        Array.init procs (fun pid -> Value.int (if pid = 0 then 1 else 0))
      else Array.init procs (fun pid -> Value.int (pid mod 2))
    in
    let reduce =
      match name with
      | "dac" -> mk_reduce ~frozen:dac_frozen ~canon:(Canon.dac ~n) rmode
      | "cons" -> mk_reduce ~canon:(Canon.exchangeable ~n:m ()) rmode
      | _ -> mk_reduce ~canon:Canon.identity rmode
    in
    let graph =
      Cgraph.build ~max_states ~reduce ~shards ?spill ~machine ~specs ~inputs
        ()
    in
    if stats then Fmt.pr "%a@." Cgraph.pp_stats (Cgraph.stats graph);
    let a = Valence.analyze graph in
    let s = Valence.summarize a in
    Fmt.pr "protocol %s, inputs %a: %d configurations (%d edges)%s@." name
      Fmt.(array ~sep:(any " ") Value.pp)
      inputs (Cgraph.n_nodes graph) (Cgraph.n_edges graph)
      (if graph.Cgraph.truncated then " [TRUNCATED]" else "");
    Fmt.pr "valence: %d bivalent, %d univalent, %d undecided@."
      s.Valence.n_bivalent s.Valence.n_univalent s.Valence.n_undecided;
    Fmt.pr "initial: %a@." Valence.pp_classification
      (Valence.classify a graph.Cgraph.initial);
    let criticals = Bivalency.report_critical ~machine ~specs graph a in
    Fmt.pr "critical configurations: %d@." (List.length criticals);
    List.iteri
      (fun i (r : Bivalency.critical_report) ->
        if i < 3 then
          Fmt.pr "  node %d: common poised object = %s@." r.Bivalency.node
            (Option.value r.Bivalency.object_name ~default:"(none)"))
      criticals;
    (match Bivalency.bivalence_maintainable a graph with
    | Ok () when s.Valence.n_bivalent > 0 ->
      Fmt.pr "bivalence maintainable: adversary avoids decisions forever@."
    | Ok () -> Fmt.pr "no bivalent configurations@."
    | Error id -> Fmt.pr "bivalent dead-end at node %d@." id);
    clean_spill_on_done spill ~done_:(not graph.Cgraph.truncated);
    0

let valence_cmd =
  let proto_name =
    Arg.(
      value
      & opt string "cons"
      & info [ "protocol" ] ~docv:"NAME"
          ~doc:"cons | flp-write-read | flp-spin | pac-retry | dac.")
  in
  Cmd.v
    (Cmd.info "valence"
       ~doc:"Compute the valence structure of a protocol's configuration graph.")
    Term.(
      const valence $ proto_name $ n_arg $ m_arg $ max_states_arg $ stats_arg
      $ reduce_arg $ shards_arg $ spill_dir_arg $ spill_threshold_arg)

(* --- explore ------------------------------------------------------------ *)

(* Machine-readable single-graph exploration, built for the out-of-core
   benchmarks: each case runs in its own process so the reported peak
   RSS (VmHWM from /proc/self/status) is honestly per-run — the parent
   bench never inherits a child's high-water mark — and the key=value
   stdout is trivially parseable.  [--fingerprint] appends the
   structural graph fingerprint used by the spilled-vs-resident
   equivalence checks; it reads every configuration (faulting each
   segment once, in order), so the big memory-bound cases skip it. *)

let explore_task_conv =
  let parse s =
    let int_ge lo v k =
      match int_of_string_opt v with
      | Some v when v >= lo -> Ok (k v)
      | _ -> Error (`Msg (Fmt.str "%S: expected an integer >= %d" s lo))
    in
    match String.split_on_char ':' s with
    | [ "dac"; n ] -> int_ge 2 n (fun n -> `Dac n)
    | [ "cons"; m ] -> int_ge 1 m (fun m -> `Cons m)
    | [ "kset"; m; k ] ->
      Result.bind (int_ge 1 m Fun.id) (fun m ->
          int_ge 1 k (fun k -> `Kset (m, k)))
    | [ "of"; n; r ] ->
      Result.bind (int_ge 2 n Fun.id) (fun n ->
          int_ge 1 r (fun r -> `Of (n, r)))
    | _ ->
      Error
        (`Msg
           "task is dac:<n> | cons:<m> | kset:<m>:<k> | of:<n>:<rounds> \
            (obstruction-free consensus, <rounds> commit-adopt rounds)")
  in
  let print ppf = function
    | `Dac n -> Fmt.pf ppf "dac:%d" n
    | `Cons m -> Fmt.pf ppf "cons:%d" m
    | `Kset (m, k) -> Fmt.pf ppf "kset:%d:%d" m k
    | `Of (n, r) -> Fmt.pf ppf "of:%d:%d" n r
  in
  Arg.conv (parse, print)

let peak_rss_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go () =
          match input_line ic with
          | exception End_of_file -> 0
          | line ->
            if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
              try
                Scanf.sscanf
                  (String.sub line 6 (String.length line - 6))
                  " %d" Fun.id
              with Scanf.Scan_failure _ | Failure _ -> 0
            else go ()
        in
        go ())

(* The same structural fold as `lbsa fingerprint`, over any graph:
   per-node [Config.hash] in id order, then each node's (pid, target)
   out-steps.  Intern ids never enter, so the value is identical across
   processes, shard counts, domain counts and spill settings. *)
let graph_fingerprint graph =
  let h = ref 0x811c9dc5 in
  let comb k = h := Value.hash_combine !h k land max_int in
  for id = 0 to Cgraph.n_nodes graph - 1 do
    comb (Config.hash (Cgraph.node graph id));
    Cgraph.iter_out_steps graph id (fun pid target ->
        comb pid;
        comb target)
  done;
  !h land 0xffffffff

let explore task max_states rmode d shards spill_dir spill_threshold deadline
    chaos want_fp want_stats =
  let budget = mk_budget ?deadline ~chaos () in
  let domains = if d <= 0 then None else Some d in
  let spill = mk_spill spill_dir spill_threshold in
  let label = Fmt.str "%a" (Arg.conv_printer explore_task_conv) task in
  let machine, specs, inputs, canon, frozen =
    match task with
    | `Dac n ->
      ( Dac_from_pac.machine ~n,
        Dac_from_pac.specs ~n,
        Array.init n (fun pid -> Value.int (if pid = 0 then 1 else 0)),
        Canon.dac ~n,
        Some dac_frozen )
    | `Cons m ->
      let machine, specs = Consensus_protocols.from_consensus_obj ~m in
      ( machine,
        specs,
        Array.init m (fun pid -> Value.int (pid mod 2)),
        Canon.exchangeable ~n:m (),
        None )
    | `Kset (m, k) ->
      let machine, specs = Kset_protocols.partition ~m ~k in
      ( machine,
        specs,
        Kset_task.distinct_inputs (m * k),
        Canon.kset_partition ~m ~k,
        None )
    | `Of (n, r) ->
      (* No certified symmetry group: [sym] degrades to the identity
         quotient, like free-form candidates.  [`Spin] makes spun-out
         states absorbing livelock leaves, so the bounded graph is
         finite and the exploration can actually complete. *)
      ( Obstruction_free.machine_spin ~n ~max_rounds:r,
        Obstruction_free.specs ~n ~max_rounds:r,
        Array.init n (fun pid -> Value.int (pid mod 2)),
        Canon.identity,
        None )
  in
  let reduce = mk_reduce ?frozen ~canon rmode in
  let graph =
    Cgraph.build ~max_states ?domains ~budget ~reduce ~shards ?spill ~machine
      ~specs ~inputs ()
  in
  let s = Cgraph.stats graph in
  let outcome =
    match graph.Cgraph.stop with
    | Supervisor.Done -> "done"
    | Supervisor.Truncated -> "truncated"
    | Supervisor.Deadline -> "deadline"
    | Supervisor.Cancelled -> "cancelled"
    | Supervisor.Worker_failed _ -> "worker_failed"
  in
  let fp = if want_fp then Some (graph_fingerprint graph) else None in
  if want_stats then Fmt.epr "%a@." Cgraph.pp_stats s;
  Fmt.pr "task=%s@." label;
  Fmt.pr "reduce=%s@." (reduce_mode_name rmode);
  Fmt.pr "states=%d@." s.Cgraph.states;
  Fmt.pr "edges=%d@." s.Cgraph.edges;
  Fmt.pr "levels=%d@." s.Cgraph.levels;
  Fmt.pr "truncated=%b@." graph.Cgraph.truncated;
  Fmt.pr "outcome=%s@." outcome;
  Fmt.pr "wall_s=%.6f@." s.Cgraph.wall_s;
  Fmt.pr "states_per_sec=%.1f@." s.Cgraph.states_per_sec;
  Fmt.pr "domains=%d@." s.Cgraph.domains;
  Fmt.pr "shards=%d@." s.Cgraph.shards;
  Fmt.pr "steals=%d@." s.Cgraph.steals;
  Fmt.pr "dedup_rate=%.4f@." s.Cgraph.dedup_rate;
  Fmt.pr "spill_segments=%d@." s.Cgraph.spill.Cgraph.sp_segments;
  Fmt.pr "spill_bytes=%d@." s.Cgraph.spill.Cgraph.sp_bytes;
  Fmt.pr "seg_faults=%d@." s.Cgraph.spill.Cgraph.sp_seg_faults;
  Fmt.pr "frozen_keys=%d@." s.Cgraph.spill.Cgraph.sp_frozen;
  Fmt.pr "key_faults=%d@." s.Cgraph.spill.Cgraph.sp_key_faults;
  Fmt.pr "peak_rss_kb=%d@." (peak_rss_kb ());
  (match fp with
  | Some fp -> Fmt.pr "fingerprint=%08x@." fp
  | None -> ());
  clean_spill_on_done spill ~done_:(graph.Cgraph.stop = Supervisor.Done);
  Supervisor.exit_code ~ok:true graph.Cgraph.stop

let explore_cmd =
  let task =
    Arg.(
      required
      & pos 0 (some explore_task_conv) None
      & info [] ~docv:"TASK"
          ~doc:"dac:<n> | cons:<m> | kset:<m>:<k> | of:<n>:<rounds>.")
  in
  let fp =
    Arg.(
      value
      & flag
      & info [ "fingerprint" ]
          ~doc:
            "Append the structural graph fingerprint (reads every \
             configuration; skip it for memory-bound runs).")
  in
  let domains =
    Arg.(
      value
      & opt int 0
      & info [ "domains" ] ~docv:"D"
          ~doc:
            "Explorer worker domains (0 = auto).  The graph never depends \
             on this.")
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Build one configuration graph and print machine-readable \
          key=value telemetry (states, throughput, shard/steal/spill \
          counters, per-process peak RSS).  The benchmark harness runs \
          each case through this command in a fresh process so peak-RSS \
          numbers are honest.  Exit 0 on a complete graph, 2 on a \
          partial one.")
    Term.(
      const explore $ task $ max_states_arg $ reduce_arg $ domains
      $ shards_arg $ spill_dir_arg $ spill_threshold_arg $ deadline_arg
      $ chaos_arg $ fp $ stats_arg)

(* --- power / separation ------------------------------------------------- *)

let power n max_k max_states =
  Fmt.pr "closed forms / lower bounds:@.";
  Fmt.pr "  %d-consensus: (%a)@." n
    Fmt.(list ~sep:(any ", ") Power.pp_bound)
    (Power.consensus_power ~m:n ~max_k);
  Fmt.pr "  2-SA:        (%a)@."
    Fmt.(list ~sep:(any ", ") Power.pp_bound)
    (Power.sa2_power ~max_k);
  Fmt.pr "  O_%d (>=):    (%a)@." n
    Fmt.(list ~sep:(any ", ") Power.pp_bound)
    (Power.o_n_power_lower ~n ~max_k);
  Fmt.pr "probes (exhaustive lower-bound checks):@.";
  let p = Power.probe_o_n_consensus ~n ~max_states () in
  Fmt.pr "  O_%d consensus: %a@." n Power.pp_probe p;
  let power = O_prime.default_power ~n ~max_k in
  List.iter
    (fun k ->
      let p = Power.probe_oprime_family ~power ~k ~max_states () in
      Fmt.pr "  O'_%d level %d: %a@." n k Power.pp_probe p)
    (Listx.range 1 (min max_k 2));
  0

let power_cmd =
  Cmd.v
    (Cmd.info "power" ~doc:"Set agreement power: closed forms and probes.")
    Term.(const power $ n_arg $ max_k_arg $ max_states_arg)

let separation n max_k max_states =
  let report = Separation.analyze ~max_k ~max_states ~n () in
  Fmt.pr "%a@." Separation.pp_report report;
  if Separation.all_ok report then 0 else 1

let separation_cmd =
  Cmd.v
    (Cmd.info "separation"
       ~doc:"Assemble the Corollary 6.6 artifacts for a given n.")
    Term.(const separation $ n_arg $ max_k_arg $ max_states_arg)

(* --- lin-check ----------------------------------------------------------- *)

let impls ~n ~m ~max_k =
  [
    ("snapshot", fun () -> Snapshot_impl.implementation ~n);
    ("naive-snapshot", fun () -> Snapshot_impl.naive ~n);
    ("pacnm", fun () -> Pac_nm_impl.implementation ~n ~m);
    ( "oprime",
      fun () ->
        Oprime_impl.implementation ~power:(O_prime.default_power ~n ~max_k) );
  ]

let default_workloads name ~n ~max_k =
  match name with
  | "snapshot" | "naive-snapshot" ->
    Array.init n (fun pid ->
        [ Classic.Snapshot.update pid (Value.int (pid + 1));
          Classic.Snapshot.scan ])
  | "pacnm" ->
    Array.init n (fun pid ->
        [ Pac_nm.propose_p (Value.int pid) (pid + 1); Pac_nm.decide_p (pid + 1);
          Pac_nm.propose_c (Value.int pid) ])
  | "oprime" ->
    Array.init n (fun pid ->
        List.map
          (fun k -> O_prime.propose (Value.int (pid + (10 * k))) k)
          (Listx.range 1 max_k))
  | _ -> [||]

let lin_check name n m max_k trials seed deadline =
  match List.assoc_opt name (impls ~n ~m ~max_k) with
  | None ->
    Fmt.epr "unknown implementation %S; known: %s@." name
      (String.concat ", " (List.map fst (impls ~n ~m ~max_k)));
    3
  | Some mk ->
    let budget = mk_budget ?deadline ~chaos:None () in
    let impl = mk () in
    let workloads = default_workloads name ~n ~max_k in
    Fmt.pr "implementation %s over %d clients, %d random trials...@."
      impl.Implementation.name (Array.length workloads) trials;
    (match Harness.campaign_supervised ~budget ~seed ~trials ~impl ~workloads () with
    | Harness.All_pass t ->
      Fmt.pr "all %d trials linearizable@." t;
      0
    | Harness.Failed (i, run) ->
      Fmt.pr "trial %d NOT linearizable; history:@.%a@." i Chistory.pp
        run.Harness.history;
      1
    | Harness.Stopped { completed; outcome } ->
      Fmt.pr "stopped (%a) after %d/%d trials, all linearizable@."
        Supervisor.pp_outcome outcome completed trials;
      2)

let lin_check_cmd =
  let impl_name =
    Arg.(
      value
      & opt string "snapshot"
      & info [ "impl" ] ~docv:"NAME"
          ~doc:"snapshot | naive-snapshot | pacnm | oprime.")
  in
  let trials =
    Arg.(
      value & opt int 200 & info [ "trials" ] ~docv:"T" ~doc:"Random trials.")
  in
  Cmd.v
    (Cmd.info "lin-check"
       ~doc:
         "Drive an implementation with concurrent clients and check \
          linearizability.")
    Term.(
      const lin_check $ impl_name $ n_arg $ m_arg $ max_k_arg $ trials
      $ seed_arg $ deadline_arg)

(* --- fuzz ----------------------------------------------------------------- *)

let fuzz impl_names spec_names trials procs ops faults seed no_shrink domains
    deadline chaos shrink_budget ckpt_file resume_file =
  let budget = mk_budget ?deadline ~chaos () in
  let shrink = not no_shrink in
  let domains = if domains <= 0 then None else Some domains in
  let parse_targets ~what ~parse names =
    List.filter_map
      (fun name ->
        match parse name with
        | t -> Some t
        | exception Invalid_argument msg ->
          Fmt.epr "unknown %s target %S: %s@." what name msg;
          None)
      names
  in
  let impls = parse_targets ~what:"impl" ~parse:Fuzz_targets.impl_target impl_names in
  let specs = parse_targets ~what:"spec" ~parse:Fuzz_targets.spec_target spec_names in
  if (impls = [] && impl_names <> []) || (specs = [] && spec_names <> []) then 3
  else begin
    match
      Option.map (fun file -> Fuzz_engine.load_checkpoint ~file) resume_file
    with
    | exception Failure msg ->
      Fmt.epr "cannot resume: %s@." msg;
      3
    | Some c when c.Fuzz_engine.ckpt_seed <> seed ->
      Fmt.epr "cannot resume: checkpoint records --seed %d, this run uses %d@."
        c.Fuzz_engine.ckpt_seed seed;
      3
    | resume ->
      let start_of ~cap name =
        match resume with
        | None -> 0
        | Some c -> min cap (Fuzz_engine.resume_start c ~name)
      in
      (* Default campaign: every registry spec at full budget, every honest
         construction at a fifth of it (harness trials are ~5x dearer). *)
      let specs, impls, impl_trials =
        if impls = [] && specs = [] then
          (Fuzz_targets.all_specs (), Fuzz_targets.all_impls (),
           max 1 (trials / 5))
        else (specs, impls, trials)
      in
      let reports =
        List.map
          (fun t ->
            Fuzz_engine.fuzz_spec ?domains ~shrink ~shrink_budget ~budget
              ~start:(start_of ~cap:trials ("spec " ^ t.Fuzz_targets.desc))
              ~procs ~ops_per_proc:ops ~trials ~seed t)
          specs
        @ List.map
            (fun t ->
              Fuzz_engine.fuzz_impl ?domains ~shrink ~shrink_budget ~budget
                ~start:
                  (start_of ~cap:impl_trials ("impl " ^ t.Fuzz_targets.idesc))
                ~faults ~ops_per_proc:ops ~trials:impl_trials ~seed t)
            impls
      in
      List.iter (fun r -> Fmt.pr "%a@." Fuzz_engine.pp_report r) reports;
      let failed =
        Lbsa_util.Listx.count
          (fun r -> r.Fuzz_engine.failure <> None)
          reports
      in
      let partial =
        List.exists
          (fun r -> Supervisor.is_partial r.Fuzz_engine.outcome)
          reports
      in
      (match ckpt_file with
      | Some file when partial ->
        Fuzz_engine.save_checkpoint ~file
          (Fuzz_engine.checkpoint_of_reports ~seed reports);
        Fmt.epr "checkpoint written to %s (resume with --resume %s)@." file
          file
      | _ -> ());
      if failed > 0 then begin
        Fmt.pr "fuzz: %d/%d campaigns FAILED@." failed (List.length reports);
        1
      end
      else if partial then begin
        Fmt.pr "fuzz: %d campaigns stopped early, no failures@."
          (List.length reports);
        2
      end
      else begin
        Fmt.pr "fuzz: %d campaigns clean@." (List.length reports);
        0
      end
  end

let fuzz_cmd =
  let impl_names =
    Arg.(
      value
      & opt_all string []
      & info [ "impl" ] ~docv:"NAME"
          ~doc:
            "Implementation target (repeatable): snapshot:<n>, \
             naive-snapshot:<n>, pacnm:<n>:<m>, oprime:<n>:<K>, \
             universal:<n>, pac-facet:<n>:<m>, cons-facet:<n>:<m>, \
             mutant-pac:<n>, identity:<object>.  Without --impl/--spec, \
             fuzzes every registry spec and every honest construction.")
  in
  let spec_names =
    Arg.(
      value
      & opt_all string []
      & info [ "spec" ] ~docv:"NAME"
          ~doc:"Spec target in registry syntax (repeatable), e.g. pac:2.")
  in
  let trials =
    Arg.(
      value & opt int 1000
      & info [ "trials" ] ~docv:"T" ~doc:"Trials per campaign.")
  in
  let procs =
    Arg.(
      value & opt int 3
      & info [ "procs" ] ~docv:"P"
          ~doc:
            "Client count for spec-level fuzzing (implementations fix their \
             own).")
  in
  let ops =
    Arg.(
      value & opt int 4
      & info [ "ops" ] ~docv:"K" ~doc:"Max operations per process.")
  in
  let faults =
    Arg.(
      value & opt int 0
      & info [ "faults" ] ~docv:"F"
          ~doc:"Max crash victims per implementation trial.")
  in
  let no_shrink =
    Arg.(value & flag & info [ "no-shrink" ] ~doc:"Skip counterexample shrinking.")
  in
  let domains =
    Arg.(
      value & opt int 0
      & info [ "domains" ] ~docv:"D"
          ~doc:"Worker domains (0 = auto).  Results never depend on this.")
  in
  let shrink_budget =
    Arg.(
      value
      & opt int Fuzz_engine.default_shrink_budget
      & info [ "shrink-budget" ] ~docv:"B"
          ~doc:
            "Candidate evaluations allowed per shrink descent (0 keeps the \
             unshrunk counterexample).  Shrinking also stops when \
             --deadline fires.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Conformance-fuzz objects and implementations: random workloads, \
          schedules, and crash faults under the linearizability oracle, with \
          seed-reproducible shrunk counterexamples.")
    Term.(
      const fuzz $ impl_names $ spec_names $ trials $ procs $ ops $ faults
      $ seed_arg $ no_shrink $ domains $ deadline_arg $ chaos_arg
      $ shrink_budget $ checkpoint_arg $ resume_arg)

(* --- universal / bg / qadri ------------------------------------------------ *)

let universal n trials seed =
  let target = Classic.Queue_obj.spec () in
  let impl = Universal.implementation ~n ~target () in
  let workloads =
    Array.init n (fun pid ->
        [ Classic.Queue_obj.enqueue (Value.int (100 + pid));
          Classic.Queue_obj.dequeue ])
  in
  Fmt.pr
    "universal construction: FIFO queue among %d clients from %d-consensus + \
     registers; %d random schedules...@."
    n n trials;
  match Harness.campaign ~seed ~trials ~impl ~workloads () with
  | Ok t ->
    Fmt.pr "all %d runs linearizable@." t;
    0
  | Error (i, run) ->
    Fmt.pr "trial %d NOT linearizable:@.%a@." i Chistory.pp run.Harness.history;
    1

let universal_cmd =
  let trials =
    Arg.(value & opt int 200 & info [ "trials" ] ~docv:"T" ~doc:"Random trials.")
  in
  Cmd.v
    (Cmd.info "universal"
       ~doc:"Run Herlihy's universal construction (queue target) and check \
             linearizability.")
    Term.(const universal $ n_arg $ trials $ seed_arg)

let bg simulators trials seed =
  let p = Sim_protocol.min_seen ~n_sim:3 ~steps:1 in
  let sim_inputs = [| Value.int 10; Value.int 11; Value.int 12 |] in
  let outcomes = Sim_protocol.direct_outcomes p ~inputs:sim_inputs in
  Fmt.pr
    "BG simulation: %d simulators run a 3-process protocol; %d direct \
     outcomes possible; %d random schedules...@."
    simulators (List.length outcomes) trials;
  let prng = Prng.create seed in
  let bad = ref 0 in
  for _ = 1 to trials do
    let r =
      Bg_simulation.run ~p ~sim_inputs ~simulators
        ~scheduler:(Scheduler.random ~seed:(Prng.int prng 1_000_000_000)) ()
    in
    match r.Bg_simulation.simulated_decisions with
    | Some ds when List.exists (Value.equal (Value.list ds)) outcomes -> ()
    | _ -> incr bad
  done;
  Fmt.pr "%d/%d runs produced genuine simulated outcomes@." (trials - !bad)
    trials;
  if !bad = 0 then 0 else 1

let bg_cmd =
  let simulators =
    Arg.(value & opt int 2 & info [ "simulators" ] ~docv:"S" ~doc:"Simulator count.")
  in
  let trials =
    Arg.(value & opt int 200 & info [ "trials" ] ~docv:"T" ~doc:"Random trials.")
  in
  Cmd.v
    (Cmd.info "bg" ~doc:"Run the Borowsky-Gafni simulation and validate outcomes.")
    Term.(const bg $ simulators $ trials $ seed_arg)

let qadri m n max_states =
  let report = Qadri.analyze ~max_states ~m ~n () in
  Fmt.pr "%a@." Qadri.pp_report report;
  if Qadri.all_ok report then 0 else 1

let qadri_cmd =
  Cmd.v
    (Cmd.info "qadri"
       ~doc:"Assemble the Theorem 7.1 artifacts for given m and n (needs \
             m >= 2, n >= m+1).")
    Term.(const qadri $ m_arg $ n_arg $ max_states_arg)

(* --- objects -------------------------------------------------------------- *)

let objects () =
  Fmt.pr "object registry (for --protocol style arguments):@.";
  List.iter (fun (syntax, doc) -> Fmt.pr "  %-16s %s@." syntax doc) Registry.known;
  0

let objects_cmd =
  Cmd.v
    (Cmd.info "objects" ~doc:"List the object zoo.")
    Term.(const objects $ const ())

(* --- fingerprint ----------------------------------------------------------- *)

let inputs_arg =
  Arg.(
    value
    & opt (some (list ~sep:',' int)) None
    & info [ "inputs" ] ~docv:"I1,I2,..."
        ~doc:
          "Full input vector, one integer per process.  Defaults to the \
           task's canonical vector.")

(* Structural fingerprint of a fixed configuration graph, for the
   cross-process determinism regression: two runs of this command must
   print identical lines no matter how many unrelated values were
   interned first.  Intern ids are allocation-order-dependent, so if one
   ever leaked into a hash, a node id or an ordering, shifting the id
   space with [--intern-warmup] would change the output.  The fold below
   deliberately touches only structural data: per-node [Config.hash]
   (purely structural by construction) in node-id order, then each
   node's out-edge (pid, target) sequence.

   The fingerprint must also pin every parameter the graph is a function
   of.  It originally folded structure only and ignored the reduction
   mode, the input vector and the state quota — so `--reduce sym` on
   inputs 0,1,1 could collide with the exact graph on the default
   inputs.  Those parameters now join the fold, and the printed [key=]
   field is the serve cache's canonical digest for the equivalent
   solvability query ({!Serve_api.key}), tying the two fingerprint
   notions together. *)
let fingerprint warmup n max_states mode question substrate inputs_opt =
  for i = 1 to warmup do
    ignore (Value.list [ Value.int (1_000_000 + i); Value.sym "warmup" ])
  done;
  let raw_inputs =
    match inputs_opt with
    | Some l -> l
    | None -> List.init n (fun pid -> if pid = 0 then 1 else 0)
  in
  if List.length raw_inputs <> n then begin
    Fmt.epr "lbsa fingerprint: dac:%d expects %d inputs, got %d@." n n
      (List.length raw_inputs);
    3
  end
  else begin
    let machine = Dac_from_pac.machine ~n in
    let specs = Dac_from_pac.specs ~n in
    let inputs = Array.of_list (List.map Value.int raw_inputs) in
    let reduce = mk_reduce ~frozen:dac_frozen ~canon:(Canon.dac ~n) mode in
    let graph = Cgraph.build ~max_states ~reduce ~machine ~specs ~inputs () in
    let h = ref 0x811c9dc5 in
    let comb k = h := Value.hash_combine !h k land max_int in
    for id = 0 to Cgraph.n_nodes graph - 1 do
      comb (Config.hash (Cgraph.node graph id));
      Cgraph.iter_out_edges graph id (fun e ->
          comb e.Cgraph.pid;
          comb e.Cgraph.target)
    done;
    String.iter (fun c -> comb (Char.code c)) (reduce_mode_name mode);
    Array.iter (fun v -> comb (Value.hash v)) inputs;
    comb max_states;
    (* The question and substrate don't change the dac graph fold above
       (the command always explores dac under shm), but they do change
       which serve query the printed key addresses — and the key
       separation is the point: a liveness answer and a safety answer,
       or the same task under different fairness, must never share a
       cache slot. *)
    String.iter (fun c -> comb (Char.code c)) (Serve_api.question_label question);
    String.iter (fun c -> comb (Char.code c)) substrate;
    let q =
      Serve_api.Verify
        {
          task = Serve_api.Dac { n };
          question;
          inputs = raw_inputs;
          max_states;
          reduce = mode;
          substrate;
        }
    in
    Fmt.pr
      "states=%d edges=%d truncated=%b reduce=%s question=%s substrate=%s \
       fingerprint=%08x key=%s@."
      (Cgraph.n_nodes graph) (Cgraph.n_edges graph) graph.Cgraph.truncated
      (reduce_mode_name mode)
      (Serve_api.question_label question)
      substrate
      (!h land 0xffffffff)
      (Serve_api.key q);
    0
  end

let fingerprint_cmd =
  let warmup =
    Arg.(
      value
      & opt int 0
      & info [ "intern-warmup" ] ~docv:"N"
          ~doc:
            "Construct N throwaway values before building the graph, \
             shifting every subsequent intern id.  The printed fingerprint \
             must not change.")
  in
  let question =
    Arg.(
      value
      & opt
          (enum
             [ ("solve", Serve_api.Solve); ("valence", Serve_api.Valence);
               ("live", Serve_api.Live) ])
          Serve_api.Solve
      & info [ "question" ] ~docv:"Q"
          ~doc:
            "Which question the printed key addresses (solve | valence | \
             live); distinct questions must print distinct keys.")
  in
  let substrate =
    Arg.(
      value
      & opt string "shm"
      & info [ "substrate" ] ~docv:"SUB"
          ~doc:
            "Which substrate the printed key addresses; distinct \
             substrates must print distinct keys.")
  in
  Cmd.v
    (Cmd.info "fingerprint"
       ~doc:
         "Print a structural fingerprint of the dac configuration graph \
          (cross-process determinism probe: output must be independent of \
          value-interning order, and must pin the reduction mode, input \
          vector, state quota, question and substrate).")
    Term.(
      const fingerprint $ warmup $ n_arg $ max_states_arg $ reduce_arg
      $ question $ substrate $ inputs_arg)

(* --- serve / query / shutdown ---------------------------------------------- *)

let default_socket =
  Filename.concat (Filename.get_temp_dir_name ()) "lbsa-serve.sock"

let default_store =
  Filename.concat (Filename.get_temp_dir_name ()) "lbsa-store"

let socket_arg =
  Arg.(
    value
    & opt string default_socket
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket the daemon listens on.")

let store_arg =
  Arg.(
    value
    & opt string default_store
    & info [ "store" ] ~docv:"DIR"
        ~doc:
          "Persistent result-store directory (content-addressed, \
           checksummed; survives daemon restarts).")

let wait_arg =
  Arg.(
    value
    & opt float 0.
    & info [ "wait" ] ~docv:"SEC"
        ~doc:
          "Keep retrying the connection for up to SEC seconds while the \
           daemon's socket is absent (start-then-query races in scripts).")

let serve socket store workers default_deadline store_probe io_chaos quiet =
  arm_io_chaos io_chaos;
  let cfg =
    {
      Serve_daemon.socket;
      store_dir = store;
      workers;
      default_deadline_s = default_deadline;
      store_probe_s = store_probe;
      log = not quiet;
    }
  in
  match Serve_daemon.run cfg with
  | stats ->
    Fmt.pr "%a@." Serve_wire.pp_stats stats;
    0
  | exception Failure msg ->
    Fmt.epr "lbsa serve: %s@." msg;
    1

let serve_cmd =
  let workers =
    Arg.(
      value
      & opt int 2
      & info [ "workers" ] ~docv:"W" ~doc:"Worker domains in the pool.")
  in
  let default_deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "default-deadline" ] ~docv:"SEC"
          ~doc:
            "Per-query wall-clock cap applied when the client sets none; \
             a cut query reports a partial result and (for fuzz) persists \
             its completed prefix.")
  in
  let store_probe =
    Arg.(
      value
      & opt float 5.
      & info [ "store-probe" ] ~docv:"SEC"
          ~doc:
            "While the store is degraded (ENOSPC, EROFS, persistent I/O \
             errors) the daemon keeps answering from computation alone and \
             re-probes the store every SEC seconds, re-enabling persistence \
             once a probe write commits.")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet" ] ~doc:"No chatter on stderr.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the persistent verification daemon: a worker pool answering \
          solvability/valence/fuzz queries over a unix socket, memoizing \
          every key-determined answer in a content-addressed store.  A \
          failing store degrades the daemon to compute-only answers (with \
          periodic re-probing), never to failed queries.  Blocks until \
          `lbsa shutdown`; prints the final counters.")
    Term.(const serve $ socket_arg $ store_arg $ workers $ default_deadline
          $ store_probe $ io_chaos_arg $ quiet)

let task_conv =
  let parse s =
    let int_ge lo v k =
      match int_of_string_opt v with
      | Some v when v >= lo -> Ok (k v)
      | _ -> Error (`Msg (Fmt.str "%S: expected an integer >= %d" s lo))
    in
    match String.split_on_char ':' s with
    | [ "dac"; n ] -> int_ge 2 n (fun n -> Serve_api.Dac { n })
    | [ "cons"; m ] | [ "consensus"; m ] ->
      int_ge 1 m (fun m -> Serve_api.Consensus { m })
    | [ "kset"; m; k ] ->
      Result.bind (int_ge 1 m Fun.id) (fun m ->
          int_ge 1 k (fun k -> Serve_api.Kset { m; k }))
    | "cand" :: (_ :: _ as rest) | "candidate" :: (_ :: _ as rest) ->
      Ok (Serve_api.Candidate { name = String.concat ":" rest })
    | [ "vc"; n ] -> int_ge 2 n (fun n -> Serve_api.Vc { n })
    | [ "bcast"; n ] -> int_ge 1 n (fun n -> Serve_api.Bcast { n })
    | _ ->
      Error
        (`Msg
           "task is dac:<n> | cons:<m> | kset:<m>:<k> | cand:<name> | \
            vc:<n> | bcast:<n> (see `lbsa check candidate` for names)")
  in
  let print ppf t = Fmt.string ppf (Serve_api.task_label t) in
  Arg.conv (parse, print)

let query task fuzz_target question substrate inputs_opt max_states mode trials
    procs ops seed socket wait_s deadline want_stats =
  let fail msg =
    Fmt.epr "lbsa query: %s@." msg;
    3
  in
  let with_client f =
    match Serve_client.connect ~wait_s ~socket () with
    | Error msg -> fail msg
    | Ok c -> Fun.protect ~finally:(fun () -> Serve_client.close c)
                (fun () -> f c)
  in
  let ask q =
    with_client (fun c ->
        match Serve_client.query ?deadline_s:deadline c q with
        | Error msg -> fail msg
        | Ok (res, cached, wall_us) ->
          Fmt.epr "lbsa query: %s in %.1f ms@."
            (if cached then "cache hit" else "computed")
            (wall_us /. 1000.);
          Fmt.pr "%s@." (Serve_api.render res);
          Serve_api.exit_code res)
  in
  if want_stats then
    with_client (fun c ->
        match Serve_client.stats c with
        | Error msg -> fail msg
        | Ok s ->
          Fmt.pr "%a@." Serve_wire.pp_stats s;
          0)
  else
    match (task, fuzz_target) with
    | Some _, Some _ -> fail "give either a TASK or --fuzz, not both"
    | None, None -> fail "nothing to ask: give a TASK, --fuzz, or --stats"
    | Some task, None ->
      let inputs =
        match inputs_opt with
        | Some l -> l
        | None -> Serve_api.default_inputs task
      in
      let substrate =
        match substrate with
        | Some s -> s
        | None -> Serve_api.default_substrate task
      in
      ask
        (Serve_api.Verify
           { task; question; inputs; max_states; reduce = mode; substrate })
    | None, Some target ->
      ask (Serve_api.Fuzz { target; trials; procs; ops; seed })

let query_cmd =
  let task =
    Arg.(
      value
      & pos 0 (some task_conv) None
      & info [] ~docv:"TASK"
          ~doc:
            "dac:<n> | cons:<m> | kset:<m>:<k> | cand:<name> | vc:<n> | \
             bcast:<n>.")
  in
  let fuzz_target =
    Arg.(
      value
      & opt (some string) None
      & info [ "fuzz" ] ~docv:"IMPL"
          ~doc:
            "Instead of a verification question, run (or resume) a \
             conformance-fuzz campaign against this registry \
             implementation.")
  in
  let question =
    Arg.(
      value
      & opt
          (enum
             [ ("solve", Serve_api.Solve); ("valence", Serve_api.Valence);
               ("live", Serve_api.Live) ])
          Serve_api.Solve
      & info [ "question" ] ~docv:"Q"
          ~doc:
            "solve (solvability verdict), valence (graph summary), or live \
             (fair-cycle liveness verdict with a shrunk lasso witness).")
  in
  let trials =
    Arg.(value & opt int 200 & info [ "trials" ] ~docv:"T" ~doc:"Fuzz trials.")
  in
  let procs =
    Arg.(value & opt int 3 & info [ "procs" ] ~docv:"P" ~doc:"Fuzz processes.")
  in
  let ops =
    Arg.(
      value & opt int 4
      & info [ "ops" ] ~docv:"O" ~doc:"Fuzz ops per process.")
  in
  let want_stats =
    Arg.(
      value
      & flag
      & info [ "stats" ] ~doc:"Print the daemon's counters instead of asking.")
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:
         "Ask the verification daemon.  Cold answers are computed by the \
          worker pool and memoized; identical queries — across clients and \
          daemon restarts — come back from the cache, byte-identical.  \
          Exit codes follow the CLI-wide 0/1/2 policy for the answer \
          itself; 3 means the daemon could not be reached or the query was \
          malformed.")
    Term.(
      const query $ task $ fuzz_target $ question $ substrate_arg $ inputs_arg
      $ max_states_arg $ reduce_arg $ trials $ procs $ ops $ seed_arg
      $ socket_arg $ wait_arg $ deadline_arg $ want_stats)

let shutdown socket wait_s =
  match Serve_client.connect ~wait_s ~socket () with
  | Error msg ->
    Fmt.epr "lbsa shutdown: %s@." msg;
    1
  | Ok c ->
    Fun.protect
      ~finally:(fun () -> Serve_client.close c)
      (fun () ->
        match Serve_client.shutdown c with
        | Ok (Some stats) ->
          Fmt.pr "%a@." Serve_wire.pp_stats stats;
          0
        | Ok None -> 0
        | Error msg ->
          Fmt.epr "lbsa shutdown: %s@." msg;
          1)

let shutdown_cmd =
  Cmd.v
    (Cmd.info "shutdown"
       ~doc:
         "Drain and stop the verification daemon: it finishes and answers \
          every queued and in-flight query, then exits; this command \
          blocks until the drain completes and prints the final counters.")
    Term.(const shutdown $ socket_arg $ wait_arg)

(* --- main ------------------------------------------------------------------ *)

let () =
  let info =
    Cmd.info "lbsa" ~version:"1.0.0"
      ~doc:
        "Executable reproduction of 'Life Beyond Set Agreement' (PODC 2017)."
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            run_dac_cmd; check_cmd; solve_cmd; valence_cmd; explore_cmd;
            power_cmd; separation_cmd; lin_check_cmd; fuzz_cmd; universal_cmd;
            bg_cmd; qadri_cmd; objects_cmd; fingerprint_cmd; serve_cmd;
            query_cmd; shutdown_cmd;
          ]))
