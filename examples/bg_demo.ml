(* bg_demo: the Borowsky-Gafni simulation, live.

   Build and run:  dune exec examples/bg_demo.exe

   Two simulators jointly execute a 3-process full-information snapshot
   protocol so faithfully that the outcome lands in the exact set of
   outcomes real 3-process executions can produce (computed by the model
   checker).  This simulation is the engine behind the set-consensus
   hierarchy results the paper builds on (its references [2] and [6]). *)

open Lbsa

let pp_vector ppf ds = Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any ", ") Value.pp) ds

let () =
  let p = Sim_protocol.min_seen ~n_sim:3 ~steps:1 in
  let inputs = [| Value.int 10; Value.int 11; Value.int 12 |] in

  Fmt.pr
    "Simulated protocol: %s — 3 processes, inputs (10, 11, 12);@.\
     each writes its state, scans, and decides the minimum input seen.@."
    p.Sim_protocol.name;

  let outcomes = Sim_protocol.direct_outcomes p ~inputs in
  Fmt.pr "@.Direct executions (model-checked, every schedule) can produce %d \
          outcome vectors:@." (List.length outcomes);
  List.iter
    (fun o -> Fmt.pr "  %a@." pp_vector (Value.to_list_exn o))
    outcomes;

  Fmt.pr "@.Now 2 simulators run the same 3-process protocol:@.";
  List.iter
    (fun seed ->
      let r =
        Bg_simulation.run ~p ~sim_inputs:inputs ~simulators:2
          ~scheduler:(Scheduler.random ~seed) ()
      in
      match r.Bg_simulation.simulated_decisions with
      | Some ds ->
        let inside = List.exists (Value.equal (Value.list ds)) outcomes in
        Fmt.pr "  seed %2d: simulated outcome %a — %s (%d simulator steps)@."
          seed pp_vector ds
          (if inside then "a genuine 3-process outcome" else "IMPOSSIBLE (bug!)")
          r.Bg_simulation.executor.Executor.steps
      | None -> Fmt.pr "  seed %2d: simulation did not complete@." seed)
    [ 1; 2; 3; 7; 13 ];

  Fmt.pr "@.Crash tolerance (the BG theorem: one crashed simulator blocks at \
          most one simulated process):@.";
  List.iter
    (fun budget ->
      let scheduler = Fault.apply [ (0, budget) ] (Scheduler.round_robin ~n:2) in
      let r =
        Bg_simulation.run ~max_steps:5_000 ~p ~sim_inputs:inputs ~simulators:2
          ~scheduler ()
      in
      match r.Bg_simulation.simulated_decisions with
      | Some ds ->
        Fmt.pr "  sim0 crashes after %2d steps: completed anyway, outcome %a@."
          budget pp_vector ds
      | None ->
        let progress = r.Bg_simulation.per_simulator_progress.(1) in
        let blocked =
          List.filter
            (fun j ->
              match List.assoc_opt j progress with
              | Some c -> c < p.Sim_protocol.steps
              | None -> true)
            (Listx.range 0 2)
        in
        Fmt.pr
          "  sim0 crashes after %2d steps (inside an unsafe zone): simulated \
           processes blocked: {%a} — all others completed@."
          budget
          Fmt.(list ~sep:(any ", ") int)
          blocked)
    [ 3; 4; 5; 6; 9 ];
  Fmt.pr "@.Done.@."
