(* bivalency_explorer: the FLP proof vocabulary, computed.

   Build and run:  dune exec examples/bivalency_explorer.exe

   Builds full configuration graphs for small protocols and prints their
   valence structure: how many configurations are bivalent, where the
   critical configurations sit, what the processes are poised on there
   (Claim 5.2.3), and whether the adversary can maintain bivalence
   forever. *)

open Lbsa

let explore ~label ~machine ~specs ~inputs =
  let graph = Cgraph.build ~machine ~specs ~inputs () in
  let a = Valence.analyze graph in
  let s = Valence.summarize a in
  Fmt.pr "@.== %s ==@." label;
  Fmt.pr "  configurations: %d (%d edges)@." (Cgraph.n_nodes graph)
    (Cgraph.n_edges graph);
  Fmt.pr "  valence: %d bivalent, %d univalent, %d undecided@."
    s.Valence.n_bivalent s.Valence.n_univalent s.Valence.n_undecided;
  Fmt.pr "  initial configuration: %a@." Valence.pp_classification
    (Valence.classify a graph.Cgraph.initial);
  let criticals = Bivalency.report_critical ~machine ~specs graph a in
  Fmt.pr "  critical configurations: %d@." (List.length criticals);
  (match criticals with
  | first :: _ ->
    (match first.Bivalency.object_name with
    | Some name ->
      Fmt.pr
        "    at the first one, every process is poised on the same object: \
         %s@."
        name
    | None ->
      Fmt.pr "    processes are NOT all poised on one object there@.");
    Fmt.pr "    the configuration itself:@.%a@." Config.pp
      first.Bivalency.config
  | [] -> ());
  let hooks = Bivalency.find_hooks ~limit:3 a graph in
  Fmt.pr "  hooks (Claim 4.2.6 pivots), first %d:@." (List.length hooks);
  List.iter (fun h -> Fmt.pr "    %a@." Bivalency.pp_hook h) hooks;
  (match Bivalency.bivalence_maintainable a graph with
  | Ok () when s.Valence.n_bivalent > 0 ->
    Fmt.pr
      "  bivalence is maintainable: the adversary can avoid a decision \
       forever@."
  | Ok () -> Fmt.pr "  (no bivalent configurations at all)@."
  | Error id ->
    Fmt.pr
      "  bivalence is NOT maintainable: node %d is a bivalent dead-end into \
       univalence@."
      id);
  ()

let () =
  Fmt.pr
    "The FLP vocabulary (valence, criticality), computed on real protocols.@.";

  (* 1. Consensus over a 2-consensus object: solvable, so bivalence must
     die at a critical configuration — and Claim 5.2.3 says everyone is
     poised on the consensus object there. *)
  let machine, specs = Consensus_protocols.from_consensus_obj ~m:2 in
  explore ~label:"2 processes, one 2-consensus object (solvable)" ~machine
    ~specs ~inputs:[| Value.int 0; Value.int 1 |];

  (* 2. Registers only, the terminating candidate: bivalent initial
     configuration, but safety is violated instead. *)
  let machine, specs = Candidates.flp_write_read in
  explore ~label:"2 processes, registers only (write-read candidate)" ~machine
    ~specs ~inputs:[| Value.int 0; Value.int 1 |];

  (* 3. A bare 2-PAC object with the retry protocol: the adversary
     maintains bivalence forever — the livelock the ⊥ responses create.
     Evidence that n-PAC alone has consensus number 1. *)
  let machine, specs = Candidates.consensus_from_pac_retry ~n:2 ~procs:2 in
  explore ~label:"2 processes, one 2-PAC object (retry candidate)" ~machine
    ~specs ~inputs:[| Value.int 0; Value.int 1 |];

  (* 4. Algorithm 2 on the paper's canonical DAC inputs: the initial
     configuration is bivalent (Claim 4.2.4) and abort-configurations
     are 0-valent (Claim 4.2.2). *)
  let n = 3 in
  let machine = Dac_from_pac.machine ~n in
  let specs = Dac_from_pac.specs ~n in
  let inputs = [| Value.int 1; Value.int 0; Value.int 0 |] in
  explore ~label:"Algorithm 2, 3-DAC, inputs (1,0,0)" ~machine ~specs ~inputs;
  let graph = Cgraph.build ~machine ~specs ~inputs () in
  let a = Valence.analyze graph in
  (match Bivalency.aborts_are_0_valent a graph with
  | Ok () ->
    Fmt.pr
      "  Claim 4.2.2 holds: every configuration where p aborted is 0-valent@."
  | Error id -> Fmt.pr "  Claim 4.2.2 VIOLATED at node %d@." id);
  Fmt.pr "@.Done.@."
