(* dac_demo: Theorem 4.1 in action at scale.

   Build and run:  dune exec examples/dac_demo.exe

   Runs Algorithm 2 (n-DAC from one n-PAC) for n = 2..8 under thousands
   of random schedules with crash injection, checking all four DAC
   properties on every run; then model-checks n = 2..4 exhaustively
   (every schedule, every input vector). *)

open Lbsa

let check_run ~machine ~specs ~inputs (r : Executor.result) =
  (match Dac.check_safety ~inputs ~trace:r.Executor.trace r.Executor.final with
  | Ok () -> ()
  | Error viol -> Fmt.failwith "safety: %a" Dac.pp_violation viol);
  (match Dac.check_termination_a ~machine ~specs r.Executor.final with
  | Ok () -> ()
  | Error viol -> Fmt.failwith "termination (a): %a" Dac.pp_violation viol);
  match Dac.check_termination_b ~machine ~specs r.Executor.final with
  | Ok () -> ()
  | Error viol -> Fmt.failwith "termination (b): %a" Dac.pp_violation viol

let random_campaign ~n ~trials =
  let machine = Dac_from_pac.machine ~n in
  let specs = Dac_from_pac.specs ~n in
  let prng = Prng.create (n * 1000 + 7) in
  let aborts = ref 0 and decides = ref 0 in
  for seed = 1 to trials do
    let inputs = Array.init n (fun _ -> Value.int (Prng.int prng 2)) in
    (* Randomly crash a subset of processes (never all). *)
    let dead =
      List.filter (fun _ -> Prng.int prng 4 = 0) (Listx.range 0 (n - 1))
    in
    let dead = if List.length dead >= n then [] else dead in
    let scheduler =
      Scheduler.excluding dead (Scheduler.random ~seed:(seed * 31 + n))
    in
    let r = Executor.run ~machine ~specs ~inputs ~scheduler () in
    check_run ~machine ~specs ~inputs r;
    (match r.Executor.final.Config.status.(0) with
    | Config.Aborted -> incr aborts
    | Config.Decided _ -> incr decides
    | _ -> ());
    ()
  done;
  (!decides, !aborts)

let () =
  Fmt.pr "== Random-schedule campaign (with crash injection) ==@.";
  Fmt.pr "%-4s %-8s %-10s %-10s %s@." "n" "trials" "p decided" "p aborted"
    "all checks";
  List.iter
    (fun n ->
      let trials = 2000 in
      let decides, aborts = random_campaign ~n ~trials in
      Fmt.pr "%-4d %-8d %-10d %-10d ok@." n trials decides aborts)
    [ 2; 3; 4; 5; 6; 8 ];

  Fmt.pr "@.== Exhaustive model checking (every schedule, every input) ==@.";
  Fmt.pr "%-4s %-8s %-12s %s@." "n" "inputs" "max states" "verdict";
  List.iter
    (fun n ->
      let machine = Dac_from_pac.machine ~n in
      let specs = Dac_from_pac.specs ~n in
      let states = ref 0 in
      let verdict =
        Solvability.for_all_inputs
          (fun inputs ->
            let v = Solvability.check_dac ~machine ~specs ~inputs () in
            states := max !states v.Solvability.states;
            v)
          (Dac.binary_inputs n)
      in
      Fmt.pr "%-4d %-8d %-12d %s@." n
        (List.length (Dac.binary_inputs n))
        !states
        (if verdict.Solvability.ok then "solves n-DAC (Theorem 4.1)"
         else Fmt.str "%a" Solvability.pp_verdict verdict))
    [ 2; 3; 4 ];

  Fmt.pr "@.== The abort is real: starve p after one rival step ==@.";
  let n = 3 in
  let machine = Dac_from_pac.machine ~n in
  let specs = Dac_from_pac.specs ~n in
  let inputs = [| Value.int 1; Value.int 0; Value.int 0 |] in
  (* p proposes; q1 proposes (intervening); p decides -> ⊥ -> abort. *)
  let r =
    Executor.run ~machine ~specs ~inputs
      ~scheduler:(Scheduler.fixed [ 0; 1; 0; 0 ]) ()
  in
  Fmt.pr "%a@." (Trace.pp_lanes ~n) r.Executor.trace;
  Fmt.pr "p's status: %a (Nontriviality: a rival stepped first)@."
    Config.pp_status r.Executor.final.Config.status.(0)
