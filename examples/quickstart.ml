(* Quickstart: the paper's objects in five minutes.

   Build and run:  dune exec examples/quickstart.exe

   We create an n-PAC object (Algorithm 1), drive it by hand, watch it
   detect concurrency and get upset, then let Algorithm 2 solve the
   n-DAC problem with it under an adversarial scheduler. *)

open Lbsa

let section title = Fmt.pr "@.== %s ==@." title

let show op response = Fmt.pr "  %a -> %a@." Op.pp op Value.pp response

(* Apply one operation to a mutable spec state, print it, return it. *)
let apply spec state op =
  let state', response = Obj_spec.apply_det spec !state op in
  state := state';
  show op response;
  response

let () =
  section "1. A 3-PAC object, solo (Algorithm 1)";
  let pac = Pac.spec ~n:3 () in
  let st = ref pac.Obj_spec.initial in
  ignore (apply pac st (Pac.propose (Value.int 42) 1));
  ignore (apply pac st (Pac.decide 1));
  Fmt.pr "  (a clean propose/decide pair decides the proposed value)@.";

  section "2. Concurrency detection: an operation intervenes";
  let st = ref pac.Obj_spec.initial in
  ignore (apply pac st (Pac.propose (Value.int 1) 1));
  ignore (apply pac st (Pac.propose (Value.int 2) 2));
  ignore (apply pac st (Pac.decide 1));
  Fmt.pr "  (the decide saw label 2's propose in between: ⊥, no upset)@.";
  Fmt.pr "  upset? %b@." (Pac.is_upset !st);

  section "3. An illegal history upsets the object permanently";
  let st = ref pac.Obj_spec.initial in
  ignore (apply pac st (Pac.decide 2));
  Fmt.pr "  upset? %b (Lemma 3.2: upset iff the history is illegal)@."
    (Pac.is_upset !st);
  ignore (apply pac st (Pac.propose (Value.int 5) 1));
  ignore (apply pac st (Pac.decide 1));
  Fmt.pr "  (⊥ forever afterwards)@.";

  section "4. Algorithm 2: 3-DAC from one 3-PAC, round-robin schedule";
  let n = 3 in
  let machine = Dac_from_pac.machine ~n in
  let specs = Dac_from_pac.specs ~n in
  let inputs = [| Value.int 1; Value.int 0; Value.int 0 |] in
  let r =
    Executor.run ~machine ~specs ~inputs ~scheduler:(Scheduler.round_robin ~n) ()
  in
  Fmt.pr "  trace:@.%a@." Trace.pp r.Executor.trace;
  Array.iteri
    (fun pid st -> Fmt.pr "  p%d: %a@." pid Config.pp_status st)
    r.Executor.final.Config.status;

  section "5. The same run, but the distinguished process is starved";
  let r =
    Executor.run ~machine ~specs ~inputs
      ~scheduler:(Scheduler.starving 0 (Scheduler.round_robin ~n)) ()
  in
  Array.iteri
    (fun pid st -> Fmt.pr "  p%d: %a@." pid Config.pp_status st)
    r.Executor.final.Config.status;
  Fmt.pr
    "@.Done.  Next: dac_demo.exe (schedule exploration), hierarchy_tour.exe,@.\
     separation_demo.exe (the paper's main theorem), bivalency_explorer.exe.@."
