(* universal_demo: Herlihy's universal construction, the theorem behind
   the paper's whole question.

   Build and run:  dune exec examples/universal_demo.exe

   "Instances of any object with consensus number n, together with
   registers, can implement any object that can be shared by up to n
   processes" (Herlihy 1991, cited in Section 1 of the paper).  We build
   a FIFO queue, a fetch-and-add counter, and even an n-PAC object out
   of nothing but n-consensus objects and registers, drive them with
   concurrent clients, and check every run against the target's
   sequential specification with the Wing-Gong checker. *)

open Lbsa

let show_target ~name ~target ~workloads ~trials =
  let n = Array.length workloads in
  let impl = Universal.implementation ~n ~target () in
  Fmt.pr "@.== %s among %d processes, from %d-consensus + registers ==@." name
    n n;
  (* One verbose run under a random schedule. *)
  let run =
    Harness.run_clients ~impl ~workloads ~scheduler:(Scheduler.random ~seed:42)
      ()
  in
  Fmt.pr "  one run (%d base-object steps):@." run.Harness.steps;
  List.iter
    (fun (c : Chistory.call) ->
      Fmt.pr "    p%d  %a -> %a@." c.Chistory.pid Op.pp c.Chistory.op Value.pp
        c.Chistory.response)
    run.Harness.history;
  (match Lin_checker.check target run.Harness.history with
  | Lin_checker.Linearizable order ->
    Fmt.pr "  linearizable; witness order: %a@."
      Fmt.(
        list ~sep:(any " < ") (fun ppf (c : Chistory.call) ->
            Fmt.pf ppf "p%d.%s" c.Chistory.pid c.Chistory.op.Op.name))
      order
  | Lin_checker.Not_linearizable -> Fmt.pr "  NOT linearizable (bug!)@.");
  (* Then a campaign. *)
  match Harness.campaign ~seed:1 ~trials ~impl ~workloads () with
  | Ok t -> Fmt.pr "  campaign: %d/%d random schedules linearizable@." t t
  | Error (i, _) -> Fmt.pr "  campaign: trial %d FAILED@." i

let () =
  Fmt.pr
    "Herlihy's universal construction: one log of consensus-decided slots,@.\
     announce registers, and round-robin helping.@.";

  show_target ~name:"FIFO queue"
    ~target:(Classic.Queue_obj.spec ())
    ~workloads:
      [|
        [ Classic.Queue_obj.enqueue (Value.int 1); Classic.Queue_obj.dequeue ];
        [ Classic.Queue_obj.enqueue (Value.int 2) ];
        [ Classic.Queue_obj.dequeue ];
      |]
    ~trials:300;

  show_target ~name:"fetch-and-add counter"
    ~target:(Classic.Fetch_and_add.spec ())
    ~workloads:
      (Array.init 3 (fun _ ->
           List.init 2 (fun _ -> Classic.Fetch_and_add.fetch_and_add 1)))
    ~trials:300;

  (* The punchline: the universal construction happily hosts the paper's
     own n-PAC object — PAC is deterministic, so Herlihy's theorem
     applies to it like to anything else.  What the paper shows is that
     *set agreement power* (unlike consensus number, which powers this
     construction) cannot play that role. *)
  show_target ~name:"3-PAC object"
    ~target:(Pac.spec ~n:3 ())
    ~workloads:
      (Array.init 3 (fun pid ->
           [ Pac.propose (Value.int pid) (pid + 1); Pac.decide (pid + 1) ]))
    ~trials:300;

  Fmt.pr "@.Done.@."
