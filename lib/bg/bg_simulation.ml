open Lbsa_spec
open Lbsa_objects
open Lbsa_runtime

(* The BG simulation (Borowsky-Gafni 1993), executable.

   S simulators jointly run a full-information snapshot protocol
   (Sim_protocol.t) written for n_sim processes, so that the simulated
   execution is indistinguishable from a real one.  This is the engine
   behind the set-consensus hierarchy results the paper builds on
   (references [2] and [6]): it transfers k-set agreement solvability
   between system sizes.

   Per simulated step (j, t) the simulators must agree on the view that
   process j's t-th scan returns.  Each simulator:

     1. polls the safe-agreement instance SA(j,t): if decided, adopts
        the agreed view and moves on;
     2. otherwise writes j's current (deterministic) state into the
        simulated memory, takes a real snapshot of it, and proposes that
        snapshot to SA(j,t) (enter at level 1, look, commit at level 2
        or back off to 0 — Safe_agreement's discipline, inlined);
     3. moves on to the next simulated process round-robin, returning to
        (j,t) on a later lap to poll again.

   Key mechanics, each mirroring the original construction:
   - the simulated memory has *monotone* cells (stale duplicate writes
     by laggard simulators are no-ops), so simulated cells never move
     backwards and all real snapshots of it are cell-wise comparable;
   - a laggard whose candidate view is stale necessarily sees a level-2
     entry when it looks, and backs off — corrupted candidates are
     never decided;
   - a simulator that crashes inside one SA's unsafe zone blocks at most
     that one simulated process; all others keep advancing (the BG
     theorem's "at most one simulated failure per simulator crash").

   The simulated inputs are fixed parameters; the simulators' own
   executor inputs are unused. *)

let simmem_index = 0

let sa_index ~(p : Sim_protocol.t) ~j ~t = 1 + (j * p.steps) + (t - 1)

let specs ~(p : Sim_protocol.t) ~simulators : Obj_spec.t array =
  Array.init
    (1 + (p.Sim_protocol.n_sim * p.Sim_protocol.steps))
    (fun i ->
      if i = simmem_index then
        Classic.Monotone_snapshot.spec ~m:p.Sim_protocol.n_sim ()
      else Classic.Snapshot.spec ~m:simulators ())

(* --- local-state plumbing ---------------------------------------------- *)

let state ~tag ~j ~agreed ~proposed ~slot =
  Value.list [ Value.sym tag; Value.int j; agreed; proposed; slot ]

let initial_local = state ~tag:"poll" ~j:0 ~agreed:Value.Assoc.empty
    ~proposed:Value.Set_.empty ~slot:Value.nil

let views_of agreed j =
  match Value.Assoc.get agreed (Value.int j) with
  | Some { Value.node = List views; _ } -> views
  | _ -> []

let decode_agreed local =
  match local with
  | { Value.node = List [ _; _; agreed; _; _ ]; _ } ->
    List.filter_map
      (fun (k, v) ->
        match (k, v) with
        | { Value.node = Int j; _ }, { Value.node = List views; _ } ->
          Some (j, views)
        | _ -> None)
      (Value.Assoc.bindings agreed)
  | { Value.node = Pair ({ node = Sym "halt"; _ }, _); _ } -> []
  | _ -> []

(* --- safe-agreement cell decoding --------------------------------------- *)

let cell_level = function
  | { Value.node = Pair (_, { node = Int level; _ }); _ } -> level
  | { Value.node = Nil; _ } -> -1
  | c -> invalid_arg (Fmt.str "Bg_simulation: bad SA cell %a" Value.pp c)

let cell_candidate = function
  | { Value.node = Pair (candidate, _); _ } -> candidate
  | c -> invalid_arg (Fmt.str "Bg_simulation: bad SA cell %a" Value.pp c)

type sa_status =
  | Sa_decided of Value.t
  | Sa_pending  (* a level-1 entry or nothing committed yet *)

let sa_status scan =
  let cells = Value.to_list_exn scan in
  let levels = List.map cell_level cells in
  if List.exists (( = ) 1) levels then Sa_pending
  else
    match
      List.find_opt (fun c -> cell_level c = 2) cells
    with
    | Some cell -> Sa_decided (cell_candidate cell)
    | None -> Sa_pending

(* --- the simulator machine ---------------------------------------------- *)

let machine ~(p : Sim_protocol.t) ~(sim_inputs : Value.t array) : Machine.t =
  if Array.length sim_inputs <> p.Sim_protocol.n_sim then
    invalid_arg "Bg_simulation.machine: inputs arity mismatch";
  let name = Fmt.str "bg-sim-%s" p.Sim_protocol.name in
  let n_sim = p.Sim_protocol.n_sim in
  let steps = p.Sim_protocol.steps in
  (* Next simulated process still missing views, cyclically after [j];
     [None] when every process has all its views. *)
  let next_active ~agreed j =
    let rec go k remaining =
      if remaining = 0 then None
      else
        let cand = (j + 1 + k) mod n_sim in
        if List.length (views_of agreed cand) < steps then Some cand
        else go (k + 1) (remaining - 1)
    in
    go 0 n_sim
  in
  let move_on ~agreed ~proposed j =
    match next_active ~agreed j with
    | Some j' ->
      state ~tag:"poll" ~j:j' ~agreed ~proposed ~slot:Value.nil
    | None ->
      let decisions =
        Value.list
          (List.map
             (fun j ->
               p.Sim_protocol.decide ~pid:j ~input:sim_inputs.(j)
                 ~views:(views_of agreed j))
             (Lbsa_util.Listx.range 0 (n_sim - 1)))
      in
      Value.pair (Value.sym "halt", decisions)
  in
  let remove_from_set set v =
    Value.Set_.of_list
      (List.filter (fun x -> not (Value.equal x v)) (Value.Set_.elements set))
  in
  let delta ~pid local =
    match local with
    | {
        Value.node =
          List
            [
              { node = Sym tag; _ };
              { node = Int j; _ };
              agreed;
              proposed;
              slot;
            ];
        _;
      } -> (
      let t = List.length (views_of agreed j) + 1 in
      let sa = sa_index ~p ~j ~t in
      match tag with
      | "poll" ->
        Machine.invoke sa Classic.Snapshot.scan (fun scan ->
            match sa_status scan with
            | Sa_decided view ->
              let agreed =
                Value.Assoc.set agreed (Value.int j)
                  (Value.list (views_of agreed j @ [ view ]))
              in
              let proposed = remove_from_set proposed (Value.int j) in
              move_on ~agreed ~proposed j
            | Sa_pending ->
              if Value.Set_.mem (Value.int j) proposed then
                (* Already committed my proposal; come back later. *)
                move_on ~agreed ~proposed j
              else state ~tag:"write" ~j ~agreed ~proposed ~slot:Value.nil)
      | "write" ->
        let content =
          Sim_protocol.cell_content ~t ~input:sim_inputs.(j)
            ~views:(views_of agreed j)
        in
        Machine.invoke simmem_index
          (Classic.Monotone_snapshot.update j ~step:t content)
          (fun _ -> state ~tag:"scan" ~j ~agreed ~proposed ~slot:Value.nil)
      | "scan" ->
        Machine.invoke simmem_index Classic.Monotone_snapshot.scan
          (fun candidate ->
            state ~tag:"enter" ~j ~agreed ~proposed ~slot:candidate)
      | "enter" ->
        Machine.invoke sa
          (Classic.Snapshot.update pid (Value.pair (slot, Value.int 1)))
          (fun _ -> state ~tag:"look" ~j ~agreed ~proposed ~slot)
      | "look" ->
        Machine.invoke sa Classic.Snapshot.scan (fun scan ->
            let cells = Value.to_list_exn scan in
            let level = if List.exists (fun c -> cell_level c = 2) cells then 0 else 2 in
            state ~tag:"commit" ~j ~agreed ~proposed
              ~slot:(Value.pair (Value.int level, slot)))
      | "commit" -> (
        match slot with
        | { Value.node = Pair ({ node = Int level; _ }, candidate); _ } ->
          Machine.invoke sa
            (Classic.Snapshot.update pid
               (Value.pair (candidate, Value.int level)))
            (fun _ ->
              let proposed = Value.Set_.add (Value.int j) proposed in
              move_on ~agreed ~proposed j)
        | s -> Machine.bad_state ~machine:name ~pid s)
      | _ -> Machine.bad_state ~machine:name ~pid local)
    | { Value.node = Pair ({ node = Sym "halt"; _ }, decisions); _ } ->
      Machine.Decide decisions
    | s -> Machine.bad_state ~machine:name ~pid s
  in
  Machine.make ~name
    ~init:(fun ~pid:_ ~input:_ -> initial_local)
    ~delta

(* --- whole-run driver and validity checks ------------------------------- *)

type run = {
  simulated_decisions : Value.t list option;
      (* the decision vector, when some simulator completed *)
  per_simulator_progress : (int * int) list array;
      (* (simulated pid, agreed view count) per simulator *)
  all_views : Value.t list;  (* every agreed view observed by anyone *)
  executor : Executor.result;
}

let run ?(max_steps = 200_000) ~(p : Sim_protocol.t) ~sim_inputs ~simulators
    ~scheduler () : run =
  let machine = machine ~p ~sim_inputs in
  let specs = specs ~p ~simulators in
  let inputs = Array.make simulators Value.unit_ in
  let r = Executor.run ~max_steps ~machine ~specs ~inputs ~scheduler () in
  let decisions =
    let rec find pid =
      if pid >= simulators then None
      else
        match Config.decision r.Executor.final pid with
        | Some { Value.node = List ds; _ } -> Some ds
        | _ -> find (pid + 1)
    in
    find 0
  in
  let progress =
    Array.init simulators (fun s ->
        List.map
          (fun (j, views) -> (j, List.length views))
          (decode_agreed r.Executor.final.Config.locals.(s)))
  in
  let all_views =
    Array.to_list r.Executor.final.Config.locals
    |> List.concat_map (fun local ->
           List.concat_map snd (decode_agreed local))
  in
  { simulated_decisions = decisions; per_simulator_progress = progress;
    all_views; executor = r }

(* Exhaustive validation: build the full configuration graph of the
   simulators themselves (every interleaving of simulator steps) and
   check that every reachable terminal configuration's decision vector
   is a genuine direct outcome of the simulated protocol.  Feasible for
   tiny instances (the simulator state space stays in the low
   thousands). *)
type exhaustive_report = {
  states : int;
  terminals : int;
  bad_outcomes : int;
  all_genuine : bool;
}

let check_exhaustive ?(max_states = 500_000) ~(p : Sim_protocol.t)
    ~sim_inputs ~simulators () : exhaustive_report =
  let outcomes = Sim_protocol.direct_outcomes p ~inputs:sim_inputs in
  let machine = machine ~p ~sim_inputs in
  let specs = specs ~p ~simulators in
  let inputs = Array.make simulators Value.unit_ in
  let graph =
    Lbsa_modelcheck.Graph.build ~max_states ~machine ~specs ~inputs ()
  in
  Lbsa_modelcheck.Graph.require_complete graph;
  let bad = ref 0 and terminals = ref 0 in
  Lbsa_modelcheck.Graph.iter_nodes
    (fun _ config ->
      if Config.all_halted config then begin
        incr terminals;
        Array.iter
          (fun st ->
            match st with
            | Config.Decided { Value.node = List ds; _ } ->
              if not (List.exists (Value.equal (Value.list ds)) outcomes) then
                incr bad
            | Config.Decided _ | Config.Running | Config.Aborted
            | Config.Crashed ->
              ())
          config.Config.status
      end)
    graph;
  {
    states = Lbsa_modelcheck.Graph.n_nodes graph;
    terminals = !terminals;
    bad_outcomes = !bad;
    all_genuine = !bad = 0;
  }

(* Cell-wise comparability of two simulated-memory views: the snapshot
   property over monotone cells. *)
let view_le u v =
  List.for_all2
    (fun a b ->
      Classic.Monotone_snapshot.step_of a <= Classic.Monotone_snapshot.step_of b)
    (Value.to_list_exn u) (Value.to_list_exn v)

let views_comparable views =
  let rec go = function
    | [] -> true
    | u :: rest ->
      List.for_all (fun v -> view_le u v || view_le v u) rest && go rest
  in
  go views

(* Agreement across simulators: same (j, t) must carry the same view. *)
let simulators_agree (r : run) =
  let tables =
    Array.to_list r.executor.Executor.final.Config.locals
    |> List.map decode_agreed
  in
  let ok = ref true in
  List.iteri
    (fun i table_i ->
      List.iteri
        (fun i' table_i' ->
          if i < i' then
            List.iter
              (fun (j, views) ->
                match List.assoc_opt j table_i' with
                | None -> ()
                | Some views' ->
                  let common = min (List.length views) (List.length views') in
                  for t = 0 to common - 1 do
                    if
                      not
                        (Value.equal (List.nth views t) (List.nth views' t))
                    then ok := false
                  done)
              table_i)
        tables)
    tables;
  !ok
