open Lbsa_spec
open Lbsa_objects
open Lbsa_runtime

(* Full-information snapshot protocols: the normal form the BG
   simulation operates on (Borowsky-Gafni 1993).

   Each of [n_sim] processes performs exactly [steps] rounds of
   "write my whole state, then scan", and finally applies the
   deterministic [decide] function to its sequence of views.  Any
   bounded wait-free read-write protocol can be put in this form; we
   work with the form directly.

   Cell content written by process j at the start of its round t:
     List [Int t; input_j; List views_so_far]       (views_so_far < t)

   The module provides a *direct* execution as an ordinary protocol
   machine over one monotone snapshot object — the reference semantics
   that the BG simulation (Bg_simulation) must reproduce. *)

type t = {
  name : string;
  n_sim : int;
  steps : int;
  decide : pid:int -> input:Value.t -> views:Value.t list -> Value.t;
}

let cell_content ~t ~input ~views =
  Value.list [ Value.int t; input; Value.list views ]

(* --- the direct machine ------------------------------------------------ *)

let simmem_index = 0

let direct_machine (p : t) : Machine.t =
  let name = Fmt.str "direct-%s" p.name in
  let init ~pid:_ ~input =
    Value.(list [ sym "write"; int 1; input; list [] ])
  in
  let delta ~pid state =
    match state with
    | {
        Value.node =
          List
            [
              { node = Sym "write"; _ };
              { node = Int t; _ };
              input;
              { node = List views; _ };
            ];
        _;
      } ->
      Machine.invoke simmem_index
        (Classic.Monotone_snapshot.update pid ~step:t
           (cell_content ~t ~input ~views))
        (fun _ -> Value.(list [ sym "scan"; int t; input; list views ]))
    | {
        Value.node =
          List
            [
              { node = Sym "scan"; _ };
              { node = Int t; _ };
              input;
              { node = List views; _ };
            ];
        _;
      } ->
      Machine.invoke simmem_index Classic.Monotone_snapshot.scan (fun view ->
          let views = views @ [ view ] in
          if t < p.steps then
            Value.(list [ sym "write"; int (t + 1); input; list views ])
          else Value.(list [ sym "halt"; p.decide ~pid ~input ~views ]))
    | { Value.node = List [ { node = Sym "halt"; _ }; v ]; _ } -> Machine.Decide v
    | s -> Machine.bad_state ~machine:name ~pid s
  in
  Machine.make ~name ~init ~delta

let direct_specs (p : t) : Obj_spec.t array =
  [| Classic.Monotone_snapshot.spec ~m:p.n_sim () |]

(* All decision vectors reachable in direct executions (every schedule),
   via the model checker's configuration graph: the reference set the
   simulation's outputs must fall into. *)
let direct_outcomes ?(max_states = 100_000) (p : t) ~inputs =
  let machine = direct_machine p in
  let specs = direct_specs p in
  let graph = Lbsa_modelcheck.Graph.build ~max_states ~machine ~specs ~inputs () in
  Lbsa_modelcheck.Graph.require_complete graph;
  let outcomes = ref [] in
  Lbsa_modelcheck.Graph.iter_nodes
    (fun _ config ->
      if Config.all_halted config then begin
        let vector =
          Value.list
            (List.map
               (fun pid -> Option.get (Config.decision config pid))
               (Lbsa_util.Listx.range 0 (p.n_sim - 1)))
        in
        if not (List.exists (Value.equal vector) !outcomes) then
          outcomes := vector :: !outcomes
      end)
    graph;
  !outcomes

(* --- example protocols -------------------------------------------------- *)

(* Inputs seen in a view: the input components of its non-NIL cells. *)
let inputs_of_view view =
  List.filter_map
    (fun cell ->
      match cell with
      | { Value.node = Pair (_, { node = List [ _; input; _ ]; _ }); _ } ->
        Some input
      | { Value.node = Nil; _ } -> None
      | c -> invalid_arg (Fmt.str "Sim_protocol: bad cell %a" Value.pp c))
    (Value.to_list_exn view)

let min_value = function
  | [] -> invalid_arg "Sim_protocol.min_value: empty"
  | v :: rest ->
    List.fold_left (fun acc x -> if Value.compare x acc < 0 then x else acc) v rest

(* Decide the minimum input visible in the final view. *)
let min_seen ~n_sim ~steps : t =
  {
    name = Fmt.str "min-seen-%d-%d" n_sim steps;
    n_sim;
    steps;
    decide =
      (fun ~pid:_ ~input:_ ~views ->
        match List.rev views with
        | last :: _ -> min_value (inputs_of_view last)
        | [] -> invalid_arg "min_seen: no views");
  }

(* Decide the full set of inputs visible in the final view (a
   participating-set flavor: outputs are comparable sets). *)
let participants ~n_sim ~steps : t =
  {
    name = Fmt.str "participants-%d-%d" n_sim steps;
    n_sim;
    steps;
    decide =
      (fun ~pid:_ ~input:_ ~views ->
        match List.rev views with
        | last :: _ -> Value.Set_.of_list (inputs_of_view last)
        | [] -> invalid_arg "participants: no views");
  }
