(** Umbrella module: the full public API of the "Life Beyond Set
    Agreement" reproduction, re-exported under one roof.

    Layering (bottom-up):
    - {!Value}, {!Op}, {!Obj_spec}, {!Shistory}: sequential
      specifications of linearizable shared objects;
    - the object zoo: {!Register}, {!Consensus_obj}, {!Sa2}, {!Nk_sa},
      {!Pac}, {!Pac_nm}, {!O_n}, {!O_prime}, {!Classic};
    - {!Machine}, {!Config}, {!Scheduler}, {!Executor}, {!Trace}: the
      asynchronous shared-memory runtime;
    - {!Chistory}, {!Lin_checker}: linearizability;
    - {!Implementation}, {!Harness} and the paper's constructions
      {!Oprime_impl}, {!Pac_nm_impl}, {!Facets}, {!Snapshot_impl};
    - tasks and protocols: {!Dac}, {!Dac_from_pac}, {!Consensus_task},
      {!Consensus_protocols}, {!Kset_task}, {!Kset_protocols},
      {!Candidates};
    - the model checker: {!Cgraph}, {!Canon}, {!Valence}, {!Bivalency},
      {!Solvability};
    - the conformance fuzzer: {!Fuzz_case}, {!Fuzz_targets},
      {!Fuzz_engine}, {!Fuzz_mutant};
    - the hierarchy toolkit: {!Power}, {!Level}, {!Separation};
    - the verification service: {!Serve_api}, {!Serve_wire},
      {!Serve_store}, {!Serve_daemon}, {!Serve_client}. *)

module Prng = Lbsa_util.Prng
module Listx = Lbsa_util.Listx
module Rio = Lbsa_util.Rio

module Value = Lbsa_spec.Value
module Op = Lbsa_spec.Op
module Obj_spec = Lbsa_spec.Obj_spec
module Shistory = Lbsa_spec.Shistory

module Register = Lbsa_objects.Register
module Consensus_obj = Lbsa_objects.Consensus_obj
module Sa2 = Lbsa_objects.Sa2
module Nk_sa = Lbsa_objects.Nk_sa
module Pac = Lbsa_objects.Pac
module Pac_nm = Lbsa_objects.Pac_nm
module O_n = Lbsa_objects.O_n
module O_prime = Lbsa_objects.O_prime
module Classic = Lbsa_objects.Classic
module Registry = Lbsa_objects.Registry

module Supervisor = Lbsa_runtime.Supervisor
module Crashdrive = Lbsa_runtime.Crashdrive
module Machine = Lbsa_runtime.Machine
module Config = Lbsa_runtime.Config
module Scheduler = Lbsa_runtime.Scheduler
module Executor = Lbsa_runtime.Executor
module Trace = Lbsa_runtime.Trace
module Fault = Lbsa_runtime.Fault
module Substrate = Lbsa_runtime.Substrate

module Chistory = Lbsa_linearizability.Chistory
module Lin_checker = Lbsa_linearizability.Checker
module Lin_gen = Lbsa_linearizability.Gen

module Implementation = Lbsa_implement.Implementation
module Harness = Lbsa_implement.Harness
module Oprime_impl = Lbsa_implement.Oprime_impl
module Pac_nm_impl = Lbsa_implement.Pac_nm_impl
module Facets = Lbsa_implement.Facets
module Snapshot_impl = Lbsa_implement.Snapshot_impl
module Universal = Lbsa_implement.Universal

module Dac = Lbsa_protocols.Dac
module Dac_from_pac = Lbsa_protocols.Dac_from_pac
module Consensus_task = Lbsa_protocols.Consensus_task
module Consensus_protocols = Lbsa_protocols.Consensus_protocols
module Kset_task = Lbsa_protocols.Kset_task
module Kset_protocols = Lbsa_protocols.Kset_protocols
module Candidates = Lbsa_protocols.Candidates
module Safe_agreement = Lbsa_protocols.Safe_agreement
module Obstruction_free = Lbsa_protocols.Obstruction_free
module View_change = Lbsa_protocols.View_change

module Canon = Lbsa_modelcheck.Canon
module Cgraph = Lbsa_modelcheck.Graph
module Checkpoint = Lbsa_modelcheck.Checkpoint
module Ctbl = Lbsa_modelcheck.Ctbl
module Ctbl_sharded = Lbsa_modelcheck.Ctbl_sharded
module Mirror = Lbsa_modelcheck.Mirror
module Segstore = Lbsa_modelcheck.Segstore
module Valence = Lbsa_modelcheck.Valence
module Bivalency = Lbsa_modelcheck.Bivalency
module Solvability = Lbsa_modelcheck.Solvability
module Liveness = Lbsa_modelcheck.Liveness

module Fuzz_case = Lbsa_fuzz.Fuzz_case
module Fuzz_targets = Lbsa_fuzz.Targets
module Fuzz_engine = Lbsa_fuzz.Engine
module Fuzz_mutant = Lbsa_fuzz.Mutant
module Lasso = Lbsa_fuzz.Lasso

module Sim_protocol = Lbsa_bg.Sim_protocol
module Bg_simulation = Lbsa_bg.Bg_simulation

module Serve_api = Lbsa_serve.Api
module Serve_wire = Lbsa_serve.Wire
module Serve_store = Lbsa_serve.Store
module Serve_daemon = Lbsa_serve.Daemon
module Serve_client = Lbsa_serve.Client

module Power = Lbsa_hierarchy.Power
module Level = Lbsa_hierarchy.Level
module Separation = Lbsa_hierarchy.Separation
module Qadri = Lbsa_hierarchy.Qadri
