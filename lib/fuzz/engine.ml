open Lbsa_spec
open Lbsa_runtime
open Lbsa_implement
open Lbsa_linearizability

(* The fuzzing engine.  Implementation campaigns run random (workload,
   schedule, fault, nondeterminism) cases through Implement.Harness and
   feed the recorded concurrent history — pending calls included — to
   the Wing-Gong oracle; spec campaigns round-trip the positive and
   negative history generators through the checker.  Trials fan out
   across domains with one pure PRNG substream per trial, so the first
   failing trial index (and hence the report) is identical for every
   domain count. *)

module Prng = Lbsa_util.Prng

type kind =
  | Violation  (* harness history rejected by the linearizability oracle *)
  | Broken of string  (* spec-level generator round-trip failed *)
  | Crash of string  (* harness or program raised *)

type failure = {
  target : string;
  trial : int;  (* lowest failing trial index — the reproduction handle *)
  seed : int;
  kind : kind;
  case : Fuzz_case.t;
  history : Chistory.t;
  pending : Checker.pending list;
  shrunk : (Fuzz_case.t * Chistory.t) option;
}

type report = {
  rtarget : string;
  trials : int;
  completed : int;
      (* trials [0, completed) all ran: the contiguous prefix that a
         resumed campaign can skip.  Equals [trials] on a full run. *)
  failure : failure option;
  outcome : Supervisor.outcome;  (* Done unless the campaign was cut short *)
  domains_used : int;
  wall_s : float;
}

let default_domains =
  lazy (max 1 (min 8 (Domain.recommended_domain_count ())))

(* --- evaluation -------------------------------------------------------- *)

type eval =
  | Ok_run
  | Bad of kind * Chistory.t * Checker.pending list

let same_kind a b =
  match (a, b) with
  | Violation, Violation -> true
  | Broken _, Broken _ -> true
  | Crash _, Crash _ -> true
  | _ -> false

(* Checker sessions are not thread-safe and [fan] runs trials on several
   domains, so campaigns hold one session per domain in domain-local
   storage.  Value interning itself is global and domain-safe now (the
   hash-consed [Value] core), so what a session shares across a domain's
   trials is only the spec-transition and state-set memos.  [session]
   below is a thunk fetching the calling domain's session; outcomes
   never depend on session state, so determinism across domain counts is
   untouched. *)
let dls_sessions spec =
  let key = Domain.DLS.new_key (fun () -> Checker.session spec) in
  fun () -> Domain.DLS.get key

let eval_impl_case ?session ~(impl : Implementation.t) (case : Fuzz_case.t) :
    eval =
  let n = Array.length case.workloads in
  let scheduler = Fuzz_case.scheduler ~n case in
  let nondet = Harness.Random (Prng.create case.nondet_seed) in
  let session = Option.map (fun get -> get ()) session in
  match
    Harness.check ?session ~nondet ~impl ~workloads:case.workloads ~scheduler
      ()
  with
  | _, Checker.Linearizable _ -> Ok_run
  | run, Checker.Not_linearizable -> Bad (Violation, run.history, run.pending)
  | exception e -> Bad (Crash (Printexc.to_string e), [], [])

(* Spec-level round trip, driven only by the case's workloads and
   nondet seed: the positive generator must produce a well-formed
   linearizable history, and [Gen.corrupt] must either certify a
   non-linearizable perturbation or give up — never raise. *)
let eval_spec_case ?session ~(spec : Obj_spec.t) (case : Fuzz_case.t) : eval =
  let prng = Prng.create case.nondet_seed in
  let check h =
    match session with
    | Some get -> Checker.check_with (get ()) h
    | None -> Checker.check spec h
  in
  match Gen.linearizable_history ~prng ~spec ~workloads:case.workloads with
  | exception e -> Bad (Crash (Printexc.to_string e), [], [])
  | h -> (
    if not (Chistory.well_formed h) then
      Bad (Broken "generated history ill-formed", h, [])
    else
      match check h with
      | Checker.Not_linearizable ->
        Bad (Broken "positive fixture rejected by checker", h, [])
      | Checker.Linearizable _ -> (
        match Gen.corrupt ~prng ~spec h with
        | exception e ->
          Bad (Crash ("Gen.corrupt: " ^ Printexc.to_string e), h, [])
        | Some _ | None -> Ok_run))

(* --- deterministic multi-domain fan-out -------------------------------- *)

(* Contiguous chunks, one per domain, each scanned in ascending trial
   order; a CAS-min on the best (lowest) failing index lets domains stop
   early without ever racing past a smaller candidate.  The owner of the
   global minimum always reaches it (everything before it passes), so
   the result is the same as a sequential scan.

   Supervision: each chunk body runs under [Supervisor.run_shard] (one
   exception — or injected chaos fault — is caught in its own domain
   and the chunk retried; trials are pure functions of their substream,
   so a retry rescans to the same result), and the budget is polled
   before every trial.  [completed] is the contiguous prefix of trials
   known to have run, the resume point for a checkpointed campaign. *)
type 'a fan_result = {
  hit : (int * 'a) option;
  fan_domains : int;
  fan_completed : int;
  fan_outcome : Supervisor.outcome;
}

let fan ?domains ?(start = 0) ?(budget = Supervisor.Budget.unlimited) ~trials
    ~(run : int -> 'a option) () : 'a fan_result =
  let domains =
    match domains with
    | Some d ->
      if d < 1 then invalid_arg "Engine.fan: domains must be >= 1" else d
    | None -> Lazy.force default_domains
  in
  if start < 0 || start > trials then
    invalid_arg "Engine.fan: start out of range";
  let span = trials - start in
  let d = max 1 (min domains span) in
  if span = 0 then
    { hit = None; fan_domains = 1; fan_completed = trials; fan_outcome = Done }
  else begin
    let best = Atomic.make max_int in
    let found = Array.make d None in
    let reached = Array.make d start in
    let stop_reason = Array.make d None in
    let chunk = (span + d - 1) / d in
    let lo_of k = start + (k * chunk) in
    let hi_of k = min trials (lo_of k + chunk) in
    let work k () =
      let lo = lo_of k and hi = hi_of k in
      (* Reset per attempt so a retried chunk rescans deterministically. *)
      found.(k) <- None;
      stop_reason.(k) <- None;
      let i = ref lo in
      let running = ref true in
      while !running && !i < hi && !i < Atomic.get best do
        match Supervisor.Budget.stop budget with
        | Some o ->
          stop_reason.(k) <- Some o;
          running := false
        | None ->
          (match run !i with
          | Some f ->
            found.(k) <- Some (!i, f);
            let rec cas_min () =
              let b = Atomic.get best in
              if !i < b && not (Atomic.compare_and_set best b !i) then
                cas_min ()
            in
            cas_min ();
            i := hi  (* later trials in this chunk cannot beat our own find *)
          | None -> ());
          incr i
      done;
      reached.(k) <- min !i hi
    in
    let shard k =
      match Supervisor.run_shard ~worker:k (work k) with
      | Ok () -> None
      | Error (exn, attempts) ->
        Some (Supervisor.Worker_failed { worker = k; exn; attempts })
    in
    let failures =
      if d = 1 then [ shard 0 ]
      else begin
        let spawned =
          List.init (d - 1) (fun k -> Domain.spawn (fun () -> shard (k + 1)))
        in
        let first = shard 0 in
        first :: List.map Domain.join spawned
      end
    in
    let hit =
      Array.fold_left
        (fun acc x ->
          match (acc, x) with
          | Some (i, _), Some (j, _) when j < i -> x
          | None, x -> x
          | acc, _ -> acc)
        None found
    in
    (* Contiguous completed prefix: chunk k extends it only if every
       chunk before it finished its whole range. *)
    let fan_completed =
      let rec go k =
        if k >= d then trials
        else if reached.(k) >= hi_of k then go (k + 1)
        else reached.(k)
      in
      go 0
    in
    let fan_outcome =
      match List.find_map Fun.id failures with
      | Some o -> o
      | None -> (
        match Array.find_opt Option.is_some stop_reason with
        | Some (Some o) -> o
        | _ -> Done)
    in
    { hit; fan_domains = d; fan_completed; fan_outcome }
  end

(* --- shrinking --------------------------------------------------------- *)

(* Greedy first-improvement descent over [Fuzz_case.shrinks], keeping a
   candidate only when it fails with the SAME kind (an oracle violation
   must not shrink into a mere crash and vice versa).  Bounded by a
   candidate-evaluation budget (default {!default_shrink_budget},
   configurable end to end from the CLI) and by the run's deadline: a
   fired [deadline] stops the descent at the best case found so far —
   shrinking is a convenience, never worth blowing the run's budget.
   The returned step count says how many candidates were actually
   accepted: 0 means the result IS the original case (budget 0, or a
   deadline that fired before any candidate was evaluated) and must not
   be reported as a shrink. *)
let default_shrink_budget = 400

let shrink_case ?(budget = default_shrink_budget)
    ?(deadline = Supervisor.Budget.unlimited) ~eval ~kind
    ~(case : Fuzz_case.t) ~history ~pending () =
  let budget = ref budget in
  let steps = ref 0 in
  let expired () = Supervisor.Budget.stop deadline <> None in
  let rec descend case history pending =
    let next =
      List.find_map
        (fun c ->
          if !budget <= 0 || expired () then None
          else begin
            decr budget;
            match eval c with
            | Bad (k, h, p) when same_kind kind k -> Some (c, h, p)
            | _ -> None
          end)
        (Fuzz_case.shrinks case)
    in
    match next with
    | Some (c, h, p) ->
      incr steps;
      descend c h p
    | None -> (case, history, pending, !steps)
  in
  descend case history pending

(* --- campaigns --------------------------------------------------------- *)

let campaign ?domains ?(shrink = true) ?shrink_budget ?(start = 0) ?budget
    ~trials ~seed ~name ~gen_case ~eval () =
  if trials < 1 then invalid_arg "Engine.campaign: trials must be >= 1";
  let t0 = Unix.gettimeofday () in
  let run trial =
    let case = gen_case (Prng.of_substream ~seed ~index:trial) in
    match eval case with
    | Ok_run -> None
    | Bad (kind, history, pending) -> Some (kind, case, history, pending)
  in
  let r = fan ?domains ~start ?budget ~trials ~run () in
  let failure =
    Option.map
      (fun (trial, (kind, case, history, pending)) ->
        let shrunk =
          if not shrink then None
          else
            let c, _, _, steps =
              shrink_case ?budget:shrink_budget ?deadline:budget ~eval ~kind
                ~case ~history ~pending ()
            in
            (* A zero-step descent (budget 0, or the deadline fired
               before the first candidate) is the original case — not a
               shrink.  And a deadline firing mid-descent must not let a
               stale candidate through: re-run the final case and report
               it only if it still fails the same way.  [eval] is
               deterministic, so a reproduction failure here is a bug in
               the shrinker itself — fall back to the unshrunk case. *)
            if steps = 0 then None
            else
              match eval c with
              | Bad (k, h', _) when same_kind kind k -> Some (c, h')
              | Bad _ | Ok_run -> None
        in
        { target = name; trial; seed; kind; case; history; pending; shrunk })
      r.hit
  in
  {
    rtarget = name;
    trials;
    completed = r.fan_completed;
    failure;
    outcome = r.fan_outcome;
    domains_used = r.fan_domains;
    wall_s = Unix.gettimeofday () -. t0;
  }

let fuzz_impl ?domains ?shrink ?shrink_budget ?start ?budget ?(faults = 0)
    ?(ops_per_proc = 4) ~trials ~seed (t : Targets.impl_target) =
  let gen_case prng =
    Fuzz_case.gen ~prng
      ~gen_workloads:(t.gen_workloads ~ops_per_proc)
      ~procs:t.iprocs ~max_faults:faults ()
  in
  campaign ?domains ?shrink ?shrink_budget ?start ?budget ~trials ~seed
    ~name:("impl " ^ t.idesc) ~gen_case
    ~eval:(eval_impl_case ~session:(dls_sessions t.impl.target) ~impl:t.impl)
    ()

let fuzz_spec ?domains ?shrink ?shrink_budget ?start ?budget ?(procs = 3)
    ?(ops_per_proc = 4) ~trials ~seed (t : Targets.spec_target) =
  let gen_case prng =
    Fuzz_case.gen ~prng
      ~gen_workloads:(Targets.spec_workloads t ~procs ~ops_per_proc)
      ~procs ~max_faults:0 ()
  in
  campaign ?domains ?shrink ?shrink_budget ?start ?budget ~trials ~seed
    ~name:("spec " ^ t.desc) ~gen_case
    ~eval:(eval_spec_case ~session:(dls_sessions t.spec) ~spec:t.spec) ()

(* --- campaign checkpoints ----------------------------------------------- *)

(* A fuzz checkpoint is tiny: trials are pure functions of
   (seed, trial index), so "where we were" is just the completed-prefix
   length per target — no case material, no values, no re-interning
   concerns.  Resuming replays nothing and re-randomizes nothing. *)
type checkpoint = { ckpt_seed : int; ckpt_done : (string * int) list }

let checkpoint_magic = "LBSA-FUZZ-CHECKPOINT/1\n"

let save_checkpoint ~file (c : checkpoint) =
  let tmp = file ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc checkpoint_magic;
      Marshal.to_channel oc c []);
  Sys.rename tmp file

let load_checkpoint ~file : checkpoint =
  let ic =
    try open_in_bin file
    with Sys_error e -> failwith (Fmt.str "Engine.load_checkpoint: %s" e)
  in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let header =
        try really_input_string ic (String.length checkpoint_magic)
        with End_of_file -> ""
      in
      if not (String.equal header checkpoint_magic) then
        failwith
          (Fmt.str
             "Engine.load_checkpoint: %s is not a version-1 fuzz checkpoint"
             file);
      (Marshal.from_channel ic : checkpoint))

let checkpoint_of_reports ~seed reports =
  { ckpt_seed = seed; ckpt_done = List.map (fun r -> (r.rtarget, r.completed)) reports }

let resume_start (c : checkpoint) ~name =
  match List.assoc_opt name c.ckpt_done with Some n -> n | None -> 0

(* --- reporting --------------------------------------------------------- *)

let pp_kind ppf = function
  | Violation -> Fmt.string ppf "linearizability violation"
  | Broken why -> Fmt.pf ppf "generator round-trip failure: %s" why
  | Crash exn -> Fmt.pf ppf "crash: %s" exn

let pp_pending ppf (pending : Checker.pending list) =
  match pending with
  | [] -> ()
  | ps ->
    Fmt.pf ppf "@,pending: %a"
      Fmt.(
        list ~sep:(any "; ") (fun ppf (p : Checker.pending) ->
            pf ppf "p%d:%a" p.pid Op.pp p.op))
      ps

let pp_failure ppf f =
  Fmt.pf ppf
    "@[<v>FAIL %s: %a@,  reproduce with --seed %d (trial %d)@,@[<v 2>case:@,%a@]@,@[<v 2>history:@,%a%a@]@]"
    f.target pp_kind f.kind f.seed f.trial Fuzz_case.pp f.case Chistory.pp
    f.history pp_pending f.pending;
  match f.shrunk with
  | None -> ()
  | Some (c, h) ->
    Fmt.pf ppf "@,@[<v 2>shrunk to %d calls:@,%a@,@[<v 2>history:@,%a@]@]"
      (Fuzz_case.n_calls c) Fuzz_case.pp c Chistory.pp h

let pp_report ppf r =
  match r.failure with
  | None when Supervisor.is_partial r.outcome ->
    Fmt.pf ppf "STOP %-24s %6d/%d trials  (%a)  %d domains  %.2fs" r.rtarget
      r.completed r.trials Supervisor.pp_outcome r.outcome r.domains_used
      r.wall_s
  | None ->
    Fmt.pf ppf "PASS %-24s %6d trials  %d domains  %.2fs" r.rtarget r.trials
      r.domains_used r.wall_s
  | Some f -> pp_failure ppf f
