open Lbsa_spec
open Lbsa_implement
open Lbsa_linearizability

(* The fuzzing engine.  Implementation campaigns run random (workload,
   schedule, fault, nondeterminism) cases through Implement.Harness and
   feed the recorded concurrent history — pending calls included — to
   the Wing-Gong oracle; spec campaigns round-trip the positive and
   negative history generators through the checker.  Trials fan out
   across domains with one pure PRNG substream per trial, so the first
   failing trial index (and hence the report) is identical for every
   domain count. *)

module Prng = Lbsa_util.Prng

type kind =
  | Violation  (* harness history rejected by the linearizability oracle *)
  | Broken of string  (* spec-level generator round-trip failed *)
  | Crash of string  (* harness or program raised *)

type failure = {
  target : string;
  trial : int;  (* lowest failing trial index — the reproduction handle *)
  seed : int;
  kind : kind;
  case : Fuzz_case.t;
  history : Chistory.t;
  pending : Checker.pending list;
  shrunk : (Fuzz_case.t * Chistory.t) option;
}

type report = {
  rtarget : string;
  trials : int;
  failure : failure option;
  domains_used : int;
  wall_s : float;
}

let default_domains =
  lazy (max 1 (min 8 (Domain.recommended_domain_count ())))

(* --- evaluation -------------------------------------------------------- *)

type eval =
  | Ok_run
  | Bad of kind * Chistory.t * Checker.pending list

let same_kind a b =
  match (a, b) with
  | Violation, Violation -> true
  | Broken _, Broken _ -> true
  | Crash _, Crash _ -> true
  | _ -> false

(* Checker sessions are not thread-safe and [fan] runs trials on several
   domains, so campaigns hold one session per domain in domain-local
   storage.  Value interning itself is global and domain-safe now (the
   hash-consed [Value] core), so what a session shares across a domain's
   trials is only the spec-transition and state-set memos.  [session]
   below is a thunk fetching the calling domain's session; outcomes
   never depend on session state, so determinism across domain counts is
   untouched. *)
let dls_sessions spec =
  let key = Domain.DLS.new_key (fun () -> Checker.session spec) in
  fun () -> Domain.DLS.get key

let eval_impl_case ?session ~(impl : Implementation.t) (case : Fuzz_case.t) :
    eval =
  let n = Array.length case.workloads in
  let scheduler = Fuzz_case.scheduler ~n case in
  let nondet = Harness.Random (Prng.create case.nondet_seed) in
  let session = Option.map (fun get -> get ()) session in
  match
    Harness.check ?session ~nondet ~impl ~workloads:case.workloads ~scheduler
      ()
  with
  | _, Checker.Linearizable _ -> Ok_run
  | run, Checker.Not_linearizable -> Bad (Violation, run.history, run.pending)
  | exception e -> Bad (Crash (Printexc.to_string e), [], [])

(* Spec-level round trip, driven only by the case's workloads and
   nondet seed: the positive generator must produce a well-formed
   linearizable history, and [Gen.corrupt] must either certify a
   non-linearizable perturbation or give up — never raise. *)
let eval_spec_case ?session ~(spec : Obj_spec.t) (case : Fuzz_case.t) : eval =
  let prng = Prng.create case.nondet_seed in
  let check h =
    match session with
    | Some get -> Checker.check_with (get ()) h
    | None -> Checker.check spec h
  in
  match Gen.linearizable_history ~prng ~spec ~workloads:case.workloads with
  | exception e -> Bad (Crash (Printexc.to_string e), [], [])
  | h -> (
    if not (Chistory.well_formed h) then
      Bad (Broken "generated history ill-formed", h, [])
    else
      match check h with
      | Checker.Not_linearizable ->
        Bad (Broken "positive fixture rejected by checker", h, [])
      | Checker.Linearizable _ -> (
        match Gen.corrupt ~prng ~spec h with
        | exception e ->
          Bad (Crash ("Gen.corrupt: " ^ Printexc.to_string e), h, [])
        | Some _ | None -> Ok_run))

(* --- deterministic multi-domain fan-out -------------------------------- *)

(* Contiguous chunks, one per domain, each scanned in ascending trial
   order; a CAS-min on the best (lowest) failing index lets domains stop
   early without ever racing past a smaller candidate.  The owner of the
   global minimum always reaches it (everything before it passes), so
   the result is the same as a sequential scan. *)
let fan ?domains ~trials ~(run : int -> 'a option) () : (int * 'a) option * int
    =
  let domains =
    match domains with
    | Some d ->
      if d < 1 then invalid_arg "Engine.fan: domains must be >= 1" else d
    | None -> Lazy.force default_domains
  in
  let d = max 1 (min domains trials) in
  if d = 1 then
    let rec go i =
      if i >= trials then None
      else match run i with Some f -> Some (i, f) | None -> go (i + 1)
    in
    (go 0, 1)
  else begin
    let best = Atomic.make max_int in
    let found = Array.make d None in
    let chunk = (trials + d - 1) / d in
    let work k =
      let lo = k * chunk and hi = min trials ((k + 1) * chunk) in
      let i = ref lo in
      while !i < hi && !i < Atomic.get best do
        (match run !i with
        | Some f ->
          found.(k) <- Some (!i, f);
          let rec cas_min () =
            let b = Atomic.get best in
            if !i < b && not (Atomic.compare_and_set best b !i) then cas_min ()
          in
          cas_min ();
          i := hi  (* later trials in this chunk cannot beat our own find *)
        | None -> ());
        incr i
      done
    in
    let spawned =
      List.init (d - 1) (fun k -> Domain.spawn (fun () -> work (k + 1)))
    in
    work 0;
    List.iter Domain.join spawned;
    let result =
      Array.fold_left
        (fun acc x ->
          match (acc, x) with
          | Some (i, _), Some (j, _) when j < i -> x
          | None, x -> x
          | acc, _ -> acc)
        None found
    in
    (result, d)
  end

(* --- shrinking --------------------------------------------------------- *)

(* Greedy first-improvement descent over [Fuzz_case.shrinks], keeping a
   candidate only when it fails with the SAME kind (an oracle violation
   must not shrink into a mere crash and vice versa).  Bounded by a
   candidate-evaluation budget; termination also follows from the
   well-founded shrink measure. *)
let shrink_case ~eval ~kind ~(case : Fuzz_case.t) ~history ~pending () =
  let budget = ref 400 in
  let rec descend case history pending =
    let next =
      List.find_map
        (fun c ->
          if !budget <= 0 then None
          else begin
            decr budget;
            match eval c with
            | Bad (k, h, p) when same_kind kind k -> Some (c, h, p)
            | _ -> None
          end)
        (Fuzz_case.shrinks case)
    in
    match next with
    | Some (c, h, p) -> descend c h p
    | None -> (case, history, pending)
  in
  descend case history pending

(* --- campaigns --------------------------------------------------------- *)

let campaign ?domains ?(shrink = true) ~trials ~seed ~name ~gen_case ~eval () =
  if trials < 1 then invalid_arg "Engine.campaign: trials must be >= 1";
  let t0 = Unix.gettimeofday () in
  let run trial =
    let case = gen_case (Prng.of_substream ~seed ~index:trial) in
    match eval case with
    | Ok_run -> None
    | Bad (kind, history, pending) -> Some (kind, case, history, pending)
  in
  let found, domains_used = fan ?domains ~trials ~run () in
  let failure =
    Option.map
      (fun (trial, (kind, case, history, pending)) ->
        let shrunk =
          if not shrink then None
          else
            let c, h, _ =
              shrink_case ~eval ~kind ~case ~history ~pending ()
            in
            Some (c, h)
        in
        { target = name; trial; seed; kind; case; history; pending; shrunk })
      found
  in
  {
    rtarget = name;
    trials;
    failure;
    domains_used;
    wall_s = Unix.gettimeofday () -. t0;
  }

let fuzz_impl ?domains ?shrink ?(faults = 0) ?(ops_per_proc = 4) ~trials ~seed
    (t : Targets.impl_target) =
  let gen_case prng =
    Fuzz_case.gen ~prng
      ~gen_workloads:(t.gen_workloads ~ops_per_proc)
      ~procs:t.iprocs ~max_faults:faults ()
  in
  campaign ?domains ?shrink ~trials ~seed ~name:("impl " ^ t.idesc) ~gen_case
    ~eval:(eval_impl_case ~session:(dls_sessions t.impl.target) ~impl:t.impl)
    ()

let fuzz_spec ?domains ?shrink ?(procs = 3) ?(ops_per_proc = 4) ~trials ~seed
    (t : Targets.spec_target) =
  let gen_case prng =
    Fuzz_case.gen ~prng
      ~gen_workloads:(Targets.spec_workloads t ~procs ~ops_per_proc)
      ~procs ~max_faults:0 ()
  in
  campaign ?domains ?shrink ~trials ~seed ~name:("spec " ^ t.desc) ~gen_case
    ~eval:(eval_spec_case ~session:(dls_sessions t.spec) ~spec:t.spec) ()

(* --- reporting --------------------------------------------------------- *)

let pp_kind ppf = function
  | Violation -> Fmt.string ppf "linearizability violation"
  | Broken why -> Fmt.pf ppf "generator round-trip failure: %s" why
  | Crash exn -> Fmt.pf ppf "crash: %s" exn

let pp_pending ppf (pending : Checker.pending list) =
  match pending with
  | [] -> ()
  | ps ->
    Fmt.pf ppf "@,pending: %a"
      Fmt.(
        list ~sep:(any "; ") (fun ppf (p : Checker.pending) ->
            pf ppf "p%d:%a" p.pid Op.pp p.op))
      ps

let pp_failure ppf f =
  Fmt.pf ppf
    "@[<v>FAIL %s: %a@,  reproduce with --seed %d (trial %d)@,@[<v 2>case:@,%a@]@,@[<v 2>history:@,%a%a@]@]"
    f.target pp_kind f.kind f.seed f.trial Fuzz_case.pp f.case Chistory.pp
    f.history pp_pending f.pending;
  match f.shrunk with
  | None -> ()
  | Some (c, h) ->
    Fmt.pf ppf "@,@[<v 2>shrunk to %d calls:@,%a@,@[<v 2>history:@,%a@]@]"
      (Fuzz_case.n_calls c) Fuzz_case.pp c Chistory.pp h

let pp_report ppf r =
  match r.failure with
  | None ->
    Fmt.pf ppf "PASS %-24s %6d trials  %d domains  %.2fs" r.rtarget r.trials
      r.domains_used r.wall_s
  | Some f -> pp_failure ppf f
