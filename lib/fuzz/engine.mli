(** The fuzzing engine: random-case campaigns against implementations
    (harness + linearizability oracle, crash faults included via pending
    calls) and against specifications (generator round-trips), with
    deterministic multi-domain fan-out and counterexample shrinking. *)

open Lbsa_spec
open Lbsa_linearizability

type kind =
  | Violation  (** harness history rejected by the linearizability oracle *)
  | Broken of string  (** spec-level generator round-trip failed *)
  | Crash of string  (** harness or program raised *)

type failure = {
  target : string;
  trial : int;  (** lowest failing trial index — the reproduction handle *)
  seed : int;
  kind : kind;
  case : Fuzz_case.t;
  history : Chistory.t;
  pending : Checker.pending list;
  shrunk : (Fuzz_case.t * Chistory.t) option;
}

type report = {
  rtarget : string;
  trials : int;
  failure : failure option;
  domains_used : int;
  wall_s : float;
}

type eval = Ok_run | Bad of kind * Chistory.t * Checker.pending list

val dls_sessions : Obj_spec.t -> unit -> Checker.session
(** A domain-local [Checker.session] per calling domain for the given
    spec, so campaign trials fanned across domains each reuse their own
    interning tables.  Outcomes never depend on session state. *)

val eval_impl_case :
  ?session:(unit -> Checker.session) ->
  impl:Lbsa_implement.Implementation.t ->
  Fuzz_case.t ->
  eval
(** [session], when given, must produce sessions for [impl.target]
    (e.g. {!dls_sessions}). *)

val eval_spec_case :
  ?session:(unit -> Checker.session) -> spec:Obj_spec.t -> Fuzz_case.t -> eval
(** [session], when given, must produce sessions for [spec]. *)

val fan :
  ?domains:int ->
  trials:int ->
  run:(int -> 'a option) ->
  unit ->
  (int * 'a) option * int
(** Scan trial indices [0, trials) for the lowest failing one, fanning
    contiguous chunks across domains with a CAS-min cutoff.  The result
    (and every per-trial PRNG, when [run] derives it with
    {!Lbsa_util.Prng.of_substream}) is identical for every domain count.
    Also returns the number of domains used. *)

val shrink_case :
  eval:(Fuzz_case.t -> eval) ->
  kind:kind ->
  case:Fuzz_case.t ->
  history:Chistory.t ->
  pending:Checker.pending list ->
  unit ->
  Fuzz_case.t * Chistory.t * Checker.pending list
(** Greedy first-improvement descent over {!Fuzz_case.shrinks}; a
    candidate is kept only when it fails with the same [kind]. *)

val fuzz_impl :
  ?domains:int ->
  ?shrink:bool ->
  ?faults:int ->
  ?ops_per_proc:int ->
  trials:int ->
  seed:int ->
  Targets.impl_target ->
  report

val fuzz_spec :
  ?domains:int ->
  ?shrink:bool ->
  ?procs:int ->
  ?ops_per_proc:int ->
  trials:int ->
  seed:int ->
  Targets.spec_target ->
  report

val pp_kind : Format.formatter -> kind -> unit
val pp_failure : Format.formatter -> failure -> unit
val pp_report : Format.formatter -> report -> unit
