(** The fuzzing engine: random-case campaigns against implementations
    (harness + linearizability oracle, crash faults included via pending
    calls) and against specifications (generator round-trips), with
    deterministic multi-domain fan-out and counterexample shrinking. *)

open Lbsa_spec
open Lbsa_linearizability

type kind =
  | Violation  (** harness history rejected by the linearizability oracle *)
  | Broken of string  (** spec-level generator round-trip failed *)
  | Crash of string  (** harness or program raised *)

type failure = {
  target : string;
  trial : int;  (** lowest failing trial index — the reproduction handle *)
  seed : int;
  kind : kind;
  case : Fuzz_case.t;
  history : Chistory.t;
  pending : Checker.pending list;
  shrunk : (Fuzz_case.t * Chistory.t) option;
      (** a strictly smaller case re-validated to fail with the same
          [kind]; [None] when shrinking was off, found nothing, or its
          budget/deadline left no genuine (re-validated) shrink *)
}

type report = {
  rtarget : string;
  trials : int;
  completed : int;
      (** trials [0, completed) all ran — the contiguous prefix a
          resumed campaign skips; equals [trials] on a full run *)
  failure : failure option;
  outcome : Lbsa_runtime.Supervisor.outcome;
      (** [Done] unless the campaign was cut short by its budget or an
          exhausted worker *)
  domains_used : int;
  wall_s : float;
}

type eval = Ok_run | Bad of kind * Chistory.t * Checker.pending list

val dls_sessions : Obj_spec.t -> unit -> Checker.session
(** A domain-local [Checker.session] per calling domain for the given
    spec, so campaign trials fanned across domains each reuse their own
    interning tables.  Outcomes never depend on session state. *)

val eval_impl_case :
  ?session:(unit -> Checker.session) ->
  impl:Lbsa_implement.Implementation.t ->
  Fuzz_case.t ->
  eval
(** [session], when given, must produce sessions for [impl.target]
    (e.g. {!dls_sessions}). *)

val eval_spec_case :
  ?session:(unit -> Checker.session) -> spec:Obj_spec.t -> Fuzz_case.t -> eval
(** [session], when given, must produce sessions for [spec]. *)

type 'a fan_result = {
  hit : (int * 'a) option;  (** lowest failing trial, if any *)
  fan_domains : int;
  fan_completed : int;
      (** contiguous prefix of trials known to have run *)
  fan_outcome : Lbsa_runtime.Supervisor.outcome;
}

val fan :
  ?domains:int ->
  ?start:int ->
  ?budget:Lbsa_runtime.Supervisor.Budget.t ->
  trials:int ->
  run:(int -> 'a option) ->
  unit ->
  'a fan_result
(** Scan trial indices [start, trials) for the lowest failing one,
    fanning contiguous chunks across domains with a CAS-min cutoff.  The
    result (and every per-trial PRNG, when [run] derives it with
    {!Lbsa_util.Prng.of_substream}) is identical for every domain count.
    Chunk bodies run under {!Lbsa_runtime.Supervisor.run_shard} — a
    worker exception is isolated and the chunk retried, surfacing as
    [Worker_failed] only when retries are exhausted — and [budget] is
    polled before every trial. *)

val default_shrink_budget : int
(** 400 candidate evaluations. *)

val shrink_case :
  ?budget:int ->
  ?deadline:Lbsa_runtime.Supervisor.Budget.t ->
  eval:(Fuzz_case.t -> eval) ->
  kind:kind ->
  case:Fuzz_case.t ->
  history:Chistory.t ->
  pending:Checker.pending list ->
  unit ->
  Fuzz_case.t * Chistory.t * Checker.pending list * int
(** Greedy first-improvement descent over {!Fuzz_case.shrinks}; a
    candidate is kept only when it fails with the same [kind].  Stops
    after [budget] candidate evaluations (default
    {!default_shrink_budget}) or as soon as [deadline] fires, returning
    the best case found so far plus the number of accepted shrink
    steps.  A step count of 0 means the result is the original case
    (e.g. budget 0): callers must not present it as a shrink, and
    {!fuzz_impl}/{!fuzz_spec} campaigns re-validate the final case and
    record [shrunk = None] when nothing genuinely shrank. *)

val fuzz_impl :
  ?domains:int ->
  ?shrink:bool ->
  ?shrink_budget:int ->
  ?start:int ->
  ?budget:Lbsa_runtime.Supervisor.Budget.t ->
  ?faults:int ->
  ?ops_per_proc:int ->
  trials:int ->
  seed:int ->
  Targets.impl_target ->
  report

val fuzz_spec :
  ?domains:int ->
  ?shrink:bool ->
  ?shrink_budget:int ->
  ?start:int ->
  ?budget:Lbsa_runtime.Supervisor.Budget.t ->
  ?procs:int ->
  ?ops_per_proc:int ->
  trials:int ->
  seed:int ->
  Targets.spec_target ->
  report

(** {2 Campaign checkpoints}

    Fuzz trials are pure functions of [(seed, trial index)], so a
    checkpoint is only the completed-prefix length per target; resuming
    re-runs targets with [~start] and reproduces exactly the trials an
    uninterrupted run would have executed. *)

type checkpoint = { ckpt_seed : int; ckpt_done : (string * int) list }

val checkpoint_of_reports : seed:int -> report list -> checkpoint
val resume_start : checkpoint -> name:string -> int
val save_checkpoint : file:string -> checkpoint -> unit

val load_checkpoint : file:string -> checkpoint
(** Raises [Failure] on a missing or foreign file. *)

val pp_kind : Format.formatter -> kind -> unit
val pp_failure : Format.formatter -> failure -> unit
val pp_report : Format.formatter -> report -> unit
