open Lbsa_spec
open Lbsa_runtime

(* One fuzz trial, as pure data: the per-process workloads, the schedule
   under which they run, the crash-fault plan carved out of it, and the
   seed resolving base-object nondeterminism.  Everything a failing
   trial needs to reproduce — and everything the shrinker perturbs — is
   in this record; re-evaluating a case is a pure function of it. *)

module Prng = Lbsa_util.Prng

type sched =
  | Rr  (* fair rotation *)
  | Rand of int  (* uniform adversary, seeded *)
  | Bursts of (int * int) list * int
      (* solo bursts (pid, length), then the seeded uniform adversary:
         the unfair schedules behind the paper's solo-run arguments *)

type t = {
  workloads : Op.t list array;
  sched : sched;
  faults : Fault.plan;
  nondet_seed : int;  (* resolves object nondeterminism in the harness *)
}

let n_calls t =
  Array.fold_left (fun acc ops -> acc + List.length ops) 0 t.workloads

(* --- schedules --------------------------------------------------------- *)

(* Solo-burst scheduler: play each burst's pid for its length (skipping
   bursts whose pid can no longer run), then fall back to the random
   scheduler.  Per-run state resets at step 0, same reuse convention as
   [Scheduler.random] and [Fault.apply]. *)
let solo_bursts ~bursts ~seed =
  let state = ref bursts in
  let prng = ref (Prng.create seed) in
  let next ~step ~runnable =
    if step = 0 then begin
      state := bursts;
      prng := Prng.create seed
    end;
    match runnable with
    | [] -> None
    | _ ->
      let rec pick () =
        match !state with
        | [] -> Some (Prng.pick !prng runnable)
        | (pid, len) :: rest ->
          if len <= 0 || not (List.mem pid runnable) then begin
            state := rest;
            pick ()
          end
          else begin
            state := (pid, len - 1) :: rest;
            Some pid
          end
      in
      pick ()
  in
  Scheduler.make
    ~name:
      (Fmt.str "bursts[%a]->random:%d"
         Fmt.(list ~sep:(any ";") (fun ppf (p, l) -> pf ppf "p%d*%d" p l))
         bursts seed)
    next

let scheduler ~n t =
  let base =
    match t.sched with
    | Rr -> Scheduler.round_robin ~n
    | Rand seed -> Scheduler.random ~seed
    | Bursts (bursts, seed) -> solo_bursts ~bursts ~seed
  in
  if t.faults = [] then base else Fault.apply t.faults base

(* --- generation -------------------------------------------------------- *)

(* The Wing-Gong checker packs linearized calls into one int bitmask, so
   a history (completed + pending calls) must fit in
   [Checker.max_calls] = 62 bits; the generator enforces the cap rather
   than letting the oracle blow up. *)
let clamp_calls workloads =
  let budget = ref Lbsa_linearizability.Checker.max_calls in
  Array.map
    (fun ops ->
      let take = min (List.length ops) !budget in
      budget := !budget - take;
      List.filteri (fun i _ -> i < take) ops)
    workloads

let gen ~prng ~(gen_workloads : Prng.t -> Op.t list array) ~procs ~max_faults
    () =
  let workloads = clamp_calls (gen_workloads prng) in
  let sched =
    match Prng.int prng 4 with
    | 0 -> Rr
    | 1 | 2 -> Rand (Prng.int prng 1_000_000_000)
    | _ ->
      let n_bursts = 1 + Prng.int prng 3 in
      let bursts =
        List.init n_bursts (fun _ ->
            (Prng.int prng (max 1 procs), 1 + Prng.int prng 8))
      in
      Bursts (bursts, Prng.int prng 1_000_000_000)
  in
  let faults =
    if max_faults <= 0 then []
    else
      let victims =
        Array.to_list (Prng.shuffle prng (Array.init procs Fun.id))
        |> List.filteri (fun i _ -> i < max_faults)
      in
      Fault.random ~prng ~victims ~max_steps:12
  in
  { workloads; sched; faults; nondet_seed = Prng.int prng 1_000_000_000 }

(* --- shrinking --------------------------------------------------------- *)

(* Candidate reductions, coarsest first (delta-debugging order): drop a
   whole process, drop a fault, drop a single operation, crash victims
   earlier, simplify the schedule.  Every candidate strictly decreases
   the measure (total ops, fault count, fault budgets, schedule rank),
   so greedy first-improvement shrinking terminates. *)
let shrinks t =
  let n = Array.length t.workloads in
  let set_workload i ops =
    let w = Array.copy t.workloads in
    w.(i) <- ops;
    { t with workloads = w }
  in
  let drop_procs =
    List.filter_map
      (fun i ->
        if t.workloads.(i) <> [] then Some (set_workload i []) else None)
      (Lbsa_util.Listx.range 0 (n - 1))
  in
  let drop_faults =
    List.mapi
      (fun j _ -> { t with faults = List.filteri (fun k _ -> k <> j) t.faults })
      t.faults
  in
  let drop_ops =
    List.concat_map
      (fun i ->
        List.mapi
          (fun j _ ->
            set_workload i (List.filteri (fun k _ -> k <> j) t.workloads.(i)))
          t.workloads.(i))
      (Lbsa_util.Listx.range 0 (n - 1))
  in
  let halve_faults =
    List.filter_map
      (fun (j, (pid, budget)) ->
        if budget >= 2 then
          Some
            {
              t with
              faults =
                List.mapi
                  (fun k f -> if k = j then (pid, budget / 2) else f)
                  t.faults;
            }
        else None)
      (List.mapi (fun j f -> (j, f)) t.faults)
  in
  let simpler_sched =
    match t.sched with
    | Bursts (_, seed) -> [ { t with sched = Rand seed } ]
    | Rand _ -> [ { t with sched = Rr } ]
    | Rr -> []
  in
  drop_procs @ drop_faults @ drop_ops @ halve_faults @ simpler_sched

(* --- printing ---------------------------------------------------------- *)

let pp_sched ppf = function
  | Rr -> Fmt.string ppf "rr"
  | Rand seed -> Fmt.pf ppf "random:%d" seed
  | Bursts (bursts, seed) ->
    Fmt.pf ppf "bursts[%a]->random:%d"
      Fmt.(list ~sep:(any ";") (fun ppf (p, l) -> pf ppf "p%d*%d" p l))
      bursts seed

let pp ppf t =
  Fmt.pf ppf "@[<v>schedule: %a@,faults: %a@,nondet seed: %d@,%a@]" pp_sched
    t.sched Fault.pp_plan t.faults t.nondet_seed
    Fmt.(
      iter_bindings
        (fun f w -> Array.iteri (fun pid ops -> f pid ops) w)
        ~sep:cut
        (fun ppf (pid, ops) ->
          pf ppf "p%d: [%a]" pid (list ~sep:(any "; ") Op.pp) ops))
    t.workloads
