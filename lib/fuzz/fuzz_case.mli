(** A fuzz trial as pure data: per-process workloads, a schedule, a
    crash-fault plan, and the seed resolving object nondeterminism.
    Re-evaluating a case is a pure function of the record, which is what
    makes seeds reproducible and shrinking sound. *)

open Lbsa_spec
open Lbsa_runtime

type sched =
  | Rr  (** fair rotation *)
  | Rand of int  (** uniform adversary, seeded *)
  | Bursts of (int * int) list * int
      (** solo bursts [(pid, length)], then the seeded uniform adversary
          — the unfair schedules behind the paper's solo-run arguments *)

type t = {
  workloads : Op.t list array;
  sched : sched;
  faults : Fault.plan;
  nondet_seed : int;
}

val n_calls : t -> int

val solo_bursts : bursts:(int * int) list -> seed:int -> Scheduler.t
(** Play each burst's pid for its length (skipping bursts whose pid can
    no longer run), then fall back to [Scheduler.random].  Per-run state
    resets at step 0, so the value is reusable across runs. *)

val scheduler : n:int -> t -> Scheduler.t
(** The case's schedule with its fault plan applied. *)

val gen :
  prng:Lbsa_util.Prng.t ->
  gen_workloads:(Lbsa_util.Prng.t -> Op.t list array) ->
  procs:int ->
  max_faults:int ->
  unit ->
  t
(** Draw a random case.  Workloads are clamped so the total call count
    fits the checker's {!Lbsa_linearizability.Checker.max_calls} bitmask
    bound. *)

val shrinks : t -> t list
(** Candidate reductions, coarsest first (delta-debugging order): drop a
    process, drop a fault, drop one op, crash victims earlier, simplify
    the schedule.  Each candidate strictly decreases a well-founded
    measure, so greedy first-improvement shrinking terminates. *)

val pp_sched : Format.formatter -> sched -> unit
val pp : Format.formatter -> t -> unit
