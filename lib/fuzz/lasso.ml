open Lbsa_modelcheck

(* Livelock-witness shrinking.

   Unlike case shrinking (Engine.shrink_case), which must re-run the
   harness per candidate, a lasso witness is a pair of walks in an
   already-built graph, so every shrink move is pure surgery on the
   walks: whenever a node appears twice in a walk, the subwalk between
   the two occurrences is a detour that can be cut without breaking
   walk validity.  Candidates are re-checked with Liveness.validate —
   the same oracle the acceptance criterion uses — which also rejects
   cuts that would drop a running process from the cycle or empty it.

   The descent is greedy first-improvement with largest-cut-first
   candidate order and a candidate-evaluation budget, mirroring
   Engine.shrink_case; everything is deterministic for a given graph
   and witness. *)

let default_budget = Engine.default_shrink_budget

let size (w : Liveness.witness) =
  List.length w.Liveness.w_prefix + List.length w.Liveness.w_cycle

let nodes_of ~src edges =
  Array.of_list (src :: List.map (fun e -> e.Graph.target) edges)

(* Remove the edges at indices [i, j). *)
let cut edges i j = List.filteri (fun k _ -> k < i || k >= j) edges

(* Index pairs (i, j) with the same node at walk positions i and j,
   largest cut first (ties by position). *)
let candidate_cuts ~src edges =
  let nodes = nodes_of ~src edges in
  let len = Array.length nodes in
  let out = ref [] in
  for i = 0 to len - 2 do
    for j = i + 1 to len - 1 do
      if nodes.(i) = nodes.(j) then out := (i, j) :: !out
    done
  done;
  List.sort
    (fun (i1, j1) (i2, j2) ->
      match compare (j2 - i2) (j1 - i1) with 0 -> compare i1 i2 | c -> c)
    !out

let shrink ?(budget = default_budget) ~machine ~specs ~substrate ~graph w =
  let validate = Liveness.validate ~machine ~specs ~substrate graph in
  let evals = ref 0 in
  let steps = ref 0 in
  let current = ref w in
  let improved = ref true in
  (* Accept the first candidate the oracle validates, then restart the
     candidate scan from the shrunk witness. *)
  let try_candidates cands make =
    let rec go = function
      | [] -> ()
      | c :: rest ->
        if !evals < budget then begin
          incr evals;
          let w' = make c in
          if validate w' then begin
            current := w';
            incr steps;
            improved := true
          end
          else go rest
        end
    in
    go cands
  in
  while !improved && !evals < budget do
    improved := false;
    let w = !current in
    try_candidates
      (candidate_cuts ~src:0 w.Liveness.w_prefix)
      (fun (i, j) -> { w with Liveness.w_prefix = cut w.Liveness.w_prefix i j });
    if not !improved then begin
      let n_edges = List.length w.Liveness.w_cycle in
      let cands =
        (* cutting the whole cycle would empty it *)
        List.filter
          (fun (i, j) -> j - i < n_edges)
          (candidate_cuts ~src:w.Liveness.w_head w.Liveness.w_cycle)
      in
      try_candidates cands (fun (i, j) ->
          { w with Liveness.w_cycle = cut w.Liveness.w_cycle i j })
    end
  done;
  (!current, !steps)
