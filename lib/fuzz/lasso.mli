(** Livelock-witness (lasso) shrinking.

    The stitched cycle {!Lbsa_modelcheck.Liveness.analyze} returns may
    revisit nodes; [shrink] cuts such detours — any subwalk between two
    occurrences of the same node, in the prefix or the cycle — by
    greedy first-improvement descent, re-checking every candidate with
    {!Lbsa_modelcheck.Liveness.validate} (which rejects cuts that would
    empty the cycle or drop a running process from it).  Deterministic
    for a given graph and witness. *)

open Lbsa_runtime
open Lbsa_modelcheck

val default_budget : int
(** {!Engine.default_shrink_budget} candidate evaluations. *)

val size : Liveness.witness -> int
(** Total step count: prefix length + cycle length. *)

val shrink :
  ?budget:int ->
  machine:Machine.t ->
  specs:Lbsa_spec.Obj_spec.t array ->
  substrate:Substrate.t ->
  graph:Graph.t ->
  Liveness.witness ->
  Liveness.witness * int
(** The shrunk witness plus the number of accepted shrink steps (0
    means the input came back unchanged — already minimal, or budget
    exhausted). *)
