open Lbsa_spec
open Lbsa_implement

(* A deliberately wrong n-PAC: Algorithm 1 with the propose-path upset
   guard flipped.  The correct object becomes permanently upset when a
   second PROPOSE(-, i) arrives with V[i] still occupied (an illegal
   history, Lemma 3.2); this mutant silently overwrites the slot
   instead, so a later DECIDE(i) happily returns the second value where
   the real object must answer ⊥ forever.

   The mutant exists to keep the fuzzer honest: [impl ~n] claims to
   implement the *correct* n-PAC from this broken base, and the oracle
   must both catch it and shrink the counterexample to its essence —
   propose(v,i); propose(w,i); decide(i), three calls on one label. *)

type view = { upset : bool; v : Value.t; l : Value.t; value : Value.t }

let view state =
  match state with
  | { Value.node = List [ { node = Bool upset; _ }; v; l; value ]; _ } ->
    { upset; v; l; value }
  | _ -> invalid_arg "Mutant.view: malformed state"

let encode { upset; v; l; value } =
  Value.list [ Value.bool upset; v; l; value ]

let get_v st i = Value.Assoc.get_or st.v (Value.int i) ~default:Value.nil
let set_v st i x = { st with v = Value.Assoc.set st.v (Value.int i) x }
let det next response : Obj_spec.branch list = [ { next; response } ]

let flipped_spec ~n =
  if n < 1 then invalid_arg "Mutant.flipped_spec: n must be >= 1";
  let check_label op i =
    if i < 1 || i > n then
      invalid_arg (Fmt.str "mutant %d-PAC: label out of range in %a" n Op.pp op)
  in
  let step state (op : Op.t) =
    match (op.name, op.args) with
    | "propose", [ v; { Value.node = Int i; _ } ] ->
      check_label op i;
      let st = view state in
      (* BUG (the seeded mutation): Algorithm 1 line 2 sets upset when
         V[i] is occupied; this object skips that check and
         overwrites. *)
      let st =
        if not st.upset then set_v { st with l = Value.int i } i v else st
      in
      det (encode st) Value.done_
    | "decide", [ { Value.node = Int i; _ } ] ->
      check_label op i;
      (* Decide path verbatim from Algorithm 1, lines 7-17. *)
      let st = view state in
      let st =
        if Value.is_nil (get_v st i) then { st with upset = true } else st
      in
      if st.upset then det (encode st) Value.bot
      else
        let st, temp =
          if not (Value.equal st.l (Value.int i)) then (st, Value.bot)
          else
            let st =
              if Value.is_nil st.value then { st with value = get_v st i }
              else st
            in
            (st, st.value)
        in
        let st = set_v { st with l = Value.nil } i Value.nil in
        det (encode st) temp
    | _ -> Obj_spec.unknown "mutant n-PAC" op
  in
  let initial =
    let v =
      Value.Assoc.of_bindings
        (List.map
           (fun i -> (Value.int i, Value.nil))
           (Lbsa_util.Listx.range 1 n))
    in
    encode { upset = false; v; l = Value.nil; value = Value.nil }
  in
  Obj_spec.make ~name:(Fmt.str "mutant-%d-PAC" n) ~initial ~step ()

let impl ~n =
  Implementation.redirect
    ~name:(Fmt.str "mutant-pac:%d" n)
    ~target:(Lbsa_objects.Pac.spec ~n ())
    ~base:[| flipped_spec ~n |]
    ~route:(fun op -> (0, op))
