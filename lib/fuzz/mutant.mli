(** A deliberately broken n-PAC used as a known-bad fixture: Algorithm 1
    with the propose-path upset guard flipped (a re-propose on a busy
    label silently overwrites instead of upsetting the object).  The
    fuzzer must catch {!impl} against the correct n-PAC spec and shrink
    the counterexample to propose; propose; decide on one label. *)

open Lbsa_spec
open Lbsa_implement

val flipped_spec : n:int -> Obj_spec.t

val impl : n:int -> Implementation.t
(** Claims to implement the correct [Pac.spec ~n ()] from the flipped
    base object. *)
