open Lbsa_spec
open Lbsa_objects
open Lbsa_implement

(* Fuzz targets: every registry object gets an [Obj_spec]-aware operation
   generator (spec-level fuzzing), and each construction in
   lib/implement gets a workload generator respecting its interface
   contract (port bounds, single-writer components, slot budgets). *)

module Prng = Lbsa_util.Prng

let small_int prng = Value.int (Prng.int prng 4)

(* --- spec-level targets ------------------------------------------------ *)

type spec_target = {
  desc : string;  (* Registry.of_string syntax; the reproduction handle *)
  spec : Obj_spec.t;
  gen_op : pid:int -> Prng.t -> Op.t;
  procs : int;  (* natural client count for this instantiation *)
}

let pac_family_op ~ports prng =
  match Prng.int prng 3 with
  | 0 -> `Propose_c
  | 1 -> `Propose_p (1 + Prng.int prng ports)
  | _ -> `Decide_p (1 + Prng.int prng ports)

let rec spec_target desc =
  match String.split_on_char ':' desc with
  | [ "mpnet"; n; t ] ->
    (* The mp substrate's network object (lib/runtime Substrate) as a
       plain linearizable spec: sends, guarded deliveries, timeouts and
       delays under the fuzzer's oracle.  Not a registry object — the
       alphabet is per-instantiation — so it is built directly and kept
       out of [all_specs]. *)
    let n = int_of_string n and t = int_of_string t in
    if n < 1 || t < 1 then
      invalid_arg "Fuzz targets: mpnet:<n>:<t> needs n >= 1 and t >= 1";
    let types = List.init t (Fmt.str "m%d") in
    let spec = Lbsa_runtime.Substrate.network_spec ~n ~types () in
    let gen_op ~pid prng =
      if Prng.bool prng then
        Lbsa_runtime.Substrate.send (List.nth types (Prng.int prng t))
      else
        let listen = List.filter (fun _ -> Prng.bool prng) types in
        let listen =
          if listen = [] then [ List.nth types (Prng.int prng t) ] else listen
        in
        Lbsa_runtime.Substrate.recv ~pid ~timeout:(Prng.bool prng) listen
    in
    { desc; spec; gen_op; procs = max 1 (min n 3) }
  | _ -> registry_spec_target desc

and registry_spec_target desc =
  let spec = Registry.of_string desc in
  let gen_op, procs =
    match String.split_on_char ':' desc with
    | [ "reg" ] | [ "reg"; _ ] ->
      ( (fun ~pid:_ prng ->
          if Prng.bool prng then Register.write (small_int prng)
          else Register.read),
        3 )
    | [ "cons"; _ ] ->
      ((fun ~pid:_ prng -> Consensus_obj.propose (small_int prng)), 3)
    | [ "2sa" ] -> ((fun ~pid:_ prng -> Sa2.propose (small_int prng)), 3)
    | [ "nksa"; n; _ ] ->
      ( (fun ~pid:_ prng -> Nk_sa.propose (small_int prng)),
        max 2 (min (int_of_string n) 4) )
    | [ "pac"; n ] ->
      let n = int_of_string n in
      ( (fun ~pid:_ prng ->
          let i = 1 + Prng.int prng n in
          if Prng.bool prng then Pac.propose (small_int prng) i
          else Pac.decide i),
        3 )
    | [ "pacnm"; n; _ ] ->
      let n = int_of_string n in
      ( (fun ~pid:_ prng ->
          match pac_family_op ~ports:n prng with
          | `Propose_c -> Pac_nm.propose_c (small_int prng)
          | `Propose_p i -> Pac_nm.propose_p (small_int prng) i
          | `Decide_p i -> Pac_nm.decide_p i),
        3 )
    | [ "on"; n ] ->
      (* O_n = (n+1, n)-PAC, so its PAC facet has n+1 ports. *)
      let ports = int_of_string n + 1 in
      ( (fun ~pid:_ prng ->
          match pac_family_op ~ports prng with
          | `Propose_c -> O_n.propose_c (small_int prng)
          | `Propose_p i -> O_n.propose_p (small_int prng) i
          | `Decide_p i -> O_n.decide_p i),
        3 )
    | [ "oprime"; _; max_k ] ->
      let max_k = int_of_string max_k in
      ( (fun ~pid:_ prng ->
          O_prime.propose (small_int prng) (1 + Prng.int prng max_k)),
        3 )
    | [ "tas" ] ->
      ( (fun ~pid:_ prng ->
          match Prng.int prng 3 with
          | 0 -> Classic.Test_and_set.test_and_set
          | 1 -> Classic.Test_and_set.reset
          | _ -> Classic.Test_and_set.read),
        3 )
    | [ "faa" ] ->
      ( (fun ~pid:_ prng ->
          if Prng.bool prng then
            Classic.Fetch_and_add.fetch_and_add (Prng.int prng 4)
          else Classic.Fetch_and_add.read),
        3 )
    | [ "swap" ] ->
      ((fun ~pid:_ prng -> Classic.Swap.swap (small_int prng)), 3)
    | [ "queue" ] ->
      ( (fun ~pid:_ prng ->
          if Prng.bool prng then Classic.Queue_obj.enqueue (small_int prng)
          else Classic.Queue_obj.dequeue),
        3 )
    | [ "cas" ] ->
      ( (fun ~pid:_ prng ->
          if Prng.int prng 3 = 2 then Classic.Compare_and_swap.read
          else
            let expected =
              if Prng.bool prng then Value.nil else small_int prng
            in
            Classic.Compare_and_swap.compare_and_swap ~expected
              ~desired:(small_int prng)),
        3 )
    | [ "sticky" ] ->
      ( (fun ~pid:_ prng ->
          if Prng.bool prng then Classic.Sticky.write (small_int prng)
          else Classic.Sticky.read),
        3 )
    | [ "snapshot"; m ] ->
      let m = int_of_string m in
      ( (fun ~pid prng ->
          if Prng.bool prng then Classic.Snapshot.update (pid mod m) (small_int prng)
          else Classic.Snapshot.scan),
        max 2 (min m 3) )
    | _ -> invalid_arg (Fmt.str "Fuzz targets: no op generator for %S" desc)
  in
  { desc; spec; gen_op; procs }

(* One concrete instantiation per Registry.known row; a test pins this
   list against the registry so a new object cannot dodge the fuzzer. *)
let all_specs () =
  List.map spec_target
    [
      "reg"; "cons:2"; "2sa"; "nksa:3:2"; "pac:2"; "pacnm:2:2"; "on:2";
      "oprime:2:3"; "tas"; "faa"; "swap"; "queue"; "cas"; "sticky";
      "snapshot:3";
    ]

let spec_workloads (t : spec_target) ~procs ~ops_per_proc prng =
  Array.init procs (fun pid ->
      List.init (1 + Prng.int prng (max 1 ops_per_proc)) (fun _ ->
          t.gen_op ~pid prng))

(* --- implementation-level targets -------------------------------------- *)

type impl_target = {
  idesc : string;
  impl : Implementation.t;
  iprocs : int;
  gen_workloads : ops_per_proc:int -> Prng.t -> Op.t list array;
}

(* Uniform workloads from a spec-style op generator. *)
let workloads_of_gen ~procs ~gen_op ~ops_per_proc prng =
  Array.init procs (fun pid ->
      List.init (1 + Prng.int prng (max 1 ops_per_proc)) (fun _ ->
          gen_op ~pid prng))

let of_gen idesc impl iprocs gen_op =
  {
    idesc;
    impl;
    iprocs;
    gen_workloads =
      (fun ~ops_per_proc prng ->
        workloads_of_gen ~procs:iprocs ~gen_op ~ops_per_proc prng);
  }

let bad_desc desc =
  invalid_arg
    (Fmt.str
       "Fuzz targets: cannot parse implementation %S (try snapshot:<n>, \
        naive-snapshot:<n>, pacnm:<n>:<m>, oprime:<n>:<K>, universal:<n>, \
        pac-facet:<n>:<m>, cons-facet:<n>:<m>, mutant-pac:<n>, \
        identity:<object>)"
       desc)

let impl_target desc =
  match String.split_on_char ':' desc with
  | [ "snapshot"; n ] ->
    (* Single-writer per construction: pid writes component pid. *)
    let n = int_of_string n in
    of_gen desc (Snapshot_impl.implementation ~n) n (fun ~pid prng ->
        if Prng.bool prng then Classic.Snapshot.update pid (small_int prng)
        else Classic.Snapshot.scan)
  | [ "naive-snapshot"; n ] ->
    let n = int_of_string n in
    of_gen desc (Snapshot_impl.naive ~n) n (fun ~pid prng ->
        if Prng.bool prng then Classic.Snapshot.update pid (small_int prng)
        else Classic.Snapshot.scan)
  | [ "pacnm"; n; m ] ->
    let n = int_of_string n and m = int_of_string m in
    let st = spec_target (Fmt.str "pacnm:%d:%d" n m) in
    of_gen desc (Pac_nm_impl.implementation ~n ~m) st.procs st.gen_op
  | [ "oprime"; n; max_k ] ->
    (* Port-bound contract: each pid proposes at each level at most
       once, so per-level call totals stay within n <= n_k. *)
    let n = int_of_string n and max_k = int_of_string max_k in
    {
      idesc = desc;
      impl = Oprime_impl.for_n ~n ~max_k;
      iprocs = n;
      gen_workloads =
        (fun ~ops_per_proc prng ->
          Array.init n (fun _ ->
              let levels =
                Prng.shuffle prng
                  (Array.of_list (Lbsa_util.Listx.range 1 max_k))
              in
              let count =
                min (min ops_per_proc max_k) (1 + Prng.int prng max_k)
              in
              List.init count (fun j ->
                  O_prime.propose (small_int prng) levels.(j))));
    }
  | [ "universal"; n ] ->
    let n = int_of_string n in
    let queue = spec_target "queue" in
    of_gen desc
      (Universal.implementation ~n ~target:(Classic.Queue_obj.spec ()) ())
      n queue.gen_op
  | [ "pac-facet"; n; m ] ->
    let n = int_of_string n and m = int_of_string m in
    let pac = spec_target (Fmt.str "pac:%d" n) in
    of_gen desc (Facets.pac_from_pac_nm ~n ~m) pac.procs pac.gen_op
  | [ "cons-facet"; n; m ] ->
    let n = int_of_string n and m = int_of_string m in
    of_gen desc
      (Facets.consensus_from_pac_nm ~n ~m)
      (m + 1)
      (fun ~pid:_ prng -> Consensus_obj.propose (small_int prng))
  | [ "mutant-pac"; n ] ->
    let n = int_of_string n in
    let pac = spec_target (Fmt.str "pac:%d" n) in
    of_gen desc (Mutant.impl ~n) pac.procs pac.gen_op
  | "identity" :: rest ->
    let inner = String.concat ":" rest in
    if inner = "" then bad_desc desc
    else
      let st = spec_target inner in
      of_gen desc (Implementation.identity st.spec) st.procs st.gen_op
  | _ -> bad_desc desc

(* The default corpus: every honest construction in lib/implement.
   [naive-snapshot] and [mutant-pac] are known-bad fixtures and are
   exercised by tests expecting violations, never by the clean sweep. *)
let all_impls () =
  List.map impl_target
    [
      "snapshot:2"; "pacnm:2:2"; "oprime:2:2"; "universal:2"; "pac-facet:2:2";
      "cons-facet:2:2";
    ]
