(** Fuzz targets: spec-level (every registry object, with an
    [Obj_spec]-aware operation generator) and implementation-level
    (every construction in lib/implement, with a workload generator
    respecting its interface contract). *)

open Lbsa_spec
open Lbsa_implement

type spec_target = {
  desc : string;  (** [Registry.of_string] syntax; the reproduction handle *)
  spec : Obj_spec.t;
  gen_op : pid:int -> Lbsa_util.Prng.t -> Op.t;
  procs : int;  (** natural client count for this instantiation *)
}

val spec_target : string -> spec_target
(** Registry object syntax, plus [mpnet:<n>:<t>] — the mp substrate's
    network object ({!Lbsa_runtime.Substrate.network_spec}) for [n]
    receivers over a [t]-symbol alphabet, fuzzing sends, guarded
    deliveries, timeouts and delays.  Raises [Invalid_argument] on
    unknown syntax. *)

val all_specs : unit -> spec_target list
(** One concrete instantiation per {!Lbsa_objects.Registry.known} row; a
    test pins this list against the registry so new objects cannot dodge
    the fuzzer. *)

val spec_workloads :
  spec_target -> procs:int -> ops_per_proc:int -> Lbsa_util.Prng.t ->
  Op.t list array

type impl_target = {
  idesc : string;
  impl : Implementation.t;
  iprocs : int;  (** client count fixed by the construction *)
  gen_workloads : ops_per_proc:int -> Lbsa_util.Prng.t -> Op.t list array;
}

val impl_target : string -> impl_target
(** Grammar: [snapshot:<n>], [naive-snapshot:<n>], [pacnm:<n>:<m>],
    [oprime:<n>:<K>], [universal:<n>], [pac-facet:<n>:<m>],
    [cons-facet:<n>:<m>], [mutant-pac:<n>], [identity:<object>].
    Raises [Invalid_argument] on unknown syntax. *)

val all_impls : unit -> impl_target list
(** Every honest construction in lib/implement; the known-bad fixtures
    ([naive-snapshot], [mutant-pac]) are excluded. *)
