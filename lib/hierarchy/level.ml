open Lbsa_runtime
open Lbsa_protocols
open Lbsa_modelcheck

(* Consensus-hierarchy level evidence.

   An object is at level n when it solves consensus among n processes
   (positive: exhaustively checkable) but not among n + 1 (negative: an
   impossibility, approximated here by the failure of the object's
   natural (n+1)-consensus candidate, with the violating witness).  A
   level report carries both halves and is explicit about which is a
   proof and which is evidence. *)

type half =
  | Verified of Solvability.verdict  (* exhaustive positive check *)
  | Candidate_failed of string * Solvability.verdict
  | Not_checked of string

type report = {
  object_name : string;
  level : int;
  solves_at_level : half;
  fails_above : half;
}

let pp_half ppf = function
  | Verified v -> Fmt.pf ppf "verified: %a" Solvability.pp_verdict v
  | Candidate_failed (name, v) ->
    Fmt.pf ppf "candidate %s failed as expected: %a" name
      Solvability.pp_verdict v
  | Not_checked why -> Fmt.pf ppf "not checked (%s)" why

let pp_report ppf r =
  Fmt.pf ppf "@[<v>%s at level %d@,  positive: %a@,  negative: %a@]"
    r.object_name r.level pp_half r.solves_at_level pp_half r.fails_above

let check_consensus_all_binary ?(max_states = Lbsa_modelcheck.Graph.default_max_states) ~machine ~specs ~procs () =
  Solvability.for_all_inputs
    (fun inputs ->
      Solvability.check_consensus ~max_states ~machine ~specs ~inputs ())
    (Consensus_task.binary_inputs procs)

(* Level of the m-consensus object: solves consensus among m; the natural
   (m+1)-process candidate (everyone proposes, ⊥-receiver reads an
   announcement) fails.  We reuse the (n,m)-PAC candidate with its PAC
   facet unused, which degenerates to exactly that protocol. *)
let consensus_obj_report ?(max_states = Lbsa_modelcheck.Graph.default_max_states) ~m () =
  let machine, specs = Consensus_protocols.from_consensus_obj ~m in
  let positive = check_consensus_all_binary ~max_states ~machine ~specs ~procs:m () in
  let cand_machine, cand_specs = Candidates.consensus_m1_from_pac_nm ~n:2 ~m in
  let negative =
    check_consensus_all_binary ~max_states ~machine:cand_machine
      ~specs:cand_specs ~procs:(m + 1) ()
  in
  {
    object_name = Fmt.str "%d-consensus" m;
    level = m;
    solves_at_level =
      (if positive.Solvability.ok then Verified positive
       else Candidate_failed ("positive check unexpectedly failed", positive));
    fails_above =
      (if negative.Solvability.ok then
         Candidate_failed ("candidate unexpectedly succeeded", negative)
       else Candidate_failed (cand_machine.Machine.name, negative));
  }

(* Theorem 5.3: (n,m)-PAC is at level m.  The positive half is
   Observation 5.1(c); the negative half is the failure of the natural
   (m+1)-consensus candidates over the object. *)
let pac_nm_report ?(max_states = Lbsa_modelcheck.Graph.default_max_states) ~n ~m () =
  let machine, specs = Consensus_protocols.from_pac_nm ~n ~m in
  let positive = check_consensus_all_binary ~max_states ~machine ~specs ~procs:m () in
  let cand_machine, cand_specs = Candidates.consensus_m1_from_pac_nm ~n ~m in
  let negative =
    check_consensus_all_binary ~max_states ~machine:cand_machine
      ~specs:cand_specs ~procs:(m + 1) ()
  in
  {
    object_name = Fmt.str "(%d,%d)-PAC" n m;
    level = m;
    solves_at_level =
      (if positive.Solvability.ok then Verified positive
       else Candidate_failed ("positive check unexpectedly failed", positive));
    fails_above =
      (if negative.Solvability.ok then
         Candidate_failed ("candidate unexpectedly succeeded", negative)
       else Candidate_failed (cand_machine.Machine.name, negative));
  }

(* Observation 6.2: O_n has consensus number n. *)
let o_n_report ?(max_states = Lbsa_modelcheck.Graph.default_max_states) ~n () =
  let r = pac_nm_report ~max_states ~n:(n + 1) ~m:n () in
  { r with object_name = Fmt.str "O_%d" n }
