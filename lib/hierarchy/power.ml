open Lbsa_spec
open Lbsa_runtime
open Lbsa_protocols
open Lbsa_modelcheck

(* Set agreement power (Section 1): the sequence (n_1, n_2, ..., n_k, ...)
   where n_k is the largest number of processes for which the object plus
   registers solve k-set agreement.

   Closed forms shipped with the repository:
   - m-consensus: n_k = k*m (partition protocol for the lower bound;
     Chaudhuri-Reiners / BG-simulation for the upper bound);
   - strong 2-SA: n_1 = 1, n_k = ∞ for k >= 2 (Section 4);
   - (n,k)-SA: exactly n processes at level k;
   - O_n: n_1 = n (Observation 6.2) and n_k >= k*n for k >= 2 (no closed
     form in the paper; O'_n is parameterized by the true sequence).

   Empirically, [probe] checks a concrete protocol exhaustively, giving
   the machine-verified entries of the matrices in EXPERIMENTS.md. *)

type bound =
  | Finite of int
  | Infinite

let pp_bound ppf = function
  | Finite n -> Fmt.int ppf n
  | Infinite -> Fmt.string ppf "∞"

let consensus_power ~m ~max_k : bound list =
  List.map (fun k -> Finite (k * m)) (Lbsa_util.Listx.range 1 max_k)

let sa2_power ~max_k : bound list =
  List.map
    (fun k -> if k = 1 then Finite 1 else Infinite)
    (Lbsa_util.Listx.range 1 max_k)

let o_n_power_lower ~n ~max_k : bound list =
  List.map (fun k -> Finite (k * n)) (Lbsa_util.Listx.range 1 max_k)

(* --- empirical probing ------------------------------------------------ *)

type probe = {
  k : int;
  procs : int;
  solvable : bool;
  states : int;
  detail : string option;
}

let pp_probe ppf p =
  Fmt.pf ppf "k=%d procs=%d: %s (%d states)%a" p.k p.procs
    (if p.solvable then "solved" else "failed")
    p.states
    Fmt.(option (fun ppf s -> Fmt.pf ppf " [%s]" s))
    p.detail

(* Exhaustively check that [protocol] solves k-set agreement among
   [procs] processes on the all-distinct input vector (the adversarially
   hardest one) plus, optionally, all binary inputs. *)
let probe ?(max_states = Lbsa_modelcheck.Graph.default_max_states) ?(also_binary = false) ~k ~procs
    ~(protocol : Machine.t * Obj_spec.t array) () =
  let machine, specs = protocol in
  let inputs_list =
    Kset_task.distinct_inputs procs
    :: (if also_binary then Consensus_task.binary_inputs procs else [])
  in
  let verdict =
    Solvability.for_all_inputs
      (fun inputs -> Solvability.check_kset ~max_states ~machine ~specs ~k ~inputs ())
      inputs_list
  in
  {
    k;
    procs;
    solvable = verdict.Solvability.ok;
    states = verdict.Solvability.states;
    detail = verdict.Solvability.failure;
  }

(* Randomized probe for instances whose exhaustive state space is out of
   reach (the configuration count grows exponentially in the process
   count): [trials] random schedules and object adversaries, safety
   checked on every completed run.  The [detail] field records that the
   check was randomized. *)
let probe_random ?(trials = 2000) ?(seed = 1) ~k ~procs
    ~(protocol : Machine.t * Obj_spec.t array) () =
  let machine, specs = protocol in
  let inputs = Kset_task.distinct_inputs procs in
  let prng = Lbsa_util.Prng.create seed in
  let rec go i =
    if i >= trials then None
    else
      let r =
        Executor.run
          ~nondet:(Executor.Random (Lbsa_util.Prng.split prng))
          ~machine ~specs ~inputs
          ~scheduler:(Scheduler.random ~seed:(Lbsa_util.Prng.int prng 1_000_000_000))
          ()
      in
      match Kset_task.check_run ~k ~inputs r with
      | Ok () -> go (i + 1)
      | Error v -> Some (Fmt.str "trial %d: %a" i Kset_task.pp_violation v)
  in
  let failure = go 0 in
  {
    k;
    procs;
    solvable = failure = None;
    states = 0;
    detail =
      Some
        (match failure with
        | None -> Fmt.str "randomized: %d trials" trials
        | Some msg -> Fmt.str "randomized: %s" msg);
  }

(* The empirical rows of the power matrix for each object family:
   solve k-set agreement among procs = n_k processes using the family's
   canonical protocol.  These verify the lower bounds of the closed
   forms; upper bounds are impossibility statements (see EXPERIMENTS.md
   for how the candidate experiments address them). *)

let probe_consensus_family ~m ~k ?(max_states = Lbsa_modelcheck.Graph.default_max_states) () =
  probe ~max_states ~k ~procs:(k * m)
    ~protocol:(Kset_protocols.partition ~m ~k)
    ()

let probe_sa2_family ~k ~procs ?(max_states = Lbsa_modelcheck.Graph.default_max_states) () =
  probe ~max_states ~k ~procs ~protocol:(Kset_protocols.from_sa2 ~k) ()

let probe_nk_sa_family ~n ~k ?(max_states = Lbsa_modelcheck.Graph.default_max_states) () =
  probe ~max_states ~k ~procs:n ~protocol:(Kset_protocols.from_nk_sa ~n ~k) ()

let probe_oprime_family ~power ~k ?(max_states = Lbsa_modelcheck.Graph.default_max_states) () =
  let nk = List.nth power (k - 1) in
  probe ~max_states ~k ~procs:nk
    ~protocol:(Kset_protocols.from_oprime ~power ~k)
    ()

let probe_o_n_consensus ~n ?(max_states = Lbsa_modelcheck.Graph.default_max_states) () =
  let machine, specs = Consensus_protocols.from_o_n ~n in
  let verdict =
    Solvability.for_all_inputs
      (fun inputs ->
        Solvability.check_consensus ~max_states ~machine ~specs ~inputs ())
      (Consensus_task.binary_inputs n)
  in
  {
    k = 1;
    procs = n;
    solvable = verdict.Solvability.ok;
    states = verdict.Solvability.states;
    detail = verdict.Solvability.failure;
  }
