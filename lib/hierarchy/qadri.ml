open Lbsa_protocols
open Lbsa_modelcheck

(* Theorem 7.1 (answering Qadri's question): for all m >= 2 and
   n >= m+1, the (n+1, m)-PAC object is a deterministic object at level
   m of the consensus hierarchy that cannot be implemented using
   n-consensus objects and registers.

   Executable artifacts, mirroring the proof:
   1. (n+1, m)-PAC solves m-consensus            (Theorem 5.3, positive)
      — and its (m+1)-consensus candidate fails  (level m evidence);
   2. (n+1, m)-PAC solves the (n+1)-DAC problem via its PAC facet
      (Observation 5.1(b) + Theorem 4.1), exhaustively;
   3. the natural (n+1)-DAC candidate over n-consensus + registers
      fails Termination (b) — Theorem 4.2's boundary, which the proof of
      7.1 reduces to. *)

type report = {
  m : int;
  n : int;
  artifacts : Separation.verdictish list;
}

let analyze ?(max_states = Lbsa_modelcheck.Graph.default_max_states) ~m ~n () : report =
  if m < 2 || n < m + 1 then
    invalid_arg "Qadri.analyze: needs m >= 2 and n >= m+1";
  let artifacts = ref [] in
  let push a = artifacts := a :: !artifacts in
  let verdictish ~label ~expect_ok (v : Solvability.verdict) =
    Separation.
      {
        label;
        ok = v.Solvability.ok = expect_ok;
        detail =
          (if v.Solvability.ok then
             Fmt.str "solved (%d states)" v.Solvability.states
           else
             Fmt.str "failed (%d states): %s" v.Solvability.states
               (Option.value v.Solvability.failure ~default:"?"));
      }
  in
  (* 1. Level m. *)
  let level = Level.pac_nm_report ~max_states ~n:(n + 1) ~m () in
  (match level.Level.solves_at_level with
  | Level.Verified v ->
    push
      (verdictish
         ~label:(Fmt.str "(%d,%d)-PAC solves %d-consensus (Thm 5.3)" (n + 1) m m)
         ~expect_ok:true v)
  | _ ->
    push
      Separation.
        {
          label = Fmt.str "(%d,%d)-PAC solves %d-consensus" (n + 1) m m;
          ok = false;
          detail = "positive half did not verify";
        });
  (match level.Level.fails_above with
  | Level.Candidate_failed (cand, v) ->
    push
      (verdictish
         ~label:
           (Fmt.str "(%d,%d)-PAC: %d-consensus candidate (%s)" (n + 1) m (m + 1)
              cand)
         ~expect_ok:false v)
  | _ -> ());
  (* 2. (n+1, m)-PAC solves (n+1)-DAC via its PAC facet. *)
  let machine =
    Dac_from_pac.machine_via
      ~name:(Fmt.str "%d-DAC-from-(%d,%d)-PAC" (n + 1) (n + 1) m)
      ~propose:Lbsa_objects.Pac_nm.propose_p ~decide:Lbsa_objects.Pac_nm.decide_p
  in
  let specs = [| Lbsa_objects.Pac_nm.spec ~n:(n + 1) ~m () |] in
  let v =
    Solvability.for_all_inputs
      (fun inputs ->
        Solvability.check_dac ~max_states ~machine ~specs ~inputs ())
      (Dac.binary_inputs (n + 1))
  in
  push
    (verdictish
       ~label:
         (Fmt.str "(%d,%d)-PAC solves the %d-DAC problem (Obs 5.1b + Thm 4.1)"
            (n + 1) m (n + 1))
       ~expect_ok:true v);
  (* 3. The announce candidate over n-consensus + registers fails for
     n+1 processes. *)
  let cand_machine, cand_specs = Candidates.dac_cons_announce ~m:n in
  let v =
    Solvability.for_all_inputs
      (fun inputs ->
        Solvability.check_dac ~max_states ~machine:cand_machine
          ~specs:cand_specs ~inputs ())
      (Dac.binary_inputs (n + 1))
  in
  push
    (verdictish
       ~label:
         (Fmt.str
            "%d-DAC candidate over %d-consensus + registers (Thm 4.2 boundary)"
            (n + 1) n)
       ~expect_ok:false v);
  { m; n; artifacts = List.rev !artifacts }

let all_ok r = List.for_all (fun (a : Separation.verdictish) -> a.Separation.ok) r.artifacts

let pp_report ppf r =
  Fmt.pf ppf
    "@[<v>Theorem 7.1 artifacts for m = %d, n = %d (object: (%d,%d)-PAC):@,"
    r.m r.n (r.n + 1) r.m;
  List.iter
    (fun (a : Separation.verdictish) ->
      Fmt.pf ppf "  [%s] %s@,      %s@,"
        (if a.Separation.ok then "ok" else "FAIL")
        a.Separation.label a.Separation.detail)
    r.artifacts;
  Fmt.pf ppf "@]"
