open Lbsa_spec
open Lbsa_objects
open Lbsa_protocols
open Lbsa_modelcheck
open Lbsa_implement

(* The main theorem as executable artifacts (Section 6 / Corollary 6.6):
   for each n >= 2 the objects O_n and O'_n have the same set agreement
   power but are not equivalent.  [analyze ~n] assembles the checkable
   pieces:

   1. shared power prefix: the canonical protocols over O_n and O'_n
      solve k-set agreement among n_k processes, for each k in the
      prefix (exhaustively model-checked);
   2. O_n has consensus number n (Observation 6.2): positive half
      verified, negative half by candidate failure;
   3. O_n solves the (n+1)-DAC problem via its PAC facet (Theorem 4.1 +
      Observation 5.1(b)), exhaustively model-checked;
   4. O'_n is implementable from n-consensus + 2-SA objects (Lemma 6.4):
      the implementation's concurrent histories linearize against the
      O'_n specification (exhaustive small interleavings + randomized
      campaign);
   5. the natural (n+1)-DAC candidates over {n-consensus, registers,
      2-SA} fail (Theorem 4.2 evidence) — so the route "implement O_n
      from O'_n" collapses exactly where the paper says it must.      *)

type verdictish = {
  label : string;
  ok : bool;  (* did the artifact behave as the paper predicts? *)
  detail : string;
}

type report = {
  n : int;
  power_prefix : Power.bound list;
  artifacts : verdictish list;
}

let artifact ~label ~ok ~detail = { label; ok; detail }

let of_verdict ~label ~expect_ok (v : Solvability.verdict) =
  {
    label;
    ok = v.Solvability.ok = expect_ok;
    detail =
      (if v.Solvability.ok then Fmt.str "solved (%d states)" v.Solvability.states
       else
         Fmt.str "failed (%d states): %s" v.Solvability.states
           (Option.value v.Solvability.failure ~default:"?"));
  }

let analyze ?(max_k = 3) ?(max_states = Lbsa_modelcheck.Graph.default_max_states) ~n () : report =
  if n < 2 then invalid_arg "Separation.analyze: n >= 2";
  let power = O_prime.default_power ~n ~max_k in
  let artifacts = ref [] in
  let push a = artifacts := a :: !artifacts in

  (* 1a. O_n's k = 1 power: consensus among n via the PROPOSEC facet. *)
  let p1 = Power.probe_o_n_consensus ~n ~max_states () in
  push
    (artifact
       ~label:(Fmt.str "O_%d solves consensus among %d (k=1 power)" n n)
       ~ok:p1.Power.solvable
       ~detail:(Fmt.str "%a" Power.pp_probe p1));

  (* 1b. O'_n's k = 1 power: consensus among n_1 via the (n_1,1)-SA
     member. *)
  let p2 = Power.probe_oprime_family ~power ~k:1 ~max_states () in
  push
    (artifact
       ~label:(Fmt.str "O'_%d solves consensus among %d (k=1 power)" n n)
       ~ok:p2.Power.solvable
       ~detail:(Fmt.str "%a" Power.pp_probe p2));

  (* 1c. Higher-k power rows of O'_n: k-set agreement among n_k. *)
  List.iter
    (fun k ->
      if k >= 2 then begin
        (* Exhaustive checking of the O'_n row needs the full branching
           of the (n_k, k)-SA adversary; beyond 4 processes that state
           space is out of reach and we fall back to a randomized probe
           (labeled as such in the detail). *)
        let nk = List.nth power (k - 1) in
        let p =
          if nk <= 4 then Power.probe_oprime_family ~power ~k ~max_states ()
          else
            Power.probe_random ~k ~procs:nk
              ~protocol:(Kset_protocols.from_oprime ~power ~k)
              ()
        in
        push
          (artifact
             ~label:
               (Fmt.str "O'_%d solves %d-set agreement among %d (k=%d power)"
                  n k p.Power.procs k)
             ~ok:p.Power.solvable
             ~detail:(Fmt.str "%a" Power.pp_probe p));
        (* Matching lower-bound row for O_n via its consensus facet. *)
        let q =
          Power.probe ~max_states ~k ~procs:(k * n)
            ~protocol:(Kset_protocols.partition_from_o_n ~n ~k)
            ()
        in
        push
          (artifact
             ~label:
               (Fmt.str "O_%d solves %d-set agreement among %d (k=%d power)" n
                  k (k * n) k)
             ~ok:q.Power.solvable
             ~detail:(Fmt.str "%a" Power.pp_probe q))
      end)
    (Lbsa_util.Listx.range 1 max_k);

  (* 3. O_n solves (n+1)-DAC via the PAC facet (binary inputs,
     exhaustive). *)
  let dac_machine = Dac_from_pac.machine_via_o_n ~n in
  let dac_specs = Dac_from_pac.specs_via_o_n ~n in
  let dac_verdict =
    Solvability.for_all_inputs
      (fun inputs ->
        Solvability.check_dac ~max_states ~machine:dac_machine
          ~specs:dac_specs ~inputs ())
      (Dac.binary_inputs (n + 1))
  in
  push
    (of_verdict
       ~label:(Fmt.str "O_%d solves the %d-DAC problem (Thm 4.1 + Obs 5.1b)" n (n + 1))
       ~expect_ok:true dac_verdict);

  (* 4. Lemma 6.4: O'_n implementable from n-consensus + 2-SA — check the
     implementation's histories linearize (exhaustive tiny workload). *)
  let impl = Oprime_impl.implementation ~power in
  let workloads =
    (* Two clients on the k=1 member, one on each higher member: small
       enough for exhaustive interleaving checking, within port bounds. *)
    [|
      [ O_prime.propose (Value.int 10) 1 ];
      [ O_prime.propose (Value.int 20) 1 ];
      List.map
        (fun k -> O_prime.propose (Value.int 30) k)
        (Lbsa_util.Listx.range 2 max_k);
    |]
  in
  (match Harness.exhaustive ~max_steps:64 ~impl ~workloads () with
  | Ok interleavings ->
    push
      (artifact
         ~label:
           (Fmt.str "O'_%d implemented from %d-consensus + 2-SA (Lemma 6.4)" n n)
         ~ok:true
         ~detail:
           (Fmt.str "linearizable in all %d interleavings" interleavings))
  | Error _history ->
    push
      (artifact
         ~label:
           (Fmt.str "O'_%d implemented from %d-consensus + 2-SA (Lemma 6.4)" n n)
         ~ok:false ~detail:"non-linearizable interleaving found"));

  (* 5. Theorem 4.2 evidence (only instantiated at n = 2, where the
     candidate family lives): the natural 3-DAC candidates over
     {2-consensus, registers, 2-SA} fail. *)
  if n = 2 then begin
    let check_candidate ~label (machine, specs) =
      let v =
        Solvability.for_all_inputs
          (fun inputs ->
            Solvability.check_dac ~max_states ~machine ~specs ~inputs ())
          (Dac.binary_inputs 3)
      in
      push (of_verdict ~label ~expect_ok:false v)
    in
    check_candidate
      ~label:"3-DAC candidate (2-SA then 2-consensus) fails (Thm 4.2 evidence)"
      Candidates.dac3_sa2_then_cons2;
    check_candidate
      ~label:"3-DAC candidate (2-consensus + announce) fails (Thm 4.2 evidence)"
      Candidates.dac3_cons2_announce
  end;

  { n; power_prefix = List.map (fun nk -> Power.Finite nk) power; artifacts = List.rev !artifacts }

let all_ok report = List.for_all (fun a -> a.ok) report.artifacts

let pp_report ppf r =
  Fmt.pf ppf "@[<v>Separation artifacts for n = %d (power prefix %a):@,"
    r.n
    Fmt.(list ~sep:(any ", ") Power.pp_bound)
    r.power_prefix;
  List.iter
    (fun a ->
      Fmt.pf ppf "  [%s] %s@,      %s@," (if a.ok then "ok" else "FAIL")
        a.label a.detail)
    r.artifacts;
  Fmt.pf ppf "@]"
