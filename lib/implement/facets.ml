open Lbsa_spec
open Lbsa_objects

(* Observations 5.1(b) and 5.1(c): an (n,m)-PAC object implements an
   n-PAC object and an m-consensus object, by exposing one facet and
   ignoring the other. *)

(* 5.1(b): n-PAC from one (n,m)-PAC. *)
let pac_from_pac_nm ~n ~m : Implementation.t =
  let target = Pac.spec ~n () in
  let base = [| Pac_nm.spec ~n ~m () |] in
  let route (op : Op.t) =
    match (op.name, op.args) with
    | "propose", [ v; { Value.node = Int i; _ } ] -> (0, Pac_nm.propose_p v i)
    | "decide", [ { Value.node = Int i; _ } ] -> (0, Pac_nm.decide_p i)
    | _ -> invalid_arg (Fmt.str "Facets.pac_from_pac_nm: %a" Op.pp op)
  in
  Implementation.redirect
    ~name:(Fmt.str "%d-PAC-from-(%d,%d)-PAC" n n m)
    ~target ~base ~route

(* 5.1(c): m-consensus from one (n,m)-PAC. *)
let consensus_from_pac_nm ~n ~m : Implementation.t =
  let target = Consensus_obj.spec ~m () in
  let base = [| Pac_nm.spec ~n ~m () |] in
  let route (op : Op.t) =
    match (op.name, op.args) with
    | "propose", [ v ] -> (0, Pac_nm.propose_c v)
    | _ -> invalid_arg (Fmt.str "Facets.consensus_from_pac_nm: %a" Op.pp op)
  in
  Implementation.redirect
    ~name:(Fmt.str "%d-consensus-from-(%d,%d)-PAC" m n m)
    ~target ~base ~route
