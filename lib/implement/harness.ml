open Lbsa_spec
open Lbsa_runtime
open Lbsa_linearizability

(* The implementation-testing harness: drive concurrent clients through
   an implementation's operation programs under a schedule, record the
   concurrent history of target-level calls, and check it against the
   target specification with the Wing-Gong checker.

   Granularity: each base-object operation is one atomic step; a target
   call's invocation event is recorded when its program starts, its
   response event when the program reaches [Decide]. *)

(* How base-object nondeterminism is resolved, as a branch-index picker. *)
type nondet =
  | First
  | Random of Lbsa_util.Prng.t

let branch_choice = function
  | First -> fun _count -> 0
  | Random prng -> fun count -> Lbsa_util.Prng.int prng count

type client = {
  mutable todo : Op.t list;  (* target ops yet to start *)
  mutable current : (Op.t * int * Value.t) option;  (* op, inv time, local *)
  mutable done_calls : Chistory.call list;
}

type run = {
  history : Chistory.t;
  pending : Checker.pending list;
      (* target calls invoked but never answered: the run's schedule
         ended (crash plan, solo burst) mid-operation *)
  base_final : Value.t array;
  steps : int;
}

exception Stuck of string

let run_clients ?(nondet = First) ?(max_steps = 100_000)
    ~(impl : Implementation.t) ~(workloads : Op.t list array)
    ~(scheduler : Scheduler.t) () : run =
  let n = Array.length workloads in
  let clients =
    Array.map (fun ops -> { todo = ops; current = None; done_calls = [] }) workloads
  in
  let objects = Array.map (fun (s : Obj_spec.t) -> s.initial) impl.base in
  let clock = ref 0 in
  let tick () =
    incr clock;
    !clock
  in
  let choose = branch_choice nondet in
  let busy pid = clients.(pid).current <> None || clients.(pid).todo <> [] in
  (* One atomic step of client [pid]: start the next op if idle, then
     perform exactly one base step (or the final Decide). *)
  let step pid =
    let c = clients.(pid) in
    let op, inv, local =
      match c.current with
      | Some cur -> cur
      | None -> (
        match c.todo with
        | [] -> raise (Stuck (Fmt.str "client %d scheduled while idle" pid))
        | op :: rest ->
          c.todo <- rest;
          let program = impl.program ~pid op in
          (op, tick (), program.start))
    in
    let program = impl.program ~pid op in
    match program.delta ~pid local with
    | Machine.Invoke { obj; op = base_op; resume } ->
      let branches = Obj_spec.branches impl.base.(obj) objects.(obj) base_op in
      let b = List.nth branches (choose (List.length branches)) in
      objects.(obj) <- b.next;
      c.current <- Some (op, inv, resume b.response)
    | Machine.Decide response ->
      c.current <- None;
      c.done_calls <-
        Chistory.call ~pid ~op ~response ~inv ~res:(tick ()) :: c.done_calls
    | Machine.Abort ->
      raise (Stuck (Fmt.str "implementation program aborted (client %d)" pid))
  in
  let steps = ref 0 in
  let rec loop i =
    if i >= max_steps then
      raise (Stuck (Fmt.str "harness exceeded %d steps" max_steps));
    let runnable = List.filter busy (Lbsa_util.Listx.range 0 (n - 1)) in
    match runnable with
    | [] -> ()
    | _ -> (
      match scheduler.Scheduler.next ~step:i ~runnable with
      | None -> ()
      | Some pid ->
        step pid;
        incr steps;
        loop (i + 1))
  in
  loop 0;
  let history =
    Array.to_list clients
    |> List.concat_map (fun c -> List.rev c.done_calls)
    |> List.sort (fun (a : Chistory.call) b -> Stdlib.compare a.inv b.inv)
  in
  let pending =
    Array.to_list clients
    |> List.mapi (fun pid c -> (pid, c.current))
    |> List.filter_map (fun (pid, cur) ->
           Option.map
             (fun (op, inv, _) -> { Checker.pid; op; inv })
             cur)
  in
  { history; pending; base_final = objects; steps = !steps }

(* Run and check: the implementation is correct on this workload/schedule
   iff the produced concurrent history — with its in-flight calls given
   the drop-or-any-response completion semantics — linearizes against
   the target.  [session] (a [Checker.session] for [impl.target]) reuses
   the checker's spec-transition and state-set memos across checks
   (value interning is global now, so that is all a session carries);
   the outcome does not depend on it. *)
let check ?session ?(nondet = First) ?(max_steps = 100_000)
    ~(impl : Implementation.t) ~workloads ~scheduler () =
  let run = run_clients ~nondet ~max_steps ~impl ~workloads ~scheduler () in
  let session =
    match session with Some s -> s | None -> Checker.session impl.target
  in
  (run, Checker.check_with ~pending:run.pending session run.history)

(* Randomized campaign: [trials] random schedules (and random object
   adversaries) over the given workloads; returns the trial count on
   success or the first non-linearizable run.  One checker session
   serves every trial — the campaign is single-threaded and the target
   spec never changes.  The supervised variant polls [budget] before
   every trial (the harness's per-run safe point) and reports how far it
   got when cut short. *)
type campaign_outcome =
  | All_pass of int
  | Failed of int * run
  | Stopped of { completed : int; outcome : Supervisor.outcome }

let campaign_supervised ?(budget = Supervisor.Budget.unlimited) ~seed ~trials
    ~(impl : Implementation.t) ~workloads () =
  let prng = Lbsa_util.Prng.create seed in
  let session = Checker.session impl.target in
  let rec go i =
    if i >= trials then All_pass trials
    else
      match Supervisor.Budget.stop budget with
      | Some outcome -> Stopped { completed = i; outcome }
      | None -> (
        let sched_seed = Lbsa_util.Prng.int prng 1_000_000_000 in
        let nondet = Random (Lbsa_util.Prng.split prng) in
        let scheduler = Scheduler.random ~seed:sched_seed in
        let run, outcome =
          check ~session ~nondet ~impl ~workloads ~scheduler ()
        in
        match outcome with
        | Checker.Linearizable _ -> go (i + 1)
        | Checker.Not_linearizable -> Failed (i, run))
  in
  go 0

let campaign ~seed ~trials ~impl ~workloads () =
  match campaign_supervised ~seed ~trials ~impl ~workloads () with
  | All_pass n -> Ok n
  | Failed (i, run) -> Error (i, run)
  | Stopped _ -> assert false (* unlimited budget never stops *)

(* Exhaustive campaign over *all* interleavings of the client programs
   (and all object nondeterminism), for tiny workloads: enumerate every
   schedule as a sequence of client picks via DFS.  Returns the number of
   complete interleavings checked, or the first failing run. *)
let exhaustive ?(max_steps = 40) ~(impl : Implementation.t) ~workloads () =
  let n = Array.length workloads in
  let checked = ref 0 in
  let failure = ref None in
  (* One checker session for the whole enumeration: every complete
     interleaving is checked against the same target spec. *)
  let session = Checker.session impl.target in
  (* State: per-client todo/current, object states, clock, history. *)
  let rec go todo current objects clock history depth =
    if !failure <> None then ()
    else begin
      let busy pid = current.(pid) <> None || todo.(pid) <> [] in
      let runnable = List.filter busy (Lbsa_util.Listx.range 0 (n - 1)) in
      if runnable = [] then begin
        incr checked;
        let h =
          List.sort
            (fun (a : Chistory.call) b -> Stdlib.compare a.inv b.inv)
            history
        in
        match Checker.check_with session h with
        | Checker.Linearizable _ -> ()
        | Checker.Not_linearizable -> failure := Some h
      end
      else if depth >= max_steps then
        invalid_arg "Harness.exhaustive: max_steps too small for workload"
      else
        List.iter
          (fun pid ->
            if !failure = None then begin
              let op, inv, local, todo', started =
                match current.(pid) with
                | Some (op, inv, local) -> (op, inv, local, todo, false)
                | None -> (
                  match todo.(pid) with
                  | [] -> assert false
                  | op :: rest ->
                    let program = impl.program ~pid op in
                    let todo' = Array.copy todo in
                    todo'.(pid) <- rest;
                    (op, clock, program.start, todo', true))
              in
              ignore started;
              let program = impl.program ~pid op in
              match program.delta ~pid local with
              | Machine.Invoke { obj; op = base_op; resume } ->
                List.iter
                  (fun (b : Obj_spec.branch) ->
                    if !failure = None then begin
                      let objects' = Array.copy objects in
                      objects'.(obj) <- b.next;
                      let current' = Array.copy current in
                      current'.(pid) <- Some (op, inv, resume b.response);
                      go todo' current' objects' (clock + 1) history (depth + 1)
                    end)
                  (Obj_spec.branches impl.base.(obj) objects.(obj) base_op)
              | Machine.Decide response ->
                let current' = Array.copy current in
                current'.(pid) <- None;
                let call =
                  Chistory.call ~pid ~op ~response ~inv ~res:(clock + 1)
                in
                go todo' current' objects (clock + 2) (call :: history)
                  (depth + 1)
              | Machine.Abort ->
                failwith "Harness.exhaustive: implementation program aborted"
            end)
          runnable
    end
  in
  let todo = Array.map (fun ops -> ops) workloads in
  let current = Array.make n None in
  let objects = Array.map (fun (s : Obj_spec.t) -> s.initial) impl.base in
  go todo current objects 1 [] 0;
  match !failure with
  | None -> Ok !checked
  | Some h -> Error h
