(** Implementation-testing harness: drive concurrent clients through an
    implementation's operation programs, record the target-level
    concurrent history, and check linearizability against the target
    specification. *)

open Lbsa_spec
open Lbsa_runtime
open Lbsa_linearizability

type nondet =
  | First
  | Random of Lbsa_util.Prng.t

type run = {
  history : Chistory.t;
  pending : Checker.pending list;
      (** target calls invoked but never answered (the schedule ended
          mid-operation, e.g. under a crash plan) *)
  base_final : Value.t array;
  steps : int;
}

exception Stuck of string

val run_clients :
  ?nondet:nondet ->
  ?max_steps:int ->
  impl:Implementation.t ->
  workloads:Op.t list array ->
  scheduler:Scheduler.t ->
  unit ->
  run

val check :
  ?session:Checker.session ->
  ?nondet:nondet ->
  ?max_steps:int ->
  impl:Implementation.t ->
  workloads:Op.t list array ->
  scheduler:Scheduler.t ->
  unit ->
  run * Checker.outcome
(** [session] must be a [Checker.session] for [impl.target]; passing one
    reuses its interning tables across calls (the outcome does not depend
    on it).  Campaign-style callers should create one per domain. *)

val campaign :
  seed:int ->
  trials:int ->
  impl:Implementation.t ->
  workloads:Op.t list array ->
  unit ->
  (int, int * run) result
(** [trials] random schedules and object adversaries; [Error (i, run)]
    is the first non-linearizable run. *)

type campaign_outcome =
  | All_pass of int
  | Failed of int * run  (** first non-linearizable run *)
  | Stopped of { completed : int; outcome : Supervisor.outcome }
      (** budget fired after [completed] trials *)

val campaign_supervised :
  ?budget:Supervisor.Budget.t ->
  seed:int ->
  trials:int ->
  impl:Implementation.t ->
  workloads:Op.t list array ->
  unit ->
  campaign_outcome
(** {!campaign} with a {!Supervisor.Budget.t} polled before every trial
    — deadline and cancellation-aware; identical trial sequence. *)

val exhaustive :
  ?max_steps:int ->
  impl:Implementation.t ->
  workloads:Op.t list array ->
  unit ->
  (int, Chistory.t) result
(** Check every interleaving of the client programs (and every object
    branch) for a tiny workload; [Ok n] is the number of complete
    interleavings checked. *)
