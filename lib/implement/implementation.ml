open Lbsa_spec
open Lbsa_runtime

(* Wait-free implementations of a target object from base objects — the
   paper's notion "object A can be implemented from instances of B and
   registers".

   An implementation gives, for every target operation, a small step
   machine over the base objects; each [Machine.Invoke] is one atomic
   base step, and [Machine.Decide v] means "the target operation returns
   v".  The harness (Harness module) drives concurrent clients through
   these programs and checks the resulting concurrent history against
   the target's sequential specification with the Wing-Gong checker. *)

type op_program = {
  start : Value.t;  (* initial local state of the operation *)
  delta : pid:int -> Value.t -> Machine.step;
}

type t = {
  name : string;
  target : Obj_spec.t;  (* what we claim to implement *)
  base : Obj_spec.t array;  (* the objects we implement it from *)
  program : pid:int -> Op.t -> op_program;
}

let make ~name ~target ~base ~program = { name; target; base; program }

(* The trivial self-implementation: every target operation is a single
   step on a base instance of the target itself.  Used to sanity-check
   the harness. *)
let identity (spec : Obj_spec.t) =
  {
    name = Fmt.str "identity-%s" spec.Obj_spec.name;
    target = spec;
    base = [| spec |];
    program =
      (fun ~pid:_ op ->
        {
          start = Value.sym "invoke";
          delta =
            (fun ~pid:_ state ->
              match state with
              | { Value.node = Sym "invoke"; _ } ->
                Machine.invoke 0 op (fun r -> Value.pair (Value.sym "return", r))
              | { Value.node = Pair ({ node = Sym "return"; _ }, r); _ } ->
                Machine.Decide r
              | s -> Machine.bad_state ~machine:"identity" ~pid:0 s);
        });
  }

(* An implementation whose every target operation maps to exactly one
   base operation (a "redirection", as in Observations 5.1(b,c) and the
   definition of the (n,m)-PAC object). *)
let redirect ~name ~target ~base ~(route : Op.t -> int * Op.t) =
  {
    name;
    target;
    base;
    program =
      (fun ~pid:_ op ->
        let obj, base_op = route op in
        {
          start = Value.sym "invoke";
          delta =
            (fun ~pid state ->
              match state with
              | { Value.node = Sym "invoke"; _ } ->
                Machine.invoke obj base_op (fun r ->
                    Value.pair (Value.sym "return", r))
              | { Value.node = Pair ({ node = Sym "return"; _ }, r); _ } ->
                Machine.Decide r
              | s -> Machine.bad_state ~machine:name ~pid s);
        });
  }
