open Lbsa_spec
open Lbsa_objects

(* Lemma 6.4: O'_n can be implemented from n-consensus objects and 2-SA
   objects (no registers even needed).

   The implementation mirrors the paper's proof exactly:
   - the (n_1, 1)-SA member (n_1 = n by Observation 6.2) is implemented
     by one n-consensus object: the first n proposers all receive the
     first proposed value, which is a valid "arbitrary solution" to
     1-set agreement among n processes;
   - for every k >= 2, the (n_k, k)-SA member is implemented by one 2-SA
     object: its responses are among the first two distinct proposed
     values, so at most 2 <= k distinct values are returned and validity
     holds.

   Base objects: index 0 is the n-consensus object; index k-1 (for
   k >= 2) is the 2-SA object serving level k.

   One subtlety, faithful to the paper: an (n_k, k)-SA object answers ⊥
   once its n_k ports are exhausted, while a 2-SA object keeps answering
   values.  O'_n is only ever used by at most n_k processes on member k
   (that is its interface contract), so harness workloads must respect
   the port bounds; within them the implementation is linearizable. *)

let base ~(power : O_prime.power) : Obj_spec.t array =
  match power with
  | [] -> invalid_arg "Oprime_impl.base: empty power sequence"
  | n1 :: rest ->
    Array.of_list
      (Consensus_obj.spec ~m:n1 ()
      :: List.map (fun _ -> Sa2.spec ()) rest)

let implementation ~(power : O_prime.power) : Implementation.t =
  let target = O_prime.spec ~power () in
  let route (op : Op.t) =
    match (op.name, op.args) with
    | "propose", [ v; { Value.node = Int 1; _ } ] -> (0, Consensus_obj.propose v)
    | "propose", [ v; { Value.node = Int k; _ } ] when k >= 2 && k <= List.length power ->
      (k - 1, Sa2.propose v)
    | _ ->
      invalid_arg (Fmt.str "Oprime_impl: unsupported operation %a" Op.pp op)
  in
  Implementation.redirect ~name:"O'_n-from-n-consensus-and-2-SA" ~target
    ~base:(base ~power) ~route

let for_n ~n ~max_k =
  implementation ~power:(O_prime.default_power ~n ~max_k)
