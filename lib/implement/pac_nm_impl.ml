open Lbsa_spec
open Lbsa_objects

(* Observation 5.1(a): an (n,m)-PAC object can be implemented from an
   n-PAC object and an m-consensus object — the operations simply
   redirect to the corresponding facet. *)

let implementation ~n ~m : Implementation.t =
  let target = Pac_nm.spec ~n ~m () in
  let base = [| Pac.spec ~n (); Consensus_obj.spec ~m () |] in
  let route (op : Op.t) =
    match (op.name, op.args) with
    | "proposeC", [ v ] -> (1, Consensus_obj.propose v)
    | "proposeP", [ v; { Value.node = Int i; _ } ] -> (0, Pac.propose v i)
    | "decideP", [ { Value.node = Int i; _ } ] -> (0, Pac.decide i)
    | _ ->
      invalid_arg (Fmt.str "Pac_nm_impl: unsupported operation %a" Op.pp op)
  in
  Implementation.redirect
    ~name:(Fmt.str "(%d,%d)-PAC-from-%d-PAC-and-%d-consensus" n m n m)
    ~target ~base ~route
