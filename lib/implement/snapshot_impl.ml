open Lbsa_spec
open Lbsa_objects
open Lbsa_runtime

(* The classic wait-free atomic snapshot from single-writer registers
   (Afek, Attiya, Dolev, Gafni, Merritt, Shavit 1993), the canonical
   "registers implement snapshots" substrate of Herlihy's model.

   n processes, n components; process pid updates component pid only.
   Register pid holds List [Int seq; value; view] where [view] is the
   result of the embedded scan performed by the update that wrote it.

   scan():
     collect the registers repeatedly;
     - two consecutive collects with equal sequence numbers: return the
       common values (a "clean double collect");
     - some component changed twice across our collects: its latest
       content embeds a view obtained by a scan that started after ours
       did; return that view.
   update(v):
     read own register (for the sequence number), perform an embedded
     scan, then write (seq+1, v, view).

   Also provided: [naive ~n], the broken single-collect scan, which the
   linearizability checker refutes (a negative fixture). *)

let reg_content ~seq ~value ~view = Value.list [ Value.int seq; value; view ]

let initial_view n = Value.list (List.init n (fun _ -> Value.nil))

let initial_reg n = reg_content ~seq:0 ~value:Value.nil ~view:(initial_view n)

let seq_of = function
  | { Value.node = List [ { node = Int seq; _ }; _; _ ]; _ } -> seq
  | v -> invalid_arg (Fmt.str "Snapshot_impl: bad register content %a" Value.pp v)

let value_of = function
  | { Value.node = List [ _; value; _ ]; _ } -> value
  | v -> invalid_arg (Fmt.str "Snapshot_impl: bad register content %a" Value.pp v)

let view_of = function
  | { Value.node = List [ _; _; view ]; _ } -> view
  | v -> invalid_arg (Fmt.str "Snapshot_impl: bad register content %a" Value.pp v)

(* --- the scan state machine ------------------------------------------

   Scan state: List [Sym "scanning"; prev; moved; partial]
   - prev: Nil, or the previous complete collect (List of reg contents);
   - moved: Assoc comp -> Int count of observed changes;
   - partial: the current collect so far, reversed.

   [scan_step] performs one register read; [wrap] embeds intermediate
   scan states into the caller's state space and [k] receives the final
   view. *)

let scanning = Value.sym "scanning"

let scan_state ~prev ~moved ~partial =
  Value.list [ scanning; prev; moved; Value.list partial ]

let start_scan = scan_state ~prev:Value.nil ~moved:Value.Assoc.empty ~partial:[]

let is_scan_state = function
  | { Value.node = List [ tag; _; _; _ ]; _ } -> Value.equal tag scanning
  | _ -> false

(* A collect just completed: decide whether the scan is done. *)
let finish_or_continue ~n ~prev ~moved cur =
  let cur_list = Value.to_list_exn cur in
  match prev with
  | { Value.node = Nil; _ } -> `Continue (scan_state ~prev:cur ~moved ~partial:[])
  | _ ->
    let prev_list = Value.to_list_exn prev in
    let changed =
      List.filter
        (fun j -> seq_of (List.nth prev_list j) <> seq_of (List.nth cur_list j))
        (Lbsa_util.Listx.range 0 (n - 1))
    in
    if changed = [] then `Done (Value.list (List.map value_of cur_list))
    else begin
      let moved, borrowed =
        List.fold_left
          (fun (moved, borrowed) j ->
            let key = Value.int j in
            let count =
              match Value.Assoc.get moved key with
              | Some { Value.node = Int c; _ } -> c
              | _ -> 0
            in
            let moved = Value.Assoc.set moved key (Value.int (count + 1)) in
            let borrowed =
              if count + 1 >= 2 && borrowed = None then
                Some (view_of (List.nth cur_list j))
              else borrowed
            in
            (moved, borrowed))
          (moved, None) changed
      in
      match borrowed with
      | Some view -> `Done view
      | None -> `Continue (scan_state ~prev:cur ~moved ~partial:[])
    end

let scan_step ~n ~wrap ~k state : Machine.step =
  match state with
  | { Value.node = List [ _tag; prev; moved; { node = List partial; _ } ]; _ } ->
    let idx = List.length partial in
    Machine.invoke idx Register.read (fun r ->
        let partial = r :: partial in
        if List.length partial < n then
          wrap (scan_state ~prev ~moved ~partial)
        else
          let cur = Value.list (List.rev partial) in
          match finish_or_continue ~n ~prev ~moved cur with
          | `Done view -> k view
          | `Continue state' -> wrap state')
  | s -> invalid_arg (Fmt.str "Snapshot_impl.scan_step: %a" Value.pp s)

(* --- the implementation ---------------------------------------------- *)

let implementation ~n : Implementation.t =
  let base = Array.init n (fun _ -> Register.spec ~init:(initial_reg n) ()) in
  let program ~pid (op : Op.t) : Implementation.op_program =
    match (op.name, op.args) with
    | "scan", [] ->
      {
        start = start_scan;
        delta =
          (fun ~pid state ->
            match state with
            | s when is_scan_state s ->
              scan_step ~n
                ~wrap:(fun s' -> s')
                ~k:(fun view -> Value.pair (Value.sym "return", view))
                s
            | { Value.node = Pair ({ node = Sym "return"; _ }, view); _ } ->
              Machine.Decide view
            | s -> Machine.bad_state ~machine:"snapshot-scan" ~pid s);
      }
    | "update", [ { Value.node = Int i; _ }; v ] when i = pid ->
      (* States: Sym "read-own"
                 -> Pair (Int seq, <scan state>)      (embedded scan)
                 -> Pair (Int seq, Pair ("write", view))
                 -> Sym "done" *)
      {
        start = Value.sym "read-own";
        delta =
          (fun ~pid state ->
            match state with
            | { Value.node = Sym "read-own"; _ } ->
              Machine.invoke pid Register.read (fun r ->
                  Value.pair (Value.int (seq_of r), start_scan))
            | { Value.node = Pair (({ node = Int seq; _ } as hdr), inner); _ }
              -> (
              if is_scan_state inner then
                scan_step ~n
                  ~wrap:(fun s' -> Value.pair (hdr, s'))
                  ~k:(fun view ->
                    Value.pair (hdr, Value.pair (Value.sym "write", view)))
                  inner
              else
                match inner with
                | { Value.node = Pair ({ node = Sym "write"; _ }, view); _ } ->
                  Machine.invoke pid
                    (Register.write
                       (reg_content ~seq:(seq + 1) ~value:v ~view))
                    (fun _ -> Value.sym "done")
                | s -> Machine.bad_state ~machine:"snapshot-update" ~pid s)
            | { Value.node = Sym "done"; _ } -> Machine.Decide Value.unit_
            | s -> Machine.bad_state ~machine:"snapshot-update" ~pid s);
      }
    | "update", [ { Value.node = Int i; _ }; _ ] ->
      invalid_arg
        (Fmt.str
           "Snapshot_impl: single-writer snapshot; process %d cannot update \
            component %d"
           pid i)
    | _ -> invalid_arg (Fmt.str "Snapshot_impl: unsupported %a" Op.pp op)
  in
  Implementation.make
    ~name:(Fmt.str "%d-snapshot-from-registers" n)
    ~target:(Classic.Snapshot.spec ~m:n ())
    ~base ~program

(* The broken single-collect scan: reads each register once and returns
   what it saw.  Not linearizable under concurrent updates. *)
let naive ~n : Implementation.t =
  let base = Array.init n (fun _ -> Register.spec ~init:(initial_reg n) ()) in
  let program ~pid (op : Op.t) : Implementation.op_program =
    match (op.name, op.args) with
    | "scan", [] ->
      {
        start = Value.list [];
        delta =
          (fun ~pid state ->
            match state with
            | { Value.node = List partial; _ } when List.length partial < n ->
              Machine.invoke (List.length partial) Register.read (fun r ->
                  Value.list (partial @ [ value_of r ]))
            | { Value.node = List partial; _ } ->
              Machine.Decide (Value.list partial)
            | s -> Machine.bad_state ~machine:"naive-scan" ~pid s);
      }
    | "update", [ { Value.node = Int i; _ }; v ] when i = pid ->
      {
        start = Value.sym "read-own";
        delta =
          (fun ~pid state ->
            match state with
            | { Value.node = Sym "read-own"; _ } ->
              Machine.invoke pid Register.read (fun r ->
                  Value.pair (Value.sym "write", Value.int (seq_of r)))
            | {
                Value.node =
                  Pair ({ node = Sym "write"; _ }, { node = Int seq; _ });
                _;
              } ->
              Machine.invoke pid
                (Register.write
                   (reg_content ~seq:(seq + 1) ~value:v ~view:(initial_view n)))
                (fun _ -> Value.sym "done")
            | { Value.node = Sym "done"; _ } -> Machine.Decide Value.unit_
            | s -> Machine.bad_state ~machine:"naive-update" ~pid s);
      }
    | _ -> invalid_arg (Fmt.str "Snapshot_impl.naive: unsupported %a" Op.pp op)
  in
  Implementation.make
    ~name:(Fmt.str "naive-%d-snapshot" n)
    ~target:(Classic.Snapshot.spec ~m:n ())
    ~base ~program
