open Lbsa_spec
open Lbsa_objects
open Lbsa_runtime

(* Herlihy's universal construction — the theorem the paper's whole
   question rests on ("instances of any object with consensus number n,
   together with registers, can implement ... any object that can be
   shared by up to n processes", Herlihy 1991, cited in Section 1).

   Given any *deterministic* target specification and n client processes,
   we implement the target from:

   - announce registers   announce[0..n-1]
   - progress registers   progress[0..n-1]
   - a chain of n-consensus objects, slot[0..max_slots-1]

   The shared log of operations is the sequence of slot decisions; each
   decision is an entry Pair(uid, encoded-op) where uid = (pid, seq)
   identifies one client operation.  A process performing an operation:

   1. reads its progress register (frontier slot s0 + log prefix; both
      were written by its own previous operation, so they are current
      for this process);
   2. announces Pair(uid, op) in announce[pid];
   3. walks slots s = s0, s0+1, ...: at slot s it first helps — it reads
      announce[s mod n] and proposes that entry if it is pending (not in
      its log copy) — otherwise proposes its own entry; the propose
      response *is* the slot's decision (the consensus object answers
      every one of its first n proposers, and each process proposes at
      most once per slot, so the port budget is exactly respected);
   4. appends the decision to its log copy; when its own uid appears,
      it computes the response by replaying the deduplicated log against
      the target specification, saves (s+1, log) in its progress
      register, clears its announcement and returns.

   Round-robin helping makes the construction wait-free: once a process
   has announced, every process passing the slot s with s mod n = pid
   proposes its entry, so it is decided within ~2n slots.  The same
   entry can be decided by two different slots (a helper may act on a
   stale log copy); replay deduplicates by uid, keeping the first
   occurrence — the linearization order is the deduplicated log order.

   The construction needs a finite slot chain here only because the
   harness's object array is finite; [max_slots] must cover the
   workload (roughly 2x the total operation count plus n). *)

(* --- value encodings --------------------------------------------------- *)

let encode_op (op : Op.t) = Value.pair (Value.sym op.Op.name, Value.list op.Op.args)

let decode_op = function
  | { Value.node = Pair ({ node = Sym name; _ }, { node = List args; _ }); _ } ->
    Op.make name args
  | v -> invalid_arg (Fmt.str "Universal.decode_op: %a" Value.pp v)

let entry ~uid ~op = Value.pair (uid, encode_op op)

let uid_of_entry = function
  | { Value.node = Pair (uid, _); _ } -> uid
  | v -> invalid_arg (Fmt.str "Universal.uid_of_entry: %a" Value.pp v)

let op_of_entry = function
  | { Value.node = Pair (_, enc); _ } -> decode_op enc
  | v -> invalid_arg (Fmt.str "Universal.op_of_entry: %a" Value.pp v)

(* Deduplicate a raw log by uid, keeping first occurrences. *)
let dedup_log entries =
  let rec go seen = function
    | [] -> []
    | e :: rest ->
      let uid = uid_of_entry e in
      if List.exists (Value.equal uid) seen then go seen rest
      else e :: go (uid :: seen) rest
  in
  go [] entries

(* Replay the deduplicated log against the target; return the response
   of the entry with the given uid (which must be present). *)
let response_of ~(target : Obj_spec.t) ~uid raw_entries =
  let rec go state = function
    | [] -> invalid_arg "Universal.response_of: uid not in log"
    | e :: rest ->
      let state', response = Obj_spec.apply_det target state (op_of_entry e) in
      if Value.equal (uid_of_entry e) uid then response else go state' rest
  in
  go target.Obj_spec.initial (dedup_log raw_entries)

let count_own ~pid raw_entries =
  List.length
    (List.filter
       (fun e ->
         match uid_of_entry e with
         | { Value.node = Pair ({ node = Int p; _ }, _); _ } -> p = pid
         | _ -> false)
       (dedup_log raw_entries))

let in_log ~uid raw_entries =
  List.exists (fun e -> Value.equal (uid_of_entry e) uid) raw_entries

(* --- the implementation ------------------------------------------------ *)

exception Out_of_slots of string
exception Port_budget_exceeded of string

(* [consensus_m] defaults to [n]; exposing it lets the Theorem 7.1
   boundary be demonstrated executably: with m < n clients' worth of
   consensus ports per slot, some slot eventually answers ⊥ to its
   (m+1)-th proposer and the construction collapses — n-consensus
   objects cannot drive a universal construction for n+1 processes. *)
let implementation ?(max_slots = 64) ?consensus_m ~n ~(target : Obj_spec.t) ()
    : Implementation.t =
  if n < 1 then invalid_arg "Universal.implementation: n >= 1";
  let consensus_m = Option.value consensus_m ~default:n in
  let announce pid = pid in
  let progress pid = n + pid in
  let slot s =
    if s >= max_slots then
      raise
        (Out_of_slots
           (Fmt.str "universal construction exhausted %d slots" max_slots))
    else (2 * n) + s
  in
  let base =
    Array.init
      ((2 * n) + max_slots)
      (fun i ->
        if i < n then Register.spec () (* announce *)
        else if i < 2 * n then
          Register.spec ~init:Value.(pair (int 0, list [])) () (* progress *)
        else Consensus_obj.spec ~m:consensus_m ())
  in
  (* Local states of one operation's program:
       Sym "start"
       Pair(Sym "announce",  Pair(uid, Pair(Int s, List log)))
       Pair(Sym "help",      Pair(uid, Pair(Int s, List log)))
       Pair(Sym "propose",   Pair(uid, Pair(Int s, Pair(List log, cand))))
       Pair(Sym "return",    response)                                  *)
  let walk ~uid ~s ~log tag =
    Value.(pair (sym tag, pair (uid, pair (int s, list log))))
  in
  let program ~pid:_ (op : Op.t) : Implementation.op_program =
    let name = "universal" in
    let delta ~pid state =
      match state with
      | { Value.node = Sym "start"; _ } ->
        Machine.invoke (progress pid) Register.read (fun pr ->
            match pr with
            | {
                Value.node = Pair ({ node = Int s; _ }, { node = List log; _ });
                _;
              } ->
              let seq = count_own ~pid log + 1 in
              let uid = Value.(pair (int pid, int seq)) in
              walk ~uid ~s ~log "announce"
            | v ->
              invalid_arg
                (Fmt.str "universal: bad progress register %a" Value.pp v))
      | {
          Value.node =
            Pair
              ( { node = Sym "announce"; _ },
                {
                  node =
                    Pair
                      ( uid,
                        {
                          node = Pair ({ node = Int s; _ }, { node = List log; _ });
                          _;
                        } );
                  _;
                } );
          _;
        } ->
        Machine.invoke (announce pid)
          (Register.write (entry ~uid ~op))
          (fun _ -> walk ~uid ~s ~log "help")
      | {
          Value.node =
            Pair
              ( { node = Sym "help"; _ },
                {
                  node =
                    Pair
                      ( uid,
                        {
                          node = Pair ({ node = Int s; _ }, { node = List log; _ });
                          _;
                        } );
                  _;
                } );
          _;
        } ->
        (* Read the announce register of the process this slot helps. *)
        Machine.invoke (announce (s mod n)) Register.read (fun a ->
            let own = entry ~uid ~op in
            let cand =
              match a with
              | { Value.node = Pair (auid, _); _ }
                when (not (Value.equal auid uid)) && not (in_log ~uid:auid log)
                ->
                a
              | _ -> own
            in
            Value.(
              pair
                ( sym "propose",
                  pair (uid, pair (int s, pair (list log, cand))) )))
      | {
          Value.node =
            Pair
              ( { node = Sym "propose"; _ },
                {
                  node =
                    Pair
                      ( uid,
                        {
                          node =
                            Pair
                              ( { node = Int s; _ },
                                { node = Pair ({ node = List log; _ }, cand); _ }
                              );
                          _;
                        } );
                  _;
                } );
          _;
        } ->
        Machine.invoke (slot s)
          (Consensus_obj.propose cand)
          (fun decided ->
            if Value.is_bot decided then
              raise
                (Port_budget_exceeded
                   "universal: a slot answered ⊥ — more proposers than the \
                    consensus objects have ports (Theorem 7.1 boundary)")
            else
              let log = log @ [ decided ] in
              if Value.equal (uid_of_entry decided) uid then
                Value.(
                  pair
                    ( sym "record",
                      pair (uid, pair (int (s + 1), list log)) ))
              else walk ~uid ~s:(s + 1) ~log "help")
      | {
          Value.node =
            Pair
              ( { node = Sym "record"; _ },
                {
                  node =
                    Pair
                      ( uid,
                        {
                          node = Pair ({ node = Int s; _ }, { node = List log; _ });
                          _;
                        } );
                  _;
                } );
          _;
        } ->
        (* Save the frontier, then clear the announcement and return. *)
        Machine.invoke (progress pid)
          (Register.write Value.(pair (int s, list log)))
          (fun _ ->
            Value.(pair (sym "clear", pair (uid, list log))))
      | {
          Value.node =
            Pair
              ( { node = Sym "clear"; _ },
                { node = Pair (uid, { node = List log; _ }); _ } );
          _;
        } ->
        Machine.invoke (announce pid) (Register.write Value.nil) (fun _ ->
            Value.pair (Value.sym "return", response_of ~target ~uid log))
      | { Value.node = Pair ({ node = Sym "return"; _ }, response); _ } ->
        Machine.Decide response
      | s -> Machine.bad_state ~machine:name ~pid s
    in
    { Implementation.start = Value.sym "start"; delta }
  in
  Implementation.make
    ~name:(Fmt.str "universal-%s-from-%d-consensus" target.Obj_spec.name n)
    ~target ~base ~program
