open Lbsa_spec

(* Wing-Gong linearizability checker, extended to nondeterministic
   sequential specifications.

   A complete concurrent history H is linearizable with respect to spec S
   iff there is a total order of its calls that (i) extends the real-time
   precedence order of H and (ii) is an admissible sequential history of
   S (some resolution of S's nondeterminism produces exactly the recorded
   responses).

   The search is a DFS over "linearize next some call all of whose
   predecessors are already linearized", threading the *set* of possible
   specification states (a set because the spec may be nondeterministic).
   Memoization on (linearized-call bitmask, state set) prunes the
   exponential blowup; histories are expected to be small (tens of
   calls).

   Pending calls (invoked but never answered — a process crashed or was
   starved mid-operation) get the standard completion semantics: each one
   may either be dropped (it never took effect) or linearized anywhere
   after its invocation with ANY response the specification allows
   (nobody observed the answer, so it is unconstrained).  The DFS treats
   a pending call as an optional step whose application unions the
   next-states of every branch. *)

module VSet = Set.Make (Value)

type pending = { pid : int; op : Op.t; inv : int }

type outcome =
  | Linearizable of Chistory.call list  (* a witness linearization *)
  | Not_linearizable

let is_linearizable outcome =
  match outcome with
  | Linearizable _ -> true
  | Not_linearizable -> false

let max_calls = 62

let check ?(memo = true) ?(pending = []) (spec : Obj_spec.t) (h : Chistory.t) :
    outcome =
  if not (Chistory.well_formed h) then
    invalid_arg "Checker.check: history is not well-formed";
  let calls = Array.of_list h in
  let nc = Array.length calls in
  let pend = Array.of_list pending in
  let np = Array.length pend in
  let n = nc + np in
  if n > max_calls then
    invalid_arg
      (Fmt.str "Checker.check: history too long (> %d calls)" max_calls);
  (* A pending call must lie after every completed call of its process. *)
  Array.iter
    (fun (p : pending) ->
      Array.iter
        (fun (c : Chistory.call) ->
          if c.pid = p.pid && c.res >= p.inv then
            invalid_arg "Checker.check: pending call overlaps its process")
        calls)
    pend;
  (* Calls are indexed [0, nc) completed then [nc, n) pending.
     pred_mask.(i) = bitmask of calls that must precede call i.  Pending
     calls never respond, so nothing is ever constrained to follow one:
     their bits appear in no mask. *)
  let pred_mask =
    Array.init n (fun i ->
        let m = ref 0 in
        if i < nc then
          for j = 0 to nc - 1 do
            if j <> i && Chistory.precedes calls.(j) calls.(i) then
              m := !m lor (1 lsl j)
          done
        else
          for j = 0 to nc - 1 do
            if calls.(j).res < pend.(i - nc).inv then m := !m lor (1 lsl j)
          done;
        !m)
  in
  let full_completed = (1 lsl nc) - 1 in
  (* Memo: (done_mask, states) -> false means "no completion from here".
     Positive results short-circuit the DFS by raising. *)
  let visited : (int * Value.t list, unit) Hashtbl.t = Hashtbl.create 256 in
  let exception Found of Chistory.call list in
  let apply_call states (c : Chistory.call) =
    VSet.fold
      (fun s acc ->
        List.fold_left
          (fun acc (b : Obj_spec.branch) ->
            if Value.equal b.response c.response then VSet.add b.next acc
            else acc)
          acc
          (Obj_spec.branches spec s c.op))
      states VSet.empty
  in
  (* A linearized pending call may take any branch. *)
  let apply_pending states (p : pending) =
    VSet.fold
      (fun s acc ->
        List.fold_left
          (fun acc (b : Obj_spec.branch) -> VSet.add b.next acc)
          acc
          (Obj_spec.branches spec s p.op))
      states VSet.empty
  in
  let rec go done_mask states acc =
    if done_mask land full_completed = full_completed then
      raise (Found (List.rev acc))
    else
      let key = (done_mask, VSet.elements states) in
      if memo && Hashtbl.mem visited key then ()
      else begin
        for i = 0 to n - 1 do
          let bit = 1 lsl i in
          if done_mask land bit = 0 && pred_mask.(i) land lnot done_mask = 0
          then
            if i < nc then begin
              let states' = apply_call states calls.(i) in
              if not (VSet.is_empty states') then
                go (done_mask lor bit) states' (calls.(i) :: acc)
            end
            else
              (* The witness lists completed calls only; a linearized
                 pending call has no recorded response to report. *)
              go (done_mask lor bit) (apply_pending states pend.(i - nc)) acc
        done;
        if memo then Hashtbl.replace visited key ()
      end
  in
  match go 0 (VSet.singleton spec.initial) [] with
  | () -> Not_linearizable
  | exception Found order -> Linearizable order

let pp_outcome ppf = function
  | Linearizable order ->
    Fmt.pf ppf "linearizable; witness:@,%a" Chistory.pp order
  | Not_linearizable -> Fmt.string ppf "NOT linearizable"
