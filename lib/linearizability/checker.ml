open Lbsa_spec

(* Wing-Gong linearizability checker, extended to nondeterministic
   sequential specifications.

   A complete concurrent history H is linearizable with respect to spec S
   iff there is a total order of its calls that (i) extends the real-time
   precedence order of H and (ii) is an admissible sequential history of
   S (some resolution of S's nondeterminism produces exactly the recorded
   responses).

   The search is a DFS over "linearize next some call all of whose
   predecessors are already linearized", threading the *set* of possible
   specification states (a set because the spec may be nondeterministic).
   Memoization on (linearized-call bitmask, state set) prunes the
   exponential blowup; histories are expected to be small (tens of
   calls).

   Spec states are hash-consed [Value]s, so each state already carries a
   canonical small int: its global intern id.  The per-session
   state-interning layer the checker used to maintain (a value-to-id
   hashtable plus an id-to-value array, rebuilt per session) collapsed
   onto those ids and was deleted.  Canonical state sets (members sorted
   by value id) are still interned per session, so the DFS threads a
   single machine int per node and the memo key is just
   [(done_mask, set id)] — no structural hashing or comparison of value
   trees anywhere on the hot path.  Sorting set members by intern id is
   safe despite ids being allocation-order-dependent: the order is a
   private canonical form for the session's memo tables and never
   reaches a caller (see the invariant note in [Value]).  On top of that
   the session memoizes whole transitions:
   [(set id, op id) -> [(response, next set id)]], filled from the
   [Obj_spec.branches] memo on first use.  The same (state set, op,
   response) triples recur across DFS branches and across the thousands
   of checks of a harness campaign or fuzz run, so a warm session
   resolves each DFS step with one small hashtable probe.  A session may
   be reused for any number of checks against the same spec (it only
   ever caches spec-determined facts, so results are identical with a
   fresh one); it is not thread-safe — use one session per domain.

   Pending calls (invoked but never answered — a process crashed or was
   starved mid-operation) get the standard completion semantics: each one
   may either be dropped (it never took effect) or linearized anywhere
   after its invocation with ANY response the specification allows
   (nobody observed the answer, so it is unconstrained).  The DFS treats
   a pending call as an optional step whose application unions the
   next-states of every branch. *)

module OTbl = Hashtbl.Make (struct
  type t = Op.t

  let equal = Op.equal
  let hash = Op.hash
end)

type pending = { pid : int; op : Op.t; inv : int }

type outcome =
  | Linearizable of Chistory.call list  (* a witness linearization *)
  | Not_linearizable

let is_linearizable outcome =
  match outcome with
  | Linearizable _ -> true
  | Not_linearizable -> false

(* The DFS packs the linearized-call set into one OCaml int bitmask; the
   top (sign) bit stays clear so mask arithmetic is order-preserving. *)
let max_calls = Sys.int_size - 1

type session = {
  spec : Obj_spec.t;
  op_ids : int OTbl.t;
  mutable n_ops : int;
  mutable last_op : (Op.t * int) option;
      (* one-entry structural cache in front of [op_ids]: workloads draw
         from a small op menu, so consecutive calls usually carry equal
         ops and [Op.equal] is cheaper than hashing *)
  branch_tbl : (int * int, (Value.t * Value.t) array) Hashtbl.t;
      (* (state value id, op id) -> [(next state, response)] *)
  set_ids : (int list, int) Hashtbl.t;
      (* sorted state value ids -> set id *)
  mutable set_members : Value.t list array;  (* set id -> members, id-sorted *)
  mutable n_sets : int;
  mutable trans : (int * Value.t * int) list array;
      (* set id -> (op id, response, successor set id), filled lazily per
         (op, response); -1 marks "no state admits this response".  Any
         one set sees a handful of (op, response) pairs, so an assoc list
         behind an array index beats a hashtable probe. *)
  mutable trans_any : (int * int) list array;
      (* set id -> (op id, successor set id over ALL branches) — pending
         calls, whose response is unconstrained *)
  mutable init_set : int;  (* interned {initial} *)
}

(* The session's canonical member order: by global intern id.  Ids are
   allocation-order-dependent, but this order is a private key format
   for [set_ids]/[set_members] and never escapes the session, so no
   observable result depends on it. *)
let compare_by_id (a : Value.t) (b : Value.t) = Int.compare a.Value.id b.Value.id

let intern_op t op =
  match t.last_op with
  | Some (o, i) when Op.equal o op -> i
  | _ ->
    let i =
      match OTbl.find_opt t.op_ids op with
      | Some i -> i
      | None ->
        let i = t.n_ops in
        OTbl.add t.op_ids op i;
        t.n_ops <- i + 1;
        i
    in
    t.last_op <- Some (op, i);
    i

(* [members] must be sorted by [compare_by_id] and duplicate-free. *)
let intern_set t members =
  let ids = List.map (fun (v : Value.t) -> v.Value.id) members in
  match Hashtbl.find_opt t.set_ids ids with
  | Some i -> i
  | None ->
    let i = t.n_sets in
    if i = Array.length t.set_members then begin
      let cap = max 8 (2 * i) in
      let a = Array.make cap members in
      Array.blit t.set_members 0 a 0 i;
      t.set_members <- a;
      let tr = Array.make cap [] in
      Array.blit t.trans 0 tr 0 i;
      t.trans <- tr;
      let ta = Array.make cap [] in
      Array.blit t.trans_any 0 ta 0 i;
      t.trans_any <- ta
    end;
    t.set_members.(i) <- members;
    Hashtbl.add t.set_ids ids i;
    t.n_sets <- i + 1;
    i

let branches t (s : Value.t) op_id op =
  let key = (s.Value.id, op_id) in
  match Hashtbl.find_opt t.branch_tbl key with
  | Some a -> a
  | None ->
    let bs = Obj_spec.branches t.spec s op in
    let a =
      Array.of_list
        (List.map (fun (b : Obj_spec.branch) -> (b.next, b.response)) bs)
    in
    Hashtbl.add t.branch_tbl key a;
    a

(* Successor set of [set_id] under a completed call: every branch of
   every member state whose response matches.  Memoized per (set, op)
   as a response assoc; returns -1 when the set dies. *)
let step t set_id op_id op response =
  let rec assoc = function
    | [] ->
      let acc = ref [] in
      List.iter
        (fun s ->
          Array.iter
            (fun (next, resp) ->
              if Value.equal resp response then acc := next :: !acc)
            (branches t s op_id op))
        t.set_members.(set_id);
      let next =
        match List.sort_uniq compare_by_id !acc with
        | [] -> -1
        | members -> intern_set t members
      in
      (* [intern_set] may have swapped [t.trans] for a grown copy:
         re-read it when consing. *)
      t.trans.(set_id) <- (op_id, response, next) :: t.trans.(set_id);
      next
    | (o, r, next) :: tl ->
      if o = op_id && Value.equal r response then next else assoc tl
  in
  assoc t.trans.(set_id)

(* Successor set under a linearized pending call: any branch goes. *)
let step_any t set_id op_id op =
  let rec assoc = function
    | [] ->
      let acc = ref [] in
      List.iter
        (fun s ->
          Array.iter (fun (next, _) -> acc := next :: !acc)
            (branches t s op_id op))
        t.set_members.(set_id);
      let next = intern_set t (List.sort_uniq compare_by_id !acc) in
      t.trans_any.(set_id) <- (op_id, next) :: t.trans_any.(set_id);
      next
    | (o, next) :: tl -> if o = op_id then next else assoc tl
  in
  assoc t.trans_any.(set_id)

let session (spec : Obj_spec.t) =
  let t =
    {
      spec;
      op_ids = OTbl.create 16;
      n_ops = 0;
      last_op = None;
      branch_tbl = Hashtbl.create 16;
      set_ids = Hashtbl.create 16;
      set_members = [||];
      n_sets = 0;
      trans = [||];
      trans_any = [||];
      init_set = 0;
    }
  in
  t.init_set <- intern_set t [ spec.initial ];
  t

let check_with ?(memo = true) ?(pending = []) (t : session) (h : Chistory.t) :
    outcome =
  let calls = Array.of_list h in
  let nc = Array.length calls in
  let pend = Array.of_list pending in
  let np = Array.length pend in
  let n = nc + np in
  if n > max_calls then
    invalid_arg
      (Fmt.str "Checker.check: history too long (> %d calls)" max_calls);
  (* A pending call must lie after every completed call of its process. *)
  Array.iter
    (fun (p : pending) ->
      Array.iter
        (fun (c : Chistory.call) ->
          if c.pid = p.pid && c.res >= p.inv then
            invalid_arg "Checker.check: pending call overlaps its process")
        calls)
    pend;
  (* Calls are indexed [0, nc) completed then [nc, n) pending.
     pred_mask.(i) = bitmask of calls that must precede call i.  Pending
     calls never respond, so nothing is ever constrained to follow one:
     their bits appear in no mask.  The same all-pairs scan checks
     well-formedness (each process's intervals pairwise disjoint, as in
     {!Chistory.well_formed}) — one pass instead of two. *)
  let pred_mask = Array.make n 0 in
  for i = 0 to nc - 1 do
    let ci = calls.(i) in
    let m = ref 0 in
    for j = 0 to nc - 1 do
      if j <> i then begin
        let cj = calls.(j) in
        if cj.res < ci.inv then m := !m lor (1 lsl j)
        else if cj.pid = ci.pid && cj.inv <= ci.res then
          invalid_arg "Checker.check: history is not well-formed"
      end
    done;
    pred_mask.(i) <- !m
  done;
  for k = 0 to np - 1 do
    let inv_p = pend.(k).inv in
    let m = ref 0 in
    for j = 0 to nc - 1 do
      if calls.(j).res < inv_p then m := !m lor (1 lsl j)
    done;
    pred_mask.(nc + k) <- !m
  done;
  let op_id = Array.make n 0 in
  for i = 0 to n - 1 do
    op_id.(i) <- intern_op t (if i < nc then calls.(i).op else pend.(i - nc).op)
  done;
  let full_completed = (1 lsl nc) - 1 in
  (* Memo: (done_mask, state-set id) present means "no completion from
     here".  Per-check (done_mask is history-relative) and allocated
     lazily: a greedily-linearizable history never stores a dead node,
     so the common passing check builds no table at all.  Positive
     results short-circuit the DFS by raising. *)
  let visited : (int * int, unit) Hashtbl.t option ref = ref None in
  let visited_tbl () =
    match !visited with
    | Some tbl -> tbl
    | None ->
      let tbl = Hashtbl.create 64 in
      visited := Some tbl;
      tbl
  in
  let exception Found of Chistory.call list in
  let rec go done_mask set_id acc =
    if done_mask land full_completed = full_completed then
      raise (Found (List.rev acc))
    else
      let seen =
        memo
        &&
        match !visited with
        | Some tbl -> Hashtbl.mem tbl (done_mask, set_id)
        | None -> false
      in
      if not seen then begin
        for i = 0 to n - 1 do
          let bit = 1 lsl i in
          if done_mask land bit = 0 && pred_mask.(i) land lnot done_mask = 0
          then
            if i < nc then begin
              let set' = step t set_id op_id.(i) calls.(i).op calls.(i).response in
              if set' >= 0 then go (done_mask lor bit) set' (calls.(i) :: acc)
            end
            else
              (* The witness lists completed calls only; a linearized
                 pending call has no recorded response to report. *)
              go (done_mask lor bit)
                (step_any t set_id op_id.(i) pend.(i - nc).op)
                acc
        done;
        if memo then Hashtbl.replace (visited_tbl ()) (done_mask, set_id) ()
      end
  in
  match go 0 t.init_set [] with
  | () -> Not_linearizable
  | exception Found order -> Linearizable order

let check ?memo ?pending (spec : Obj_spec.t) (h : Chistory.t) : outcome =
  check_with ?memo ?pending (session spec) h

let pp_outcome ppf = function
  | Linearizable order ->
    Fmt.pf ppf "linearizable; witness:@,%a" Chistory.pp order
  | Not_linearizable -> Fmt.string ppf "NOT linearizable"
