(** Wing–Gong linearizability checker, extended to nondeterministic
    sequential specifications and to histories with pending calls. *)

open Lbsa_spec

type pending = { pid : int; op : Op.t; inv : int }
(** An operation that was invoked at time [inv] but never answered (its
    process crashed or was starved mid-operation). *)

type outcome =
  | Linearizable of Chistory.call list
      (** a witness linearization (completed calls only; linearized
          pending calls have no recorded response to report) *)
  | Not_linearizable

val is_linearizable : outcome -> bool

val max_calls : int
(** Hard size limit of {!check}: [Sys.int_size - 1] (62 on 64-bit).  The
    DFS memoizes on a bitmask of linearized calls packed into one OCaml
    [int] with the sign bit kept clear, so completed + pending calls
    together must fit in that many bits.  Callers generating histories
    (the fuzzer, the harness campaigns) must cap workloads accordingly;
    {!check} raises [Invalid_argument] — it never silently truncates. *)

type session
(** Interning tables for one specification: spec states and ops mapped
    to small ints, memoized [Obj_spec.branches] per (state, op), and
    canonical state-set ids.  A session only caches spec-determined
    facts, so reusing one across checks changes nothing but speed —
    which is the point: campaigns run thousands of checks against the
    same spec.  Not thread-safe; use one session per domain. *)

val session : Obj_spec.t -> session

val check_with :
  ?memo:bool -> ?pending:pending list -> session -> Chistory.t -> outcome
(** {!check}, reusing the session's interning tables. *)

val check :
  ?memo:bool -> ?pending:pending list -> Obj_spec.t -> Chistory.t -> outcome
(** Decide linearizability of a complete, well-formed history against
    the specification (equivalent to [check_with] on a fresh session).
    Each [pending] call may either be dropped (it never took effect) or
    linearized anywhere after its invocation with any response the
    specification allows — the standard completion semantics for crashed
    operations, without which a crash-truncated run whose in-flight
    operation took effect would be misjudged.

    Raises [Invalid_argument] on an ill-formed history, on a pending
    call overlapping a completed call of the same process, or when
    completed + pending calls exceed {!max_calls}.  [memo] (default
    true) enables memoization of visited (linearized-set, state-set)
    pairs; disabling it exists for the ablation benchmark only. *)

val pp_outcome : Format.formatter -> outcome -> unit
