open Lbsa_spec

(* Concurrent histories of a single object (Herlihy & Wing): a set of
   completed calls, each with an invocation time and a response time.
   Call a precedes call b (a <_H b) iff a's response happened before b's
   invocation; linearizability asks for a total order extending <_H that
   is legal for the object's sequential specification. *)

type call = {
  pid : int;
  op : Op.t;
  response : Value.t;
  inv : int;  (* invocation timestamp *)
  res : int;  (* response timestamp; inv < res *)
}

type t = call list

let call ~pid ~op ~response ~inv ~res =
  if inv >= res then invalid_arg "Chistory.call: inv must precede res";
  { pid; op; response; inv; res }

let precedes a b = a.res < b.inv

let pp_call ppf c =
  Fmt.pf ppf "p%d [%d,%d] %a -> %a" c.pid c.inv c.res Op.pp c.op Value.pp
    c.response

let pp ppf h =
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:(any "@,") pp_call) h

(* Well-formedness: each process's calls are sequential (its intervals
   are disjoint and ordered).  Since every call satisfies inv < res,
   that is exactly pairwise disjointness of same-process intervals,
   checked allocation-free — this runs on every [Checker] invocation. *)
let well_formed (h : t) =
  let rec ok = function
    | [] -> true
    | c :: rest ->
      List.for_all
        (fun c' -> c'.pid <> c.pid || c'.res < c.inv || c.res < c'.inv)
        rest
      && ok rest
  in
  ok h

(* A sequential history (one call at a time) from per-process op lists,
   for building known-linearizable test fixtures. *)
let of_sequential (events : (int * Op.t * Value.t) list) : t =
  List.mapi
    (fun i (pid, op, response) ->
      { pid; op; response; inv = (2 * i); res = (2 * i) + 1 })
    events
