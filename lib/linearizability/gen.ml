open Lbsa_spec

(* Random concurrent-history generation for linearizability testing.

   [linearizable_history] builds a history by actually running the
   specification under a random interleaving, so the result is
   linearizable by construction (the interleaving is a witness); such
   histories are positive fixtures for the checker.

   [corrupt] perturbs one response and VERIFIES with the checker that
   the perturbed history is no longer linearizable, resampling the
   perturbation up to a bound; a [Some] result is a certified negative
   fixture, [None] means no illegal perturbation was found (e.g. the
   specification accepts the substitute response everywhere). *)

type pending = { pid : int; op : Op.t; inv : int }

let linearizable_history ~(prng : Lbsa_util.Prng.t) ~(spec : Obj_spec.t)
    ~(workloads : Op.t list array) : Chistory.t =
  let n = Array.length workloads in
  let remaining = Array.map (fun ops -> ref ops) workloads in
  let pending : pending option array = Array.make n None in
  let state = ref spec.initial in
  let clock = ref 0 in
  let tick () =
    incr clock;
    !clock
  in
  let done_calls = ref [] in
  let choice bs = Lbsa_util.Prng.int prng (List.length bs) in
  let can_invoke pid = pending.(pid) = None && !(remaining.(pid)) <> [] in
  let can_respond pid = pending.(pid) <> None in
  let busy () =
    List.filter
      (fun pid -> can_invoke pid || can_respond pid)
      (Lbsa_util.Listx.range 0 (n - 1))
  in
  let rec loop () =
    match busy () with
    | [] -> ()
    | candidates ->
      let pid = Lbsa_util.Prng.pick prng candidates in
      (* Invoke or respond, randomly when both are possible. *)
      let do_invoke =
        can_invoke pid && ((not (can_respond pid)) || Lbsa_util.Prng.bool prng)
      in
      if do_invoke then begin
        match !(remaining.(pid)) with
        | [] -> assert false
        | op :: rest ->
          remaining.(pid) := rest;
          pending.(pid) <- Some { pid; op; inv = tick () }
      end
      else begin
        match pending.(pid) with
        | None -> assert false
        | Some { op; inv; _ } ->
          (* The linearization point: apply the op to the spec now. *)
          let state', response = Obj_spec.apply ~choice spec !state op in
          state := state';
          pending.(pid) <- None;
          done_calls :=
            Chistory.call ~pid ~op ~response ~inv ~res:(tick ()) :: !done_calls
      end;
      loop ()
  in
  loop ();
  List.rev !done_calls

(* Replace one call's response with [substitute] (default: an unlikely
   symbol), then certify non-linearizability with the checker; resample
   the perturbed call up to [attempts] times before giving up. *)
let corrupt ~(prng : Lbsa_util.Prng.t) ~(spec : Obj_spec.t)
    ?(substitute = Value.sym "corrupted") ?(attempts = 16) (h : Chistory.t) :
    Chistory.t option =
  match h with
  | [] -> None
  | _ ->
    let len = List.length h in
    let rec try_once k =
      if k >= attempts then None
      else
        let idx = Lbsa_util.Prng.int prng len in
        let bad =
          List.mapi
            (fun i (c : Chistory.call) ->
              if i = idx then { c with response = substitute } else c)
            h
        in
        match Checker.check spec bad with
        | Checker.Not_linearizable -> Some bad
        | Checker.Linearizable _ -> try_once (k + 1)
    in
    try_once 0
