(** Random concurrent-history generation for linearizability testing. *)

open Lbsa_spec

val linearizable_history :
  prng:Lbsa_util.Prng.t ->
  spec:Obj_spec.t ->
  workloads:Op.t list array ->
  Chistory.t
(** Run the per-process operation lists against the specification under
    a random interleaving; the result is linearizable by construction. *)

val corrupt :
  prng:Lbsa_util.Prng.t ->
  spec:Obj_spec.t ->
  ?substitute:Value.t ->
  ?attempts:int ->
  Chistory.t ->
  Chistory.t option
(** Replace one call's response and certify with {!Checker.check}
    against [spec] that the result is NOT linearizable, resampling the
    perturbed position up to [attempts] (default 16) times.  [Some bad]
    is a verified negative fixture; [None] means every sampled
    perturbation stayed legal (possible when the specification accepts
    [substitute] — default [Sym "corrupted"] — as a response). *)
