open Lbsa_spec
open Lbsa_runtime

(* The bivalency toolkit: mechanized counterparts of the recurring moves
   in the paper's proofs (Sections 4 and 5).

   - critical configurations: bivalent configurations whose every
     successor is univalent (Claim 4.2.5 / Claim 5.2.2);
   - the "all poised on the same object" analysis (Claim 5.2.3);
   - maintainable bivalence: the FLP adversary argument — from every
     bivalent configuration some step leads to a bivalent configuration,
     so an infinite undecided run exists. *)

(* Node ids of bivalent configurations with all successors univalent. *)
let critical_configurations (a : Valence.analysis) (graph : Graph.t) =
  let result = ref [] in
  Graph.iter_nodes
    (fun id _ ->
      if
        Valence.is_bivalent a id
        && List.for_all
             (fun (e : Graph.edge) -> not (Valence.is_bivalent a e.target))
             (Graph.out_edges graph id)
        && Graph.out_edges graph id <> []
      then result := id :: !result)
    graph;
  List.rev !result

(* What each running process is poised to do at a configuration:
   [Some obj] if its next step is an operation on object [obj], [None]
   if it is about to decide or abort. *)
let poised ~(machine : Machine.t) (config : Config.t) =
  List.map
    (fun pid ->
      match machine.delta ~pid config.locals.(pid) with
      | Machine.Invoke { obj; _ } -> (pid, Some obj)
      | Machine.Decide _ | Machine.Abort -> (pid, None))
    (Config.running config)

(* Claim 5.2.3 analog: at this configuration, are all running processes
   poised on one and the same shared object?  Returns it if so. *)
let common_poised_object ~machine config =
  match poised ~machine config with
  | [] -> None
  | (_, first) :: rest ->
    if
      Option.is_some first
      && List.for_all
           (fun (_, o) ->
             match (o, first) with
             | Some a, Some b -> a = b
             | _ -> false)
           rest
    then first
    else None

(* Detailed poised-step analysis, used to mechanize the finer structure
   of the Section 5 proof (Subclaims 5.2.8.1/5.2.8.2: at the critical
   configuration every process is poised on a *decide* operation on the
   PAC object, never a propose).  The vocabulary lives in [Canon] —
   shared with the explorer's commit-step pruning — and is re-exported
   here under its historical name. *)
type poised_step = Canon.poised =
  | Poised_op of { obj : int; op : Op.t }
  | Poised_decide of Value.t
  | Poised_abort

let poised_ops ~machine config = Canon.poised_steps ~machine config

(* Do all running processes poise the same operation *name* on the same
   object?  Returns (object, op-name) if so. *)
let common_poised_op_name ~machine config =
  match poised_ops ~machine config with
  | (_, Poised_op { obj; op }) :: rest ->
    if
      List.for_all
        (function
          | _, Poised_op { obj = obj'; op = op' } ->
            obj = obj' && String.equal op.Op.name op'.Op.name
          | _, (Poised_decide _ | Poised_abort) -> false)
        rest
    then Some (obj, op.Op.name)
    else None
  | _ -> None

type critical_report = {
  node : int;
  config : Config.t;
  common_object : int option;  (* Some obj iff Claim 5.2.3 shape holds *)
  object_name : string option;
}

let report_critical ~machine ~(specs : Obj_spec.t array) graph a =
  List.map
    (fun node ->
      let config = Graph.node graph node in
      let common_object = common_poised_object ~machine config in
      {
        node;
        config;
        common_object;
        object_name =
          Option.map (fun obj -> specs.(obj).Obj_spec.name) common_object;
      })
    (critical_configurations a graph)

(* Claim 4.2.6 shape ("hooks"): a configuration C, processes p != q and
   steps such that p's step makes C v-valent while q's step followed by
   p's step makes it v̄-valent — the pivot every bivalency proof hinges
   on.  We search the graph for concrete instances. *)
type hook = {
  node : int;  (* C *)
  p : int;
  q : int;
  valent_after_p : Value.t;  (* e_p(C) is this-valent *)
  valent_after_qp : Value.t;  (* e_q e_p'(C) is this-valent *)
}

let pp_hook ppf h =
  Fmt.pf ppf "node %d: p%d-first -> %a-valent, p%d-then-p%d -> %a-valent"
    h.node h.p Value.pp h.valent_after_p h.q h.p Value.pp h.valent_after_qp

let find_hooks ?(limit = 10) (a : Valence.analysis) (graph : Graph.t) =
  let hooks = ref [] in
  let count = ref 0 in
  Graph.iter_nodes
    (fun c _ ->
      if !count < limit then
        let edges = Graph.out_edges graph c in
        List.iter
          (fun (ep : Graph.edge) ->
            match Valence.classify a ep.target with
            | Valence.Valent v ->
              List.iter
                (fun (eq : Graph.edge) ->
                  if eq.pid <> ep.pid && !count < limit then
                    List.iter
                      (fun (ep' : Graph.edge) ->
                        if ep'.pid = ep.pid && !count < limit then
                          match Valence.classify a ep'.target with
                          | Valence.Valent v' when not (Value.equal v v') ->
                            incr count;
                            hooks :=
                              {
                                node = c;
                                p = ep.pid;
                                q = eq.pid;
                                valent_after_p = v;
                                valent_after_qp = v';
                              }
                              :: !hooks
                          | _ -> ())
                      (Graph.out_edges graph eq.target))
                edges
            | _ -> ())
          edges)
    graph;
  List.rev !hooks

(* The FLP adversary argument, finitized: bivalence is *maintainable* if
   every reachable bivalent configuration has at least one bivalent
   successor.  On a finite graph this implies an infinite run that never
   commits — the executable content of "consensus is impossible here".
   Returns [Ok ()] or the first bivalent dead-end (which would be a
   critical configuration). *)
let bivalence_maintainable (a : Valence.analysis) (graph : Graph.t) =
  let bad = ref None in
  Graph.iter_nodes
    (fun id _ ->
      if !bad = None && Valence.is_bivalent a id then
        if
          not
            (List.exists
               (fun (e : Graph.edge) -> Valence.is_bivalent a e.target)
               (Graph.out_edges graph id))
        then bad := Some id)
    graph;
  match !bad with
  | None -> Ok ()
  | Some id -> Error id

(* Claim 4.2.2 analog for DAC graphs: every configuration from which an
   abort by the distinguished process has *happened* must be 0-valent.
   We check the stronger executable form: every configuration where p
   has aborted has decision set ⊆ {0}. *)
let aborts_are_0_valent (a : Valence.analysis) (graph : Graph.t) =
  let bad = ref None in
  Graph.iter_nodes
    (fun id (config : Config.t) ->
      if !bad = None && config.status.(0) = Config.Aborted then
        match Valence.decision_set a id with
        | [] -> ()
        | [ v ] when Value.equal v (Value.int 0) -> ()
        | _ -> bad := Some id)
    graph;
  match !bad with
  | None -> Ok ()
  | Some id -> Error id
