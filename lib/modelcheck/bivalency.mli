(** Mechanized counterparts of the recurring moves in the paper's
    bivalency proofs (Sections 4 and 5). *)

open Lbsa_spec
open Lbsa_runtime

val critical_configurations : Valence.analysis -> Graph.t -> int list
(** Bivalent configurations whose every successor is univalent
    (Claim 4.2.5 / Claim 5.2.2), excluding dead ends. *)

val poised : machine:Machine.t -> Config.t -> (int * int option) list
(** What each running process is about to do: [Some obj] for an object
    operation, [None] for a decide/abort. *)

val common_poised_object : machine:Machine.t -> Config.t -> int option
(** Claim 5.2.3 analog: the single object all running processes are
    poised on, if there is one. *)

(** Detailed poised-step analysis (Subclaims 5.2.8.1/5.2.8.2); the
    vocabulary is {!Canon.poised}, shared with the explorer's
    commit-step pruning. *)
type poised_step = Canon.poised =
  | Poised_op of { obj : int; op : Op.t }
  | Poised_decide of Value.t
  | Poised_abort

val poised_ops : machine:Machine.t -> Config.t -> (int * poised_step) list

val common_poised_op_name :
  machine:Machine.t -> Config.t -> (int * string) option
(** The (object, operation-name) every running process is poised on, if
    they all agree. *)

type critical_report = {
  node : int;
  config : Config.t;
  common_object : int option;
  object_name : string option;
}

val report_critical :
  machine:Machine.t ->
  specs:Obj_spec.t array ->
  Graph.t ->
  Valence.analysis ->
  critical_report list

(** Claim 4.2.6 shape: the order of one p-step and one q-step flips the
    valence — the pivot of every bivalency proof. *)
type hook = {
  node : int;
  p : int;
  q : int;
  valent_after_p : Value.t;
  valent_after_qp : Value.t;
}

val pp_hook : Format.formatter -> hook -> unit

val find_hooks : ?limit:int -> Valence.analysis -> Graph.t -> hook list
(** Concrete hook instances in the graph (at most [limit], default
    10). *)

val bivalence_maintainable :
  Valence.analysis -> Graph.t -> (unit, int) result
(** The finitized FLP adversary argument: [Ok ()] iff every reachable
    bivalent configuration has a bivalent successor (so an infinite
    undecided run exists); otherwise the first bivalent dead-end. *)

val aborts_are_0_valent :
  Valence.analysis -> Graph.t -> (unit, int) result
(** Claim 4.2.2 analog on DAC graphs: configurations where the
    distinguished process has aborted may only reach decision 0. *)
