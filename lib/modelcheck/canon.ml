open Lbsa_spec
open Lbsa_runtime

(* Process-symmetry quotient for the explorer, plus the commit-step
   vocabulary shared with the bivalency toolkit.

   A symmetry group is represented extensionally: the explicit list of
   its non-identity automorphisms.  Each automorphism is a permutation
   of processes, optionally a compatible permutation of objects, and
   optionally a rewrite of object states (the hook for object encodings
   that mention process identities, e.g. PAC labels).  Groups here are
   tiny — (n-1)! for n-DAC, (m!)^k * k! for the k*m partition protocol —
   so [canonical] simply takes the [Config.compare]-least image over the
   whole orbit.  Element comparisons are O(1) thanks to hash-consing, so
   one canonicalization costs O(|G| * n) pointer work.

   Soundness (why quotienting preserves verdicts) is argued in
   DESIGN.md, "State-space reduction".  The constructors below only
   build groups for protocols whose step machines are certified
   equivariant: [exchangeable] requires a pid-independent delta over
   pid-free object states, [dac] fixes the distinguished process 0 and
   renames PAC labels, [kset_partition] permutes within groups and
   whole groups together with their consensus objects. *)

type auto = {
  proc : int array;  (* image process i carries old process proc.(i) *)
  obj : int array option;  (* image object o carries old object obj.(o) *)
  rename_obj : (int -> Value.t -> Value.t) option;
      (* rewrite of old object [index]'s state, applied during permute *)
}

type t = { order : int; autos : auto list }
(* [autos] excludes the identity; [order] = |autos| + 1. *)

let identity = { order = 1; autos = [] }
let is_identity g = g.autos = []
let order g = g.order

let apply a config =
  Config.permute ?obj:a.obj ?rename_obj:a.rename_obj ~proc:a.proc config

(* The lex-least image of [config] over its orbit.  Returns [config]
   itself (physically) when it is already minimal, so callers can count
   actual canonizations with [!=]. *)
let canonical g config =
  match g.autos with
  | [] -> config
  | autos ->
    List.fold_left
      (fun best a ->
        let img = apply a config in
        if Config.compare img best < 0 then img else best)
      config autos

let orbit g config =
  List.sort_uniq Config.compare
    (config :: List.map (fun a -> apply a config) g.autos)

(* --- group constructors ------------------------------------------------ *)

let rec permutations = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x ->
        permutations (List.filter (fun y -> y <> x) l)
        |> List.map (fun p -> x :: p))
      l

let is_id_array a =
  let ok = ref true in
  Array.iteri (fun i x -> if x <> i then ok := false) a;
  !ok

(* All process-permutation arrays moving only [movable] (identity
   included); [proc.(i)] is the old index placed at image slot [i]. *)
let perm_arrays ~n ~movable =
  permutations movable
  |> List.map (fun assignment ->
         let proc = Array.init n Fun.id in
         List.iteri (fun j src -> proc.(List.nth movable j) <- src) assignment;
         proc)

let of_proc_arrays ?mk_rename ?mk_obj arrays =
  let autos =
    List.filter_map
      (fun proc ->
        if is_id_array proc then None
        else
          Some
            {
              proc;
              obj = Option.map (fun f -> f proc) mk_obj;
              rename_obj = Option.map (fun f -> f proc) mk_rename;
            })
      arrays
  in
  { order = List.length autos + 1; autos }

let exchangeable ~n ?(fixed = []) () =
  if n < 0 then invalid_arg "Canon.exchangeable: n must be >= 0";
  let movable =
    List.filter (fun i -> not (List.mem i fixed)) (Lbsa_util.Listx.range 0 (n - 1))
  in
  of_proc_arrays (perm_arrays ~n ~movable)

let inverse proc =
  let inv = Array.make (Array.length proc) 0 in
  Array.iteri (fun i src -> inv.(src) <- i) proc;
  inv

(* n-DAC from an n-PAC (Section 3): the distinguished process 0 is
   fixed; permuting processes 1..n-1 must rename the PAC labels they
   propose under (process p uses label p+1).  Old label l names old
   process l-1, which lands at image slot inv.(l-1), so l becomes
   inv.(l-1)+1. *)
let dac ~n =
  if n < 1 then invalid_arg "Canon.dac: n must be >= 1";
  let movable = Lbsa_util.Listx.range 1 (n - 1) in
  let mk_rename proc =
    let inv = inverse proc in
    fun _obj state ->
      Lbsa_objects.Pac.rename_labels (fun l -> inv.(l - 1) + 1) state
  in
  of_proc_arrays ~mk_rename (perm_arrays ~n ~movable)

(* The k*m-process partition protocol (Section 6): process p belongs to
   group p/m and proposes to consensus object p/m.  The symmetry group
   is (within-group permutations)^k x (group permutations), with the k
   identical consensus objects permuted along with the groups.  Object
   states are pid-free, so no state rewrite is needed. *)
let kset_partition ~m ~k =
  if m < 1 || k < 1 then invalid_arg "Canon.kset_partition";
  let n = m * k in
  let group_perms = permutations (Lbsa_util.Listx.range 0 (k - 1)) in
  let within_perms = permutations (Lbsa_util.Listx.range 0 (m - 1)) in
  (* one within-group permutation per group *)
  let rec tau_choices g =
    if g = 0 then [ [] ]
    else
      List.concat_map
        (fun rest -> List.map (fun tau -> tau :: rest) within_perms)
        (tau_choices (g - 1))
  in
  let arrays =
    List.concat_map
      (fun sigma ->
        let sigma = Array.of_list sigma in
        (* sigma.(j) = old group at image group slot j; invert to map
           old group g to its image slot. *)
        let sigma_img = inverse sigma in
        List.map
          (fun taus ->
            let taus = Array.of_list (List.map Array.of_list taus) in
            (* image slot of old process p = within-image of its rank,
               inside the image slot of its group *)
            let img_of =
              Array.init n (fun p ->
                  let g = p / m and r = p mod m in
                  let tau_img = inverse taus.(g) in
                  (sigma_img.(g) * m) + tau_img.(r))
            in
            (inverse img_of, sigma))
          (tau_choices k))
      group_perms
  in
  let autos =
    List.filter_map
      (fun (proc, sigma) ->
        if is_id_array proc then None
        else Some { proc; obj = Some sigma; rename_obj = None })
      arrays
  in
  { order = List.length autos + 1; autos }

(* --- poised / commit steps --------------------------------------------- *)

(* The poised-step vocabulary of the bivalency toolkit (what each
   running process does next), shared here so both the Section 4/5
   proof mechanization ([Bivalency]) and the explorer's ample-step
   pruning speak the same language. *)
type poised =
  | Poised_op of { obj : int; op : Op.t }
  | Poised_decide of Value.t
  | Poised_abort

let poised_steps ~(machine : Machine.t) (config : Config.t) =
  List.map
    (fun pid ->
      match machine.delta ~pid config.locals.(pid) with
      | Machine.Invoke { obj; op; _ } -> (pid, Poised_op { obj; op })
      | Machine.Decide v -> (pid, Poised_decide v)
      | Machine.Abort -> (pid, Poised_abort))
    (Config.running config)

(* The ample ("commit") step of a configuration, if any: the least
   running process whose next step is invisible to every other process —
   a decide/abort (writes only its own status) or an operation on a
   [frozen] object (protocol-certified: state unchanged, constant
   response, forever — e.g. an upset PAC).  Such a step commutes with
   every step of every other process and stays enabled, so expanding it
   alone is a valid singleton persistent set; see DESIGN.md. *)
(* Flush every poised decide/abort into the configuration: each such
   step writes only its own process's status and commutes with every
   step of every other process, so a configuration and its flushed form
   reach exactly the same decisions and violations (DESIGN.md).  The
   explorer's sleep layer normalizes successors through this, so
   pre-decide interleavings never materialize as distinct nodes.  One
   pass suffices — a decide/abort changes no local state, so it cannot
   make another process decide-poised.  The result matches what the
   corresponding [Config.step_branches] steps would build (statuses
   updated, locals left stale), so flushed configurations are genuinely
   reachable ones.  Returns the flushed configuration (the argument
   itself, physically, when nothing was poised) and the step count. *)
let flush_commits ~machine (config : Config.t) =
  let steps = ref 0 in
  let status = ref [||] in
  List.iter
    (fun (pid, step) ->
      let commit st =
        if !steps = 0 then status := Array.copy config.Config.status;
        !status.(pid) <- st;
        incr steps
      in
      match step with
      | Poised_decide v -> commit (Config.Decided v)
      | Poised_abort -> commit Config.Aborted
      | Poised_op _ -> ())
    (poised_steps ~machine config);
  if !steps = 0 then (config, 0)
  else ({ config with Config.status = !status }, !steps)

let commit_pid ~machine ?frozen (config : Config.t) =
  let frozen_ok =
    match frozen with None -> fun _ _ -> false | Some f -> f
  in
  let rec scan = function
    | [] -> None
    | (pid, step) :: rest -> (
      match step with
      | Poised_decide _ | Poised_abort -> Some pid
      | Poised_op { obj; _ } ->
        if frozen_ok obj config.objects.(obj) then Some pid else scan rest)
  in
  scan (poised_steps ~machine config)
