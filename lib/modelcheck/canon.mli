(** Process-symmetry quotient for the explorer, and the commit-step
    vocabulary shared with the bivalency toolkit.

    A symmetry group of a protocol instance is a finite set of
    automorphisms: process permutations, optionally paired with a
    compatible object permutation and a rewrite of object states for
    encodings that mention process identities (PAC labels).
    [canonical] maps a configuration to the [Config.compare]-least
    element of its orbit; keying the explorer's dedup table on
    canonical representatives quotients the reachable graph by the
    group.  The soundness argument — why the quotient preserves
    solvability and valence verdicts — is in DESIGN.md, "State-space
    reduction". *)

open Lbsa_spec
open Lbsa_runtime

type auto = {
  proc : int array;  (** image process [i] carries old process [proc.(i)] *)
  obj : int array option;  (** image object [o] carries old object [obj.(o)] *)
  rename_obj : (int -> Value.t -> Value.t) option;
      (** rewrite of old object [index]'s state during the permute *)
}

type t = { order : int; autos : auto list }
(** A group, extensionally: its non-identity automorphisms ([order] =
    [List.length autos + 1]).  Groups here are tiny, so [canonical]
    enumerates the whole orbit. *)

val identity : t
val is_identity : t -> bool
val order : t -> int

val apply : auto -> Config.t -> Config.t

val canonical : t -> Config.t -> Config.t
(** The lex-least image of the configuration over its orbit.  Returns
    the argument {e physically} when it is already minimal, so callers
    can count canonizations with [(!=)].  O(|G| * n) pointer
    comparisons thanks to hash-consed values. *)

val orbit : t -> Config.t -> Config.t list
(** The full orbit, sorted and deduplicated (for tests). *)

val exchangeable : n:int -> ?fixed:int list -> unit -> t
(** All permutations of [n] processes fixing the pids in [fixed].
    Sound only for machines whose [delta] is pid-independent over
    pid-free object states (the registry's one-shot protocols). *)

val dac : n:int -> t
(** The symmetry group of the n-DAC-from-n-PAC protocol: permutations
    of processes [1..n-1] (the distinguished process 0 is fixed), with
    PAC labels renamed alongside ([Pac.rename_labels]). *)

val kset_partition : m:int -> k:int -> t
(** The symmetry group of the [k*m]-process partition protocol:
    within-group permutations times group permutations, with the [k]
    identical consensus objects permuted along with the groups
    (order [(m!)^k * k!]). *)

(** {2 Poised / commit steps}

    What each running process is about to do — the vocabulary of the
    Section 4/5 proof mechanization ({!Bivalency} re-exports it), also
    used by the explorer's ample-step pruning. *)

type poised =
  | Poised_op of { obj : int; op : Op.t }
  | Poised_decide of Value.t
  | Poised_abort

val poised_steps : machine:Machine.t -> Config.t -> (int * poised) list
(** Poised steps of all running processes, in pid order. *)

val flush_commits : machine:Machine.t -> Config.t -> Config.t * int
(** Apply every poised decide/abort to the configuration (statuses
    updated exactly as the corresponding {!Config.step_branches} steps
    would, locals untouched), returning the flushed configuration and
    how many steps were applied.  Such steps write only their own
    process's status and commute with every other step, so the flushed
    configuration reaches exactly the same decisions and violations as
    the original (DESIGN.md); the explorer's sleep layer uses this to
    normalize successors.  Returns the argument physically when no
    decide/abort is poised. *)

val commit_pid :
  machine:Machine.t -> ?frozen:(int -> Value.t -> bool) -> Config.t -> int option
(** The least running process whose next step is invisible to every
    other process — a decide/abort, or an operation on an object that
    [frozen index state] certifies permanently inert (state unchanged
    and constant response forever, e.g. an upset PAC).  Expanding only
    this process is a sound singleton persistent set (DESIGN.md). *)
