(* Checkpoint persistence.  See the .mli for why this stores the
   structural Mirror forms instead of marshalling [Config.t] directly:
   intern ids and pointer identity must not cross a process boundary,
   so freezing strips them and thawing re-interns through the smart
   constructors.

   Version 3 replaced the single whole-file Marshal blob with the
   framed section discipline of the out-of-core segment store
   ({!Segstore.Segio}): one checksummed CKMETA section, then the node
   and edge arrays streamed in bounded CKNODES/CKEDGES chunks.  Each
   section is independently checksummed, a corrupt chunk fails loudly
   at its own offset, and writing a multi-gigabyte checkpoint never
   needs a second whole-graph copy in one Marshal buffer. *)

type meta = {
  m_label : string;
  m_expanded : int;
  m_offsets : int array;
  m_dedup_hits : int;
  m_n_succs : int;
  m_frontier_sizes : int array;
  m_reduction : string;
  m_substrate : string;
  m_canonized : int;
  m_ample_nodes : int;
  m_ample_pruned : int;
  m_n_nodes : int;
  m_n_edges : int;
}

type t = {
  label : string;
  nodes : Mirror.pconfig array;
  expanded : int;
  edges : Mirror.pedge array;
  offsets : int array;
  dedup_hits : int;
  n_succs : int;
  frontier_sizes : int array;
  reduction : string;  (* reduction mode the exploration ran under *)
  substrate : string;  (* substrate the exploration ran under *)
  canonized : int;
  ample_nodes : int;
  ample_pruned : int;
}

let label t = t.label
let reduction t = t.reduction
let substrate t = t.substrate

(* --- freeze / thaw ------------------------------------------------------- *)

let freeze_edge (e : Graph.edge) =
  Mirror.freeze_step ~pid:e.Graph.pid ~event:e.Graph.event
    ~target:e.Graph.target

let thaw_edge e : Graph.edge =
  let pid, event, target = Mirror.thaw_step e in
  { Graph.pid; event; target }

let freeze ~label (s : Graph.suspended) =
  {
    label;
    nodes = Array.map Mirror.freeze_config s.Graph.s_nodes;
    expanded = s.Graph.s_expanded;
    edges = Array.map freeze_edge s.Graph.s_edges;
    offsets = Array.copy s.Graph.s_offsets;
    dedup_hits = s.Graph.s_dedup_hits;
    n_succs = s.Graph.s_n_succs;
    frontier_sizes = Array.copy s.Graph.s_frontier_sizes;
    reduction = s.Graph.s_reduction;
    substrate = s.Graph.s_substrate;
    canonized = s.Graph.s_canonized;
    ample_nodes = s.Graph.s_ample_nodes;
    ample_pruned = s.Graph.s_ample_pruned;
  }

let thaw t : Graph.suspended =
  Graph.suspended_of_parts
    ~nodes:(Array.map Mirror.thaw_config t.nodes)
    ~expanded:t.expanded
    ~edges:(Array.map thaw_edge t.edges)
    ~offsets:(Array.copy t.offsets) ~dedup_hits:t.dedup_hits
    ~n_succs:t.n_succs
    ~frontier_sizes:(Array.copy t.frontier_sizes)
    ~reduction:t.reduction ~substrate:t.substrate ~canonized:t.canonized
    ~ample_nodes:t.ample_nodes ~ample_pruned:t.ample_pruned

(* --- persistence -------------------------------------------------------- *)

(* A magic line guards against feeding arbitrary files to [Marshal];
   the version is part of it, so a format change invalidates old
   checkpoints loudly instead of deserializing garbage.  Version 2
   added the reduction mode and counters; version 3 moved to the
   framed-section format above.  Version-2 files are refused, not
   migrated: a checkpoint is a resumable scratch artifact, and the
   exploration it froze is cheaper to redo than a silent cross-version
   misread would be to debug.  Version 4 records the execution
   substrate the exploration ran under, so a resume cannot silently
   replay a shared-memory prefix under a message-passing step relation
   (or vice versa); version-3 files are refused like any older
   format. *)
let magic = "LBSA-CHECKPOINT/4\n"
let magic_family = "LBSA-CHECKPOINT/"

exception Version_mismatch of string

exception Corrupt of string
(* The file carries the checkpoint magic but its body fails validation
   (truncation, checksum, chunk order, undecodable section) or keeps
   hitting I/O errors.  Distinct from the [Failure] of
   not-a-checkpoint-at-all: a corrupt checkpoint is a damaged scratch
   artifact — CLIs refuse it with the partial exit code 2 (re-run the
   exploration), not the usage code. *)

(* Array chunk size for the streamed node/edge sections. *)
let chunk_len = 65_536

(* The save streams through a {!Lbsa_util.Rio} atomic commit: tmp file,
   fsync, rename, directory fsync.  Without the fsyncs, tmp+rename only
   protects against a *process* crash — a power loss shortly after
   rename could still leave the new name pointing at unwritten data.
   The crash points Rio exposes under LBSA_IO_CRASH=checkpoint.save:<n>
   are what the kill-mid-checkpoint harness drives. *)
let save ~file t =
  Lbsa_util.Rio.with_atomic_file ~site:"checkpoint.save" ~path:file (fun w ->
      let sink = Lbsa_util.Rio.write_string w in
      sink magic;
      let meta =
        {
          m_label = t.label;
          m_expanded = t.expanded;
          m_offsets = t.offsets;
          m_dedup_hits = t.dedup_hits;
          m_n_succs = t.n_succs;
          m_frontier_sizes = t.frontier_sizes;
          m_reduction = t.reduction;
          m_substrate = t.substrate;
          m_canonized = t.canonized;
          m_ample_nodes = t.ample_nodes;
          m_ample_pruned = t.ample_pruned;
          m_n_nodes = Array.length t.nodes;
          m_n_edges = Array.length t.edges;
        }
      in
      Segstore.Segio.write_section_sink sink ~tag:"CKMETA"
        (Marshal.to_string meta []);
      let stream tag arr =
        let n = Array.length arr in
        let lo = ref 0 in
        while !lo < n do
          let len = min chunk_len (n - !lo) in
          Segstore.Segio.write_section_sink sink ~tag
            (Marshal.to_string (!lo, Array.sub arr !lo len) []);
          lo := !lo + len
        done
      in
      stream "CKNODES" t.nodes;
      stream "CKEDGES" t.edges)

let load ~file =
  let ic =
    try open_in_bin file
    with Sys_error e -> failwith (Fmt.str "Checkpoint.load: %s" e)
  in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let header =
        try really_input_string ic (String.length magic)
        with End_of_file -> ""
      in
      if not (String.equal header magic) then
        if
          String.length header >= String.length magic_family
          && String.equal
               (String.sub header 0 (String.length magic_family))
               magic_family
        then
          raise
            (Version_mismatch
               (Fmt.str
                  "Checkpoint.load: %s is a %s checkpoint; this build reads \
                   version 4 only (re-run the exploration to produce a new \
                   checkpoint)"
                  file
                  (String.trim header)))
        else
          failwith
            (Fmt.str "Checkpoint.load: %s is not a version-4 checkpoint file"
               file);
      (* Magic validated: any defect from here on is a *corrupt
         checkpoint*, reported with the typed [Corrupt] so CLIs can
         refuse it cleanly (exit 2) instead of dying on an untyped
         [Failure] from Segio or [Marshal]. *)
      let defect msg =
        raise (Corrupt (Fmt.str "Checkpoint.load: %s: %s" file msg))
      in
      (try Lbsa_util.Rio.inject_read_fault ~site:"checkpoint.load"
       with Unix.Unix_error (e, _, _) -> defect (Unix.error_message e));
      let read_section ic =
        match Segstore.Segio.read_section ic with
        | s -> s
        | exception Failure msg -> defect msg
        | exception (Sys_error msg) -> defect msg
        | exception Unix.Unix_error (e, _, _) ->
          defect (Unix.error_message e)
      in
      let unmarshal : type a. string -> a = fun payload ->
        try Marshal.from_string payload 0
        with Failure msg | Invalid_argument msg ->
          defect (Fmt.str "undecodable section: %s" msg)
      in
      let meta =
        match read_section ic with
        | Some ("CKMETA", payload) -> (unmarshal payload : meta)
        | Some (tag, _) -> defect (Fmt.str "expected CKMETA, got %s" tag)
        | None -> defect "truncated (no CKMETA)"
      in
      if meta.m_n_nodes < 0 || meta.m_n_edges < 0 then defect "negative counts";
      let nodes =
        Array.make meta.m_n_nodes
          { Mirror.plocals = [||]; pobjects = [||]; pstatus = [||] }
      in
      let edges =
        Array.make meta.m_n_edges
          { Mirror.ppid = 0; pev = Mirror.PAbort { epid = 0 }; ptarget = 0 }
      in
      let fill (type a) tag (arr : a array) total =
        let got = ref 0 in
        while !got < total do
          match read_section ic with
          | Some (tag', payload) when String.equal tag' tag ->
            let lo, chunk = (unmarshal payload : int * a array) in
            if lo <> !got || lo + Array.length chunk > total then
              defect (Fmt.str "%s chunk out of order" tag);
            Array.blit chunk 0 arr lo (Array.length chunk);
            got := !got + Array.length chunk
          | Some (tag', _) ->
            defect (Fmt.str "expected %s, got %s" tag tag')
          | None -> defect (Fmt.str "truncated in %s" tag)
        done
      in
      fill "CKNODES" nodes meta.m_n_nodes;
      fill "CKEDGES" edges meta.m_n_edges;
      {
        label = meta.m_label;
        nodes;
        expanded = meta.m_expanded;
        edges;
        offsets = meta.m_offsets;
        dedup_hits = meta.m_dedup_hits;
        n_succs = meta.m_n_succs;
        frontier_sizes = meta.m_frontier_sizes;
        reduction = meta.m_reduction;
        substrate = meta.m_substrate;
        canonized = meta.m_canonized;
        ample_nodes = meta.m_ample_nodes;
        ample_pruned = meta.m_ample_pruned;
      })
