open Lbsa_spec
open Lbsa_runtime

(* Checkpoint persistence.  See the .mli for why this mirrors values
   structurally instead of marshalling [Config.t] directly: intern ids
   and pointer identity must not cross a process boundary, so freezing
   strips them and thawing re-interns through the smart constructors. *)

(* --- the structural mirror --------------------------------------------- *)

type pvalue =
  | PUnit
  | PBool of bool
  | PInt of int
  | PSym of string
  | PBot
  | PNil
  | PDone
  | PPair of pvalue * pvalue
  | PList of pvalue list

type pstatus = PRunning | PDecided of pvalue | PAborted | PCrashed

type pconfig = {
  plocals : pvalue array;
  pobjects : pvalue array;
  pstatus : pstatus array;
}

type pevent =
  | POp of {
      epid : int;
      eobj : int;
      ename : string;
      eargs : pvalue list;
      eresponse : pvalue;
    }
  | PDecide of { epid : int; evalue : pvalue }
  | PAbort of { epid : int }

type pedge = { ppid : int; pev : pevent; ptarget : int }

type t = {
  label : string;
  nodes : pconfig array;
  expanded : int;
  edges : pedge array;
  offsets : int array;
  dedup_hits : int;
  n_succs : int;
  frontier_sizes : int array;
  reduction : string;  (* reduction mode the exploration ran under *)
  canonized : int;
  ample_nodes : int;
  ample_pruned : int;
}

let label t = t.label
let reduction t = t.reduction

(* --- freeze ------------------------------------------------------------- *)

let rec freeze_value (v : Value.t) : pvalue =
  match Value.node v with
  | Value.Unit -> PUnit
  | Value.Bool b -> PBool b
  | Value.Int i -> PInt i
  | Value.Sym s -> PSym s
  | Value.Bot -> PBot
  | Value.Nil -> PNil
  | Value.Done -> PDone
  | Value.Pair (a, b) -> PPair (freeze_value a, freeze_value b)
  | Value.List vs -> PList (List.map freeze_value vs)

let freeze_status = function
  | Config.Running -> PRunning
  | Config.Decided v -> PDecided (freeze_value v)
  | Config.Aborted -> PAborted
  | Config.Crashed -> PCrashed

let freeze_config (c : Config.t) =
  {
    plocals = Array.map freeze_value c.Config.locals;
    pobjects = Array.map freeze_value c.Config.objects;
    pstatus = Array.map freeze_status c.Config.status;
  }

let freeze_event = function
  | Config.Op_event { pid; obj; op; response } ->
    POp
      {
        epid = pid;
        eobj = obj;
        ename = op.Op.name;
        eargs = List.map freeze_value op.Op.args;
        eresponse = freeze_value response;
      }
  | Config.Decide_event { pid; value } ->
    PDecide { epid = pid; evalue = freeze_value value }
  | Config.Abort_event { pid } -> PAbort { epid = pid }

let freeze_edge (e : Graph.edge) =
  { ppid = e.Graph.pid; pev = freeze_event e.Graph.event; ptarget = e.Graph.target }

let freeze ~label (s : Graph.suspended) =
  {
    label;
    nodes = Array.map freeze_config s.Graph.s_nodes;
    expanded = s.Graph.s_expanded;
    edges = Array.map freeze_edge s.Graph.s_edges;
    offsets = Array.copy s.Graph.s_offsets;
    dedup_hits = s.Graph.s_dedup_hits;
    n_succs = s.Graph.s_n_succs;
    frontier_sizes = Array.copy s.Graph.s_frontier_sizes;
    reduction = s.Graph.s_reduction;
    canonized = s.Graph.s_canonized;
    ample_nodes = s.Graph.s_ample_nodes;
    ample_pruned = s.Graph.s_ample_pruned;
  }

(* --- thaw --------------------------------------------------------------- *)

let rec thaw_value = function
  | PUnit -> Value.unit_
  | PBool b -> Value.bool b
  | PInt i -> Value.int i
  | PSym s -> Value.sym s
  | PBot -> Value.bot
  | PNil -> Value.nil
  | PDone -> Value.done_
  | PPair (a, b) -> Value.pair (thaw_value a, thaw_value b)
  | PList vs -> Value.list (List.map thaw_value vs)

let thaw_status = function
  | PRunning -> Config.Running
  | PDecided v -> Config.Decided (thaw_value v)
  | PAborted -> Config.Aborted
  | PCrashed -> Config.Crashed

let thaw_config c : Config.t =
  {
    Config.locals = Array.map thaw_value c.plocals;
    objects = Array.map thaw_value c.pobjects;
    status = Array.map thaw_status c.pstatus;
  }

let thaw_event = function
  | POp { epid; eobj; ename; eargs; eresponse } ->
    Config.Op_event
      {
        pid = epid;
        obj = eobj;
        op = Op.make ename (List.map thaw_value eargs);
        response = thaw_value eresponse;
      }
  | PDecide { epid; evalue } ->
    Config.Decide_event { pid = epid; value = thaw_value evalue }
  | PAbort { epid } -> Config.Abort_event { pid = epid }

let thaw_edge e : Graph.edge =
  { Graph.pid = e.ppid; event = thaw_event e.pev; target = e.ptarget }

let thaw t : Graph.suspended =
  Graph.suspended_of_parts
    ~nodes:(Array.map thaw_config t.nodes)
    ~expanded:t.expanded
    ~edges:(Array.map thaw_edge t.edges)
    ~offsets:(Array.copy t.offsets) ~dedup_hits:t.dedup_hits
    ~n_succs:t.n_succs
    ~frontier_sizes:(Array.copy t.frontier_sizes)
    ~reduction:t.reduction ~canonized:t.canonized ~ample_nodes:t.ample_nodes
    ~ample_pruned:t.ample_pruned

(* --- persistence -------------------------------------------------------- *)

(* A magic line guards against feeding arbitrary files to [Marshal];
   the version is part of it, so a format change invalidates old
   checkpoints loudly instead of deserializing garbage.  Version 2
   added the reduction mode and counters. *)
let magic = "LBSA-CHECKPOINT/2\n"

let save ~file t =
  let tmp = file ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc magic;
      Marshal.to_channel oc t []);
  Sys.rename tmp file

let load ~file =
  let ic =
    try open_in_bin file
    with Sys_error e -> failwith (Fmt.str "Checkpoint.load: %s" e)
  in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let header =
        try really_input_string ic (String.length magic)
        with End_of_file -> ""
      in
      if not (String.equal header magic) then
        failwith
          (Fmt.str "Checkpoint.load: %s is not a version-2 checkpoint file"
             file);
      (Marshal.from_channel ic : t))
