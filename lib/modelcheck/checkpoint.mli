(** Durable checkpoints for long explorations: freeze a suspended
    {!Graph.build} (frontier, dedup contents, edge prefix) to a purely
    structural form, write it to disk, and thaw it back for
    [Graph.build ~resume].

    The structural detour exists because of the hash-consed value core:
    intern ids are allocation-order-dependent and pointer identity does
    not survive [Marshal].  A checkpoint therefore stores a mirror ADT
    with no ids and no sharing, and [thaw] re-interns every value
    through the [Value] smart constructors — the loaded configurations
    are physically canonical in the loading process, whatever junk that
    process interned first.  (The id-never-orders invariant of the value
    core is exactly what makes this safe: nothing in the graph depends
    on the ids a run happened to assign.) *)

type t

exception Version_mismatch of string
(** The file is a checkpoint, but from another format version.  Old
    checkpoints are refused, never migrated: the frozen exploration is
    cheaper to redo than a cross-version misread is to debug.  CLIs
    surface this as exit code 2 (the partial-outcome code, like a
    reduce-mode mismatch): the file is coherent, only this build cannot
    use it. *)

exception Corrupt of string
(** The file carries the current checkpoint magic but its body fails
    validation — truncation, a framing or checksum defect, a chunk out
    of order, an undecodable section — or keeps hitting I/O errors.  A
    corrupt checkpoint is a damaged scratch artifact: CLIs refuse it
    with exit code 2 (re-run the exploration), never resume from it,
    and never crash in [Marshal] on it. *)

val label : t -> string
(** Free-form run parameters recorded at freeze time (protocol, sizes,
    max_states…); resuming code should compare it against the current
    invocation and refuse mismatches. *)

val reduction : t -> string
(** The reduction mode name ("none" / "sym" / "sym+sleep") the frozen
    exploration ran under.  Resuming under a different mode would
    silently explore a different graph; [Graph.build ~resume] rejects
    the mismatch, and CLIs should refuse it up front. *)

val substrate : t -> string
(** The execution substrate name ("shm" / "mp" / "mp+byz:f") the frozen
    exploration ran under — recorded since format version 4.  Same
    contract as {!reduction}: a resume under a different substrate is a
    different graph, and [Graph.build ~resume] rejects the mismatch. *)

val freeze : label:string -> Graph.suspended -> t
val thaw : t -> Graph.suspended

val save : file:string -> t -> unit
(** Atomic, durable write through {!Lbsa_util.Rio.with_atomic_file}:
    versioned magic header, then framed checksummed sections (shared
    with {!Segstore.Segio}) — one CKMETA section and the node/edge
    arrays streamed in bounded chunks — committed tmp + fsync + rename
    + directory fsync.  A crash at any point leaves either the previous
    [file] or the new one, never a torn mix.  Overwrites [file]. *)

val load : file:string -> t
(** Raises [Failure] on a missing or non-checkpoint file,
    {!Version_mismatch} on a checkpoint from another format version
    (older versions are refused, never migrated), and {!Corrupt} on a
    current-version checkpoint whose body fails validation. *)
