open Lbsa_runtime

(* Open-addressing hash table from configurations to node ids — the dedup
   structure of the explorer.  Linear probing over power-of-two capacity;
   stored hashes let most probe misses skip the structural [Config.equal].
   Replaces the seed's [Map.Make(Config)], whose every lookup paid
   O(log n) full structural compares. *)

let dummy : Config.t = { locals = [||]; objects = [||]; status = [||] }

type t = {
  mutable mask : int;  (* capacity - 1; capacity is a power of two *)
  mutable size : int;
  mutable keys : Config.t array;  (* physically [dummy] = empty slot *)
  mutable hashes : int array;
  mutable ids : int array;
}

let create n =
  let cap = ref 16 in
  while !cap < n * 2 do
    cap := !cap * 2
  done;
  {
    mask = !cap - 1;
    size = 0;
    keys = Array.make !cap dummy;
    hashes = Array.make !cap 0;
    ids = Array.make !cap (-1);
  }

let length t = t.size

let rec probe t key hash i =
  if t.keys.(i) == dummy then `Empty i
  else if t.hashes.(i) = hash && Config.equal t.keys.(i) key then `Found i
  else probe t key hash ((i + 1) land t.mask)

let grow t =
  let old_keys = t.keys and old_hashes = t.hashes and old_ids = t.ids in
  let cap = (t.mask + 1) * 2 in
  t.mask <- cap - 1;
  t.keys <- Array.make cap dummy;
  t.hashes <- Array.make cap 0;
  t.ids <- Array.make cap (-1);
  Array.iteri
    (fun i k ->
      if k != dummy then begin
        let h = old_hashes.(i) in
        match probe t k h (h land t.mask) with
        | `Empty j ->
          t.keys.(j) <- k;
          t.hashes.(j) <- h;
          t.ids.(j) <- old_ids.(i)
        | `Found _ -> assert false
      end)
    old_keys

(* Look the configuration up; if absent, insert it with id
   [if_absent key] (not called when present).  Returns the id now bound.
   [if_absent] receives the key so callers can pass one registration
   function for the whole build instead of allocating a closure per
   lookup; detect a fresh insert by comparing [length] before and
   after. *)
let find_or_add t key ~hash ~if_absent =
  match probe t key hash (hash land t.mask) with
  | `Found i -> t.ids.(i)
  | `Empty i ->
    let id = if_absent key in
    t.keys.(i) <- key;
    t.hashes.(i) <- hash;
    t.ids.(i) <- id;
    t.size <- t.size + 1;
    (* Keep load factor under 2/3 so probe chains stay short. *)
    if t.size * 3 > (t.mask + 1) * 2 then grow t;
    id

let find_opt t key ~hash =
  match probe t key hash (hash land t.mask) with
  | `Found i -> Some t.ids.(i)
  | `Empty _ -> None
