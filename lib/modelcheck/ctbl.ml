open Lbsa_runtime

(* Open-addressing hash table from configurations to node ids — the dedup
   structure of the explorer.  Linear probing over power-of-two capacity;
   stored hashes let most probe misses skip [Config.equal] entirely, and
   with hash-consed values the equal that does run is a per-element
   pointer scan, not a tree walk.  Replaces the seed's
   [Map.Make(Config)], whose every lookup paid O(log n) full structural
   compares.

   The table counts its probe traffic ([probes] slot inspections,
   [hash_skips] occupied slots dismissed on stored-hash mismatch alone,
   [equal_confirms] slots where [Config.equal] actually ran) so the
   bench harness can report how much structural comparison the cached
   hashes avoid. *)

let dummy : Config.t = { locals = [||]; objects = [||]; status = [||] }

type t = {
  mutable mask : int;  (* capacity - 1; capacity is a power of two *)
  mutable size : int;
  mutable keys : Config.t array;  (* physically [dummy] = empty slot *)
  mutable hashes : int array;
  mutable ids : int array;
  mutable n_probes : int;
  mutable n_hash_skips : int;
  mutable n_equal_confirms : int;
}

type probe_stats = { probes : int; hash_skips : int; equal_confirms : int }

let create n =
  let cap = ref 16 in
  while !cap < n * 2 do
    cap := !cap * 2
  done;
  {
    mask = !cap - 1;
    size = 0;
    keys = Array.make !cap dummy;
    hashes = Array.make !cap 0;
    ids = Array.make !cap (-1);
    n_probes = 0;
    n_hash_skips = 0;
    n_equal_confirms = 0;
  }

let length t = t.size

let probe_stats t =
  {
    probes = t.n_probes;
    hash_skips = t.n_hash_skips;
    equal_confirms = t.n_equal_confirms;
  }

let rec probe t key hash i =
  t.n_probes <- t.n_probes + 1;
  if t.keys.(i) == dummy then `Empty i
  else if t.hashes.(i) <> hash then begin
    t.n_hash_skips <- t.n_hash_skips + 1;
    probe t key hash ((i + 1) land t.mask)
  end
  else begin
    t.n_equal_confirms <- t.n_equal_confirms + 1;
    if Config.equal t.keys.(i) key then `Found i
    else probe t key hash ((i + 1) land t.mask)
  end

(* Reinsertion during [grow] never compares keys (all stored keys are
   distinct), so it bypasses the counting probe and leaves the stats
   reflecting only lookup traffic. *)
let rec probe_empty t hash i =
  if t.keys.(i) == dummy then i else probe_empty t hash ((i + 1) land t.mask)

let grow t =
  let old_keys = t.keys and old_hashes = t.hashes and old_ids = t.ids in
  let cap = (t.mask + 1) * 2 in
  t.mask <- cap - 1;
  t.keys <- Array.make cap dummy;
  t.hashes <- Array.make cap 0;
  t.ids <- Array.make cap (-1);
  Array.iteri
    (fun i k ->
      if k != dummy then begin
        let h = old_hashes.(i) in
        let j = probe_empty t h (h land t.mask) in
        t.keys.(j) <- k;
        t.hashes.(j) <- h;
        t.ids.(j) <- old_ids.(i)
      end)
    old_keys

(* Look the configuration up; if absent, insert it with id
   [if_absent key] (not called when present).  Returns the id now bound.
   [if_absent] receives the key so callers can pass one registration
   function for the whole build instead of allocating a closure per
   lookup; detect a fresh insert by comparing [length] before and
   after. *)
let find_or_add t key ~hash ~if_absent =
  match probe t key hash (hash land t.mask) with
  | `Found i -> t.ids.(i)
  | `Empty i ->
    let id = if_absent key in
    t.keys.(i) <- key;
    t.hashes.(i) <- hash;
    t.ids.(i) <- id;
    t.size <- t.size + 1;
    (* Keep load factor under 2/3 so probe chains stay short. *)
    if t.size * 3 > (t.mask + 1) * 2 then grow t;
    id

let find_opt t key ~hash =
  match probe t key hash (hash land t.mask) with
  | `Found i -> Some t.ids.(i)
  | `Empty _ -> None
