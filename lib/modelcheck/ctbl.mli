(** Open-addressing hash table from configurations to node ids: the
    dedup structure of the state-space explorer.  Keys are compared by
    stored full-tree hash first, then [Config.equal], so lookups in a
    graph of hundreds of thousands of states stay O(1) instead of the
    O(log n) structural compares of a [Map.Make(Config)]. *)

open Lbsa_runtime

type t

type probe_stats = {
  probes : int;  (** total slot inspections across all lookups *)
  hash_skips : int;
      (** occupied slots dismissed on stored-hash mismatch alone — each
          one a structural [Config.equal] the cached hashes avoided *)
  equal_confirms : int;  (** slots where [Config.equal] actually ran *)
}

val probe_stats : t -> probe_stats
(** Probe-traffic counters since {!create}.  Reinsertions during
    internal growth are not counted; the numbers reflect lookups only. *)

val create : int -> t
(** [create n] sizes the table for about [n] expected entries (it grows
    as needed regardless). *)

val length : t -> int

val find_or_add :
  t -> Config.t -> hash:int -> if_absent:(Config.t -> int) -> int
(** [find_or_add t c ~hash ~if_absent] returns the id bound to [c],
    inserting [if_absent c] first when [c] is new.  [hash] is passed in
    so callers can hash once per candidate (and with whatever consistent
    hash they choose); [if_absent] receives the key so one registration
    function can serve the whole build without per-lookup closures.  It
    is not called when [c] is already present; detect a fresh insert by
    comparing {!length} before and after. *)

val find_opt : t -> Config.t -> hash:int -> int option
(** [hash] must be the same value the caller would pass to
    {!find_or_add} for this key — the table stores whatever hash the
    caller uses, so one build must hash consistently throughout. *)
