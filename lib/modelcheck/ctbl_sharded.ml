open Lbsa_runtime

(* Hash-prefix-sharded dedup table.  Each shard is the same
   open-addressing linear-probing design as [Ctbl]; routing takes the
   high bits of the hash, slots the low bits, so probe sequences are
   shard-count-independent.  On top of Ctbl's discipline a slot can be
   *frozen*: the key field holds the [frozen_key] sentinel while hash
   and id stay resident, and the configuration is fetched through
   [resolve] only when a probe's stored hash actually matches. *)

(* Both sentinels are compared with [==] only (never [Config.equal]),
   so they must be physically distinct — from each other and from every
   real configuration.  Structurally equal constant records are NOT
   enough: the compiler coalesces equal structured constants (and every
   [[||]] is the one shared atom), which once made [frozen_key == dummy]
   and silently emptied every frozen slot.  Distinct field shapes keep
   the two blocks distinct under any constant sharing; no real
   configuration matches either shape ([locals] always has one slot per
   process, [status] here disagrees with it). *)
let dummy : Config.t = { locals = [||]; objects = [||]; status = [||] }

let frozen_key : Config.t =
  { locals = [||]; objects = [||]; status = [| Config.Aborted |] }

type shard = {
  mutable mask : int;  (* capacity - 1; capacity is a power of two *)
  mutable size : int;  (* entries, resident + frozen *)
  mutable n_frozen : int;
  mutable keys : Config.t array;
  mutable hashes : int array;
  mutable ids : int array;
  mutable n_probes : int;
  mutable n_hash_skips : int;
  mutable n_equal_confirms : int;
  mutable n_faults : int;
}

type t = {
  shards : shard array;
  shift : int;  (* hash lsr shift = shard index *)
  resolve : int -> Config.t;
}

type shard_stat = {
  ss_size : int;
  ss_frozen : int;
  ss_capacity : int;
  ss_probes : int;
  ss_hash_skips : int;
  ss_equal_confirms : int;
  ss_faults : int;
}

(* Hashes are [land max_int]-masked, i.e. they occupy bits 0..61 on a
   64-bit build; [62 - log2 shards] puts the top log2(shards) of those
   bits into the shard index. *)
let hash_bits = Sys.int_size - 1

let no_resolve _ =
  invalid_arg "Ctbl_sharded: freeze_below requires a resolve callback"

let create ?(shards = 1) ?(resolve = no_resolve) n =
  if shards < 1 || shards > 4096 || shards land (shards - 1) <> 0 then
    invalid_arg "Ctbl_sharded.create: shards must be a power of two in [1, 4096]";
  let log2 = ref 0 in
  while 1 lsl !log2 < shards do
    incr log2
  done;
  let per_shard = n / shards in
  let mk () =
    let cap = ref 16 in
    while !cap < per_shard * 2 do
      cap := !cap * 2
    done;
    {
      mask = !cap - 1;
      size = 0;
      n_frozen = 0;
      keys = Array.make !cap dummy;
      hashes = Array.make !cap 0;
      ids = Array.make !cap (-1);
      n_probes = 0;
      n_hash_skips = 0;
      n_equal_confirms = 0;
      n_faults = 0;
    }
  in
  {
    shards = Array.init shards (fun _ -> mk ());
    shift = hash_bits - !log2;
    resolve;
  }

let n_shards t = Array.length t.shards
let length t = Array.fold_left (fun acc s -> acc + s.size) 0 t.shards
let frozen t = Array.fold_left (fun acc s -> acc + s.n_frozen) 0 t.shards
let faults t = Array.fold_left (fun acc s -> acc + s.n_faults) 0 t.shards

let probe_stats t : Ctbl.probe_stats =
  Array.fold_left
    (fun (acc : Ctbl.probe_stats) s ->
      {
        Ctbl.probes = acc.Ctbl.probes + s.n_probes;
        hash_skips = acc.Ctbl.hash_skips + s.n_hash_skips;
        equal_confirms = acc.Ctbl.equal_confirms + s.n_equal_confirms;
      })
    { Ctbl.probes = 0; hash_skips = 0; equal_confirms = 0 }
    t.shards

let shard_stats t =
  Array.map
    (fun s ->
      {
        ss_size = s.size;
        ss_frozen = s.n_frozen;
        ss_capacity = s.mask + 1;
        ss_probes = s.n_probes;
        ss_hash_skips = s.n_hash_skips;
        ss_equal_confirms = s.n_equal_confirms;
        ss_faults = s.n_faults;
      })
    t.shards

let shard_of t hash =
  if hash < 0 then invalid_arg "Ctbl_sharded: negative hash";
  t.shards.(hash lsr t.shift)

let rec probe t s key hash i =
  s.n_probes <- s.n_probes + 1;
  let k = s.keys.(i) in
  if k == dummy then `Empty i
  else if s.hashes.(i) <> hash then begin
    s.n_hash_skips <- s.n_hash_skips + 1;
    probe t s key hash ((i + 1) land s.mask)
  end
  else begin
    s.n_equal_confirms <- s.n_equal_confirms + 1;
    let k =
      if k == frozen_key then begin
        s.n_faults <- s.n_faults + 1;
        t.resolve s.ids.(i)
      end
      else k
    in
    if Config.equal k key then `Found i
    else probe t s key hash ((i + 1) land s.mask)
  end

(* Reinsertion during [grow] goes by stored hash alone (all stored keys
   are distinct, frozen or not), bypassing the counting probe so the
   stats reflect only lookup traffic — same discipline as [Ctbl]. *)
let rec probe_empty s i =
  if s.keys.(i) == dummy then i else probe_empty s ((i + 1) land s.mask)

let grow s =
  let old_keys = s.keys and old_hashes = s.hashes and old_ids = s.ids in
  let cap = (s.mask + 1) * 2 in
  s.mask <- cap - 1;
  s.keys <- Array.make cap dummy;
  s.hashes <- Array.make cap 0;
  s.ids <- Array.make cap (-1);
  Array.iteri
    (fun i k ->
      if k != dummy then begin
        let h = old_hashes.(i) in
        let j = probe_empty s (h land s.mask) in
        s.keys.(j) <- k;
        s.hashes.(j) <- h;
        s.ids.(j) <- old_ids.(i)
      end)
    old_keys

let find_or_add t key ~hash ~if_absent =
  let s = shard_of t hash in
  match probe t s key hash (hash land s.mask) with
  | `Found i -> s.ids.(i)
  | `Empty i ->
    let id = if_absent key in
    s.keys.(i) <- key;
    s.hashes.(i) <- hash;
    s.ids.(i) <- id;
    s.size <- s.size + 1;
    (* Load factor under 2/3, per shard: a hot shard grows alone. *)
    if s.size * 3 > (s.mask + 1) * 2 then grow s;
    id

let find_opt t key ~hash =
  let s = shard_of t hash in
  match probe t s key hash (hash land s.mask) with
  | `Found i -> Some s.ids.(i)
  | `Empty _ -> None

let freeze_below t ~id_limit =
  let newly = ref 0 in
  Array.iter
    (fun s ->
      let keys = s.keys in
      for i = 0 to s.mask do
        let k = keys.(i) in
        if k != dummy && k != frozen_key && s.ids.(i) < id_limit then begin
          keys.(i) <- frozen_key;
          s.n_frozen <- s.n_frozen + 1;
          incr newly
        end
      done)
    t.shards;
  !newly
