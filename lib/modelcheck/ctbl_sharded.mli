(** Hash-prefix-sharded dedup table: 2^k independent {!Ctbl}-style
    open-addressing tables routed by the high bits of the caller's
    hash (the 64-stripe intern table in [lib/spec/value.ml] is the
    in-repo template for the idea).

    Sharding buys two things over one big table.  Growth is local: a
    shard that fills rehashes only its own entries, so insertion never
    rehashes the world and the worst-case pause scales with 1/2^k of
    the table.  And shards age independently: {!freeze_below} evicts
    the configurations of long-expanded (cold) entries from any shard
    while keeping their hash and id resident, so an out-of-core build
    can bound the RAM the dedup table pins.  A probe that lands on a
    frozen slot with a matching stored hash faults the configuration
    back through the [resolve] callback (backed by the {!Segstore})
    for the one [Config.equal] it needs — full-hash collisions are the
    only other reason to fault, so cold entries cost a disk touch only
    on genuine re-encounters.

    Routing uses the {e high} bits of the hash while in-shard slots use
    the low bits, so sharding leaves probe sequences independent of the
    shard count: for any k, the same keys collide within a shard exactly
    as they would in one table.  With [shards = 1] the only overhead
    per lookup is a single shift. *)

open Lbsa_runtime

type t

type shard_stat = {
  ss_size : int;  (** entries (resident + frozen) *)
  ss_frozen : int;  (** entries whose configuration lives on disk *)
  ss_capacity : int;
  ss_probes : int;
  ss_hash_skips : int;
  ss_equal_confirms : int;
  ss_faults : int;  (** frozen-slot resolves *)
}

val create : ?shards:int -> ?resolve:(int -> Config.t) -> int -> t
(** [create ~shards ~resolve n] sizes each shard for about [n/shards]
    expected entries.  [shards] must be a power of two in \[1, 4096\]
    (default 1).  [resolve id] must return the configuration that was
    inserted with id [id]; it is only called after {!freeze_below} has
    frozen entries, so callers that never freeze can omit it. *)

val n_shards : t -> int
val length : t -> int

val find_or_add :
  t -> Config.t -> hash:int -> if_absent:(Config.t -> int) -> int
(** Same contract as {!Ctbl.find_or_add}: returns the id bound to the
    key, inserting [if_absent key] first when absent; detect a fresh
    insert by comparing {!length} before and after.  [hash] must be
    non-negative (the explorer's [Config.hash] always is). *)

val find_opt : t -> Config.t -> hash:int -> int option

val freeze_below : t -> id_limit:int -> int
(** Drops the resident configuration of every entry with id below
    [id_limit], in every shard; such entries keep their hash and id and
    answer probes through [resolve].  Returns the number of entries
    newly frozen.  Requires [resolve] to have been supplied. *)

val frozen : t -> int
val faults : t -> int

val probe_stats : t -> Ctbl.probe_stats
(** Aggregate probe traffic across shards, in {!Ctbl}'s own stats type
    (frozen-slot resolves count as equal-confirms there; see
    {!shard_stat.ss_faults} for the split). *)

val shard_stats : t -> shard_stat array
