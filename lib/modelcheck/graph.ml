open Lbsa_runtime

(* The reachable configuration graph of a protocol: nodes are global
   configurations, edges are atomic steps (process id + event), with all
   scheduler choices and all object nondeterminism included.  This is the
   object the paper's proofs quantify over, built explicitly for small
   instances.

   Construction is a level-synchronous BFS: each frontier is expanded in
   parallel across OCaml domains (the per-node successor computation is
   pure), then merged sequentially in frontier order.  Because the merge
   assigns node ids in exactly the discovery order of the seed's
   single-threaded FIFO BFS, the resulting graph — ids, edge order,
   truncation point — is bit-identical regardless of the domain count,
   so every downstream table and test is reproducible.  Dedup goes
   through {!Ctbl}, an open-addressing hash set keyed on [Config.hash] —
   with hash-consed values that is a fold over cached per-element
   hashes, O(#processes) per configuration, so the build needs no
   incremental hashing machinery of its own.  (An earlier revision
   threaded parent-to-child element-hash arrays through the frontier to
   avoid rehashing whole value trees; interning made that redundant and
   it was deleted.)  Out-edges live in one flat array in CSR form
   (per-node slices via [offsets]) instead of a per-node list array.

   Determinism caveat: everything stored or ordered here — node ids,
   edge order, [Config.hash] — is structural.  Value intern ids are
   allocation-order-dependent and must never feed into this module's
   hashes or orderings; see the invariant note in [Value]. *)

type edge = { pid : int; event : Config.event; target : int }

(* An opt-in reduction of the explored graph: [canon] quotients states
   by a process-symmetry group (successors are replaced by their orbit
   representative before dedup), and [sleep] prunes commuting schedules
   by expanding only the commit step of a configuration when one exists
   (a poised decide/abort, or an operation on an object the [frozen]
   hint certifies permanently inert).  [rname] is the user-facing mode
   name ("none" / "sym" / "sym+sleep"); it is recorded in stats and
   checkpoints, and a resumed build must use the same mode.  Soundness:
   DESIGN.md, "State-space reduction". *)
type reduction = {
  rname : string;
  canon : Canon.t;
  sleep : bool;
  frozen : (int -> Lbsa_spec.Value.t -> bool) option;
}

let no_reduction =
  { rname = "none"; canon = Canon.identity; sleep = false; frozen = None }

type reduction_stats = {
  rmode : string;
  group_order : int;
  canonized : int;  (* successors replaced by a smaller orbit representative *)
  ample_nodes : int;  (* expanded nodes where only the commit step was taken *)
  ample_pruned : int;  (* running processes not expanded at those nodes *)
}

let no_reduction_stats =
  { rmode = "none"; group_order = 1; canonized = 0; ample_nodes = 0; ample_pruned = 0 }

(* Out-of-core spilling: once more than [spill_threshold] expanded
   (cold) states are resident, the oldest ones — their configurations
   and their CSR edge slice — move to disk segments under [spill_dir],
   and the dedup entries covering them are frozen to (hash, id) pairs.
   Spilling happens only at level boundaries, so it never races the
   expansion workers and never touches the live frontier. *)
type spill = { spill_dir : string; spill_threshold : int }

type spill_stats = {
  sp_segments : int;  (* segments written *)
  sp_bytes : int;  (* bytes across live segment files *)
  sp_seg_faults : int;  (* segment loads back from disk *)
  sp_frozen : int;  (* dedup entries whose key lives on disk *)
  sp_key_faults : int;  (* frozen dedup slots resolved through a segment *)
}

let no_spill_stats =
  {
    sp_segments = 0;
    sp_bytes = 0;
    sp_seg_faults = 0;
    sp_frozen = 0;
    sp_key_faults = 0;
  }

type stats = {
  states : int;
  edges : int;
  levels : int;  (* BFS depth = number of frontiers expanded *)
  frontier_sizes : int array;  (* one entry per level *)
  peak_frontier : int;
  dedup_hits : int;  (* successors that were already-known states *)
  dedup_rate : float;  (* dedup_hits / successors generated *)
  probe : Ctbl.probe_stats;  (* dedup-table probe traffic; zeros for build_cmap *)
  shards : int;  (* dedup shard count the build ran with *)
  shard_stats : Ctbl_sharded.shard_stat array;  (* per-shard occupancy/probes *)
  steals : int;
      (* frontier spans stolen between domains; timing-dependent
         telemetry — the produced graph never depends on it *)
  spill : spill_stats;
  wall_s : float;
  states_per_sec : float;
  domains : int;
  truncated : bool;
  reduction : reduction_stats;
}

(* A partial exploration, frozen at a level boundary: the prefix
   [0, s_expanded) of nodes has final out-edges; everything at or after
   [s_expanded] is the unexpanded frontier.  Because the explorer is
   level-synchronous and completed levels are identical for any domain
   count, a suspended prefix — and therefore a resumed build — is too.
   Checkpoint files store a structural mirror of this (see
   {!Checkpoint}); values are re-interned on load. *)
type suspended = {
  s_nodes : Config.t array;  (* every discovered configuration, id order *)
  s_expanded : int;
  s_edges : edge array;
  s_offsets : int array;  (* length s_expanded *)
  s_dedup_hits : int;
  s_n_succs : int;
  s_frontier_sizes : int array;  (* completed levels only *)
  s_reduction : string;  (* reduction mode name; a resume must match it *)
  s_substrate : string;  (* substrate name; a resume must match it too *)
  s_canonized : int;
  s_ample_nodes : int;
  s_ample_pruned : int;
}

(* Edge targets (and pids) also live packed in one flat, always-resident
   int array: [(target lsl 8) lor pid].  Every pure-topology pass — SCC,
   the valence sweep, liveness cycle searches, shortest-path parents —
   reads only this array, so an out-of-core graph answers them with zero
   segment faults; full [edge] records (with their events) fault in only
   when a caller actually asks for them. *)
let pid_bits = 8

let pack_step ~pid ~target =
  if pid lsr pid_bits <> 0 then invalid_arg "Graph: pid does not fit 8 bits";
  (target lsl pid_bits) lor pid

type t = {
  nodes : Config.t array;  (* resident suffix: ids [n_base, n_base + length) *)
  n_base : int;  (* 0 unless the build spilled *)
  edges : edge array;  (* resident suffix of the flat CSR edge array *)
  e_base : int;
  targets : int array;  (* all edges, packed (target lsl 8) lor pid *)
  offsets : int array;  (* length nodes+1; node id owns [offsets.(id), offsets.(id+1)) *)
  segs : Segstore.t option;  (* cold prefix [0, n_base) and its edges *)
  initial : int;
  truncated : bool;  (* true whenever stop <> Done: results are partial *)
  stop : Supervisor.outcome;
  suspended : suspended option;
      (* present when the build stopped mid-exploration with a live
         frontier (deadline / cancellation / worker failure) *)
  stats : stats;
}

exception Truncated

let pp_reduction_stats ppf r =
  Fmt.pf ppf "reduction: %s (group order %d, %d canonized, %d ample nodes, %d steps pruned)"
    r.rmode r.group_order r.canonized r.ample_nodes r.ample_pruned

let pp_sharding ppf s =
  if s.shards > 1 || s.steals > 0 then begin
    let occupied =
      Array.fold_left
        (fun a (sh : Ctbl_sharded.shard_stat) ->
          a + if sh.Ctbl_sharded.ss_size > 0 then 1 else 0)
        0 s.shard_stats
    in
    Fmt.pf ppf "@,shards: %d (%d occupied), steals: %d" s.shards occupied
      s.steals
  end

let pp_spill ppf sp =
  if sp.sp_segments > 0 then
    Fmt.pf ppf
      "@,spill: %d segments (%d bytes), %d segment faults, %d frozen keys \
       (%d key faults)"
      sp.sp_segments sp.sp_bytes sp.sp_seg_faults sp.sp_frozen sp.sp_key_faults

let pp_stats ppf s =
  Fmt.pf ppf
    "@[<v>states: %d%s@,edges: %d@,levels: %d (peak frontier %d)@,\
     dedup: %d hits (%.1f%% of %d successors)@,\
     probes: %d (%d skipped on hash, %d equal-confirms)@,\
     wall: %.3f s (%.0f states/s, %d domain%s)%a%a%a@]"
    s.states
    (if s.truncated then " [TRUNCATED]" else "")
    s.edges s.levels s.peak_frontier s.dedup_hits (100. *. s.dedup_rate)
    (s.dedup_hits + s.states - 1 + if s.truncated then 1 else 0)
    s.probe.Ctbl.probes s.probe.Ctbl.hash_skips s.probe.Ctbl.equal_confirms
    s.wall_s s.states_per_sec s.domains
    (if s.domains = 1 then "" else "s")
    (fun ppf r ->
      if r.rmode <> "none" then Fmt.pf ppf "@,%a" pp_reduction_stats r)
    s.reduction pp_sharding s pp_spill s.spill

(* --- small growable arrays (flat storage while the size is unknown) --- *)

module Dyn = struct
  type 'a t = { mutable arr : 'a array; mutable len : int }

  let create () = { arr = [||]; len = 0 }

  let push d x =
    if d.len = Array.length d.arr then begin
      let cap = max 64 (2 * Array.length d.arr) in
      let arr = Array.make cap x in
      Array.blit d.arr 0 arr 0 d.len;
      d.arr <- arr
    end;
    d.arr.(d.len) <- x;
    d.len <- d.len + 1

  let to_array d = Array.sub d.arr 0 d.len
end

(* --- parallel frontier expansion -------------------------------------- *)

(* All successors of one configuration, grouped per pid (one list cell
   and pair per *process*, not per successor), in the deterministic order
   the seed BFS used: pids ascending, object branches in spec order.
   With a nontrivial [reduce] this is the single shared reduction step
   of both explorers ([build] and the [build_cmap] oracle, which must
   stay graph-identical): the ample rule first restricts expansion to
   the commit step when one exists, then every successor is flushed
   (poised decide/aborts committed in place) and replaced by its
   canonical orbit representative.  Returns the per-pid branch lists
   plus this node's reduction counters: successors canonized, and
   steps short-circuited by commit pruning (suppressed sibling
   expansions plus flushed decide/aborts). *)
(* Normalize one configuration under [reduce]: flush poised
   decide/abort steps into it (sleep layer), then replace it by its
   canonical orbit representative (symmetry layer).  Flushing first is
   sound in either order — it is equivariant under the group, since it
   applies the commuting commit steps of *every* poised process at
   once.  Returns the reduced configuration plus (flushed steps,
   canonizations). *)
let reduce_config ~reduce ~machine config =
  let config, flushed =
    if reduce.sleep then Canon.flush_commits ~machine config else (config, 0)
  in
  if Canon.is_identity reduce.canon then (config, flushed, 0)
  else
    let c = Canon.canonical reduce.canon config in
    (c, flushed, if c != config then 1 else 0)

let successors ?(substrate = Substrate.shm) ~reduce ~machine ~specs config =
  let ample =
    if reduce.sleep then Canon.commit_pid ~machine ?frozen:reduce.frozen config
    else None
  in
  let canonized = ref 0 in
  let flushed = ref 0 in
  let branches_of pid =
    let bs = substrate.Substrate.step_branches ~machine ~specs config pid in
    if (not reduce.sleep) && Canon.is_identity reduce.canon then bs
    else
      List.map
        (fun ((c' : Config.t), event) ->
          let c'', f, k = reduce_config ~reduce ~machine c' in
          flushed := !flushed + f;
          canonized := !canonized + k;
          (c'', event))
        bs
  in
  match ample with
  | Some pid ->
    let bs = branches_of pid in
    let pruned = List.length (Config.running config) - 1 in
    ([ (pid, bs) ], !canonized, pruned + !flushed)
  | None ->
    let acc = ref [] in
    for pid = Config.n_processes config - 1 downto 0 do
      if Config.is_running config pid then acc := (pid, branches_of pid) :: !acc
    done;
    (!acc, !canonized, !flushed)

(* [recommended_domain_count] probes the machine; do it once, not per
   build (builds of tiny graphs run at ~1M states/s, where even a few
   microseconds of setup shows up). *)
let default_domains =
  let d = lazy (max 1 (min 8 (Domain.recommended_domain_count ()))) in
  fun () -> Lazy.force d

(* Below this frontier size the spawn/join overhead outweighs the work. *)
let parallel_threshold = 256

(* Granule of the work-stealing loop: a worker claims this many frontier
   indices at a time from its own span. *)
let steal_block = 64

(* One worker's span of unclaimed frontier indices.  [lo] advances as
   the owner claims blocks; [hi] retreats when a thief steals the upper
   half.  The lock covers both fields; every deque operation is a few
   loads and stores, so contention is negligible next to successor
   computation. *)
type deque = { mutable dq_lo : int; mutable dq_hi : int; dq_lock : Mutex.t }

(* Expand the first [n] entries of the frontier buffer; [Ok (out,
   steals)] has node [i]'s successor list at [out.(i)].

   Scheduling is work-stealing: the frontier is split into [d] initial
   spans (one per domain), each worker claims [steal_block]-sized blocks
   from the front of its own span, and a worker whose span is empty
   steals the upper half of a victim's remaining span, installs it as
   its own and continues.  Stealing only moves *which worker* computes
   an index, never what is computed or where it lands: [out.(i)] is a
   pure function of [frontier.(i)], every index is written exactly once,
   and the caller's merge reads [out] sequentially in frontier order —
   so the produced graph is bit-identical for any domain count and any
   steal interleaving, exactly as with static chunking.  [Domain.join]
   publishes the writes.

   Termination: an atomic [remaining] counts unprocessed indices, and a
   worker whose own span and every victim's span are empty spins until
   it reaches zero (some worker is still computing the last claimed
   blocks) or a failure is flagged.

   Fault isolation: each worker loop runs under [Supervisor.run_shard],
   which retries a crashed attempt with bounded backoff.  A worker
   records its claimed block in [claimed.(k)] before processing, so a
   retry first reprocesses that block (idempotent: pure recompute into
   the same disjoint slots) before claiming more.  [remaining] is
   decremented once per completed block, after processing; injected
   chaos faults fire at attempt entry — before any claim — so a
   transient crash never leaves the counter torn.  A deterministic
   crash (a raising machine) exhausts its retries, flags [failed], and
   every other worker exits; the level is then abandoned whole.
   [Error (worker, exn, attempts)] reports the lowest such worker. *)
let expand ~domains ~substrate ~reduce ~machine ~specs frontier n =
  let out = Array.make n ([], 0, 0) in
  let process lo hi =
    for i = lo to hi - 1 do
      out.(i) <- successors ~substrate ~reduce ~machine ~specs frontier.(i)
    done
  in
  let d = min domains n in
  if d <= 1 || n < parallel_threshold then
    match Supervisor.run_shard ~worker:0 (fun () -> process 0 n) with
    | Ok () -> Ok (out, 0)
    | Error (exn, attempts) -> Error (0, exn, attempts)
  else begin
    let chunk = (n + d - 1) / d in
    let deques =
      Array.init d (fun k ->
          {
            dq_lo = min n (k * chunk);
            dq_hi = min n ((k + 1) * chunk);
            dq_lock = Mutex.create ();
          })
    in
    let remaining = Atomic.make n in
    let failed = Atomic.make false in
    let steals = Atomic.make 0 in
    let claimed = Array.make d None in
    let take_own k =
      let dq = deques.(k) in
      Mutex.lock dq.dq_lock;
      let r =
        if dq.dq_lo < dq.dq_hi then begin
          let lo = dq.dq_lo in
          let hi = min dq.dq_hi (lo + steal_block) in
          dq.dq_lo <- hi;
          Some (lo, hi)
        end
        else None
      in
      Mutex.unlock dq.dq_lock;
      r
    in
    let steal k =
      let rec go i =
        if i >= d then None
        else begin
          let dq = deques.((k + i) mod d) in
          Mutex.lock dq.dq_lock;
          let got =
            let rem = dq.dq_hi - dq.dq_lo in
            if rem <= 0 then None
            else begin
              (* Steal the upper half (the whole span when it is down
                 to one block) — the victim keeps the work nearest its
                 cursor. *)
              let mid =
                if rem <= steal_block then dq.dq_lo else dq.dq_lo + (rem / 2)
              in
              let r = (mid, dq.dq_hi) in
              dq.dq_hi <- mid;
              Some r
            end
          in
          Mutex.unlock dq.dq_lock;
          match got with
          | Some (lo, hi) ->
            Atomic.incr steals;
            (* Install the stolen span as our own (only the owner ever
               writes both ends outside a steal, and our span is empty),
               then claim from it normally. *)
            let own = deques.(k) in
            Mutex.lock own.dq_lock;
            own.dq_lo <- lo;
            own.dq_hi <- hi;
            Mutex.unlock own.dq_lock;
            take_own k
          | None -> go (i + 1)
        end
      in
      go 1
    in
    let rec worker k () =
      (match claimed.(k) with
      | Some (lo, hi) ->
        (* A previous attempt of this worker crashed mid-block; redo it
           (pure recompute into the same slots) before claiming more. *)
        process lo hi;
        ignore (Atomic.fetch_and_add remaining (lo - hi));
        claimed.(k) <- None
      | None -> ());
      if Atomic.get failed then ()
      else
        match (match take_own k with Some b -> Some b | None -> steal k) with
        | Some (lo, hi) ->
          claimed.(k) <- Some (lo, hi);
          process lo hi;
          ignore (Atomic.fetch_and_add remaining (lo - hi));
          claimed.(k) <- None;
          worker k ()
        | None ->
          if Atomic.get remaining > 0 then begin
            Domain.cpu_relax ();
            worker k ()
          end
    in
    let shard k =
      let r = Supervisor.run_shard ~worker:k (worker k) in
      (match r with
      | Error _ -> Atomic.set failed true
      | Ok () -> ());
      r
    in
    let spawned =
      List.init (d - 1) (fun k -> Domain.spawn (fun () -> shard (k + 1)))
    in
    let first = shard 0 in
    let results = first :: List.map Domain.join spawned in
    let worst = ref None in
    List.iteri
      (fun k r ->
        match r with
        | Error (exn, attempts) when !worst = None ->
          worst := Some (k, exn, attempts)
        | _ -> ())
      results;
    match !worst with
    | None -> Ok (out, Atomic.get steals)
    | Some f -> Error f
  end

(* --- construction ------------------------------------------------------ *)

let default_max_states = 1_000_000
let default_spill_threshold = 500_000

(* Hole values for compacting the resident arrays after a spill: the
   freed suffix slots must stop retaining the spilled configurations. *)
let hole_config : Config.t = { locals = [||]; objects = [||]; status = [||] }
let hole_edge = { pid = 0; event = Config.Abort_event { pid = 0 }; target = 0 }

let build ?(max_states = default_max_states) ?domains
    ?(budget = Supervisor.Budget.unlimited) ?(substrate = Substrate.shm)
    ?(reduce = no_reduction) ?resume ?(shards = 1) ?spill
    ~(machine : Machine.t) ~(specs : Lbsa_spec.Obj_spec.t array) ~inputs () =
  let domains =
    match domains with
    | Some d when d >= 1 -> d
    | Some d -> invalid_arg (Fmt.str "Graph.build: domains %d < 1" d)
    | None -> default_domains ()
  in
  let t0 = Unix.gettimeofday () in
  let nodes = Dyn.create () in
  let edges = Dyn.create () in
  let targets = Dyn.create () in
  let offsets = Dyn.create () in
  let n_nodes = ref 0 in
  (* Ids below [n_base] (and edge indices below [e_base]) live in the
     segment store; the Dyn buffers hold only the resident suffix. *)
  let n_base = ref 0 in
  let e_base = ref 0 in
  let store =
    match spill with
    | None -> None
    | Some sp ->
      if sp.spill_threshold < 1 then
        invalid_arg "Graph.build: spill_threshold < 1";
      Some (Segstore.create ~dir:sp.spill_dir)
  in
  (* Configuration of a node id, wherever it lives — the dedup table's
     resolve callback for frozen entries, and the accessor below. *)
  let config_of id =
    if id >= !n_base then nodes.Dyn.arr.(id - !n_base)
    else Segstore.node (Option.get store) id
  in
  let tbl = Ctbl_sharded.create ~shards ~resolve:config_of 16 in
  let dedup_hits = ref 0 in
  let n_succs = ref 0 in
  let canonized = ref 0 in
  let ample_nodes = ref 0 in
  let ample_pruned = ref 0 in
  let steals = ref 0 in
  let frontier_sizes = Dyn.create () in
  (* Two frontier buffers, swapped each level; no per-level copying.
     Hashing a candidate successor is [Config.hash]: a fold over the
     elements' cached hash fields, so there is nothing to carry between
     parent and child any more. *)
  let cur = ref (Dyn.create ()) in
  let nxt = ref (Dyn.create ()) in
  (* Nodes whose out-edges have been finalized; always a level boundary. *)
  let expanded = ref 0 in
  let register config =
    let id = !n_nodes in
    incr n_nodes;
    Dyn.push nodes config;
    Dyn.push !nxt config;
    id
  in
  (match resume with
  | None ->
    let init, _, _ =
      reduce_config ~reduce ~machine
        (substrate.Substrate.initial ~machine ~specs ~inputs)
    in
    ignore
      (Ctbl_sharded.find_or_add tbl init ~hash:(Config.hash init)
         ~if_absent:register)
  | Some s ->
    (* Rebuild the dedup table and buffers from a suspended prefix.  The
       stored id must win over allocation order, so insertion bypasses
       [register]; the frontier is exactly the unexpanded suffix.  A
       resumed build starts fully resident (a suspended exploration is
       materialized); spilling, if enabled, re-engages as it grows. *)
    if s.s_reduction <> reduce.rname then
      invalid_arg
        (Fmt.str
           "Graph.build: resume reduction mode %S does not match requested %S"
           s.s_reduction reduce.rname);
    if s.s_substrate <> substrate.Substrate.sname then
      invalid_arg
        (Fmt.str
           "Graph.build: resume substrate %S does not match requested %S"
           s.s_substrate substrate.Substrate.sname);
    Array.iteri
      (fun id config ->
        Dyn.push nodes config;
        ignore
          (Ctbl_sharded.find_or_add tbl config ~hash:(Config.hash config)
             ~if_absent:(fun _ -> id));
        if id >= s.s_expanded then Dyn.push !nxt config)
      s.s_nodes;
    n_nodes := Array.length s.s_nodes;
    Array.iter
      (fun e ->
        Dyn.push edges e;
        Dyn.push targets (pack_step ~pid:e.pid ~target:e.target))
      s.s_edges;
    Array.iter (Dyn.push offsets) s.s_offsets;
    Array.iter (Dyn.push frontier_sizes) s.s_frontier_sizes;
    dedup_hits := s.s_dedup_hits;
    n_succs := s.s_n_succs;
    canonized := s.s_canonized;
    ample_nodes := s.s_ample_nodes;
    ample_pruned := s.s_ample_pruned;
    expanded := s.s_expanded);
  (* Spill the cold prefix down to [threshold / 2] resident expanded
     nodes, in segment chunks; runs at a level boundary only (single
     threaded, frontier untouched — frontier ids are >= expanded and
     the cut stays strictly below it).  After the segments are written,
     the resident Dyns are compacted in place and the dedup entries
     covering the spilled ids are frozen to (hash, id). *)
  let maybe_spill () =
    match (spill, store) with
    | Some sp, Some st when !expanded - !n_base > sp.spill_threshold ->
      let keep = max 1 (sp.spill_threshold / 2) in
      let cut_to = !expanded - keep in
      let seg_len = min 65536 (max 64 (sp.spill_threshold / 4)) in
      let e_cut = ref !e_base in
      let lo = ref !n_base in
      while !lo < cut_to do
        let hi = min cut_to (!lo + seg_len) in
        let elo = offsets.Dyn.arr.(!lo) in
        let ehi = offsets.Dyn.arr.(hi) in
        let configs =
          Array.init (hi - !lo) (fun i ->
              Mirror.freeze_config nodes.Dyn.arr.(!lo + i - !n_base))
        in
        let pedges =
          Array.init (ehi - elo) (fun i ->
              let e = edges.Dyn.arr.(elo + i - !e_base) in
              Mirror.freeze_step ~pid:e.pid ~event:e.event ~target:e.target)
        in
        Segstore.write_segment st ~lo:!lo ~hi ~elo ~ehi ~configs ~edges:pedges;
        e_cut := ehi;
        lo := hi
      done;
      let nshift = cut_to - !n_base in
      Array.blit nodes.Dyn.arr nshift nodes.Dyn.arr 0 (nodes.Dyn.len - nshift);
      Array.fill nodes.Dyn.arr (nodes.Dyn.len - nshift) nshift hole_config;
      nodes.Dyn.len <- nodes.Dyn.len - nshift;
      n_base := cut_to;
      let eshift = !e_cut - !e_base in
      Array.blit edges.Dyn.arr eshift edges.Dyn.arr 0 (edges.Dyn.len - eshift);
      Array.fill edges.Dyn.arr (edges.Dyn.len - eshift) eshift hole_edge;
      edges.Dyn.len <- edges.Dyn.len - eshift;
      e_base := !e_cut;
      ignore (Ctbl_sharded.freeze_below tbl ~id_limit:cut_to)
    | _ -> ()
  in
  let stop = ref Supervisor.Done in
  while !stop = Supervisor.Done && (!nxt).Dyn.len > 0 do
    (* Budget and quota polls at the level boundary: the only place a
       partial graph can stop and stay identical for every domain count.
       The quota fires BEFORE a level is expanded, never inside one, so
       every expanded node keeps its complete out-edge list and the
       unexpanded frontier stays in [suspended] — that is what makes a
       quota-truncated build checkpointable and resumable.  (A level's
       successors are always registered in full, so the node count may
       overshoot [max_states] by up to one frontier's growth.) *)
    match Supervisor.Budget.stop budget with
    | Some o -> stop := o
    | None when !n_nodes >= max_states -> stop := Supervisor.Truncated
    | None -> (
      let f = !nxt in
      nxt := !cur;
      cur := f;
      (!nxt).Dyn.len <- 0;
      match
        expand ~domains ~substrate ~reduce ~machine ~specs f.Dyn.arr f.Dyn.len
      with
      | Error (worker, exn, attempts) ->
        (* This level's expansion failed even after retries.  Every
           completed level is kept; this one is abandoned whole (its
           nodes stay frontier), so the surviving prefix is still a
           level boundary and domain-count-deterministic. *)
        stop := Supervisor.Worker_failed { worker; exn; attempts }
      | Ok (succs, level_steals) ->
        steals := !steals + level_steals;
        Dyn.push frontier_sizes f.Dyn.len;
        Array.iteri
          (fun _i (succ_list, n_canon, n_pruned) ->
            canonized := !canonized + n_canon;
            if n_pruned > 0 then begin
              incr ample_nodes;
              ample_pruned := !ample_pruned + n_pruned
            end;
            (* Nodes are expanded in id order, so this records offsets.(id). *)
            Dyn.push offsets (!e_base + edges.Dyn.len);
            List.iter
              (fun (pid, branches) ->
                List.iter
                  (fun ((config' : Config.t), event) ->
                    incr n_succs;
                    let hash = Config.hash config' in
                    let before = Ctbl_sharded.length tbl in
                    let target =
                      Ctbl_sharded.find_or_add tbl config' ~hash
                        ~if_absent:register
                    in
                    if Ctbl_sharded.length tbl = before then incr dedup_hits;
                    Dyn.push edges { pid; event; target };
                    Dyn.push targets (pack_step ~pid ~target))
                  branches)
              succ_list)
          succs;
        expanded := !expanded + f.Dyn.len;
        maybe_spill ())
  done;
  let stop = !stop in
  (* Materialized views over resident + spilled storage, for [suspended]
     and for fully-resident final graphs.  The sequential walk faults
     each segment at most [cache_slots] times. *)
  let all_nodes () = Array.init !n_nodes config_of in
  let all_edges () =
    Array.init (!e_base + edges.Dyn.len) (fun i ->
        if i >= !e_base then edges.Dyn.arr.(i - !e_base)
        else
          let pid, event, target = Segstore.step (Option.get store) i in
          { pid; event; target })
  in
  let suspended =
    if !expanded < !n_nodes then
      Some
        {
          s_nodes = all_nodes ();
          s_expanded = !expanded;
          s_edges = all_edges ();
          s_offsets = Dyn.to_array offsets;
          s_dedup_hits = !dedup_hits;
          s_n_succs = !n_succs;
          s_frontier_sizes = Dyn.to_array frontier_sizes;
          s_reduction = reduce.rname;
          s_substrate = substrate.Substrate.sname;
          s_canonized = !canonized;
          s_ample_nodes = !ample_nodes;
          s_ample_pruned = !ample_pruned;
        }
    else None
  in
  let n_all_edges = !e_base + edges.Dyn.len in
  (* Unexpanded frontier nodes (partial stop) get empty out-edge slices
     so the CSR offsets invariant (length nodes+1) holds for readers. *)
  for _ = !expanded to !n_nodes - 1 do
    Dyn.push offsets n_all_edges
  done;
  Dyn.push offsets n_all_edges;
  let truncated = stop <> Supervisor.Done in
  let wall_s = Unix.gettimeofday () -. t0 in
  let frontier_sizes = Dyn.to_array frontier_sizes in
  let spill_stats =
    match store with
    | None -> no_spill_stats
    | Some st ->
      {
        sp_segments = Segstore.n_segments st;
        sp_bytes = Segstore.spilled_bytes st;
        sp_seg_faults = Segstore.faults st;
        sp_frozen = Ctbl_sharded.frozen tbl;
        sp_key_faults = Ctbl_sharded.faults tbl;
      }
  in
  let stats =
    {
      states = !n_nodes;
      edges = n_all_edges;
      levels = Array.length frontier_sizes;
      frontier_sizes;
      peak_frontier = Array.fold_left max 0 frontier_sizes;
      dedup_hits = !dedup_hits;
      dedup_rate =
        (if !n_succs = 0 then 0. else float !dedup_hits /. float !n_succs);
      probe = Ctbl_sharded.probe_stats tbl;
      shards;
      shard_stats = Ctbl_sharded.shard_stats tbl;
      steals = !steals;
      spill = spill_stats;
      wall_s;
      states_per_sec =
        (if wall_s > 0. then float !n_nodes /. wall_s else float !n_nodes);
      domains;
      truncated;
      reduction =
        {
          rmode = reduce.rname;
          group_order = Canon.order reduce.canon;
          canonized = !canonized;
          ample_nodes = !ample_nodes;
          ample_pruned = !ample_pruned;
        };
    }
  in
  {
    nodes = Dyn.to_array nodes;
    n_base = !n_base;
    edges = Dyn.to_array edges;
    e_base = !e_base;
    targets = Dyn.to_array targets;
    offsets = Dyn.to_array offsets;
    segs = store;
    initial = 0;
    truncated;
    stop;
    suspended;
    stats;
  }

(* Constructor for checkpoint thawing: [suspended] is private in the
   interface (only [build] and [Checkpoint] may produce one), so the
   checkpoint loader goes through here. *)
let suspended_of_parts ~nodes ~expanded ~edges ~offsets ~dedup_hits ~n_succs
    ~frontier_sizes ~reduction ~substrate ~canonized ~ample_nodes ~ample_pruned
    =
  if expanded < 0 || expanded > Array.length nodes then
    invalid_arg "Graph.suspended_of_parts: expanded out of range";
  if Array.length offsets <> expanded then
    invalid_arg "Graph.suspended_of_parts: offsets length <> expanded";
  {
    s_nodes = nodes;
    s_expanded = expanded;
    s_edges = edges;
    s_offsets = offsets;
    s_dedup_hits = dedup_hits;
    s_n_succs = n_succs;
    s_frontier_sizes = frontier_sizes;
    s_reduction = reduction;
    s_substrate = substrate;
    s_canonized = canonized;
    s_ample_nodes = ample_nodes;
    s_ample_pruned = ample_pruned;
  }

(* The seed explorer: single-threaded FIFO BFS deduping through a
   persistent [Map.Make(Config)].  Kept as the differential-testing
   oracle and the benchmark baseline; [build] must produce the identical
   graph.

   The comparator reproduces the seed's comparison path verbatim — in
   particular WITHOUT the physical-equality and intern-id fast paths
   [Value.compare] has since gained — so benchmarking [build] against
   [build_cmap] measures the new engine against the explorer the seed
   shipped, not a baseline retroactively sped up by this refactor.  It
   reads through the hash-consed records to their structural [node]s
   and walks whole trees. *)
module Seed_ord = struct
  type t = Config.t

  open Lbsa_spec

  let rec compare_value (a : Value.t) (b : Value.t) =
    match (Value.node a, Value.node b) with
    | Value.Unit, Value.Unit -> 0
    | Value.Unit, _ -> -1
    | _, Value.Unit -> 1
    | Value.Bool x, Value.Bool y -> Stdlib.compare x y
    | Value.Bool _, _ -> -1
    | _, Value.Bool _ -> 1
    | Value.Int x, Value.Int y -> Stdlib.compare x y
    | Value.Int _, _ -> -1
    | _, Value.Int _ -> 1
    | Value.Sym x, Value.Sym y -> String.compare x y
    | Value.Sym _, _ -> -1
    | _, Value.Sym _ -> 1
    | Value.Bot, Value.Bot -> 0
    | Value.Bot, _ -> -1
    | _, Value.Bot -> 1
    | Value.Nil, Value.Nil -> 0
    | Value.Nil, _ -> -1
    | _, Value.Nil -> 1
    | Value.Done, Value.Done -> 0
    | Value.Done, _ -> -1
    | _, Value.Done -> 1
    | Value.Pair (x1, y1), Value.Pair (x2, y2) ->
      let c = compare_value x1 x2 in
      if c <> 0 then c else compare_value y1 y2
    | Value.Pair _, _ -> -1
    | _, Value.Pair _ -> 1
    | Value.List xs, Value.List ys -> compare_value_lists xs ys

  and compare_value_lists xs ys =
    match (xs, ys) with
    | [], [] -> 0
    | [], _ -> -1
    | _, [] -> 1
    | x :: xs', y :: ys' ->
      let c = compare_value x y in
      if c <> 0 then c else compare_value_lists xs' ys'

  let compare_status (a : Config.status) (b : Config.status) =
    match (a, b) with
    | Config.Running, Config.Running -> 0
    | Config.Running, _ -> -1
    | _, Config.Running -> 1
    | Config.Decided x, Config.Decided y -> compare_value x y
    | Config.Decided _, _ -> -1
    | _, Config.Decided _ -> 1
    | Config.Aborted, Config.Aborted -> 0
    | Config.Aborted, _ -> -1
    | _, Config.Aborted -> 1
    | Config.Crashed, Config.Crashed -> 0

  let compare (a : Config.t) (b : Config.t) =
    let arr cmp x y =
      let c = Stdlib.compare (Array.length x) (Array.length y) in
      if c <> 0 then c
      else
        let rec go i =
          if i >= Array.length x then 0
          else
            let c = cmp x.(i) y.(i) in
            if c <> 0 then c else go (i + 1)
        in
        go 0
    in
    let c = arr compare_value a.Config.locals b.Config.locals in
    if c <> 0 then c
    else
      let c = arr compare_value a.Config.objects b.Config.objects in
      if c <> 0 then c else arr compare_status a.Config.status b.Config.status
end

module CMap = Map.Make (Seed_ord)

let build_cmap ?(max_states = default_max_states)
    ?(substrate = Substrate.shm) ?(reduce = no_reduction)
    ~(machine : Machine.t) ~(specs : Lbsa_spec.Obj_spec.t array) ~inputs () =
  let t0 = Unix.gettimeofday () in
  let init, _, _ =
    reduce_config ~reduce ~machine
      (substrate.Substrate.initial ~machine ~specs ~inputs)
  in
  let ids = ref (CMap.singleton init 0) in
  let nodes = ref [ init ] in
  let n_nodes = ref 1 in
  let edges : (int, edge list) Hashtbl.t = Hashtbl.create 1024 in
  let queue = Queue.create () in
  let truncated = ref false in
  let dedup_hits = ref 0 in
  let n_succs = ref 0 in
  let canonized = ref 0 in
  let ample_nodes = ref 0 in
  let ample_pruned = ref 0 in
  Queue.add (init, 0) queue;
  let id_of config =
    incr n_succs;
    match CMap.find_opt config !ids with
    | Some id ->
      incr dedup_hits;
      Some id
    | None ->
      if !n_nodes >= max_states then (
        truncated := true;
        None)
      else begin
        let id = !n_nodes in
        ids := CMap.add config id !ids;
        nodes := config :: !nodes;
        incr n_nodes;
        Queue.add (config, id) queue;
        Some id
      end
  in
  while not (Queue.is_empty queue) do
    let config, id = Queue.pop queue in
    let succ_list, n_canon, n_pruned =
      successors ~substrate ~reduce ~machine ~specs config
    in
    canonized := !canonized + n_canon;
    if n_pruned > 0 then begin
      incr ample_nodes;
      ample_pruned := !ample_pruned + n_pruned
    end;
    let out =
      List.concat_map
        (fun (pid, branches) ->
          List.filter_map
            (fun (config', event) ->
              match id_of config' with
              | Some target -> Some { pid; event; target }
              | None -> None)
            branches)
        succ_list
    in
    Hashtbl.replace edges id out
  done;
  let nodes = Array.of_list (List.rev !nodes) in
  let n = Array.length nodes in
  let offsets = Array.make (n + 1) 0 in
  let flat = Dyn.create () in
  for id = 0 to n - 1 do
    offsets.(id) <- flat.Dyn.len;
    List.iter (Dyn.push flat)
      (Option.value (Hashtbl.find_opt edges id) ~default:[])
  done;
  offsets.(n) <- flat.Dyn.len;
  let wall_s = Unix.gettimeofday () -. t0 in
  let stats =
    {
      states = n;
      edges = flat.Dyn.len;
      levels = 0;
      frontier_sizes = [||];
      peak_frontier = 0;
      dedup_hits = !dedup_hits;
      dedup_rate =
        (if !n_succs = 0 then 0. else float !dedup_hits /. float !n_succs);
      probe = { Ctbl.probes = 0; hash_skips = 0; equal_confirms = 0 };
      shards = 1;
      shard_stats = [||];
      steals = 0;
      spill = no_spill_stats;
      wall_s;
      states_per_sec = (if wall_s > 0. then float n /. wall_s else float n);
      domains = 1;
      truncated = !truncated;
      reduction =
        {
          rmode = reduce.rname;
          group_order = Canon.order reduce.canon;
          canonized = !canonized;
          ample_nodes = !ample_nodes;
          ample_pruned = !ample_pruned;
        };
    }
  in
  let edges = Dyn.to_array flat in
  {
    nodes;
    n_base = 0;
    edges;
    e_base = 0;
    targets =
      Array.map (fun e -> pack_step ~pid:e.pid ~target:e.target) edges;
    offsets;
    segs = None;
    initial = 0;
    truncated = !truncated;
    stop = (if !truncated then Supervisor.Truncated else Supervisor.Done);
    suspended = None;
    stats;
  }

(* --- accessors ---------------------------------------------------------- *)

let n_nodes t = t.n_base + Array.length t.nodes
let n_edges t = Array.length t.targets
let stats t = t.stats

let node t id =
  if id >= t.n_base then t.nodes.(id - t.n_base)
  else Segstore.node (Option.get t.segs) id

(* Full edge records for index [i], faulting a segment in for the cold
   prefix.  Topology-only readers should use {!iter_out_steps} /
   {!exists_out_step}, which never fault. *)
let edge_at t i =
  if i >= t.e_base then t.edges.(i - t.e_base)
  else
    let pid, event, target = Segstore.step (Option.get t.segs) i in
    { pid; event; target }

let iter_out_edges t id f =
  for i = t.offsets.(id) to t.offsets.(id + 1) - 1 do
    f (edge_at t i)
  done

let fold_out_edges t id f acc =
  let acc = ref acc in
  for i = t.offsets.(id) to t.offsets.(id + 1) - 1 do
    acc := f !acc (edge_at t i)
  done;
  !acc

let exists_out_edge t id p =
  let rec go i = i < t.offsets.(id + 1) && (p (edge_at t i) || go (i + 1)) in
  go t.offsets.(id)

let out_degree t id = t.offsets.(id + 1) - t.offsets.(id)

let out_edges t id =
  List.init (out_degree t id) (fun i -> edge_at t (t.offsets.(id) + i))

(* Packed-topology readers: pid and target straight out of the resident
   [targets] array — no segment faults, no allocation. *)
let iter_out_steps t id f =
  for i = t.offsets.(id) to t.offsets.(id + 1) - 1 do
    let v = t.targets.(i) in
    f (v land ((1 lsl pid_bits) - 1)) (v lsr pid_bits)
  done

let exists_out_step t id p =
  let rec go i =
    i < t.offsets.(id + 1)
    &&
    let v = t.targets.(i) in
    p (v land ((1 lsl pid_bits) - 1)) (v lsr pid_bits) || go (i + 1)
  in
  go t.offsets.(id)

let iter_nodes f t =
  for id = 0 to n_nodes t - 1 do
    f id (node t id)
  done

let find_map_node t f =
  let n = n_nodes t in
  let rec go id =
    if id >= n then None
    else match f id (node t id) with Some _ as r -> r | None -> go (id + 1)
  in
  go 0

let find_id t p =
  let n = n_nodes t in
  let rec go id = if id >= n then None else if p id then Some id else go (id + 1) in
  go 0

let find_node t p =
  find_map_node t (fun id config -> if p id config then Some id else None)

let require_complete t = if t.truncated then raise Truncated

(* Shortest path (in steps) from the initial node to [target], as the
   list of edges taken: the schedule that reproduces a violating
   configuration, replayable with Scheduler.fixed. *)
let shortest_path t ~target =
  if target = t.initial then Some []
  else begin
    let n = n_nodes t in
    (* Parent search runs over the packed targets array (no segment
       faults); only the edges actually on the returned path are
       materialized, faulting at most one segment per path step. *)
    let parent = Array.make n (-1) in  (* edge index into the parent *)
    let parent_node = Array.make n (-1) in
    let queue = Queue.create () in
    Queue.add t.initial queue;
    let seen = Array.make n false in
    seen.(t.initial) <- true;
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      let hi = t.offsets.(u + 1) - 1 in
      let i = ref t.offsets.(u) in
      while (not !found) && !i <= hi do
        let v = t.targets.(!i) lsr pid_bits in
        if not seen.(v) then begin
          seen.(v) <- true;
          parent.(v) <- !i;
          parent_node.(v) <- u;
          if v = target then found := true else Queue.add v queue
        end;
        incr i
      done
    done;
    if not !found then None
    else begin
      let rec walk node acc =
        if parent.(node) < 0 then acc
        else walk parent_node.(node) (edge_at t parent.(node) :: acc)
      in
      Some (walk target [])
    end
  end

let schedule_of_path edges = List.map (fun e -> e.pid) edges

(* Strongly connected components (iterative Tarjan), used for the
   valence, wait-freedom and livelock analyses.  Returns the component
   id of each node and the component count; ids are assigned in
   topological order of the condensation (sources first).  One DFS over
   the flat CSR edge array with preallocated int-array stacks — no
   reverse-graph build, no per-node allocation. *)
let scc t =
  let n = n_nodes t in
  (* The packed targets array is the flattened form the DFS wants —
     resident even for out-of-core graphs, so the whole pass runs with
     zero segment faults (and RAM builds skip the flatten copy an
     earlier revision needed). *)
  let targets = t.targets in
  let target i = targets.(i) lsr pid_bits in
  let index = Array.make n (-1) in  (* discovery order; -1 = unvisited *)
  let lowlink = Array.make n 0 in
  (* A node is on Tarjan's component stack iff it has been discovered
     and not yet assigned a component, so no separate on-stack flag. *)
  let comp = Array.make n (-1) in
  let next_index = ref 0 in
  let next_comp = ref 0 in
  (* Tarjan's component stack plus an explicit DFS stack. *)
  let comp_stack = Array.make (max n 1) 0 in
  let comp_sp = ref 0 in
  let stack_node = Array.make (max n 1) 0 in
  let stack_edge = Array.make (max n 1) 0 in
  let push v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    comp_stack.(!comp_sp) <- v;
    incr comp_sp
  in
  for start = 0 to n - 1 do
    if index.(start) = -1 then begin
      let sp = ref 0 in
      stack_node.(0) <- start;
      stack_edge.(0) <- t.offsets.(start);
      push start;
      while !sp >= 0 do
        let u = stack_node.(!sp) in
        let ei = stack_edge.(!sp) in
        if ei >= t.offsets.(u + 1) then begin
          (* u finished: emit its component if it is a root, then fold
             its lowlink into its DFS parent. *)
          if lowlink.(u) = index.(u) then begin
            let c = !next_comp in
            incr next_comp;
            let rec pop () =
              decr comp_sp;
              let v = comp_stack.(!comp_sp) in
              comp.(v) <- c;
              if v <> u then pop ()
            in
            pop ()
          end;
          decr sp;
          if !sp >= 0 then begin
            let p = stack_node.(!sp) in
            if lowlink.(u) < lowlink.(p) then lowlink.(p) <- lowlink.(u)
          end
        end
        else begin
          stack_edge.(!sp) <- ei + 1;
          let v = target ei in
          if index.(v) = -1 then begin
            push v;
            incr sp;
            stack_node.(!sp) <- v;
            stack_edge.(!sp) <- t.offsets.(v)
          end
          else if comp.(v) = -1 && index.(v) < lowlink.(u) then
            lowlink.(u) <- index.(v)
        end
      done
    end
  done;
  (* Tarjan emits components sinks-first; flip the numbering so ids are
     in topological order of the condensation, sources first. *)
  let nc = !next_comp in
  for u = 0 to n - 1 do
    comp.(u) <- nc - 1 - comp.(u)
  done;
  (comp, nc)
