(** The reachable configuration graph of a protocol: all configurations
    reachable from the initial one under every scheduler choice and every
    nondeterministic object response — the object the paper's proofs
    quantify over, built explicitly for small instances.

    The explorer is a level-synchronous parallel BFS (OCaml domains) with
    an open-addressing dedup table over the full element-wise
    [Config.hash], producing the same graph — identical node ids, edge
    order and truncation point — for any domain count. *)

open Lbsa_runtime

type edge = { pid : int; event : Config.event; target : int }

(** An opt-in reduction of the explored graph (see DESIGN.md,
    "State-space reduction", for the soundness argument):

    - [canon]: quotient states by a process-symmetry group — every
      successor is replaced by its [Canon.canonical] orbit
      representative before dedup, so the explorer visits one
      configuration per orbit;
    - [sleep]: commit-step (ample-set) pruning — poised decide/abort
      steps, which are invisible to every other process, are flushed
      directly into each successor ([Canon.flush_commits]), so
      pre-decide interleavings never become distinct nodes; and when a
      configuration has a running process poised on an operation on an
      object [frozen] certifies permanently inert, only that process is
      expanded.

    [rname] is the user-facing mode name ("none" / "sym" /
    "sym+sleep"); it is recorded in stats and checkpoints, and a
    resumed build must use the same mode.  Node ids and failure
    messages may differ across modes; solvability and valence verdicts
    do not. *)
type reduction = {
  rname : string;
  canon : Canon.t;
  sleep : bool;
  frozen : (int -> Lbsa_spec.Value.t -> bool) option;
}

val no_reduction : reduction
(** ["none"]: identity group, no pruning — the exact seed graph. *)

(** Reduction telemetry, part of {!stats}. *)
type reduction_stats = {
  rmode : string;
  group_order : int;
  canonized : int;
      (** successors replaced by a smaller orbit representative *)
  ample_nodes : int;
      (** expanded nodes where commit-step pruning fired — the ample
          rule restricted expansion to one process, or a successor had
          poised decide/aborts flushed into it *)
  ample_pruned : int;
      (** steps short-circuited at those nodes: sibling expansions
          suppressed by the ample rule plus decide/aborts flushed into
          successors *)
}

val no_reduction_stats : reduction_stats

(** Out-of-core spilling, opt-in per build: once more than
    [spill_threshold] expanded (cold) states are resident, the oldest
    ones — configurations and their CSR edge slice — move to disk
    segments under [spill_dir] (see {!Segstore}), and the dedup entries
    covering them are frozen to (hash, id) pairs that fault the
    configuration back only when a probe's full hash matches.  Spilling
    happens only at level boundaries: it never races expansion workers,
    never touches the live frontier, and leaves the produced graph
    bit-identical to an unspilled build's. *)
type spill = { spill_dir : string; spill_threshold : int }

(** Out-of-core telemetry, part of {!stats}; all zeros without [spill]. *)
type spill_stats = {
  sp_segments : int;  (** segments written *)
  sp_bytes : int;  (** bytes across live segment files *)
  sp_seg_faults : int;  (** segment loads back from disk *)
  sp_frozen : int;  (** dedup entries whose key lives on disk *)
  sp_key_faults : int;
      (** frozen dedup slots resolved through a segment — genuine
          re-encounters of cold states plus full-hash collisions *)
}

val no_spill_stats : spill_stats

(** Exploration statistics, collected by every [build]. *)
type stats = {
  states : int;
  edges : int;
  levels : int;  (** BFS depth: number of frontiers expanded *)
  frontier_sizes : int array;  (** one entry per level *)
  peak_frontier : int;
  dedup_hits : int;  (** generated successors that were already known *)
  dedup_rate : float;  (** [dedup_hits] / successors generated *)
  probe : Ctbl.probe_stats;
      (** dedup-table probe traffic — how many structural equality
          checks the stored hashes avoided; all zeros for [build_cmap],
          whose map baseline has no probe counters *)
  shards : int;  (** dedup shard count the build ran with *)
  shard_stats : Ctbl_sharded.shard_stat array;
      (** per-shard occupancy and probe traffic; empty for [build_cmap] *)
  steals : int;
      (** frontier spans stolen between domains — timing-dependent
          telemetry; the produced graph never depends on it *)
  spill : spill_stats;
  wall_s : float;
  states_per_sec : float;
  domains : int;
  truncated : bool;
  reduction : reduction_stats;
}

(** A partial exploration frozen at a level boundary: the node prefix
    [0, s_expanded) has final out-edges, everything after it is the
    unexpanded frontier.  Completed levels are identical for any domain
    count, so a suspended prefix — and a build resumed from it — is
    too.  Serialize with {!Checkpoint} (values are re-interned on
    load). *)
type suspended = private {
  s_nodes : Config.t array;  (** every discovered configuration, id order *)
  s_expanded : int;
  s_edges : edge array;
  s_offsets : int array;  (** length [s_expanded] *)
  s_dedup_hits : int;
  s_n_succs : int;
  s_frontier_sizes : int array;  (** completed levels only *)
  s_reduction : string;
      (** reduction mode name; [build ~resume] rejects a mismatch *)
  s_substrate : string;
      (** substrate name; [build ~resume] rejects a mismatch *)
  s_canonized : int;
  s_ample_nodes : int;
  s_ample_pruned : int;
}

type t = private {
  nodes : Config.t array;
      (** the resident suffix, ids [n_base, n_base + length); the whole
          graph when the build did not spill ([n_base = 0]) *)
  n_base : int;
  edges : edge array;  (** resident suffix of the flat CSR edge array *)
  e_base : int;
  targets : int array;
      (** every edge, packed [(target lsl 8) lor pid] — always resident,
          so pure-topology passes (SCC, valence sweep, cycle searches)
          run with zero segment faults on an out-of-core graph *)
  offsets : int array;
      (** length [nodes + 1]; node [id]'s out-edges are the slice
          [offsets.(id) .. offsets.(id+1) - 1] of the edge array; empty
          slices for unexpanded frontier nodes of a partial build *)
  segs : Segstore.t option;  (** the cold prefix, when the build spilled *)
  initial : int;
  truncated : bool;
      (** true whenever [stop <> Done]; results are then partial *)
  stop : Supervisor.outcome;
      (** how the exploration ended: [Done], [Truncated] (max_states),
          [Deadline], [Cancelled], or [Worker_failed] *)
  suspended : suspended option;
      (** the frozen exploration state, when the build stopped with a
          live frontier (quota / deadline / cancellation / worker
          failure) — feed back via [build ~resume] to continue *)
  stats : stats;
}

exception Truncated

val default_max_states : int
(** 1_000_000. *)

val default_spill_threshold : int
(** 500_000 resident expanded states. *)

val build :
  ?max_states:int ->
  ?domains:int ->
  ?budget:Supervisor.Budget.t ->
  ?substrate:Substrate.t ->
  ?reduce:reduction ->
  ?resume:suspended ->
  ?shards:int ->
  ?spill:spill ->
  machine:Machine.t ->
  specs:Lbsa_spec.Obj_spec.t array ->
  inputs:Lbsa_spec.Value.t array ->
  unit ->
  t
(** Breadth-first construction (default bound: [default_max_states]).
    [substrate] (default {!Substrate.shm}) supplies the step relation
    the exploration quantifies over; its name is recorded in suspended
    explorations, and [build ~resume] refuses a substrate mismatch just
    like a reduction-mode mismatch.
    [domains] defaults to [Domain.recommended_domain_count ()] capped at
    8; the produced graph does not depend on it.  [budget] and the
    [max_states] quota are polled at each level boundary; when either
    fires the build returns a partial graph with [stop] set and
    [suspended] holding the frozen frontier (a level's successors are
    registered in full, so a quota-stopped graph may hold slightly more
    than [max_states] nodes — never a node with a partial edge list).
    Worker
    exceptions are isolated and retried per chunk
    ({!Supervisor.run_shard}); an exhausted chunk abandons its whole
    level, keeping the surviving prefix deterministic.  [reduce]
    (default {!no_reduction}) quotients and prunes the exploration; the
    reduced graph is still domain-count-deterministic and identical to
    the [build_cmap] oracle's under the same [reduce].  [resume]
    continues a suspended exploration (its recorded reduction mode must
    match [reduce], else [Invalid_argument]); resuming an interrupted
    build yields the graph the uninterrupted build would have
    produced.

    [shards] (default 1; a power of two up to 4096) shards the dedup
    table by the high bits of [Config.hash] — growth and freezing are
    then per-shard, and the produced graph (ids, edges, truncation) is
    identical for every shard count.  [spill] bounds resident state:
    cold expanded nodes move to disk segments and their dedup keys are
    frozen, again without changing the produced graph — only the
    telemetry in {!stats} and the laziness of node access differ.  A
    spilled graph's [suspended] (interrupt path) is materialized fully
    in RAM when taken. *)

val suspended_of_parts :
  nodes:Config.t array ->
  expanded:int ->
  edges:edge array ->
  offsets:int array ->
  dedup_hits:int ->
  n_succs:int ->
  frontier_sizes:int array ->
  reduction:string ->
  substrate:string ->
  canonized:int ->
  ample_nodes:int ->
  ample_pruned:int ->
  suspended
(** For {!Checkpoint} thawing only: reassemble a suspended exploration
    from its parts (basic shape checks, no deep validation — resuming
    from a corrupted checkpoint is on the caller). *)

val build_cmap :
  ?max_states:int ->
  ?substrate:Substrate.t ->
  ?reduce:reduction ->
  machine:Machine.t ->
  specs:Lbsa_spec.Obj_spec.t array ->
  inputs:Lbsa_spec.Value.t array ->
  unit ->
  t
(** The seed explorer: sequential BFS deduping through a
    [Map.Make(Config)].  Kept as differential-testing oracle and
    benchmark baseline; produces a graph identical to {!build} —
    including under a nontrivial [reduce], which goes through the same
    shared reduction step. *)

val n_nodes : t -> int
val n_edges : t -> int
val node : t -> int -> Config.t
val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit

val out_edges : t -> int -> edge list
(** Allocates a fresh list; prefer {!iter_out_edges}/{!fold_out_edges}
    on hot paths. *)

val out_degree : t -> int -> int

val edge_at : t -> int -> edge
(** The full edge record at a flat CSR index (node [id] owns indices
    [offsets.(id) .. offsets.(id+1) - 1]), faulting a segment in for
    the cold prefix of an out-of-core graph. *)

val iter_out_edges : t -> int -> (edge -> unit) -> unit
val fold_out_edges : t -> int -> ('a -> edge -> 'a) -> 'a -> 'a
val exists_out_edge : t -> int -> (edge -> bool) -> bool

val iter_out_steps : t -> int -> (int -> int -> unit) -> unit
(** [iter_out_steps t id f] calls [f pid target] for each out-edge of
    [id], straight from the packed targets array — no event
    materialization, no allocation, and no segment faults on an
    out-of-core graph.  Prefer this (and {!exists_out_step}) for
    topology-only passes. *)

val exists_out_step : t -> int -> (int -> int -> bool) -> bool

val iter_nodes : (int -> Config.t -> unit) -> t -> unit

val find_id : t -> (int -> bool) -> int option
(** Lowest node id satisfying an id-only predicate; never touches
    configurations, so it cannot fault segments. *)

val find_node : t -> (int -> Config.t -> bool) -> int option
(** Lowest node id satisfying the predicate, stopping at the first hit —
    node ids are BFS order, so this is also the shallowest such
    configuration. *)

val find_map_node : t -> (int -> Config.t -> 'a option) -> 'a option
(** First [Some] produced by [f] in node-id order, stopping there. *)

val require_complete : t -> unit
(** Raises {!Truncated} if the graph was cut off at [max_states]. *)

val shortest_path : t -> target:int -> edge list option
(** Shortest edge path from the initial node to [target] — the schedule
    reproducing that configuration.  [None] only if [target] is not in
    the graph (cannot happen for ids produced by this graph). *)

val schedule_of_path : edge list -> int list
(** The process ids along a path, replayable with [Scheduler.fixed].
    Nondeterministic object branches along the path must be replayed
    with a matching adversary. *)

val scc : t -> int array * int
(** Strongly connected components (Tarjan): per-node component id and
    component count, ids in topological order of the condensation. *)
