open Lbsa_runtime

(* Fairness-aware liveness checking: fair-cycle (lasso) detection over
   the reachable configuration graph, layered on the same iterative
   Tarjan SCC pass the valence analysis uses.

   A livelock is an infinite admissible execution in which some process
   runs forever without halting.  On a finite complete graph every
   infinite execution eventually stays inside one SCC, so livelock
   detection reduces to finding a *fair* SCC — one that supports an
   infinite schedule satisfying the substrate's fairness constraints —
   and a witness is a lasso: a finite prefix from the initial
   configuration to the component plus a cycle inside it.

   Statuses are absorbing (a halted process never runs again), so all
   configurations of an SCC share one status vector; "the running
   processes of a component" is well defined.

   The *no mandatory exits* constraint comes first: a configuration
   enabling a mandatory action ({!Substrate.mandatory_exit}) of a
   running process — a poised decide/abort commit, and for the
   message-passing substrate any send or guarded delivery that changes
   the (monotone-counter) network state — cannot appear on a fair
   cycle at all: the substrate's strong-fairness constraint says an
   action enabled infinitely often is eventually taken, and every
   mandatory action provably leaves its component.  So such
   configurations are masked out and SCCs are computed on the
   *restricted* subgraph.  (Masking before the SCC pass, rather than
   testing whole components of the full graph, matters: a fair cycle
   may wind through the clean part of a component whose other nodes do
   enable mandatory actions — a whole-component test would miss it and
   answer Live unsoundly.)

   A component [C] of the restricted subgraph is a fair cycle iff:

   1. it can be dwelt in at all: |C| > 1, or its single node has a
      self-loop;
   2. some process is still running (an all-halted terminal component
      is quiescence, not livelock);
   3. *process fairness*: every running process has at least one edge
      internal to [C].  A fair schedule must run every non-crashed
      process infinitely often; since [C] is strongly connected, any
      set of internal edges (one per running process) can be stitched
      into a single cycle, and conversely a process with no internal
      edge anywhere in [C] cannot take a step without leaving it.

   This is exactly the existence of a closed walk that avoids
   mandatory-enabling configurations and schedules every running
   process — the walk-level property [validate] checks witness-by-
   witness and the brute-force product-space oracle in the test
   battery decides independently.

   The criterion is exact for the unreduced graph of a complete
   exploration.  On the message-passing examples the reduction layers
   are identity (no certified symmetry group, no frozen objects), so
   verdicts agree across --reduce modes by construction; a truncated
   graph yields a partial verdict upstream. *)

type witness = {
  w_head : int;  (* node id the lasso loops through *)
  w_prefix : Graph.edge list;  (* initial -> head *)
  w_cycle : Graph.edge list;  (* head -> ... -> head, nonempty *)
}

type verdict = Live | Livelock of witness

type report = {
  verdict : verdict;
  sccs : int;  (* total SCC count *)
  cyclic_sccs : int;  (* components satisfying condition 1 *)
  fair_sccs : int;  (* components satisfying all four conditions *)
  wall_s : float;
}

let prefix_trace w = Trace.of_events (List.map (fun e -> e.Graph.event) w.w_prefix)
let cycle_trace w = Trace.of_events (List.map (fun e -> e.Graph.event) w.w_cycle)

let witness_pids w =
  List.sort_uniq Stdlib.compare (List.map (fun e -> e.Graph.pid) w.w_cycle)

(* Deterministic BFS over edge indices from [src] until [accept u edge]
   takes an edge, restricted to nodes with [ok node]; returns the edge
   path ending with the accepted edge.  Edge order is CSR order, so the
   result depends only on the graph. *)
let bfs_edges graph ~ok ~src ~accept =
  let n = Graph.n_nodes graph in
  let parent = Array.make n (-1) in
  let parent_node = Array.make n (-1) in
  let seen = Array.make n false in
  seen.(src) <- true;
  let queue = Queue.create () in
  Queue.add src queue;
  let result = ref None in
  let path_to u =
    let rec walk v acc =
      if v = src then acc
      else walk parent_node.(v) (Graph.edge_at graph parent.(v) :: acc)
    in
    walk u []
  in
  while !result = None && not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    let lo = graph.Graph.offsets.(u) and hi = graph.Graph.offsets.(u + 1) in
    let i = ref lo in
    while !result = None && !i < hi do
      let e = Graph.edge_at graph !i in
      let v = e.Graph.target in
      if accept u e then result := Some (path_to u @ [ e ])
      else if ok v && not seen.(v) then begin
        seen.(v) <- true;
        parent.(v) <- !i;
        parent_node.(v) <- u;
        Queue.add v queue
      end;
      incr i
    done
  done;
  !result

(* A cycle through [head] inside component [in_comp], scheduling every
   pid of [must_cover] at least once: greedily walk (BFS, deterministic)
   to the nearest internal edge of a still-uncovered pid until all are
   covered, then close back at [head].  The stitched walk may revisit
   nodes — the Lasso shrinker exists to cut those detours. *)
let cycle_through graph ~in_comp ~head ~must_cover =
  let uncovered = Hashtbl.create 8 in
  List.iter (fun pid -> Hashtbl.replace uncovered pid ()) must_cover;
  let cover e =
    List.iter (fun pid -> Hashtbl.remove uncovered pid)
      [ e.Graph.pid ]
  in
  let cycle = ref [] in
  let cur = ref head in
  let guard = ref (List.length must_cover + 1) in
  while Hashtbl.length uncovered > 0 && !guard > 0 do
    decr guard;
    match
      bfs_edges graph ~ok:in_comp ~src:!cur ~accept:(fun _u e ->
          in_comp e.Graph.target && Hashtbl.mem uncovered e.Graph.pid)
    with
    | None -> guard := 0 (* cannot happen for a fair component *)
    | Some path ->
      List.iter cover path;
      cycle := !cycle @ path;
      cur := (List.nth path (List.length path - 1)).Graph.target
  done;
  if Hashtbl.length uncovered > 0 then None
  else if !cur = head && !cycle <> [] then Some !cycle
  else
    match
      bfs_edges graph ~ok:in_comp ~src:!cur ~accept:(fun _u e ->
          e.Graph.target = head)
    with
    | None -> None
    | Some path -> Some (!cycle @ path)

(* Iterative Tarjan over the subgraph of nodes satisfying [ok]; edges
   into or out of masked nodes are ignored and masked nodes keep
   component -1.  Only the partition matters, not the numbering. *)
let scc_masked graph ~ok comp =
  let n = Graph.n_nodes graph in
  let offsets = graph.Graph.offsets in
  let index = Array.make n (-1) in
  let low = Array.make n 0 in
  let on_stack = Array.make n false in
  let tstack = Stack.create () in
  let next = ref 0 in
  let nc = ref 0 in
  let visit u =
    index.(u) <- !next;
    low.(u) <- !next;
    incr next;
    Stack.push u tstack;
    on_stack.(u) <- true
  in
  for root = 0 to n - 1 do
    if ok root && index.(root) = -1 then begin
      let call = ref [ (root, ref offsets.(root)) ] in
      visit root;
      while !call <> [] do
        match !call with
        | [] -> ()
        | (u, i) :: rest ->
          if !i < offsets.(u + 1) then begin
            let v = (Graph.edge_at graph !i).Graph.target in
            incr i;
            if ok v then
              if index.(v) = -1 then begin
                visit v;
                call := (v, ref offsets.(v)) :: !call
              end
              else if on_stack.(v) then low.(u) <- min low.(u) index.(v)
          end
          else begin
            if low.(u) = index.(u) then begin
              let rec pop () =
                let w = Stack.pop tstack in
                on_stack.(w) <- false;
                comp.(w) <- !nc;
                if w <> u then pop ()
              in
              pop ();
              incr nc
            end;
            call := rest;
            match rest with
            | (p, _) :: _ -> low.(p) <- min low.(p) low.(u)
            | [] -> ()
          end
      done
    end
  done;
  !nc

let analyze ~machine ~specs ~(substrate : Substrate.t) graph =
  let t0 = Unix.gettimeofday () in
  let _, full_sccs = Graph.scc graph in
  let n = Graph.n_nodes graph in
  (* Mask out configurations enabling a mandatory action of a running
     process: none may appear on a fair cycle (see the header). *)
  let good =
    Array.init n (fun u ->
        let config = Graph.node graph u in
        not
          (List.exists
             (fun pid ->
               substrate.Substrate.mandatory_exit ~machine ~specs config pid)
             (Config.running config)))
  in
  let ok u = good.(u) in
  let comp = Array.make n (-1) in
  let nc = scc_masked graph ~ok comp in
  (* Internal-edge presence per restricted component, in one sweep. *)
  let has_internal = Array.make nc false in
  for u = 0 to n - 1 do
    if good.(u) then
      Graph.iter_out_steps graph u (fun _pid v ->
          if comp.(v) = comp.(u) then has_internal.(comp.(u)) <- true)
  done;
  (* Members per component, in node-id order (node ids are BFS order,
     so the first member is also the component's shallowest node). *)
  let members = Array.make nc [] in
  for u = n - 1 downto 0 do
    if good.(u) then members.(comp.(u)) <- u :: members.(comp.(u))
  done;
  let cyclic_sccs = ref 0 in
  let fair_sccs = ref 0 in
  let best = ref None in
  for c = 0 to nc - 1 do
    if has_internal.(c) then begin
      (* Condition 1: nontrivial, or a single node with a self-loop. *)
      incr cyclic_sccs;
      let head = List.hd members.(c) in
      let running = Config.running (Graph.node graph head) in
      if running <> [] then begin
        (* Condition 3: every running pid has an internal edge. *)
        let covered = Hashtbl.create 8 in
        List.iter
          (fun u ->
            Graph.iter_out_steps graph u (fun pid v ->
                if comp.(v) = c then Hashtbl.replace covered pid ()))
          members.(c);
        let process_fair =
          List.for_all (fun pid -> Hashtbl.mem covered pid) running
        in
        if process_fair then begin
          incr fair_sccs;
          if !best = None then begin
            let in_comp u = u >= 0 && good.(u) && comp.(u) = c in
            match cycle_through graph ~in_comp ~head ~must_cover:running with
            | None -> ()
            | Some cycle -> (
              match Graph.shortest_path graph ~target:head with
              | None -> ()
              | Some prefix ->
                best := Some { w_head = head; w_prefix = prefix; w_cycle = cycle })
          end
        end
      end
    end
  done;
  {
    verdict = (match !best with None -> Live | Some w -> Livelock w);
    sccs = full_sccs;
    cyclic_sccs = !cyclic_sccs;
    fair_sccs = !fair_sccs;
    wall_s = Unix.gettimeofday () -. t0;
  }

(* Re-check a (possibly shrunk) witness against the graph — the oracle
   side of the acceptance criterion: the walk must be well-formed in
   the graph, the cycle must close at its head, stay within one SCC,
   schedule every running process, and pass through no configuration
   with a mandatory exit. *)
let validate ~machine ~specs ~(substrate : Substrate.t) graph w =
  let walk_ok src edges =
    let ok, last =
      List.fold_left
        (fun (ok, u) e ->
          let here =
            ok
            && Graph.exists_out_step graph u (fun pid v ->
                   pid = e.Graph.pid && v = e.Graph.target)
          in
          (here, e.Graph.target))
        (true, src) edges
    in
    (ok, last)
  in
  let pok, phead = walk_ok 0 w.w_prefix in
  let cok, cend = walk_ok w.w_head w.w_cycle in
  pok && cok && phead = w.w_head && cend = w.w_head && w.w_cycle <> []
  &&
  let comp, _ = Graph.scc graph in
  let nodes_on_cycle =
    w.w_head :: List.map (fun e -> e.Graph.target) w.w_cycle
  in
  List.for_all (fun u -> comp.(u) = comp.(w.w_head)) nodes_on_cycle
  &&
  let running = Config.running (Graph.node graph w.w_head) in
  let pids = witness_pids w in
  List.for_all (fun pid -> List.mem pid pids) running
  && List.for_all
       (fun u ->
         let config = Graph.node graph u in
         not
           (List.exists
              (fun pid ->
                substrate.Substrate.mandatory_exit ~machine ~specs config pid)
              running))
       nodes_on_cycle

let pp_witness ppf w =
  Fmt.pf ppf
    "@[<v>livelock lasso (head node %d):@,prefix (%d steps):@,%a@,cycle (%d \
     steps):@,%a@]"
    w.w_head (List.length w.w_prefix) Trace.pp (prefix_trace w)
    (List.length w.w_cycle) Trace.pp (cycle_trace w)

let pp_report ppf r =
  match r.verdict with
  | Live ->
    Fmt.pf ppf
      "@[<v>live: no fair cycle (%d SCCs, %d cyclic, 0 fair) [%.3f s]@]"
      r.sccs r.cyclic_sccs r.wall_s
  | Livelock w ->
    Fmt.pf ppf "@[<v>LIVELOCK: %d fair SCC%s of %d (%d cyclic) [%.3f s]@,%a@]"
      r.fair_sccs
      (if r.fair_sccs = 1 then "" else "s")
      r.sccs r.cyclic_sccs r.wall_s pp_witness w
