(** Fairness-aware liveness checking: fair-cycle (lasso) detection over
    the reachable configuration graph, layered on the Tarjan SCC pass.

    A livelock witness is a lasso — a finite prefix from the initial
    configuration plus a cycle inside a {e fair} SCC: one that some
    infinite schedule can dwell in while running every non-crashed
    process infinitely often and never ignoring a mandatory action of
    the execution substrate (poised decide/abort commits; for the
    message-passing substrate also any send or guarded delivery that
    changes the network state — "a sent message is eventually
    delivered").  See the implementation header for the exact four-part
    criterion and its soundness argument; DESIGN.md, "Liveness
    checking", for the prose version.

    The verdict is exact for a complete exploration; callers must treat
    a truncated graph's answer as partial. *)

open Lbsa_runtime

type witness = {
  w_head : int;  (** node id the lasso loops through *)
  w_prefix : Graph.edge list;  (** initial node -> head *)
  w_cycle : Graph.edge list;  (** head -> ... -> head, nonempty *)
}

type verdict = Live | Livelock of witness

type report = {
  verdict : verdict;
  sccs : int;  (** SCC count of the full graph *)
  cyclic_sccs : int;
      (** dwellable SCCs of the subgraph that masks out every
          configuration enabling a mandatory action *)
  fair_sccs : int;  (** of those, SCCs passing the full fairness criterion *)
  wall_s : float;
}

val analyze :
  machine:Machine.t ->
  specs:Lbsa_spec.Obj_spec.t array ->
  substrate:Substrate.t ->
  Graph.t ->
  report
(** Scan every SCC for fairness and extract a lasso witness from the
    first fair one (smallest head node id — deterministic for a given
    graph).  The stitched cycle may revisit nodes; shrink it with
    [Lasso] (lib/fuzz). *)

val validate :
  machine:Machine.t ->
  specs:Lbsa_spec.Obj_spec.t array ->
  substrate:Substrate.t ->
  Graph.t ->
  witness ->
  bool
(** Oracle re-check of a (possibly shrunk) witness: both walks exist in
    the graph, the cycle closes at its head, stays within one SCC,
    schedules every running process, and passes through no
    configuration enabling a mandatory action. *)

val prefix_trace : witness -> Trace.t
val cycle_trace : witness -> Trace.t
(** The witness rendered as execution traces ({!Trace.pp}). *)

val witness_pids : witness -> int list
(** Sorted distinct pids scheduled on the cycle. *)

val pp_witness : Format.formatter -> witness -> unit
val pp_report : Format.formatter -> report -> unit
