open Lbsa_spec
open Lbsa_runtime

(* Structural freeze/thaw.  See the .mli for why persistence must not
   marshal [Config.t] directly: intern ids and pointer identity must
   not cross a process boundary, so freezing strips them and thawing
   re-interns through the smart constructors. *)

type pvalue =
  | PUnit
  | PBool of bool
  | PInt of int
  | PSym of string
  | PBot
  | PNil
  | PDone
  | PPair of pvalue * pvalue
  | PList of pvalue list

type pstatus = PRunning | PDecided of pvalue | PAborted | PCrashed

type pconfig = {
  plocals : pvalue array;
  pobjects : pvalue array;
  pstatus : pstatus array;
}

type pevent =
  | POp of {
      epid : int;
      eobj : int;
      ename : string;
      eargs : pvalue list;
      eresponse : pvalue;
    }
  | PDecide of { epid : int; evalue : pvalue }
  | PAbort of { epid : int }

type pedge = { ppid : int; pev : pevent; ptarget : int }

(* --- freeze ------------------------------------------------------------- *)

let rec freeze_value (v : Value.t) : pvalue =
  match Value.node v with
  | Value.Unit -> PUnit
  | Value.Bool b -> PBool b
  | Value.Int i -> PInt i
  | Value.Sym s -> PSym s
  | Value.Bot -> PBot
  | Value.Nil -> PNil
  | Value.Done -> PDone
  | Value.Pair (a, b) -> PPair (freeze_value a, freeze_value b)
  | Value.List vs -> PList (List.map freeze_value vs)

let freeze_status = function
  | Config.Running -> PRunning
  | Config.Decided v -> PDecided (freeze_value v)
  | Config.Aborted -> PAborted
  | Config.Crashed -> PCrashed

let freeze_config (c : Config.t) =
  {
    plocals = Array.map freeze_value c.Config.locals;
    pobjects = Array.map freeze_value c.Config.objects;
    pstatus = Array.map freeze_status c.Config.status;
  }

let freeze_event = function
  | Config.Op_event { pid; obj; op; response } ->
    POp
      {
        epid = pid;
        eobj = obj;
        ename = op.Op.name;
        eargs = List.map freeze_value op.Op.args;
        eresponse = freeze_value response;
      }
  | Config.Decide_event { pid; value } ->
    PDecide { epid = pid; evalue = freeze_value value }
  | Config.Abort_event { pid } -> PAbort { epid = pid }

let freeze_step ~pid ~event ~target =
  { ppid = pid; pev = freeze_event event; ptarget = target }

(* --- thaw --------------------------------------------------------------- *)

let rec thaw_value = function
  | PUnit -> Value.unit_
  | PBool b -> Value.bool b
  | PInt i -> Value.int i
  | PSym s -> Value.sym s
  | PBot -> Value.bot
  | PNil -> Value.nil
  | PDone -> Value.done_
  | PPair (a, b) -> Value.pair (thaw_value a, thaw_value b)
  | PList vs -> Value.list (List.map thaw_value vs)

let thaw_status = function
  | PRunning -> Config.Running
  | PDecided v -> Config.Decided (thaw_value v)
  | PAborted -> Config.Aborted
  | PCrashed -> Config.Crashed

let thaw_config c : Config.t =
  {
    Config.locals = Array.map thaw_value c.plocals;
    objects = Array.map thaw_value c.pobjects;
    status = Array.map thaw_status c.pstatus;
  }

let thaw_event = function
  | POp { epid; eobj; ename; eargs; eresponse } ->
    Config.Op_event
      {
        pid = epid;
        obj = eobj;
        op = Op.make ename (List.map thaw_value eargs);
        response = thaw_value eresponse;
      }
  | PDecide { epid; evalue } ->
    Config.Decide_event { pid = epid; value = thaw_value evalue }
  | PAbort { epid } -> Config.Abort_event { pid = epid }

let thaw_step e = (e.ppid, thaw_event e.pev, e.ptarget)
