(** The structural mirror of configurations and steps: a purely
    structural ADT with no intern ids and no sharing, safe to [Marshal]
    across process boundaries.

    The hash-consed value core makes direct marshalling of [Config.t]
    unsound twice over: intern ids are allocation-order-dependent, and
    pointer identity (which [Value.equal] relies on) does not survive
    [Marshal].  Everything that persists configurations — checkpoints,
    spilled out-of-core segments — therefore freezes them into this
    mirror and re-interns through the [Value] smart constructors on
    thaw, so the loaded values are physically canonical in the loading
    process whatever that process interned first.  (The id-never-orders
    invariant of the value core is exactly what makes the detour safe:
    nothing in a graph depends on the ids a run happened to assign.)

    This module knows nothing about [Graph]; edges are mirrored as bare
    [(pid, event, target)] triples so both {!Checkpoint} and
    {!Segstore} can share it without a dependency cycle. *)

open Lbsa_runtime

type pvalue =
  | PUnit
  | PBool of bool
  | PInt of int
  | PSym of string
  | PBot
  | PNil
  | PDone
  | PPair of pvalue * pvalue
  | PList of pvalue list

type pstatus = PRunning | PDecided of pvalue | PAborted | PCrashed

type pconfig = {
  plocals : pvalue array;
  pobjects : pvalue array;
  pstatus : pstatus array;
}

type pevent =
  | POp of {
      epid : int;
      eobj : int;
      ename : string;
      eargs : pvalue list;
      eresponse : pvalue;
    }
  | PDecide of { epid : int; evalue : pvalue }
  | PAbort of { epid : int }

type pedge = { ppid : int; pev : pevent; ptarget : int }

val freeze_value : Lbsa_spec.Value.t -> pvalue
val thaw_value : pvalue -> Lbsa_spec.Value.t

val freeze_config : Config.t -> pconfig
val thaw_config : pconfig -> Config.t

val freeze_event : Config.event -> pevent
val thaw_event : pevent -> Config.event

val freeze_step : pid:int -> event:Config.event -> target:int -> pedge
val thaw_step : pedge -> int * Config.event * int
