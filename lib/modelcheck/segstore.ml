open Lbsa_runtime

(* Disk-spilled CSR segments.  See the .mli for the format and the
   re-interning contract; the short version is that segments hold
   Mirror forms, never Config.t, and every fault-in goes back through
   the Value smart constructors. *)

(* --- framed section IO --------------------------------------------------- *)

module Segio = struct
  let tag_len = 8

  let put_be buf n =
    for i = 7 downto 0 do
      Buffer.add_char buf (Char.chr ((n lsr (i * 8)) land 0xff))
    done

  let get_be s off =
    let n = ref 0 in
    for i = 0 to 7 do
      n := (!n lsl 8) lor Char.code s.[off + i]
    done;
    !n

  (* Sink-based writer so sections can stream through an [out_channel]
     or a {!Lbsa_util.Rio} atomic-commit writer alike. *)
  let write_section_sink sink ~tag payload =
    if String.length tag > tag_len then invalid_arg "Segio.write_section: tag";
    sink tag;
    sink (String.make (tag_len - String.length tag) ' ');
    let hdr = Buffer.create 16 in
    put_be hdr (String.length payload);
    put_be hdr (Lbsa_util.Fnv.string payload);
    sink (Buffer.contents hdr);
    sink payload

  let write_section oc ~tag payload =
    write_section_sink (output_string oc) ~tag payload

  let read_section ic =
    match really_input_string ic tag_len with
    | exception End_of_file -> None
    | tag -> (
      let hdr =
        try really_input_string ic 16
        with End_of_file -> failwith "Segio.read_section: truncated header"
      in
      let len = get_be hdr 0 in
      let sum = get_be hdr 8 in
      if len < 0 then failwith "Segio.read_section: negative length";
      (* a corrupt length field must fail as a framing defect, not as an
         attempt to allocate a flipped-bit-sized string: no section can
         be longer than what is left of the file *)
      if len > in_channel_length ic - pos_in ic then
        failwith "Segio.read_section: length field exceeds file size";
      match really_input_string ic len with
      | exception End_of_file -> failwith "Segio.read_section: truncated payload"
      | payload ->
        if Lbsa_util.Fnv.string payload <> sum then
          failwith "Segio.read_section: checksum mismatch";
        Some (String.trim tag, payload))
end

(* --- the store ----------------------------------------------------------- *)

let magic = "LBSA-SEG/1\n"

exception Corrupt of string
(* A spilled segment that fails validation on fault-in (bad magic,
   framing, checksum, or undecodable payload), or keeps failing with
   I/O errors after a retry.  Segments are a cache of data this run
   already computed and dropped from RAM, so there is nothing to
   recompute from — the typed refusal propagates to the supervisor /
   CLI boundary (a clean partial exit), never an unmarshal crash. *)

type seg = { lo : int; hi : int; elo : int; ehi : int; file : string }

type loaded = {
  l_seg : int; (* index into segs *)
  l_configs : Config.t array;
  l_steps : (int * Config.event * int) array;
}

let cache_slots = 4

type t = {
  sdir : string;
  mutable segs : seg array; (* sorted by lo; contiguous *)
  mutable bytes : int;
  mutable n_faults : int;
  mutable n_corrupt : int;
  cache : loaded option array;
  mutable clock : int; (* next cache slot to evict *)
}

let dir t = t.sdir
let n_segments t = Array.length t.segs
let spilled_bytes t = t.bytes
let faults t = t.n_faults
let corrupt_count t = t.n_corrupt

let spilled_upto t =
  let n = Array.length t.segs in
  if n = 0 then 0 else t.segs.(n - 1).hi

let is_seg_file name =
  String.length name > 4
  && String.sub name 0 4 = "seg-"
  && Filename.check_suffix name ".seg"

let create ~dir =
  (if Sys.file_exists dir then begin
     if not (Sys.is_directory dir) then
       failwith (Fmt.str "Segstore.create: %s is not a directory" dir);
     (* Stale segments (from an interrupted run, or an unrelated one)
        are never trusted: a resumed build re-spills from scratch. *)
     Array.iter
       (fun name ->
         if is_seg_file name then
           try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
       (Sys.readdir dir)
   end
   else
     try Unix.mkdir dir 0o755
     with Unix.Unix_error (e, _, _) ->
       failwith
         (Fmt.str "Segstore.create: cannot create %s: %s" dir
            (Unix.error_message e)));
  {
    sdir = dir;
    segs = [||];
    bytes = 0;
    n_faults = 0;
    n_corrupt = 0;
    cache = Array.make cache_slots None;
    clock = 0;
  }

let write_segment t ~lo ~hi ~elo ~ehi ~configs ~edges =
  if lo <> spilled_upto t then invalid_arg "Segstore.write_segment: gap";
  if hi - lo <> Array.length configs || ehi - elo <> Array.length edges then
    invalid_arg "Segstore.write_segment: range/payload mismatch";
  let file = Filename.concat t.sdir (Printf.sprintf "seg-%012d.seg" lo) in
  Lbsa_util.Rio.with_atomic_file ~site:"segstore.write" ~path:file (fun w ->
      let sink = Lbsa_util.Rio.write_string w in
      sink magic;
      Segio.write_section_sink sink ~tag:"SEGMETA"
        (Marshal.to_string (lo, hi, elo, ehi) []);
      Segio.write_section_sink sink ~tag:"SEGNODES"
        (Marshal.to_string configs []);
      Segio.write_section_sink sink ~tag:"SEGEDGES"
        (Marshal.to_string edges []));
  t.bytes <- t.bytes + (try (Unix.stat file).Unix.st_size with Unix.Unix_error _ -> 0);
  t.segs <- Array.append t.segs [| { lo; hi; elo; ehi; file } |]

(* One parse attempt.  Raises [Corrupt] for a validation defect (the
   file's bytes are wrong — retrying cannot help), [Sys_error] /
   [Unix_error] for a device-level failure (possibly transient). *)
let read_seg_file t idx =
  let s = t.segs.(idx) in
  Lbsa_util.Rio.inject_read_fault ~site:"segstore.read";
  let corrupt fmt = Fmt.kstr (fun m -> raise (Corrupt m)) fmt in
  let ic = open_in_bin s.file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let header =
        try really_input_string ic (String.length magic)
        with End_of_file -> ""
      in
      if not (String.equal header magic) then
        corrupt "Segstore: %s is not a segment file" s.file;
      let expect tag =
        match Segio.read_section ic with
        | Some (t', payload) when String.equal t' tag -> payload
        | Some (t', _) ->
          corrupt "Segstore: %s: expected %s, got %s" s.file tag t'
        | None -> corrupt "Segstore: %s: truncated" s.file
        | exception Failure msg -> corrupt "Segstore: %s: %s" s.file msg
      in
      let unmarshal : type a. string -> a = fun payload ->
        (* the checksum already validated these bytes, but a format skew
           from another build would still explode here — keep it typed *)
        try Marshal.from_string payload 0
        with Failure msg | Invalid_argument msg ->
          corrupt "Segstore: %s: undecodable section: %s" s.file msg
      in
      let lo', hi', elo', ehi' =
        (unmarshal (expect "SEGMETA") : int * int * int * int)
      in
      if lo' <> s.lo || hi' <> s.hi || elo' <> s.elo || ehi' <> s.ehi then
        corrupt "Segstore: %s: range mismatch" s.file;
      let pconfigs = (unmarshal (expect "SEGNODES") : Mirror.pconfig array) in
      let pedges = (unmarshal (expect "SEGEDGES") : Mirror.pedge array) in
      if Array.length pconfigs <> s.hi - s.lo
         || Array.length pedges <> s.ehi - s.elo
      then corrupt "Segstore: %s: payload/range mismatch" s.file;
      {
        l_seg = idx;
        l_configs = Array.map Mirror.thaw_config pconfigs;
        l_steps = Array.map Mirror.thaw_step pedges;
      })

(* Fault-in with the recompute-or-refuse policy: a device error gets
   one backed-off retry (transient EIO, injected or real); a validation
   defect or a second device failure is counted and refused with the
   typed [Corrupt] — never an unmarshal crash, never silently wrong
   data (the per-section checksums decide). *)
let load_seg t idx =
  let refuse msg =
    t.n_corrupt <- t.n_corrupt + 1;
    raise (Corrupt msg)
  in
  let l =
    match read_seg_file t idx with
    | l -> l
    | exception Corrupt msg -> refuse msg
    | exception (Sys_error _ | Unix.Unix_error _ | End_of_file) -> (
      Lbsa_util.Rio.sleep_backoff ~site:"segstore.read" ~attempt:0;
      match read_seg_file t idx with
      | l -> l
      | exception Corrupt msg -> refuse msg
      | exception Sys_error msg -> refuse (Fmt.str "Segstore: %s" msg)
      | exception Unix.Unix_error (e, _, _) ->
        refuse
          (Fmt.str "Segstore: %s: %s" t.segs.(idx).file (Unix.error_message e))
      | exception End_of_file ->
        refuse (Fmt.str "Segstore: %s: truncated" t.segs.(idx).file))
  in
  t.n_faults <- t.n_faults + 1;
  l

let cached t idx =
  let rec find i =
    if i >= cache_slots then None
    else
      match t.cache.(i) with
      | Some l when l.l_seg = idx -> Some l
      | _ -> find (i + 1)
  in
  match find 0 with
  | Some l -> l
  | None ->
    let l = load_seg t idx in
    t.cache.(t.clock) <- Some l;
    t.clock <- (t.clock + 1) mod cache_slots;
    l

(* Binary search over the sorted, contiguous segment array. *)
let seg_index t ~key ~lo_of ~hi_of =
  let n = Array.length t.segs in
  let rec go lo hi =
    if lo >= hi then invalid_arg "Segstore: index out of spilled range"
    else
      let mid = (lo + hi) / 2 in
      let s = t.segs.(mid) in
      if key < lo_of s then go lo mid
      else if key >= hi_of s then go (mid + 1) hi
      else mid
  in
  go 0 n

let node t id =
  let idx = seg_index t ~key:id ~lo_of:(fun s -> s.lo) ~hi_of:(fun s -> s.hi) in
  let l = cached t idx in
  l.l_configs.(id - t.segs.(idx).lo)

let step t i =
  let idx =
    seg_index t ~key:i ~lo_of:(fun s -> s.elo) ~hi_of:(fun s -> s.ehi)
  in
  let l = cached t idx in
  l.l_steps.(i - t.segs.(idx).elo)

let remove_all t =
  Array.iter
    (fun s -> try Sys.remove s.file with Sys_error _ -> ())
    t.segs;
  t.segs <- [||];
  Array.fill t.cache 0 cache_slots None;
  (try Unix.rmdir t.sdir with Unix.Unix_error _ -> ())

let clean_dir ~dir =
  if Sys.file_exists dir && Sys.is_directory dir then begin
    Array.iter
      (fun name ->
        if is_seg_file name then
          try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end
