(** Out-of-core segment store: cold node-id ranges of an exploration
    (their configurations and their CSR edge slice) spilled to disk and
    faulted back in on demand.

    A segment covers a half-open id range [lo, hi) of the expanded
    prefix together with its edge-index range [elo, ehi); segments are
    written in increasing id order and never overlap, so lookup is a
    binary search.  Files carry the same magic + per-section checksum
    discipline as checkpoints (see {!Segio}); payloads are the
    structural {!Mirror} forms, and fault-in re-interns every value
    through the [Value] smart constructors, so the id-never-orders
    invariant survives a round trip through disk exactly as it does for
    checkpoints.

    Spilled segments are scratch, not durable state: {!create} clears
    any stale [seg-*.seg] files in the directory (a resumed run
    re-spills deterministically from its checkpoint), and callers
    remove the directory with {!remove_all} once a run completes. *)

open Lbsa_runtime

(** Framed section IO shared with the version-3 checkpoint format: each
    section is an 8-byte tag, a big-endian payload length, a big-endian
    FNV-1a payload checksum, then the payload.  [read_section] raises
    [Failure] on any framing or checksum defect and returns [None] at a
    clean end of file. *)
module Segio : sig
  val write_section : out_channel -> tag:string -> string -> unit
  (** [tag] is at most 8 bytes; it is padded to exactly 8 on disk. *)

  val write_section_sink : (string -> unit) -> tag:string -> string -> unit
  (** Same framing through an arbitrary sink — used to stream sections
      into a {!Lbsa_util.Rio} atomic-commit writer. *)

  val read_section : in_channel -> (string * string) option
  (** Returns the trimmed tag and the payload. *)
end

exception Corrupt of string
(** A segment failed validation on fault-in (magic, framing, checksum,
    undecodable payload, or repeated I/O errors).  Spilled segments are
    a cache of data already evicted from RAM, so the store refuses with
    this typed error — callers surface it as a clean partial outcome —
    instead of crashing in [Marshal] or returning wrong data. *)

type t

val create : dir:string -> t
(** Creates [dir] if needed and deletes any stale [seg-*.seg] files in
    it.  Raises [Failure] if [dir] exists and is not a directory. *)

val dir : t -> string

val write_segment :
  t ->
  lo:int ->
  hi:int ->
  elo:int ->
  ehi:int ->
  configs:Mirror.pconfig array ->
  edges:Mirror.pedge array ->
  unit
(** Spills ids [lo, hi) (configs, in id order) and their out-edge slice
    [elo, ehi) (edges, in CSR order).  Ranges must extend the store:
    [lo] equals the previous segment's [hi] (or 0). *)

val node : t -> int -> Config.t
(** [node t id] faults in the segment covering [id] (if not cached) and
    returns its re-interned configuration.  Raises [Invalid_argument]
    if no segment covers [id]; raises {!Corrupt} (after one backed-off
    retry for device-level errors) if the segment fails validation. *)

val step : t -> int -> int * Config.event * int
(** [step t i] returns the [(pid, event, target)] of global edge index
    [i], faulting in the covering segment.  Raises [Invalid_argument]
    if no segment covers [i]; raises {!Corrupt} like {!node}. *)

val spilled_upto : t -> int
(** One past the highest spilled node id (0 when empty). *)

val n_segments : t -> int

val spilled_bytes : t -> int
(** Total bytes written across live segment files. *)

val faults : t -> int
(** Segment loads from disk (cache misses), cumulative. *)

val corrupt_count : t -> int
(** Fault-ins refused as {!Corrupt}, cumulative. *)

val remove_all : t -> unit
(** Deletes every segment file this store wrote and removes the
    directory if that leaves it empty.  The store is unusable after. *)

val clean_dir : dir:string -> unit
(** Path-based cleanup for callers that no longer hold the store:
    deletes the [seg-*.seg] files in [dir] (nothing else) and removes
    the directory if that leaves it empty.  A no-op on a missing
    [dir]. *)
