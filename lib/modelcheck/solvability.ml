open Lbsa_spec
open Lbsa_runtime

(* Exhaustive task verification: does a protocol solve a task for *every*
   schedule and *every* resolution of object nondeterminism?

   The reachable configuration graph (Graph.build) contains every
   interleaving, so checking a safety property at every node quantifies
   over all finite executions, and liveness properties reduce to
   structural properties of the finite graph:

   - wait-free termination of process pid fails iff some reachable cycle
     contains a step of pid (pid can take infinitely many steps without
     halting);
   - solo termination of pid from configuration C fails iff the pid-solo
     subgraph from C contains a cycle, or a leaf where pid is still
     running (the solo run gets stuck). *)

type verdict = {
  ok : bool;
  outcome : Supervisor.outcome;
      (* Done = definitive verdict; anything else = partial (the
         explored prefix held, but exploration was cut short) *)
  inputs : Value.t array;
  states : int;
  failure : string option;
  stats : Graph.stats option;  (* exploration stats of the checked graph *)
  suspended : Graph.suspended option;
      (* frozen exploration for checkpoint/resume, on partial outcomes *)
}

let pp_verdict ppf v =
  if v.ok then
    Fmt.pf ppf "OK (inputs=%a, %d states)"
      Fmt.(array ~sep:(any ",") Value.pp)
      v.inputs v.states
  else if Supervisor.is_partial v.outcome then
    Fmt.pf ppf "PARTIAL [%a] (inputs=%a, %d states): %s" Supervisor.pp_outcome
      v.outcome
      Fmt.(array ~sep:(any ",") Value.pp)
      v.inputs v.states
      (Option.value v.failure ~default:"?")
  else
    Fmt.pf ppf "FAIL (inputs=%a, %d states): %s"
      Fmt.(array ~sep:(any ",") Value.pp)
      v.inputs v.states
      (Option.value v.failure ~default:"?")

let fail ?(outcome = Supervisor.Done) ?stats ?suspended ~inputs ~states msg =
  { ok = false; outcome; inputs; states; failure = Some msg; stats; suspended }

let pass ?stats ~inputs ~states () =
  {
    ok = true;
    outcome = Supervisor.Done;
    inputs;
    states;
    failure = None;
    stats;
    suspended = None;
  }

(* A graph cut short (quota, deadline, cancellation, worker failure)
   still proves safety on every explored configuration, so partial
   verdicts are produced AFTER the safety scan: a violation in the
   prefix is a definitive FAIL; absence of one is merely partial. *)
let partial ~(graph : Graph.t) ~stats ~inputs ~states () =
  fail ~outcome:graph.Graph.stop ?suspended:graph.Graph.suspended ~stats ~inputs
    ~states
    (Fmt.str "exploration stopped (%a); safety holds on the %d explored states"
       Supervisor.pp_outcome graph.Graph.stop states)

(* --- liveness primitives -------------------------------------------- *)

(* Does some reachable cycle contain a step of [pid]?  Using the SCC
   condensation: yes iff some SCC contains an edge of [pid] internal to
   it (including self-loops).  Both searches are pure topology, so they
   read the packed targets array ([Graph.exists_out_step]) and never
   fault segments on an out-of-core graph. *)
let cycle_with_step_of (graph : Graph.t) pid =
  let comp, _ = Graph.scc graph in
  Graph.find_id graph (fun u ->
      Graph.exists_out_step graph u (fun pid' target ->
          pid' = pid && comp.(u) = comp.(target)))

(* Any cycle at all (some process can run forever). *)
let any_cycle (graph : Graph.t) =
  let comp, n_comps = Graph.scc graph in
  let sizes = Array.make n_comps 0 in
  Array.iter (fun c -> sizes.(c) <- sizes.(c) + 1) comp;
  Graph.find_id graph (fun u ->
      sizes.(comp.(u)) > 1
      || Graph.exists_out_step graph u (fun _pid target -> target = u))

(* Solo termination of [pid] from [config]: explore the pid-solo subgraph
   (all nondeterministic branches), requiring that every run halts pid in
   a status satisfying [accept].  Memoized across calls via [cache]:
   true = all solo runs from this config are fine. *)
type solo_cache = (Config.t, bool) Hashtbl.t

let solo_cache () : solo_cache = Hashtbl.create 1024

let solo_halts ?(cache = solo_cache ()) ?(substrate = Substrate.shm) ~machine
    ~specs ~pid ~accept config =
  let module CM = Map.Make (Config) in
  (* On-stack set for cycle detection within one DFS. *)
  let rec go on_stack config =
    match Hashtbl.find_opt cache config with
    | Some r -> r
    | None ->
      if CM.mem config on_stack then false (* solo cycle: pid spins *)
      else
        let r =
          if not (Config.is_running config pid) then accept config.Config.status.(pid)
          else
            let branches =
              substrate.Substrate.step_branches ~machine ~specs config pid
            in
            List.for_all
              (fun (config', _) -> go (CM.add config () on_stack) config')
              branches
        in
        (* Only cache completed subtrees (config not on stack anywhere):
           caching a [false] caused by an on-stack ancestor would be
           unsound, so cache only when the answer is stack-independent.
           A [false] from a strict cycle is still correct to cache for
           the node that closes the cycle's entry point; to stay simple
           and sound we cache positives always and negatives only at the
           DFS root. *)
        if r then Hashtbl.replace cache config r;
        r
  in
  go CM.empty config

(* --- task checkers --------------------------------------------------- *)

(* Exhaustive consensus check: safety at every node, wait-freedom of
   every process.  Liveness needs the complete graph; on a partial one
   only the safety scan runs and the verdict is partial. *)
let check_consensus ?(max_states = Graph.default_max_states) ?domains ?budget
    ?substrate ?reduce ?resume ?shards ?spill ~machine ~specs ~inputs () =
  let graph =
    Graph.build ~max_states ?domains ?budget ?substrate ?reduce ?resume ?shards
      ?spill ~machine ~specs ~inputs ()
  in
  let states = Graph.n_nodes graph in
  let stats = Graph.stats graph in
  let violation =
    Graph.find_map_node graph (fun _ config ->
        match Lbsa_protocols.Consensus_task.check_safety ~inputs config with
        | Ok () -> None
        | Error v ->
          Some (Fmt.str "%a" Lbsa_protocols.Consensus_task.pp_violation v))
  in
  match violation with
  | Some msg -> fail ~stats ~inputs ~states msg
  | None ->
    if graph.truncated then partial ~graph ~stats ~inputs ~states ()
    else
      let n = Array.length inputs in
      let rec check_pid pid =
        if pid >= n then pass ~stats ~inputs ~states ()
        else
          match cycle_with_step_of graph pid with
          | Some node ->
            fail ~stats ~inputs ~states
              (Fmt.str "process %d can take infinitely many steps (cycle at node %d)"
                 pid node)
          | None -> check_pid (pid + 1)
      in
      check_pid 0

(* Exhaustive k-set agreement check. *)
let check_kset ?(max_states = Graph.default_max_states) ?domains ?budget
    ?substrate ?reduce ?resume ?shards ?spill ~machine ~specs ~k ~inputs () =
  let graph =
    Graph.build ~max_states ?domains ?budget ?substrate ?reduce ?resume ?shards
      ?spill ~machine ~specs ~inputs ()
  in
  let states = Graph.n_nodes graph in
  let stats = Graph.stats graph in
  let violation =
    Graph.find_map_node graph (fun _ config ->
        match Lbsa_protocols.Kset_task.check_safety ~k ~inputs config with
        | Ok () -> None
        | Error v -> Some (Fmt.str "%a" Lbsa_protocols.Kset_task.pp_violation v))
  in
  match violation with
  | Some msg -> fail ~stats ~inputs ~states msg
  | None ->
    if graph.truncated then partial ~graph ~stats ~inputs ~states ()
    else (
      match any_cycle graph with
      | Some node ->
        fail ~stats ~inputs ~states (Fmt.str "livelock (cycle at node %d)" node)
      | None -> pass ~stats ~inputs ~states ())

(* Exhaustive n-DAC check (Section 4's four properties, with the paper's
   weak termination):
   - safety (agreement, validity, p-only aborts) at every node;
   - Nontriviality: no abort along p-solo runs from the initial
     configuration (those are exactly the runs where no q stepped);
   - Termination (a): from every reachable node, p running solo halts
     (decides or aborts);
   - Termination (b): from every reachable node, every q != p running
     solo decides. *)
let check_dac ?(max_states = Graph.default_max_states) ?domains ?budget
    ?(substrate = Substrate.shm) ?reduce ?resume ?shards ?spill ~machine ~specs
    ~inputs () =
  let p = Lbsa_protocols.Dac.distinguished in
  let graph =
    Graph.build ~max_states ?domains ?budget ~substrate ?reduce ?resume ?shards
      ?spill ~machine ~specs ~inputs ()
  in
  let states = Graph.n_nodes graph in
  let stats = Graph.stats graph in
  let ( <|> ) a b = match a with None -> b () | Some _ -> a in
    (* Safety at every node, stopping at the first violation. *)
    let safety () =
      Graph.find_map_node graph (fun id config ->
          let of_result = function
            | Ok () -> None
            | Error v ->
              Some (Fmt.str "node %d: %a" id Lbsa_protocols.Dac.pp_violation v)
          in
          of_result (Lbsa_protocols.Dac.check_agreement config)
          <|> (fun () ->
                of_result (Lbsa_protocols.Dac.check_validity ~inputs config))
          <|> fun () -> of_result (Lbsa_protocols.Dac.check_aborts config))
    in
    (* Nontriviality: explore p-solo subgraph from the initial config. *)
    let nontriviality () =
      let exception Abort_found in
      let rec p_solo config =
        if config.Config.status.(p) = Config.Aborted then raise Abort_found
        else if Config.is_running config p then
          List.iter
            (fun (c', _) -> p_solo c')
            (substrate.Substrate.step_branches ~machine ~specs config p)
      in
      match p_solo (Graph.node graph graph.initial) with
      | () -> None
      | exception Abort_found -> Some "nontriviality: p aborted in a p-solo run"
    in
    (* Termination (a) and (b) from every node. *)
    let termination () =
      let cache_a = solo_cache () in
      let caches_b = Hashtbl.create 8 in
      let accept_a = function
        | Config.Decided _ | Config.Aborted -> true
        | Config.Running | Config.Crashed -> false
      in
      let accept_b = function
        | Config.Decided _ -> true
        | Config.Running | Config.Aborted | Config.Crashed -> false
      in
      Graph.find_map_node graph (fun id config ->
          (if
             Config.is_running config p
             && not
                  (solo_halts ~cache:cache_a ~substrate ~machine ~specs ~pid:p
                     ~accept:accept_a config)
           then Some (Fmt.str "node %d: termination (a) fails for p" id)
           else None)
          <|> fun () ->
          List.find_map
            (fun q ->
              if q = p then None
              else
                let cache =
                  match Hashtbl.find_opt caches_b q with
                  | Some c -> c
                  | None ->
                    let c = solo_cache () in
                    Hashtbl.replace caches_b q c;
                    c
                in
                if
                  not
                    (solo_halts ~cache ~substrate ~machine ~specs ~pid:q
                       ~accept:accept_b config)
                then Some (Fmt.str "node %d: termination (b) fails for q%d" id q)
                else None)
            (Config.running config))
    in
    match safety () with
    | Some msg -> fail ~stats ~inputs ~states msg
    | None ->
      (* Nontriviality and termination explore solo runs off-graph;
         they are only meaningful on a complete reachable set. *)
      if graph.truncated then partial ~graph ~stats ~inputs ~states ()
      else (
        match nontriviality () <|> termination with
        | Some msg -> fail ~stats ~inputs ~states msg
        | None -> pass ~stats ~inputs ~states ())

(* --- counterexample witnesses ----------------------------------------- *)

(* A violating configuration together with the schedule reproducing it:
   the pids to run, in order, from the initial configuration.  With
   nondeterministic objects the witness also needs the branch picked at
   each step; [replay] therefore re-walks the stored edges. *)
type witness = {
  schedule : int list;
  violation : string;
  config : Config.t;
}

let pp_witness ppf w =
  Fmt.pf ppf "@[<v>violation: %s@,schedule: %a@,configuration:@,%a@]"
    w.violation
    Fmt.(list ~sep:(any " ") int)
    w.schedule Config.pp w.config

(* The outcome of a witness search.  A found witness is definitive even
   on a truncated graph (the violating prefix was explored in full); the
   *absence* of one is only meaningful when the whole reachable set was
   scanned, so a cut-short exploration without a hit must not masquerade
   as "no witness" — that was a false negative until this variant forced
   callers to distinguish the cases. *)
type witness_search =
  | Witness of witness
  | No_witness  (* exhaustive: the complete graph holds no violation *)
  | Search_truncated of Supervisor.outcome
      (* no violation in the explored prefix, but exploration stopped
         early — the verdict is inconclusive *)

(* Find the first configuration violating [judge] and extract its
   schedule.  [judge] returns a violation description, or None.
   Witness searches always run unreduced: the schedule must replay
   concretely from the initial configuration, which a symmetry-quotient
   graph (whose edges connect orbit representatives) does not
   guarantee. *)
let find_safety_witness ?(max_states = Graph.default_max_states) ~machine ~specs
    ~inputs ~(judge : Config.t -> string option) () =
  let graph = Graph.build ~max_states ~machine ~specs ~inputs () in
  let found =
    Graph.find_map_node graph (fun id config ->
        Option.map (fun violation -> (id, config, violation)) (judge config))
  in
  match found with
  | None ->
    if graph.truncated then Search_truncated graph.stop else No_witness
  | Some (id, config, violation) ->
    let path = Option.get (Graph.shortest_path graph ~target:id) in
    Witness { schedule = Graph.schedule_of_path path; violation; config }

let consensus_witness ?max_states ~machine ~specs ~inputs () =
  let judge config =
    match Lbsa_protocols.Consensus_task.check_safety ~inputs config with
    | Ok () -> None
    | Error v -> Some (Fmt.str "%a" Lbsa_protocols.Consensus_task.pp_violation v)
  in
  find_safety_witness ?max_states ~machine ~specs ~inputs ~judge ()

let dac_witness ?max_states ~machine ~specs ~inputs () =
  let judge config =
    let ( <|> ) a b = if a = None then b else a in
    let of_result = function
      | Ok () -> None
      | Error v -> Some (Fmt.str "%a" Lbsa_protocols.Dac.pp_violation v)
    in
    of_result (Lbsa_protocols.Dac.check_agreement config)
    <|> of_result (Lbsa_protocols.Dac.check_validity ~inputs config)
    <|> of_result (Lbsa_protocols.Dac.check_aborts config)
  in
  find_safety_witness ?max_states ~machine ~specs ~inputs ~judge ()

(* Check a task over a whole family of input vectors; returns the first
   failing verdict or the last passing one.  [domains] > 1 fans the
   vectors out across that many domains in contiguous chunks — each
   vector builds an independent graph — with the winning (lowest) failing
   index agreed by CAS-min, so the verdict is identical for any domain
   count (the same trick as the fuzzer's [Engine.fan]; this library sits
   below the fuzzer, so the fan is reimplemented here).  When fanning
   out, the per-vector check should itself run with [~domains:1] to avoid
   oversubscription. *)

type family_stats = {
  vectors : int;
  fan_domains : int;
  total_states : int;
  wall_s : float;
  vectors_per_sec : float;
}

let pp_family_stats ppf s =
  Fmt.pf ppf
    "family: %d vectors, %d states total, %.3f s (%.0f vectors/s, %d domain%s)"
    s.vectors s.total_states s.wall_s s.vectors_per_sec s.fan_domains
    (if s.fan_domains = 1 then "" else "s")

let for_all_inputs_timed ?(domains = 1)
    ?(budget = Supervisor.Budget.unlimited) check inputs_list =
  if inputs_list = [] then invalid_arg "Solvability.for_all_inputs: no inputs";
  if domains < 1 then
    invalid_arg "Solvability.for_all_inputs: domains must be >= 1";
  let vectors = Array.of_list inputs_list in
  let n = Array.length vectors in
  let d = min domains n in
  let t0 = Unix.gettimeofday () in
  let states = Atomic.make 0 in
  let checked v =
    ignore (Atomic.fetch_and_add states v.states);
    v
  in
  (* One supervised vector: an exception raised while checking vector
     [i] — in whichever domain owns it — is captured and retried by
     [run_shard]; exhausted retries become a failing [Worker_failed]
     verdict for that vector, which then competes in the ordinary
     CAS-min.  Nothing escapes through [Domain.join], and the first
     failing index is the same for any domain count. *)
  let shard i =
    match Supervisor.run_shard ~worker:i (fun () -> check vectors.(i)) with
    | Ok v -> checked v
    | Error (exn, attempts) ->
      {
        ok = false;
        outcome = Supervisor.Worker_failed { worker = i; exn; attempts };
        inputs = vectors.(i);
        states = 0;
        failure =
          Some
            (Fmt.str "checker raised after %d attempt%s: %s" attempts
               (if attempts = 1 then "" else "s")
               exn);
        stats = None;
        suspended = None;
      }
  in
  let interrupted o i =
    {
      ok = false;
      outcome = o;
      inputs = vectors.(min i (n - 1));
      states = 0;
      failure =
        Some
          (Fmt.str "input-family sweep stopped (%a) before all %d vectors"
             Supervisor.pp_outcome o n);
      stats = None;
      suspended = None;
    }
  in
  let verdict =
    if d = 1 then begin
      let rec go last i =
        if i >= n then Option.get last
        else
          match Supervisor.Budget.stop budget with
          | Some o -> interrupted o i
          | None ->
            let v = shard i in
            if v.ok then go (Some v) (i + 1) else v
      in
      go None 0
    end
    else begin
      let best = Atomic.make max_int in
      let found = Array.make d None in
      let last = Atomic.make None in
      let stopped = Atomic.make None in
      let chunk = (n + d - 1) / d in
      let work k =
        let lo = k * chunk and hi = min n ((k + 1) * chunk) in
        let i = ref lo in
        let running = ref true in
        while !running && !i < hi && !i < Atomic.get best do
          match Supervisor.Budget.stop budget with
          | Some o ->
            if Atomic.get stopped = None then Atomic.set stopped (Some o);
            running := false
          | None ->
            let v = shard !i in
            (if not v.ok then begin
               found.(k) <- Some (!i, v);
               let rec cas_min () =
                 let b = Atomic.get best in
                 if !i < b && not (Atomic.compare_and_set best b !i) then
                   cas_min ()
               in
               cas_min ();
               i := hi (* later vectors in this chunk cannot beat this find *)
             end
             else if !i = n - 1 then Atomic.set last (Some v));
            incr i
        done
      in
      let spawned =
        List.init (d - 1) (fun k -> Domain.spawn (fun () -> work (k + 1)))
      in
      work 0;
      List.iter Domain.join spawned;
      let first_fail =
        Array.fold_left
          (fun acc x ->
            match (acc, x) with
            | Some (i, _), Some (j, _) when j < i -> x
            | None, x -> x
            | acc, _ -> acc)
          None found
      in
      match first_fail with
      | Some (_, v) -> v
      | None -> (
        match Atomic.get stopped with
        | Some o -> interrupted o n
        | None ->
          (* No chunk failed or stopped early, so every chunk ran to
             completion and the owner of the last vector recorded its
             (passing) verdict. *)
          Option.get (Atomic.get last))
    end
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  ( verdict,
    {
      vectors = n;
      fan_domains = d;
      total_states = Atomic.get states;
      wall_s;
      vectors_per_sec = (if wall_s > 0. then float_of_int n /. wall_s else 0.);
    } )

let for_all_inputs ?domains ?budget check inputs_list =
  fst (for_all_inputs_timed ?domains ?budget check inputs_list)
