(** Exhaustive task verification: does a protocol solve a task for every
    schedule and every resolution of object nondeterminism?  Safety is
    checked at every reachable configuration; liveness reduces to
    structural properties of the finite configuration graph. *)

open Lbsa_spec
open Lbsa_runtime

type verdict = {
  ok : bool;
  outcome : Supervisor.outcome;
      (** [Done] = definitive; anything else = partial — the explored
          prefix satisfied safety but exploration was cut short by a
          quota, deadline, cancellation or worker failure.  A safety
          violation found in a partial graph is still a definitive
          failure ([outcome = Done], [ok = false]). *)
  inputs : Value.t array;
  states : int;
  failure : string option;
  stats : Graph.stats option;
      (** exploration statistics of the checked graph, when one was
          built *)
  suspended : Graph.suspended option;
      (** the frozen exploration on partial outcomes; persist with
          {!Checkpoint} and pass back via [~resume] *)
}

val pp_verdict : Format.formatter -> verdict -> unit

val cycle_with_step_of : Graph.t -> int -> int option
(** A node on a reachable cycle containing a step of the given process —
    a wait-freedom violation witness. *)

val any_cycle : Graph.t -> int option

type solo_cache

val solo_cache : unit -> solo_cache

val solo_halts :
  ?cache:solo_cache ->
  ?substrate:Substrate.t ->
  machine:Machine.t ->
  specs:Obj_spec.t array ->
  pid:int ->
  accept:(Config.status -> bool) ->
  Config.t ->
  bool
(** Do all solo runs of [pid] from this configuration halt it with a
    status satisfying [accept]? Explores every nondeterministic branch;
    detects solo cycles. *)

val check_consensus :
  ?max_states:int ->
  ?domains:int ->
  ?budget:Supervisor.Budget.t ->
  ?substrate:Substrate.t ->
  ?reduce:Graph.reduction ->
  ?resume:Graph.suspended ->
  ?shards:int ->
  ?spill:Graph.spill ->
  machine:Machine.t ->
  specs:Obj_spec.t array ->
  inputs:Value.t array ->
  unit ->
  verdict
(** Agreement + validity + no-abort at every node, wait-freedom of every
    process.  [max_states] defaults to [Graph.default_max_states];
    [domains], [budget], [substrate], [reduce], [resume], [shards] and
    [spill] are forwarded to {!Graph.build}.  A sound [reduce] (see {!Canon})
    changes the explored graph but not the verdict's [ok]/[outcome];
    node ids and failure messages may differ; [shards] and [spill]
    change neither the graph nor the verdict (the liveness searches are
    segment-fault-free on an out-of-core graph).  Never raises on
    truncation: a cut-short exploration yields a partial verdict
    (safety checked on the explored prefix, liveness skipped). *)

val check_kset :
  ?max_states:int ->
  ?domains:int ->
  ?budget:Supervisor.Budget.t ->
  ?substrate:Substrate.t ->
  ?reduce:Graph.reduction ->
  ?resume:Graph.suspended ->
  ?shards:int ->
  ?spill:Graph.spill ->
  machine:Machine.t ->
  specs:Obj_spec.t array ->
  k:int ->
  inputs:Value.t array ->
  unit ->
  verdict

val check_dac :
  ?max_states:int ->
  ?domains:int ->
  ?budget:Supervisor.Budget.t ->
  ?substrate:Substrate.t ->
  ?reduce:Graph.reduction ->
  ?resume:Graph.suspended ->
  ?shards:int ->
  ?spill:Graph.spill ->
  machine:Machine.t ->
  specs:Obj_spec.t array ->
  inputs:Value.t array ->
  unit ->
  verdict
(** The four n-DAC properties of Section 4, with the paper's weak
    termination: (a) p-solo runs halt p from every reachable node;
    (b) q-solo runs decide from every reachable node; nontriviality via
    exhaustive p-solo exploration from the initial configuration. *)

(** {2 Counterexample witnesses} *)

type witness = {
  schedule : int list;
      (** pids to run in order from the initial configuration (replay
          with [Scheduler.fixed]; nondeterministic branches need a
          matching adversary) *)
  violation : string;
  config : Config.t;
}

val pp_witness : Format.formatter -> witness -> unit

(** The outcome of a witness search.  A found {!Witness} is definitive
    even when the exploration was cut short (its violating prefix was
    explored in full).  [No_witness] asserts the {e complete} reachable
    graph holds no violation; when exploration stopped early without a
    hit the search answers {!Search_truncated} instead — treating that
    as "no witness" was a false negative. *)
type witness_search =
  | Witness of witness
  | No_witness
  | Search_truncated of Supervisor.outcome

val find_safety_witness :
  ?max_states:int ->
  machine:Machine.t ->
  specs:Obj_spec.t array ->
  inputs:Value.t array ->
  judge:(Config.t -> string option) ->
  unit ->
  witness_search
(** The first configuration violating [judge], with the shortest
    schedule reaching it.  Always explores unreduced: witness schedules
    must replay concretely, which a symmetry-quotiented graph does not
    guarantee. *)

val consensus_witness :
  ?max_states:int ->
  machine:Machine.t ->
  specs:Obj_spec.t array ->
  inputs:Value.t array ->
  unit ->
  witness_search

val dac_witness :
  ?max_states:int ->
  machine:Machine.t ->
  specs:Obj_spec.t array ->
  inputs:Value.t array ->
  unit ->
  witness_search

(** {2 Input-family sweeps} *)

type family_stats = {
  vectors : int;  (** input vectors in the family *)
  fan_domains : int;  (** domains actually used by the fan-out *)
  total_states : int;  (** sum of [verdict.states] over checked vectors *)
  wall_s : float;
  vectors_per_sec : float;
}

val pp_family_stats : Format.formatter -> family_stats -> unit

val for_all_inputs :
  ?domains:int ->
  ?budget:Supervisor.Budget.t ->
  (Value.t array -> verdict) ->
  Value.t array list ->
  verdict
(** First failing verdict over a family of input vectors, or the last
    passing one.  [domains] (default 1) fans vectors out across that many
    domains; the verdict — including which failing vector wins — is
    identical for any domain count (lowest failing index, agreed by
    CAS-min).  When [domains > 1], run the per-vector check itself with
    [~domains:1] to avoid oversubscribing cores.

    An exception escaping the per-vector check is captured in its own
    domain and retried ({!Supervisor.run_shard}); if it keeps failing,
    that vector gets a failing [Worker_failed] verdict that competes in
    the usual lowest-index race — completed work is never lost and
    nothing propagates through [Domain.join].  [budget] is polled before
    each vector; when it fires the sweep returns a partial verdict. *)

val for_all_inputs_timed :
  ?domains:int ->
  ?budget:Supervisor.Budget.t ->
  (Value.t array -> verdict) ->
  Value.t array list ->
  verdict * family_stats
(** Same, plus wall-clock/throughput statistics for the whole sweep. *)
