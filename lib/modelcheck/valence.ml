open Lbsa_spec
open Lbsa_runtime

(* Valence (Fischer-Lynch-Paterson, as used throughout Sections 4-5):
   a configuration C is v-valent if no configuration reachable from C
   contains a decision different from v; bivalent if both 0 and 1 are
   reachable decisions.

   We compute, for every node of a configuration graph, the set of values
   that appear as decisions in configurations reachable from it (plus
   whether an abort is reachable).  The decision domain of a real graph is
   tiny (a handful of values), so we intern decision values to small ints
   (first-occurrence order; a pointer-equality scan, since values are
   hash-consed) and represent each node's reachable-decision set as a
   bitmask.  The
   reachable set is constant on every strongly connected component, so one
   reverse-topological pass over the [Graph.scc] condensation computes the
   exact fixpoint — cycles (spinning protocols) included — with a single
   [lor] per edge.

   The seed worklist fixpoint is kept as {!analyze_fixpoint}, the
   differential-testing oracle (same pattern as [Graph.build_cmap]). *)

module VSet = Set.Make (Value)
module VTbl = Hashtbl.Make (Value)

type classification =
  | Valent of Value.t  (* exactly one reachable decision value *)
  | Bivalent  (* at least two reachable decision values *)
  | Undecided  (* no reachable decision at all *)

type analysis = {
  graph : Graph.t;
  table : Value.t array;  (* interned decision id -> value *)
  masks : int array;  (* reachable decision ids per node, as a bitmask *)
  aborts : bool array;
}

let local_abort (config : Config.t) =
  let st = config.status in
  let len = Array.length st in
  let rec go i =
    i < len
    && (match st.(i) with Config.Aborted -> true | _ -> go (i + 1))
  in
  go 0

(* Intern every decision value appearing in the graph (first occurrence in
   node-id order) and return the per-node local-decision bitmasks.  The
   decision domain of any graph we build is a handful of values — far
   below the word size (the guard is belt-and-braces for pathological
   inputs) — and [Value.equal] on hash-consed values is pointer
   equality, so the linear table scan is a few pointer compares: the
   former per-session value-hashing layer collapsed into it.  Bit
   positions come from first-occurrence order, never from intern ids
   (which are allocation-order-dependent), so masks are reproducible. *)
let intern_decisions (graph : Graph.t) =
  let n = Graph.n_nodes graph in
  let table = ref [||] in
  let count = ref 0 in
  let intern v =
    let tbl = !table in
    let k = !count in
    let rec find i =
      if i >= k then begin
        if k >= Sys.int_size - 1 then
          invalid_arg "Valence.analyze: decision domain exceeds word size";
        if k = Array.length tbl then begin
          let a = Array.make (max 4 (2 * k)) v in
          Array.blit tbl 0 a 0 k;
          table := a
        end;
        !table.(k) <- v;
        count := k + 1;
        k
      end
      else if Value.equal tbl.(i) v then i
      else find (i + 1)
    in
    find 0
  in
  let local = Array.make n 0 in
  for id = 0 to n - 1 do
    List.iter
      (fun v -> local.(id) <- local.(id) lor (1 lsl intern v))
      (Config.decisions (Graph.node graph id))
  done;
  (Array.sub !table 0 !count, local)

(* One pass over the condensation: [Graph.scc] numbers components in
   topological order (sources first), so processing components in
   descending id order sees every successor component finalized.  Edges
   internal to a component only re-union the component with itself. *)
let analyze (graph : Graph.t) =
  let n = Graph.n_nodes graph in
  let comp, n_comps = Graph.scc graph in
  let cmask = Array.make n_comps 0 in
  let cabort = Array.make n_comps false in
  (* Intern decisions and seed the per-component masks in one pass over
     the nodes (same first-occurrence interning order as
     {!intern_decisions}, which the oracle uses). *)
  let table = ref [||] in
  let count = ref 0 in
  let intern v =
    let tbl = !table in
    let k = !count in
    let rec find i =
      if i >= k then begin
        if k >= Sys.int_size - 1 then
          invalid_arg "Valence.analyze: decision domain exceeds word size";
        if k = Array.length tbl then begin
          let a = Array.make (max 4 (2 * k)) v in
          Array.blit tbl 0 a 0 k;
          table := a
        end;
        !table.(k) <- v;
        count := k + 1;
        k
      end
      else if Value.equal tbl.(i) v then i
      else find (i + 1)
    in
    find 0
  in
  for u = 0 to n - 1 do
    let st = (Graph.node graph u).Config.status in
    let c = comp.(u) in
    for p = 0 to Array.length st - 1 do
      match st.(p) with
      | Config.Decided v -> cmask.(c) <- cmask.(c) lor (1 lsl intern v)
      | Config.Aborted -> cabort.(c) <- true
      | Config.Running | Config.Crashed -> ()
    done
  done;
  let table = Array.sub !table 0 !count in
  (* Group node ids by component (counting sort into a CSR layout) so the
     reverse-topological sweep touches each edge exactly once. *)
  let counts = Array.make (n_comps + 1) 0 in
  for u = 0 to n - 1 do
    counts.(comp.(u) + 1) <- counts.(comp.(u) + 1) + 1
  done;
  for c = 1 to n_comps do
    counts.(c) <- counts.(c) + counts.(c - 1)
  done;
  let members = Array.make n 0 in
  let cursor = Array.copy counts in
  for u = 0 to n - 1 do
    let c = comp.(u) in
    members.(cursor.(c)) <- u;
    cursor.(c) <- cursor.(c) + 1
  done;
  (* The sweep needs only edge targets, so it reads the packed targets
     array ({!Graph.iter_out_steps}) — on an out-of-core graph this
     whole pass (like the SCC above) runs with zero segment faults;
     only the status seeding above touched configurations, once each,
     in sequential id order. *)
  for c = n_comps - 1 downto 0 do
    for i = counts.(c) to counts.(c + 1) - 1 do
      let u = members.(i) in
      Graph.iter_out_steps graph u (fun _pid target ->
          let c' = comp.(target) in
          cmask.(c) <- cmask.(c) lor cmask.(c');
          if cabort.(c') then cabort.(c) <- true)
    done
  done;
  let masks = Array.make n 0 in
  let aborts = Array.make n false in
  for u = 0 to n - 1 do
    let c = comp.(u) in
    masks.(u) <- cmask.(c);
    aborts.(u) <- cabort.(c)
  done;
  { graph; table; masks; aborts }

(* The seed fixpoint: worklist over functional [VSet]s, all n nodes
   seeded.  Exact but allocation-heavy; kept as the oracle. *)
let analyze_fixpoint (graph : Graph.t) =
  let n = Graph.n_nodes graph in
  let local_decisions config =
    List.fold_left (fun s v -> VSet.add v s) VSet.empty (Config.decisions config)
  in
  let decisions = Array.init n (fun id -> local_decisions (Graph.node graph id)) in
  let abort_reachable =
    Array.init n (fun id -> local_abort (Graph.node graph id))
  in
  (* Reverse edges once for backward propagation. *)
  let preds = Array.make n [] in
  for u = 0 to n - 1 do
    Graph.iter_out_edges graph u (fun e ->
        preds.(e.target) <- u :: preds.(e.target))
  done;
  let queue = Queue.create () in
  for id = 0 to n - 1 do
    Queue.add id queue
  done;
  let in_queue = Array.make n true in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    in_queue.(u) <- false;
    (* Recompute u from its successors; if it grew, reschedule preds. *)
    let d = ref decisions.(u) in
    let a = ref abort_reachable.(u) in
    Graph.iter_out_edges graph u (fun e ->
        d := VSet.union !d decisions.(e.target);
        a := !a || abort_reachable.(e.target));
    if (not (VSet.equal !d decisions.(u))) || !a <> abort_reachable.(u) then begin
      decisions.(u) <- !d;
      abort_reachable.(u) <- !a;
      List.iter
        (fun p ->
          if not in_queue.(p) then begin
            in_queue.(p) <- true;
            Queue.add p queue
          end)
        preds.(u)
    end
  done;
  (* Re-express the VSet result in the interned representation so both
     analyses answer through the same accessors. *)
  let table, _local = intern_decisions graph in
  let id_of = VTbl.create 16 in
  Array.iteri (fun i v -> VTbl.add id_of v i) table;
  let masks =
    Array.init n (fun u ->
        VSet.fold (fun v m -> m lor (1 lsl VTbl.find id_of v)) decisions.(u) 0)
  in
  { graph; table; masks; aborts = abort_reachable }

let popcount m =
  let c = ref 0 and m = ref m in
  while !m <> 0 do
    m := !m land (!m - 1);
    incr c
  done;
  !c

let decision_set t id =
  let m = t.masks.(id) in
  let vs = ref [] in
  for i = Array.length t.table - 1 downto 0 do
    if m land (1 lsl i) <> 0 then vs := t.table.(i) :: !vs
  done;
  List.sort Value.compare !vs

let classify t id =
  let m = t.masks.(id) in
  if m = 0 then Undecided
  else if m land (m - 1) = 0 then
    (* Single bit set: find it. *)
    let rec bit i = if m = 1 lsl i then i else bit (i + 1) in
    Valent t.table.(bit 0)
  else Bivalent

let is_bivalent t id =
  let m = t.masks.(id) in
  m <> 0 && m land (m - 1) <> 0

let is_valent t id v =
  match classify t id with
  | Valent v' -> Value.equal v v'
  | Bivalent | Undecided -> false

let abort_reachable t id = t.aborts.(id)

let pp_classification ppf = function
  | Valent v -> Fmt.pf ppf "%a-valent" Value.pp v
  | Bivalent -> Fmt.string ppf "bivalent"
  | Undecided -> Fmt.string ppf "undecided"

(* Summary counts over the whole graph, for experiment tables. *)
type summary = {
  n_nodes : int;
  n_bivalent : int;
  n_univalent : int;
  n_undecided : int;
}

let summarize t =
  let n = Graph.n_nodes t.graph in
  let biv = ref 0 and uni = ref 0 and und = ref 0 in
  for id = 0 to n - 1 do
    match popcount t.masks.(id) with
    | 0 -> incr und
    | 1 -> incr uni
    | _ -> incr biv
  done;
  { n_nodes = n; n_bivalent = !biv; n_univalent = !uni; n_undecided = !und }
