open Lbsa_spec
open Lbsa_runtime

(* Valence (Fischer-Lynch-Paterson, as used throughout Sections 4-5):
   a configuration C is v-valent if no configuration reachable from C
   contains a decision different from v; bivalent if both 0 and 1 are
   reachable decisions.

   We compute, for every node of a configuration graph, the set of values
   that appear as decisions in configurations reachable from it (plus
   whether an abort is reachable), by a fixpoint over the graph — the
   graph may have cycles (spinning protocols), so a plain DFS does not
   suffice. *)

module VSet = Set.Make (Value)

type classification =
  | Valent of Value.t  (* exactly one reachable decision value *)
  | Bivalent  (* at least two reachable decision values *)
  | Undecided  (* no reachable decision at all *)

type analysis = {
  graph : Graph.t;
  decisions : VSet.t array;  (* reachable decision values per node *)
  abort_reachable : bool array;
}

let local_decisions (config : Config.t) =
  List.fold_left (fun s v -> VSet.add v s) VSet.empty (Config.decisions config)

let local_abort (config : Config.t) =
  Array.exists (fun st -> st = Config.Aborted) config.status

(* Fixpoint propagation: ds(C) = decided(C) ∪ ⋃_{C -> C'} ds(C').
   We iterate a worklist until stable; each node's set only grows and is
   bounded by the (finite) decision domain, so this terminates. *)
let analyze (graph : Graph.t) =
  let n = Graph.n_nodes graph in
  let decisions = Array.init n (fun id -> local_decisions (Graph.node graph id)) in
  let abort_reachable =
    Array.init n (fun id -> local_abort (Graph.node graph id))
  in
  (* Reverse edges once for backward propagation. *)
  let preds = Array.make n [] in
  for u = 0 to n - 1 do
    Graph.iter_out_edges graph u (fun e ->
        preds.(e.target) <- u :: preds.(e.target))
  done;
  let queue = Queue.create () in
  for id = 0 to n - 1 do
    Queue.add id queue
  done;
  let in_queue = Array.make n true in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    in_queue.(u) <- false;
    (* Recompute u from its successors; if it grew, reschedule preds. *)
    let d = ref decisions.(u) in
    let a = ref abort_reachable.(u) in
    Graph.iter_out_edges graph u (fun e ->
        d := VSet.union !d decisions.(e.target);
        a := !a || abort_reachable.(e.target));
    if (not (VSet.equal !d decisions.(u))) || !a <> abort_reachable.(u) then begin
      decisions.(u) <- !d;
      abort_reachable.(u) <- !a;
      List.iter
        (fun p ->
          if not in_queue.(p) then begin
            in_queue.(p) <- true;
            Queue.add p queue
          end)
        preds.(u)
    end
  done;
  { graph; decisions; abort_reachable }

let decision_set t id = VSet.elements t.decisions.(id)

let classify t id =
  match VSet.elements t.decisions.(id) with
  | [] -> Undecided
  | [ v ] -> Valent v
  | _ -> Bivalent

let is_bivalent t id = classify t id = Bivalent

let is_valent t id v =
  match classify t id with
  | Valent v' -> Value.equal v v'
  | Bivalent | Undecided -> false

let abort_reachable t id = t.abort_reachable.(id)

let pp_classification ppf = function
  | Valent v -> Fmt.pf ppf "%a-valent" Value.pp v
  | Bivalent -> Fmt.string ppf "bivalent"
  | Undecided -> Fmt.string ppf "undecided"

(* Summary counts over the whole graph, for experiment tables. *)
type summary = {
  n_nodes : int;
  n_bivalent : int;
  n_univalent : int;
  n_undecided : int;
}

let summarize t =
  let n = Graph.n_nodes t.graph in
  let biv = ref 0 and uni = ref 0 and und = ref 0 in
  for id = 0 to n - 1 do
    match classify t id with
    | Bivalent -> incr biv
    | Valent _ -> incr uni
    | Undecided -> incr und
  done;
  { n_nodes = n; n_bivalent = !biv; n_univalent = !uni; n_undecided = !und }
