(** Valence computation (the FLP vocabulary of the paper's proofs):
    classify every configuration of a graph as v-valent, bivalent or
    undecided, by the exact fixpoint over reachable decisions. *)

open Lbsa_spec

type classification =
  | Valent of Value.t
  | Bivalent
  | Undecided  (** no decision reachable at all *)

type analysis

val analyze : Graph.t -> analysis
(** Interns decision values to small ints and propagates per-node
    reachable-decision bitmasks in one reverse-topological pass over the
    {!Graph.scc} condensation (exact on cyclic graphs: an SCC's nodes
    share one reachable set). *)

val analyze_fixpoint : Graph.t -> analysis
(** The seed worklist fixpoint over functional value sets.  Kept as
    differential-testing oracle and benchmark baseline; agrees with
    {!analyze} on every accessor. *)

val decision_set : analysis -> int -> Value.t list
(** All decision values reachable from the node. *)

val classify : analysis -> int -> classification
val is_bivalent : analysis -> int -> bool
val is_valent : analysis -> int -> Value.t -> bool

val abort_reachable : analysis -> int -> bool
(** Is a configuration with an aborted process reachable from here? *)

val pp_classification : Format.formatter -> classification -> unit

type summary = {
  n_nodes : int;
  n_bivalent : int;
  n_univalent : int;
  n_undecided : int;
}

val summarize : analysis -> summary
