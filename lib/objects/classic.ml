open Lbsa_spec

(* Classic shared objects used to situate the paper's objects in the
   consensus hierarchy (Herlihy 1991):

   - test-and-set, fetch-and-add, swap, FIFO queue: consensus number 2;
   - compare-and-swap, sticky register: consensus number ∞;
   - registers: consensus number 1.

   All are deterministic. *)

let det next response : Obj_spec.branch list = [ { next; response } ]

module Test_and_set = struct
  let test_and_set = Op.make "test_and_set" []
  let reset = Op.make "reset" []
  let read = Op.make "read" []

  let spec () =
    let step state (op : Op.t) =
      match (op.name, op.args) with
      | "test_and_set", [] -> det (Value.bool true) state
      | "reset", [] -> det (Value.bool false) Value.unit_
      | "read", [] -> det state state
      | _ -> Obj_spec.unknown "test-and-set" op
    in
    Obj_spec.make ~name:"test-and-set" ~initial:(Value.bool false) ~step ()
end

module Fetch_and_add = struct
  let fetch_and_add delta = Op.make "fetch_and_add" [ Value.int delta ]
  let read = Op.make "read" []

  let spec ?(init = 0) () =
    let step state (op : Op.t) =
      match (op.name, op.args, state) with
      | "fetch_and_add", [ { Value.node = Int d; _ } ], { Value.node = Int cur; _ } ->
        det (Value.int (cur + d)) state
      | "read", [], _ -> det state state
      | _ -> Obj_spec.unknown "fetch-and-add" op
    in
    Obj_spec.make ~name:"fetch-and-add" ~initial:(Value.int init) ~step ()
end

module Swap = struct
  let swap v = Op.make "swap" [ v ]

  let spec ?(init = Value.nil) () =
    let step state (op : Op.t) =
      match (op.name, op.args) with
      | "swap", [ v ] -> det v state
      | _ -> Obj_spec.unknown "swap" op
    in
    Obj_spec.make ~name:"swap" ~initial:init ~step ()
end

module Queue_obj = struct
  let enqueue v = Op.make "enqueue" [ v ]
  let dequeue = Op.make "dequeue" []

  let spec ?(init = []) () =
    let step state (op : Op.t) =
      match (op.name, op.args, state) with
      | "enqueue", [ v ], { Value.node = List items; _ } ->
        det (Value.list (items @ [ v ])) Value.unit_
      | "dequeue", [], { Value.node = List []; _ } -> det state Value.nil
      | "dequeue", [], { Value.node = List (front :: rest); _ } ->
        det (Value.list rest) front
      | _ -> Obj_spec.unknown "queue" op
    in
    Obj_spec.make ~name:"queue" ~initial:(Value.list init) ~step ()
end

module Compare_and_swap = struct
  let compare_and_swap ~expected ~desired =
    Op.make "compare_and_swap" [ expected; desired ]

  let read = Op.make "read" []

  let spec ?(init = Value.nil) () =
    let step state (op : Op.t) =
      match (op.name, op.args) with
      | "compare_and_swap", [ expected; desired ] ->
        if Value.equal state expected then det desired (Value.bool true)
        else det state (Value.bool false)
      | "read", [] -> det state state
      | _ -> Obj_spec.unknown "compare-and-swap" op
    in
    Obj_spec.make ~name:"compare-and-swap" ~initial:init ~step ()
end

module Sticky = struct
  (* A sticky register: the first write sticks; every write returns the
     stuck value.  Solves consensus among any number of processes. *)
  let write v = Op.make "write" [ v ]
  let read = Op.make "read" []

  let spec () =
    let step state (op : Op.t) =
      match (op.name, op.args) with
      | "write", [ v ] ->
        let stuck = if Value.is_nil state then v else state in
        det stuck stuck
      | "read", [] -> det state state
      | _ -> Obj_spec.unknown "sticky" op
    in
    Obj_spec.make ~name:"sticky" ~initial:Value.nil ~step ()
end

module Monotone_snapshot = struct
  (* An m-component snapshot whose cells only move forward: each cell
     holds Pair(Int t, payload) and an update with a smaller-or-equal
     step counter is a no-op.  Single-writer monotone cells are
     implementable from plain registers by tagging (standard); we keep
     the object primitive so the BG simulation stays focused on the
     simulation itself.  Consensus number 1. *)
  let update i ~step v = Op.make "update" [ Value.int i; Value.int step; v ]
  let scan = Op.make "scan" []

  let initial ~m = Value.list (List.init m (fun _ -> Value.nil))

  let step_of = function
    | { Value.node = Pair ({ node = Int t; _ }, _); _ } -> t
    | { Value.node = Nil; _ } -> -1
    | v -> invalid_arg (Fmt.str "monotone-snapshot: bad cell %a" Value.pp v)

  let spec ~m () =
    if m < 1 then invalid_arg "Monotone_snapshot.spec: m must be >= 1";
    let step state (op : Op.t) =
      match (op.name, op.args, state) with
      | ( "update",
          [ { Value.node = Int i; _ }; { node = Int t; _ }; v ],
          { Value.node = List comps; _ } ) ->
        if i < 0 || i >= m then
          invalid_arg (Fmt.str "monotone-snapshot: component %d out of range" i)
        else
          let comps' =
            List.mapi
              (fun j c ->
                if j = i && t > step_of c then Value.pair (Value.int t, v)
                else c)
              comps
          in
          det (Value.list comps') Value.unit_
      | "scan", [], _ -> det state state
      | _ -> Obj_spec.unknown "monotone-snapshot" op
    in
    Obj_spec.make
      ~name:(Fmt.str "%d-monotone-snapshot" m)
      ~initial:(initial ~m) ~step ()
end

module Snapshot = struct
  (* An m-component atomic snapshot as a primitive object: update(i, v)
     writes component i; scan() returns the whole vector atomically.
     Consensus number 1; also built from registers in Snapshot_impl. *)
  let update i v = Op.make "update" [ Value.int i; v ]
  let scan = Op.make "scan" []

  let initial ~m = Value.list (List.init m (fun _ -> Value.nil))

  let spec ~m () =
    if m < 1 then invalid_arg "Snapshot.spec: m must be >= 1";
    let step state (op : Op.t) =
      match (op.name, op.args, state) with
      | "update", [ { Value.node = Int i; _ }; v ], { Value.node = List comps; _ } ->
        if i < 0 || i >= m then
          invalid_arg (Fmt.str "snapshot: component %d out of range" i)
        else
          det
            (Value.list (List.mapi (fun j c -> if j = i then v else c) comps))
            Value.unit_
      | "scan", [], _ -> det state state
      | _ -> Obj_spec.unknown "snapshot" op
    in
    Obj_spec.make ~name:(Fmt.str "%d-snapshot" m) ~initial:(initial ~m) ~step ()
end
