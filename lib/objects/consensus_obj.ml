open Lbsa_spec

(* The m-consensus object, in the deterministic linearizable formulation
   the paper cites from Jayanti and Qadri (footnote 6): the first m
   propose operations all receive the value of the first propose
   operation; every later propose operation receives ⊥.

   State: Pair (first-proposed-value-or-NIL, number-of-proposes). *)

let propose v = Op.make "propose" [ v ]

let initial = Value.(pair (nil, int 0))

let det next response : Obj_spec.branch list = [ { next; response } ]

let spec ~m () =
  if m < 1 then invalid_arg "Consensus_obj.spec: m must be >= 1";
  let step state (op : Op.t) =
    match (op.name, op.args, state) with
    | "propose", [ v ], { Value.node = Pair (first, { node = Int count; _ }); _ } ->
      if count >= m then det state Value.bot
      else
        let first' = if Value.is_nil first then v else first in
        det (Value.pair (first', Value.int (count + 1))) first'
    | _ -> Obj_spec.unknown "consensus" op
  in
  Obj_spec.make ~name:(Fmt.str "%d-consensus" m) ~initial ~step ()
