open Lbsa_spec

(* The (n,k)-SA object: allows up to n processes to solve the k-set
   agreement problem (Borowsky-Gafni / Chaudhuri-Reiners, as used in
   Section 6).  Each of n PROPOSE(v) operations receives some proposed
   value, with at most k distinct values returned overall; any propose
   operation beyond the n-th receives ⊥.

   We model "an arbitrary solution to the (n,k)-set agreement problem" by
   maximal adversarial nondeterminism subject to the problem's
   constraints:

   - validity: every response is a value proposed so far;
   - k-agreement: at most k distinct responses ever;
   - port bound: at most n non-⊥ responses.

   State: List [proposed-set; returned-set; Int count]. *)

let propose v = Op.make "propose" [ v ]

let initial = Value.(list [ Set_.empty; Set_.empty; int 0 ])

let spec ~n ~k () =
  if n < 1 || k < 1 then invalid_arg "Nk_sa.spec: n and k must be >= 1";
  let step state (op : Op.t) =
    match (op.name, op.args, state) with
    | ( "propose",
        [ v ],
        { Value.node = List [ proposed; returned; { node = Int count; _ } ]; _ } ) ->
      if count >= n then
        [ ({ next = state; response = Value.bot } : Obj_spec.branch) ]
      else
        let proposed' = Value.Set_.add v proposed in
        let candidates =
          if Value.Set_.cardinal returned < k then
            Value.Set_.elements proposed'
          else Value.Set_.elements returned
        in
        List.map
          (fun r : Obj_spec.branch ->
            {
              next =
                Value.(
                  list
                    [ proposed'; Set_.add r returned; int (count + 1) ]);
              response = r;
            })
          candidates
    | _ -> Obj_spec.unknown "(n,k)-SA" op
  in
  Obj_spec.make ~name:(Fmt.str "(%d,%d)-SA" n k) ~initial ~step ()
