open Lbsa_spec

(* O'_n, the companion object of Section 6: the bundle of (n_k, k)-SA
   objects, one per component of the set agreement power
   (n_1, n_2, ..., n_k, ...) of O_n.  PROPOSE(v, k) redirects to the
   (n_k, k)-SA member.

   The paper's sequence is infinite and has no closed form; its
   construction, and all the theorems we check, are uniform in the
   sequence, so the implementation is parameterized by a finite prefix.
   [default_power ~n ~max_k] supplies the prefix used throughout the
   repository: n_1 = n (Observation 6.2: O_n has consensus number n) and
   n_k = k*n for k >= 2 — the lower bound obtained from the n-consensus
   facet of O_n by the partition protocol (Kset_protocols.partition).

   State: Assoc map k -> (n_k, k)-SA state. *)

type power = int list
(* power.(k-1) = n_k; length = number of supported levels. *)

let default_power ~n ~max_k =
  List.map (fun k -> if k = 1 then n else k * n) (Lbsa_util.Listx.range 1 max_k)

let propose v k = Op.make "propose" [ v; Value.int k ]

let members ~power =
  List.mapi (fun idx nk -> (idx + 1, Nk_sa.spec ~n:nk ~k:(idx + 1) ())) power

let initial ~power =
  Value.Assoc.of_bindings
    (List.map (fun (k, _) -> (Value.int k, Nk_sa.initial)) (members ~power))

let spec ?name ~power () =
  if power = [] then invalid_arg "O_prime.spec: empty power sequence";
  List.iteri
    (fun idx nk ->
      if nk < 1 then
        invalid_arg (Fmt.str "O_prime.spec: n_%d must be >= 1" (idx + 1)))
    power;
  let members = members ~power in
  let step state (op : Op.t) =
    match (op.name, op.args) with
    | "propose", [ v; { Value.node = Int k; _ } ] -> (
      match List.assoc_opt k members with
      | None ->
        invalid_arg
          (Fmt.str "O'_n: no (n_k,k)-SA member for k = %d (max %d)" k
             (List.length power))
      | Some sa ->
        let sub =
          Value.Assoc.get_or state (Value.int k) ~default:Nk_sa.initial
        in
        List.map
          (fun (b : Obj_spec.branch) : Obj_spec.branch ->
            {
              next = Value.Assoc.set state (Value.int k) b.next;
              response = b.response;
            })
          (Obj_spec.branches sa sub (Nk_sa.propose v)))
    | _ -> Obj_spec.unknown "O'_n" op
  in
  let name = Option.value name ~default:"O'_n" in
  Obj_spec.make ~name ~initial:(initial ~power) ~step ()

let spec_for ~n ~max_k () =
  let power = default_power ~n ~max_k in
  spec ~name:(Fmt.str "O'_%d" n) ~power ()
