open Lbsa_spec

(* The n-pseudo-abortable-consensus (n-PAC) object — Algorithm 1 of the
   paper, transcribed line by line.

   The object simulates an n-DAC object deterministically: a process
   simulates PROPOSE(v) on port i of the n-DAC by performing
   PROPOSE(v, i) and then DECIDE(i) on the n-PAC.  The object becomes
   permanently *upset* exactly when its operation history is not legal
   (Lemma 3.2): a DECIDE(i) without a pending PROPOSE(-, i), or two
   PROPOSE(-, i) without an intervening DECIDE(i).

   State components (mirroring the paper):
   - upset : bool                       initially false
   - V     : array [1..n] of value      initially all NIL
   - L     : label of last propose      initially NIL
   - val   : the consensus value        initially NIL

   Encoded as List [Bool upset; V-map; L; val]. *)

let propose v i = Op.make "propose" [ v; Value.int i ]
let decide i = Op.make "decide" [ Value.int i ]

type view = { upset : bool; v : Value.t; l : Value.t; value : Value.t }

let view state =
  match state with
  | { Value.node = List [ { node = Bool upset; _ }; v; l; value ]; _ } ->
    { upset; v; l; value }
  | _ -> invalid_arg "Pac.view: malformed n-PAC state"

let encode { upset; v; l; value } =
  Value.list [ Value.bool upset; v; l; value ]

let initial ~n =
  let v =
    Value.Assoc.of_bindings
      (List.map (fun i -> (Value.int i, Value.nil)) (Lbsa_util.Listx.range 1 n))
  in
  encode { upset = false; v; l = Value.nil; value = Value.nil }

let get_v st i = Value.Assoc.get_or st.v (Value.int i) ~default:Value.nil
let set_v st i x = { st with v = Value.Assoc.set st.v (Value.int i) x }

let det next response : Obj_spec.branch list = [ { next; response } ]

let check_label ~n op i =
  if i < 1 || i > n then
    invalid_arg (Fmt.str "%d-PAC: label out of range in %a" n Op.pp op)

let spec ~n () =
  if n < 1 then invalid_arg "Pac.spec: n must be >= 1";
  let step state (op : Op.t) =
    match (op.name, op.args) with
    | "propose", [ v; { Value.node = Int i; _ } ] ->
      check_label ~n op i;
      (* Algorithm 1, lines 1-6. *)
      let st = view state in
      let st = if not (Value.is_nil (get_v st i)) then { st with upset = true } else st in
      let st =
        if not st.upset then set_v { st with l = Value.int i } i v else st
      in
      det (encode st) Value.done_
    | "decide", [ { Value.node = Int i; _ } ] ->
      check_label ~n op i;
      (* Algorithm 1, lines 7-17. *)
      let st = view state in
      let st = if Value.is_nil (get_v st i) then { st with upset = true } else st in
      if st.upset then det (encode st) Value.bot
      else
        let st, temp =
          if not (Value.equal st.l (Value.int i)) then (st, Value.bot)
          else
            let st =
              if Value.is_nil st.value then { st with value = get_v st i }
              else st
            in
            (st, st.value)
        in
        let st = set_v { st with l = Value.nil } i Value.nil in
        det (encode st) temp
    | _ -> Obj_spec.unknown "n-PAC" op
  in
  Obj_spec.make ~name:(Fmt.str "%d-PAC" n) ~initial:(initial ~n) ~step ()

(* Rewrite the labels occurring in a PAC state under a relabelling [f]
   (a permutation of [1..n]): the keys of the V map and the L component.
   The stored proposal values, the consensus value and the upset flag
   carry no labels and are left alone.  [Assoc.of_bindings] re-sorts, so
   the result is again a well-formed (canonically ordered) PAC state.
   This is the object-state half of a process symmetry: when process i
   proposes under label i+1, permuting processes must permute labels. *)
let rename_labels f state =
  let st = view state in
  let rename v =
    match v.Value.node with
    | Value.Int i -> Value.int (f i)
    | Value.Nil -> v
    | _ -> invalid_arg "Pac.rename_labels: malformed label"
  in
  let v =
    Value.Assoc.bindings st.v
    |> List.map (fun (k, x) -> (rename k, x))
    |> Value.Assoc.of_bindings
  in
  encode { st with v; l = rename st.l }

(* --- Introspection used by the Lemma 3.2-3.4 test suites ------------- *)

let is_upset state = (view state).upset
let label state = (view state).l
let consensus_value state = (view state).value
let v_entry state i = get_v (view state) i

(* Legality of a sequential history of PAC operations (Section 3): for
   every label i, the subsequence of operations with label i is empty or
   begins with a propose and alternates propose / decide. *)
let history_legal ~n (h : Shistory.t) =
  let label_of (op : Op.t) =
    match (op.name, op.args) with
    | "propose", [ _; { Value.node = Int i; _ } ] -> i
    | "decide", [ { Value.node = Int i; _ } ] -> i
    | _ -> invalid_arg "Pac.history_legal: not a PAC operation"
  in
  let is_propose (op : Op.t) = op.name = "propose" in
  let ok_for i =
    let with_i =
      List.filter (fun (e : Shistory.event) -> label_of e.op = i) h
    in
    let rec alternates expect_propose = function
      | [] -> true
      | (e : Shistory.event) :: rest ->
        if is_propose e.op = expect_propose then
          alternates (not expect_propose) rest
        else false
    in
    alternates true with_i
  in
  List.for_all ok_for (Lbsa_util.Listx.range 1 n)
