(** The n-pseudo-abortable-consensus (n-PAC) object of Section 3,
    specified exactly as the paper's Algorithm 1.

    Deterministic and non-abortable.  [propose v i] records a pending
    proposal with label [i] (always answering [Done]); [decide i]
    completes it, answering the consensus value, or ⊥ when the object is
    upset or detected an intervening operation.  The object becomes
    permanently upset exactly when its history is illegal (Lemma 3.2). *)

open Lbsa_spec

val propose : Value.t -> int -> Op.t
(** [propose v i] — PROPOSE(v, i), with label [1 <= i <= n]. *)

val decide : int -> Op.t
(** [decide i] — DECIDE(i). *)

val initial : n:int -> Value.t

val spec : n:int -> unit -> Obj_spec.t
(** Raises [Invalid_argument] when [n < 1]; the step function raises on
    labels outside [1..n]. *)

val rename_labels : (int -> int) -> Value.t -> Value.t
(** [rename_labels f state] rewrites every label in [state] — the keys
    of the V map and the L component — by [f] (which must permute
    [1..n]).  Proposal values, the consensus value and the upset flag
    are untouched.  Used by the model checker's symmetry quotient, where
    permuting processes must permute the labels they propose under. *)

(** {2 State introspection (used to check Lemmas 3.2–3.4)} *)

val is_upset : Value.t -> bool
val label : Value.t -> Value.t
(** The L component: [Int i] when the last operation was PROPOSE(-, i). *)

val consensus_value : Value.t -> Value.t
val v_entry : Value.t -> int -> Value.t
(** The V\[i\] component. *)

val history_legal : n:int -> Shistory.t -> bool
(** Legality of a PAC history in the sense of Section 3: per label, empty
    or propose-first strict alternation of propose and decide. *)
