open Lbsa_spec

(* The (n,m)-PAC object (Section 5): the deterministic combination of an
   n-PAC object P and an m-consensus object C.

   - PROPOSEC(v)     redirects PROPOSE(v) to C;
   - PROPOSEP(v, i)  redirects PROPOSE(v, i) to P;
   - DECIDEP(i)      redirects DECIDE(i) to P.

   State: Pair (P-state, C-state). *)

let propose_c v = Op.make "proposeC" [ v ]
let propose_p v i = Op.make "proposeP" [ v; Value.int i ]
let decide_p i = Op.make "decideP" [ Value.int i ]

let initial ~n = Value.pair (Pac.initial ~n, Consensus_obj.initial)

let pac_state = function
  | { Value.node = Pair (p, _); _ } -> p
  | _ -> invalid_arg "Pac_nm.pac_state: malformed state"

let consensus_state = function
  | { Value.node = Pair (_, c); _ } -> c
  | _ -> invalid_arg "Pac_nm.consensus_state: malformed state"

let spec ~n ~m () =
  if n < 1 || m < 1 then invalid_arg "Pac_nm.spec: n and m must be >= 1";
  let pac = Pac.spec ~n () in
  let cons = Consensus_obj.spec ~m () in
  let step state (op : Op.t) =
    match state with
    | { Value.node = Pair (pstate, cstate); _ } -> (
      match (op.name, op.args) with
      | "proposeC", [ v ] ->
        let cstate', r = Obj_spec.apply_det cons cstate (Consensus_obj.propose v) in
        [ ({ next = Value.pair (pstate, cstate'); response = r } : Obj_spec.branch) ]
      | "proposeP", [ v; { Value.node = Int i; _ } ] ->
        let pstate', r = Obj_spec.apply_det pac pstate (Pac.propose v i) in
        [ { next = Value.pair (pstate', cstate); response = r } ]
      | "decideP", [ { Value.node = Int i; _ } ] ->
        let pstate', r = Obj_spec.apply_det pac pstate (Pac.decide i) in
        [ { next = Value.pair (pstate', cstate); response = r } ]
      | _ -> Obj_spec.unknown "(n,m)-PAC" op)
    | _ -> invalid_arg "Pac_nm.spec: malformed state"
  in
  Obj_spec.make ~name:(Fmt.str "(%d,%d)-PAC" n m) ~initial:(initial ~n) ~step ()
