open Lbsa_spec

(* Atomic read/write register, the free substrate of the paper's model
   ("instances of O and registers"). *)

let read = Op.make "read" []
let write v = Op.make "write" [ v ]

let det next response : Obj_spec.branch list = [ { next; response } ]

let spec ?(init = Value.nil) () =
  let step state (op : Op.t) =
    match (op.name, op.args) with
    | "read", [] -> det state state
    | "write", [ v ] -> det v Value.unit_
    | _ -> Obj_spec.unknown "register" op
  in
  Obj_spec.make ~name:"register" ~initial:init ~step ()
