open Lbsa_spec

(* Name-based object construction for the CLI and for table-driven
   experiments.  Grammar (colon-separated):

     reg | reg:<init-int>
     cons:<m>
     2sa
     nksa:<n>:<k>
     pac:<n>
     pacnm:<n>:<m>
     on:<n>
     oprime:<n>:<max_k>
     tas | faa | swap | queue | cas | sticky
     snapshot:<m> *)

let parse_error s = invalid_arg (Fmt.str "Registry.of_string: cannot parse %S" s)

let of_string s : Obj_spec.t =
  match String.split_on_char ':' s with
  | [ "reg" ] -> Register.spec ()
  | [ "reg"; v ] -> Register.spec ~init:(Value.int (int_of_string v)) ()
  | [ "cons"; m ] -> Consensus_obj.spec ~m:(int_of_string m) ()
  | [ "2sa" ] -> Sa2.spec ()
  | [ "nksa"; n; k ] ->
    Nk_sa.spec ~n:(int_of_string n) ~k:(int_of_string k) ()
  | [ "pac"; n ] -> Pac.spec ~n:(int_of_string n) ()
  | [ "pacnm"; n; m ] ->
    Pac_nm.spec ~n:(int_of_string n) ~m:(int_of_string m) ()
  | [ "on"; n ] -> O_n.spec ~n:(int_of_string n) ()
  | [ "oprime"; n; max_k ] ->
    O_prime.spec_for ~n:(int_of_string n) ~max_k:(int_of_string max_k) ()
  | [ "tas" ] -> Classic.Test_and_set.spec ()
  | [ "faa" ] -> Classic.Fetch_and_add.spec ()
  | [ "swap" ] -> Classic.Swap.spec ()
  | [ "queue" ] -> Classic.Queue_obj.spec ()
  | [ "cas" ] -> Classic.Compare_and_swap.spec ()
  | [ "sticky" ] -> Classic.Sticky.spec ()
  | [ "snapshot"; m ] -> Classic.Snapshot.spec ~m:(int_of_string m) ()
  | _ -> parse_error s

let known =
  [
    ("reg", "atomic read/write register (optional :init)");
    ("cons:<m>", "m-consensus object");
    ("2sa", "strong 2-set-agreement object (Algorithm 3)");
    ("nksa:<n>:<k>", "(n,k)-set-agreement object");
    ("pac:<n>", "n-PAC object (Algorithm 1)");
    ("pacnm:<n>:<m>", "(n,m)-PAC object (Section 5)");
    ("on:<n>", "O_n = (n+1,n)-PAC (Definition 6.1)");
    ("oprime:<n>:<K>", "O'_n with default power prefix of length K");
    ("tas", "test-and-set");
    ("faa", "fetch-and-add");
    ("swap", "swap register");
    ("queue", "FIFO queue");
    ("cas", "compare-and-swap");
    ("sticky", "sticky register");
    ("snapshot:<m>", "m-component atomic snapshot");
  ]
