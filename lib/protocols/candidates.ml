open Lbsa_spec
open Lbsa_objects
open Lbsa_runtime

(* Natural-but-doomed candidate protocols for the paper's impossible
   tasks.

   The paper's negative results (Theorems 4.2, 5.2, 7.1 and FLP itself)
   quantify over *all* algorithms and therefore cannot be established by
   testing.  What testing can do — and what these candidates are for —
   is to exhibit the failure, found automatically by the model checker,
   of each member of a family of natural attempts, with the violating
   schedule as a counterexample witness.  EXPERIMENTS.md reports exactly
   that, never claiming a mechanized impossibility proof. *)

(* ------------------------------------------------------------------ *)
(* FLP candidates: binary consensus among 2 processes, registers only. *)

(* Candidate 1: write your input, read the other's register, decide your
   own value if the other is silent, otherwise the minimum.  Fails
   agreement: if p0 reads before p1 writes, p0 decides its own input
   while p1, seeing both, decides the minimum. *)
let flp_write_read : Machine.t * Obj_spec.t array =
  let name = "flp-write-read" in
  let init ~pid:_ ~input = Value.(pair (sym "announcing", input)) in
  let delta ~pid state =
    match state with
    | { Value.node = Pair ({ node = Sym "announcing"; _ }, v); _ } ->
      Machine.invoke pid (Register.write v) (fun _ ->
          Value.(pair (sym "reading", v)))
    | { Value.node = Pair ({ node = Sym "reading"; _ }, v); _ } ->
      Machine.invoke (1 - pid) Register.read (fun other ->
          let decision =
            if Value.is_nil other then v
            else Value.int (min (Value.to_int_exn v) (Value.to_int_exn other))
          in
          Value.(pair (sym "halt", decision)))
    | { Value.node = Pair ({ node = Sym "halt"; _ }, v); _ } -> Machine.Decide v
    | s -> Machine.bad_state ~machine:name ~pid s
  in
  (Machine.make ~name ~init ~delta, [| Register.spec (); Register.spec () |])

(* Candidate 2: write your input, then spin until the other's register is
   non-NIL, then decide the minimum.  Safe, but not wait-free: a solo run
   spins forever.  *)
let flp_spin : Machine.t * Obj_spec.t array =
  let name = "flp-spin" in
  let init ~pid:_ ~input = Value.(pair (sym "announcing", input)) in
  let delta ~pid state =
    match state with
    | { Value.node = Pair ({ node = Sym "announcing"; _ }, v); _ } ->
      Machine.invoke pid (Register.write v) (fun _ ->
          Value.(pair (sym "spinning", v)))
    | { Value.node = Pair ({ node = Sym "spinning"; _ }, v); _ } ->
      Machine.invoke (1 - pid) Register.read (fun other ->
          if Value.is_nil other then Value.(pair (sym "spinning", v))
          else
            let decision =
              Value.int (min (Value.to_int_exn v) (Value.to_int_exn other))
            in
            Value.(pair (sym "halt", decision)))
    | { Value.node = Pair ({ node = Sym "halt"; _ }, v); _ } -> Machine.Decide v
    | s -> Machine.bad_state ~machine:name ~pid s
  in
  (Machine.make ~name ~init ~delta, [| Register.spec (); Register.spec () |])

(* ------------------------------------------------------------------ *)
(* Theorem 4.2 candidates: the 3-DAC problem from 2-consensus objects,
   registers and 2-SA objects. *)

(* Funnel through 2-SA (narrowing to at most two values), then 2-consensus
   to pick one; the process that arrives third at the consensus object
   receives ⊥ and falls back to its 2-SA value.  Fails agreement: the
   fallback value need not be the consensus value. *)
let dac3_sa2_then_cons2 : Machine.t * Obj_spec.t array =
  let sa = 0 and cons = 1 in
  let name = "3dac-sa2-then-cons2" in
  let init ~pid:_ ~input = Value.(pair (sym "narrowing", input)) in
  let delta ~pid state =
    match state with
    | { Value.node = Pair ({ node = Sym "narrowing"; _ }, v); _ } ->
      Machine.invoke sa (Sa2.propose v) (fun w ->
          Value.(pair (sym "agreeing", w)))
    | { Value.node = Pair ({ node = Sym "agreeing"; _ }, w); _ } ->
      Machine.invoke cons (Consensus_obj.propose w) (fun r ->
          if Value.is_bot r then Value.(pair (sym "halt", w))
          else Value.(pair (sym "halt", r)))
    | { Value.node = Pair ({ node = Sym "halt"; _ }, v); _ } -> Machine.Decide v
    | s -> Machine.bad_state ~machine:name ~pid s
  in
  ( Machine.make ~name ~init ~delta,
    [| Sa2.spec (); Consensus_obj.spec ~m:2 () |] )

(* Race through an m-consensus object and announce the winner in a
   register; ⊥-receivers spin on the announcement.  Safe, but
   Termination (b) fails whenever there are more than m processes: a
   process that reached the consensus object (m+1)-th can run solo
   forever if the winners are never scheduled to announce.  This is the
   natural candidate family for both Theorem 4.2 (m = 2, 3 processes)
   and Theorem 7.1 (m = n, n+1 processes). *)
let dac_cons_announce ~m : Machine.t * Obj_spec.t array =
  let cons = 0 and announce = 1 in
  let name = Fmt.str "dac-%d-consensus-announce" m in
  let init ~pid:_ ~input = Value.(pair (sym "agreeing", input)) in
  let delta ~pid state =
    match state with
    | { Value.node = Pair ({ node = Sym "agreeing"; _ }, v); _ } ->
      Machine.invoke cons (Consensus_obj.propose v) (fun r ->
          if Value.is_bot r then Value.sym "spinning"
          else Value.(pair (sym "announcing", r)))
    | { Value.node = Pair ({ node = Sym "announcing"; _ }, r); _ } ->
      Machine.invoke announce (Register.write r) (fun _ ->
          Value.(pair (sym "halt", r)))
    | { Value.node = Sym "spinning"; _ } ->
      Machine.invoke announce Register.read (fun a ->
          if Value.is_nil a then Value.sym "spinning"
          else Value.(pair (sym "halt", a)))
    | { Value.node = Pair ({ node = Sym "halt"; _ }, v); _ } -> Machine.Decide v
    | s -> Machine.bad_state ~machine:name ~pid s
  in
  ( Machine.make ~name ~init ~delta,
    [| Consensus_obj.spec ~m (); Register.spec () |] )

let dac3_cons2_announce : Machine.t * Obj_spec.t array = dac_cons_announce ~m:2

(* ------------------------------------------------------------------ *)
(* Theorem 5.2 candidates: (m+1)-consensus from one (n,m)-PAC object.  *)

(* Use the PROPOSEC facet and announce the winner; same failure mode as
   dac3_cons2_announce (the ⊥-receiver is not wait-free). *)
let consensus_m1_from_pac_nm ~n ~m : Machine.t * Obj_spec.t array =
  let pac = 0 and announce = 1 in
  let name = Fmt.str "%d-consensus-from-(%d,%d)-PAC-announce" (m + 1) n m in
  let init ~pid:_ ~input = Value.(pair (sym "agreeing", input)) in
  let delta ~pid state =
    match state with
    | { Value.node = Pair ({ node = Sym "agreeing"; _ }, v); _ } ->
      Machine.invoke pac (Pac_nm.propose_c v) (fun r ->
          if Value.is_bot r then Value.sym "spinning"
          else Value.(pair (sym "announcing", r)))
    | { Value.node = Pair ({ node = Sym "announcing"; _ }, r); _ } ->
      Machine.invoke announce (Register.write r) (fun _ ->
          Value.(pair (sym "halt", r)))
    | { Value.node = Sym "spinning"; _ } ->
      Machine.invoke announce Register.read (fun a ->
          if Value.is_nil a then Value.sym "spinning"
          else Value.(pair (sym "halt", a)))
    | { Value.node = Pair ({ node = Sym "halt"; _ }, v); _ } -> Machine.Decide v
    | s -> Machine.bad_state ~machine:name ~pid s
  in
  ( Machine.make ~name ~init ~delta,
    [| Pac_nm.spec ~n ~m (); Register.spec () |] )

(* Use the PAC facet, Algorithm-2 style, with every process retrying on
   ⊥: safe, but two processes alternating forever both keep receiving ⊥
   (livelock), so termination fails under a fair schedule. *)
let consensus_from_pac_retry ~n ~procs : Machine.t * Obj_spec.t array =
  if procs > n then invalid_arg "consensus_from_pac_retry: procs > labels";
  let pac = 0 in
  let name = Fmt.str "consensus-from-%d-PAC-retry" n in
  let init ~pid:_ ~input = Value.(pair (sym "proposing", input)) in
  let delta ~pid state =
    let label = pid + 1 in
    match state with
    | { Value.node = Pair ({ node = Sym "proposing"; _ }, v); _ } ->
      Machine.invoke pac (Pac.propose v label) (fun _ ->
          Value.(pair (sym "deciding", v)))
    | { Value.node = Pair ({ node = Sym "deciding"; _ }, v); _ } ->
      Machine.invoke pac (Pac.decide label) (fun temp ->
          if Value.is_bot temp then Value.(pair (sym "proposing", v))
          else Value.(pair (sym "halt", temp)))
    | { Value.node = Pair ({ node = Sym "halt"; _ }, v); _ } -> Machine.Decide v
    | s -> Machine.bad_state ~machine:name ~pid s
  in
  (Machine.make ~name ~init ~delta, [| Pac.spec ~n () |])
