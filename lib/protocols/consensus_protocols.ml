open Lbsa_spec
open Lbsa_objects
open Lbsa_runtime

(* Consensus protocols from the paper's object families.

   Each protocol is a one-shot "propose your input, decide the response"
   machine; which object the proposal goes to is the only difference.
   These are the positive directions of the hierarchy results:

   - [from_consensus_obj ~m]: m processes solve consensus with one
     m-consensus object (the definition of consensus number);
   - [from_pac_nm ~n ~m]: m processes solve consensus with one
     (n,m)-PAC object through its PROPOSEC facet (Observation 5.1(c),
     the positive half of Theorem 5.3);
   - [from_o_n ~n]: n processes solve consensus with one O_n object
     (Observation 6.2: O_n has consensus number n);
   - [from_oprime ~power]: n_1 processes solve consensus with one O'_n
     object through its k = 1 member;
   - [from_sticky]: any number of processes, one sticky register
     (consensus number ∞ baseline). *)

let obj_index = 0

let proposing v = Value.(pair (sym "proposing", v))

(* Generic one-shot machine: invoke [mk_op input] once, then decide the
   response (or the reply of [on_response]). *)
let one_shot ~name ~mk_op ?(on_response = fun ~input:_ r -> r) () : Machine.t =
  let init ~pid:_ ~input = proposing input in
  let delta ~pid state =
    match state with
    | { Value.node = Pair ({ node = Sym "proposing"; _ }, v); _ } ->
      Machine.invoke obj_index (mk_op v) (fun r ->
          Value.pair (Value.sym "halt", on_response ~input:v r))
    | { Value.node = Pair ({ node = Sym "halt"; _ }, v); _ } -> Machine.Decide v
    | s -> Machine.bad_state ~machine:name ~pid s
  in
  Machine.make ~name ~init ~delta

let from_consensus_obj ~m =
  ( one_shot ~name:(Fmt.str "consensus-from-%d-consensus" m)
      ~mk_op:Consensus_obj.propose (),
    [| Consensus_obj.spec ~m () |] )

let from_pac_nm ~n ~m =
  ( one_shot ~name:(Fmt.str "consensus-from-(%d,%d)-PAC" n m)
      ~mk_op:Pac_nm.propose_c (),
    [| Pac_nm.spec ~n ~m () |] )

let from_o_n ~n =
  ( one_shot ~name:(Fmt.str "consensus-from-O_%d" n) ~mk_op:Pac_nm.propose_c (),
    [| O_n.spec ~n () |] )

let from_oprime ~power =
  ( one_shot ~name:"consensus-from-O'_n" ~mk_op:(fun v -> O_prime.propose v 1) (),
    [| O_prime.spec ~power () |] )

let from_sticky () =
  ( one_shot ~name:"consensus-from-sticky" ~mk_op:Classic.Sticky.write (),
    [| Classic.Sticky.spec () |] )

(* --- Herlihy's classic constructions: consensus from the level-2 and
   level-∞ objects.  Each 2-process protocol follows the same
   announce-then-race shape: write your input to your announce register,
   play the object once, and decide your own input if you won the race,
   the rival's announcement otherwise. *)

(* Shared shape for the two-process announce-and-race protocols.  [race]
   is the racing operation on object 0; [won] interprets its response. *)
let two_process_race ~name ~object_spec ~race ~won :
    Machine.t * Obj_spec.t array =
  let obj = 0 and reg0 = 1 and reg1 = 2 in
  let reg_of pid = if pid = 0 then reg0 else reg1 in
  let init ~pid:_ ~input = Value.(pair (sym "announcing", input)) in
  let delta ~pid state =
    match state with
    | { Value.node = Pair ({ node = Sym "announcing"; _ }, v); _ } ->
      Machine.invoke (reg_of pid) (Register.write v) (fun _ ->
          Value.(pair (sym "racing", v)))
    | { Value.node = Pair ({ node = Sym "racing"; _ }, v); _ } ->
      Machine.invoke obj race (fun r ->
          if won r then Value.(pair (sym "halt", v))
          else Value.sym "reading-other")
    | { Value.node = Sym "reading-other"; _ } ->
      Machine.invoke (reg_of (1 - pid)) Register.read (fun other ->
          Value.(pair (sym "halt", other)))
    | { Value.node = Pair ({ node = Sym "halt"; _ }, v); _ } -> Machine.Decide v
    | s -> Machine.bad_state ~machine:name ~pid s
  in
  ( Machine.make ~name ~init ~delta,
    [| object_spec; Register.spec (); Register.spec () |] )

(* 2-consensus from a queue pre-loaded with a winner token: the first
   dequeuer wins. *)
let from_queue () =
  two_process_race ~name:"consensus-from-queue"
    ~object_spec:(Classic.Queue_obj.spec ~init:[ Value.sym "winner" ] ())
    ~race:Classic.Queue_obj.dequeue
    ~won:(fun r -> Value.equal r (Value.sym "winner"))

(* 2-consensus from fetch-and-add: whoever sees the counter at 0 wins. *)
let from_fetch_and_add () =
  two_process_race ~name:"consensus-from-fetch-and-add"
    ~object_spec:(Classic.Fetch_and_add.spec ())
    ~race:(Classic.Fetch_and_add.fetch_and_add 1)
    ~won:(fun r -> Value.equal r (Value.int 0))

(* 2-consensus from swap: whoever swaps the NIL out wins. *)
let from_swap () =
  two_process_race ~name:"consensus-from-swap"
    ~object_spec:(Classic.Swap.spec ())
    ~race:(Classic.Swap.swap (Value.sym "taken"))
    ~won:Value.is_nil

(* n-consensus from compare-and-swap, for any n: CAS your input into the
   cell; on failure the cell already holds the decision. *)
let from_compare_and_swap () : Machine.t * Obj_spec.t array =
  let name = "consensus-from-cas" in
  let init ~pid:_ ~input = Value.(pair (sym "casing", input)) in
  let delta ~pid state =
    match state with
    | { Value.node = Pair ({ node = Sym "casing"; _ }, v); _ } ->
      Machine.invoke 0
        (Classic.Compare_and_swap.compare_and_swap ~expected:Value.nil
           ~desired:v)
        (fun won ->
          match won with
          | { Value.node = Bool true; _ } -> Value.(pair (sym "halt", v))
          | _ -> Value.sym "reading")
    | { Value.node = Sym "reading"; _ } ->
      Machine.invoke 0 Classic.Compare_and_swap.read (fun cur ->
          Value.(pair (sym "halt", cur)))
    | { Value.node = Pair ({ node = Sym "halt"; _ }, v); _ } -> Machine.Decide v
    | s -> Machine.bad_state ~machine:name ~pid s
  in
  (Machine.make ~name ~init ~delta, [| Classic.Compare_and_swap.spec () |])

(* Consensus among 2 processes from one test-and-set object and two
   registers (Herlihy's classic level-2 construction): process pid writes
   its input to register pid, then plays test-and-set; the winner decides
   its own input, the loser decides the winner's. *)
let from_test_and_set () : Machine.t * Obj_spec.t array =
  let tas = 0 and reg0 = 1 and reg1 = 2 in
  let reg_of pid = if pid = 0 then reg0 else reg1 in
  let name = "consensus-from-test-and-set" in
  let init ~pid:_ ~input = Value.(pair (sym "announcing", input)) in
  let delta ~pid state =
    match state with
    | { Value.node = Pair ({ node = Sym "announcing"; _ }, v); _ } ->
      Machine.invoke (reg_of pid) (Register.write v) (fun _ ->
          Value.(pair (sym "racing", v)))
    | { Value.node = Pair ({ node = Sym "racing"; _ }, v); _ } ->
      Machine.invoke tas Classic.Test_and_set.test_and_set (fun won ->
          match won with
          | { Value.node = Bool false; _ } -> Value.(pair (sym "halt", v)) (* winner *)
          | _ -> Value.sym "reading-other")
    | { Value.node = Sym "reading-other"; _ } ->
      Machine.invoke (reg_of (1 - pid)) Register.read (fun other ->
          Value.(pair (sym "halt", other)))
    | { Value.node = Pair ({ node = Sym "halt"; _ }, v); _ } -> Machine.Decide v
    | s -> Machine.bad_state ~machine:name ~pid s
  in
  ( Machine.make ~name ~init ~delta,
    [| Classic.Test_and_set.spec (); Register.spec (); Register.spec () |] )
