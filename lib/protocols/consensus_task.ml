open Lbsa_spec
open Lbsa_runtime

(* The consensus task and per-execution property checkers.  The checkers
   judge a single final configuration (plus its inputs); exhaustive
   quantification over schedules lives in Lbsa_modelcheck.Solvability. *)

type violation =
  | Disagreement of Value.t * Value.t
  | Invalid_decision of Value.t  (* decided value was nobody's input *)
  | Unexpected_abort of int
  | Nontermination  (* fuel ran out with a scheduled process undecided *)

let pp_violation ppf = function
  | Disagreement (a, b) ->
    Fmt.pf ppf "disagreement: %a vs %a" Value.pp a Value.pp b
  | Invalid_decision v -> Fmt.pf ppf "invalid decision: %a" Value.pp v
  | Unexpected_abort pid -> Fmt.pf ppf "process %d aborted" pid
  | Nontermination -> Fmt.string ppf "nontermination (fuel exhausted)"

let check_agreement (config : Config.t) =
  match Config.decisions config with
  | [] | [ _ ] -> Ok ()
  | v :: rest -> (
    match List.find_opt (fun v' -> not (Value.equal v v')) rest with
    | None -> Ok ()
    | Some v' -> Error (Disagreement (v, v')))

let check_validity ~inputs (config : Config.t) =
  let inputs = Array.to_list inputs in
  let bad =
    List.find_opt
      (fun v -> not (List.exists (Value.equal v) inputs))
      (Config.decisions config)
  in
  match bad with
  | None -> Ok ()
  | Some v -> Error (Invalid_decision v)

let check_no_abort (config : Config.t) =
  let rec find pid =
    if pid >= Config.n_processes config then Ok ()
    else if config.status.(pid) = Config.Aborted then
      Error (Unexpected_abort pid)
    else find (pid + 1)
  in
  find 0

(* Safety of a (possibly partial) consensus execution. *)
let check_safety ~inputs config =
  match check_agreement config with
  | Error _ as e -> e
  | Ok () -> (
    match check_validity ~inputs config with
    | Error _ as e -> e
    | Ok () -> check_no_abort config)

(* Full check of a completed run: safety plus wait-free termination (a
   Step_limit stop means some scheduled process never halted). *)
let check_run ~inputs (result : Executor.result) =
  match result.stop with
  | Executor.Step_limit -> Error Nontermination
  | Executor.All_halted | Executor.Scheduler_stopped ->
    check_safety ~inputs result.final

let binary_inputs n =
  (* All 2^n assignments of {0,1} inputs, as input vectors. *)
  let rec go n =
    if n = 0 then [ [] ]
    else
      List.concat_map
        (fun rest -> [ Value.int 0 :: rest; Value.int 1 :: rest ])
        (go (n - 1))
  in
  List.map Array.of_list (go n)
