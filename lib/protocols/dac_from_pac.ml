open Lbsa_spec
open Lbsa_objects
open Lbsa_runtime

(* Algorithm 2 of the paper: solving the n-DAC problem with a single
   n-PAC object D (Theorem 4.1).

     distinguished p:              each q != p:
       D.propose(v_p, p)            while true do
       temp <- D.decide(p)            D.propose(v_q, q)
       if temp != ⊥ then decide temp  temp <- D.decide(q)
       else abort                     if temp != ⊥ then decide temp; break

   Processes are 0..n-1; process pid uses PAC label pid+1; the
   distinguished process p is process 0 (Dac.distinguished).

   Local states:
     Pair(Sym "proposing", v) -- about to PROPOSE(v, label)
     Pair(Sym "deciding", v)  -- about to DECIDE(label)
     Pair(Sym "halt", v)      -- about to decide v
     Sym "abort"              -- about to abort                        *)

let pac_index = 0

let label_of_pid pid = pid + 1

let proposing v = Value.(pair (sym "proposing", v))
let deciding v = Value.(pair (sym "deciding", v))

(* Algorithm 2 parameterized by the propose/decide operations, so the
   same machine runs against a bare n-PAC object or against the PAC facet
   of an (n,m)-PAC / O_n object (Observation 5.1(b)). *)
let machine_via ~name ~propose ~decide : Machine.t =
  let init ~pid:_ ~input = proposing input in
  let delta ~pid state =
    let label = label_of_pid pid in
    match state with
    | { Value.node = Pair ({ node = Sym "proposing"; _ }, v); _ } ->
      Machine.invoke pac_index (propose v label) (fun _done -> deciding v)
    | { Value.node = Pair ({ node = Sym "deciding"; _ }, v); _ } ->
      Machine.invoke pac_index (decide label) (fun temp ->
          if Value.is_bot temp then
            if pid = Dac.distinguished then Value.sym "abort" else proposing v
          else Value.pair (Value.sym "halt", temp))
    | { Value.node = Pair ({ node = Sym "halt"; _ }, v); _ } -> Machine.Decide v
    | { Value.node = Sym "abort"; _ } -> Machine.Abort
    | s -> Machine.bad_state ~machine:name ~pid s
  in
  Machine.make ~name ~init ~delta

let machine ~n : Machine.t =
  if n < 2 then invalid_arg "Dac_from_pac.machine: n must be >= 2";
  machine_via
    ~name:(Fmt.str "%d-DAC-from-%d-PAC" n n)
    ~propose:Pac.propose ~decide:Pac.decide

let specs ~n : Obj_spec.t array = [| Pac.spec ~n () |]

(* (n+1)-DAC among n+1 processes from one O_n object, via its
   (n+1)-PAC facet — the executable content of Observation 5.1(b) plus
   Theorem 4.1 that powers Observation 6.3. *)
let machine_via_o_n ~n : Machine.t =
  machine_via
    ~name:(Fmt.str "%d-DAC-from-O_%d" (n + 1) n)
    ~propose:Pac_nm.propose_p ~decide:Pac_nm.decide_p

let specs_via_o_n ~n : Obj_spec.t array = [| O_n.spec ~n () |]
