open Lbsa_spec
open Lbsa_objects
open Lbsa_runtime

(* k-set agreement protocols — the positive directions of the set
   agreement power computations (Sections 1 and 6).

   - [partition ~m ~k]: k*m processes solve k-set agreement using k
     m-consensus objects: process pid proposes to object pid/m, and each
     group of m agrees on one value, so at most k values are decided.
     This is the protocol behind the closed form n_k(m-consensus) = k*m.
   - [from_sa2 ~procs ~k]: any number of processes solve k-set agreement
     (k >= 2) with one strong 2-SA object (Section 4: "the 2-SA object
     solves the k-set agreement problem among n processes for all k >= 2
     and all n >= 1").
   - [from_nk_sa ~n ~k]: n processes, one (n,k)-SA object.
   - [from_oprime ~power ~k]: n_k processes, one O'_n object through its
     k-th member (the definition of O'_n's set agreement power).      *)

let partition ~m ~k : Machine.t * Obj_spec.t array =
  if m < 1 || k < 1 then invalid_arg "Kset_protocols.partition";
  let name = Fmt.str "%d-set-from-%d-consensus-partition" k m in
  let init ~pid:_ ~input = Value.(pair (sym "proposing", input)) in
  let delta ~pid state =
    match state with
    | { Value.node = Pair ({ node = Sym "proposing"; _ }, v); _ } ->
      let group = pid / m in
      if group >= k then
        invalid_arg
          (Fmt.str "%s: pid %d exceeds %d processes" name pid (k * m));
      Machine.invoke group (Consensus_obj.propose v) (fun r ->
          Value.(pair (sym "halt", r)))
    | { Value.node = Pair ({ node = Sym "halt"; _ }, v); _ } -> Machine.Decide v
    | s -> Machine.bad_state ~machine:name ~pid s
  in
  ( Machine.make ~name ~init ~delta,
    Array.init k (fun _ -> Consensus_obj.spec ~m ()) )

let from_sa2 ~k : Machine.t * Obj_spec.t array =
  if k < 2 then
    invalid_arg "Kset_protocols.from_sa2: the 2-SA object needs k >= 2";
  ( Consensus_protocols.one_shot
      ~name:(Fmt.str "%d-set-from-2-SA" k)
      ~mk_op:Sa2.propose (),
    [| Sa2.spec () |] )

let from_nk_sa ~n ~k : Machine.t * Obj_spec.t array =
  ( Consensus_protocols.one_shot
      ~name:(Fmt.str "%d-set-from-(%d,%d)-SA" k n k)
      ~mk_op:Nk_sa.propose (),
    [| Nk_sa.spec ~n ~k () |] )

let from_oprime ~power ~k : Machine.t * Obj_spec.t array =
  if k < 1 || k > List.length power then
    invalid_arg "Kset_protocols.from_oprime: k outside the power prefix";
  ( Consensus_protocols.one_shot
      ~name:(Fmt.str "%d-set-from-O'_n" k)
      ~mk_op:(fun v -> O_prime.propose v k)
      (),
    [| O_prime.spec ~power () |] )

(* k-set agreement among k*n processes from O_n objects, through the
   n-consensus facet (PROPOSEC) of O_n and the partition protocol: the
   constructive lower bound n_k(O_n) >= k*n used by
   O_prime.default_power. *)
let partition_from_o_n ~n ~k : Machine.t * Obj_spec.t array =
  let name = Fmt.str "%d-set-from-O_%d-partition" k n in
  let init ~pid:_ ~input = Value.(pair (sym "proposing", input)) in
  let delta ~pid state =
    match state with
    | { Value.node = Pair ({ node = Sym "proposing"; _ }, v); _ } ->
      let group = pid / n in
      if group >= k then
        invalid_arg (Fmt.str "%s: pid %d exceeds %d processes" name pid (k * n));
      Machine.invoke group (Pac_nm.propose_c v) (fun r ->
          Value.(pair (sym "halt", r)))
    | { Value.node = Pair ({ node = Sym "halt"; _ }, v); _ } -> Machine.Decide v
    | s -> Machine.bad_state ~machine:name ~pid s
  in
  (Machine.make ~name ~init ~delta, Array.init k (fun _ -> O_n.spec ~n ()))
