open Lbsa_spec
open Lbsa_runtime

(* The k-set agreement task (Chaudhuri): every process decides a proposed
   value, and at most k distinct values are decided. *)

type violation =
  | Too_many_values of Value.t list  (* more than k distinct decisions *)
  | Invalid_decision of Value.t
  | Nontermination

let pp_violation ppf = function
  | Too_many_values vs ->
    Fmt.pf ppf "more than k distinct decisions: %a"
      Fmt.(list ~sep:(any ", ") Value.pp)
      vs
  | Invalid_decision v -> Fmt.pf ppf "invalid decision: %a" Value.pp v
  | Nontermination -> Fmt.string ppf "nontermination (fuel exhausted)"

let distinct_decisions (config : Config.t) =
  Lbsa_util.Listx.sort_uniq Value.compare (Config.decisions config)

let check_k_agreement ~k config =
  let distinct = distinct_decisions config in
  if List.length distinct <= k then Ok () else Error (Too_many_values distinct)

let check_validity ~inputs (config : Config.t) =
  let inputs = Array.to_list inputs in
  match
    List.find_opt
      (fun v -> not (List.exists (Value.equal v) inputs))
      (Config.decisions config)
  with
  | None -> Ok ()
  | Some v -> Error (Invalid_decision v)

let check_safety ~k ~inputs config =
  match check_k_agreement ~k config with
  | Error _ as e -> e
  | Ok () -> check_validity ~inputs config

let check_run ~k ~inputs (result : Executor.result) =
  match result.stop with
  | Executor.Step_limit -> Error Nontermination
  | Executor.All_halted | Executor.Scheduler_stopped ->
    check_safety ~k ~inputs result.final

(* Input vectors where all processes have distinct values — the hardest
   case for k-agreement. *)
let distinct_inputs n = Array.init n (fun pid -> Value.int pid)

(* All input vectors over values {0..d-1} for n processes (d^n of them). *)
let all_inputs ~d n =
  let rec go n =
    if n = 0 then [ [] ]
    else
      List.concat_map
        (fun rest ->
          List.map (fun v -> Value.int v :: rest) (Lbsa_util.Listx.range 0 (d - 1)))
        (go (n - 1))
  in
  List.map Array.of_list (go n)
