open Lbsa_spec
open Lbsa_objects
open Lbsa_runtime

(* Obstruction-free consensus from registers, via iterated commit-adopt
   (Gafni's commit-adopt; Herlihy-Luchangco-Moir obstruction-freedom).

   FLP/Theorem 4.2-style impossibilities say registers cannot solve
   wait-free consensus; this protocol is the classic "life beyond
   wait-freedom" counterpoint: safety is unconditional, and any process
   that ever runs long enough *alone* decides.  The adversary can spin
   it forever (perfect lockstep is a livelock), and the repository's
   model checker exhibits both facts.

   Round r uses two register banks A[r][0..n-1] and B[r][0..n-1]:

     CA_r(v):
       A[r][i] <- v;                collect A[r];
       if every value seen = v then B[r][i] <- (commit, v)
                               else B[r][i] <- (adopt,  v);
       collect B[r];
       if I wrote (commit, v) and every entry seen is (commit, v)
          then COMMIT v
       else if some entry seen is (commit, v') then ADOPT v'
       else ADOPT my v

     loop: (status, v) := CA_r(v); if COMMIT then decide v else r := r+1

   Commit-adopt agreement: if someone commits v at round r, every other
   process leaves round r with v, so round r+1 is unanimous and commits.
   Registers are bounded here only because the harness needs a fixed
   object array; exceeding [max_rounds] raises. *)

exception Out_of_rounds of string

let commit_tag = Value.sym "commit"
let adopt_tag = Value.sym "adopt"

let a_reg ~n ~r pid = (2 * n * (r - 1)) + pid
let b_reg ~n ~r pid = (2 * n * (r - 1)) + n + pid

let machine_with on_exhaust ~n ~max_rounds : Machine.t =
  let name = Fmt.str "of-consensus-%d" n in
  let init ~pid:_ ~input = Value.(list [ sym "a-write"; int 1; input ]) in
  let delta ~pid state =
    match state with
    | {
        Value.node =
          List [ { node = Sym "a-write"; _ }; { node = Int r; _ }; _ ];
        _;
      }
      when r > max_rounds -> (
      (* The register banks ran out.  The protocol itself never
         terminates under perfect lockstep — this bound is the model
         checker's, not the algorithm's — so the caller picks how the
         cut shows up: a loud exception (executor runs, where silence
         would look like termination) or an absorbing self-loop (bounded
         exhaustive exploration, where the spun-out frontier is a
         livelock leaf and the finite graph can actually complete). *)
      match on_exhaust with
      | `Raise ->
        raise
          (Out_of_rounds
             (Fmt.str "obstruction-free consensus exceeded %d rounds"
                max_rounds))
      | `Spin ->
        Machine.invoke
          (a_reg ~n ~r:max_rounds pid)
          Register.read
          (fun _ -> state))
    | {
        Value.node = List [ { node = Sym "a-write"; _ }; { node = Int r; _ }; v ];
        _;
      } ->
      Machine.invoke
        (a_reg ~n ~r pid)
        (Register.write v)
        (fun _ -> Value.(list [ sym "a-collect"; int r; v; list [] ]))
    | {
        Value.node =
          List
            [
              { node = Sym "a-collect"; _ };
              { node = Int r; _ };
              v;
              { node = List partial; _ };
            ];
        _;
      } ->
      let idx = List.length partial in
      Machine.invoke (a_reg ~n ~r idx) Register.read (fun entry ->
          let partial = partial @ [ entry ] in
          if List.length partial < n then
            Value.(list [ sym "a-collect"; int r; v; list partial ])
          else
            let unanimous =
              List.for_all
                (fun e -> Value.is_nil e || Value.equal e v)
                partial
            in
            let tag = if unanimous then commit_tag else adopt_tag in
            Value.(list [ sym "b-write"; int r; tag; v ]))
    | {
        Value.node =
          List [ { node = Sym "b-write"; _ }; { node = Int r; _ }; tag; v ];
        _;
      } ->
      Machine.invoke
        (b_reg ~n ~r pid)
        (Register.write (Value.pair (tag, v)))
        (fun _ -> Value.(list [ sym "b-collect"; int r; tag; v; list [] ]))
    | {
        Value.node =
          List
            [
              { node = Sym "b-collect"; _ };
              { node = Int r; _ };
              tag;
              v;
              { node = List partial; _ };
            ];
        _;
      } ->
      let idx = List.length partial in
      Machine.invoke (b_reg ~n ~r idx) Register.read (fun entry ->
          let partial = partial @ [ entry ] in
          if List.length partial < n then
            Value.(list [ sym "b-collect"; int r; tag; v; list partial ])
          else
            let seen = List.filter (fun e -> not (Value.is_nil e)) partial in
            let all_commit_v =
              Value.equal tag commit_tag
              && List.for_all (Value.equal (Value.pair (commit_tag, v))) seen
            in
            if all_commit_v then Value.(pair (sym "halt", v))
            else
              let adopted =
                match
                  List.find_opt
                    (function
                      | { Value.node = Pair (t, _); _ } ->
                        Value.equal t commit_tag
                      | _ -> false)
                    seen
                with
                | Some { Value.node = Pair (_, v'); _ } -> v'
                | _ -> v
              in
              Value.(list [ sym "a-write"; int (r + 1); adopted ]))
    | { Value.node = Pair ({ node = Sym "halt"; _ }, v); _ } -> Machine.Decide v
    | s -> Machine.bad_state ~machine:name ~pid s
  in
  Machine.make ~name ~init ~delta

let machine ~n ~max_rounds = machine_with `Raise ~n ~max_rounds
let machine_spin ~n ~max_rounds = machine_with `Spin ~n ~max_rounds

let specs ~n ~max_rounds : Obj_spec.t array =
  Array.init (2 * n * max_rounds) (fun _ -> Register.spec ())
