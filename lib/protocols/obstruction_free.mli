(** Obstruction-free consensus from registers (iterated commit-adopt):
    unconditionally safe, decides whenever a process runs a whole round
    alone, livelocks under perfect lockstep — the classic counterpoint
    to the wait-free impossibilities the paper's proofs rely on. *)

open Lbsa_spec
open Lbsa_runtime

exception Out_of_rounds of string
(** The bounded register banks ran out ([max_rounds] exceeded). *)

val machine : n:int -> max_rounds:int -> Machine.t
(** Raises {!Out_of_rounds} from [delta] once a round counter passes
    [max_rounds] — a cut imposed by the bounded register banks, not by
    the algorithm, which can livelock forever.  The loud failure is
    right for executor runs, where silence would look like
    termination. *)

val machine_spin : n:int -> max_rounds:int -> Machine.t
(** Same protocol, but a spun-out state becomes an absorbing self-loop —
    a livelock leaf — instead of raising, so the bounded state space is
    a finite graph and an exhaustive exploration can complete.  Safety
    is unaffected (spun-out processes never decide); this is the
    machine behind `lbsa explore of:<n>:<rounds>`. *)

val specs : n:int -> max_rounds:int -> Obj_spec.t array
