open Lbsa_spec
open Lbsa_objects
open Lbsa_runtime

(* Safe agreement (Borowsky-Gafni 1993) — the building block of the BG
   simulation behind the set-consensus hierarchy results the paper cites
   ([2], [6]).  It is consensus with conditional termination: agreement
   and validity always hold, and every process decides provided no
   process stops inside its (two-step) unsafe zone.

   Implementation from one n-component atomic snapshot whose component i
   holds Pair(value_i, level_i), level ∈ {NIL, 0, 1, 2}:

     propose(v):                       (unsafe zone: steps 1-3)
       1. update(i, (v, 1))
       2. s <- scan
       3. if some level in s is 2 then update(i, (v, 0))
          else update(i, (v, 2))
       4. repeat s <- scan until no level in s is 1
       5. decide value of the smallest-id component at level 2

   Agreement: consider the first clean scan (no level 1).  The set W of
   level-2 components is non-empty then (the first process to finish
   step 3 either saw a 2 or installed one), and it can never grow: any
   later proposer's step-2 scan sees a member of W and backs off to 0.
   All deciders therefore read the same W and decide the same minimum.

   This object shows the *conditional* side of the hierarchy: it is
   built solely from level-1 objects (a snapshot), solves consensus
   among any n processes in crash-free fair runs, and escapes FLP only
   because termination is conditional — a crash in the unsafe zone
   blocks everyone else forever. *)

let snapshot_index = 0

let level_nil = Value.nil

let comp ~v ~level = Value.pair (v, level)

let level_of = function
  | { Value.node = Pair (_, l); _ } -> l
  | { Value.node = Nil; _ } -> level_nil
  | c -> invalid_arg (Fmt.str "Safe_agreement: bad component %a" Value.pp c)

let value_of = function
  | { Value.node = Pair (v, _); _ } -> v
  | c -> invalid_arg (Fmt.str "Safe_agreement: bad component %a" Value.pp c)

let levels scan = List.map level_of (Value.to_list_exn scan)

let some_level_2 scan =
  List.exists (Value.equal (Value.int 2)) (levels scan)

let some_level_1 scan =
  List.exists (Value.equal (Value.int 1)) (levels scan)

let decision_of scan =
  (* Value of the smallest-id component at level 2. *)
  let rec go i = function
    | [] -> invalid_arg "Safe_agreement.decision_of: no level-2 component"
    | c :: rest ->
      if Value.equal (level_of c) (Value.int 2) then value_of c
      else go (i + 1) rest
  in
  go 0 (Value.to_list_exn scan)

let machine ~n : Machine.t =
  let name = Fmt.str "safe-agreement-%d" n in
  ignore n;
  let init ~pid:_ ~input = Value.(pair (sym "enter", input)) in
  let delta ~pid state =
    match state with
    | { Value.node = Pair ({ node = Sym "enter"; _ }, v); _ } ->
      Machine.invoke snapshot_index
        (Classic.Snapshot.update pid (comp ~v ~level:(Value.int 1)))
        (fun _ -> Value.(pair (sym "look", v)))
    | { Value.node = Pair ({ node = Sym "look"; _ }, v); _ } ->
      Machine.invoke snapshot_index Classic.Snapshot.scan (fun s ->
          let level = if some_level_2 s then Value.int 0 else Value.int 2 in
          Value.(pair (sym "commit", pair (v, level))))
    | {
        Value.node =
          Pair ({ node = Sym "commit"; _ }, { node = Pair (v, level); _ });
        _;
      } ->
      Machine.invoke snapshot_index
        (Classic.Snapshot.update pid (comp ~v ~level))
        (fun _ -> Value.sym "wait")
    | { Value.node = Sym "wait"; _ } ->
      Machine.invoke snapshot_index Classic.Snapshot.scan (fun s ->
          if some_level_1 s then Value.sym "wait"
          else Value.pair (Value.sym "halt", decision_of s))
    | { Value.node = Pair ({ node = Sym "halt"; _ }, v); _ } -> Machine.Decide v
    | s -> Machine.bad_state ~machine:name ~pid s
  in
  Machine.make ~name ~init ~delta

let specs ~n : Obj_spec.t array = [| Classic.Snapshot.spec ~m:n () |]

(* A process is in its unsafe zone while its own component is at
   level 1 (it has entered but not yet committed or backed off). *)
let in_unsafe_zone (config : Config.t) pid =
  match config.Config.objects.(snapshot_index) with
  | { Value.node = List comps; _ } ->
    Value.equal (level_of (List.nth comps pid)) (Value.int 1)
  | _ -> false
