open Lbsa_spec
open Lbsa_runtime

(* Message-passing demo protocols for the [mp] substrate.

   [machine ~n] is a deliberately minimal view-change protocol with a
   genuine liveness bug — the split-vote lock class of bug TLC found in
   dBFT 2.0 (nodes locked on different views can never assemble a
   quorum; see ROADMAP.md).  All communication goes through the
   substrate's network object (the single shared object, at index 0):

   - process 0 is the view-0 leader: it broadcasts an [e0] echo and
     waits for a quorum of n [e0]s, then decides view 0;
   - every other process probes for an [e0] with a timeout.  If one
     arrives it adopts view 0 — echoes [e0] itself and waits for the
     quorum like the leader.  If the adversary times it out first, it
     moves to view 1: broadcasts [e1] and waits (with no further
     timeout — it is locked on view 1) for a quorum of n [e1]s, then
     decides view 1.

   Safety is trivial (a quorum of n for [ev] requires every process to
   echo [ev], so the two quorums are mutually exclusive), but liveness
   fails: once any process times out into view 1 while the leader is
   locked on view 0, neither quorum can ever form — every sent message
   is delivered, all counters drain, and the survivors poll forever.
   That terminal polling loop is a fair SCC (delay self-steps only, no
   mandatory network progress anywhere), and the liveness analysis
   finds it and renders the (prefix, cycle) lasso.  The timeout is an
   always-enabled adversary branch, so the livelock coexists in the
   same graph with the happy path where every probe delivers and all
   processes decide view 0.

   [bcast ~n] is the positive control: everyone broadcasts one [e] and
   decides after collecting n of them.  Every pre-decision
   configuration keeps a delivery or a send enabled (mandatory network
   progress), so no fair cycle exists and the verdict is Live. *)

let types = [ "e0"; "e1" ]

let net = 0 (* the network object's index in [specs] *)

let s_start = Value.sym "S"
let s_wait0 = Value.sym "W0"
let s_dec0 = Value.sym "D0"
let s_probe = Value.sym "P"
let s_adopt = Value.sym "A"
let s_view1 = Value.sym "V"
let s_wait1 = Value.sym "W1"
let s_dec1 = Value.sym "D1"

(* Wait for the [ev] quorum: poll until the delivery count reaches n. *)
let wait_step ~n ~pid ev ~waiting ~decided =
  Machine.invoke net
    (Substrate.recv ~pid [ ev ])
    (fun r ->
      match Value.node r with
      | Value.Pair (_, cnt) when Value.to_int_exn cnt >= n -> decided
      | _ -> waiting)

let machine ~n =
  if n < 2 then invalid_arg "View_change.machine: n < 2";
  Machine.make
    ~name:(Fmt.str "vc:%d" n)
    ~init:(fun ~pid ~input:_ -> if pid = 0 then s_start else s_probe)
    ~delta:(fun ~pid st ->
      match Value.node st with
      | Value.Sym "S" ->
        Machine.invoke net (Substrate.send "e0") (fun _ -> s_wait0)
      | Value.Sym "W0" -> wait_step ~n ~pid "e0" ~waiting:s_wait0 ~decided:s_dec0
      | Value.Sym "D0" -> Machine.Decide (Value.int 0)
      | Value.Sym "P" ->
        Machine.invoke net
          (Substrate.recv ~pid ~timeout:true [ "e0" ])
          (fun r ->
            match Value.node r with
            | Value.Pair _ -> s_adopt (* an e0 arrived: adopt view 0 *)
            | Value.Sym _ -> s_view1 (* timed out: move to view 1 *)
            | _ -> s_probe (* delayed: probe again *))
      | Value.Sym "A" ->
        Machine.invoke net (Substrate.send "e0") (fun _ -> s_wait0)
      | Value.Sym "V" ->
        Machine.invoke net (Substrate.send "e1") (fun _ -> s_wait1)
      | Value.Sym "W1" -> wait_step ~n ~pid "e1" ~waiting:s_wait1 ~decided:s_dec1
      | Value.Sym "D1" -> Machine.Decide (Value.int 1)
      | _ -> Machine.bad_state ~machine:"view-change" ~pid st)

let specs ?byz ~n () = [| Substrate.network_spec ?byz ~n ~types () |]

let inputs ~n = Array.make n Value.unit_

(* --- the live positive control ----------------------------------------- *)

let bcast_types = [ "e" ]

let b_start = Value.sym "S"
let b_wait = Value.sym "W"
let b_dec = Value.sym "D"

let bcast_machine ~n =
  if n < 1 then invalid_arg "View_change.bcast_machine: n < 1";
  Machine.make
    ~name:(Fmt.str "bcast:%d" n)
    ~init:(fun ~pid:_ ~input:_ -> b_start)
    ~delta:(fun ~pid st ->
      match Value.node st with
      | Value.Sym "S" ->
        Machine.invoke net (Substrate.send "e") (fun _ -> b_wait)
      | Value.Sym "W" -> wait_step ~n ~pid "e" ~waiting:b_wait ~decided:b_dec
      | Value.Sym "D" -> Machine.Decide (Value.int n)
      | _ -> Machine.bad_state ~machine:"bcast" ~pid st)

let bcast_specs ?byz ~n () =
  [| Substrate.network_spec ?byz ~n ~types:bcast_types () |]
