(** Message-passing demo protocols for {!Lbsa_runtime.Substrate.mp}.

    [machine ~n] is a minimal view-change protocol with a deliberate
    split-vote livelock: process 0 broadcasts an [e0] echo and waits
    for a quorum of [n]; every other process probes for an [e0] with an
    adversary-controlled timeout, echoing [e0] on delivery or locking
    onto view 1 (broadcast [e1], wait for [n] of them) on timeout.
    Safety holds on every schedule, but once any process times out the
    two views split the echoes and neither quorum can form — the
    survivors poll forever, which the fair-cycle analysis reports as a
    livelock lasso.  [bcast_machine ~n] is the positive control that the
    analysis proves Live.  See the implementation header for the full
    argument. *)

open Lbsa_spec
open Lbsa_runtime

val types : string list
(** Message alphabet of the view-change protocol: [["e0"; "e1"]]. *)

val machine : n:int -> Machine.t
(** The view-change protocol for [n >= 2] processes (quorum [n]). *)

val specs : ?byz:int -> n:int -> unit -> Obj_spec.t array
(** The single shared object: the substrate's network (index 0). *)

val inputs : n:int -> Value.t array
(** Unit inputs — the protocol is input-free. *)

val bcast_machine : n:int -> Machine.t
(** Everyone broadcasts one [e] and decides after collecting [n]. *)

val bcast_specs : ?byz:int -> n:int -> unit -> Obj_spec.t array
