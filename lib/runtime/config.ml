open Lbsa_spec

(* Global configurations: the joint state of all processes and all shared
   objects, plus per-process statuses.  This is the "configuration" of
   the paper's bivalency proofs, made concrete and comparable. *)

type status =
  | Running
  | Decided of Value.t
  | Aborted
  | Crashed

type t = {
  locals : Value.t array;
  objects : Value.t array;
  status : status array;
}

let compare_status a b =
  match (a, b) with
  | Running, Running -> 0
  | Running, _ -> -1
  | _, Running -> 1
  | Decided x, Decided y -> Value.compare x y
  | Decided _, _ -> -1
  | _, Decided _ -> 1
  | Aborted, Aborted -> 0
  | Aborted, _ -> -1
  | _, Aborted -> 1
  | Crashed, Crashed -> 0

let compare a b =
  let arr cmp x y =
    let c = Stdlib.compare (Array.length x) (Array.length y) in
    if c <> 0 then c
    else
      let rec go i =
        if i >= Array.length x then 0
        else
          let c = cmp x.(i) y.(i) in
          if c <> 0 then c else go (i + 1)
      in
      go 0
  in
  let c = arr Value.compare a.locals b.locals in
  if c <> 0 then c
  else
    let c = arr Value.compare a.objects b.objects in
    if c <> 0 then c else arr compare_status a.status b.status

let status_equal a b =
  match (a, b) with
  | Running, Running | Aborted, Aborted | Crashed, Crashed -> true
  | Decided x, Decided y -> Value.equal x y
  | (Running | Decided _ | Aborted | Crashed), _ -> false

(* Values are hash-consed, so [Value.equal] is pointer equality: the
   frequent equal-confirm of dedup tables is a per-element pointer scan,
   O(#processes), never a tree walk — even for configurations built by
   different parents that share nothing physically at the array level. *)
let equal a b =
  a == b
  ||
  let arr_eq eq x y =
    x == y
    || Array.length x = Array.length y
       &&
       let rec go i = i >= Array.length x || (eq x.(i) y.(i) && go (i + 1)) in
       go 0
  in
  arr_eq Value.equal a.locals b.locals
  && arr_eq Value.equal a.objects b.objects
  && arr_eq status_equal a.status b.status

(* Element-wise hash: every local, object state and status contributes in
   full — but [Value.hash_fold] reads each element's cached structural
   hash, so the whole fold is O(#processes), independent of value-tree
   size.  The hashes mixed here are structural, never intern ids, so the
   result is identical across processes and construction orders (the
   explorer's determinism depends on this). *)
let hash t =
  let comb = Value.hash_combine in
  let fold_status acc = function
    | Running -> comb acc 29
    | Decided v -> Value.hash_fold (comb acc 31) v
    | Aborted -> comb acc 37
    | Crashed -> comb acc 41
  in
  let acc = Array.fold_left Value.hash_fold 0x811c9dc5 t.locals in
  let acc = comb acc 43 in
  let acc = Array.fold_left Value.hash_fold acc t.objects in
  let acc = comb acc 47 in
  Array.fold_left fold_status acc t.status land max_int

let n_processes t = Array.length t.locals

let initial ~(machine : Machine.t) ~(specs : Obj_spec.t array) ~inputs =
  let n = Array.length inputs in
  {
    locals = Array.init n (fun pid -> machine.init ~pid ~input:inputs.(pid));
    objects = Array.map (fun (s : Obj_spec.t) -> s.initial) specs;
    status = Array.make n Running;
  }

let is_running t pid = t.status.(pid) = Running

let running t =
  List.filter (is_running t) (Lbsa_util.Listx.range 0 (n_processes t - 1))

let decision t pid =
  match t.status.(pid) with
  | Decided v -> Some v
  | Running | Aborted | Crashed -> None

let decisions t =
  Array.to_list t.status
  |> List.filter_map (function
       | Decided v -> Some v
       | Running | Aborted | Crashed -> None)

let all_halted t = running t = []

let crash t pid =
  let status = Array.copy t.status in
  status.(pid) <- Crashed;
  { t with status }

(* Apply a process/object permutation: process [pid] of the image is the
   old process [proc.(pid)], and object [i] of the image is the old
   object [obj.(i)] with [rename_obj] applied to its state.  Taking the
   permutations "source-indexed" this way keeps the hot loop a plain
   [Array.init].  Used by [Canon] to enumerate the orbit of a
   configuration under a symmetry group of the protocol. *)
let permute ?obj ?rename_obj ~proc t =
  if Array.length proc <> Array.length t.locals then
    invalid_arg "Config.permute: proc permutation has wrong length";
  let locals = Array.init (Array.length t.locals) (fun i -> t.locals.(proc.(i)))
  and status = Array.init (Array.length t.status) (fun i -> t.status.(proc.(i)))
  and objects =
    match obj with
    | None -> (
      match rename_obj with
      | None -> t.objects
      | Some f -> Array.mapi f t.objects)
    | Some obj ->
      if Array.length obj <> Array.length t.objects then
        invalid_arg "Config.permute: obj permutation has wrong length";
      let f = match rename_obj with None -> fun _ s -> s | Some f -> f in
      Array.init (Array.length t.objects) (fun i -> f obj.(i) t.objects.(obj.(i)))
  in
  { locals; objects; status }

(* The outcome of one step of process [pid]: what happened, for traces
   and property checkers. *)
type event =
  | Op_event of { pid : int; obj : int; op : Op.t; response : Value.t }
  | Decide_event of { pid : int; value : Value.t }
  | Abort_event of { pid : int }

(* All successor configurations of letting [pid] take its next step,
   one per nondeterministic object branch. *)
let step_branches ~(machine : Machine.t) ~(specs : Obj_spec.t array) t pid :
    (t * event) list =
  if not (is_running t pid) then
    invalid_arg (Fmt.str "Config.step_branches: process %d is not running" pid);
  match machine.delta ~pid t.locals.(pid) with
  | Machine.Decide v ->
    let status = Array.copy t.status in
    status.(pid) <- Decided v;
    [ ({ t with status }, Decide_event { pid; value = v }) ]
  | Machine.Abort ->
    let status = Array.copy t.status in
    status.(pid) <- Aborted;
    [ ({ t with status }, Abort_event { pid }) ]
  | Machine.Invoke { obj; op; resume } ->
    if obj < 0 || obj >= Array.length specs then
      invalid_arg (Fmt.str "Config.step_branches: no object %d" obj);
    Obj_spec.branches specs.(obj) t.objects.(obj) op
    |> List.map (fun (b : Obj_spec.branch) ->
           let locals = Array.copy t.locals in
           locals.(pid) <- resume b.response;
           let objects = Array.copy t.objects in
           objects.(obj) <- b.next;
           ( { t with locals; objects },
             Op_event { pid; obj; op; response = b.response } ))

(* Take a step resolving object nondeterminism with [choice]. *)
let step ~machine ~specs ~choice t pid =
  match step_branches ~machine ~specs t pid with
  | [ b ] -> b
  | bs ->
    let i = choice (List.map fst bs) in
    if i < 0 || i >= List.length bs then
      invalid_arg "Config.step: choice out of range";
    List.nth bs i

let pp_status ppf = function
  | Running -> Fmt.string ppf "running"
  | Decided v -> Fmt.pf ppf "decided %a" Value.pp v
  | Aborted -> Fmt.string ppf "aborted"
  | Crashed -> Fmt.string ppf "crashed"

let pp ppf t =
  Fmt.pf ppf "@[<v>";
  Array.iteri
    (fun pid local ->
      Fmt.pf ppf "p%d: %a [%a]@," pid Value.pp local pp_status t.status.(pid))
    t.locals;
  Array.iteri (fun i st -> Fmt.pf ppf "obj%d: %a@," i Value.pp st) t.objects;
  Fmt.pf ppf "@]"
