(** Global configurations: the joint state of all processes and objects —
    the "configuration" of the paper's bivalency proofs, made concrete
    and comparable. *)

open Lbsa_spec

type status =
  | Running
  | Decided of Value.t
  | Aborted
  | Crashed

type t = {
  locals : Value.t array;
  objects : Value.t array;
  status : status array;
}

val compare : t -> t -> int
val equal : t -> t -> bool

val hash : t -> int
(** Element-wise hash of the full configuration (every local, object
    state and status contributes) — safe to key large dedup tables on. *)

val n_processes : t -> int

val initial :
  machine:Machine.t -> specs:Obj_spec.t array -> inputs:Value.t array -> t
(** The initial configuration for [inputs.(pid)] per process. *)

val is_running : t -> int -> bool
val running : t -> int list
val decision : t -> int -> Value.t option
val decisions : t -> Value.t list
val all_halted : t -> bool

val crash : t -> int -> t
(** Mark a process crashed; it is never scheduled again. *)

val permute :
  ?obj:int array -> ?rename_obj:(int -> Value.t -> Value.t) -> proc:int array -> t -> t
(** [permute ~proc ?obj ?rename_obj t] is the image of [t] under a
    process (and optionally object) permutation: process [i] of the
    image carries the local state and status of old process [proc.(i)],
    and object [i] carries the state of old object [obj.(i)] (identity
    if [obj] is absent), transformed by [rename_obj old_index state]
    when given — the hook a symmetry uses to rewrite process identities
    {e inside} object states (e.g. PAC labels).  Statuses and locals are
    moved verbatim, never renamed.  Raises [Invalid_argument] on length
    mismatch. *)

type event =
  | Op_event of { pid : int; obj : int; op : Op.t; response : Value.t }
  | Decide_event of { pid : int; value : Value.t }
  | Abort_event of { pid : int }

val step_branches :
  machine:Machine.t -> specs:Obj_spec.t array -> t -> int -> (t * event) list
(** All successors of letting process [pid] take its next atomic step —
    one per nondeterministic object branch (singleton for deterministic
    objects).  Raises if [pid] is not running. *)

val step :
  machine:Machine.t ->
  specs:Obj_spec.t array ->
  choice:(t list -> int) ->
  t ->
  int ->
  t * event
(** One step, resolving object nondeterminism with [choice]. *)

val pp_status : Format.formatter -> status -> unit
val pp : Format.formatter -> t -> unit
