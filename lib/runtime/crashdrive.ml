(* Spawn/wait plumbing for the crash-recovery harness.  See the .mli
   for the contract; the only subtlety below is capturing output
   through temp files rather than pipes — a child that SIGKILLs itself
   mid-write must never deadlock the harness on a full pipe, and a temp
   file preserves whatever the child managed to flush before dying. *)

type outcome = {
  status : Unix.process_status;
  out : string;
  err : string;
}

type child = {
  c_pid : int;
  c_out : string; (* temp file path *)
  c_err : string;
}

let pid c = c.c_pid

let temp prefix = Filename.temp_file prefix ".log"

let env_assoc () =
  Array.to_list (Unix.environment ())
  |> List.filter_map (fun kv ->
         match String.index_opt kv '=' with
         | Some i ->
           Some
             (String.sub kv 0 i, String.sub kv (i + 1) (String.length kv - i - 1))
         | None -> None)

let spawn ?(env = []) ~exe ~args () =
  let out_file = temp "lbsa-crash-out" in
  let err_file = temp "lbsa-crash-err" in
  (* child-provided entries override the parent's *)
  let merged =
    env
    @ List.filter (fun (k, _) -> not (List.mem_assoc k env)) (env_assoc ())
  in
  let envp =
    Array.of_list (List.map (fun (k, v) -> k ^ "=" ^ v) merged)
  in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let fd_out =
    Unix.openfile out_file [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600
  in
  let fd_err =
    Unix.openfile err_file [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        [ devnull; fd_out; fd_err ])
    (fun () ->
      let c_pid =
        Unix.create_process_env exe
          (Array.of_list (exe :: args))
          envp devnull fd_out fd_err
      in
      { c_pid; c_out = out_file; c_err = err_file })

let slurp file =
  match open_in_bin file with
  | exception Sys_error _ -> ""
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))

let wait c =
  let rec await () =
    match Unix.waitpid [] c.c_pid with
    | _, status -> status
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> await ()
  in
  let status = await () in
  let out = slurp c.c_out in
  let err = slurp c.c_err in
  List.iter
    (fun f -> try Sys.remove f with Sys_error _ -> ())
    [ c.c_out; c.c_err ];
  { status; out; err }

let run ?env ~exe ~args () = wait (spawn ?env ~exe ~args ())

let killed_by o signum =
  match o.status with Unix.WSIGNALED s -> s = signum | _ -> false

let exited o = match o.status with Unix.WEXITED c -> Some c | _ -> None
