(** Subprocess driver for crash-recovery harnesses: spawn a real child
    process (typically the [lbsa] CLI with an [LBSA_IO_CRASH] crash
    point armed in its environment), capture its stdout/stderr, and
    classify how it died.

    The harness contract this supports: run a child that SIGKILLs
    itself at an injected crash point mid-commit, then re-run (resume
    or fresh) and assert the observable output is byte-identical to an
    uncrashed baseline — or that the child refused cleanly with the
    partial exit code.  Everything here is plain [Unix.create_process]
    plumbing; no shell is involved, so arguments need no quoting. *)

type outcome = {
  status : Unix.process_status;
  out : string;  (** complete stdout of the child *)
  err : string;  (** complete stderr of the child *)
}

type child

val spawn :
  ?env:(string * string) list -> exe:string -> args:string list -> unit -> child
(** Start [exe] with [args] (argv[0] is supplied automatically).  [env]
    entries extend (and override) the parent environment — pass e.g.
    [("LBSA_IO_CRASH", "checkpoint.save:3")] to arm a crash point.
    stdout and stderr are redirected to temp files collected by
    {!wait}; stdin is /dev/null. *)

val pid : child -> int

val wait : child -> outcome
(** Block until the child exits and return its status and captured
    output.  Idempotent per child only in the sense that it must be
    called exactly once; the temp files are removed here. *)

val run :
  ?env:(string * string) list -> exe:string -> args:string list -> unit ->
  outcome
(** [spawn] + [wait]. *)

val killed_by : outcome -> int -> bool
(** [killed_by o signum] — did the child die from [signum] (e.g.
    [Sys.sigkill] for a crash point that fired)? *)

val exited : outcome -> int option
(** [Some code] on a normal exit, [None] if signalled/stopped. *)
