(* Structured crash injection.

   In the asynchronous model a crash is indistinguishable from never
   being scheduled again, so crashes are implemented as scheduler
   surgery: a plan says after how many of its own steps each victim
   stops.  [apply plan scheduler] yields a scheduler that follows the
   base scheduler but silently removes each victim once its budget is
   exhausted. *)

type plan = (int * int) list
(* (pid, steps_before_crash): pid takes exactly that many steps, then
   crashes.  Processes not listed never crash. *)

let pp_plan ppf plan =
  Fmt.pf ppf "[%a]"
    Fmt.(
      list ~sep:(any "; ") (fun ppf (pid, steps) ->
          Fmt.pf ppf "p%d after %d" pid steps))
    plan

let apply (plan : plan) (base : Scheduler.t) : Scheduler.t =
  let taken = Hashtbl.create 8 in
  let crashed pid =
    match List.assoc_opt pid plan with
    | None -> false
    | Some budget -> Option.value (Hashtbl.find_opt taken pid) ~default:0 >= budget
  in
  let next ~step ~runnable =
    (* A run always starts at step 0, so reset the per-run budgets there:
       the same scheduler value can then drive several runs without the
       second run starting with budgets already spent and victims
       pre-crashed. *)
    if step = 0 then Hashtbl.reset taken;
    let runnable = List.filter (fun pid -> not (crashed pid)) runnable in
    match base.Scheduler.next ~step ~runnable with
    | None -> None
    | Some pid ->
      Hashtbl.replace taken pid
        (Option.value (Hashtbl.find_opt taken pid) ~default:0 + 1);
      Some pid
  in
  Scheduler.make ~name:(Fmt.str "%s+crash%a" base.Scheduler.name pp_plan plan) next

(* All crash plans over n processes where each victim in [victims]
   crashes after at most [max_steps] of its own steps — used for
   fault-injection sweeps. *)
let enumerate ~victims ~max_steps : plan list =
  let rec go = function
    | [] -> [ [] ]
    | pid :: rest ->
      let tails = go rest in
      List.concat_map
        (fun tail ->
          [] :: List.map (fun s -> [ (pid, s) ]) (Lbsa_util.Listx.range 0 max_steps)
          |> List.map (fun choice -> choice @ tail))
        tails
  in
  go victims

(* Random crash plan: each victim crashes with probability 1/2 after a
   uniform number of its own steps. *)
let random ~prng ~victims ~max_steps : plan =
  List.filter_map
    (fun pid ->
      if Lbsa_util.Prng.bool prng then
        Some (pid, Lbsa_util.Prng.int prng (max_steps + 1))
      else None)
    victims
