(** Structured crash injection: a crash is scheduler surgery (the victim
    is never scheduled again after its step budget). *)

type plan = (int * int) list
(** [(pid, steps_before_crash)] pairs; unlisted processes never crash. *)

val pp_plan : Format.formatter -> plan -> unit

val apply : plan -> Scheduler.t -> Scheduler.t
(** Follow the base scheduler, removing each victim once its budget is
    exhausted.  Per-run state (step budgets) resets whenever a run
    starts (step 0), so the scheduler value is safe to reuse across
    runs. *)

val enumerate : victims:int list -> max_steps:int -> plan list
(** All plans where each victim either survives or crashes after at most
    [max_steps] of its own steps. *)

val random : prng:Lbsa_util.Prng.t -> victims:int list -> max_steps:int -> plan
