(* Schedulers: adversaries that pick which running process takes the next
   atomic step.  A scheduler sees the step index and the set of running
   processes; returning [None] ends the run (e.g. a solo scheduler whose
   process has halted). *)

type t = {
  name : string;
  next : step:int -> runnable:int list -> int option;
}

let make ~name next = { name; next }

let round_robin ~n =
  let next ~step ~runnable =
    match runnable with
    | [] -> None
    | _ ->
      (* Scan from (step mod n) for the next runnable pid, so halted
         processes don't stall the rotation. *)
      let start = step mod n in
      let rec find k =
        if k >= n then None
        else
          let pid = (start + k) mod n in
          if List.mem pid runnable then Some pid else find (k + 1)
      in
      find 0
  in
  make ~name:"round-robin" next

let random ~seed =
  (* The PRNG is per-run state: re-seed at step 0 so that reusing the
     scheduler value for a second run replays the same seed-determined
     schedule instead of silently continuing the exhausted stream. *)
  let prng = ref (Lbsa_util.Prng.create seed) in
  let next ~step ~runnable =
    if step = 0 then prng := Lbsa_util.Prng.create seed;
    match runnable with
    | [] -> None
    | _ -> Some (Lbsa_util.Prng.pick !prng runnable)
  in
  make ~name:(Fmt.str "random:%d" seed) next

let solo pid =
  let next ~step:_ ~runnable =
    if List.mem pid runnable then Some pid else None
  in
  make ~name:(Fmt.str "solo:p%d" pid) next

(* Run a fixed finite schedule, then stop. *)
let fixed pids =
  let arr = Array.of_list pids in
  let next ~step ~runnable =
    if step >= Array.length arr then None
    else
      let pid = arr.(step) in
      if List.mem pid runnable then Some pid else None
  in
  make ~name:"fixed" next

(* Run a fixed prefix, then continue with another scheduler. *)
let prefix pids continue =
  let arr = Array.of_list pids in
  let next ~step ~runnable =
    if step < Array.length arr then
      let pid = arr.(step) in
      if List.mem pid runnable then Some pid else None
    else continue.next ~step:(step - Array.length arr) ~runnable
  in
  make ~name:(Fmt.str "prefix->%s" continue.name) next

(* Exclude a set of processes (they behave as crashed from the
   scheduler's point of view). *)
let excluding dead sched =
  let next ~step ~runnable =
    let runnable = List.filter (fun pid -> not (List.mem pid dead)) runnable in
    sched.next ~step ~runnable
  in
  make ~name:(Fmt.str "%s\\dead" sched.name) next

(* A scheduler biased to starve [victim]: it schedules the victim only
   when no other process is runnable.  This is the classic unfair
   adversary used to exercise solo-termination properties. *)
let starving victim sched =
  let next ~step ~runnable =
    let others = List.filter (fun pid -> pid <> victim) runnable in
    match others with
    | [] -> if List.mem victim runnable then Some victim else None
    | _ -> sched.next ~step ~runnable:others
  in
  make ~name:(Fmt.str "starve:p%d" victim) next
