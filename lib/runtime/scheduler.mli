(** Schedulers: adversaries choosing which running process takes the next
    atomic step.  Returning [None] ends the run. *)

type t = {
  name : string;
  next : step:int -> runnable:int list -> int option;
}

val make : name:string -> (step:int -> runnable:int list -> int option) -> t

val round_robin : n:int -> t
(** Fair rotation over [n] processes, skipping halted ones. *)

val random : seed:int -> t
(** Uniform choice among runnable processes; reproducible from [seed].
    The PRNG re-seeds at step 0, so reusing the scheduler for a second
    run replays the same schedule rather than continuing the stream. *)

val solo : int -> t
(** Only the given process runs ("solo runs" of the paper). *)

val fixed : int list -> t
(** Play exactly this finite schedule, then stop. *)

val prefix : int list -> t -> t
(** Play the finite prefix, then hand over to the given scheduler. *)

val excluding : int list -> t -> t
(** Treat the listed processes as crashed. *)

val starving : int -> t -> t
(** Starve the given process: schedule it only when nobody else can
    run. *)
