open Lbsa_spec

(* Pluggable execution substrates: the communication-and-fault model of
   a protocol instance, extracted behind one record so the explorer,
   valence pass, solvability checkers and liveness analysis are all
   generic in it.

   The original model — crash-fault asynchronous shared memory, exactly
   the paper's — is the [shm] instance and delegates verbatim to
   [Config]; selecting it reproduces the pre-refactor explorer
   bit-for-bit (node ids, edge order, fingerprints).

   The [mp] instance is asynchronous message passing with an
   adversarial network: sends and receives are operations on one extra
   linearizable "network" object (always the *last* object of the spec
   array — the convention every mp machine follows), and the adversary
   controls delivery by choosing among the object's nondeterministic
   branches.  The network state is kept finite with threshold-guard
   delivery counters in the style of the aba_asyn_byz TLA+ models
   (SNIPPETS.md): a global send counter [nSnt.(t)] per message type and
   a per-process receive counter [nRcvd.(p).(t)], with delivery of type
   [t] to [p] enabled while [nRcvd.(p).(t) < nSnt.(t) + byz].  The
   abstraction collapses sender identity and message payloads beyond
   the (finite) type alphabet, so:

   - delayed delivery is the always-enabled "delay" branch (state
     unchanged, response ⊥ — the receiver polls again);
   - dropped messages are unbounded delay: under the fairness
     constraint below a sent message is eventually delivered, so a
     permanent drop is exactly an inadmissible schedule;
   - duplicated delivery is absorbed by the counters (a receiver
     counts deliveries, never message instances);
   - Byzantine faults ([byz] > 0, flag-gated) are message corruption
     over the finite type alphabet: up to [byz] phantom messages of
     each type may be delivered to each receiver beyond what was sent
     — the standard +f guard slack of the threshold-automata models.

   Crash faults are substrate-independent scheduler surgery
   ([Config.crash] / [Fault]); both instances share it.

   Fairness.  Each substrate declares which enabled actions an
   admissible infinite schedule must eventually take (strong fairness
   over these actions); [mandatory_exit] is that declaration, consumed
   by the liveness analysis: a strongly connected component of the
   configuration graph is a *fair* cycle only if no configuration in it
   enables a mandatory action.  For [shm] the mandatory actions are the
   poised decide/abort commits (a process that can decide eventually
   does).  For [mp] they are additionally the network-progress steps:
   any send or guarded delivery that changes the network state.
   Soundness of using these as SCC exits: network counters are
   monotone, so a counter-changing step can never return to an earlier
   configuration — such a step always leaves the component. *)

type t = {
  sname : string;
      (* user-facing name; recorded in checkpoints and cache keys *)
  initial :
    machine:Machine.t ->
    specs:Obj_spec.t array ->
    inputs:Value.t array ->
    Config.t;
  step_branches :
    machine:Machine.t ->
    specs:Obj_spec.t array ->
    Config.t ->
    int ->
    (Config.t * Config.event) list;
  crash : Config.t -> int -> Config.t;
  mandatory_exit :
    machine:Machine.t -> specs:Obj_spec.t array -> Config.t -> int -> bool;
}

let name t = t.sname

(* A poised decide/abort is mandatory under every substrate: statuses
   are absorbing, so committing one always leaves the current SCC, and
   strong fairness on commits says a process that can halt eventually
   does. *)
let commit_mandatory ~machine config pid =
  Config.is_running config pid
  &&
  match machine.Machine.delta ~pid config.Config.locals.(pid) with
  | Machine.Decide _ | Machine.Abort -> true
  | Machine.Invoke _ -> false

let shm =
  {
    sname = "shm";
    initial = Config.initial;
    step_branches = (fun ~machine ~specs c pid -> Config.step_branches ~machine ~specs c pid);
    crash = Config.crash;
    mandatory_exit =
      (fun ~machine ~specs:_ config pid -> commit_mandatory ~machine config pid);
  }

(* --- the message-passing network object -------------------------------- *)

let default_cap = 8

let type_index types t =
  let rec go i = function
    | [] -> invalid_arg (Fmt.str "Substrate: unknown message type %S" t)
    | x :: _ when String.equal x t -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 types

let send t = Op.make "send" [ Value.sym t ]

let recv ~pid ?(timeout = false) listen =
  Op.make "recv"
    [
      Value.int pid;
      Value.list (List.map Value.sym listen);
      Value.bool timeout;
    ]

let timeout_response = Value.sym "timeout"

let counters_of v = List.map Value.to_int_exn (Value.to_list_exn v)
let counters_to is = Value.list (List.map Value.int is)

let set_nth l i x = List.mapi (fun j y -> if j = i then x else y) l

let network_spec ?(byz = 0) ?(cap = default_cap) ~n ~types () =
  if byz < 0 then invalid_arg "Substrate.network_spec: byz < 0";
  if cap < 1 then invalid_arg "Substrate.network_spec: cap < 1";
  if types = [] then invalid_arg "Substrate.network_spec: empty type alphabet";
  let zeros = counters_to (List.map (fun _ -> 0) types) in
  let initial = Value.pair (zeros, Value.list (List.init n (fun _ -> zeros))) in
  let split state =
    match Value.node state with
    | Value.Pair (nsnt, nrcvd) -> (nsnt, nrcvd)
    | _ -> invalid_arg "Substrate network: malformed state"
  in
  let step state (op : Op.t) =
    let nsnt_v, nrcvd_v = split state in
    match (op.Op.name, op.Op.args) with
    | "send", [ t ] ->
      let t = match Value.node t with
        | Value.Sym s -> s
        | _ -> invalid_arg "Substrate network: send expects a type symbol"
      in
      let ti = type_index types t in
      let nsnt = counters_of nsnt_v in
      let cur = List.nth nsnt ti in
      (* Saturate at [cap]: keeps the state space finite for machines
         that send unboundedly.  A saturated send changes nothing, so
         it is (correctly) not a mandatory network-progress action. *)
      let cur' = min cap (cur + 1) in
      let nsnt_v' =
        if cur' = cur then nsnt_v else counters_to (set_nth nsnt ti cur')
      in
      [
        {
          Obj_spec.next = Value.pair (nsnt_v', nrcvd_v);
          response = Value.int cur';
        };
      ]
    | "recv", [ pid; listen; timeout ] ->
      let pid = Value.to_int_exn pid in
      let timeout =
        match Value.node timeout with
        | Value.Bool b -> b
        | _ -> invalid_arg "Substrate network: recv expects a timeout flag"
      in
      let listen =
        List.map
          (fun v ->
            match Value.node v with
            | Value.Sym s -> s
            | _ -> invalid_arg "Substrate network: recv expects type symbols")
          (Value.to_list_exn listen)
      in
      let nsnt = counters_of nsnt_v in
      let rows = Value.to_list_exn nrcvd_v in
      let row = counters_of (List.nth rows pid) in
      (* Delivery branches in listen order, then the timeout branch,
         then the always-enabled delay branch — a fixed order so node
         ids are deterministic. *)
      let deliveries =
        List.filter_map
          (fun t ->
            let ti = type_index types t in
            let rcvd = List.nth row ti in
            if rcvd < List.nth nsnt ti + byz then
              let row' = counters_to (set_nth row ti (rcvd + 1)) in
              let nrcvd_v' = Value.list (set_nth rows pid row') in
              Some
                {
                  Obj_spec.next = Value.pair (nsnt_v, nrcvd_v');
                  response = Value.pair (Value.sym t, Value.int (rcvd + 1));
                }
            else None)
          listen
      in
      let timeouts =
        if timeout then
          [ { Obj_spec.next = state; response = timeout_response } ]
        else []
      in
      let delay = [ { Obj_spec.next = state; response = Value.bot } ] in
      deliveries @ timeouts @ delay
    | _ -> Obj_spec.unknown "network" op
  in
  let name =
    Fmt.str "net:%d:%s%s" n (String.concat "," types)
      (if byz = 0 then "" else Fmt.str ":byz%d" byz)
  in
  Obj_spec.make ~name ~initial ~step ()

(* The network object of a prepared mp spec array is, by convention,
   its last entry. *)
let net_index specs = Array.length specs - 1

let mp ?(byz = 0) () =
  let mandatory_exit ~machine ~specs config pid =
    Config.is_running config pid
    &&
    match machine.Machine.delta ~pid config.Config.locals.(pid) with
    | Machine.Decide _ | Machine.Abort -> true
    | Machine.Invoke { obj; op; _ } ->
      obj = net_index specs
      &&
      let st = config.Config.objects.(obj) in
      List.exists
        (fun (b : Obj_spec.branch) -> not (Value.equal b.Obj_spec.next st))
        (Obj_spec.branches specs.(obj) st op)
  in
  {
    sname = (if byz = 0 then "mp" else Fmt.str "mp+byz:%d" byz);
    initial = Config.initial;
    step_branches = (fun ~machine ~specs c pid -> Config.step_branches ~machine ~specs c pid);
    crash = Config.crash;
    mandatory_exit;
  }
