(** Pluggable execution substrates: the communication-and-fault model a
    protocol instance runs under, extracted behind one record so the
    explorer, solvability checkers and liveness analysis are generic in
    it.

    [shm] is the paper's model — crash-fault asynchronous shared memory
    — and delegates verbatim to {!Config}, so selecting it reproduces
    the pre-substrate explorer bit-for-bit.  [mp] is asynchronous
    message passing with an adversarial network, kept finite-state via
    threshold-guard delivery counters (the [nSnt]/[nRcvd] style of the
    aba_asyn_byz models in SNIPPETS.md); delivery is delayed, dropped
    or duplicated by adversary branch choice, and [byz > 0] adds
    Byzantine message corruption over the finite type alphabet as +byz
    guard slack.  See the implementation header for the full model and
    the fairness semantics. *)

open Lbsa_spec

type t = {
  sname : string;
      (** User-facing name ("shm", "mp", "mp+byz:f"); recorded in
          checkpoints and cache keys — a resume under a different
          substrate is refused. *)
  initial :
    machine:Machine.t ->
    specs:Obj_spec.t array ->
    inputs:Value.t array ->
    Config.t;
  step_branches :
    machine:Machine.t ->
    specs:Obj_spec.t array ->
    Config.t ->
    int ->
    (Config.t * Config.event) list;
      (** All successors of one atomic step of the given pid — the step
          relation the explorer quantifies over. *)
  crash : Config.t -> int -> Config.t;
  mandatory_exit :
    machine:Machine.t -> specs:Obj_spec.t array -> Config.t -> int -> bool;
      (** The substrate's fairness constraint: [mandatory_exit config
          pid] holds when the pid's next step includes an action an
          admissible infinite schedule must eventually take (a poised
          decide/abort commit; for [mp] also any send or guarded
          delivery that changes the network state).  Every such action
          provably leaves its SCC, so a fair cycle may contain no
          configuration enabling one. *)
}

val name : t -> string

val shm : t
(** Crash-fault asynchronous shared memory — the paper's model. *)

val mp : ?byz:int -> unit -> t
(** Message passing over an adversarial network.  The instance's spec
    array must carry the matching {!network_spec} as its {e last}
    object (the convention [mandatory_exit] relies on). *)

(** {2 The network object} *)

val network_spec :
  ?byz:int -> ?cap:int -> n:int -> types:string list -> unit -> Obj_spec.t
(** The shared network object for [n] processes over the finite message
    [types] alphabet.  State is [(nSnt per type, nRcvd per process per
    type)]; send counters saturate at [cap] (default 8) to keep
    unbounded senders finite-state.  [byz] phantom messages of each
    type may be delivered to each receiver beyond what was sent. *)

val send : string -> Op.t
(** [send t] broadcasts one message of type [t] (increments
    [nSnt.(t)]); responds with the new count. *)

val recv : pid:int -> ?timeout:bool -> string list -> Op.t
(** [recv ~pid listen] polls for a message of any type in [listen].
    Branches: one delivery per guarded type (response
    [Pair (type, new receive count)]), a [timeout] response when
    requested (the adversary may always time the receiver out), and an
    always-enabled delay (response ⊥ — poll again). *)

val timeout_response : Value.t

val net_index : Obj_spec.t array -> int
(** The network object's index in a prepared mp spec array (its last
    entry, by convention). *)
