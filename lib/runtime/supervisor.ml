module Prng = Lbsa_util.Prng

(* Supervision for the verification pipeline: budgets, cancellation,
   worker fault isolation, deterministic chaos.  See the .mli for the
   determinism contract each piece maintains. *)

(* --- cancellation tokens ----------------------------------------------- *)

type token = bool Atomic.t

let token () : token = Atomic.make false
let cancel t = Atomic.set t true
let cancelled t = Atomic.get t

let install_sigint t =
  let handler _ = if cancelled t then Stdlib.exit 130 else cancel t in
  ignore (Sys.signal Sys.sigint (Sys.Signal_handle handler))

(* --- outcomes ----------------------------------------------------------- *)

type outcome =
  | Done
  | Truncated
  | Deadline
  | Cancelled
  | Worker_failed of { worker : int; exn : string; attempts : int }

let is_partial = function Done -> false | _ -> true

let pp_outcome ppf = function
  | Done -> Fmt.string ppf "done"
  | Truncated -> Fmt.string ppf "truncated"
  | Deadline -> Fmt.string ppf "deadline expired"
  | Cancelled -> Fmt.string ppf "cancelled"
  | Worker_failed { worker; exn; attempts } ->
    Fmt.pf ppf "worker %d failed after %d attempt%s: %s" worker attempts
      (if attempts = 1 then "" else "s")
      exn

let exit_code ~ok = function
  | Done -> if ok then 0 else 1
  | Truncated | Deadline | Cancelled | Worker_failed _ -> 2

(* --- budgets ------------------------------------------------------------ *)

module Budget = struct
  type t = { deadline : float option; tok : token option }

  let unlimited = { deadline = None; tok = None }

  let make ?deadline_s ?token () =
    {
      deadline = Option.map (fun s -> Unix.gettimeofday () +. s) deadline_s;
      tok = token;
    }

  let stop t =
    match t.tok with
    | Some tok when cancelled tok -> Some Cancelled
    | _ -> (
      match t.deadline with
      | Some d when Unix.gettimeofday () > d -> Some Deadline
      | _ -> None)
end

(* --- deterministic chaos ------------------------------------------------ *)

module Chaos = struct
  exception Injected of int

  (* (seed, rate_percent) when armed.  One atomic cell: arming is a
     test-time global, read once per shard attempt. *)
  let state : (int * int) option Atomic.t = Atomic.make None

  let arm ~seed ?(rate_percent = 50) () =
    if rate_percent < 0 || rate_percent > 100 then
      invalid_arg "Chaos.arm: rate_percent must be in [0, 100]";
    Atomic.set state (Some (seed, rate_percent))

  let disarm () = Atomic.set state None
  let armed () = Atomic.get state <> None

  (* Fail iff armed, first attempt, and the (seed, key) substream says
     so — a pure plan, independent of timing and domain count.  Retries
     (attempt > 0) never fail, so an armed run does exactly the work of
     an unarmed one plus some doomed first attempts. *)
  let maybe_fail ~key ~attempt =
    match Atomic.get state with
    | Some (seed, rate) when attempt = 0 && key >= 0 ->
      let draw = Prng.int (Prng.of_substream ~seed ~index:key) 100 in
      if draw < rate then raise (Injected key)
    | _ -> ()
end

(* --- worker fault isolation --------------------------------------------- *)

let run_shard ?(attempts = 3) ?(backoff_s = 0.001) ~worker f =
  if attempts < 1 then invalid_arg "Supervisor.run_shard: attempts must be >= 1";
  let rec go attempt =
    match
      Chaos.maybe_fail ~key:worker ~attempt;
      f ()
    with
    | v -> Ok v
    | exception e ->
      let made = attempt + 1 in
      if made >= attempts then Error (Printexc.to_string e, made)
      else begin
        if backoff_s > 0. then
          Unix.sleepf (backoff_s *. float_of_int (1 lsl attempt));
        go made
      end
  in
  go 0
