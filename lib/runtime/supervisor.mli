(** Resilient-verification supervision: wall-clock budgets, cooperative
    cancellation, domain-worker fault isolation with bounded-backoff
    retry, a structured outcome taxonomy shared by every pipeline stage,
    and a deterministic chaos mode that injects artificial worker
    failures to exercise the supervisor itself.

    Everything here preserves the pipeline's determinism discipline: a
    retried shard recomputes a pure function into the same slots, and
    chaos failures are a pure function of (seed, worker key), so
    verdicts — including which failure wins a CAS-min race — are
    identical for any domain count, with or without chaos. *)

(** {2 Cancellation tokens} *)

type token
(** A cooperative cancellation flag, safe to share across domains.
    Workers never observe it directly; budgets poll it at safe points
    (level boundaries, per input vector, per fuzz trial, per harness
    run). *)

val token : unit -> token
val cancel : token -> unit
val cancelled : token -> bool

val install_sigint : token -> unit
(** Route SIGINT to [cancel]: the first ^C requests a graceful stop (the
    pipeline winds down at its next safe point and can write a
    checkpoint); a second ^C exits immediately with status 130. *)

(** {2 Outcomes} *)

(** How a supervised stage ended.  Everything except [Done] is partial:
    the work completed so far is valid, but the full question was not
    decided. *)
type outcome =
  | Done  (** ran to completion; the verdict is definitive *)
  | Truncated  (** a state/trial quota was hit *)
  | Deadline  (** the wall-clock deadline expired *)
  | Cancelled  (** the cancellation token fired (e.g. SIGINT) *)
  | Worker_failed of { worker : int; exn : string; attempts : int }
      (** a domain worker kept failing after bounded retries *)

val is_partial : outcome -> bool
val pp_outcome : Format.formatter -> outcome -> unit

val exit_code : ok:bool -> outcome -> int
(** The CLI-wide exit-code policy: 0 = clean pass, 1 = definitive
    failure (unsolvable, counterexample), 2 = partial outcome
    (truncated / deadline / cancelled / worker failure).  Usage errors
    are 3, by convention, at the CLI layer. *)

(** {2 Budgets} *)

module Budget : sig
  type t
  (** A wall-clock deadline and/or a cancellation token.  Quotas on
      states and trials stay where they live today ([max_states],
      [trials]) — a budget adds the time/cancellation axes that no
      counter can express. *)

  val unlimited : t

  val make : ?deadline_s:float -> ?token:token -> unit -> t
  (** [deadline_s] is relative to the call ([0.] is already expired —
      handy for forcing a checkpoint at the first safe point). *)

  val stop : t -> outcome option
  (** [None] = keep going; [Some Cancelled] or [Some Deadline]
      otherwise.  Cancellation wins over the deadline.  Cheap enough to
      poll per trial / per frontier level. *)
end

(** {2 Deterministic chaos} *)

module Chaos : sig
  exception Injected of int
  (** Raised inside a shard body on an injected failure; the payload is
      the worker key. *)

  val arm : seed:int -> ?rate_percent:int -> unit -> unit
  (** Globally arm chaos: every {!run_shard} whose (seed, worker-key)
      substream draws below [rate_percent] (default 50) fails on its
      FIRST attempt only; the retry always succeeds.  The plan is a pure
      function of the seed and the key, so armed runs produce results
      identical to unarmed ones — that equality is the self-test. *)

  val disarm : unit -> unit
  val armed : unit -> bool
end

val run_shard :
  ?attempts:int ->
  ?backoff_s:float ->
  worker:int ->
  (unit -> 'a) ->
  ('a, string * int) result
(** Run one worker body with fault isolation: any exception is caught
    and the body retried up to [attempts] times (default 3) with
    exponential backoff starting at [backoff_s] (default 1ms).
    [Error (exn, attempts)] after the last attempt.  The body must be
    pure or idempotent (re-writing the same disjoint slots), so a retry
    cannot change the result — that is what keeps verdicts independent
    of the domain count even when workers fail. *)
