open Lbsa_spec

(* Execution traces: the sequence of events produced by a run, the
   concrete counterpart of the paper's "histories". *)

type entry = { index : int; event : Config.event }

type t = entry list
(* Stored in execution order. *)

let empty = []

(* One traversal per call (the old [trace @ [...]] plus [List.length]
   walked the list twice).  Still O(n) per append by nature of the list
   representation: to build a trace incrementally, use [builder]/[add],
   or [of_events] for a ready-made event list. *)
let append trace event =
  let rec go i = function
    | [] -> [ { index = i; event } ]
    | e :: rest -> e :: go (i + 1) rest
  in
  go 0 trace

let of_events events = List.mapi (fun index event -> { index; event }) events

(* Efficient builder used by the executor. *)
type builder = { mutable rev : entry list; mutable len : int }

let builder () = { rev = []; len = 0 }

let add b event =
  b.rev <- { index = b.len; event } :: b.rev;
  b.len <- b.len + 1

let build b = List.rev b.rev

let events t = List.map (fun e -> e.event) t

let length = List.length

let pid_of_event = function
  | Config.Op_event { pid; _ } | Config.Decide_event { pid; _ }
  | Config.Abort_event { pid } ->
    pid

let steps_of t pid = List.filter (fun e -> pid_of_event e.event = pid) t

let pp_event ppf = function
  | Config.Op_event { pid; obj; op; response } ->
    Fmt.pf ppf "p%d: obj%d.%a -> %a" pid obj Op.pp op Value.pp response
  | Config.Decide_event { pid; value } ->
    Fmt.pf ppf "p%d: decide %a" pid Value.pp value
  | Config.Abort_event { pid } -> Fmt.pf ppf "p%d: abort" pid

let pp_entry ppf { index; event } = Fmt.pf ppf "%4d  %a" index pp_event event

let pp ppf t = Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:(any "@,") pp_entry) t

(* One column per process: a sequence-diagram-style rendering where each
   row is one atomic step and only the acting process's lane is filled.
   Used by the examples to make schedules visually obvious. *)
let pp_lanes ?(n = 0) ppf t =
  let n =
    List.fold_left (fun acc e -> max acc (pid_of_event e.event + 1)) n t
  in
  let lane_width = 22 in
  let header =
    String.concat "" (List.map (fun pid -> Fmt.str "%-*s" lane_width (Fmt.str "p%d" pid))
                        (List.init n (fun i -> i)))
  in
  Fmt.pf ppf "%s@." header;
  List.iter
    (fun { event; _ } ->
      let pid = pid_of_event event in
      let text =
        match event with
        | Config.Op_event { obj; op; response; _ } ->
          Fmt.str "o%d.%s->%s" obj (Op.to_string op) (Value.to_string response)
        | Config.Decide_event { value; _ } ->
          Fmt.str "DECIDE %s" (Value.to_string value)
        | Config.Abort_event _ -> "ABORT"
      in
      let text =
        if String.length text > lane_width - 2 then
          String.sub text 0 (lane_width - 2)
        else text
      in
      let line =
        String.concat ""
          (List.init n (fun i ->
               if i = pid then Fmt.str "%-*s" lane_width text
               else String.make lane_width ' '))
      in
      Fmt.pf ppf "%s@." line)
    t
