(** Execution traces: the event sequence of a run (the concrete
    counterpart of the paper's histories). *)

type entry = { index : int; event : Config.event }
type t = entry list

val empty : t

val append : t -> Config.event -> t
(** O(length) per call — fine for one-off extension, quadratic if used
    in a loop; build incrementally with {!builder}/{!add} (as the
    executor does) or all at once with {!of_events} instead. *)

val of_events : Config.event list -> t
(** Index a whole event list into a trace in one O(n) pass. *)

(** Mutable builder used by the executor. *)
type builder

val builder : unit -> builder
val add : builder -> Config.event -> unit
val build : builder -> t

val events : t -> Config.event list
val length : t -> int
val pid_of_event : Config.event -> int
val steps_of : t -> int -> t

val pp_event : Format.formatter -> Config.event -> unit
val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit

val pp_lanes : ?n:int -> Format.formatter -> t -> unit
(** Sequence-diagram rendering: one column per process, one row per
    atomic step.  [n] forces a minimum lane count. *)
