open Lbsa_util
open Lbsa_spec
open Lbsa_runtime
open Lbsa_protocols
open Lbsa_modelcheck

(* The service API: one pure-data query language shared by every
   front-end (the unix-socket daemon today, HTTP/batch backends later),
   a canonical cross-process-stable cache key per query, and the cold
   compute path that answers a query by running the verification
   pipeline.

   Everything in a query and a result is plain data — ints, strings,
   bools — never a [Value.t] or a [Config.t]: intern ids and pointer
   identity must not cross a process boundary (the checkpoint layer
   learned this first), and plain data keeps the wire protocol and the
   store trivially marshalable. *)

type reduce_mode = [ `None | `Sym | `Sym_sleep ]

type task =
  | Dac of { n : int }
  | Consensus of { m : int }
  | Kset of { m : int; k : int }
  | Candidate of { name : string }
  | Vc of { n : int }
  | Bcast of { n : int }

type question = Solve | Valence | Live

type query =
  | Verify of {
      task : task;
      question : question;
      inputs : int list;
      max_states : int;
      reduce : reduce_mode;
      substrate : string;
    }
  | Fuzz of { target : string; trials : int; procs : int; ops : int; seed : int }

(* --- results ------------------------------------------------------------ *)

type verify_payload = {
  v_ok : bool;
  v_outcome : string;
  v_partial : bool;
  v_inputs : int list;
  v_states : int;
  v_failure : string option;
}

type valence_payload = {
  l_nodes : int;
  l_edges : int;
  l_truncated : bool;  (** the [max_states] quota fired (key-determined) *)
  l_partial : bool;  (** a budget cut the build (not key-determined) *)
  l_bivalent : int;
  l_univalent : int;
  l_undecided : int;
  l_initial : string;
}

type fuzz_payload = {
  f_target : string;
  f_trials : int;
  f_completed : int;
  f_partial : bool;
  f_failure : string option;
  f_resumed_from : int;
}

type live_payload = {
  lv_live : bool;
  lv_nodes : int;
  lv_sccs : int;
  lv_fair : int;
  lv_truncated : bool;  (** the [max_states] quota fired (key-determined) *)
  lv_partial : bool;  (** a budget cut the build (not key-determined) *)
  lv_prefix : int;  (** shrunk lasso prefix length; 0 when live *)
  lv_cycle : int;  (** shrunk lasso cycle length; 0 when live *)
  lv_witness : string option;  (** the shrunk lasso rendered as traces *)
}

type result =
  | Verdict of verify_payload
  | Valences of valence_payload
  | Fuzz_report of fuzz_payload
  | Liveness_report of live_payload

(* --- canonical fingerprint --------------------------------------------- *)

let reduce_name = function
  | `None -> "none"
  | `Sym -> "sym"
  | `Sym_sleep -> "sym+sleep"

let reduce_of_name = function
  | "none" -> Some `None
  | "sym" -> Some `Sym
  | "sym+sleep" -> Some `Sym_sleep
  | _ -> None

let task_label = function
  | Dac { n } -> Fmt.str "dac:%d" n
  | Consensus { m } -> Fmt.str "cons:%d" m
  | Kset { m; k } -> Fmt.str "kset:%d:%d" m k
  | Candidate { name } -> "cand:" ^ name
  | Vc { n } -> Fmt.str "vc:%d" n
  | Bcast { n } -> Fmt.str "bcast:%d" n

let question_label = function
  | Solve -> "solve"
  | Valence -> "valence"
  | Live -> "live"

(* Substrate names as plain query data; the record is rebuilt on the
   computing side.  "mp+byz:f" carries its Byzantine budget because the
   network object's delivery guard depends on it — same graph-changing
   status as the reduction mode. *)
let substrate_of_name = function
  | "shm" -> Some (Substrate.shm, 0)
  | "mp" -> Some (Substrate.mp (), 0)
  | name -> (
    match String.split_on_char ':' name with
    | [ "mp+byz"; f ] -> (
      match int_of_string_opt f with
      | Some f when f >= 0 -> Some (Substrate.mp ~byz:f (), f)
      | _ -> None)
    | _ -> None)

let mp_task = function Vc _ | Bcast _ -> true | _ -> false

let default_substrate task = if mp_task task then "mp" else "shm"

(* The canonical preimage pins EVERYTHING the answer is a function of:
   task, question, the full input vector, the state quota, the
   reduction mode and the execution substrate.  The original `lbsa
   fingerprint` ignored everything after the inputs, so two
   semantically different queries could share a key; the serve cache
   would then return one query's verdict for the other.  /2 added the
   substrate and the liveness question — a liveness answer and a safety
   answer on the same task must never share a key, nor may the same
   task under shm and mp fairness.  Budget-side knobs (deadline,
   domains, worker count) stay out — they can change how long an answer
   takes, never what it is. *)
let canonical = function
  | Verify v ->
    Fmt.str "lbsa-query/2 verify task=%s question=%s inputs=%s max_states=%d \
             reduce=%s substrate=%s"
      (task_label v.task)
      (question_label v.question)
      (String.concat "," (List.map string_of_int v.inputs))
      v.max_states (reduce_name v.reduce) v.substrate
  | Fuzz f ->
    Fmt.str "lbsa-query/2 fuzz target=%s trials=%d procs=%d ops=%d seed=%d"
      f.target f.trials f.procs f.ops f.seed

let key q = Fnv.to_hex (Fnv.string (canonical q))

(* --- task instances ----------------------------------------------------- *)

type flavor = Check_dac | Check_consensus | Check_kset of int

type instance = {
  machine : Machine.t;
  specs : Obj_spec.t array;
  procs : int;
  flavor : flavor;
  canon : Canon.t;
  frozen : (int -> Value.t -> bool) option;
}

(* dac's PAC object (index 0) is permanently inert once upset — the
   certification the sleep layer's [frozen] hook wants (same rule as the
   CLI's check/solve commands). *)
let dac_frozen obj st = obj = 0 && Lbsa_objects.Pac.is_upset st

let candidate_names =
  [
    "flp-write-read"; "flp-spin"; "3dac-sa2-then-cons2";
    "3dac-cons2-announce"; "3cons-from-22pac"; "pac-retry";
  ]

let candidate name =
  match name with
  | "flp-write-read" -> (Check_consensus, Candidates.flp_write_read, 2)
  | "flp-spin" -> (Check_consensus, Candidates.flp_spin, 2)
  | "3dac-sa2-then-cons2" -> (Check_dac, Candidates.dac3_sa2_then_cons2, 3)
  | "3dac-cons2-announce" -> (Check_dac, Candidates.dac3_cons2_announce, 3)
  | "3cons-from-22pac" ->
    (Check_consensus, Candidates.consensus_m1_from_pac_nm ~n:2 ~m:2, 3)
  | "pac-retry" ->
    (Check_consensus, Candidates.consensus_from_pac_retry ~n:2 ~procs:2, 2)
  | _ ->
    invalid_arg
      (Fmt.str "unknown candidate %S; known: %s" name
         (String.concat ", " candidate_names))

let instance ?(byz = 0) = function
  | Dac { n } ->
    {
      machine = Dac_from_pac.machine ~n;
      specs = Dac_from_pac.specs ~n;
      procs = n;
      flavor = Check_dac;
      canon = Canon.dac ~n;
      frozen = Some dac_frozen;
    }
  | Consensus { m } ->
    let machine, specs = Consensus_protocols.from_consensus_obj ~m in
    {
      machine;
      specs;
      procs = m;
      flavor = Check_consensus;
      canon = Canon.exchangeable ~n:m ();
      frozen = None;
    }
  | Kset { m; k } ->
    let machine, specs = Kset_protocols.partition ~m ~k in
    {
      machine;
      specs;
      procs = m * k;
      flavor = Check_kset k;
      canon = Canon.kset_partition ~m ~k;
      frozen = None;
    }
  | Candidate { name } ->
    let flavor, (machine, specs), procs = candidate name in
    (* No certified symmetry group for free-form candidates: [sym] is
       the identity quotient, [sym+sleep] still prunes commit steps. *)
    { machine; specs; procs; flavor; canon = Canon.identity; frozen = None }
  | Vc { n } ->
    (* Message-passing tasks: no certified symmetry group (the leader
       breaks exchangeability), no frozen objects — both reductions are
       identity quotients, so verdicts agree across --reduce modes by
       construction. *)
    {
      machine = View_change.machine ~n;
      specs = View_change.specs ~byz ~n ();
      procs = n;
      flavor = Check_consensus;
      canon = Canon.identity;
      frozen = None;
    }
  | Bcast { n } ->
    {
      machine = View_change.bcast_machine ~n;
      specs = View_change.bcast_specs ~byz ~n ();
      procs = n;
      flavor = Check_consensus;
      canon = Canon.identity;
      frozen = None;
    }

let default_inputs = function
  | Dac { n } -> List.init n (fun pid -> if pid = 0 then 1 else 0)
  | Consensus { m } -> List.init m (fun pid -> pid mod 2)
  | Kset { m; k } -> List.init (m * k) Fun.id
  | Candidate { name } ->
    let _, _, procs = candidate name in
    List.init procs (fun pid -> pid mod 2)
  | Vc { n } | Bcast { n } ->
    (* input-free protocols; the vector only fixes the arity *)
    List.init n (fun _ -> 0)

let reduction_for inst (mode : reduce_mode) : Graph.reduction =
  match mode with
  | `None -> Graph.no_reduction
  | `Sym -> { Graph.rname = "sym"; canon = inst.canon; sleep = false; frozen = None }
  | `Sym_sleep ->
    { Graph.rname = "sym+sleep"; canon = inst.canon; sleep = true;
      frozen = inst.frozen }

(* --- cold compute ------------------------------------------------------- *)

type computed = {
  res : result;
  cacheable : bool;
      (** safe to memoize forever: the result is a pure function of the
          canonical key.  [Done] results always are; [Truncated] ones
          are too, because [max_states] is part of the key; deadline /
          cancellation / worker-failure results are not. *)
  fuzz_prefix : int option;
      (** on a partial fuzz campaign: the completed-trial prefix worth
          persisting so an identical query resumes instead of replaying *)
}

let cacheable_outcome = function
  | Supervisor.Done | Supervisor.Truncated -> true
  | Supervisor.Deadline | Supervisor.Cancelled | Supervisor.Worker_failed _ ->
    false

let compute ?(budget = Supervisor.Budget.unlimited) ?(start = 0) q : computed =
  match q with
  | Verify v -> (
    let substrate, byz =
      match substrate_of_name v.substrate with
      | Some s -> s
      | None ->
        invalid_arg
          (Fmt.str "unknown substrate %S (try shm, mp, mp+byz:<f>)" v.substrate)
    in
    (* The substrate is not a free knob: message-passing tasks need the
       network-fairness constraints (and build their network object from
       the substrate's byz budget), shared-memory tasks mean nothing
       under them. *)
    if mp_task v.task && substrate.Substrate.sname = "shm" then
      invalid_arg
        (Fmt.str "task %s is message-passing; use --substrate mp"
           (task_label v.task));
    if (not (mp_task v.task)) && substrate.Substrate.sname <> "shm" then
      invalid_arg
        (Fmt.str "task %s is shared-memory; use --substrate shm"
           (task_label v.task));
    let inst = instance ~byz v.task in
    if List.length v.inputs <> inst.procs then
      invalid_arg
        (Fmt.str "task %s expects %d inputs, got %d" (task_label v.task)
           inst.procs (List.length v.inputs));
    let inputs = Array.of_list (List.map Value.int v.inputs) in
    let reduce = reduction_for inst v.reduce in
    let machine = inst.machine and specs = inst.specs in
    match v.question with
    | Solve ->
      let verdict =
        match inst.flavor with
        | Check_dac ->
          Solvability.check_dac ~max_states:v.max_states ~domains:1 ~budget
            ~substrate ~reduce ~machine ~specs ~inputs ()
        | Check_consensus ->
          Solvability.check_consensus ~max_states:v.max_states ~domains:1
            ~budget ~substrate ~reduce ~machine ~specs ~inputs ()
        | Check_kset k ->
          Solvability.check_kset ~max_states:v.max_states ~domains:1 ~budget
            ~substrate ~reduce ~machine ~specs ~k ~inputs ()
      in
      {
        res =
          Verdict
            {
              v_ok = verdict.Solvability.ok;
              v_outcome =
                Fmt.str "%a" Supervisor.pp_outcome verdict.Solvability.outcome;
              v_partial = Supervisor.is_partial verdict.Solvability.outcome;
              v_inputs = v.inputs;
              v_states = verdict.Solvability.states;
              v_failure = verdict.Solvability.failure;
            };
        cacheable = cacheable_outcome verdict.Solvability.outcome;
        fuzz_prefix = None;
      }
    | Valence ->
      let graph =
        Graph.build ~max_states:v.max_states ~domains:1 ~budget ~substrate
          ~reduce ~machine ~specs ~inputs ()
      in
      let a = Lbsa_modelcheck.Valence.analyze graph in
      let s = Lbsa_modelcheck.Valence.summarize a in
      {
        res =
          Valences
            {
              l_nodes = Graph.n_nodes graph;
              l_edges = Graph.n_edges graph;
              l_truncated = graph.Graph.stop = Supervisor.Truncated;
              l_partial =
                graph.Graph.truncated
                && graph.Graph.stop <> Supervisor.Truncated;
              l_bivalent = s.Lbsa_modelcheck.Valence.n_bivalent;
              l_univalent = s.Lbsa_modelcheck.Valence.n_univalent;
              l_undecided = s.Lbsa_modelcheck.Valence.n_undecided;
              l_initial =
                Fmt.str "%a" Lbsa_modelcheck.Valence.pp_classification
                  (Lbsa_modelcheck.Valence.classify a graph.Graph.initial);
            };
        cacheable = cacheable_outcome graph.Graph.stop;
        fuzz_prefix = None;
      }
    | Live ->
      let graph =
        Graph.build ~max_states:v.max_states ~domains:1 ~budget ~substrate
          ~reduce ~machine ~specs ~inputs ()
      in
      let report = Liveness.analyze ~machine ~specs ~substrate graph in
      let truncated = graph.Graph.stop = Supervisor.Truncated in
      let partial =
        graph.Graph.truncated && graph.Graph.stop <> Supervisor.Truncated
      in
      let payload =
        match report.Liveness.verdict with
        | Liveness.Live ->
          {
            lv_live = true;
            lv_nodes = Graph.n_nodes graph;
            lv_sccs = report.Liveness.sccs;
            lv_fair = 0;
            lv_truncated = truncated;
            lv_partial = partial;
            lv_prefix = 0;
            lv_cycle = 0;
            lv_witness = None;
          }
        | Liveness.Livelock w ->
          let w, _steps =
            Lbsa_fuzz.Lasso.shrink ~machine ~specs ~substrate ~graph w
          in
          {
            lv_live = false;
            lv_nodes = Graph.n_nodes graph;
            lv_sccs = report.Liveness.sccs;
            lv_fair = report.Liveness.fair_sccs;
            lv_truncated = truncated;
            lv_partial = partial;
            lv_prefix = List.length w.Liveness.w_prefix;
            lv_cycle = List.length w.Liveness.w_cycle;
            lv_witness = Some (Fmt.str "%a" Liveness.pp_witness w);
          }
      in
      {
        res = Liveness_report payload;
        cacheable = cacheable_outcome graph.Graph.stop;
        fuzz_prefix = None;
      })
  | Fuzz f ->
    let target = Lbsa_fuzz.Targets.spec_target f.target in
    let report =
      Lbsa_fuzz.Engine.fuzz_spec ~domains:1 ~start ~budget ~procs:f.procs
        ~ops_per_proc:f.ops ~trials:f.trials ~seed:f.seed target
    in
    let partial =
      Supervisor.is_partial report.Lbsa_fuzz.Engine.outcome
      && report.Lbsa_fuzz.Engine.failure = None
    in
    {
      res =
        Fuzz_report
          {
            f_target = f.target;
            f_trials = f.trials;
            f_completed = report.Lbsa_fuzz.Engine.completed;
            f_partial = partial;
            f_failure =
              Option.map
                (fun (fl : Lbsa_fuzz.Engine.failure) ->
                  Fmt.str "trial %d: %a%s" fl.Lbsa_fuzz.Engine.trial
                    Lbsa_fuzz.Engine.pp_kind fl.Lbsa_fuzz.Engine.kind
                    (match fl.Lbsa_fuzz.Engine.shrunk with
                    | Some (c, _) ->
                      Fmt.str " (shrunk to %d calls)"
                        (Lbsa_fuzz.Fuzz_case.n_calls c)
                    | None -> ""))
                report.Lbsa_fuzz.Engine.failure;
            f_resumed_from = start;
          };
      (* A failure is definitive and reproducible from (seed, trial):
         cacheable.  A clean full run is cacheable.  A deadline-cut
         clean prefix is not a final answer: persist it as a prefix. *)
      cacheable = not partial;
      fuzz_prefix = (if partial then Some report.Lbsa_fuzz.Engine.completed
                     else None);
    }

(* --- rendering ---------------------------------------------------------- *)

(* The canonical one-line rendering of a result: what `lbsa query`
   prints, and the form the test battery byte-compares between cold,
   warm and cross-restart answers.  [f_resumed_from] is deliberately
   excluded — a resumed campaign must render exactly as an
   uninterrupted one (the checkpoint layer's contract). *)
let render = function
  | Verdict v ->
    let inputs = String.concat "," (List.map string_of_int v.v_inputs) in
    if v.v_ok then Fmt.str "OK (inputs=%s, %d states)" inputs v.v_states
    else if v.v_partial then
      Fmt.str "PARTIAL [%s] (inputs=%s, %d states): %s" v.v_outcome inputs
        v.v_states
        (Option.value v.v_failure ~default:"?")
    else
      Fmt.str "FAIL (inputs=%s, %d states): %s" inputs v.v_states
        (Option.value v.v_failure ~default:"?")
  | Valences l ->
    Fmt.str
      "%d configurations (%d edges)%s; valence: %d bivalent, %d univalent, \
       %d undecided; initial %s"
      l.l_nodes l.l_edges
      (if l.l_truncated then " [TRUNCATED]"
       else if l.l_partial then " [PARTIAL]"
       else "")
      l.l_bivalent l.l_univalent l.l_undecided l.l_initial
  | Fuzz_report f ->
    Fmt.str "fuzz %s: %d/%d trials, %s" f.f_target f.f_completed f.f_trials
      (match f.f_failure with
      | None -> if f.f_partial then "clean so far (partial)" else "clean"
      | Some s -> "FAILED at " ^ s)
  | Liveness_report l ->
    let qualifier =
      if l.lv_truncated then " [TRUNCATED]"
      else if l.lv_partial then " [PARTIAL]"
      else ""
    in
    if l.lv_live then
      Fmt.str "LIVE (%d configurations, %d SCCs, no fair cycle)%s" l.lv_nodes
        l.lv_sccs qualifier
    else
      Fmt.str
        "LIVELOCK (%d configurations, %d fair SCC%s of %d): lasso prefix=%d \
         cycle=%d%s"
        l.lv_nodes l.lv_fair
        (if l.lv_fair = 1 then "" else "s")
        l.lv_sccs l.lv_prefix l.lv_cycle qualifier

(* The CLI-wide exit-code policy applied to a service result.  A
   livelock is a definitive failure (1); a Live verdict on a truncated
   or budget-cut graph is only a partial answer (2) — a fair cycle
   could hide past the cut — while a livelock found in a prefix is
   already definitive. *)
let exit_code = function
  | Verdict v -> if v.v_partial then 2 else if v.v_ok then 0 else 1
  | Valences l -> if l.l_truncated || l.l_partial then 2 else 0
  | Fuzz_report f ->
    if f.f_failure <> None then 1 else if f.f_partial then 2 else 0
  | Liveness_report l ->
    if not l.lv_live then 1 else if l.lv_truncated || l.lv_partial then 2 else 0
