(** The verification-service API: a pure-data query language, a
    canonical content-address per query, and the cold compute path.

    Every front-end — the unix-socket daemon in {!Daemon}, the CLI's
    [lbsa query], later HTTP or batch-file backends — speaks this module
    and nothing lower: a query is plain data (no [Value.t], no intern
    ids), its {!canonical} preimage pins everything the answer depends
    on, and {!compute} answers it by running the verification pipeline.

    The cache-correctness contract: [compute q] is a pure function of
    [canonical q] whenever the returned {!computed.cacheable} is true.
    That is what makes content-addressed memoization sound — and why the
    reduction mode, input vector and state quota are all part of the
    preimage (the original [lbsa fingerprint] omitted them; two
    semantically different queries could share a key). *)

open Lbsa_runtime

type reduce_mode = [ `None | `Sym | `Sym_sleep ]

type task =
  | Dac of { n : int }
  | Consensus of { m : int }
  | Kset of { m : int; k : int }
  | Candidate of { name : string }
  | Vc of { n : int }  (** message-passing view change (livelock fixture) *)
  | Bcast of { n : int }  (** message-passing broadcast (live control) *)

type question = Solve | Valence | Live

type query =
  | Verify of {
      task : task;
      question : question;
      inputs : int list;  (** full input vector, one int per process *)
      max_states : int;
      reduce : reduce_mode;
      substrate : string;
          (** execution-substrate name ("shm", "mp", "mp+byz:<f>");
              graph-changing, hence part of the canonical preimage *)
    }
  | Fuzz of { target : string; trials : int; procs : int; ops : int; seed : int }
      (** a spec-level fuzz campaign against a registry target
          ([Targets.spec_target] syntax); trials are pure functions of
          [(seed, index)], so completed prefixes are reusable *)

type verify_payload = {
  v_ok : bool;
  v_outcome : string;
  v_partial : bool;
  v_inputs : int list;
  v_states : int;
  v_failure : string option;
}

type valence_payload = {
  l_nodes : int;
  l_edges : int;
  l_truncated : bool;  (** the [max_states] quota fired (key-determined) *)
  l_partial : bool;  (** a budget cut the build (not key-determined) *)
  l_bivalent : int;
  l_univalent : int;
  l_undecided : int;
  l_initial : string;
}

type fuzz_payload = {
  f_target : string;
  f_trials : int;
  f_completed : int;
  f_partial : bool;
  f_failure : string option;
  f_resumed_from : int;
      (** trials skipped thanks to a cached prefix; metadata only —
          {!render} excludes it, so resumed output equals cold output *)
}

type live_payload = {
  lv_live : bool;
  lv_nodes : int;
  lv_sccs : int;
  lv_fair : int;  (** fair (livelock-supporting) SCC count *)
  lv_truncated : bool;  (** the [max_states] quota fired (key-determined) *)
  lv_partial : bool;  (** a budget cut the build (not key-determined) *)
  lv_prefix : int;  (** shrunk lasso prefix length; 0 when live *)
  lv_cycle : int;  (** shrunk lasso cycle length; 0 when live *)
  lv_witness : string option;
      (** the shrunk lasso rendered as execution traces; deterministic
          for a given query (single-domain build, greedy shrink) *)
}

type result =
  | Verdict of verify_payload
  | Valences of valence_payload
  | Fuzz_report of fuzz_payload
  | Liveness_report of live_payload

(** {2 Canonical fingerprint} *)

val canonical : query -> string
(** The full preimage: task, question, inputs, [max_states], reduction
    mode (or fuzz target/trials/procs/ops/seed).  Cross-process stable
    by construction — plain data in, deterministic formatting out. *)

val key : query -> string
(** 16-hex-digit FNV-1a digest of {!canonical} — the store filename.
    Consumers must verify the stored preimage against [canonical q] on
    every read; the digest routes, the preimage decides. *)

val reduce_name : reduce_mode -> string
val reduce_of_name : string -> reduce_mode option
val task_label : task -> string
val question_label : question -> string
val candidate_names : string list
val default_inputs : task -> int list

val substrate_of_name : string -> (Substrate.t * int) option
(** The substrate record plus its Byzantine budget ("shm" and "mp"
    carry 0); [None] on unknown syntax. *)

val mp_task : task -> bool
(** Whether the task runs on the message-passing substrate ({!Vc},
    {!Bcast}).  [compute] rejects mp tasks under "shm" and vice versa. *)

val default_substrate : task -> string
(** "mp" for message-passing tasks, "shm" otherwise. *)

(** {2 Cold compute} *)

type computed = {
  res : result;
  cacheable : bool;
      (** the result is a pure function of the canonical key: [Done]
          and [Truncated] outcomes qualify ([max_states] is in the
          key); deadline / cancellation / worker failures do not *)
  fuzz_prefix : int option;
      (** on a deadline-cut clean fuzz campaign: the completed-trial
          prefix worth persisting for resumption *)
}

val compute : ?budget:Supervisor.Budget.t -> ?start:int -> query -> computed
(** Run the query.  [budget] bounds wall clock and carries the
    cancellation token ({!Supervisor.Budget}); [start] (fuzz only)
    resumes from a completed-trial prefix.  The explorer and fuzz
    fan-out are pinned to one domain — the service's worker pool is the
    parallelism layer.  Raises [Invalid_argument] on an unknown task,
    candidate or fuzz target, or an input vector of the wrong arity. *)

(** {2 Rendering} *)

val render : result -> string
(** The canonical one-line form: what [lbsa query] prints and what the
    test battery byte-compares across cold, warm and cross-restart
    answers. *)

val exit_code : result -> int
(** The CLI-wide 0/1/2 policy applied to a result. *)
