(* Client side of the verification service: connect (optionally waiting
   for the socket to appear), one request/response exchange per call.
   Everything here is synchronous — the daemon replies in request order
   per connection, and a query reply only arrives once the answer
   exists. *)

type t = { fd : Unix.file_descr; socket : string }

let connect ?(wait_s = 0.) ~socket () =
  (* a daemon that dies mid-exchange must surface as [Error], not kill
     this process with SIGPIPE on the next write *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let deadline = Unix.gettimeofday () +. wait_s in
  (* Jittered exponential backoff between attempts (deterministic, see
     {!Lbsa_util.Rio.backoff_s}): many clients started together against
     a slow-to-bind daemon decorrelate instead of stampeding the socket
     in lockstep every 50 ms. *)
  let rec attempt n =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | () -> Ok { fd; socket }
    | exception
        Unix.Unix_error
          ((Unix.ECONNREFUSED | Unix.ENOENT | Unix.EAGAIN), _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if Unix.gettimeofday () < deadline then begin
        Lbsa_util.Rio.sleep_backoff ~site:"client.connect" ~attempt:n;
        attempt (n + 1)
      end
      else
        Error
          (Fmt.str "no daemon listening on %s%s" socket
             (if wait_s > 0. then
                Fmt.str " after waiting %.1fs" wait_s
              else ""))
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Fmt.str "connect %s: %s" socket (Unix.error_message e))
  in
  attempt 0

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let roundtrip t req =
  match
    Wire.send_request t.fd req;
    Wire.recv_response t.fd
  with
  | resp -> Ok resp
  | exception Wire.Closed ->
    Error (Fmt.str "daemon on %s closed the connection" t.socket)
  | exception Unix.Unix_error (e, _, _) ->
    Error (Fmt.str "i/o error talking to %s: %s" t.socket
             (Unix.error_message e))
  | exception Failure msg -> Error msg

let query ?deadline_s t q =
  match roundtrip t (Wire.Query { q; deadline_s }) with
  | Ok (Wire.Result { r; cached; wall_us }) -> Ok (r, cached, wall_us)
  | Ok (Wire.Error msg) -> Error msg
  | Ok _ -> Error "daemon sent an unexpected response to a query"
  | Error _ as e -> e

let stats t =
  match roundtrip t Wire.Stats with
  | Ok (Wire.Stats_r s) -> Ok s
  | Ok (Wire.Error msg) -> Error msg
  | Ok _ -> Error "daemon sent an unexpected response to a stats request"
  | Error _ as e -> e

let ping t =
  match roundtrip t Wire.Ping with
  | Ok Wire.Pong -> Ok ()
  | Ok (Wire.Error msg) -> Error msg
  | Ok _ -> Error "daemon sent an unexpected response to a ping"
  | Error _ as e -> e

let shutdown t =
  (* the daemon answers the shutdown requester with its final counters
     once the queue has fully drained *)
  match roundtrip t Wire.Shutdown with
  | Ok (Wire.Stats_r s) -> Ok (Some s)
  | Ok Wire.Shutting_down -> Ok None
  | Ok (Wire.Error msg) -> Error msg
  | Ok _ -> Error "daemon sent an unexpected response to a shutdown"
  | Error _ as e -> e
