(** Synchronous client for the verification daemon: one connection, one
    request/response exchange per call.  All failures come back as
    [Error msg] — connecting to a dead socket, a daemon that drops the
    connection, a malformed frame — so CLI front-ends can map them
    straight to exit code 3. *)

type t

val connect : ?wait_s:float -> socket:string -> unit -> (t, string) result
(** Connect to the daemon's socket, retrying for up to [wait_s] seconds
    (default 0: a single attempt) while the socket is absent or refusing
    — the start-the-daemon-then-query race in scripts and CI.  Retries
    use jittered exponential backoff ({!Lbsa_util.Rio.backoff_s}), so
    concurrent waiting clients decorrelate.  Also ignores SIGPIPE for
    the process: a daemon dying mid-exchange must come back as an
    [Error], not a signal death. *)

val close : t -> unit

val query :
  ?deadline_s:float -> t -> Api.query ->
  (Api.result * bool * float, string) result
(** Ask, blocking until the answer exists.  Returns the result, whether
    it was served from cache, and the daemon-side latency in µs. *)

val stats : t -> (Wire.stats, string) result
val ping : t -> (unit, string) result

val shutdown : t -> (Wire.stats option, string) result
(** Request a drain-and-exit.  Blocks until every queued and in-flight
    job has been answered; the daemon replies with its final counters
    (older daemons may reply with a bare acknowledgement — [None]). *)
