open Lbsa_runtime

(* The verification daemon.

   One main domain owns every socket and every piece of mutable service
   state; worker domains own nothing but the job they are computing.
   The two meet at a pair of mutex-guarded queues plus a self-pipe: the
   main loop pushes jobs in, workers push completions out and poke the
   pipe so [Unix.select] wakes up.  That split keeps the concurrency
   story auditable — cache tables, in-flight bookkeeping and client fds
   are single-threaded by construction, and the only data crossing the
   domain boundary is the plain-data job/result pair (never a client fd,
   never an interned value).

   Single-flight: in-flight computations are keyed by the full canonical
   preimage; a duplicate query joins the existing job's waiter list and
   is answered by the same completion.  N clients asking the same cold
   question cost one computation. *)

type config = {
  socket : string;
  store_dir : string;
  workers : int;
  default_deadline_s : float option;  (** per-query cap unless the client sets one *)
  store_probe_s : float;  (** degraded-mode re-probe interval *)
  log : bool;
}

(* What a store entry holds: a finished, cacheable answer, or the
   completed-trial prefix of a deadline-cut fuzz campaign.  The store's
   checksum guarantees these bytes are exactly what [encode_entry]
   wrote, so the marshal round-trip is safe; [decode_entry] still
   refuses garbage defensively. *)
type entry = Final of Api.result | Prefix of int

let encode_entry (e : entry) = Marshal.to_string e []

let decode_entry s : entry option =
  match (Marshal.from_string s 0 : entry) with
  | e -> Some e
  | exception _ -> None

type job = {
  j_canonical : string;
  j_key : string;
  j_q : Api.query;
  j_deadline_s : float option;
  j_start : int;  (* fuzz resume offset *)
  mutable j_waiters : (Unix.file_descr * float) list;  (* fd, receipt time *)
}

type completion = {
  c_job : job;
  c_result : (Api.computed, string) Stdlib.result;
}

type state = {
  cfg : config;
  store : Store.t;
  memo : (string, Api.result) Hashtbl.t;  (* canonical -> answer *)
  inflight : (string, job) Hashtbl.t;  (* canonical -> job *)
  (* worker-facing queues *)
  mu : Mutex.t;
  cond : Condition.t;
  jobs : job option Queue.t;  (* [None] = worker shutdown sentinel *)
  done_q : completion Queue.t;
  wake_w : Unix.file_descr;  (* worker end of the self-pipe *)
  wake_r : Unix.file_descr;
  token : Supervisor.token;
  mutable stats : Wire.stats;
  mutable degraded : bool;  (* store unusable: serve from memo + compute *)
  mutable next_probe : float;  (* when degraded: next re-probe time *)
  mutable consec_corrupt : int;  (* corrupt store reads since last clean one *)
  mutable draining : bool;
  mutable shutdown_fds : Unix.file_descr list;  (* reply after drain *)
  mutable clients : Unix.file_descr list;
  started : float;
}

let logf st fmt =
  if st.cfg.log then Fmt.epr ("lbsa-serve: " ^^ fmt ^^ "@.")
  else Format.ifprintf Format.err_formatter ("lbsa-serve: " ^^ fmt ^^ "@.")

(* -- worker side ---------------------------------------------------- *)

let worker_loop st wid =
  let rec next () =
    Mutex.lock st.mu;
    let rec wait () =
      match Queue.take_opt st.jobs with
      | Some j -> j
      | None ->
        Condition.wait st.cond st.mu;
        wait ()
    in
    let j = wait () in
    Mutex.unlock st.mu;
    match j with
    | None -> ()  (* sentinel: exit *)
    | Some job ->
      let budget =
        Supervisor.Budget.make ?deadline_s:job.j_deadline_s ~token:st.token ()
      in
      let outcome =
        Supervisor.run_shard ~attempts:2 ~worker:wid (fun () ->
            Api.compute ~budget ~start:job.j_start job.j_q)
      in
      let c_result =
        match outcome with
        | Ok computed -> Ok computed
        | Error (msg, attempts) ->
          Error (Fmt.str "computation failed after %d attempt(s): %s"
                   attempts msg)
      in
      Mutex.lock st.mu;
      Queue.add { c_job = job; c_result } st.done_q;
      Mutex.unlock st.mu;
      (* poke the main loop; the pipe may be full under a burst, which
         is fine — one pending byte is enough to wake it *)
      (try ignore (Unix.write st.wake_w (Bytes.make 1 '!') 0 1)
       with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ());
      next ()
  in
  next ()

(* -- main-loop helpers ---------------------------------------------- *)

let now () = Unix.gettimeofday ()

let safe_send_response fd resp =
  try Wire.send_response fd resp; true
  with
  | Unix.Unix_error _ | Wire.Closed -> false
  | Invalid_argument _ ->
    (* [Wire.send] refused the frame (response over the 16 MB cap —
       results are summaries, so this means a defect upstream).  The
       client gets an error answer; the select loop must not die. *)
    (try
       Wire.send_response fd
         (Wire.Error "internal error: response exceeds the wire frame cap");
       true
     with Unix.Unix_error _ | Wire.Closed | Invalid_argument _ -> false)

let close_client st fd =
  st.clients <- List.filter (fun c -> c <> fd) st.clients;
  Hashtbl.iter
    (fun _ job ->
      job.j_waiters <- List.filter (fun (w, _) -> w <> fd) job.j_waiters)
    st.inflight;
  st.shutdown_fds <- List.filter (fun c -> c <> fd) st.shutdown_fds;
  try Unix.close fd with Unix.Unix_error _ -> ()

let bump_hot st dt_us =
  st.stats <-
    { st.stats with
      Wire.st_hot_us_total = st.stats.Wire.st_hot_us_total +. dt_us;
      st_hot_count = st.stats.Wire.st_hot_count + 1 }

let bump_cold st dt_us =
  st.stats <-
    { st.stats with
      Wire.st_cold_us_total = st.stats.Wire.st_cold_us_total +. dt_us;
      st_cold_count = st.stats.Wire.st_cold_count + 1 }

let reply_result st fd ~cached ~t0 res =
  let dt = (now () -. t0) *. 1e6 in
  if cached then bump_hot st dt else bump_cold st dt;
  ignore (safe_send_response fd (Wire.Result { r = res; cached; wall_us = dt }))

(* -- graceful degradation ------------------------------------------- *)

(* When the store turns hostile — ENOSPC/EROFS/EIO on a put or get, or
   a storm of consecutive corrupt entries (a directory that keeps
   handing back garbage) — the daemon flips to compute-only mode: the
   memo table and the worker pool still answer every query, the store
   is simply skipped.  [st_degraded] counts every store operation
   failed or skipped this way.  A periodic probe (a real commit through
   the put path) re-arms the store once the device recovers. *)

let corrupt_storm_threshold = 5

let bump_degraded st =
  st.stats <-
    { st.stats with Wire.st_degraded = st.stats.Wire.st_degraded + 1 }

let enter_degraded st ~reason =
  bump_degraded st;
  if not st.degraded then begin
    st.degraded <- true;
    st.next_probe <- now () +. st.cfg.store_probe_s;
    logf st "store degraded (%s): serving compute-only; re-probing every %gs"
      reason st.cfg.store_probe_s
  end

(* While degraded, each store access first checks whether the probe
   window elapsed; a successful probe re-arms immediately. *)
let maybe_reprobe st =
  if st.degraded && now () >= st.next_probe then begin
    match Store.probe st.store with
    | Ok () ->
      st.degraded <- false;
      st.consec_corrupt <- 0;
      logf st "store probe succeeded; store re-armed"
    | Error msg ->
      st.next_probe <- now () +. st.cfg.store_probe_s;
      logf st "store probe failed (%s); staying degraded" msg
  end

let store_put st ~key ~canonical ~data =
  maybe_reprobe st;
  if st.degraded then begin
    bump_degraded st;
    false
  end
  else
    match Store.put st.store ~key ~canonical ~data with
    | Ok () -> true
    | Error msg ->
      logf st "store put %s failed: %s" key msg;
      enter_degraded st ~reason:msg;
      false

let store_get st ~key ~canonical =
  maybe_reprobe st;
  if st.degraded then begin
    bump_degraded st;
    None
  end
  else begin
    let io_before = Store.io_error_count st.store in
    let found = Store.get st.store ~key ~canonical in
    if Store.io_error_count st.store > io_before then
      enter_degraded st ~reason:"read error";
    found
  end

(* Look the query up in the two cache layers.  [`Hit r] answers now;
   [`Resume n] means a persisted fuzz prefix lets the computation start
   at trial [n]; [`Miss] is a cold start. *)
let lookup st ~canonical ~key =
  match Hashtbl.find_opt st.memo canonical with
  | Some r ->
    st.stats <- { st.stats with Wire.st_hits_mem = st.stats.Wire.st_hits_mem + 1 };
    `Hit r
  | None ->
    let before = Store.corrupt_count st.store in
    let found = store_get st ~key ~canonical in
    let corrupted = Store.corrupt_count st.store - before in
    if corrupted > 0 then begin
      st.stats <-
        { st.stats with Wire.st_corrupt = st.stats.Wire.st_corrupt + corrupted };
      st.consec_corrupt <- st.consec_corrupt + corrupted;
      if st.consec_corrupt >= corrupt_storm_threshold then
        enter_degraded st ~reason:"corruption storm";
      logf st "store entry %s corrupt; discarded, recomputing" key
    end
    else if found <> None then st.consec_corrupt <- 0;
    (match found with
    | Some data ->
      (match decode_entry data with
      | Some (Final r) ->
        Hashtbl.replace st.memo canonical r;
        st.stats <-
          { st.stats with
            Wire.st_hits_store = st.stats.Wire.st_hits_store + 1 };
        `Hit r
      | Some (Prefix n) when n > 0 ->
        st.stats <-
          { st.stats with
            Wire.st_prefix_resumed = st.stats.Wire.st_prefix_resumed + 1 };
        `Resume n
      | Some (Prefix _) -> `Miss
      | None ->
        (* checksummed bytes that still fail to decode: a format skew
           from an older build — treat exactly like corruption *)
        st.stats <-
          { st.stats with Wire.st_corrupt = st.stats.Wire.st_corrupt + 1 };
        (try Sys.remove (Store.path st.store ~key) with Sys_error _ -> ());
        `Miss)
    | None -> `Miss)

let schedule st ~canonical ~key ~q ~deadline_s ~start ~waiter =
  match Hashtbl.find_opt st.inflight canonical with
  | Some job ->
    st.stats <- { st.stats with Wire.st_joined = st.stats.Wire.st_joined + 1 };
    job.j_waiters <- waiter :: job.j_waiters
  | None ->
    st.stats <- { st.stats with Wire.st_misses = st.stats.Wire.st_misses + 1 };
    let deadline_s =
      match deadline_s with Some _ as d -> d | None -> st.cfg.default_deadline_s
    in
    let job =
      { j_canonical = canonical; j_key = key; j_q = q; j_deadline_s = deadline_s;
        j_start = start; j_waiters = [ waiter ] }
    in
    Hashtbl.replace st.inflight canonical job;
    let depth = Hashtbl.length st.inflight in
    if depth > st.stats.Wire.st_queue_peak then
      st.stats <- { st.stats with Wire.st_queue_peak = depth };
    Mutex.lock st.mu;
    Queue.add (Some job) st.jobs;
    Condition.signal st.cond;
    Mutex.unlock st.mu

let handle_query st fd q deadline_s =
  let t0 = now () in
  st.stats <- { st.stats with Wire.st_queries = st.stats.Wire.st_queries + 1 };
  match Api.canonical q with
  | exception Invalid_argument msg ->
    ignore (safe_send_response fd (Wire.Error msg))
  | canonical ->
    if st.draining then
      ignore (safe_send_response fd (Wire.Error "daemon is shutting down"))
    else begin
      let key = Api.key q in
      match lookup st ~canonical ~key with
      | `Hit r -> reply_result st fd ~cached:true ~t0 r
      | `Resume n ->
        schedule st ~canonical ~key ~q ~deadline_s ~start:n ~waiter:(fd, t0)
      | `Miss ->
        schedule st ~canonical ~key ~q ~deadline_s ~start:0 ~waiter:(fd, t0)
    end

let handle_completion st { c_job = job; c_result } =
  Hashtbl.remove st.inflight job.j_canonical;
  match c_result with
  | Error msg ->
    logf st "job %s failed: %s" job.j_key msg;
    List.iter
      (fun (fd, _) -> ignore (safe_send_response fd (Wire.Error msg)))
      job.j_waiters
  | Ok { Api.res; cacheable; fuzz_prefix } ->
    st.stats <- { st.stats with Wire.st_computed = st.stats.Wire.st_computed + 1 };
    if cacheable then begin
      Hashtbl.replace st.memo job.j_canonical res;
      ignore
        (store_put st ~key:job.j_key ~canonical:job.j_canonical
           ~data:(encode_entry (Final res)))
    end
    else begin
      (match fuzz_prefix with
      | Some n when n > job.j_start ->
        if
          store_put st ~key:job.j_key ~canonical:job.j_canonical
            ~data:(encode_entry (Prefix n))
        then
          st.stats <-
            { st.stats with
              Wire.st_prefix_stored = st.stats.Wire.st_prefix_stored + 1 }
      | _ -> ())
    end;
    List.iter
      (fun (fd, t0) -> reply_result st fd ~cached:false ~t0 res)
      job.j_waiters

let current_stats st =
  { st.stats with Wire.st_uptime_s = now () -. st.started }

let handle_request st fd = function
  | Wire.Query { q; deadline_s } -> handle_query st fd q deadline_s
  | Wire.Stats ->
    ignore (safe_send_response fd (Wire.Stats_r (current_stats st)))
  | Wire.Ping -> ignore (safe_send_response fd Wire.Pong)
  | Wire.Shutdown ->
    st.draining <- true;
    st.shutdown_fds <- fd :: st.shutdown_fds

(* -- socket lifecycle ----------------------------------------------- *)

let bind_socket path =
  if Sys.file_exists path then begin
    (* stale socket from a crashed daemon, or a live one?  Probe it. *)
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      try Unix.connect probe (Unix.ADDR_UNIX path); true
      with Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) -> false
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    if live then
      failwith (Fmt.str "a daemon is already listening on %s" path);
    (try Unix.unlink path with Unix.Unix_error _ -> ())
  end;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.bind fd (Unix.ADDR_UNIX path)
   with Unix.Unix_error (Unix.EADDRINUSE, _, _) ->
     (* lost a simultaneous-start race: another daemon bound the path
        between our staleness probe and here *)
     (try Unix.close fd with Unix.Unix_error _ -> ());
     failwith (Fmt.str "a daemon is already listening on %s" path));
  Unix.listen fd 64;
  fd

(* -- the main loop -------------------------------------------------- *)

let drain_done st =
  let rec pop () =
    Mutex.lock st.mu;
    let c = Queue.take_opt st.done_q in
    Mutex.unlock st.mu;
    match c with
    | Some c -> handle_completion st c; pop ()
    | None -> ()
  in
  pop ()

let run cfg =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let store = Store.open_ ~dir:cfg.store_dir in
  let listen_fd = bind_socket cfg.socket in
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_w;
  let workers = max 1 cfg.workers in
  let st =
    { cfg; store; memo = Hashtbl.create 64; inflight = Hashtbl.create 16;
      mu = Mutex.create (); cond = Condition.create ();
      jobs = Queue.create (); done_q = Queue.create (); wake_w; wake_r;
      token = Supervisor.token (); stats = Wire.zero_stats ~workers;
      degraded = false; next_probe = 0.; consec_corrupt = 0;
      draining = false; shutdown_fds = []; clients = []; started = now () }
  in
  let pool =
    List.init workers (fun i -> Domain.spawn (fun () -> worker_loop st (i + 1)))
  in
  logf st "listening on %s (store %s, %d worker%s)" cfg.socket cfg.store_dir
    workers (if workers = 1 then "" else "s");
  let listening = ref true in
  let finished st =
    st.draining && Hashtbl.length st.inflight = 0
    && (Mutex.lock st.mu;
        let empty = Queue.is_empty st.jobs && Queue.is_empty st.done_q in
        Mutex.unlock st.mu;
        empty)
  in
  let rec loop () =
    if st.draining && !listening then begin
      listening := false;
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      (try Unix.unlink cfg.socket with Unix.Unix_error _ -> ())
    end;
    if finished st then ()
    else begin
      let watch =
        (if !listening then [ listen_fd ] else [])
        @ (st.wake_r :: st.clients)
      in
      let readable, _, _ =
        try Unix.select watch [] [] 0.5
        with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      List.iter
        (fun fd ->
          if fd = listen_fd && !listening then begin
            match Unix.accept listen_fd with
            | client, _ -> st.clients <- client :: st.clients
            | exception Unix.Unix_error _ -> ()
          end
          else if fd = st.wake_r then begin
            let buf = Bytes.create 64 in
            (try ignore (Unix.read st.wake_r buf 0 64)
             with Unix.Unix_error _ -> ());
            drain_done st
          end
          else begin
            match Wire.recv_request fd with
            | req -> handle_request st fd req
            | exception (Wire.Closed | Unix.Unix_error _ | Failure _) ->
              close_client st fd
          end)
        readable;
      (* completions can land between selects; sweep regardless *)
      drain_done st;
      loop ()
    end
  in
  loop ();
  (* drained: stop the pool, answer the shutdown requester(s), tidy up *)
  Mutex.lock st.mu;
  List.iter (fun _ -> Queue.add None st.jobs) pool;
  Condition.broadcast st.cond;
  Mutex.unlock st.mu;
  List.iter Domain.join pool;
  let final = current_stats st in
  List.iter
    (fun fd -> ignore (safe_send_response fd (Wire.Stats_r final)))
    st.shutdown_fds;
  List.iter
    (fun fd -> ignore (safe_send_response fd Wire.Shutting_down))
    (List.filter (fun c -> not (List.mem c st.shutdown_fds)) st.clients);
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    st.clients;
  (try Unix.close st.wake_r with Unix.Unix_error _ -> ());
  (try Unix.close st.wake_w with Unix.Unix_error _ -> ());
  if !listening then begin
    (try Unix.close listen_fd with Unix.Unix_error _ -> ());
    (try Unix.unlink cfg.socket with Unix.Unix_error _ -> ())
  end;
  logf st "drained; bye (%a)" Wire.pp_stats final;
  final
