(** The supervised verification daemon.

    Architecture: one main domain owns the listening socket, all client
    connections and all mutable service state (memo table, in-flight
    bookkeeping, counters); a pool of worker domains runs {!Api.compute}
    under {!Lbsa_runtime.Supervisor.run_shard} fault isolation.  Jobs
    and completions cross the domain boundary through mutex-guarded
    queues plus a self-pipe that wakes the [select] loop — no shared
    mutable caches, no fds in workers.

    Caching: answers flow memo table → persistent {!Store} → compute.
    Only key-determined outcomes are cached ({!Api.computed.cacheable});
    deadline-cut fuzz campaigns persist their completed-trial prefix so
    a repeat query resumes instead of restarting.  Identical in-flight
    queries are coalesced (single-flight): the duplicate joins the
    running job's waiter list and every waiter gets the one answer.

    Shutdown is a drain: stop accepting, finish and answer every queued
    and in-flight job, then reply to the requester with the final
    counters and exit.

    Graceful degradation: a store that hits device-level errors
    (ENOSPC, EROFS, EIO — real or {!Lbsa_util.Rio}-injected) or a storm
    of consecutive corrupt entries flips the daemon into compute-only
    mode — queries keep being answered from the memo table and the
    worker pool, store reads and writes are skipped and counted in
    [st_degraded].  Every [store_probe_s] seconds a real commit is
    probed through the put path; success re-arms the store. *)

type config = {
  socket : string;  (** unix-domain socket path *)
  store_dir : string;  (** persistent store directory *)
  workers : int;  (** worker domains (clamped to ≥ 1) *)
  default_deadline_s : float option;
      (** per-query wall-clock cap when the client sets none *)
  store_probe_s : float;
      (** how often a degraded store is re-probed for recovery *)
  log : bool;  (** chatter on stderr *)
}

val run : config -> Wire.stats
(** Serve until a [Shutdown] request has been received and the queue has
    drained; returns the final counters.  Raises [Failure] if another
    daemon already listens on [config.socket] (a stale socket file from
    a crash is detected by probing and silently replaced). *)
