open Lbsa_util

(* The persistent memo store: one file per entry in a flat directory,
   addressed by the query key's hex digest.

   Entry layout:

     LBSA-STORE/1\n
     <16 hex chars: FNV-1a of the body>\n
     <body: 4-byte BE canonical length, canonical preimage, data>

   The failure policy is "degrade to recomputation, never a wrong
   answer": any deviation — missing magic, short file, checksum
   mismatch, a stored preimage that is not the requested one (a digest
   collision or a hand-renamed file) — makes [get] count the entry
   corrupt, delete it, and report a miss.  Writes go through a
   tmp-then-rename so a crash mid-write leaves either the old entry or
   none, and a concurrent reader never sees a torn file. *)

type t = {
  dir : string;
  mutable corrupt : int;
  mutable oversized : int;
  mutable io_errors : int;
  mutable puts : int;
  mutable gets : int;
}

let magic = "LBSA-STORE/1\n"

(* Entries are verdict+stats summaries, a few hundred bytes each; the
   cap is pure armour.  Half the wire layer's 16 MB frame cap: anything
   the store accepts is guaranteed to fit back through a response frame
   with room to spare, so a future payload that somehow embeds graph
   bulk (a 10^7-state exploration is gigabytes) is refused here — the
   service degrades to recomputing that answer — rather than persisted
   only to die as a frame error on every later cache hit. *)
let max_payload = 8 * 1024 * 1024

let open_ ~dir =
  (if not (Sys.file_exists dir) then
     try Unix.mkdir dir 0o755
     with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  if not (Sys.is_directory dir) then
    failwith (Fmt.str "Store.open_: %s is not a directory" dir);
  { dir; corrupt = 0; oversized = 0; io_errors = 0; puts = 0; gets = 0 }

let dir t = t.dir
let corrupt_count t = t.corrupt
let oversized_count t = t.oversized
let io_error_count t = t.io_errors

let path t ~key = Filename.concat t.dir (key ^ ".lbsa")

let body ~canonical ~data =
  let clen = String.length canonical in
  let b = Buffer.create (4 + clen + String.length data) in
  Buffer.add_int32_be b (Int32.of_int clen);
  Buffer.add_string b canonical;
  Buffer.add_string b data;
  Buffer.contents b

(* Entry commits run the full Rio durability discipline (write tmp,
   fsync file, rename, fsync directory): a power loss at any point
   leaves the old entry or none, never a zero-length "committed"
   file. *)
let put_unchecked t ~key ~canonical ~data =
  let file = path t ~key in
  let body = body ~canonical ~data in
  Rio.with_atomic_file ~site:"store.put" ~path:file (fun w ->
      Rio.write_string w magic;
      Rio.write_string w (Fnv.to_hex (Fnv.string body));
      Rio.write_string w "\n";
      Rio.write_string w body);
  t.puts <- t.puts + 1

let put t ~key ~canonical ~data =
  if 4 + String.length canonical + String.length data > max_payload then begin
    (* refuse, don't write: the entry would be unservable (see
       [max_payload]); the daemon just recomputes this answer *)
    t.oversized <- t.oversized + 1;
    Ok ()
  end
  else
    match put_unchecked t ~key ~canonical ~data with
    | () -> Ok ()
    | exception Unix.Unix_error (e, _, _) ->
      t.io_errors <- t.io_errors + 1;
      Error (Unix.error_message e)
    | exception Sys_error msg ->
      t.io_errors <- t.io_errors + 1;
      Error msg

(* A put/remove of a throwaway entry through the exact commit path:
   the daemon's degraded mode re-probes with this before re-arming. *)
let probe t =
  let key = ".probe" in
  match put_unchecked t ~key ~canonical:"probe" ~data:"" with
  | () ->
    t.puts <- t.puts - 1;
    (try Sys.remove (path t ~key) with Sys_error _ -> ());
    Ok ()
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | exception Sys_error msg -> Error msg

let discard t file =
  t.corrupt <- t.corrupt + 1;
  try Sys.remove file with Sys_error _ -> ()

(* Read and validate one entry; [None] on any defect. *)
let read_entry ~canonical file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let len = in_channel_length ic in
      let hlen = String.length magic + 17 in
      if len < hlen + 4 then None
      else begin
        let header = really_input_string ic (String.length magic) in
        let sum = really_input_string ic 17 in
        if header <> magic || sum.[16] <> '\n' then None
        else begin
          let body = really_input_string ic (len - hlen) in
          if Fnv.to_hex (Fnv.string body) <> String.sub sum 0 16 then None
          else
            let clen = Int32.to_int (String.get_int32_be body 0) in
            if clen < 0 || 4 + clen > String.length body then None
            else if String.sub body 4 clen <> canonical then None
            else Some (String.sub body (4 + clen)
                         (String.length body - 4 - clen))
        end
      end)

(* Failure classification on read: a validation defect (bad magic,
   checksum, preimage) means the *entry* is bad — discard it and
   recompute; a [Unix_error] means the *device* is sick (injected or
   real EIO) — the entry may be fine, so keep it, retry once with
   backoff, and count an io error for the daemon's degradation
   tracking. *)
let get t ~key ~canonical =
  t.gets <- t.gets + 1;
  let file = path t ~key in
  if not (Sys.file_exists file) then None
  else
    let attempt () =
      Rio.inject_read_fault ~site:"store.get";
      read_entry ~canonical file
    in
    match
      try attempt ()
      with Unix.Unix_error _ ->
        Rio.sleep_backoff ~site:"store.get" ~attempt:0;
        attempt ()
    with
    | Some data -> Some data
    | None ->
      discard t file;
      None
    | exception (Sys_error _ | End_of_file) ->
      discard t file;
      None
    | exception Unix.Unix_error _ ->
      t.io_errors <- t.io_errors + 1;
      None

let entries t =
  if Sys.file_exists t.dir && Sys.is_directory t.dir then
    Array.to_list (Sys.readdir t.dir)
    |> List.filter (fun f -> Filename.check_suffix f ".lbsa")
    |> List.map Filename.chop_extension
    |> List.sort String.compare
  else []
