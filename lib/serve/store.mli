(** The persistent content-addressed memo store: one checksummed file
    per entry, named by the query key's hex digest, holding the full
    canonical preimage next to the payload.

    Correctness policy: a corrupt, truncated, tampered or colliding
    entry is detected on read, counted, deleted and reported as a miss —
    the service recomputes; it never serves a wrong answer.  The store
    itself is payload-agnostic (bytes in, bytes out); {!Daemon} layers
    its entry encoding on top. *)

type t

val open_ : dir:string -> t
(** Create or open the store directory.  Raises [Failure] if [dir]
    exists and is not a directory. *)

val dir : t -> string

val max_payload : int
(** The largest [canonical]+[data] body {!put} will persist (8 MB, half
    the wire layer's frame cap).  Entries are verdict+stats summaries a
    few hundred bytes long, so the cap is pure armour: a payload that
    somehow embedded graph bulk (a 10^7-state exploration answer) would
    otherwise be persisted only to die as a frame error on every later
    cache hit. *)

val put :
  t -> key:string -> canonical:string -> data:string -> (unit, string) result
(** Atomically write the entry for [key] with the full {!Lbsa_util.Rio}
    durability discipline (tmp, fsync file, rename, fsync directory).
    A body over {!max_payload} is refused — nothing is written,
    {!oversized_count} is bumped, and the call still returns [Ok ()]
    (a policy refusal, not a store failure).  [Error msg] means the
    write itself failed (ENOSPC, EROFS, EIO, ...): nothing torn is left
    behind, {!io_error_count} is bumped, and the daemon uses this to
    flip into compute-only degraded mode. *)

val probe : t -> (unit, string) result
(** Commit and remove a throwaway entry through the exact {!put} path —
    the degraded-mode re-probe.  Does not perturb {!entries} or the
    put counter. *)

val get : t -> key:string -> canonical:string -> string option
(** The payload stored for [key], provided the entry validates (magic,
    checksum) and its stored preimage equals [canonical].  A validation
    defect deletes the entry, bumps {!corrupt_count} and yields [None];
    a device-level read error ([Unix_error], retried once with backoff)
    keeps the entry, bumps {!io_error_count} and yields [None]. *)

val corrupt_count : t -> int
(** Entries discarded as corrupt/truncated/colliding since [open_]. *)

val oversized_count : t -> int
(** Writes refused by the {!max_payload} guard since [open_]. *)

val io_error_count : t -> int
(** Device-level put/get failures (ENOSPC, EROFS, EIO, ...) since
    [open_] — the daemon's degradation signal. *)

val entries : t -> string list
(** All entry keys currently on disk, sorted (for tests and tooling). *)

val path : t -> key:string -> string
(** The entry file a key maps to (for fault-injection tests). *)
