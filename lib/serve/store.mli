(** The persistent content-addressed memo store: one checksummed file
    per entry, named by the query key's hex digest, holding the full
    canonical preimage next to the payload.

    Correctness policy: a corrupt, truncated, tampered or colliding
    entry is detected on read, counted, deleted and reported as a miss —
    the service recomputes; it never serves a wrong answer.  The store
    itself is payload-agnostic (bytes in, bytes out); {!Daemon} layers
    its entry encoding on top. *)

type t

val open_ : dir:string -> t
(** Create or open the store directory.  Raises [Failure] if [dir]
    exists and is not a directory. *)

val dir : t -> string

val put : t -> key:string -> canonical:string -> data:string -> unit
(** Atomically (tmp-then-rename) write the entry for [key]. *)

val get : t -> key:string -> canonical:string -> string option
(** The payload stored for [key], provided the entry validates (magic,
    checksum) and its stored preimage equals [canonical].  Any defect
    deletes the entry, bumps {!corrupt_count} and yields [None]. *)

val corrupt_count : t -> int
(** Entries discarded as corrupt/truncated/colliding since [open_]. *)

val entries : t -> string list
(** All entry keys currently on disk, sorted (for tests and tooling). *)

val path : t -> key:string -> string
(** The entry file a key maps to (for fault-injection tests). *)
