(* The wire protocol: length-prefixed marshalled frames over a local
   stream socket.

   Frame layout: 4 magic bytes ("LBS1"), 4-byte big-endian payload
   length, then the payload ([Marshal] of a {!request} or {!response}).
   Marshalling is safe here because both ends are the same binary
   family speaking plain data (ints, strings, options — never values
   with intern ids), the magic guards against a stray client, and the
   length cap bounds allocation before any unmarshalling happens. *)

type stats = {
  st_queries : int;
  st_hits_mem : int;
  st_hits_store : int;
  st_misses : int;
  st_computed : int;
  st_joined : int;
  st_queue_peak : int;
  st_workers : int;
  st_corrupt : int;
  st_degraded : int;
  st_prefix_stored : int;
  st_prefix_resumed : int;
  st_hot_us_total : float;
  st_hot_count : int;
  st_cold_us_total : float;
  st_cold_count : int;
  st_uptime_s : float;
}

type request =
  | Query of { q : Api.query; deadline_s : float option }
  | Stats
  | Ping
  | Shutdown

type response =
  | Result of { r : Api.result; cached : bool; wall_us : float }
  | Stats_r of stats
  | Pong
  | Shutting_down
  | Error of string

let magic = "LBS1"
let max_frame = 16 * 1024 * 1024

exception Closed

(* Both loops go through {!Lbsa_util.Rio}: EINTR/EAGAIN are retried
   (a signal must not kill a healthy connection) and short transfers
   are completed there; the only end-of-stream signal is a clean
   [End_of_file], which maps to [Closed] — a peer that died or
   half-closed its socket mid-frame, never an infinite loop.  Hard I/O
   errors propagate as [Unix_error] for the caller's
   close-this-connection path. *)

let really_read fd buf off len =
  try Lbsa_util.Rio.really_read ~site:"wire.read" fd buf off len
  with End_of_file -> raise Closed

let really_write fd buf off len =
  Lbsa_util.Rio.really_write ~site:"wire.write" fd buf off len

let send fd msg =
  let payload = Marshal.to_bytes msg [] in
  let len = Bytes.length payload in
  if len > max_frame then invalid_arg "Wire.send: frame too large";
  let frame = Bytes.create (8 + len) in
  Bytes.blit_string magic 0 frame 0 4;
  Bytes.set_int32_be frame 4 (Int32.of_int len);
  Bytes.blit payload 0 frame 8 len;
  really_write fd frame 0 (8 + len)

let recv fd =
  let header = Bytes.create 8 in
  really_read fd header 0 8;
  if Bytes.sub_string header 0 4 <> magic then
    failwith "Wire.recv: bad frame magic (not an lbsa-serve peer?)";
  let len = Int32.to_int (Bytes.get_int32_be header 4) in
  if len < 0 || len > max_frame then
    failwith (Printf.sprintf "Wire.recv: implausible frame length %d" len);
  let payload = Bytes.create len in
  really_read fd payload 0 len;
  Marshal.from_bytes payload 0

let send_request fd (r : request) = send fd r
let recv_request fd : request = recv fd
let send_response fd (r : response) = send fd r
let recv_response fd : response = recv fd

let zero_stats ~workers =
  {
    st_queries = 0;
    st_hits_mem = 0;
    st_hits_store = 0;
    st_misses = 0;
    st_computed = 0;
    st_joined = 0;
    st_queue_peak = 0;
    st_workers = workers;
    st_corrupt = 0;
    st_degraded = 0;
    st_prefix_stored = 0;
    st_prefix_resumed = 0;
    st_hot_us_total = 0.;
    st_hot_count = 0;
    st_cold_us_total = 0.;
    st_cold_count = 0;
    st_uptime_s = 0.;
  }

let pp_stats ppf s =
  Fmt.pf ppf
    "queries=%d hits=%d (mem %d, store %d) misses=%d computed=%d joined=%d \
     queue_peak=%d workers=%d corrupt=%d degraded=%d prefix_stored=%d \
     prefix_resumed=%d hot_us_mean=%.1f cold_us_mean=%.1f uptime_s=%.1f"
    s.st_queries
    (s.st_hits_mem + s.st_hits_store)
    s.st_hits_mem s.st_hits_store s.st_misses s.st_computed s.st_joined
    s.st_queue_peak s.st_workers s.st_corrupt s.st_degraded s.st_prefix_stored
    s.st_prefix_resumed
    (if s.st_hot_count = 0 then 0.
     else s.st_hot_us_total /. float s.st_hot_count)
    (if s.st_cold_count = 0 then 0.
     else s.st_cold_us_total /. float s.st_cold_count)
    s.st_uptime_s
