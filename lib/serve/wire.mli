(** The daemon's wire protocol: length-prefixed marshalled frames over a
    local stream socket (4 magic bytes, 4-byte big-endian length,
    marshalled plain-data payload).  Trusted-local-peer protocol: the
    magic and the frame-length cap reject stray clients, nothing more —
    do not expose the socket beyond the machine boundary. *)

(** Cumulative daemon counters, as served by a [Stats] request. *)
type stats = {
  st_queries : int;  (** [Query] requests received *)
  st_hits_mem : int;  (** answered from the in-memory memo *)
  st_hits_store : int;  (** answered from the persistent store *)
  st_misses : int;  (** required a computation *)
  st_computed : int;  (** computations actually run (≤ misses) *)
  st_joined : int;  (** queries that joined an in-flight computation *)
  st_queue_peak : int;  (** max simultaneous distinct in-flight keys *)
  st_workers : int;
  st_corrupt : int;  (** corrupt / truncated store entries discarded *)
  st_degraded : int;
      (** store operations skipped or failed while the daemon is in
          compute-only degraded mode (0 while the store is healthy) *)
  st_prefix_stored : int;  (** partial fuzz prefixes persisted *)
  st_prefix_resumed : int;  (** computations resumed from a prefix *)
  st_hot_us_total : float;  (** cumulative latency of cache hits *)
  st_hot_count : int;
  st_cold_us_total : float;  (** cumulative latency of computed answers *)
  st_cold_count : int;
  st_uptime_s : float;
}

type request =
  | Query of { q : Api.query; deadline_s : float option }
  | Stats
  | Ping
  | Shutdown

type response =
  | Result of { r : Api.result; cached : bool; wall_us : float }
  | Stats_r of stats
  | Pong
  | Shutting_down
  | Error of string

exception Closed
(** The peer closed the connection mid-frame. *)

val send_request : Unix.file_descr -> request -> unit
val recv_request : Unix.file_descr -> request
val send_response : Unix.file_descr -> response -> unit
val recv_response : Unix.file_descr -> response

val zero_stats : workers:int -> stats
val pp_stats : Format.formatter -> stats -> unit
