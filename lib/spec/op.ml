(* An operation invocation: a name plus argument values.  Objects give
   meaning to operations via their sequential specification. *)

type t = { name : string; args : Value.t list }

let make name args = { name; args }

let compare a b =
  let c = String.compare a.name b.name in
  if c <> 0 then c else List.compare Value.compare a.args b.args

let equal a b =
  a == b
  || (a.name == b.name || String.equal a.name b.name)
     && List.equal Value.equal a.args b.args

let pp ppf { name; args } =
  match args with
  | [] -> Fmt.pf ppf "%s()" name
  | _ -> Fmt.pf ppf "%s(%a)" name Fmt.(list ~sep:(any ", ") Value.pp) args

let to_string op = Fmt.str "%a" pp op
