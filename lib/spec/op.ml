(* An operation invocation: a name plus argument values.  Objects give
   meaning to operations via their sequential specification. *)

type t = { name : string; args : Value.t list }

let make name args = { name; args }

let compare a b =
  let c = String.compare a.name b.name in
  if c <> 0 then c else List.compare Value.compare a.args b.args

let equal a b =
  a == b
  || (a.name == b.name || String.equal a.name b.name)
     && List.equal Value.equal a.args b.args

(* FNV stream over the name then the args' cached structural hashes —
   the same mixing as [Value.hash_fold], so op hashes are as
   collision-resistant (and as cheap) as value hashes. *)
let hash (o : t) =
  List.fold_left Value.hash_fold
    (Value.hash_combine 0x811c9dc5 (Hashtbl.hash o.name))
    o.args
  land max_int

let pp ppf { name; args } =
  match args with
  | [] -> Fmt.pf ppf "%s()" name
  | _ -> Fmt.pf ppf "%s(%a)" name Fmt.(list ~sep:(any ", ") Value.pp) args

let to_string op = Fmt.str "%a" pp op
