(** Operation invocations: a name plus argument values. *)

type t = { name : string; args : Value.t list }

val make : string -> Value.t list -> t
val compare : t -> t -> int
val equal : t -> t -> bool

val hash : t -> int
(** FNV stream over the name and the args' cached structural hashes,
    consistent with [Value.hash_fold]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
