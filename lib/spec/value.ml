(* The universal value type, hash-consed.

   Everything in the simulation universe -- proposal values, object
   responses, object states, and protocol local states -- is a [Value.t].
   Keeping a single comparable, hashable tree type is the design decision
   that makes global configurations comparable, which in turn is what lets
   the model checker memoize reachability and compute valences.

   Values are interned at construction in a global, lock-striped table:
   structurally equal values are physically equal, [equal] is [(==)],
   [hash] reads a cached structural hash, and [compare] only walks trees
   when its arguments are distinct (in which case the first differing
   branch decides quickly).

   THE ID-NEVER-ORDERS INVARIANT.  [id] is assigned by a global counter
   in allocation order, so it differs between runs that construct the
   same values in different orders.  It exists only for identity and for
   internal memo keys; [hash] and [compare] are purely structural, and
   nothing observable (explorer node ids, edge orders, traces, checker
   verdicts) may depend on ids.  Tested by the cross-process fingerprint
   test in test/test_modelcheck.ml. *)

type t = { node : node; h : int; id : int }

and node =
  | Unit
  | Bool of bool
  | Int of int
  | Sym of string
  | Bot (* the special value "⊥" returned by upset/exhausted objects *)
  | Nil (* the special value "NIL" used in sequential specifications *)
  | Done (* the response "done" of propose operations on PAC objects *)
  | Pair of t * t
  | List of t list

(* Element-wise FNV-1a-style mixing.  [Hashtbl.hash] inspects only ~10
   meaningful leaves, so large values that differ deep inside (long
   lists, nested pairs) all collide; the model checker's dedup tables
   need every leaf to contribute.  With hash-consing each node mixes its
   children's CACHED hashes, so construction is O(node), yet the result
   is a full-tree structural hash: identical for equal trees in any
   process of any run. *)
let hash_combine h k = (h lxor k) * 0x100000001b3

let fnv_seed = 0x811c9dc5

let node_hash n =
  (match n with
  | Unit -> hash_combine fnv_seed 3
  | Bool false -> hash_combine fnv_seed 5
  | Bool true -> hash_combine fnv_seed 7
  | Int i -> hash_combine fnv_seed (i lxor 0x2545F491)
  | Sym s -> hash_combine fnv_seed (Hashtbl.hash s)
  | Bot -> hash_combine fnv_seed 11
  | Nil -> hash_combine fnv_seed 13
  | Done -> hash_combine fnv_seed 17
  | Pair (a, b) ->
    hash_combine (hash_combine (hash_combine fnv_seed 19) a.h) b.h
  | List vs ->
    List.fold_left (fun acc v -> hash_combine acc v.h) (hash_combine fnv_seed 23) vs)
  land max_int

(* Shallow equality for intern probes: same constructor, equal leaf
   payload, PHYSICALLY equal children.  Sound because children of a
   candidate node are themselves already interned representatives. *)
let node_equal a b =
  match (a, b) with
  | Unit, Unit | Bot, Bot | Nil, Nil | Done, Done -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Sym x, Sym y -> String.equal x y
  | Pair (x1, y1), Pair (x2, y2) -> x1 == x2 && y1 == y2
  | List xs, List ys ->
    let rec eq xs ys =
      match (xs, ys) with
      | [], [] -> true
      | x :: xs', y :: ys' -> x == y && eq xs' ys'
      | _ -> false
    in
    eq xs ys
  | _ -> false

(* The global intern table: [n_stripes] independent open-addressing
   tables, each guarded by its own mutex, stripe chosen from the
   candidate's STRUCTURAL hash.  Striping keeps multi-domain explorer /
   fuzzer construction mostly uncontended (two domains collide only when
   interning values whose hashes share the low 6 bits at the same
   moment); holding the stripe lock across the whole probe+insert keeps
   the table trivially linearizable.  Values escape to other domains
   either through a later [intern] of an equal node (ordered by this
   mutex) or through [Domain.spawn]/[join] edges in the explorer — both
   provide the needed happens-before, and all fields are immutable. *)

let n_stripes = 64 (* power of two *)

type stripe = {
  lock : Mutex.t;
  mutable slots : t array; (* [dummy] marks an empty slot *)
  mutable mask : int;
  mutable size : int;
  mutable hits : int;
  mutable misses : int;
}

(* Sentinel for empty slots; its [h = -1] matches no real value (real
   hashes are [land max_int]-masked, hence non-negative). *)
let dummy = { node = Unit; h = -1; id = -1 }

let stripes =
  Array.init n_stripes (fun _ ->
      {
        lock = Mutex.create ();
        slots = Array.make 16 dummy;
        mask = 15;
        size = 0;
        hits = 0;
        misses = 0;
      })

let next_id = Atomic.make 0

let rec insert_fresh slots mask v i =
  if slots.(i) == dummy then slots.(i) <- v
  else insert_fresh slots mask v ((i + 1) land mask)

let grow s =
  let old = s.slots in
  let mask = (2 * (s.mask + 1)) - 1 in
  let slots = Array.make (mask + 1) dummy in
  Array.iter
    (fun v -> if v != dummy then insert_fresh slots mask v ((v.h lsr 6) land mask))
    old;
  s.slots <- slots;
  s.mask <- mask

let intern n =
  let h = node_hash n in
  let s = Array.unsafe_get stripes (h land (n_stripes - 1)) in
  Mutex.lock s.lock;
  let slots = s.slots and mask = s.mask in
  let rec find i =
    let x = Array.unsafe_get slots i in
    if x == dummy then begin
      let v = { node = n; h; id = Atomic.fetch_and_add next_id 1 } in
      Array.unsafe_set slots i v;
      s.size <- s.size + 1;
      s.misses <- s.misses + 1;
      if 3 * s.size > 2 * (mask + 1) then grow s;
      Mutex.unlock s.lock;
      v
    end
    else if x.h = h && node_equal n x.node then begin
      s.hits <- s.hits + 1;
      Mutex.unlock s.lock;
      x
    end
    else find ((i + 1) land mask)
  in
  find ((h lsr 6) land mask)

type intern_stats = { hits : int; misses : int; size : int; stripes : int }

let intern_stats () =
  let acc = ref { hits = 0; misses = 0; size = 0; stripes = n_stripes } in
  Array.iter
    (fun s ->
      Mutex.lock s.lock;
      acc :=
        {
          !acc with
          hits = !acc.hits + s.hits;
          misses = !acc.misses + s.misses;
          size = !acc.size + s.size;
        };
      Mutex.unlock s.lock)
    stripes;
  !acc

(* Equality and hashing are where hash-consing pays: O(1) each. *)
let equal (a : t) (b : t) = a == b
let hash (v : t) = v.h
let hash_fold acc (v : t) = hash_combine acc v.h

(* Total structural order — IDENTICAL to the pre-hash-consing order
   (sorted [Assoc]/[Set_] encodings and golden traces depend on it).
   Identity short-circuits; ids never participate in the ordering. *)
let rec compare a b =
  if a == b then 0
  else
    match (a.node, b.node) with
    | Unit, Unit -> 0
    | Unit, _ -> -1
    | _, Unit -> 1
    | Bool x, Bool y -> Stdlib.compare x y
    | Bool _, _ -> -1
    | _, Bool _ -> 1
    | Int x, Int y -> Stdlib.compare x y
    | Int _, _ -> -1
    | _, Int _ -> 1
    | Sym x, Sym y -> String.compare x y
    | Sym _, _ -> -1
    | _, Sym _ -> 1
    | Bot, Bot -> 0
    | Bot, _ -> -1
    | _, Bot -> 1
    | Nil, Nil -> 0
    | Nil, _ -> -1
    | _, Nil -> 1
    | Done, Done -> 0
    | Done, _ -> -1
    | _, Done -> 1
    | Pair (x1, y1), Pair (x2, y2) ->
      let c = compare x1 x2 in
      if c <> 0 then c else compare y1 y2
    | Pair _, _ -> -1
    | _, Pair _ -> 1
    | List xs, List ys -> compare_lists xs ys

and compare_lists xs ys =
  if xs == ys then 0
  else
    match (xs, ys) with
    | [], [] -> 0
    | [], _ -> -1
    | _, [] -> 1
    | x :: xs', y :: ys' ->
      let c = compare x y in
      if c <> 0 then c else compare_lists xs' ys'

let rec pp ppf v =
  match v.node with
  | Unit -> Fmt.string ppf "()"
  | Bool b -> Fmt.bool ppf b
  | Int i -> Fmt.int ppf i
  | Sym s -> Fmt.string ppf s
  | Bot -> Fmt.string ppf "⊥"
  | Nil -> Fmt.string ppf "NIL"
  | Done -> Fmt.string ppf "done"
  | Pair (a, b) -> Fmt.pf ppf "(%a, %a)" pp a pp b
  | List vs -> Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any "; ") pp) vs

let to_string v = Fmt.str "%a" pp v

(* Smart constructors — the only way to build a [t].  The nullary and
   boolean constants are interned once at module init; small ints get a
   lock-free cache in front of the table (they are by far the hottest
   leaf constructor in step functions). *)

let node v = v.node
let unit_ = intern Unit
let vfalse = intern (Bool false)
let vtrue = intern (Bool true)
let bool b = if b then vtrue else vfalse
let bot = intern Bot
let nil = intern Nil
let done_ = intern Done
let sym s = intern (Sym s)
let small_int_min = -16
let small_int_max = 255

let small_ints =
  Array.init
    (small_int_max - small_int_min + 1)
    (fun i -> intern (Int (i + small_int_min)))

let int i =
  if i >= small_int_min && i <= small_int_max then
    Array.unsafe_get small_ints (i - small_int_min)
  else intern (Int i)

let pair (a, b) = intern (Pair (a, b))
let list vs = intern (List vs)

let to_int v =
  match v.node with
  | Int i -> Some i
  | _ -> None

let to_int_exn v =
  match v.node with
  | Int i -> i
  | _ -> invalid_arg (Fmt.str "Value.to_int_exn: %a" pp v)

let to_list_exn v =
  match v.node with
  | List vs -> vs
  | _ -> invalid_arg (Fmt.str "Value.to_list_exn: %a" pp v)

let is_bot v = v == bot
let is_nil v = v == nil

(* Association-list maps encoded as values, used for structured object
   states (e.g. the V[1..n] array of an n-PAC object).  Keys are kept
   sorted (structural order) so that equal maps are equal values. *)
module Assoc = struct
  let empty = list []

  let rec set_sorted k v entries =
    match entries with
    | [] -> [ pair (k, v) ]
    | e :: rest -> (
      match e.node with
      | Pair (k', _) ->
        let c = compare k k' in
        if c < 0 then pair (k, v) :: entries
        else if c = 0 then pair (k, v) :: rest
        else e :: set_sorted k v rest
      | _ -> invalid_arg "Value.Assoc: malformed map")

  let set m k v =
    match m.node with
    | List entries -> list (set_sorted k v entries)
    | _ -> invalid_arg "Value.Assoc.set: not a map"

  let get m k =
    match m.node with
    | List entries ->
      let rec find = function
        | [] -> None
        | e :: rest -> (
          match e.node with
          | Pair (k', v') -> if k == k' then Some v' else find rest
          | _ -> invalid_arg "Value.Assoc: malformed map")
      in
      find entries
    | _ -> invalid_arg "Value.Assoc.get: not a map"

  let get_or m k ~default =
    match get m k with
    | Some v -> v
    | None -> default

  let bindings m =
    match m.node with
    | List entries ->
      List.map
        (fun e ->
          match e.node with
          | Pair (k, v) -> (k, v)
          | _ -> invalid_arg "Value.Assoc: malformed map")
        entries
    | _ -> invalid_arg "Value.Assoc.bindings: not a map"

  let of_bindings bs =
    List.fold_left (fun m (k, v) -> set m k v) empty bs
end

module Set_ = struct
  (* Sets encoded as sorted duplicate-free value lists. *)
  let empty = list []

  let elements s =
    match s.node with
    | List vs -> vs
    | _ -> invalid_arg "Value.Set_.elements: not a set"

  let mem v s = List.exists (fun x -> x == v) (elements s)

  let add v s =
    let rec ins = function
      | [] -> [ v ]
      | x :: rest as all ->
        let c = compare v x in
        if c < 0 then v :: all else if c = 0 then all else x :: ins rest
    in
    list (ins (elements s))

  let cardinal s = List.length (elements s)
  let of_list vs = List.fold_left (fun s v -> add v s) empty vs
end
