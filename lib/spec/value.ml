(* The universal value type.

   Everything in the simulation universe -- proposal values, object
   responses, object states, and protocol local states -- is a [Value.t].
   Keeping a single comparable, hashable tree type is the design decision
   that makes global configurations comparable, which in turn is what lets
   the model checker memoize reachability and compute valences. *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Sym of string
  | Bot (* the special value "⊥" returned by upset/exhausted objects *)
  | Nil (* the special value "NIL" used in sequential specifications *)
  | Done (* the response "done" of propose operations on PAC objects *)
  | Pair of t * t
  | List of t list

(* Physical equality short-circuits: step functions rebuild only the
   parts of a value they change, so sibling configurations share most
   subtrees physically and deep compares usually cut off immediately. *)
let rec compare a b =
  if a == b then 0
  else
    match (a, b) with
    | Unit, Unit -> 0
  | Unit, _ -> -1
  | _, Unit -> 1
  | Bool x, Bool y -> Stdlib.compare x y
  | Bool _, _ -> -1
  | _, Bool _ -> 1
  | Int x, Int y -> Stdlib.compare x y
  | Int _, _ -> -1
  | _, Int _ -> 1
  | Sym x, Sym y -> String.compare x y
  | Sym _, _ -> -1
  | _, Sym _ -> 1
  | Bot, Bot -> 0
  | Bot, _ -> -1
  | _, Bot -> 1
  | Nil, Nil -> 0
  | Nil, _ -> -1
  | _, Nil -> 1
  | Done, Done -> 0
  | Done, _ -> -1
  | _, Done -> 1
  | Pair (x1, y1), Pair (x2, y2) ->
    let c = compare x1 x2 in
    if c <> 0 then c else compare y1 y2
  | Pair _, _ -> -1
  | _, Pair _ -> 1
  | List xs, List ys -> compare_lists xs ys

and compare_lists xs ys =
  if xs == ys then 0
  else
    match (xs, ys) with
    | [], [] -> 0
  | [], _ -> -1
  | _, [] -> 1
  | x :: xs', y :: ys' ->
    let c = compare x y in
    if c <> 0 then c else compare_lists xs' ys'

let equal a b = a == b || compare a b = 0

(* Element-wise FNV-1a-style hashing over the WHOLE tree.  [Hashtbl.hash]
   inspects only ~10 meaningful leaves, so large values that differ deep
   inside (long lists, nested pairs) all collide; the model checker's
   dedup tables need every leaf to contribute. *)
let hash_combine h k = (h lxor k) * 0x100000001b3

let rec hash_fold acc = function
  | Unit -> hash_combine acc 3
  | Bool false -> hash_combine acc 5
  | Bool true -> hash_combine acc 7
  | Int i -> hash_combine acc (i lxor 0x2545F491)
  | Sym s -> hash_combine acc (Hashtbl.hash s)
  | Bot -> hash_combine acc 11
  | Nil -> hash_combine acc 13
  | Done -> hash_combine acc 17
  | Pair (a, b) -> hash_fold (hash_fold (hash_combine acc 19) a) b
  | List vs -> List.fold_left hash_fold (hash_combine acc 23) vs

let hash (v : t) = hash_fold 0x811c9dc5 v land max_int

let rec pp ppf = function
  | Unit -> Fmt.string ppf "()"
  | Bool b -> Fmt.bool ppf b
  | Int i -> Fmt.int ppf i
  | Sym s -> Fmt.string ppf s
  | Bot -> Fmt.string ppf "⊥"
  | Nil -> Fmt.string ppf "NIL"
  | Done -> Fmt.string ppf "done"
  | Pair (a, b) -> Fmt.pf ppf "(%a, %a)" pp a pp b
  | List vs -> Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any "; ") pp) vs

let to_string v = Fmt.str "%a" pp v

(* Constructors / accessors used pervasively. *)

let int i = Int i
let bool b = Bool b
let sym s = Sym s
let pair a b = Pair (a, b)
let list vs = List vs

let to_int = function
  | Int i -> Some i
  | _ -> None

let to_int_exn v =
  match v with
  | Int i -> i
  | _ -> invalid_arg (Fmt.str "Value.to_int_exn: %a" pp v)

let to_list_exn = function
  | List vs -> vs
  | v -> invalid_arg (Fmt.str "Value.to_list_exn: %a" pp v)

let is_bot = function
  | Bot -> true
  | _ -> false

let is_nil = function
  | Nil -> true
  | _ -> false

(* Association-list maps encoded as values, used for structured object
   states (e.g. the V[1..n] array of an n-PAC object).  Keys are kept
   sorted so that equal maps are structurally equal values. *)
module Assoc = struct
  let empty = List []

  let rec set_sorted k v = function
    | [] -> [ Pair (k, v) ]
    | Pair (k', v') :: rest as all ->
      let c = compare k k' in
      if c < 0 then Pair (k, v) :: all
      else if c = 0 then Pair (k, v) :: rest
      else Pair (k', v') :: set_sorted k v rest
    | _ -> invalid_arg "Value.Assoc: malformed map"

  let set m k v =
    match m with
    | List entries -> List (set_sorted k v entries)
    | _ -> invalid_arg "Value.Assoc.set: not a map"

  let get m k =
    match m with
    | List entries ->
      let rec find = function
        | [] -> None
        | Pair (k', v') :: rest -> if equal k k' then Some v' else find rest
        | _ -> invalid_arg "Value.Assoc: malformed map"
      in
      find entries
    | _ -> invalid_arg "Value.Assoc.get: not a map"

  let get_or m k ~default =
    match get m k with
    | Some v -> v
    | None -> default

  let bindings m =
    match m with
    | List entries ->
      List.map
        (function
          | Pair (k, v) -> (k, v)
          | _ -> invalid_arg "Value.Assoc: malformed map")
        entries
    | _ -> invalid_arg "Value.Assoc.bindings: not a map"

  let of_bindings bs =
    List.fold_left (fun m (k, v) -> set m k v) empty bs
end

module Set_ = struct
  (* Sets encoded as sorted duplicate-free value lists. *)
  let empty = List []

  let elements = function
    | List vs -> vs
    | _ -> invalid_arg "Value.Set_.elements: not a set"

  let mem v s = List.exists (equal v) (elements s)

  let add v s =
    let rec ins = function
      | [] -> [ v ]
      | x :: rest as all ->
        let c = compare v x in
        if c < 0 then v :: all else if c = 0 then all else x :: ins rest
    in
    List (ins (elements s))

  let cardinal s = List.length (elements s)

  let of_list vs = List.fold_left (fun s v -> add v s) empty vs
end
