(** The universal value type of the simulation universe.

    Proposal values, object responses, object states and protocol local
    states are all values of this single comparable, hashable tree type.
    This is what makes whole configurations comparable and therefore
    memoizable by the model checker. *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Sym of string
  | Bot  (** the special value ⊥ returned by upset/exhausted objects *)
  | Nil  (** the NIL of the paper's sequential specifications *)
  | Done  (** the [done] response of PAC propose operations *)
  | Pair of t * t
  | List of t list

val compare : t -> t -> int
(** Total structural order. *)

val equal : t -> t -> bool

val hash : t -> int
(** Element-wise hash over the whole tree: every leaf contributes, so
    values differing arbitrarily deep hash differently with high
    probability (unlike [Hashtbl.hash], which truncates). *)

val hash_fold : int -> t -> int
(** [hash_fold acc v] folds [v]'s full structure into the accumulator —
    the building block for hashing aggregates of values (e.g. whole
    configurations) without re-mixing per element. *)

val hash_combine : int -> int -> int
(** The FNV-style mixing step used by [hash_fold], for callers that fold
    non-[Value] components (tags, statuses) into the same stream. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val int : int -> t
val bool : bool -> t
val sym : string -> t
val pair : t -> t -> t
val list : t list -> t

val to_int : t -> int option
val to_int_exn : t -> int
val to_list_exn : t -> t list
val is_bot : t -> bool
val is_nil : t -> bool

(** Finite maps encoded as values (sorted association lists), used for
    structured object states such as the V[1..n] array of an n-PAC. *)
module Assoc : sig
  val empty : t
  val set : t -> t -> t -> t
  val get : t -> t -> t option
  val get_or : t -> t -> default:t -> t
  val bindings : t -> (t * t) list
  val of_bindings : (t * t) list -> t
end

(** Finite sets encoded as values (sorted duplicate-free lists), used for
    e.g. the STATE component of the strong 2-SA object. *)
module Set_ : sig
  val empty : t
  val mem : t -> t -> bool
  val add : t -> t -> t
  val cardinal : t -> int
  val elements : t -> t list
  val of_list : t list -> t
end
