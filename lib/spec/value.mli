(** The universal value type of the simulation universe, hash-consed.

    Proposal values, object responses, object states and protocol local
    states are all values of this single comparable, hashable tree type.
    This is what makes whole configurations comparable and therefore
    memoizable by the model checker.

    Values are {e hash-consed}: every [t] is interned in a global,
    domain-safe table at construction, so structurally equal values are
    physically equal.  [equal] is [(==)], [hash] is a field read of the
    cached full-tree structural hash, and [compare] short-circuits on
    identity before falling back to the structural order (which is
    preserved exactly — the sorted [Assoc]/[Set_] encodings and golden
    traces depend on it).

    {b The id-never-orders invariant.}  [id] is unique per structurally
    distinct value but {e allocation-order-dependent}: two runs that
    construct the same values in different orders assign different ids.
    Ids may be used for identity tests and as {e internal} memo/table
    keys, but must never leak into hashes, node ids, orderings, or any
    other output that is compared across runs.  [hash] and [compare] are
    purely structural for exactly this reason. *)

type t = private { node : node; h : int; id : int }
(** [node] is the tree shape; [h] the cached structural hash (equal to
    [hash] of an equal tree in any process, any run); [id] the intern id
    (unique within a run, {e not} stable across runs — see above). *)

and node =
  | Unit
  | Bool of bool
  | Int of int
  | Sym of string
  | Bot  (** the special value ⊥ returned by upset/exhausted objects *)
  | Nil  (** the NIL of the paper's sequential specifications *)
  | Done  (** the [done] response of PAC propose operations *)
  | Pair of t * t
  | List of t list

val node : t -> node

val compare : t -> t -> int
(** Total structural order, identical to the pre-hash-consing order.
    Short-circuits on physical (= id) equality, then falls back to the
    structural ladder; never consults [id] for ordering. *)

val equal : t -> t -> bool
(** Physical equality — sound and complete because values are interned. *)

val hash : t -> int
(** O(1): returns the cached structural hash.  Every leaf of the tree
    contributed at construction time, so values differing arbitrarily
    deep hash differently with high probability (unlike [Hashtbl.hash],
    which truncates). *)

val hash_fold : int -> t -> int
(** [hash_fold acc v] mixes [v]'s cached structural hash into the
    accumulator — the O(1) building block for hashing aggregates of
    values (e.g. whole configurations). *)

val hash_combine : int -> int -> int
(** The FNV-style mixing step used by [hash_fold], for callers that fold
    non-[Value] components (tags, statuses) into the same stream. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Smart constructors — the only way to obtain a [t].  Each interns its
    result, so re-constructing an existing value returns the original
    (physically equal) representative. *)

val unit_ : t
val bool : bool -> t
val int : int -> t
val sym : string -> t
val bot : t
val nil : t
val done_ : t

val pair : t * t -> t
(** Tupled so construction sites read like the former [Pair (a, b)]. *)

val list : t list -> t

val to_int : t -> int option
val to_int_exn : t -> int
val to_list_exn : t -> t list
val is_bot : t -> bool
val is_nil : t -> bool

(** Finite maps encoded as values (sorted association lists), used for
    structured object states such as the V[1..n] array of an n-PAC. *)
module Assoc : sig
  val empty : t
  val set : t -> t -> t -> t
  val get : t -> t -> t option
  val get_or : t -> t -> default:t -> t
  val bindings : t -> (t * t) list
  val of_bindings : (t * t) list -> t
end

(** Finite sets encoded as values (sorted duplicate-free lists), used for
    e.g. the STATE component of the strong 2-SA object. *)
module Set_ : sig
  val empty : t
  val mem : t -> t -> bool
  val add : t -> t -> t
  val cardinal : t -> int
  val elements : t -> t list
  val of_list : t list -> t
end

type intern_stats = {
  hits : int;  (** constructions that found an existing representative *)
  misses : int;  (** constructions that allocated a new representative *)
  size : int;  (** live distinct values in the intern table *)
  stripes : int;  (** number of lock stripes *)
}
(** Cumulative counters of the global intern table, for the bench
    harness.  Counters are summed under the stripe locks, so the
    snapshot is consistent. *)

val intern_stats : unit -> intern_stats
