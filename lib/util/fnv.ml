(* FNV-1a over byte strings.  The serve layer's content-addressed store
   and query keys need a digest that is (a) identical in every process
   and on every platform with 64-bit ints and (b) cheap enough to run
   on every cache probe.  FNV-1a folded into OCaml's 63-bit native int
   is both; collisions are tolerable because every consumer stores the
   full preimage next to the digest and verifies it on read. *)

let prime = 0x100000001b3

let fold_string acc s =
  let h = ref acc in
  String.iter (fun c -> h := (!h lxor Char.code c) * prime) s;
  (* Mix the length in so "a" + "bc" and "ab" + "c" folded in sequence
     cannot collide trivially; keep the result non-negative. *)
  ((!h lxor String.length s) * prime) land max_int

let seed = 0xbf29ce484222325 (* FNV-1a offset basis, truncated to fit OCaml's int *)

let string s = fold_string seed s

let to_hex h = Printf.sprintf "%016x" h
