(** FNV-1a digests over byte strings, folded into the native 63-bit
    [int].  Process- and platform-stable on 64-bit systems: the serve
    layer uses it for content-addressed cache keys and store entry
    checksums, always alongside the full preimage (digests route,
    preimages decide). *)

val seed : int
(** The standard 64-bit FNV offset basis (masked to [max_int]). *)

val fold_string : int -> string -> int
(** [fold_string acc s] mixes [s] (and its length) into [acc].  Chain to
    digest multi-part values without intermediate concatenation. *)

val string : string -> int
(** [fold_string seed s]. *)

val to_hex : int -> string
(** 16 lowercase hex digits, fixed width — usable as a filename. *)
