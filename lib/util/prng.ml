(* SplitMix64: a small, fast, splittable PRNG with reproducible streams.
   We avoid [Random] so that every simulation, schedule and generated
   workload in the repository is a pure function of its seed.

   [int] uses rejection sampling, so bounded draws are exactly uniform
   (no modulo bias).  A rejected draw consumes one extra raw output, but
   the stream is still a pure function of the seed: the same seed and
   the same sequence of calls always yield the same values. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = next_int64 t in
  { state = seed }

(* Keyed substream: a pure function of (seed, index), unlike [split],
   which consumes an output of the parent and therefore depends on every
   draw made before it.  The derived state is the SplitMix64 mix of
   seed + (index+1)*gamma, so distinct indices land in distinct,
   well-scrambled stream positions. *)
let of_substream ~seed ~index =
  if index < 0 then invalid_arg "Prng.of_substream: index must be >= 0";
  let t =
    { state = Int64.add (Int64.of_int seed)
        (Int64.mul golden_gamma (Int64.of_int index)) }
  in
  { state = next_int64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling: a raw draw r lies in a "group" of [bound]
     consecutive values starting at r - (r mod bound); only the last
     group can be incomplete, and draws landing there are biased, so we
     redraw.  Rejection probability is < bound / 2^62. *)
  let rec draw () =
    let r = Int64.to_int (next_int64 t) land max_int in
    let v = r mod bound in
    if r - v > max_int - bound + 1 then draw () else v
  in
  draw ()

let bool t = Int64.logand (next_int64 t) 1L = 1L

let pick t = function
  | [] -> invalid_arg "Prng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let pick_array t a =
  if Array.length a = 0 then invalid_arg "Prng.pick_array: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  let a = Array.copy a in
  let n = Array.length a in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  a
