(** Deterministic, splittable pseudo-random number generator (SplitMix64).

    All randomized components of the library (schedulers, workload
    generators, nondeterminism adversaries) draw from this generator so
    that every run is reproducible from an integer seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator determined by [seed]. *)

val copy : t -> t
(** Independent copy sharing no future state with the original. *)

val split : t -> t
(** [split t] advances [t] and returns a statistically independent
    generator; used to give each process its own stream. *)

val of_substream : seed:int -> index:int -> t
(** [of_substream ~seed ~index] is the [index]-th derived generator of
    [seed], a pure function of both arguments: unlike {!split} it
    depends on no other draws, so parallel consumers (one substream per
    trial, say) see identical streams regardless of domain count,
    scheduling, or the order in which substreams are created.  Raises
    [Invalid_argument] when [index < 0]. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is exactly uniform in [\[0, bound)] (rejection
    sampling, no modulo bias); still a pure function of the seed.
    Raises [Invalid_argument] if [bound <= 0]. *)

val bool : t -> bool
(** Fair coin. *)

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val pick_array : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> 'a array
(** Fisher–Yates shuffle of a copy of the array. *)
