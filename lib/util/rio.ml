(* Resilient I/O with deterministic fault injection.  See the .mli for
   the contract; the load-bearing invariants are

   - the injection plan is a pure function of (seed, site, per-site
     call index): no timing, no Random, no dependence on what other
     sites do — so an armed run is exactly reproducible and the fault
     sweep in test_crash_recovery can assert determinism;

   - transient injections (EINTR, short transfers) are absorbed by the
     very loops below, so arming must never change observable results;
     hard injections (ENOSPC, EIO) surface as real [Unix_error]s;

   - crash points SIGKILL the process itself: nothing after the kill
     runs, so whatever the test observes on disk afterwards is exactly
     what a power loss at that point would have left. *)

(* --- counters ----------------------------------------------------------- *)

type counters = {
  c_eintr : int;
  c_short_read : int;
  c_short_write : int;
  c_enospc : int;
  c_eio : int;
  c_retries : int;
  c_backoffs : int;
  c_crash_points : int;
}

let zero =
  {
    c_eintr = 0;
    c_short_read = 0;
    c_short_write = 0;
    c_enospc = 0;
    c_eio = 0;
    c_retries = 0;
    c_backoffs = 0;
    c_crash_points = 0;
  }

(* One mutex guards the counters and the per-site index tables: rio is
   called from the daemon's main domain, its workers and the CLI, and
   the counters are stats, not control flow — a single lock is cheap
   and keeps every increment exact. *)
let mu = Mutex.create ()
let counts = ref zero

let bump f =
  Mutex.lock mu;
  counts := f !counts;
  Mutex.unlock mu

let counters () =
  Mutex.lock mu;
  let c = !counts in
  Mutex.unlock mu;
  c

let reset_counters () =
  Mutex.lock mu;
  counts := zero;
  Mutex.unlock mu

let pp_counters ppf c =
  Fmt.pf ppf
    "eintr=%d short_read=%d short_write=%d enospc=%d eio=%d retries=%d \
     backoffs=%d crash_points=%d"
    c.c_eintr c.c_short_read c.c_short_write c.c_enospc c.c_eio c.c_retries
    c.c_backoffs c.c_crash_points

(* --- the plan ------------------------------------------------------------ *)

(* (seed, rate_percent) when armed. *)
let plan : (int * int) option Atomic.t = Atomic.make None

(* (site, error, remaining) when forced. *)
let forced : (string * Unix.error * int Atomic.t) option Atomic.t =
  Atomic.make None

(* Per-site call index, reset on (dis)arm so a run's plan depends only
   on the seed.  Guarded by [mu]. *)
let site_idx : (string, int ref) Hashtbl.t = Hashtbl.create 16

let next_index site =
  Mutex.lock mu;
  let r =
    match Hashtbl.find_opt site_idx site with
    | Some r -> r
    | None ->
      let r = ref 0 in
      Hashtbl.add site_idx site r;
      r
  in
  let i = !r in
  incr r;
  Mutex.unlock mu;
  i

let reset_indices () =
  Mutex.lock mu;
  Hashtbl.reset site_idx;
  Mutex.unlock mu

let arm ~seed ?(rate_percent = 12) () =
  if rate_percent < 0 || rate_percent >= 100 then
    invalid_arg "Rio.arm: rate_percent must be in [0, 100)";
  reset_indices ();
  Atomic.set plan (Some (seed, rate_percent))

let disarm () =
  Atomic.set plan None;
  reset_indices ()

let armed () = Atomic.get plan <> None

let force ?(times = max_int) ~site ~error () =
  Atomic.set forced (Some (site, error, Atomic.make times))

let unforce () = Atomic.set forced None

(* Substream index: fold the site digest and the per-site call index
   into one nonnegative key.  The multiplier spreads consecutive
   indices across the digest's bits so neighbouring calls land in
   unrelated stream positions. *)
let substream ~seed ~site ~idx =
  let key = (Fnv.string site lxor (idx * 0x9E3779B9)) land max_int in
  Prng.of_substream ~seed ~index:key

type fault = Eintr | Short | Enospc | Eio

(* The plan's verdict for one call at [site]: [None] = behave normally.
   [write] selects the class mix (reads cannot hit ENOSPC). *)
let decide ~write ~site =
  (match Atomic.get forced with
  | Some (fsite, error, remaining) when String.equal fsite site ->
    let rec take () =
      let n = Atomic.get remaining in
      if n <= 0 then false
      else if Atomic.compare_and_set remaining n (n - 1) then true
      else take ()
    in
    if take () then
      raise (Unix.Unix_error (error, (if write then "write" else "read"), site))
  | _ -> ());
  match Atomic.get plan with
  | None -> None
  | Some (seed, rate) ->
    let g = substream ~seed ~site ~idx:(next_index site) in
    if Prng.int g 100 >= rate then None
    else
      let d = Prng.int g 100 in
      if write then
        if d < 35 then Some Eintr
        else if d < 70 then Some Short
        else if d < 85 then Some Enospc
        else Some Eio
      else if d < 40 then Some Eintr
      else if d < 80 then Some Short
      else Some Eio

let inject_read_fault ~site =
  match decide ~write:false ~site with
  | Some Eio ->
    bump (fun c -> { c with c_eio = c.c_eio + 1 });
    raise (Unix.Unix_error (Unix.EIO, "read", site))
  | Some _ | None -> ()
  (* Eintr/Short have no channel-level meaning; only the hard class
     fires here. *)

(* --- backoff ------------------------------------------------------------- *)

let backoff_base_s = 0.02
let backoff_cap_s = 0.64

let backoff_s ~site ~attempt =
  let attempt = max 0 attempt in
  let d = backoff_base_s *. float_of_int (1 lsl min attempt 5) in
  let d = Float.min d backoff_cap_s in
  (* Deterministic jitter in [0.75, 1.25]: a pure function of (site,
     attempt, armed seed) — reconnect storms decorrelate without any
     call on [Random]. *)
  let seed = match Atomic.get plan with Some (s, _) -> s | None -> 0x72696f in
  let g = substream ~seed ~site ~idx:(0x5bb + attempt) in
  d *. (0.75 +. (float_of_int (Prng.int g 51) /. 100.))

let sleep_backoff ~site ~attempt =
  bump (fun c -> { c with c_backoffs = c.c_backoffs + 1 });
  Unix.sleepf (backoff_s ~site ~attempt)

(* --- fd operations ------------------------------------------------------- *)

(* One read attempt, with the plan applied: an injected EINTR/EIO is a
   real raised [Unix_error]; an injected short read truncates the
   request before the real syscall, and the outer loop completes it. *)
let read_once ~site fd buf off want =
  let want =
    match decide ~write:false ~site with
    | None -> want
    | Some Eintr ->
      bump (fun c -> { c with c_eintr = c.c_eintr + 1 });
      raise (Unix.Unix_error (Unix.EINTR, "read", site))
    | Some Eio ->
      bump (fun c -> { c with c_eio = c.c_eio + 1 });
      raise (Unix.Unix_error (Unix.EIO, "read", site))
    | Some Short | Some Enospc ->
      bump (fun c -> { c with c_short_read = c.c_short_read + 1 });
      max 1 (want / 2)
  in
  Unix.read fd buf off want

let write_once ~site fd buf off want =
  let want =
    match decide ~write:true ~site with
    | None -> want
    | Some Eintr ->
      bump (fun c -> { c with c_eintr = c.c_eintr + 1 });
      raise (Unix.Unix_error (Unix.EINTR, "write", site))
    | Some Eio ->
      bump (fun c -> { c with c_eio = c.c_eio + 1 });
      raise (Unix.Unix_error (Unix.EIO, "write", site))
    | Some Enospc ->
      bump (fun c -> { c with c_enospc = c.c_enospc + 1 });
      raise (Unix.Unix_error (Unix.ENOSPC, "write", site))
    | Some Short ->
      bump (fun c -> { c with c_short_write = c.c_short_write + 1 });
      max 1 (want / 2)
  in
  Unix.write fd buf off want

(* The completion loops are top-level tail recursion with explicit
   parameters rather than inner closures: this is the hot path under
   every wire frame and store entry, and a closure allocation per call
   is measurable against a ~200 ns /dev/null write. *)
let rec read_loop ~site fd buf off len got again =
  if got < len then
    match read_once ~site fd buf (off + got) (len - got) with
    | 0 -> raise End_of_file
    | n -> read_loop ~site fd buf off len (got + n) 0
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      bump (fun c -> { c with c_retries = c.c_retries + 1 });
      read_loop ~site fd buf off len got again
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      (* only reachable on a nonblocking fd; back off rather than spin *)
      bump (fun c -> { c with c_retries = c.c_retries + 1 });
      sleep_backoff ~site ~attempt:again;
      read_loop ~site fd buf off len got (again + 1)

(* Fast path: with no fault plan armed and no forced error, the common
   whole-transfer-in-one-syscall case costs two atomic loads and the
   syscall itself; anything rarer falls back to the full loop. *)
let idle () =
  match (Atomic.get plan, Atomic.get forced) with
  | None, None -> true
  | _ -> false

let really_read ~site fd buf off len =
  if idle () then
    match Unix.read fd buf off len with
    | n when n = len -> ()
    | 0 -> if len > 0 then raise End_of_file
    | n -> read_loop ~site fd buf off len n 0
    | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
      ->
      bump (fun c -> { c with c_retries = c.c_retries + 1 });
      read_loop ~site fd buf off len 0 0
  else read_loop ~site fd buf off len 0 0

let rec write_loop ~site fd buf off len sent again =
  if sent < len then
    match write_once ~site fd buf (off + sent) (len - sent) with
    | n -> write_loop ~site fd buf off len (sent + n) 0
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      bump (fun c -> { c with c_retries = c.c_retries + 1 });
      write_loop ~site fd buf off len sent again
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      bump (fun c -> { c with c_retries = c.c_retries + 1 });
      sleep_backoff ~site ~attempt:again;
      write_loop ~site fd buf off len sent (again + 1)

let really_write ~site fd buf off len =
  if idle () then
    match Unix.write fd buf off len with
    | n when n = len -> ()
    | n -> write_loop ~site fd buf off len n 0
    | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
      ->
      bump (fun c -> { c with c_retries = c.c_retries + 1 });
      write_loop ~site fd buf off len 0 0
  else write_loop ~site fd buf off len 0 0

(* --- crash points -------------------------------------------------------- *)

(* LBSA_IO_CRASH=<site>:<n>, parsed once.  The per-site point counter
   is cumulative over the process lifetime, so <n> addresses "the n-th
   crash point this process reaches within <site>" — with five points
   per commit, n in [1,5] is the first commit, [6,10] the second... *)
let crash_spec =
  lazy
    (match Sys.getenv_opt "LBSA_IO_CRASH" with
    | None -> None
    | Some s -> (
      match String.rindex_opt s ':' with
      | None -> None
      | Some i -> (
        let site = String.sub s 0 i in
        match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
        | Some n when n > 0 && site <> "" -> Some (site, n)
        | _ -> None)))

let crash_idx : (string, int ref) Hashtbl.t = Hashtbl.create 4

(* True iff this very point is the one the spec names: the caller must
   then perform its torn-state side effect (if any) and kill. *)
let crash_hit ~site =
  match Lazy.force crash_spec with
  | Some (csite, n) when String.equal csite site ->
    Mutex.lock mu;
    let r =
      match Hashtbl.find_opt crash_idx site with
      | Some r -> r
      | None ->
        let r = ref 0 in
        Hashtbl.add crash_idx site r;
        r
    in
    incr r;
    let hit = !r = n in
    Mutex.unlock mu;
    bump (fun c -> { c with c_crash_points = c.c_crash_points + 1 });
    hit
  | _ -> false

let kill_self () = Unix.kill (Unix.getpid ()) Sys.sigkill

(* --- atomic file commit -------------------------------------------------- *)

type writer = {
  w_site : string;
  w_path : string;
  w_tmp : string;
  w_fd : Unix.file_descr;
  w_buf : Buffer.t;
  mutable w_open : bool;
}

let flush_threshold = 1 lsl 16

let create_writer ~site ~path =
  let tmp = path ^ ".tmp" in
  (match decide ~write:true ~site with
  | Some Enospc ->
    bump (fun c -> { c with c_enospc = c.c_enospc + 1 });
    raise (Unix.Unix_error (Unix.ENOSPC, "open", site))
  | _ -> ());
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  { w_site = site; w_path = path; w_tmp = tmp; w_fd = fd;
    w_buf = Buffer.create 4096; w_open = true }

let flush_buf w =
  if Buffer.length w.w_buf > 0 then begin
    let b = Buffer.to_bytes w.w_buf in
    Buffer.clear w.w_buf;
    really_write ~site:w.w_site w.w_fd b 0 (Bytes.length b)
  end

let write_string w s =
  Buffer.add_string w.w_buf s;
  if Buffer.length w.w_buf >= flush_threshold then flush_buf w

let abort w =
  if w.w_open then begin
    w.w_open <- false;
    (try Unix.close w.w_fd with Unix.Unix_error _ -> ());
    try Sys.remove w.w_tmp with Sys_error _ -> ()
  end

(* Best-effort fsync of a directory: some filesystems refuse the open
   or the fsync (EINVAL/EACCES); there is nothing stronger to do then,
   and the commit's file-level fsync has already run. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

let commit w =
  let tail = Buffer.to_bytes w.w_buf in
  Buffer.clear w.w_buf;
  (try
     (* point 1: torn final chunk — half of it written, made durable,
        then power loss.  The file never gets renamed, so recovery must
        find either the previous committed version or nothing. *)
     if crash_hit ~site:w.w_site then begin
       let half = Bytes.length tail / 2 in
       (try
          really_write ~site:w.w_site w.w_fd tail 0 half;
          Unix.fsync w.w_fd
        with Unix.Unix_error _ -> ());
       kill_self ()
     end;
     if Bytes.length tail > 0 then
       really_write ~site:w.w_site w.w_fd tail 0 (Bytes.length tail);
     (* point 2: all data written, none of it necessarily durable *)
     if crash_hit ~site:w.w_site then kill_self ();
     Unix.fsync w.w_fd;
     (* point 3: file durable under its tmp name *)
     if crash_hit ~site:w.w_site then kill_self ()
   with e ->
     abort w;
     raise e);
  w.w_open <- false;
  (try Unix.close w.w_fd with Unix.Unix_error _ -> ());
  (match Sys.rename w.w_tmp w.w_path with
  | () -> ()
  | exception e ->
    (try Sys.remove w.w_tmp with Sys_error _ -> ());
    raise e);
  (* point 4: renamed; the directory entry may not be durable yet *)
  if crash_hit ~site:w.w_site then kill_self ();
  fsync_dir (Filename.dirname w.w_path);
  (* point 5: fully committed and durable *)
  if crash_hit ~site:w.w_site then kill_self ()

let with_atomic_file ~site ~path f =
  let w = create_writer ~site ~path in
  match f w with
  | () -> commit w
  | exception e ->
    abort w;
    raise e

let commit_file ~site ~path data =
  with_atomic_file ~site ~path (fun w -> write_string w data)
