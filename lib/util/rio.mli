(** Resilient I/O: the one shim every persistence and wire code path
    goes through for raw reads, writes and atomic file commits.

    Two faces, one module:

    {b Production behavior.}  [really_read]/[really_write] absorb EINTR
    and short transfers (retrying until the full count moved, with
    bounded deterministically-jittered backoff for EAGAIN), and the
    atomic-commit writer implements the full durability discipline:
    write to [path ^ ".tmp"], fsync the file, rename over [path], fsync
    the parent directory.  Without the directory fsync a power loss
    after rename can leave a directory entry pointing at a zero-length
    inode — the classic "committed but empty" torn state.

    {b Deterministic fault injection.}  When {!arm}ed, every operation
    consults a fault plan that is a pure function of
    (seed, call-site, per-site call index) — the [--chaos-seed]
    discipline of {!Lbsa_runtime.Supervisor.Chaos} extended to the
    syscall boundary.  Injected EINTR and short transfers are absorbed
    by this module's own retry loops (so they must never change any
    observable result); injected ENOSPC/EIO surface as real
    [Unix.Unix_error] exceptions for the caller's typed failure path.
    Per-class counters record what was injected and absorbed.

    {b Crash points.}  With [LBSA_IO_CRASH=<site>:<n>] in the
    environment, the process SIGKILLs {e itself} at the [n]-th crash
    point reached within [site]'s atomic commits (see {!commit} for the
    numbering; point 1 additionally leaves a torn, fsynced prefix of
    the final chunk on disk first).  Because no cleanup code runs after
    SIGKILL, this gives real power-loss semantics to the crash-recovery
    harness in [test/test_crash_recovery.ml]. *)

(** {1 Fault plan} *)

val arm : seed:int -> ?rate_percent:int -> unit -> unit
(** Arm the injection plan (default rate 12%).  Per-site call indices
    reset, so an armed run is a pure function of [seed].  Raises
    [Invalid_argument] if [rate_percent] is outside [0, 100). *)

val disarm : unit -> unit
val armed : unit -> bool

val force : ?times:int -> site:string -> error:Unix.error -> unit -> unit
(** Test hook: make the next [times] (default: unlimited) operations at
    exactly [site] raise [Unix_error (error, _, site)], independent of
    the seeded plan.  Do not force a transient error (EINTR/EAGAIN)
    with unlimited [times] — the retry loops would spin forever. *)

val unforce : unit -> unit

(** {1 Counters} *)

type counters = {
  c_eintr : int;  (** injected EINTR faults *)
  c_short_read : int;  (** injected short reads *)
  c_short_write : int;  (** injected short writes *)
  c_enospc : int;  (** injected ENOSPC faults *)
  c_eio : int;  (** injected EIO faults *)
  c_retries : int;  (** EINTR/EAGAIN absorbed by the retry loops *)
  c_backoffs : int;  (** backoff sleeps taken *)
  c_crash_points : int;  (** crash points passed while a spec was set *)
}

val counters : unit -> counters
val reset_counters : unit -> unit
val pp_counters : Format.formatter -> counters -> unit

(** {1 Fd operations} *)

val really_read : site:string -> Unix.file_descr -> bytes -> int -> int -> unit
(** Read exactly [len] bytes, absorbing EINTR/EAGAIN and short reads.
    Raises [End_of_file] if the peer closes mid-transfer (a clean
    end-of-stream, distinct from an I/O error). *)

val really_write :
  site:string -> Unix.file_descr -> bytes -> int -> int -> unit
(** Write exactly [len] bytes, absorbing EINTR/EAGAIN and short
    writes.  Hard errors (ENOSPC, EIO, EPIPE, ...) propagate as
    [Unix.Unix_error]. *)

val inject_read_fault : site:string -> unit
(** Consult the plan at the head of a channel-based read path (where no
    fd-level shim applies): may raise [Unix_error (EIO, _, site)].
    A no-op when nothing is armed or forced. *)

(** {1 Backoff} *)

val backoff_s : site:string -> attempt:int -> float
(** Bounded exponential backoff with deterministic jitter: the delay
    for retry number [attempt] (0-based) at [site] — a pure function of
    (site, attempt, armed seed), in [0.015, 0.64]s. *)

val sleep_backoff : site:string -> attempt:int -> unit

(** {1 Atomic file commit} *)

type writer

val create_writer : site:string -> path:string -> writer
(** Open [path ^ ".tmp"] for a streaming atomic commit. *)

val write_string : writer -> string -> unit
(** Append (buffered; large payloads are flushed through the resilient
    write loop in bounded chunks). *)

val commit : writer -> unit
(** Flush, fsync the file, close, rename over [path], fsync the parent
    directory.  Crash points (per [site], cumulative across commits):
    1 = torn (half the final chunk written and fsynced), 2 = data
    written, 3 = file fsynced, 4 = renamed, 5 = directory fsynced.  On
    a (possibly injected) write error the tmp file is removed and the
    error re-raised — the previously committed [path] is untouched. *)

val abort : writer -> unit
(** Close and remove the tmp file; never raises. *)

val with_atomic_file : site:string -> path:string -> (writer -> unit) -> unit
(** [commit] on normal return, [abort] + re-raise on exception. *)

val commit_file : site:string -> path:string -> string -> unit
(** One-shot [with_atomic_file] writing a single string. *)
