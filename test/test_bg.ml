(* The BG simulation: simulated executions must be indistinguishable
   from real ones (decision vectors land in the direct-execution set),
   simulators agree on every simulated view, the snapshot property holds
   on agreed views, and a crashed simulator blocks at most one simulated
   process. *)

open Lbsa

let v = Alcotest.testable Value.pp Value.equal

let sim_inputs n = Array.init n (fun j -> Value.int (10 + j))

let check_run_valid ~p ~inputs ~outcomes (r : Bg_simulation.run) =
  (match r.Bg_simulation.simulated_decisions with
  | None -> Alcotest.fail "no simulator completed"
  | Some ds ->
    Alcotest.(check int) "full decision vector" p.Sim_protocol.n_sim
      (List.length ds);
    let vector = Value.list ds in
    Alcotest.(check bool)
      (Fmt.str "simulated outcome %a is a direct outcome" Value.pp vector)
      true
      (List.exists (Value.equal vector) outcomes));
  ignore inputs;
  Alcotest.(check bool) "simulators agree on views" true
    (Bg_simulation.simulators_agree r);
  Alcotest.(check bool) "agreed views are cell-wise comparable" true
    (Bg_simulation.views_comparable r.Bg_simulation.all_views)

let test_solo_simulator () =
  let p = Sim_protocol.min_seen ~n_sim:3 ~steps:1 in
  let inputs = sim_inputs 3 in
  let outcomes = Sim_protocol.direct_outcomes p ~inputs in
  let r =
    Bg_simulation.run ~p ~sim_inputs:inputs ~simulators:1
      ~scheduler:(Scheduler.solo 0) ()
  in
  check_run_valid ~p ~inputs ~outcomes r;
  (* A solo simulator produces the solo-style simulated execution: the
     simulated processes run in the simulator's round-robin order, so
     process 0's first view contains only itself. *)
  match r.Bg_simulation.simulated_decisions with
  | Some (first :: _) ->
    Alcotest.(check v) "simulated p0 ran first, saw only itself"
      (Value.int 10) first
  | _ -> Alcotest.fail "expected decisions"

let test_two_simulators_random () =
  let p = Sim_protocol.min_seen ~n_sim:3 ~steps:1 in
  let inputs = sim_inputs 3 in
  let outcomes = Sim_protocol.direct_outcomes p ~inputs in
  for seed = 1 to 40 do
    let r =
      Bg_simulation.run ~p ~sim_inputs:inputs ~simulators:2
        ~scheduler:(Scheduler.random ~seed) ()
    in
    check_run_valid ~p ~inputs ~outcomes r
  done

let test_more_simulators_than_processes () =
  let p = Sim_protocol.min_seen ~n_sim:2 ~steps:1 in
  let inputs = sim_inputs 2 in
  let outcomes = Sim_protocol.direct_outcomes p ~inputs in
  for seed = 1 to 20 do
    let r =
      Bg_simulation.run ~p ~sim_inputs:inputs ~simulators:3
        ~scheduler:(Scheduler.random ~seed) ()
    in
    check_run_valid ~p ~inputs ~outcomes r
  done

let test_multi_step_protocol () =
  let p = Sim_protocol.participants ~n_sim:2 ~steps:2 in
  let inputs = sim_inputs 2 in
  let outcomes = Sim_protocol.direct_outcomes p ~inputs in
  for seed = 1 to 40 do
    let r =
      Bg_simulation.run ~p ~sim_inputs:inputs ~simulators:2
        ~scheduler:(Scheduler.random ~seed) ()
    in
    check_run_valid ~p ~inputs ~outcomes r
  done

let test_crashed_simulator_blocks_at_most_one () =
  (* Crash simulator 0 after a few of its own steps, at every small
     budget: the survivor must complete all but at most one simulated
     process; when nothing was blocked it must finish and its outcome
     must be a direct outcome. *)
  let p = Sim_protocol.min_seen ~n_sim:3 ~steps:1 in
  let inputs = sim_inputs 3 in
  let outcomes = Sim_protocol.direct_outcomes p ~inputs in
  List.iter
    (fun budget ->
      let scheduler =
        Fault.apply [ (0, budget) ] (Scheduler.round_robin ~n:2)
      in
      let r =
        Bg_simulation.run ~max_steps:5_000 ~p ~sim_inputs:inputs ~simulators:2
          ~scheduler ()
      in
      match r.Bg_simulation.simulated_decisions with
      | Some ds ->
        let vector = Value.list ds in
        Alcotest.(check bool)
          (Fmt.str "budget %d: outcome %a is a direct outcome" budget Value.pp
             vector)
          true
          (List.exists (Value.equal vector) outcomes)
      | None ->
        (* Blocked: the survivor (simulator 1) must have completed all
           simulated processes except at most one. *)
        let progress = r.Bg_simulation.per_simulator_progress.(1) in
        let incomplete =
          List.length
            (List.filter
               (fun j ->
                 match List.assoc_opt j progress with
                 | Some c -> c < p.Sim_protocol.steps
                 | None -> true)
               (Listx.range 0 (p.Sim_protocol.n_sim - 1)))
        in
        Alcotest.(check bool)
          (Fmt.str "budget %d: at most one simulated process blocked" budget)
          true (incomplete <= 1))
    (Listx.range 0 12)

let test_exhaustive_tiny () =
  (* EVERY interleaving of the simulators, not just sampled schedules:
     every terminal decision vector is a genuine direct outcome. *)
  List.iter
    (fun (n_sim, simulators) ->
      let p = Sim_protocol.min_seen ~n_sim ~steps:1 in
      let sim_inputs = Array.init n_sim (fun j -> Value.int (10 + j)) in
      let r =
        Bg_simulation.check_exhaustive ~p ~sim_inputs ~simulators ()
      in
      Alcotest.(check bool)
        (Fmt.str "n_sim=%d sims=%d: %d states, %d terminals, %d bad" n_sim
           simulators r.Bg_simulation.states r.Bg_simulation.terminals
           r.Bg_simulation.bad_outcomes)
        true r.Bg_simulation.all_genuine;
      Alcotest.(check bool) "some terminals" true (r.Bg_simulation.terminals > 0))
    [ (2, 2); (3, 2) ]

let test_exhaustive_three_simulators () =
  let p = Sim_protocol.min_seen ~n_sim:2 ~steps:1 in
  let sim_inputs = [| Value.int 10; Value.int 11 |] in
  let r =
    Bg_simulation.check_exhaustive ~max_states:1_000_000 ~p ~sim_inputs
      ~simulators:3 ()
  in
  Alcotest.(check bool) "all genuine" true r.Bg_simulation.all_genuine

let test_direct_outcomes_sanity () =
  (* The direct outcome set of min-seen with 2 processes and distinct
     inputs: solo-first orders give (10,10), (10,11)... enumerate and
     sanity-check shape. *)
  let p = Sim_protocol.min_seen ~n_sim:2 ~steps:1 in
  let inputs = sim_inputs 2 in
  let outcomes = Sim_protocol.direct_outcomes p ~inputs in
  Alcotest.(check bool) "at least two distinct outcomes" true
    (List.length outcomes >= 2);
  (* Every outcome's entries are proposed inputs. *)
  List.iter
    (fun vector ->
      List.iter
        (fun d ->
          Alcotest.(check bool) "outcome entries are inputs" true
            (List.mem d [ Value.int 10; Value.int 11 ]))
        (Value.to_list_exn vector))
    outcomes;
  (* p0 deciding 11 while p1 decides 10 (fully crossed) is impossible
     for min-seen: whoever scans second sees both. *)
  Alcotest.(check bool) "crossed outcome impossible" false
    (List.exists
       (Value.equal (Value.list [ Value.int 11; Value.int 10 ]))
       outcomes)

let test_view_comparability_helpers () =
  let cell t = Value.pair (Value.int t, Value.sym "x") in
  let view a b = Value.list [ cell a; cell b ] in
  Alcotest.(check bool) "le" true (Bg_simulation.view_le (view 1 1) (view 2 1));
  Alcotest.(check bool) "not le" false
    (Bg_simulation.view_le (view 2 1) (view 1 2));
  Alcotest.(check bool) "comparable set" true
    (Bg_simulation.views_comparable [ view 0 0; view 1 0; view 1 2 ]);
  Alcotest.(check bool) "incomparable pair detected" false
    (Bg_simulation.views_comparable [ view 2 1; view 1 2 ])

let () =
  Alcotest.run "bg-simulation"
    [
      ( "simulation",
        [
          Alcotest.test_case "solo simulator" `Quick test_solo_simulator;
          Alcotest.test_case "2 simulators / 3 processes, random" `Quick
            test_two_simulators_random;
          Alcotest.test_case "3 simulators / 2 processes" `Quick
            test_more_simulators_than_processes;
          Alcotest.test_case "multi-step protocol" `Quick
            test_multi_step_protocol;
          Alcotest.test_case "crash blocks at most one" `Quick
            test_crashed_simulator_blocks_at_most_one;
          Alcotest.test_case "exhaustive (all interleavings)" `Quick
            test_exhaustive_tiny;
          Alcotest.test_case "exhaustive, 3 simulators" `Slow
            test_exhaustive_three_simulators;
        ] );
      ( "reference",
        [
          Alcotest.test_case "direct outcomes sanity" `Quick
            test_direct_outcomes_sanity;
          Alcotest.test_case "view comparability" `Quick
            test_view_comparability_helpers;
        ] );
    ]
