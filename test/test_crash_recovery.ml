(* Robustness battery: crash-recovery of the persistence formats under
   real SIGKILL at injected crash points, the wire layer under EINTR
   and half-closed peers, segment fault-in under flipped bytes, the
   daemon's compute-only degraded mode, and a seeded fault-plan sweep
   over every resilient-I/O site.

   The central property, shared with the rest of the suite: faults may
   cost retries, refusals or recomputation, but they must never change
   an answer.  A killed process leaves either the previous artifact or
   the new one — never a torn mix — and every failure a caller can see
   is typed (a [Result], [Corrupt], [Closed]), never an unmarshal crash
   or a wrong byte. *)

open Lbsa

(* --- scratch plumbing --------------------------------------------------- *)

let contains_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let fresh_path suffix =
  let f = Filename.temp_file "lbsa-crash" suffix in
  Sys.remove f;
  f

let fresh_dir () =
  let d = fresh_path ".dir" in
  Unix.mkdir d 0o755;
  d

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let read_file f =
  let ic = open_in_bin f in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file f s =
  let oc = open_out_bin f in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

let exe =
  Filename.concat
    (Filename.dirname Sys.executable_name)
    (Filename.concat ".." (Filename.concat "bin" "lbsa_cli.exe"))

let require_exe () =
  if not (Sys.file_exists exe) then
    Alcotest.failf "CLI executable not found at %s" exe

(* --- kill-mid-checkpoint recovery --------------------------------------- *)

(* For each of the five crash points of an atomic commit (torn final
   chunk, data written, file fsynced, renamed, directory fsynced):
   SIGKILL a real `lbsa solve --checkpoint` child at that exact point,
   then recover — resume if the checkpoint file exists, fresh run if it
   does not — and require the recovered stdout to be byte-identical to
   an uninterrupted run's.  A checkpoint file that exists but fails to
   load must be refused with the clean partial exit 2 (and the fresh
   run must still match); any other outcome is a recovery bug. *)
let test_kill_mid_checkpoint () =
  require_exe ()
  ;
  let args = [ "solve"; "dac"; "-n"; "3" ] in
  let full = Crashdrive.run ~exe ~args () in
  Alcotest.(check (option int)) "baseline exits 0" (Some 0)
    (Crashdrive.exited full);
  for point = 1 to 5 do
    let ck = fresh_path ".ckpt" in
    Fun.protect
      ~finally:(fun () ->
        List.iter
          (fun f -> if Sys.file_exists f then Sys.remove f)
          [ ck; ck ^ ".tmp" ])
      (fun () ->
        let crashed =
          Crashdrive.run
            ~env:[ ("LBSA_IO_CRASH", Fmt.str "checkpoint.save:%d" point) ]
            ~exe
            ~args:(args @ [ "--deadline"; "0"; "--checkpoint"; ck ])
            ()
        in
        if not (Crashdrive.killed_by crashed Sys.sigkill) then
          Alcotest.failf "point %d: child was not SIGKILLed (out=%S err=%S)"
            point crashed.Crashdrive.out crashed.Crashdrive.err;
        (* the commit is tmp+rename: before the rename (points 1-3) the
           final path must not exist; after it (4-5) it must *)
        Alcotest.(check bool)
          (Fmt.str "point %d: checkpoint visible iff renamed" point)
          (point >= 4) (Sys.file_exists ck);
        let recovered =
          if Sys.file_exists ck then begin
            let r =
              Crashdrive.run ~exe ~args:(args @ [ "--resume"; ck ]) ()
            in
            match Crashdrive.exited r with
            | Some 0 -> r
            | Some 2 ->
              (* a clean refusal is acceptable; recovery is a fresh run *)
              Crashdrive.run ~exe ~args ()
            | _ ->
              Alcotest.failf "point %d: resume neither 0 nor 2 (err=%S)"
                point r.Crashdrive.err
          end
          else Crashdrive.run ~exe ~args ()
        in
        Alcotest.(check (option int))
          (Fmt.str "point %d: recovery exits 0" point)
          (Some 0)
          (Crashdrive.exited recovered);
        Alcotest.(check string)
          (Fmt.str "point %d: recovered stdout byte-identical" point)
          full.Crashdrive.out recovered.Crashdrive.out)
  done

(* A checkpoint with a damaged body (valid magic, flipped byte past it)
   must be refused with exit 2 — the partial-outcome code — naming the
   corruption, never resumed and never crashed on. *)
let test_corrupt_checkpoint_refused () =
  require_exe ();
  let args = [ "solve"; "dac"; "-n"; "3" ] in
  let ck = fresh_path ".ckpt" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists ck then Sys.remove ck)
    (fun () ->
      let partial =
        Crashdrive.run ~exe
          ~args:(args @ [ "--deadline"; "0"; "--checkpoint"; ck ])
          ()
      in
      Alcotest.(check (option int))
        "deadline-0 exits 2" (Some 2)
        (Crashdrive.exited partial);
      let bytes = Bytes.of_string (read_file ck) in
      let i = (Bytes.length bytes / 2) + 19 in
      Bytes.set bytes i (Char.chr (Char.code (Bytes.get bytes i) lxor 0x01));
      write_file ck (Bytes.to_string bytes);
      let r = Crashdrive.run ~exe ~args:(args @ [ "--resume"; ck ]) () in
      Alcotest.(check (option int))
        "corrupt resume exits 2" (Some 2) (Crashdrive.exited r);
      Alcotest.(check bool)
        "stderr names the corruption" true
        (contains_sub ~sub:"corrupt" r.Crashdrive.err))

(* --- daemon: kill mid-store-commit, restart, re-answer ------------------- *)

let cli_query ~socket ~extra =
  Crashdrive.run ~exe
    ~args:([ "query"; "dac:2"; "--socket"; socket; "--wait"; "10" ] @ extra)
    ()

(* SIGKILL a real daemon at the first store.put crash point (a torn,
   fsynced tmp-file prefix on disk), restart it on the same store
   directory, and require the re-asked query to succeed with exactly
   the stdout a never-crashed daemon prints. *)
let test_daemon_killed_mid_put () =
  require_exe ();
  let dir = fresh_dir () in
  let clean_dir = fresh_dir () in
  let socket = fresh_path ".sock" in
  let shutdown sock =
    ignore
      (Crashdrive.run ~exe
         ~args:[ "shutdown"; "--socket"; sock; "--wait"; "2" ]
         ())
  in
  Fun.protect
    ~finally:(fun () ->
      rm_rf dir;
      rm_rf clean_dir)
    (fun () ->
      (* reference answer from a daemon that never crashes *)
      let ref_sock = fresh_path ".sock" in
      let clean_daemon =
        Crashdrive.spawn ~exe
          ~args:[ "serve"; "--socket"; ref_sock; "--store"; clean_dir;
                  "--quiet" ]
          ()
      in
      let reference = cli_query ~socket:ref_sock ~extra:[] in
      shutdown ref_sock;
      ignore (Crashdrive.wait clean_daemon);
      Alcotest.(check (option int))
        "reference query exits 0" (Some 0)
        (Crashdrive.exited reference);
      (* crashing daemon: dies inside its first store commit *)
      let daemon =
        Crashdrive.spawn
          ~env:[ ("LBSA_IO_CRASH", "store.put:1") ]
          ~exe
          ~args:[ "serve"; "--socket"; socket; "--store"; dir; "--quiet" ]
          ()
      in
      (* the query may or may not get its answer out before the daemon
         dies; only the daemon's death is asserted here *)
      ignore (cli_query ~socket ~extra:[]);
      let dead = Crashdrive.wait daemon in
      if not (Crashdrive.killed_by dead Sys.sigkill) then
        Alcotest.failf "daemon was not SIGKILLed (err=%S)"
          dead.Crashdrive.err;
      (* restart on the same (possibly torn) store directory *)
      let daemon2 =
        Crashdrive.spawn ~exe
          ~args:[ "serve"; "--socket"; socket; "--store"; dir; "--quiet" ]
          ()
      in
      let again = cli_query ~socket ~extra:[] in
      shutdown socket;
      ignore (Crashdrive.wait daemon2);
      Alcotest.(check (option int))
        "post-restart query exits 0" (Some 0)
        (Crashdrive.exited again);
      Alcotest.(check string)
        "post-restart answer byte-identical" reference.Crashdrive.out
        again.Crashdrive.out)

(* --- wire regressions ---------------------------------------------------- *)

(* A peer that dies after sending a partial frame (here: half the magic,
   then a half-close) must surface as the typed [Wire.Closed], never a
   hang, a garbage frame, or an uncaught End_of_file. *)
let test_wire_half_closed_peer () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        [ a; b ])
    (fun () ->
      ignore (Unix.write_substring a "LB" 0 2);
      Unix.shutdown a Unix.SHUTDOWN_SEND;
      match Serve_wire.recv_request b with
      | _ -> Alcotest.fail "partial frame parsed as a request"
      | exception Serve_wire.Closed -> ()
      | exception e ->
        Alcotest.failf "expected Wire.Closed, got %s" (Printexc.to_string e))

(* Forced EINTR on the wire sites must be absorbed by the retry loops:
   the roundtrip still completes, and the retry counter shows the
   interruptions actually happened. *)
let test_wire_eintr_absorbed () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      Rio.unforce ();
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        [ a; b ])
    (fun () ->
      Rio.reset_counters ();
      Rio.force ~times:3 ~site:"wire.write" ~error:Unix.EINTR ();
      Serve_wire.send_request a Serve_wire.Ping;
      Rio.force ~times:3 ~site:"wire.read" ~error:Unix.EINTR ();
      (match Serve_wire.recv_request b with
      | Serve_wire.Ping -> ()
      | _ -> Alcotest.fail "roundtrip decoded the wrong request");
      Rio.unforce ();
      let c = Rio.counters () in
      Alcotest.(check bool)
        "interruptions were absorbed, not avoided" true
        (c.Rio.c_retries >= 6))

(* --- segment store: flipped byte refused, never unmarshalled ------------- *)

let test_segstore_flipped_byte () =
  let machine, specs = Consensus_protocols.from_consensus_obj ~m:2 in
  let inputs = [| Value.int 0; Value.int 1 |] in
  let g = Cgraph.build ~machine ~specs ~inputs () in
  let n = min 4 (Cgraph.n_nodes g) in
  let configs = Array.init n (fun id -> Cgraph.node g id) in
  let pconfigs = Array.map Mirror.freeze_config configs in
  let edges =
    Array.of_list
      (List.concat_map
         (fun id ->
           List.map
             (fun (e : Cgraph.edge) ->
               Mirror.freeze_step ~pid:e.Cgraph.pid ~event:e.Cgraph.event
                 ~target:e.Cgraph.target)
             (Cgraph.out_edges g id))
         (List.init n Fun.id))
  in
  let seg_file_of dir =
    match
      Array.to_list (Sys.readdir dir)
      |> List.filter (fun f -> Filename.check_suffix f ".seg")
    with
    | [ f ] -> Filename.concat dir f
    | l -> Alcotest.failf "expected one segment file, got %d" (List.length l)
  in
  (* sanity on a pristine store: the round trip works *)
  let dir0 = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir0)
    (fun () ->
      let t0 = Segstore.create ~dir:dir0 in
      Segstore.write_segment t0 ~lo:0 ~hi:n ~elo:0 ~ehi:(Array.length edges)
        ~configs:pconfigs ~edges;
      Alcotest.(check bool)
        "pristine fault-in round-trips" true
        (Config.equal configs.(0) (Segstore.node t0 0)));
  (* flip one payload byte before the first fault-in (nothing is cached
     until a read, so the mutated bytes are what gets validated) *)
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let t = Segstore.create ~dir in
      Segstore.write_segment t ~lo:0 ~hi:n ~elo:0 ~ehi:(Array.length edges)
        ~configs:pconfigs ~edges;
      let seg_file = seg_file_of dir in
      let bytes = Bytes.of_string (read_file seg_file) in
      let i = Bytes.length bytes - 7 in
      Bytes.set bytes i (Char.chr (Char.code (Bytes.get bytes i) lxor 0x10));
      write_file seg_file (Bytes.to_string bytes);
      (match Segstore.node t 0 with
      | _ -> Alcotest.fail "flipped byte unmarshalled as a node"
      | exception Segstore.Corrupt msg ->
        Alcotest.(check bool)
          "refusal names the defect" true
          (contains_sub ~sub:"Segstore" msg));
      Alcotest.(check int) "refusal counted" 1 (Segstore.corrupt_count t))

(* --- daemon graceful degradation ----------------------------------------- *)

let ask c q =
  match Serve_client.query c q with
  | Ok (r, cached, _) -> (r, cached)
  | Error msg -> Alcotest.failf "query failed: %s" msg

let verify_q task =
  Serve_api.Verify
    {
      task;
      question = Serve_api.Solve;
      inputs = Serve_api.default_inputs task;
      max_states = 200_000;
      reduce = `None;
      substrate = Serve_api.default_substrate task;
    }

(* A store that starts failing hard (every put raising EROFS, as a
   remounted-read-only disk would) must flip the daemon to compute-only
   mode: queries keep getting correct answers, the degradation is
   counted, and once the store heals a re-probe re-arms persistence. *)
let test_daemon_degrades_and_recovers () =
  let dir = fresh_dir () in
  let socket = fresh_path ".sock" in
  Fun.protect
    ~finally:(fun () ->
      Rio.unforce ();
      rm_rf dir)
    (fun () ->
      Rio.force ~site:"store.put" ~error:Unix.EROFS ();
      let d =
        Domain.spawn (fun () ->
            Serve_daemon.run
              {
                Serve_daemon.socket;
                store_dir = dir;
                workers = 1;
                default_deadline_s = None;
                store_probe_s = 0.05;
                log = false;
              })
      in
      let c =
        match Serve_client.connect ~wait_s:10. ~socket () with
        | Ok c -> c
        | Error msg -> Alcotest.failf "daemon did not come up: %s" msg
      in
      let stats =
        Fun.protect
          ~finally:(fun () ->
            (match Serve_client.connect ~wait_s:10. ~socket () with
            | Ok c2 ->
              ignore (Serve_client.shutdown c2);
              Serve_client.close c2
            | Error _ -> ());
            Serve_client.close c)
          (fun () ->
            (* first query: computes, put fails hard, daemon degrades —
               but the answer must still arrive *)
            let r1, _ = ask c (verify_q (Serve_api.Dac { n = 2 })) in
            (* second query under degradation: still answered *)
            let r2, _ = ask c (verify_q (Serve_api.Consensus { m = 2 })) in
            (match (r1, r2) with
            | Serve_api.Verdict _, Serve_api.Verdict _ -> ()
            | _ -> Alcotest.fail "degraded daemon returned a non-verdict");
            let st =
              match Serve_client.stats c with
              | Ok st -> st
              | Error msg -> Alcotest.failf "stats failed: %s" msg
            in
            Alcotest.(check bool)
              "degradation counted" true
              (st.Serve_wire.st_degraded > 0);
            (* heal the store and wait out the probe interval *)
            Rio.unforce ();
            Unix.sleepf 0.2;
            let r3, _ = ask c (verify_q (Serve_api.Kset { m = 2; k = 2 })) in
            (match r3 with
            | Serve_api.Verdict _ -> ()
            | _ -> Alcotest.fail "healed daemon returned a non-verdict");
            let entries =
              Sys.readdir dir |> Array.to_list
              |> List.filter (fun f -> not (Filename.check_suffix f ".tmp"))
            in
            Alcotest.(check bool)
              "store re-armed after heal (entry persisted)" true
              (entries <> []))
      in
      ignore stats;
      ignore (Domain.join d))

(* --- seeded fault-plan sweep --------------------------------------------- *)

(* Twenty seeds, every resilient-I/O component, injection rate 25%:
   transient faults must be absorbed, hard faults must surface only as
   the component's typed failure (a [put] Error, a [get] miss, a
   [Corrupt], a [Closed], a [Unix_error] from a commit) — and any
   answer that does come back must equal the unfaulted one.  Zero
   tolerance for wrong bytes and for exceptions outside the typed
   set. *)
let test_fault_plan_sweep () =
  (* unfaulted reference material, built before arming *)
  let machine = Dac_from_pac.machine ~n:3 in
  let specs = Dac_from_pac.specs ~n:3 in
  let inputs = Array.init 3 (fun pid -> Value.int (if pid = 0 then 1 else 0)) in
  let partial = Cgraph.build ~max_states:40 ~machine ~specs ~inputs () in
  let suspended = Option.get partial.Cgraph.suspended in
  let g = Cgraph.build ~machine ~specs ~inputs () in
  let nseg = min 4 (Cgraph.n_nodes g) in
  let seg_configs = Array.init nseg (fun id -> Cgraph.node g id) in
  let seg_pconfigs = Array.map Mirror.freeze_config seg_configs in
  let seg_edges =
    Array.of_list
      (List.concat_map
         (fun id ->
           List.map
             (fun (e : Cgraph.edge) ->
               Mirror.freeze_step ~pid:e.Cgraph.pid ~event:e.Cgraph.event
                 ~target:e.Cgraph.target)
             (Cgraph.out_edges g id))
         (List.init nseg Fun.id))
  in
  let survived = ref 0 and refused = ref 0 in
  Fun.protect
    ~finally:(fun () -> Rio.disarm ())
    (fun () ->
      for seed = 1 to 20 do
        Rio.arm ~seed ~rate_percent:25 ();
        (* store: every hit must serve the written bytes *)
        let dir = fresh_dir () in
        Fun.protect
          ~finally:(fun () -> rm_rf dir)
          (fun () ->
            let s = Serve_store.open_ ~dir in
            for i = 0 to 7 do
              let key = Fmt.str "k%02d%04d" i seed in
              let canonical = Fmt.str "question %d/%d" seed i in
              let data = Fmt.str "answer %d/%d" seed i in
              (match Serve_store.put s ~key ~canonical ~data with
              | Ok () -> ()
              | Error _ -> incr refused);
              match Serve_store.get s ~key ~canonical with
              | None -> ()
              | Some got ->
                incr survived;
                if got <> data then
                  Alcotest.failf "seed %d: store served wrong bytes" seed
            done);
        (* checkpoint: save may refuse; a loadable save must thaw equal *)
        let ck = fresh_path ".ckpt" in
        Fun.protect
          ~finally:(fun () ->
            List.iter
              (fun f -> if Sys.file_exists f then Sys.remove f)
              [ ck; ck ^ ".tmp" ])
          (fun () ->
            match
              Checkpoint.save ~file:ck
                (Checkpoint.freeze ~label:"sweep" suspended)
            with
            | exception Unix.Unix_error _ -> incr refused
            | () -> (
              match Checkpoint.load ~file:ck with
              | exception Checkpoint.Corrupt _ -> incr refused
              | c ->
                incr survived;
                if Checkpoint.label c <> "sweep" then
                  Alcotest.failf "seed %d: checkpoint label drifted" seed;
                let s' = Checkpoint.thaw c in
                if
                  s'.Cgraph.s_expanded <> suspended.Cgraph.s_expanded
                  || Array.length s'.Cgraph.s_nodes
                     <> Array.length suspended.Cgraph.s_nodes
                then
                  Alcotest.failf "seed %d: checkpoint round-trip drifted" seed))
          ;
        (* segstore: a fault-in either matches the original or refuses *)
        let sdir = fresh_dir () in
        Fun.protect
          ~finally:(fun () -> rm_rf sdir)
          (fun () ->
            match
              let t = Segstore.create ~dir:sdir in
              Segstore.write_segment t ~lo:0 ~hi:nseg ~elo:0
                ~ehi:(Array.length seg_edges) ~configs:seg_pconfigs
                ~edges:seg_edges;
              t
            with
            | exception Unix.Unix_error _ -> incr refused
            | t -> (
              for id = 0 to nseg - 1 do
                match Segstore.node t id with
                | exception Segstore.Corrupt _ -> incr refused
                | cfg ->
                  incr survived;
                  if not (Config.equal cfg seg_configs.(id)) then
                    Alcotest.failf "seed %d: segstore served wrong config"
                      seed
              done));
        (* wire: a roundtrip either delivers the exact frame or fails
           with the typed closure/IO errors *)
        for round = 0 to 2 do
          let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          (* each side hangs up on its own failure (shutdown, so the fd
             number stays owned): the peer's blocked read then sees EOF
             as [Closed] instead of waiting forever on a half-sent
             frame *)
          let hangup fd =
            try Unix.shutdown fd Unix.SHUTDOWN_ALL
            with Unix.Unix_error _ -> ()
          in
          let server =
            Domain.spawn (fun () ->
                match Serve_wire.recv_request b with
                | Serve_wire.Ping -> (
                  try Serve_wire.send_response b Serve_wire.Pong
                  with Serve_wire.Closed | Unix.Unix_error _ | Failure _ ->
                    hangup b)
                | _ -> hangup b
                | exception
                    ( Serve_wire.Closed | Unix.Unix_error _ | Failure _ ) ->
                  hangup b)
          in
          (match
             Serve_wire.send_request a Serve_wire.Ping;
             Serve_wire.recv_response a
           with
          | Serve_wire.Pong -> incr survived
          | _ -> Alcotest.failf "seed %d round %d: wrong frame" seed round
          | exception (Serve_wire.Closed | Unix.Unix_error _) ->
            incr refused;
            hangup a);
          Domain.join server;
          List.iter
            (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
            [ a; b ]
        done;
        Rio.disarm ()
      done);
  (* the sweep must have both injected real trouble and survived it *)
  let c = Rio.counters () in
  let injected =
    c.Rio.c_eintr + c.Rio.c_short_read + c.Rio.c_short_write + c.Rio.c_enospc
    + c.Rio.c_eio
  in
  Alcotest.(check bool) "faults were injected" true (injected > 0);
  Alcotest.(check bool) "hard faults were refused" true (!refused > 0);
  Alcotest.(check bool) "some operations survived" true (!survived > 0)

(* --- registration -------------------------------------------------------- *)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "crash_recovery"
    [
      ( "checkpoint",
        [
          tc "SIGKILL at each crash point, recovery byte-identical"
            test_kill_mid_checkpoint;
          tc "corrupt checkpoint refused with exit 2"
            test_corrupt_checkpoint_refused;
        ] );
      ( "daemon",
        [
          tc "killed mid-store-commit, restart re-answers identically"
            test_daemon_killed_mid_put;
          tc "store failure degrades to compute-only, then recovers"
            test_daemon_degrades_and_recovers;
        ] );
      ( "wire",
        [
          tc "half-closed peer surfaces as Closed" test_wire_half_closed_peer;
          tc "forced EINTR absorbed by retry loops" test_wire_eintr_absorbed;
        ] );
      ( "segstore",
        [ tc "flipped byte refused as Corrupt" test_segstore_flipped_byte ] );
      ( "sweep",
        [ tc "20 seeds x all sites: no wrong answers" test_fault_plan_sweep ]
      );
    ]
