(* The conformance fuzzing engine: target coverage, the deterministic
   multi-domain fan-out, clean sweeps over honest targets, and the
   known-bad fixtures that the oracle must catch and shrink. *)

open Lbsa

let prefix s = List.hd (String.split_on_char ':' s)

let test_spec_targets_cover_registry () =
  (* One concrete fuzz target per registry row: a new object added to
     Registry.known cannot dodge the fuzzer without failing here. *)
  let targets = Fuzz_targets.all_specs () in
  Alcotest.(check int) "one target per registry row"
    (List.length Registry.known) (List.length targets);
  List.iter
    (fun (syntax, _) ->
      let p = prefix syntax in
      if
        not
          (List.exists (fun t -> prefix t.Fuzz_targets.desc = p) targets)
      then Alcotest.failf "registry object %S has no fuzz target" syntax)
    Registry.known

let test_fan_deterministic_across_domains () =
  (* The first failing trial index is a pure function of the predicate,
     never of the domain count or chunking. *)
  let run i = if i >= 37 && i mod 7 = 2 then Some (i * i) else None in
  let expect = Some (37, 37 * 37) in
  List.iter
    (fun domains ->
      let r = Fuzz_engine.fan ~domains ~trials:200 ~run () in
      Alcotest.(check (option (pair int int)))
        (Fmt.str "domains=%d" domains) expect r.Fuzz_engine.hit)
    [ 1; 2; 3; 8 ];
  let r = Fuzz_engine.fan ~domains:4 ~trials:30 ~run:(fun _ -> None) () in
  Alcotest.(check (option (pair int int))) "no failure" None r.Fuzz_engine.hit;
  Alcotest.(check int) "all trials completed" 30 r.Fuzz_engine.fan_completed

let test_spec_sweep_clean () =
  (* Bounded version of `lbsa fuzz`'s spec campaign: every registry
     object round-trips generator -> checker -> corrupt with no
     failure. *)
  List.iter
    (fun t ->
      let r = Fuzz_engine.fuzz_spec ~domains:1 ~trials:60 ~seed:2026 t in
      match r.Fuzz_engine.failure with
      | None -> ()
      | Some f ->
        Alcotest.failf "spec %s failed: %a" t.Fuzz_targets.desc
          Fuzz_engine.pp_failure f)
    (Fuzz_targets.all_specs ())

let test_impl_sweep_clean_with_faults () =
  (* Every honest construction survives random schedules AND crash
     faults: in-flight calls at a crash enter the history as pending and
     the extended oracle must still certify linearizability. *)
  List.iter
    (fun t ->
      let r =
        Fuzz_engine.fuzz_impl ~domains:1 ~faults:2 ~trials:40 ~seed:2026 t
      in
      match r.Fuzz_engine.failure with
      | None -> ()
      | Some f ->
        Alcotest.failf "impl %s failed: %a" t.Fuzz_targets.idesc
          Fuzz_engine.pp_failure f)
    (Fuzz_targets.all_impls ())

let catch_and_shrink ~desc ~trials ~max_shrunk_calls =
  let t = Fuzz_targets.impl_target desc in
  let r = Fuzz_engine.fuzz_impl ~domains:1 ~trials ~seed:42 t in
  match r.Fuzz_engine.failure with
  | None -> Alcotest.failf "fuzzer missed known-bad %s in %d trials" desc trials
  | Some f ->
    (match f.Fuzz_engine.kind with
    | Fuzz_engine.Violation -> ()
    | k -> Alcotest.failf "%s: expected a violation, got %a" desc
             Fuzz_engine.pp_kind k);
    (match f.Fuzz_engine.shrunk with
    | None -> Alcotest.failf "%s: no shrunk counterexample" desc
    | Some (c, h) ->
      let calls = Fuzz_case.n_calls c in
      if calls > max_shrunk_calls then
        Alcotest.failf "%s: shrunk to %d calls, expected <= %d" desc calls
          max_shrunk_calls;
      (* The shrunk case must still reproduce from its own record. *)
      (match Fuzz_engine.eval_impl_case ~impl:t.Fuzz_targets.impl c with
      | Fuzz_engine.Bad (Fuzz_engine.Violation, h', _) ->
        Alcotest.(check bool) "shrunk case replays its history" true (h = h')
      | _ -> Alcotest.failf "%s: shrunk case does not reproduce" desc));
    f

let test_mutant_pac_caught_and_shrunk () =
  (* The seeded spec mutation (flipped propose-path upset guard): the
     fuzzer must catch it and shrink to the essence — propose; propose;
     decide on one label, hence <= 6 calls (observed: 3). *)
  let f = catch_and_shrink ~desc:"mutant-pac:2" ~trials:500 ~max_shrunk_calls:6 in
  ignore f

let test_naive_snapshot_caught () =
  let f =
    catch_and_shrink ~desc:"naive-snapshot:3" ~trials:500 ~max_shrunk_calls:8
  in
  ignore f

let test_identity_targets_clean () =
  (* Identity implementations are correct by construction: a violation
     here would be an oracle (not implementation) bug. *)
  List.iter
    (fun desc ->
      let t = Fuzz_targets.impl_target ("identity:" ^ desc) in
      let r = Fuzz_engine.fuzz_impl ~domains:1 ~trials:60 ~seed:7 t in
      match r.Fuzz_engine.failure with
      | None -> ()
      | Some f ->
        Alcotest.failf "identity:%s failed: %a" desc Fuzz_engine.pp_failure f)
    [ "reg"; "2sa"; "queue"; "pac:2" ]

let test_case_generation_respects_call_cap () =
  (* Workload clamping keeps every generated case within the checker's
     62-call bitmask bound, whatever the requested per-process sizes. *)
  let t = Fuzz_targets.spec_target "faa" in
  for trial = 0 to 199 do
    let prng = Prng.of_substream ~seed:11 ~index:trial in
    let case =
      Fuzz_case.gen ~prng
        ~gen_workloads:(Fuzz_targets.spec_workloads t ~procs:9 ~ops_per_proc:20)
        ~procs:9 ~max_faults:3 ()
    in
    if Fuzz_case.n_calls case > Lin_checker.max_calls then
      Alcotest.failf "case with %d calls exceeds the checker cap"
        (Fuzz_case.n_calls case)
  done

let test_shrinks_strictly_decrease () =
  (* Spot-check the well-founded shrink measure on generated cases. *)
  let t = Fuzz_targets.spec_target "queue" in
  let measure (c : Fuzz_case.t) =
    let sched_rank =
      match c.Fuzz_case.sched with
      | Fuzz_case.Rr -> 0
      | Fuzz_case.Rand _ -> 1
      | Fuzz_case.Bursts _ -> 2
    in
    Fuzz_case.n_calls c
    + List.length c.Fuzz_case.faults
    + List.fold_left (fun a (_, b) -> a + b) 0 c.Fuzz_case.faults
    + sched_rank
  in
  for trial = 0 to 49 do
    let prng = Prng.of_substream ~seed:5 ~index:trial in
    let case =
      Fuzz_case.gen ~prng
        ~gen_workloads:(Fuzz_targets.spec_workloads t ~procs:3 ~ops_per_proc:4)
        ~procs:3 ~max_faults:2 ()
    in
    List.iter
      (fun c ->
        if measure c >= measure case then
          Alcotest.failf "shrink candidate does not decrease the measure")
      (Fuzz_case.shrinks case)
  done

let () =
  Alcotest.run "fuzz"
    [
      ( "targets",
        [
          Alcotest.test_case "specs cover the registry" `Quick
            test_spec_targets_cover_registry;
          Alcotest.test_case "identity impls clean" `Quick
            test_identity_targets_clean;
        ] );
      ( "engine",
        [
          Alcotest.test_case "fan deterministic across domains" `Quick
            test_fan_deterministic_across_domains;
          Alcotest.test_case "case generation respects call cap" `Quick
            test_case_generation_respects_call_cap;
          Alcotest.test_case "shrinks strictly decrease" `Quick
            test_shrinks_strictly_decrease;
        ] );
      ( "sweeps",
        [
          Alcotest.test_case "all registry specs clean" `Quick
            test_spec_sweep_clean;
          Alcotest.test_case "honest impls clean under crash faults" `Quick
            test_impl_sweep_clean_with_faults;
        ] );
      ( "known-bad",
        [
          Alcotest.test_case "mutant PAC caught and shrunk" `Quick
            test_mutant_pac_caught_and_shrunk;
          Alcotest.test_case "naive snapshot caught" `Quick
            test_naive_snapshot_caught;
        ] );
    ]
