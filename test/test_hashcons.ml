(* Properties of the hash-consed value core: agreement with a structural
   reference implementation, physical sharing, and order-insensitivity
   of the sorted [Assoc]/[Set_] encodings.

   The reference implementation below operates on a plain description
   tree that never goes near the intern table, so any divergence between
   the O(1) interned operations and a from-scratch structural walk shows
   up as a counterexample. *)

open Lbsa

let count = 500

(* --- a structural mirror of [Value.node] ------------------------------- *)

type descr =
  | DUnit
  | DBool of bool
  | DInt of int
  | DSym of string
  | DBot
  | DNil
  | DDone
  | DPair of descr * descr
  | DList of descr list

let rec build = function
  | DUnit -> Value.unit_
  | DBool b -> Value.bool b
  | DInt i -> Value.int i
  | DSym s -> Value.sym s
  | DBot -> Value.bot
  | DNil -> Value.nil
  | DDone -> Value.done_
  | DPair (a, b) -> Value.pair (build a, build b)
  | DList ds -> Value.list (List.map build ds)

(* Reference structural order: the documented [Value.compare] ladder,
   recomputed on descriptions with no sharing or id shortcuts. *)
let rec ref_compare a b =
  match (a, b) with
  | DUnit, DUnit -> 0
  | DUnit, _ -> -1
  | _, DUnit -> 1
  | DBool x, DBool y -> Stdlib.compare x y
  | DBool _, _ -> -1
  | _, DBool _ -> 1
  | DInt x, DInt y -> Stdlib.compare x y
  | DInt _, _ -> -1
  | _, DInt _ -> 1
  | DSym x, DSym y -> String.compare x y
  | DSym _, _ -> -1
  | _, DSym _ -> 1
  | DBot, DBot -> 0
  | DBot, _ -> -1
  | _, DBot -> 1
  | DNil, DNil -> 0
  | DNil, _ -> -1
  | _, DNil -> 1
  | DDone, DDone -> 0
  | DDone, _ -> -1
  | _, DDone -> 1
  | DPair (x1, y1), DPair (x2, y2) ->
    let c = ref_compare x1 x2 in
    if c <> 0 then c else ref_compare y1 y2
  | DPair _, _ -> -1
  | _, DPair _ -> 1
  | DList xs, DList ys -> ref_compare_lists xs ys

and ref_compare_lists xs ys =
  match (xs, ys) with
  | [], [] -> 0
  | [], _ -> -1
  | _, [] -> 1
  | x :: xs', y :: ys' ->
    let c = ref_compare x y in
    if c <> 0 then c else ref_compare_lists xs' ys'

(* Reference full-tree hash: the same per-constructor mixing as the
   interner, recomputed bottom-up from scratch — if a cached hash ever
   went stale or mixed an intern id, this detects it. *)
let fnv_seed = 0x811c9dc5

let rec ref_hash d =
  let comb = Value.hash_combine in
  (match d with
  | DUnit -> comb fnv_seed 3
  | DBool false -> comb fnv_seed 5
  | DBool true -> comb fnv_seed 7
  | DInt i -> comb fnv_seed (i lxor 0x2545F491)
  | DSym s -> comb fnv_seed (Hashtbl.hash s)
  | DBot -> comb fnv_seed 11
  | DNil -> comb fnv_seed 13
  | DDone -> comb fnv_seed 17
  | DPair (a, b) -> comb (comb (comb fnv_seed 19) (ref_hash a)) (ref_hash b)
  | DList ds ->
    List.fold_left (fun acc d -> comb acc (ref_hash d)) (comb fnv_seed 23) ds)
  land max_int

let rec pp_descr ppf = function
  | DUnit -> Fmt.string ppf "()"
  | DBool b -> Fmt.bool ppf b
  | DInt i -> Fmt.int ppf i
  | DSym s -> Fmt.string ppf s
  | DBot -> Fmt.string ppf "bot"
  | DNil -> Fmt.string ppf "nil"
  | DDone -> Fmt.string ppf "done"
  | DPair (a, b) -> Fmt.pf ppf "(%a, %a)" pp_descr a pp_descr b
  | DList ds -> Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any "; ") pp_descr) ds

let descr_gen : descr QCheck.Gen.t =
  let open QCheck.Gen in
  let base =
    oneof
      [
        return DUnit;
        map (fun b -> DBool b) bool;
        (* straddle the interner's small-int cache boundary on purpose *)
        map (fun i -> DInt i) (int_range (-40) 300);
        map (fun s -> DSym s) (oneofl [ "a"; "b"; "c"; "halt"; "propose" ]);
        return DBot;
        return DNil;
        return DDone;
      ]
  in
  let rec tree depth =
    if depth = 0 then base
    else
      oneof
        [
          base;
          map2 (fun a b -> DPair (a, b)) (tree (depth - 1)) (tree (depth - 1));
          map (fun ds -> DList ds) (list_size (int_bound 4) (tree (depth - 1)));
        ]
  in
  tree 4

let descr_arb = QCheck.make ~print:(Fmt.str "%a" pp_descr) descr_gen
let descr_pair_arb = QCheck.pair descr_arb descr_arb

(* --- agreement with the reference -------------------------------------- *)

let prop_compare_agrees =
  QCheck.Test.make ~count ~name:"compare agrees with structural reference"
    descr_pair_arb (fun (d1, d2) ->
      let sign c = Stdlib.compare c 0 in
      sign (Value.compare (build d1) (build d2)) = sign (ref_compare d1 d2))

let prop_equal_agrees =
  QCheck.Test.make ~count ~name:"equal iff structurally equal" descr_pair_arb
    (fun (d1, d2) ->
      Value.equal (build d1) (build d2) = (ref_compare d1 d2 = 0))

let prop_hash_agrees =
  QCheck.Test.make ~count ~name:"cached hash = structural recomputation"
    descr_arb (fun d -> Value.hash (build d) = ref_hash d)

let prop_hash_fold_consistent =
  QCheck.Test.make ~count ~name:"hash_fold folds the cached hash" descr_arb
    (fun d ->
      let v = build d in
      Value.hash_fold 12345 v = Value.hash_combine 12345 (Value.hash v))

(* --- physical sharing --------------------------------------------------- *)

let prop_reconstruction_shares =
  QCheck.Test.make ~count ~name:"re-construction is physically shared"
    descr_arb (fun d -> build d == build d)

let prop_equal_is_pointer_equal =
  QCheck.Test.make ~count ~name:"structural equality implies pointer equality"
    descr_pair_arb (fun (d1, d2) ->
      let v1 = build d1 and v2 = build d2 in
      if ref_compare d1 d2 = 0 then v1 == v2 else not (v1 == v2))

(* --- Assoc / Set_ round trips ------------------------------------------ *)

let small_kv_arb =
  QCheck.make
    QCheck.Gen.(list_size (int_bound 8) (pair (int_bound 6) (int_bound 20)))

let prop_assoc_order_insensitive =
  QCheck.Test.make ~count ~name:"Assoc: insertion order is unobservable"
    small_kv_arb (fun kvs ->
      (* last-wins per key; keep only final bindings so both insertion
         orders encode the same map *)
      let dedup =
        List.fold_left
          (fun acc (k, v) -> (k, v) :: List.remove_assoc k acc)
          [] kvs
      in
      let to_value (k, v) = (Value.int k, Value.int v) in
      let m1 = Value.Assoc.of_bindings (List.map to_value dedup) in
      let m2 = Value.Assoc.of_bindings (List.map to_value (List.rev dedup)) in
      m1 == m2)

let prop_assoc_get_after_of_bindings =
  QCheck.Test.make ~count ~name:"Assoc: get retrieves every binding"
    small_kv_arb (fun kvs ->
      let dedup =
        List.fold_left
          (fun acc (k, v) -> (k, v) :: List.remove_assoc k acc)
          [] kvs
      in
      let m =
        Value.Assoc.of_bindings
          (List.map (fun (k, v) -> (Value.int k, Value.int v)) dedup)
      in
      List.for_all
        (fun (k, v) ->
          match Value.Assoc.get m (Value.int k) with
          | Some v' -> Value.equal v' (Value.int v)
          | None -> false)
        dedup)

let small_int_list_arb =
  QCheck.make QCheck.Gen.(list_size (int_bound 10) (int_bound 8))

let prop_set_order_insensitive =
  QCheck.Test.make ~count ~name:"Set_: insertion order is unobservable"
    small_int_list_arb (fun xs ->
      let vs = List.map Value.int xs in
      Value.Set_.of_list vs == Value.Set_.of_list (List.rev vs))

let prop_set_roundtrip =
  QCheck.Test.make ~count ~name:"Set_: mem/cardinal/elements round-trip"
    small_int_list_arb (fun xs ->
      let vs = List.map Value.int xs in
      let s = Value.Set_.of_list vs in
      List.for_all (fun v -> Value.Set_.mem v s) vs
      && Value.Set_.cardinal s
         = List.length (List.sort_uniq Value.compare vs)
      && (* elements come back sorted in structural order *)
      let es = Value.Set_.elements s in
      List.sort Value.compare es = es)

(* --- intern table bookkeeping ------------------------------------------ *)

let test_intern_stats () =
  let s0 = Value.intern_stats () in
  Alcotest.(check bool) "stripes power of two" true (s0.Value.stripes > 0);
  (* A fresh deep value: at least one miss; re-building it: hits only. *)
  let d = DList [ DPair (DInt 9999, DSym "a"); DBot; DInt 12345 ] in
  let v1 = build d in
  let s1 = Value.intern_stats () in
  let v2 = build d in
  let s2 = Value.intern_stats () in
  Alcotest.(check bool) "fresh build misses" true (s1.Value.misses > s0.Value.misses);
  Alcotest.(check bool) "rebuild only hits" true (s2.Value.misses = s1.Value.misses);
  Alcotest.(check bool) "rebuild hits" true (s2.Value.hits > s1.Value.hits);
  Alcotest.(check bool) "shared" true (v1 == v2);
  Alcotest.(check bool) "size tracks misses" true (s2.Value.size = s2.Value.misses)

let test_small_int_cache () =
  (* Small ints come from a lock-free cache; out-of-range ints go through
     the table — either way, equal ints are the same pointer. *)
  List.iter
    (fun i -> Alcotest.(check bool) "int shared" true (Value.int i == Value.int i))
    [ -16; -1; 0; 1; 255; 256; 100_000; -100_000 ]

let () =
  Alcotest.run "hashcons"
    [
      ( "structural-agreement",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_compare_agrees;
            prop_equal_agrees;
            prop_hash_agrees;
            prop_hash_fold_consistent;
          ] );
      ( "sharing",
        List.map QCheck_alcotest.to_alcotest
          [ prop_reconstruction_shares; prop_equal_is_pointer_equal ] );
      ( "assoc-set",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_assoc_order_insensitive;
            prop_assoc_get_after_of_bindings;
            prop_set_order_insensitive;
            prop_set_roundtrip;
          ] );
      ( "intern-table",
        [
          Alcotest.test_case "stats track hits/misses/size" `Quick
            test_intern_stats;
          Alcotest.test_case "small-int cache shares" `Quick
            test_small_int_cache;
        ] );
    ]
