(* The implementation framework and the paper's constructions:
   Observation 5.1 (PAC combinations), Lemma 6.4 (O'_n from n-consensus
   and 2-SA), and the classic snapshot-from-registers substrate. *)

open Lbsa

let test_identity_impl () =
  let impl = Implementation.identity (Register.spec ()) in
  let workloads =
    [| [ Register.write (Value.int 1); Register.read ];
       [ Register.write (Value.int 2); Register.read ] |]
  in
  match Harness.exhaustive ~impl ~workloads () with
  | Ok count -> Alcotest.(check bool) "some interleavings" true (count > 1)
  | Error _ -> Alcotest.fail "identity implementation must linearize"

let test_identity_campaign () =
  let impl = Implementation.identity (Classic.Queue_obj.spec ()) in
  let workloads =
    [|
      [ Classic.Queue_obj.enqueue (Value.int 1); Classic.Queue_obj.dequeue ];
      [ Classic.Queue_obj.enqueue (Value.int 2); Classic.Queue_obj.dequeue ];
    |]
  in
  match Harness.campaign ~seed:1 ~trials:50 ~impl ~workloads () with
  | Ok n -> Alcotest.(check int) "all trials pass" 50 n
  | Error (i, _) -> Alcotest.failf "trial %d not linearizable" i

(* Observation 5.1(a): (n,m)-PAC from n-PAC + m-consensus. *)
let test_pac_nm_impl_exhaustive () =
  let impl = Pac_nm_impl.implementation ~n:2 ~m:2 in
  let workloads =
    [|
      [ Pac_nm.propose_p (Value.int 1) 1; Pac_nm.decide_p 1 ];
      [ Pac_nm.propose_c (Value.int 9) ];
      [ Pac_nm.propose_c (Value.int 8) ];
    |]
  in
  match Harness.exhaustive ~impl ~workloads () with
  | Ok count -> Alcotest.(check bool) "interleavings checked" true (count > 10)
  | Error h ->
    Alcotest.failf "Obs 5.1(a) violated:@.%a" (fun ppf -> Chistory.pp ppf) h

let test_pac_nm_impl_campaign () =
  let impl = Pac_nm_impl.implementation ~n:3 ~m:2 in
  let workloads =
    [|
      [ Pac_nm.propose_p (Value.int 1) 1; Pac_nm.decide_p 1;
        Pac_nm.propose_c (Value.int 5) ];
      [ Pac_nm.propose_p (Value.int 2) 2; Pac_nm.decide_p 2 ];
      [ Pac_nm.propose_c (Value.int 6); Pac_nm.propose_p (Value.int 3) 3;
        Pac_nm.decide_p 3 ];
    |]
  in
  match Harness.campaign ~seed:11 ~trials:100 ~impl ~workloads () with
  | Ok n -> Alcotest.(check int) "all trials pass" 100 n
  | Error (i, _) -> Alcotest.failf "trial %d not linearizable" i

(* Observations 5.1(b,c): the facets. *)
let test_facets () =
  let impl_b = Facets.pac_from_pac_nm ~n:2 ~m:2 in
  let workloads_b =
    [|
      [ Pac.propose (Value.int 1) 1; Pac.decide 1 ];
      [ Pac.propose (Value.int 2) 2; Pac.decide 2 ];
    |]
  in
  (match Harness.exhaustive ~impl:impl_b ~workloads:workloads_b () with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "Obs 5.1(b) violated");
  let impl_c = Facets.consensus_from_pac_nm ~n:2 ~m:2 in
  let workloads_c =
    [|
      [ Consensus_obj.propose (Value.int 1) ];
      [ Consensus_obj.propose (Value.int 2) ];
      [ Consensus_obj.propose (Value.int 3) ];
    |]
  in
  match Harness.exhaustive ~impl:impl_c ~workloads:workloads_c () with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "Obs 5.1(c) violated"

(* Lemma 6.4: O'_n from n-consensus + 2-SA. *)
let test_oprime_impl_exhaustive () =
  let power = O_prime.default_power ~n:2 ~max_k:2 in
  let impl = Oprime_impl.implementation ~power in
  let workloads =
    [|
      [ O_prime.propose (Value.int 1) 1; O_prime.propose (Value.int 10) 2 ];
      [ O_prime.propose (Value.int 2) 1; O_prime.propose (Value.int 20) 2 ];
    |]
  in
  match Harness.exhaustive ~impl ~workloads () with
  | Ok count -> Alcotest.(check bool) "interleavings checked" true (count > 10)
  | Error h ->
    Alcotest.failf "Lemma 6.4 violated:@.%a" (fun ppf -> Chistory.pp ppf) h

let test_oprime_impl_campaign () =
  let power = O_prime.default_power ~n:2 ~max_k:4 in
  let impl = Oprime_impl.implementation ~power in
  (* Respect the port bounds: n_1 = 2, n_2 = 4, n_3 = 6, n_4 = 8. *)
  let workloads =
    [|
      [ O_prime.propose (Value.int 1) 1; O_prime.propose (Value.int 11) 2;
        O_prime.propose (Value.int 12) 3 ];
      [ O_prime.propose (Value.int 2) 1; O_prime.propose (Value.int 21) 2;
        O_prime.propose (Value.int 22) 4 ];
      [ O_prime.propose (Value.int 31) 2; O_prime.propose (Value.int 32) 3;
        O_prime.propose (Value.int 33) 4 ];
    |]
  in
  match Harness.campaign ~seed:21 ~trials:100 ~impl ~workloads () with
  | Ok n -> Alcotest.(check int) "all trials pass" 100 n
  | Error (i, _) -> Alcotest.failf "trial %d not linearizable" i

(* The snapshot substrate. *)
let test_snapshot_impl_small () =
  let impl = Snapshot_impl.implementation ~n:2 in
  let workloads =
    [|
      [ Classic.Snapshot.update 0 (Value.int 1); Classic.Snapshot.scan ];
      [ Classic.Snapshot.update 1 (Value.int 2) ];
    |]
  in
  match Harness.exhaustive ~max_steps:80 ~impl ~workloads () with
  | Ok count -> Alcotest.(check bool) "interleavings checked" true (count > 10)
  | Error h ->
    Alcotest.failf "snapshot not linearizable:@.%a" (fun ppf -> Chistory.pp ppf) h

let test_snapshot_impl_campaign () =
  let impl = Snapshot_impl.implementation ~n:3 in
  let workloads =
    [|
      [ Classic.Snapshot.update 0 (Value.int 1); Classic.Snapshot.scan;
        Classic.Snapshot.update 0 (Value.int 2) ];
      [ Classic.Snapshot.update 1 (Value.int 3); Classic.Snapshot.scan ];
      [ Classic.Snapshot.scan; Classic.Snapshot.update 2 (Value.int 4) ];
    |]
  in
  match Harness.campaign ~seed:31 ~trials:60 ~impl ~workloads () with
  | Ok n -> Alcotest.(check int) "all trials pass" 60 n
  | Error (i, run) ->
    Alcotest.failf "trial %d not linearizable:@.%a" i
      (fun ppf -> Chistory.pp ppf)
      run.Harness.history

let test_naive_snapshot_broken () =
  (* The single-collect scan must be caught by the checker in some
     interleaving of one scanner and two sequential updaters. *)
  let impl = Snapshot_impl.naive ~n:3 in
  let workloads =
    [|
      [ Classic.Snapshot.scan ];
      [ Classic.Snapshot.update 1 (Value.int 7) ];
      [ Classic.Snapshot.update 2 (Value.int 8) ];
    |]
  in
  match Harness.exhaustive ~max_steps:60 ~impl ~workloads () with
  | Ok _ -> Alcotest.fail "naive snapshot should not be linearizable"
  | Error _ -> ()

(* Herlihy's universal construction. *)
let test_universal_fetch_and_add_exhaustive () =
  let impl =
    Universal.implementation ~n:2 ~target:(Classic.Fetch_and_add.spec ()) ()
  in
  let workloads =
    [| [ Classic.Fetch_and_add.fetch_and_add 1 ];
       [ Classic.Fetch_and_add.fetch_and_add 10 ] |]
  in
  match Harness.exhaustive ~max_steps:100 ~impl ~workloads () with
  | Ok count -> Alcotest.(check bool) "interleavings checked" true (count > 50)
  | Error h ->
    Alcotest.failf "universal FAA not linearizable:@.%a"
      (fun ppf -> Chistory.pp ppf)
      h

let test_universal_queue_campaign () =
  let target = Classic.Queue_obj.spec () in
  let impl = Universal.implementation ~n:3 ~target () in
  let workloads =
    [|
      [ Classic.Queue_obj.enqueue (Value.int 1); Classic.Queue_obj.dequeue ];
      [ Classic.Queue_obj.enqueue (Value.int 2); Classic.Queue_obj.dequeue ];
      [ Classic.Queue_obj.enqueue (Value.int 3); Classic.Queue_obj.dequeue ];
    |]
  in
  match Harness.campaign ~seed:3 ~trials:200 ~impl ~workloads () with
  | Ok t -> Alcotest.(check int) "all trials pass" 200 t
  | Error (i, run) ->
    Alcotest.failf "universal queue trial %d not linearizable:@.%a" i
      (fun ppf -> Chistory.pp ppf)
      run.Harness.history

let test_universal_pac_campaign () =
  (* The construction is generic: it can even host an n-PAC object. *)
  let target = Pac.spec ~n:3 () in
  let impl = Universal.implementation ~n:3 ~target () in
  let workloads =
    Array.init 3 (fun pid ->
        [ Pac.propose (Value.int pid) (pid + 1); Pac.decide (pid + 1) ])
  in
  match Harness.campaign ~seed:13 ~trials:200 ~impl ~workloads () with
  | Ok t -> Alcotest.(check int) "all trials pass" 200 t
  | Error (i, _) -> Alcotest.failf "universal PAC trial %d failed" i

let test_universal_multiop_clients () =
  (* Several operations per client: the progress register must carry the
     frontier correctly from one operation to the next. *)
  let target = Classic.Fetch_and_add.spec () in
  let impl = Universal.implementation ~n:2 ~target () in
  let workloads =
    Array.init 2 (fun _ ->
        List.init 3 (fun _ -> Classic.Fetch_and_add.fetch_and_add 1))
  in
  match Harness.campaign ~seed:29 ~trials:200 ~impl ~workloads () with
  | Ok t -> Alcotest.(check int) "all trials pass" 200 t
  | Error (i, run) ->
    Alcotest.failf "universal multi-op trial %d failed:@.%a" i
      (fun ppf -> Chistory.pp ppf)
      run.Harness.history

let test_universal_port_budget () =
  (* The Theorem 7.1 boundary: drive a universal construction whose
     slots are (n-1)-consensus objects with n clients — some slot
     answers ⊥ to its n-th proposer and the construction collapses. *)
  let n = 3 in
  let impl =
    Universal.implementation ~consensus_m:(n - 1) ~n
      ~target:(Classic.Fetch_and_add.spec ())
      ()
  in
  let workloads =
    Array.init n (fun _ -> [ Classic.Fetch_and_add.fetch_and_add 1 ])
  in
  (* Force all three clients onto slot 0 simultaneously: round-robin. *)
  match
    Harness.run_clients ~impl ~workloads
      ~scheduler:(Scheduler.round_robin ~n) ()
  with
  | exception Universal.Port_budget_exceeded _ -> ()
  | _run ->
    Alcotest.fail "expected the undersized construction to collapse"

let test_universal_helping_completes_crashed_ops () =
  (* The heart of wait-freedom: client 0 announces an enqueue and
     crashes before ever proposing it; client 1 keeps operating, and the
     round-robin helpers insert 0's operation into the log anyway — so
     1's dequeue returns 0's value. *)
  let target = Classic.Queue_obj.spec () in
  let impl = Universal.implementation ~n:2 ~target () in
  let workloads =
    [|
      [ Classic.Queue_obj.enqueue (Value.int 77) ];
      [ Classic.Queue_obj.dequeue; Classic.Queue_obj.dequeue ];
    |]
  in
  (* Client 0 takes exactly 2 steps: read-progress + announce-write;
     then only client 1 runs. *)
  let scheduler = Fault.apply [ (0, 2) ] (Scheduler.starving 1 (Scheduler.round_robin ~n:2)) in
  let run = Harness.run_clients ~impl ~workloads ~scheduler () in
  (* Client 0 never completed its call... *)
  let calls_by_0 =
    List.filter (fun (c : Chistory.call) -> c.Chistory.pid = 0) run.Harness.history
  in
  Alcotest.(check int) "client 0 completed nothing" 0 (List.length calls_by_0);
  (* ...yet client 1's dequeues observe 77: the announced enqueue was
     helped into the log. *)
  let dequeue_results =
    List.filter_map
      (fun (c : Chistory.call) ->
        if c.Chistory.pid = 1 && c.Chistory.op.Op.name = "dequeue" then
          Some c.Chistory.response
        else None)
      run.Harness.history
  in
  Alcotest.(check bool) "a dequeue returned the crashed client's value" true
    (List.exists (Value.equal (Value.int 77)) dequeue_results)

let test_broken_oprime_impl_caught () =
  (* A subtly wrong Lemma 6.4 implementation: route every k >= 2 level
     to ONE shared 2-SA object.  Cross-level contamination (a member-2
     proposal answered with a value only ever proposed at member 3)
     violates the per-member validity of O'_n, and the checker finds
     it. *)
  let power = O_prime.default_power ~n:2 ~max_k:3 in
  let target = O_prime.spec ~power () in
  let base = [| Consensus_obj.spec ~m:2 (); Sa2.spec () |] in
  let route (op : Op.t) =
    match (op.Op.name, op.Op.args) with
    | "propose", [ v; { Value.node = Int 1; _ } ] -> (0, Consensus_obj.propose v)
    | "propose", [ v; { Value.node = Int _; _ } ] -> (1, Sa2.propose v)
    | _ -> invalid_arg "broken oprime"
  in
  let impl =
    Implementation.redirect ~name:"broken-oprime-shared-2sa" ~target ~base
      ~route
  in
  let workloads =
    [| [ O_prime.propose (Value.int 20) 2 ]; [ O_prime.propose (Value.int 30) 3 ] |]
  in
  match Harness.exhaustive ~impl ~workloads () with
  | Ok _ -> Alcotest.fail "the shared-2-SA shortcut should be caught"
  | Error _ -> ()

let test_universal_out_of_slots () =
  let impl =
    Universal.implementation ~max_slots:1 ~n:2
      ~target:(Classic.Fetch_and_add.spec ()) ()
  in
  let workloads =
    Array.init 2 (fun _ ->
        List.init 2 (fun _ -> Classic.Fetch_and_add.fetch_and_add 1))
  in
  match
    Harness.run_clients ~impl ~workloads
      ~scheduler:(Scheduler.round_robin ~n:2) ()
  with
  | exception Universal.Out_of_slots _ -> ()
  | _ -> Alcotest.fail "expected Out_of_slots"

let test_single_writer_enforced () =
  let impl = Snapshot_impl.implementation ~n:2 in
  let workloads = [| [ Classic.Snapshot.update 1 (Value.int 1) ]; [] |] in
  match
    Harness.run_clients ~impl ~workloads
      ~scheduler:(Scheduler.round_robin ~n:2) ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "cross-component update must be rejected"

let () =
  Alcotest.run "implement"
    [
      ( "framework",
        [
          Alcotest.test_case "identity exhaustive" `Quick test_identity_impl;
          Alcotest.test_case "identity campaign" `Quick test_identity_campaign;
        ] );
      ( "observation-5.1",
        [
          Alcotest.test_case "(a) exhaustive" `Quick test_pac_nm_impl_exhaustive;
          Alcotest.test_case "(a) campaign" `Quick test_pac_nm_impl_campaign;
          Alcotest.test_case "(b) and (c) facets" `Quick test_facets;
        ] );
      ( "lemma-6.4",
        [
          Alcotest.test_case "exhaustive (n=2, K=2)" `Quick
            test_oprime_impl_exhaustive;
          Alcotest.test_case "campaign (n=2, K=4)" `Quick
            test_oprime_impl_campaign;
          Alcotest.test_case "broken variant caught" `Quick
            test_broken_oprime_impl_caught;
        ] );
      ( "universal",
        [
          Alcotest.test_case "fetch-and-add exhaustive" `Quick
            test_universal_fetch_and_add_exhaustive;
          Alcotest.test_case "queue campaign" `Quick
            test_universal_queue_campaign;
          Alcotest.test_case "hosts an n-PAC" `Quick
            test_universal_pac_campaign;
          Alcotest.test_case "multi-op clients" `Quick
            test_universal_multiop_clients;
          Alcotest.test_case "out of slots" `Quick test_universal_out_of_slots;
          Alcotest.test_case "port budget (Thm 7.1 boundary)" `Quick
            test_universal_port_budget;
          Alcotest.test_case "helping completes crashed ops" `Quick
            test_universal_helping_completes_crashed_ops;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "afek exhaustive (n=2)" `Slow
            test_snapshot_impl_small;
          Alcotest.test_case "afek campaign (n=3)" `Quick
            test_snapshot_impl_campaign;
          Alcotest.test_case "naive is broken" `Quick test_naive_snapshot_broken;
          Alcotest.test_case "single-writer enforced" `Quick
            test_single_writer_enforced;
        ] );
    ]
