(* The Wing-Gong linearizability checker and the history generators. *)

open Lbsa

let check_lin spec h =
  match Lin_checker.check spec h with
  | Lin_checker.Linearizable _ -> true
  | Lin_checker.Not_linearizable -> false

let test_sequential_register_history () =
  let reg = Register.spec () in
  let h =
    Chistory.of_sequential
      [
        (0, Register.write (Value.int 1), Value.unit_);
        (1, Register.read, Value.int 1);
        (0, Register.write (Value.int 2), Value.unit_);
        (1, Register.read, Value.int 2);
      ]
  in
  Alcotest.(check bool) "sequential history linearizable" true
    (check_lin reg h)

let test_stale_read_rejected () =
  (* write(1) completes strictly before a read that returns NIL. *)
  let reg = Register.spec () in
  let h =
    [
      Chistory.call ~pid:0 ~op:(Register.write (Value.int 1)) ~response:Value.unit_
        ~inv:1 ~res:2;
      Chistory.call ~pid:1 ~op:Register.read ~response:Value.nil ~inv:3 ~res:4;
    ]
  in
  Alcotest.(check bool) "stale read not linearizable" false (check_lin reg h)

let test_concurrent_read_may_be_stale () =
  (* The same read overlapping the write IS linearizable (read first). *)
  let reg = Register.spec () in
  let h =
    [
      Chistory.call ~pid:0 ~op:(Register.write (Value.int 1)) ~response:Value.unit_
        ~inv:1 ~res:4;
      Chistory.call ~pid:1 ~op:Register.read ~response:Value.nil ~inv:2 ~res:3;
    ]
  in
  Alcotest.(check bool) "concurrent stale read ok" true (check_lin reg h)

let test_queue_reordering_rejected () =
  (* enqueue(1) before enqueue(2) in real time, but dequeue returns 2
     first: not linearizable (FIFO). *)
  let q = Classic.Queue_obj.spec () in
  let h =
    [
      Chistory.call ~pid:0 ~op:(Classic.Queue_obj.enqueue (Value.int 1))
        ~response:Value.unit_ ~inv:1 ~res:2;
      Chistory.call ~pid:0 ~op:(Classic.Queue_obj.enqueue (Value.int 2))
        ~response:Value.unit_ ~inv:3 ~res:4;
      Chistory.call ~pid:1 ~op:Classic.Queue_obj.dequeue ~response:(Value.int 2)
        ~inv:5 ~res:6;
    ]
  in
  Alcotest.(check bool) "queue reorder rejected" false (check_lin q h)

let test_nondeterministic_target () =
  (* 2-SA: two overlapping proposes may both get either of the two
     values; a response outside the proposals is rejected. *)
  let sa = Sa2.spec () in
  let mk r1 r2 =
    [
      Chistory.call ~pid:0 ~op:(Sa2.propose (Value.int 1)) ~response:r1 ~inv:1
        ~res:4;
      Chistory.call ~pid:1 ~op:(Sa2.propose (Value.int 2)) ~response:r2 ~inv:2
        ~res:3;
    ]
  in
  Alcotest.(check bool) "1/2 ok" true (check_lin sa (mk (Value.int 1) (Value.int 2)));
  Alcotest.(check bool) "1/1 ok" true (check_lin sa (mk (Value.int 1) (Value.int 1)));
  Alcotest.(check bool) "2/2 ok" true (check_lin sa (mk (Value.int 2) (Value.int 2)));
  (* Whichever propose linearizes first must return its own value
     (Algorithm 3 adds before answering), so the "crossed" outcome is
     impossible. *)
  Alcotest.(check bool) "2/1 rejected" false
    (check_lin sa (mk (Value.int 2) (Value.int 1)));
  Alcotest.(check bool) "9 rejected" false
    (check_lin sa (mk (Value.int 9) (Value.int 1)))

let test_sa2_sequential_first_value () =
  (* Non-overlapping: the first propose must get its own value (STATE has
     one element at its linearization point). *)
  let sa = Sa2.spec () in
  let h =
    [
      Chistory.call ~pid:0 ~op:(Sa2.propose (Value.int 1)) ~response:(Value.int 2)
        ~inv:1 ~res:2;
      Chistory.call ~pid:1 ~op:(Sa2.propose (Value.int 2)) ~response:(Value.int 2)
        ~inv:3 ~res:4;
    ]
  in
  Alcotest.(check bool) "first propose cannot see later value" false
    (check_lin sa h)

let test_pac_concurrent_history () =
  (* PAC calls from two processes; the recorded responses fix which
     linearization orders are admissible. *)
  let pac = Pac.spec ~n:2 () in
  (* p0: propose(5,1) -> done ; decide(1) -> 5 (clean pair)
     p1: propose(6,2) -> done, entirely after p0's pair. *)
  let h =
    [
      Chistory.call ~pid:0 ~op:(Pac.propose (Value.int 5) 1) ~response:Value.done_
        ~inv:1 ~res:2;
      Chistory.call ~pid:0 ~op:(Pac.decide 1) ~response:(Value.int 5) ~inv:3
        ~res:4;
      Chistory.call ~pid:1 ~op:(Pac.propose (Value.int 6) 2) ~response:Value.done_
        ~inv:5 ~res:6;
    ]
  in
  Alcotest.(check bool) "clean pair linearizable" true (check_lin pac h);
  (* If the decide overlaps p1's propose, a ⊥ response is explained by
     the order propose(5,1) propose(6,2) decide(1). *)
  let h' =
    [
      Chistory.call ~pid:0 ~op:(Pac.propose (Value.int 5) 1) ~response:Value.done_
        ~inv:1 ~res:2;
      Chistory.call ~pid:0 ~op:(Pac.decide 1) ~response:Value.bot ~inv:3 ~res:6;
      Chistory.call ~pid:1 ~op:(Pac.propose (Value.int 6) 2) ~response:Value.done_
        ~inv:4 ~res:5;
    ]
  in
  Alcotest.(check bool) "⊥ explained by interleaving" true (check_lin pac h');
  (* But a ⊥ decide with no concurrent operation is inadmissible. *)
  let h'' =
    [
      Chistory.call ~pid:0 ~op:(Pac.propose (Value.int 5) 1) ~response:Value.done_
        ~inv:1 ~res:2;
      Chistory.call ~pid:0 ~op:(Pac.decide 1) ~response:Value.bot ~inv:3 ~res:4;
    ]
  in
  Alcotest.(check bool) "unexplained ⊥ rejected" false (check_lin pac h'')

let test_generated_histories_linearizable () =
  let prng = Prng.create 2024 in
  let reg = Register.spec () in
  for _trial = 1 to 50 do
    let workloads =
      Array.init 3 (fun pid ->
          List.init 3 (fun i ->
              if (pid + i) mod 2 = 0 then Register.write (Value.int (pid * 10 + i))
              else Register.read))
    in
    let h = Lin_gen.linearizable_history ~prng ~spec:reg ~workloads in
    Alcotest.(check bool) "well-formed" true (Chistory.well_formed h);
    Alcotest.(check bool) "generated history linearizable" true
      (check_lin reg h)
  done

let test_generated_nondet_histories_linearizable () =
  let prng = Prng.create 7 in
  let sa = Sa2.spec () in
  for _trial = 1 to 50 do
    let workloads =
      Array.init 3 (fun pid -> [ Sa2.propose (Value.int pid) ])
    in
    let h = Lin_gen.linearizable_history ~prng ~spec:sa ~workloads in
    Alcotest.(check bool) "nondet generated linearizable" true (check_lin sa h)
  done

let test_corrupt_history_rejected () =
  let prng = Prng.create 5 in
  let reg = Register.spec () in
  let workloads =
    [| [ Register.write (Value.int 1); Register.read ];
       [ Register.write (Value.int 2); Register.read ] |]
  in
  let h = Lin_gen.linearizable_history ~prng ~spec:reg ~workloads in
  (* The substitute response (a fresh symbol) can never be produced by a
     register, so corrupt always finds a certified-illegal perturbation
     here. *)
  match Lin_gen.corrupt ~prng ~spec:reg h with
  | None -> Alcotest.fail "corrupt found no illegal perturbation"
  | Some bad ->
    Alcotest.(check bool) "corrupted rejected" false (check_lin reg bad)

(* Differential test: the Wing-Gong checker against brute-force
   enumeration of all interleavings.  A sequential-call history (each
   call's interval disjoint) is linearizable iff the one real-time order
   is admissible; a per-process-concurrent history is linearizable iff
   SOME interleaving of the per-process sequences replays the recorded
   responses. *)
let test_checker_vs_bruteforce () =
  let prng = Prng.create 314 in
  let spec = Classic.Fetch_and_add.spec () in
  for _trial = 1 to 60 do
    (* Three processes, one op each, all fully concurrent: on such a
       history, linearizability = "some permutation of the calls
       replays the recorded responses", which we brute-force with
       Listx.interleavings over singleton sequences. *)
    let workloads =
      Array.init 3 (fun _ ->
          [ Classic.Fetch_and_add.fetch_and_add (1 + Prng.int prng 2) ])
    in
    let h = Lin_gen.linearizable_history ~prng ~spec ~workloads in
    let h =
      if Prng.bool prng then h
      else Option.value (Lin_gen.corrupt ~prng ~spec h) ~default:h
    in
    let concurrent =
      List.map (fun (c : Chistory.call) -> { c with Chistory.inv = 1; res = 10 }) h
    in
    let brute =
      List.exists
        (fun order ->
          Shistory.admissible spec
            (List.map
               (fun (c : Chistory.call) ->
                 Shistory.event c.Chistory.op c.Chistory.response)
               order))
        (Listx.interleavings (List.map (fun c -> [ c ]) concurrent))
    in
    let checker =
      match Lin_checker.check spec concurrent with
      | Lin_checker.Linearizable _ -> true
      | Lin_checker.Not_linearizable -> false
    in
    Alcotest.(check bool) "checker agrees with brute force" brute checker
  done

let test_checker_input_validation () =
  let reg = Register.spec () in
  (* Ill-formed: overlapping calls by the same process. *)
  let bad =
    [
      Chistory.call ~pid:0 ~op:Register.read ~response:Value.nil ~inv:1 ~res:4;
      Chistory.call ~pid:0 ~op:Register.read ~response:Value.nil ~inv:2 ~res:3;
    ]
  in
  (match Lin_checker.check reg bad with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "ill-formed history should be rejected");
  match Chistory.call ~pid:0 ~op:Register.read ~response:Value.nil ~inv:2 ~res:2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "inv >= res should be rejected"

let test_checker_call_limit () =
  (* The checker packs linearized calls into one OCaml int bitmask with
     the sign bit kept clear, so histories are capped at
     Lin_checker.max_calls = Sys.int_size - 1 (62 on 64-bit): max_calls
     calls check fine, one more raises Invalid_argument (a documented
     refusal, never a crash or a silent truncation). *)
  Alcotest.(check int)
    "documented limit" (Sys.int_size - 1) Lin_checker.max_calls;
  let reg = Register.spec () in
  let seq k =
    Chistory.of_sequential
      (List.init k (fun _ -> (0, Register.read, Value.nil)))
  in
  (match Lin_checker.check reg (seq Lin_checker.max_calls) with
  | Lin_checker.Linearizable _ -> ()
  | Lin_checker.Not_linearizable ->
    Alcotest.fail "max_calls reads are linearizable");
  match Lin_checker.check reg (seq (Lin_checker.max_calls + 1)) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "max_calls + 1 calls must raise Invalid_argument"

let () =
  Alcotest.run "linearizability"
    [
      ( "checker",
        [
          Alcotest.test_case "sequential register" `Quick
            test_sequential_register_history;
          Alcotest.test_case "stale read rejected" `Quick
            test_stale_read_rejected;
          Alcotest.test_case "concurrent stale read ok" `Quick
            test_concurrent_read_may_be_stale;
          Alcotest.test_case "queue reorder rejected" `Quick
            test_queue_reordering_rejected;
          Alcotest.test_case "nondeterministic target" `Quick
            test_nondeterministic_target;
          Alcotest.test_case "2-SA sequential order" `Quick
            test_sa2_sequential_first_value;
          Alcotest.test_case "PAC histories" `Quick test_pac_concurrent_history;
          Alcotest.test_case "input validation" `Quick
            test_checker_input_validation;
          Alcotest.test_case "bitmask call limit" `Quick
            test_checker_call_limit;
          Alcotest.test_case "differential vs brute force" `Quick
            test_checker_vs_bruteforce;
        ] );
      ( "generators",
        [
          Alcotest.test_case "generated linearizable (register)" `Quick
            test_generated_histories_linearizable;
          Alcotest.test_case "generated linearizable (2-SA)" `Quick
            test_generated_nondet_histories_linearizable;
          Alcotest.test_case "corrupt rejected" `Quick
            test_corrupt_history_rejected;
        ] );
    ]
