(* Execution substrates and fairness-aware liveness: the view-change
   livelock fixture and its broadcast control, an independent
   brute-force fair-lasso oracle cross-checked on randomized
   message-passing machines, verdict stability across reduction modes
   and domain counts, lasso shrinking, shm bit-compatibility with the
   pre-substrate explorer, and the checkpoint substrate guard. *)

open Lbsa

let contains_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let mp = Substrate.mp ()

let vc n =
  (View_change.machine ~n, View_change.specs ~n (), View_change.inputs ~n)

let bcast n =
  ( View_change.bcast_machine ~n,
    View_change.bcast_specs ~n (),
    View_change.inputs ~n )

let build ?max_states ?(domains = 1) ~substrate (machine, specs, inputs) =
  Cgraph.build ?max_states ~domains ~substrate ~machine ~specs ~inputs ()

let analyze ~substrate (machine, specs, _) g =
  Liveness.analyze ~machine ~specs ~substrate g

let validate ~substrate (machine, specs, _) g w =
  Liveness.validate ~machine ~specs ~substrate g w

let shrink ~substrate (machine, specs, _) ~graph w =
  Lasso.shrink ~machine ~specs ~substrate ~graph w

(* --- the fixtures -------------------------------------------------------- *)

let test_vc_livelock () =
  let inst = vc 2 in
  let g = build ~substrate:mp inst in
  Alcotest.(check int) "vc:2 state count" 26 (Cgraph.n_nodes g);
  let r = analyze ~substrate:mp inst g in
  Alcotest.(check int) "one fair SCC" 1 r.Liveness.fair_sccs;
  match r.Liveness.verdict with
  | Liveness.Live -> Alcotest.fail "split-vote livelock not detected"
  | Liveness.Livelock w ->
    Alcotest.(check bool)
      "witness validates" true
      (validate ~substrate:mp inst g w);
    Alcotest.(check (list int))
      "cycle schedules both survivors" [ 0; 1 ] (Liveness.witness_pids w)

let test_vc_lasso_shrinks () =
  let inst = vc 2 in
  let g = build ~substrate:mp inst in
  match (analyze ~substrate:mp inst g).Liveness.verdict with
  | Liveness.Live -> Alcotest.fail "expected a livelock"
  | Liveness.Livelock w0 ->
    let w, _ = shrink ~substrate:mp inst ~graph:g w0 in
    Alcotest.(check bool)
      "shrunk witness validates" true
      (validate ~substrate:mp inst g w);
    Alcotest.(check bool)
      "shrinking never grows" true
      (Lasso.size w <= Lasso.size w0);
    (* The vc:2 lasso shape is pinned: CI byte-compares the rendered
       witness, so a silent change here must be deliberate. *)
    Alcotest.(check int) "prefix length" 5 (List.length w.Liveness.w_prefix);
    Alcotest.(check int) "cycle length" 2 (List.length w.Liveness.w_cycle);
    let w2, accepted = shrink ~substrate:mp inst ~graph:g w in
    Alcotest.(check int) "second shrink finds nothing" 0 accepted;
    Alcotest.(check int) "idempotent size" (Lasso.size w) (Lasso.size w2)

let test_bcast_live () =
  let inst = bcast 2 in
  let g = build ~substrate:mp inst in
  let r = analyze ~substrate:mp inst g in
  Alcotest.(check int) "no fair SCC" 0 r.Liveness.fair_sccs;
  match r.Liveness.verdict with
  | Liveness.Live -> ()
  | Liveness.Livelock _ -> Alcotest.fail "broadcast control is live"

(* --- brute-force oracle -------------------------------------------------- *)

(* Independent fair-lasso decision procedure: a livelock exists iff
   some node [h] lies on a closed walk that avoids every configuration
   enabling a mandatory action and schedules every process running at
   [h].  Decided by explicit BFS over the product (node, subset of
   running pids already scheduled) per candidate head — exponential in
   processes, fine for the toy instances here, and structurally
   unrelated to the masked-Tarjan pass it cross-checks. *)
let brute_force_livelock ~(substrate : Substrate.t) (machine, specs, _) g =
  let n = Cgraph.n_nodes g in
  let bad =
    Array.init n (fun u ->
        let c = Cgraph.node g u in
        List.exists
          (fun pid -> substrate.Substrate.mandatory_exit ~machine ~specs c pid)
          (Config.running c))
  in
  let from_head h =
    (not bad.(h))
    &&
    let running = Config.running (Cgraph.node g h) in
    running <> []
    &&
    let bit pid =
      let rec idx i = function
        | [] -> -1
        | p :: _ when p = pid -> i
        | _ :: tl -> idx (i + 1) tl
      in
      idx 0 running
    in
    let full = (1 lsl List.length running) - 1 in
    let seen = Hashtbl.create 64 in
    let q = Queue.create () in
    Queue.add (h, 0) q;
    Hashtbl.replace seen (h, 0) ();
    let found = ref false in
    while (not !found) && not (Queue.is_empty q) do
      let u, mask = Queue.pop q in
      List.iter
        (fun e ->
          let v = e.Cgraph.target in
          if not bad.(v) then begin
            let mask' =
              match bit e.Cgraph.pid with
              | -1 -> mask
              | b -> mask lor (1 lsl b)
            in
            if v = h && mask' = full then found := true
            else if not (Hashtbl.mem seen (v, mask')) then begin
              Hashtbl.replace seen (v, mask') ();
              Queue.add (v, mask') q
            end
          end)
        (Cgraph.out_edges g u)
    done;
    !found
  in
  let rec any h = h < n && (from_head h || any (h + 1)) in
  any 0

let check_against_oracle label ~substrate inst g =
  let r = analyze ~substrate inst g in
  let brute = brute_force_livelock ~substrate inst g in
  let analyzed =
    match r.Liveness.verdict with Liveness.Livelock _ -> true | _ -> false
  in
  Alcotest.(check bool)
    (label ^ ": analyze agrees with brute force")
    brute analyzed;
  match r.Liveness.verdict with
  | Liveness.Live -> ()
  | Liveness.Livelock w ->
    Alcotest.(check bool)
      (label ^ ": witness validates")
      true
      (validate ~substrate inst g w);
    let w', _ = shrink ~substrate inst ~graph:g w in
    Alcotest.(check bool)
      (label ^ ": shrunk witness validates")
      true
      (validate ~substrate inst g w')

let test_oracle_fixtures () =
  List.iter
    (fun (label, inst) ->
      check_against_oracle label ~substrate:mp inst (build ~substrate:mp inst))
    [ ("vc:2", vc 2); ("bcast:1", bcast 1); ("bcast:2", bcast 2) ]

(* A random finite-state mp machine: [k] control states per process,
   each (pid, state) pair assigned one action — send a random type,
   poll a random type against a random threshold, receive with a
   timeout and two branch targets, or decide.  The saturating network
   counters keep every instance finite; the table is a pure function of
   the seed. *)
let random_mp_instance ~seed ~n =
  let prng = Prng.create seed in
  let types = [ "a"; "b" ] in
  let k = 3 in
  let table =
    Array.init n (fun _ ->
        Array.init k (fun _ ->
            match Prng.int prng 4 with
            | 0 -> `Send (Prng.pick prng types, Prng.int prng k)
            | 1 -> `Poll (Prng.pick prng types, 1 + Prng.int prng 2, Prng.int prng k)
            | 2 -> `Recv (Prng.pick prng types, Prng.int prng k, Prng.int prng k)
            | _ -> `Decide))
  in
  let name = Fmt.str "random-mp:%d" seed in
  let init ~pid:_ ~input:_ = Value.int 0 in
  let net = 0 in
  let delta ~pid state =
    match table.(pid).(Value.to_int_exn state) with
    | `Send (t, j) ->
      Machine.invoke net (Substrate.send t) (fun _ -> Value.int j)
    | `Poll (t, thresh, j) ->
      Machine.invoke net (Substrate.recv ~pid [ t ]) (fun r ->
          match Value.node r with
          | Value.Pair (_, cnt) when Value.to_int_exn cnt >= thresh ->
            Value.int j
          | _ -> state)
    | `Recv (t, j_msg, j_timeout) ->
      Machine.invoke net (Substrate.recv ~pid ~timeout:true [ t ]) (fun r ->
          match Value.node r with
          | Value.Pair _ -> Value.int j_msg
          | Value.Sym _ -> Value.int j_timeout
          | _ -> state)
    | `Decide -> Machine.Decide (Value.int pid)
  in
  let machine = Machine.make ~name ~init ~delta in
  let specs = [| Substrate.network_spec ~cap:2 ~n ~types () |] in
  (machine, specs, Array.make n Value.unit_)

let test_oracle_randomized () =
  let livelocks = ref 0 and lives = ref 0 in
  for seed = 0 to 19 do
    let inst = random_mp_instance ~seed ~n:2 in
    let g = build ~max_states:50_000 ~substrate:mp inst in
    Alcotest.(check bool)
      (Fmt.str "seed %d explored completely" seed)
      true
      (g.Cgraph.stop = Supervisor.Done);
    check_against_oracle (Fmt.str "seed %d" seed) ~substrate:mp inst g;
    match (analyze ~substrate:mp inst g).Liveness.verdict with
    | Liveness.Livelock _ -> incr livelocks
    | Liveness.Live -> incr lives
  done;
  (* the family must exercise both answers or the cross-check is
     vacuous; the counts are seed-determined, so this cannot flake *)
  Alcotest.(check bool) "some livelocks found" true (!livelocks > 0);
  Alcotest.(check bool) "some live instances found" true (!lives > 0)

(* --- verdict stability --------------------------------------------------- *)

(* As on the safety side, reduced graphs may have fewer configurations
   (commit flushing prunes pre-decide interleavings), so node counts
   differ across --reduce modes — but the verdict, the fair-SCC count,
   the lasso shape and the exit code must not.  Exercised through the
   full serve pipeline. *)
let test_reduce_modes_agree () =
  List.iter
    (fun task ->
      let answers =
        List.map
          (fun reduce ->
            let q =
              Serve_api.Verify
                {
                  task;
                  question = Serve_api.Live;
                  inputs = Serve_api.default_inputs task;
                  max_states = 200_000;
                  reduce;
                  substrate = "mp";
                }
            in
            (Serve_api.compute q).Serve_api.res)
          [ `None; `Sym; `Sym_sleep ]
      in
      let payload = function
        | Serve_api.Liveness_report p -> p
        | _ -> Alcotest.fail "live question answered with a non-live result"
      in
      match List.map payload answers with
      | p0 :: rest ->
        let label = Serve_api.task_label task in
        List.iteri
          (fun i p ->
            let l = Fmt.str "%s mode %d" label (i + 1) in
            Alcotest.(check bool)
              (l ^ ": verdict agrees") p0.Serve_api.lv_live p.Serve_api.lv_live;
            Alcotest.(check int)
              (l ^ ": fair SCC count agrees")
              p0.Serve_api.lv_fair p.Serve_api.lv_fair;
            Alcotest.(check int)
              (l ^ ": lasso prefix agrees")
              p0.Serve_api.lv_prefix p.Serve_api.lv_prefix;
            Alcotest.(check int)
              (l ^ ": lasso cycle agrees")
              p0.Serve_api.lv_cycle p.Serve_api.lv_cycle)
          rest;
        let codes = List.map Serve_api.exit_code answers in
        List.iter
          (fun c ->
            Alcotest.(check int)
              (label ^ ": exit code agrees") (List.hd codes) c)
          codes
      | [] -> ())
    [ Serve_api.Vc { n = 2 }; Serve_api.Bcast { n = 2 } ]

(* The explorer is domain-count-deterministic, so the whole liveness
   answer — counts and the unshrunk witness — is too. *)
let test_domains_agree () =
  let inst = vc 2 in
  let reports =
    List.map
      (fun domains ->
        let g = build ~domains ~substrate:mp inst in
        (g, analyze ~substrate:mp inst g))
      [ 1; 2; 4 ]
  in
  match reports with
  | (_, r0) :: rest ->
    let w0 =
      match r0.Liveness.verdict with
      | Liveness.Livelock w -> Fmt.str "%a" Liveness.pp_witness w
      | Liveness.Live -> Alcotest.fail "expected a livelock"
    in
    List.iter
      (fun (_, r) ->
        Alcotest.(check int) "sccs agree" r0.Liveness.sccs r.Liveness.sccs;
        Alcotest.(check int)
          "fair sccs agree" r0.Liveness.fair_sccs r.Liveness.fair_sccs;
        match r.Liveness.verdict with
        | Liveness.Livelock w ->
          Alcotest.(check string)
            "witness identical across domain counts" w0
            (Fmt.str "%a" Liveness.pp_witness w)
        | Liveness.Live -> Alcotest.fail "verdict flipped across domains")
      rest
  | [] -> ()

(* --- shm bit-compatibility ----------------------------------------------- *)

(* Selecting the shm substrate explicitly must reproduce the
   pre-substrate explorer bit-for-bit: same node ids, same edges, same
   stats, same solvability verdict. *)
let test_shm_bit_compatible () =
  let machine = Dac_from_pac.machine ~n:3 and specs = Dac_from_pac.specs ~n:3 in
  let inputs = [| Value.int 1; Value.int 0; Value.int 0 |] in
  let g_default = Cgraph.build ~domains:1 ~machine ~specs ~inputs () in
  let g_shm =
    Cgraph.build ~domains:1 ~substrate:Substrate.shm ~machine ~specs ~inputs ()
  in
  Alcotest.(check int)
    "node count" (Cgraph.n_nodes g_default) (Cgraph.n_nodes g_shm);
  Alcotest.(check int)
    "edge count" (Cgraph.n_edges g_default) (Cgraph.n_edges g_shm);
  for u = 0 to Cgraph.n_nodes g_default - 1 do
    if not (Config.equal (Cgraph.node g_default u) (Cgraph.node g_shm u)) then
      Alcotest.failf "node %d differs under explicit shm" u;
    let es1 = Cgraph.out_edges g_default u in
    let es2 = Cgraph.out_edges g_shm u in
    if
      List.length es1 <> List.length es2
      || not
           (List.for_all2
              (fun a b ->
                a.Cgraph.pid = b.Cgraph.pid && a.Cgraph.target = b.Cgraph.target)
              es1 es2)
    then Alcotest.failf "edges of node %d differ under explicit shm" u
  done;
  let v_default = Solvability.check_dac ~domains:1 ~machine ~specs ~inputs () in
  let v_shm =
    Solvability.check_dac ~domains:1 ~substrate:Substrate.shm ~machine ~specs
      ~inputs ()
  in
  Alcotest.(check bool)
    "solvability verdict" v_default.Solvability.ok v_shm.Solvability.ok

(* --- the checkpoint substrate guard -------------------------------------- *)

let truncated_vc_suspended () =
  let machine, specs, inputs = vc 2 in
  let partial =
    Cgraph.build ~max_states:10 ~domains:1 ~substrate:mp ~machine ~specs
      ~inputs ()
  in
  (match partial.Cgraph.stop with
  | Supervisor.Truncated -> ()
  | o -> Alcotest.failf "expected truncation, got %a" Supervisor.pp_outcome o);
  Option.get partial.Cgraph.suspended

let test_checkpoint_records_substrate () =
  let s = truncated_vc_suspended () in
  let file = Filename.temp_file "lbsa-ckpt" ".bin" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists file then Sys.remove file)
    (fun () ->
      Checkpoint.save ~file (Checkpoint.freeze ~label:"vc2 mp" s);
      let c = Checkpoint.load ~file in
      Alcotest.(check string) "substrate recorded" "mp" (Checkpoint.substrate c);
      let machine, specs, inputs = vc 2 in
      let resumed =
        Cgraph.build ~domains:1 ~substrate:mp ~resume:(Checkpoint.thaw c)
          ~machine ~specs ~inputs ()
      in
      let full =
        Cgraph.build ~domains:1 ~substrate:mp ~machine ~specs ~inputs ()
      in
      Alcotest.(check int)
        "resume completes the graph" (Cgraph.n_nodes full)
        (Cgraph.n_nodes resumed);
      Alcotest.(check int)
        "resume completes the edges" (Cgraph.n_edges full)
        (Cgraph.n_edges resumed))

let test_resume_substrate_mismatch_refused () =
  let s = truncated_vc_suspended () in
  let machine, specs, inputs = vc 2 in
  match Cgraph.build ~domains:1 ~resume:s ~machine ~specs ~inputs () with
  | exception Invalid_argument msg ->
    Alcotest.(check bool)
      "names both substrates" true
      (contains_sub ~sub:"mp" msg && contains_sub ~sub:"shm" msg)
  | _ -> Alcotest.fail "mp checkpoint resumed under shm"

(* The previous on-disk format: a coherent /3 checkpoint must be
   refused as a version mismatch (CLIs exit 2) — it predates the
   substrate field, so thawing it would silently assume shm. *)
let test_checkpoint_v3_refused () =
  let file = Filename.temp_file "lbsa-ckpt" ".bin" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists file then Sys.remove file)
    (fun () ->
      let oc = open_out_bin file in
      output_string oc "LBSA-CHECKPOINT/3\nwhat the old format held";
      close_out oc;
      match Checkpoint.load ~file with
      | exception Checkpoint.Version_mismatch msg ->
        Alcotest.(check bool)
          "names the found version" true
          (contains_sub ~sub:"LBSA-CHECKPOINT/3" msg)
      | exception Failure msg ->
        Alcotest.failf "old version reported as plain failure: %s" msg
      | _ -> Alcotest.fail "version-3 checkpoint accepted")

let exe =
  Filename.concat
    (Filename.dirname Sys.executable_name)
    (Filename.concat ".." (Filename.concat "bin" "lbsa_cli.exe"))

(* `lbsa solve` explores under shm; handing it a checkpoint frozen
   under mp must be refused with the graph-shape-divergence exit 2
   before any label comparison. *)
let test_cli_solve_refuses_mp_checkpoint () =
  if not (Sys.file_exists exe) then
    Alcotest.fail (Fmt.str "CLI executable not found at %s" exe);
  let s = truncated_vc_suspended () in
  let file = Filename.temp_file "lbsa-ckpt" ".bin" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists file then Sys.remove file)
    (fun () ->
      Checkpoint.save ~file (Checkpoint.freeze ~label:"vc2 mp" s);
      let code =
        Sys.command
          (Fmt.str "%s solve dac -n 3 --resume %s >/dev/null 2>&1"
             (Filename.quote exe) (Filename.quote file))
      in
      Alcotest.(check int) "substrate-divergent resume exits 2" 2 code)

(* --- suite --------------------------------------------------------------- *)

let () =
  Alcotest.run "liveness"
    [
      ( "fixtures",
        [
          Alcotest.test_case "vc:2 split-vote livelock" `Quick test_vc_livelock;
          Alcotest.test_case "vc:2 lasso shrinks and pins" `Quick
            test_vc_lasso_shrinks;
          Alcotest.test_case "bcast:2 control is live" `Quick test_bcast_live;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "fixtures agree with brute force" `Quick
            test_oracle_fixtures;
          Alcotest.test_case "randomized machines agree with brute force"
            `Slow test_oracle_randomized;
        ] );
      ( "stability",
        [
          Alcotest.test_case "reduce modes agree" `Quick test_reduce_modes_agree;
          Alcotest.test_case "domain counts agree" `Quick test_domains_agree;
        ] );
      ( "substrate",
        [
          Alcotest.test_case "shm is bit-compatible" `Quick
            test_shm_bit_compatible;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "substrate recorded and resumable" `Quick
            test_checkpoint_records_substrate;
          Alcotest.test_case "substrate mismatch refused" `Quick
            test_resume_substrate_mismatch_refused;
          Alcotest.test_case "version 3 refused" `Quick
            test_checkpoint_v3_refused;
          Alcotest.test_case "solve refuses an mp checkpoint" `Slow
            test_cli_solve_refuses_mp_checkpoint;
        ] );
    ]
